module bbsmine

go 1.22
