package bbsmine

import (
	"reflect"
	"testing"

	"bbsmine/internal/txdb"
)

// shardPair builds one unsharded and one 4-sharded in-memory database over
// the same transactions, with the same tombstones.
func shardPair(t *testing.T, seed int64, n int, deletes []int) (*Database, *Database, []txdb.Transaction) {
	t.Helper()
	db1 := NewInMemory(Options{M: 128, K: 3, Shards: 1})
	txs := fillRandom(t, db1, seed, n, 7, 25)
	db4 := NewInMemory(Options{M: 128, K: 3, Shards: 4})
	for _, tx := range txs {
		if err := db4.Append(tx.TID, tx.Items); err != nil {
			t.Fatal(err)
		}
	}
	for _, pos := range deletes {
		if err := db1.Delete(pos); err != nil {
			t.Fatal(err)
		}
		if err := db4.Delete(pos); err != nil {
			t.Fatal(err)
		}
	}
	return db1, db4, txs
}

// TestShardedMiningByteIdentical pins the tentpole invariant: for every
// scheme, with and without a memory budget, a 4-sharded database returns a
// Result deeply equal to the unsharded one — and the observability funnel
// (candidates, certificates, false drops, probes) agrees total for total,
// because every counter is a function of per-row predicates and their sums,
// never of row order.
func TestShardedMiningByteIdentical(t *testing.T) {
	db1, db4, _ := shardPair(t, 41, 200, []int{3, 77, 150})
	for _, scheme := range []Scheme{SFS, SFP, DFS, DFP} {
		for _, budget := range []int64{0, 4 << 10} {
			o1, o4 := NewObserver(), NewObserver()
			res1, err := db1.Mine(MineOptions{MinSupportCount: 5, Scheme: scheme, MemoryBudget: budget, Observe: o1})
			if err != nil {
				t.Fatalf("%v budget=%d unsharded: %v", scheme, budget, err)
			}
			res4, err := db4.Mine(MineOptions{MinSupportCount: 5, Scheme: scheme, MemoryBudget: budget, Observe: o4})
			if err != nil {
				t.Fatalf("%v budget=%d sharded: %v", scheme, budget, err)
			}
			if !reflect.DeepEqual(res1, res4) {
				t.Errorf("%v budget=%d: sharded result differs from unsharded (%d vs %d patterns)",
					scheme, budget, len(res4.Patterns), len(res1.Patterns))
			}
			if f1, f4 := o1.Metrics().Funnel, o4.Metrics().Funnel; !reflect.DeepEqual(f1, f4) {
				t.Errorf("%v budget=%d: sharded funnel differs from unsharded:\n  shards=1: %+v\n  shards=4: %+v",
					scheme, budget, f1, f4)
			}
		}
	}
}

// TestShardedConstrainedMiningMatches covers the constrained path: the
// constraint is laid out in merged-view row order on both sides, so SFS and
// SFP return identical results under the same TID predicate.
func TestShardedConstrainedMiningMatches(t *testing.T) {
	db1, db4, _ := shardPair(t, 42, 160, nil)
	pred := func(tid int64) bool { return tid%3 != 0 }
	c1, err := db1.NewConstraint(pred)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := db4.NewConstraint(pred)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SFS, SFP} {
		res1, err := db1.MineConstrained(MineOptions{MinSupportCount: 4, Scheme: scheme}, c1)
		if err != nil {
			t.Fatalf("%v unsharded: %v", scheme, err)
		}
		res4, err := db4.MineConstrained(MineOptions{MinSupportCount: 4, Scheme: scheme}, c4)
		if err != nil {
			t.Fatalf("%v sharded: %v", scheme, err)
		}
		if !reflect.DeepEqual(res1, res4) {
			t.Errorf("%v: constrained sharded result differs from unsharded", scheme)
		}
	}
}

// TestShardedCountsMatch checks the per-shard fan-out (no merged view) gives
// the same estimates and exact counts as the unsharded index, for plain and
// constrained ad-hoc queries.
func TestShardedCountsMatch(t *testing.T) {
	db1, db4, _ := shardPair(t, 43, 120, []int{10})
	queries := [][]int32{{1}, {2, 5}, {7, 11, 13}, {24}}
	for _, q := range queries {
		e1, x1, err := db1.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		e4, x4, err := db4.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if e1 != e4 || x1 != x4 {
			t.Errorf("Count(%v): sharded est/exact = %d/%d, unsharded %d/%d", q, e4, x4, e1, x1)
		}
	}
	pred := func(tid int64) bool { return tid%7 == 0 }
	for _, q := range queries {
		e1, x1, err := db1.CountWhere(q, pred)
		if err != nil {
			t.Fatal(err)
		}
		e4, x4, err := db4.CountWhere(q, pred)
		if err != nil {
			t.Fatal(err)
		}
		if e1 != e4 || x1 != x4 {
			t.Errorf("CountWhere(%v): sharded est/exact = %d/%d, unsharded %d/%d", q, e4, x4, e1, x1)
		}
	}
}

// TestMineOptionsShardsGuard: Shards is an assertion about the deployment,
// not a knob — a mismatch is an error, 0 and the true count are accepted.
func TestMineOptionsShardsGuard(t *testing.T) {
	db := NewInMemory(Options{M: 64, Shards: 4})
	fillRandom(t, db, 44, 40, 5, 12)
	if _, err := db.Mine(MineOptions{MinSupportCount: 2, Shards: 2}); err == nil {
		t.Error("Shards mismatch accepted")
	}
	for _, ok := range []int{0, 4} {
		if _, err := db.Mine(MineOptions{MinSupportCount: 2, Shards: ok}); err != nil {
			t.Errorf("Shards=%d rejected: %v", ok, err)
		}
	}
	if _, err := db.MineApprox(MineOptions{MinSupportCount: 2, Shards: 3}); err == nil {
		t.Error("MineApprox accepted a Shards mismatch")
	}
}
