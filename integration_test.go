package bbsmine

// End-to-end integration: synthetic generation → persistent store on disk →
// persisted index → all four BBS schemes agreeing with both baselines →
// rules → dynamic growth → ad-hoc queries — the full pipeline a user of the
// library exercises.

import (
	"path/filepath"
	"testing"

	"bbsmine/internal/apriori"
	"bbsmine/internal/fptree"
	"bbsmine/internal/mining"
	"bbsmine/internal/quest"
	"bbsmine/internal/txdb"
)

func TestEndToEndPipeline(t *testing.T) {
	cfg := quest.DefaultConfig()
	cfg.D = 1500
	cfg.N = 600
	cfg.T = 8
	cfg.I = 4
	cfg.L = 150
	gen, err := quest.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txs := gen.Generate()

	dir := filepath.Join(t.TempDir(), "db")
	db, err := Open(dir, Options{M: 800, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		if err := db.Append(tx.TID, tx.Items); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	const tauFrac = 0.01
	tau := mining.MinSupportCount(tauFrac, len(txs))

	// Baselines over the same data.
	store, err := txdb.NewMemStoreFrom(nil, txs)
	if err != nil {
		t.Fatal(err)
	}
	aps, err := apriori.Mine(store, apriori.Config{MinSupport: tau})
	if err != nil {
		t.Fatal(err)
	}
	fps, err := fptree.Mine(store, fptree.Config{MinSupport: tau})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := mining.Diff("apriori", aps, "fpgrowth", fps); len(diffs) > 0 {
		t.Fatalf("baselines disagree:\n%v", diffs)
	}
	if len(aps) < 20 {
		t.Fatalf("workload too degenerate: %d patterns", len(aps))
	}
	want := mining.ToMap(aps)

	// Every BBS scheme agrees on itemsets; exact supports match Apriori.
	for _, scheme := range []Scheme{SFS, SFP, DFS, DFP} {
		res, err := db.Mine(MineOptions{MinSupportFrac: tauFrac, Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(res.Patterns) != len(want) {
			t.Errorf("%v mined %d patterns, baselines mined %d", scheme, len(res.Patterns), len(want))
			continue
		}
		for _, p := range res.Patterns {
			sup, ok := want[mining.Key(p.Items)]
			if !ok {
				t.Errorf("%v: spurious pattern %v", scheme, p.Items)
				continue
			}
			if p.Exact && p.Support != sup {
				t.Errorf("%v: %v support %d, want %d", scheme, p.Items, p.Support, sup)
			}
		}
	}

	// Association rules are consistent with the supports.
	rules, err := db.Rules(MineOptions{MinSupportFrac: tauFrac}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		full := append(append([]int32{}, r.Antecedent...), r.Consequent...)
		tx := txdb.NewTransaction(0, full)
		if want[mining.Key(tx.Items)] != r.Support {
			t.Errorf("rule %v: support %d, itemset support %d", r, r.Support, want[mining.Key(tx.Items)])
		}
		if r.Confidence < 0.5 || r.Confidence > 1.0 {
			t.Errorf("rule %v: confidence out of range", r)
		}
	}

	// Persistence: reopen and re-mine identically.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{M: 800, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Mine(MineOptions{MinSupportFrac: tauFrac, Scheme: DFP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != len(want) {
		t.Errorf("reopened database mined %d patterns, want %d", len(res.Patterns), len(want))
	}

	// Dynamic growth: append more data, results change consistently with a
	// fresh Apriori over the union.
	gen2, err := quest.NewGenerator(quest.Config{
		D: 500, N: 600, T: 8, I: 4, L: 150,
		CorrelationLevel: 0.5, CorruptionMean: 0.5, CorruptionDev: 0.1,
		Seed: 99, FirstTID: 10001,
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := gen2.Generate()
	for _, tx := range extra {
		if err := db2.Append(tx.TID, tx.Items); err != nil {
			t.Fatal(err)
		}
	}
	all := append(append([]txdb.Transaction{}, txs...), extra...)
	store2, _ := txdb.NewMemStoreFrom(nil, all)
	tau2 := mining.MinSupportCount(tauFrac, len(all))
	aps2, err := apriori.Mine(store2, apriori.Config{MinSupport: tau2})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := db2.Mine(MineOptions{MinSupportFrac: tauFrac, Scheme: DFP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Patterns) != len(aps2) {
		t.Errorf("after growth: DFP mined %d patterns, Apriori %d", len(res2.Patterns), len(aps2))
	}

	// Ad-hoc query parity with a direct scan.
	probe := txs[0].Items[:min(2, len(txs[0].Items))]
	_, exact, err := db2.Count(probe)
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for _, tx := range all {
		if tx.Contains(probe) {
			wantCount++
		}
	}
	if exact != wantCount {
		t.Errorf("Count(%v) = %d, scan says %d", probe, exact, wantCount)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
