package bbsmine

import (
	"bbsmine/internal/bitvec"
	"bbsmine/internal/txdb"
)

// Internal type names used in facade signatures, kept here so the public
// files read without internal package noise.

type bitvecVector = bitvec.Vector

type txdbTransaction = txdb.Transaction
