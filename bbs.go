// Package bbsmine is a frequent-pattern mining library built on the
// Bit-Sliced Bloom-Filtered Signature File (BBS) of Lan, Ooi & Tan,
// "Efficient Indexing Structures for Mining Frequent Patterns" (ICDE 2002).
//
// A Database couples an append-only transaction store with a persistent BBS
// index. Unlike an FP-tree, the index never needs rebuilding: appending a
// transaction updates both structures in place, so mining stays cheap as
// the database grows. Mining runs one of the paper's four filter-and-refine
// algorithms (SFS, SFP, DFS, DFP); the index also answers ad-hoc support
// queries — including over non-frequent itemsets and under constraints —
// that scan-based miners cannot answer without re-reading the data.
//
// Quick start:
//
//	db, err := bbsmine.Open(dir, bbsmine.Options{})
//	...
//	db.Append(tid, []int32{3, 17, 29})
//	...
//	res, err := db.Mine(bbsmine.MineOptions{MinSupportFrac: 0.003, Scheme: bbsmine.DFP})
//	for _, p := range res.Patterns { fmt.Println(p.Items, p.Support) }
package bbsmine

import (
	"fmt"
	"os"
	"path/filepath"

	"bbsmine/internal/core"
	"bbsmine/internal/iostat"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// Options configures a Database.
type Options struct {
	// M is the signature width in bits. Larger M means fewer false drops
	// but a bigger index; the paper's sweet spot for its workloads is 1600
	// (Section 4.1). Defaults to 1600.
	M int
	// K is the number of hash functions per item. Defaults to 4 (the four
	// 32-bit groups of one MD5 digest).
	K int
}

func (o *Options) applyDefaults() {
	if o.M == 0 {
		o.M = 1600
	}
	if o.K == 0 {
		o.K = 4
	}
}

// Database is a transaction database with a BBS index kept in sync.
// It is not safe for concurrent use.
type Database struct {
	store txdb.Store
	file  *txdb.FileStore // nil for in-memory databases
	index *sigfile.BBS
	stats *iostat.Stats
	dir   string // "" for in-memory databases
}

const (
	dataFile  = "transactions.txdb"
	indexFile = "index.bbs"
)

// Open opens (or creates) a persistent database in dir. If the index file
// is missing or lags behind the transaction file — for example after a
// crash between appends — the missing tail is re-indexed automatically.
func Open(dir string, opts Options) (*Database, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bbsmine: creating %s: %w", dir, err)
	}
	stats := &iostat.Stats{}
	hasher := sighash.NewMD5(opts.M, opts.K)

	dataPath := filepath.Join(dir, dataFile)
	var file *txdb.FileStore
	var err error
	if _, statErr := os.Stat(dataPath); statErr == nil {
		file, err = txdb.OpenFileStore(dataPath, stats)
	} else {
		file, err = txdb.CreateFileStore(dataPath, stats)
	}
	if err != nil {
		return nil, err
	}

	indexPath := filepath.Join(dir, indexFile)
	var index *sigfile.BBS
	if _, statErr := os.Stat(indexPath); statErr == nil {
		index, err = sigfile.Load(indexPath, hasher, stats)
		if err != nil {
			file.Close()
			return nil, err
		}
	} else {
		index = sigfile.New(hasher, stats)
	}
	if index.Len() > file.Len() {
		file.Close()
		return nil, fmt.Errorf("bbsmine: index covers %d transactions but store has only %d; index belongs to different data", index.Len(), file.Len())
	}

	db := &Database{store: file, file: file, index: index, stats: stats, dir: dir}
	if err := db.reindexTail(); err != nil {
		file.Close()
		return nil, err
	}
	return db, nil
}

// NewInMemory creates a volatile database, useful for tests, examples and
// benchmarks.
func NewInMemory(opts Options) *Database {
	opts.applyDefaults()
	stats := &iostat.Stats{}
	return &Database{
		store: txdb.NewMemStore(stats),
		index: sigfile.New(sighash.NewMD5(opts.M, opts.K), stats),
		stats: stats,
	}
}

// reindexTail inserts any transactions present in the store but not yet in
// the index (crash recovery between data append and index save).
func (db *Database) reindexTail() error {
	if db.index.Len() == db.store.Len() {
		return nil
	}
	from := db.index.Len()
	return db.store.Scan(func(pos int, tx txdb.Transaction) bool {
		if pos >= from {
			db.index.Insert(tx.Items)
		}
		return true
	})
}

// Append adds one transaction to the database and the index. Items are
// normalized (sorted, deduplicated); the input slice is not retained.
func (db *Database) Append(tid int64, items []int32) error {
	tx := txdb.NewTransaction(tid, items)
	if err := db.store.Append(tx); err != nil {
		return err
	}
	db.index.Insert(tx.Items)
	return nil
}

// Len returns the number of transaction slots, including deleted ones.
func (db *Database) Len() int { return db.store.Len() }

// Live returns the number of non-deleted transactions.
func (db *Database) Live() int { return db.index.Live() }

// Delete tombstones the transaction at ordinal position pos. The record
// remains in the data file (Bloom bits cannot be unset) but disappears from
// every estimate, count and mining result immediately; Compact reclaims the
// space. Deleting twice or out of range is an error.
func (db *Database) Delete(pos int) error {
	tx, err := db.store.Get(pos)
	if err != nil {
		return err
	}
	return db.index.Delete(pos, tx.Items)
}

// Compact rewrites a persistent database without its deleted transactions
// and rebuilds the index over the survivors. Positions shift; constraints
// built earlier are invalidated (their length no longer matches). Only
// persistent databases can be compacted.
func (db *Database) Compact() error {
	if db.dir == "" {
		return fmt.Errorf("bbsmine: in-memory database cannot be compacted")
	}
	if db.index.Deleted() == 0 {
		return nil
	}
	tmpPath := filepath.Join(db.dir, dataFile+".compact")
	newStore, err := txdb.CreateFileStore(tmpPath, db.stats)
	if err != nil {
		return err
	}
	newIndex := sigfile.New(db.index.Hasher(), db.stats)
	scanErr := db.store.Scan(func(pos int, tx txdb.Transaction) bool {
		if !db.index.IsLive(pos) {
			return true
		}
		if err = newStore.Append(tx); err != nil {
			return false
		}
		newIndex.Insert(tx.Items)
		return true
	})
	if scanErr != nil {
		err = scanErr
	}
	if err != nil {
		newStore.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("bbsmine: compacting: %w", err)
	}
	if err := newStore.Sync(); err != nil {
		newStore.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("bbsmine: compacting: %w", err)
	}
	if err := db.file.Close(); err != nil {
		newStore.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("bbsmine: compacting: %w", err)
	}
	newStore.Close()
	dataPath := filepath.Join(db.dir, dataFile)
	if err := os.Rename(tmpPath, dataPath); err != nil {
		return fmt.Errorf("bbsmine: compacting: %w", err)
	}
	reopened, err := txdb.OpenFileStore(dataPath, db.stats)
	if err != nil {
		return fmt.Errorf("bbsmine: reopening after compaction: %w", err)
	}
	db.file = reopened
	db.store = reopened
	db.index = newIndex
	return db.Save()
}

// Get returns the transaction at ordinal position pos (0-based insertion
// order) as (tid, items).
func (db *Database) Get(pos int) (int64, []int32, error) {
	tx, err := db.store.Get(pos)
	if err != nil {
		return 0, nil, err
	}
	return tx.TID, tx.Items, nil
}

// IndexBytes returns the resident size of the BBS index in bytes.
func (db *Database) IndexBytes() int64 { return db.index.TotalBytes() }

// Save persists the index. Transaction data is durable as soon as Append
// returns; the index is saved explicitly because it is cheap to rebuild a
// short tail but expensive to write on every append.
func (db *Database) Save() error {
	if db.dir == "" {
		return fmt.Errorf("bbsmine: in-memory database has nothing to save")
	}
	if err := db.file.Sync(); err != nil {
		return fmt.Errorf("bbsmine: syncing data: %w", err)
	}
	return db.index.Save(filepath.Join(db.dir, indexFile))
}

// Close releases the underlying files. In-memory databases are a no-op.
func (db *Database) Close() error {
	if db.file != nil {
		return db.file.Close()
	}
	return nil
}

// Stats returns a snapshot of the I/O and work counters accumulated so far.
func (db *Database) Stats() iostat.Snapshot { return db.stats.Snapshot() }

// ResetStats zeroes the counters, typically before a measured run.
func (db *Database) ResetStats() { db.stats.Reset() }

// miner builds a core.Miner for the current state.
func (db *Database) miner() (*core.Miner, error) {
	return core.NewMiner(db.index, db.store, db.stats)
}
