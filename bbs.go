// Package bbsmine is a frequent-pattern mining library built on the
// Bit-Sliced Bloom-Filtered Signature File (BBS) of Lan, Ooi & Tan,
// "Efficient Indexing Structures for Mining Frequent Patterns" (ICDE 2002).
//
// A Database couples an append-only transaction store with a persistent BBS
// index. Unlike an FP-tree, the index never needs rebuilding: appending a
// transaction updates both structures in place, so mining stays cheap as
// the database grows. Mining runs one of the paper's four filter-and-refine
// algorithms (SFS, SFP, DFS, DFP); the index also answers ad-hoc support
// queries — including over non-frequent itemsets and under constraints —
// that scan-based miners cannot answer without re-reading the data.
//
// The database can be partitioned horizontally into N shards
// (Options.Shards), each owning its own slices, counters and data file.
// Writes route round-robin by insertion order; ad-hoc counts fan out to the
// shards and merge deterministically; a full mining run binds to a merged
// read view whose results are byte-identical to an unsharded database over
// the same transactions. Sharding changes throughput and layout, never an
// answer.
//
// Quick start:
//
//	db, err := bbsmine.Open(dir, bbsmine.Options{})
//	...
//	db.Append(tid, []int32{3, 17, 29})
//	...
//	res, err := db.Mine(bbsmine.MineOptions{MinSupportFrac: 0.003, Scheme: bbsmine.DFP})
//	for _, p := range res.Patterns { fmt.Println(p.Items, p.Support) }
package bbsmine

import (
	"fmt"

	"bbsmine/internal/core"
	"bbsmine/internal/iostat"
	"bbsmine/internal/pager"
	"bbsmine/internal/shard"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// Options configures a Database.
type Options struct {
	// M is the signature width in bits. Larger M means fewer false drops
	// but a bigger index; the paper's sweet spot for its workloads is 1600
	// (Section 4.1). Defaults to 1600.
	M int
	// K is the number of hash functions per item. Defaults to 4 (the four
	// 32-bit groups of one MD5 digest).
	K int
	// Shards partitions the database horizontally. 0 means "whatever the
	// directory already is" (1 for a new or unsharded directory). Opening
	// an existing unsharded directory with Shards > 1 migrates it in place;
	// opening a sharded directory with a different non-zero count is an
	// error. Mining results are identical for every shard count.
	Shards int
	// Compress turns on adaptive per-slice storage: each slice is kept
	// dense, as a sorted position list, or run-length encoded — whichever
	// is smallest — and the AND chain runs directly over the compressed
	// forms. Every estimate, count and mined pattern is byte-identical to
	// the dense layout; only the memory footprint and the per-AND cost
	// change. Applied after open (and after the saved index loads), so it
	// composes with any existing directory.
	Compress bool
}

func (o *Options) applyDefaults() {
	if o.M == 0 {
		o.M = 1600
	}
	if o.K == 0 {
		o.K = 4
	}
}

// Database is a transaction database with a BBS index kept in sync.
// It is not safe for concurrent use.
type Database struct {
	sdb   *shard.DB
	stats *iostat.Stats
	pager *pager.Pager // non-nil while the index storage is tiered
}

// Open opens (or creates) a persistent database in dir. If an index file
// is missing or lags behind its transaction file — for example after a
// crash between appends — the missing tail is re-indexed automatically.
func Open(dir string, opts Options) (*Database, error) {
	opts.applyDefaults()
	stats := &iostat.Stats{}
	sdb, err := shard.Open(dir, opts.M, opts.K, opts.Shards, stats)
	if err != nil {
		return nil, err
	}
	if opts.Compress {
		sdb.SetCompression(true)
	}
	return &Database{sdb: sdb, stats: stats}, nil
}

// NewInMemory creates a volatile database, useful for tests, examples and
// benchmarks.
func NewInMemory(opts Options) *Database {
	opts.applyDefaults()
	shards := opts.Shards
	if shards == 0 {
		shards = 1
	}
	stats := &iostat.Stats{}
	sdb, err := shard.NewMem(sighash.NewMD5(opts.M, opts.K), shards, stats)
	if err != nil {
		// Only a non-positive shard count can fail; mirror the old API's
		// no-error contract by treating it as a programming error.
		panic(err)
	}
	if opts.Compress {
		sdb.SetCompression(true)
	}
	return &Database{sdb: sdb, stats: stats}
}

// Shards returns the database's shard count (1 when unsharded).
func (db *Database) Shards() int { return db.sdb.Shards() }

// Append adds one transaction to the database and the index. Items are
// normalized (sorted, deduplicated); the input slice is not retained. With
// shards, the transaction routes round-robin to the shard of its insertion
// ordinal.
func (db *Database) Append(tid int64, items []int32) error {
	return db.sdb.Append(txdb.NewTransaction(tid, items))
}

// Len returns the number of transaction slots, including deleted ones.
func (db *Database) Len() int { return db.sdb.Len() }

// Live returns the number of non-deleted transactions.
func (db *Database) Live() int { return db.sdb.Index().Live() }

// Delete tombstones the transaction at ordinal position pos. The record
// remains in the data file (Bloom bits cannot be unset) but disappears from
// every estimate, count and mining result immediately; Compact reclaims the
// space. Deleting twice or out of range is an error.
func (db *Database) Delete(pos int) error { return db.sdb.Delete(pos) }

// Compact rewrites a persistent database without its deleted transactions
// and rebuilds the index over the survivors. Positions shift; constraints
// built earlier are invalidated (their length no longer matches). Only
// persistent unsharded databases can be compacted: dropping rows would
// renumber them across shards and break the round-robin routing.
func (db *Database) Compact() error { return db.sdb.Compact() }

// Get returns the transaction at ordinal position pos (0-based insertion
// order) as (tid, items).
func (db *Database) Get(pos int) (int64, []int32, error) {
	tx, err := db.sdb.Get(pos)
	if err != nil {
		return 0, nil, err
	}
	return tx.TID, tx.Items, nil
}

// IndexBytes returns the logical (all-dense) size of the BBS index in
// bytes, summed over the shards — the classic m × n / 8 footprint, stable
// across storage policies.
func (db *Database) IndexBytes() int64 {
	var n int64
	for s := 0; s < db.sdb.Shards(); s++ {
		n += db.sdb.Index().Part(s).TotalBytes()
	}
	return n
}

// ResidentIndexBytes returns the bytes the slices actually occupy under
// their current encodings, summed over the shards. Equal to IndexBytes when
// compression is off (modulo lazily-grown tails); the compression ratio is
// IndexBytes / ResidentIndexBytes.
func (db *Database) ResidentIndexBytes() int64 {
	return db.sdb.Index().ResidentSliceBytes()
}

// Compressed reports whether adaptive slice compression is on.
func (db *Database) Compressed() bool { return db.sdb.Index().Compressed() }

// SetCompression turns adaptive slice compression on or off, re-encoding
// every shard's slices to match. Mining results are identical either way;
// see Options.Compress.
func (db *Database) SetCompression(on bool) { db.sdb.SetCompression(on) }

// Tier caps the index's memory at memBudget bytes by splitting the slices
// into tiers: the hottest slices (ranked by touches, the per-slice
// AND-participation counts an Observer collects during a profiling run —
// nil ranks smallest-first) stay resident inside half the budget, and the
// rest serialize into per-shard cold files whose pages fault through a
// bounded buffer pool sharing the remaining budget. Every estimate, count
// and mined pattern stays byte-identical to the resident index; only where
// the bytes live — and the I/O to reach them — changes.
//
// Cold files land in the database directory; an in-memory database needs
// scratchDir. Untier reverses the split.
func (db *Database) Tier(memBudget int64, scratchDir string, touches []uint64) error {
	if db.pager != nil {
		return fmt.Errorf("bbsmine: database already tiered")
	}
	pg := pager.New(memBudget)
	if err := db.sdb.Tier(pg, scratchDir, memBudget/2, touches); err != nil {
		// A failed multi-shard pass may have tiered a prefix; roll it back.
		_ = db.sdb.Untier()
		return err
	}
	db.pager = pg
	return nil
}

// Untier thaws every slice back to residency and closes the cold files.
func (db *Database) Untier() error {
	if db.pager == nil {
		return nil
	}
	err := db.sdb.Untier()
	db.pager = nil
	return err
}

// Tiered reports whether the index storage is currently tiered.
func (db *Database) Tiered() bool { return db.pager != nil }

// TierStats is a point-in-time view of the tiered storage: the buffer
// pool's counters plus the slice-tier census. Zero when untiered.
type TierStats struct {
	MemBudget     int64   // the Tier byte budget
	ResidentBytes int64   // bytes held by pool frames
	ReservedBytes int64   // hot-tier bytes reserved against the budget
	Faults        int64   // cold pages read through
	Hits          int64   // page requests served from a resident frame
	Evictions     int64   // frames reclaimed by the CLOCK sweep
	HitRatio      float64 // hits / (hits + faults)
	SlicesHot     int     // slices resident (pinned hot or untiered)
	SlicesCold    int     // slices faulting from the cold tier
	ColdBytes     int64   // summed cold payload bytes
}

// TierStats returns the tiered storage counters; the zero value when the
// database is not tiered.
func (db *Database) TierStats() TierStats {
	if db.pager == nil {
		return TierStats{}
	}
	s := db.pager.Stats()
	hot, cold := db.sdb.Index().TierCensus()
	return TierStats{
		MemBudget:     db.pager.Budget(),
		ResidentBytes: s.ResidentBytes,
		ReservedBytes: s.ReservedBytes,
		Faults:        s.Faults,
		Hits:          s.Hits,
		Evictions:     s.Evictions,
		HitRatio:      s.HitRatio(),
		SlicesHot:     hot,
		SlicesCold:    cold,
		ColdBytes:     db.sdb.Index().ColdPayloadBytes(),
	}
}

// Save persists every shard's index. Transaction data is durable as soon as
// Append returns; the index is saved explicitly because it is cheap to
// rebuild a short tail but expensive to write on every append.
func (db *Database) Save() error {
	if db.sdb.Dir() == "" {
		return fmt.Errorf("bbsmine: in-memory database has nothing to save")
	}
	return db.sdb.Save()
}

// Close releases the underlying files. In-memory databases are a no-op.
func (db *Database) Close() error { return db.sdb.Close() }

// Stats returns a snapshot of the I/O and work counters accumulated so far.
func (db *Database) Stats() iostat.Snapshot { return db.stats.Snapshot() }

// ResetStats zeroes the counters, typically before a measured run.
func (db *Database) ResetStats() { db.stats.Reset() }

// miner builds a core.Miner over the merged read view (with one shard, the
// database's own index and store; the merge is cached between writes).
func (db *Database) miner() (*core.Miner, error) {
	idx, store, err := db.sdb.Merged()
	if err != nil {
		return nil, err
	}
	return core.NewMiner(idx, store, db.stats)
}
