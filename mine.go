package bbsmine

import (
	"context"
	"fmt"

	"bbsmine/internal/core"
	"bbsmine/internal/mining"
	"bbsmine/internal/rules"
)

// Scheme selects one of the paper's four filter-and-refine algorithms.
type Scheme = core.Scheme

// The four mining algorithms of the paper's Section 3.3. DFP (dual filter +
// probe) is the paper's best performer across every workload it evaluates.
const (
	SFS = core.SFS // SingleFilter + SequentialScan
	SFP = core.SFP // SingleFilter + Probe
	DFS = core.DFS // DualFilter + SequentialScan
	DFP = core.DFP // DualFilter + Probe
)

// Pattern is one mined itemset. When Exact is false the support is the
// index's estimate, which never undercounts the true support.
type Pattern = core.Pattern

// Result carries the mined patterns plus the run's bookkeeping (candidate
// count, false drops, how many patterns the dual filter certified without
// touching the database).
type Result = core.Result

// MineOptions parameterizes a mining run.
type MineOptions struct {
	// Ctx, when non-nil, cancels the run when it is done: Mine returns an
	// error wrapping Ctx.Err(). Use it to bound a query's latency (deadline)
	// or abandon it (cancellation); nil never cancels.
	Ctx context.Context
	// MinSupportFrac is the minimum support as a fraction of the database
	// size (the paper's default is 0.003, i.e. 0.3%). Ignored when
	// MinSupportCount is set.
	MinSupportFrac float64
	// MinSupportCount is the absolute support threshold; takes precedence
	// over MinSupportFrac when positive.
	MinSupportCount int
	// Scheme selects the algorithm; the zero value is SFS. Use DFP unless
	// you are comparing schemes.
	Scheme Scheme
	// MemoryBudget, in bytes, triggers the adaptive three-phase filtering
	// when the index exceeds it, and batches sequential verification.
	// Zero means unconstrained.
	MemoryBudget int64
	// MaxLen bounds pattern length; 0 means unbounded.
	MaxLen int
	// Workers bounds the mining worker pool. 0 (the default) uses one
	// worker per available CPU; 1 forces the sequential engine. Every value
	// returns the identical Result — parallelism changes only the wall
	// clock, never the answer or the accounting.
	Workers int
	// Ablation knobs, for benchmarking only: each disables one hot-path
	// optimization without changing any result. NoEarlyExit keeps AND-ing
	// slices after the running count has fallen below the threshold;
	// NoIncrementalAnd recomputes every intersection from the root instead
	// of extending the parent's residual; NoSliceOrdering ANDs slices in
	// hash-position order instead of rarest-first.
	NoEarlyExit      bool
	NoIncrementalAnd bool
	NoSliceOrdering  bool

	// Observe, when non-nil, collects the run's telemetry: funnel counters
	// (candidates, certificates by flag, false drops), AND-kernel work,
	// phase timings, cache hit rates and optional sampled trace events.
	// Read a snapshot with Observe.Metrics() after (or during) the run.
	// Nil disables observability at a cost of one branch per hook site;
	// telemetry never changes the mining result.
	Observe *Observer

	// Shards is a guard, not a knob: 0 (the default) accepts whatever the
	// database is, any other value must equal the database's shard count or
	// the run is rejected. Mining results never depend on the shard count —
	// set this only to assert a deployment assumption (e.g. a benchmark
	// that must run sharded).
	Shards int
}

func (o MineOptions) threshold(n int) (int, error) {
	if o.MinSupportCount > 0 {
		return o.MinSupportCount, nil
	}
	if o.MinSupportFrac <= 0 || o.MinSupportFrac > 1 {
		return 0, fmt.Errorf("bbsmine: need MinSupportCount > 0 or MinSupportFrac in (0,1], got %v / %v",
			o.MinSupportCount, o.MinSupportFrac)
	}
	return mining.MinSupportCount(o.MinSupportFrac, n), nil
}

// checkShards enforces MineOptions.Shards as a deployment assertion.
func (db *Database) checkShards(opts MineOptions) error {
	if opts.Shards != 0 && opts.Shards != db.Shards() {
		return fmt.Errorf("bbsmine: MineOptions.Shards is %d but the database has %d shards", opts.Shards, db.Shards())
	}
	return nil
}

// Mine returns the frequent patterns of the database under the options.
func (db *Database) Mine(opts MineOptions) (*Result, error) {
	if err := db.checkShards(opts); err != nil {
		return nil, err
	}
	tau, err := opts.threshold(db.Len())
	if err != nil {
		return nil, err
	}
	m, err := db.miner()
	if err != nil {
		return nil, err
	}
	return m.Mine(core.Config{
		Ctx:              opts.Ctx,
		MinSupport:       tau,
		Scheme:           opts.Scheme,
		MemoryBudget:     opts.MemoryBudget,
		MaxLen:           opts.MaxLen,
		Workers:          opts.Workers,
		NoEarlyExit:      opts.NoEarlyExit,
		NoIncrementalAnd: opts.NoIncrementalAnd,
		NoSliceOrdering:  opts.NoSliceOrdering,
		Observe:          opts.Observe,
	})
}

// MineApprox runs filtering with no refinement phase (the paper's future-
// work extension): fastest possible answer, supports are estimates, the
// pattern set is a superset of the true frequent patterns.
func (db *Database) MineApprox(opts MineOptions) ([]Pattern, error) {
	if err := db.checkShards(opts); err != nil {
		return nil, err
	}
	tau, err := opts.threshold(db.Len())
	if err != nil {
		return nil, err
	}
	m, err := db.miner()
	if err != nil {
		return nil, err
	}
	return m.MineApprox(tau, opts.MaxLen, opts.Workers)
}

// Count estimates and exactly counts the occurrences of an arbitrary
// itemset — frequent or not — using one index lookup plus targeted probes.
// On a sharded database the count fans out: each shard ANDs its own slices
// and probes its own candidates, and the per-shard results merge by shard
// index, so no merged view is built for an ad-hoc query.
func (db *Database) Count(items []int32) (estimate, exact int, err error) {
	if db.Shards() > 1 {
		return db.sdb.Count(items)
	}
	m, err := db.miner()
	if err != nil {
		return 0, 0, err
	}
	return m.Count(items)
}

// CountWhere counts itemset occurrences among the transactions satisfying
// the predicate (the paper's constrained ad-hoc queries, e.g. "TIDs
// divisible by 7"). Building the constraint slice costs one sequential
// pass; see NewConstraint to build once and reuse.
func (db *Database) CountWhere(items []int32, pred func(tid int64) bool) (estimate, exact int, err error) {
	c, err := db.NewConstraint(pred)
	if err != nil {
		return 0, 0, err
	}
	return db.CountConstrained(items, c)
}

// Constraint marks a subset of the database's transactions for constrained
// queries and constrained mining. It is bound to the database state at
// creation time: appending transactions invalidates it.
type Constraint struct {
	vec *bitvecVector
	n   int
}

// NewConstraint materializes a constraint from a predicate over TIDs. The
// constraint is laid out in the merged read view's row order, which is what
// constrained counting and mining consume; it is opaque to callers either
// way.
func (db *Database) NewConstraint(pred func(tid int64) bool) (*Constraint, error) {
	_, store, err := db.sdb.Merged()
	if err != nil {
		return nil, err
	}
	v, err := core.BuildConstraint(store, func(_ int, tx txdbTransaction) bool {
		return pred(tx.TID)
	})
	if err != nil {
		return nil, err
	}
	return &Constraint{vec: v, n: db.Len()}, nil
}

// CountConstrained counts itemset occurrences under a previously built
// constraint.
func (db *Database) CountConstrained(items []int32, c *Constraint) (estimate, exact int, err error) {
	if c.n != db.Len() {
		return 0, 0, fmt.Errorf("bbsmine: constraint built over %d transactions, database now has %d", c.n, db.Len())
	}
	m, err := db.miner()
	if err != nil {
		return 0, 0, err
	}
	return m.CountConstrained(items, c.vec)
}

// MineConstrained mines frequent patterns restricted to the constrained
// transactions. Only the single-filter schemes (SFS, SFP) are valid: the
// dual filter's exact 1-itemset counts are unconstrained, so DFS and DFP
// are rejected.
func (db *Database) MineConstrained(opts MineOptions, c *Constraint) (*Result, error) {
	if err := db.checkShards(opts); err != nil {
		return nil, err
	}
	if c.n != db.Len() {
		return nil, fmt.Errorf("bbsmine: constraint built over %d transactions, database now has %d", c.n, db.Len())
	}
	tau, err := opts.threshold(db.Len())
	if err != nil {
		return nil, err
	}
	m, err := db.miner()
	if err != nil {
		return nil, err
	}
	return m.Mine(core.Config{
		Ctx:              opts.Ctx,
		MinSupport:       tau,
		Scheme:           opts.Scheme,
		MemoryBudget:     opts.MemoryBudget,
		MaxLen:           opts.MaxLen,
		Workers:          opts.Workers,
		NoEarlyExit:      opts.NoEarlyExit,
		NoIncrementalAnd: opts.NoIncrementalAnd,
		NoSliceOrdering:  opts.NoSliceOrdering,
		Observe:          opts.Observe,
		Constraint:       c.vec,
	})
}

// Rule re-exports the association-rule type.
type Rule = rules.Rule

// Rules mines frequent patterns with exact supports (scheme SFP, so every
// support is exact) and derives the association rules meeting the
// confidence threshold.
func (db *Database) Rules(opts MineOptions, minConfidence float64) ([]Rule, error) {
	opts.Scheme = SFP
	res, err := db.Mine(opts)
	if err != nil {
		return nil, err
	}
	return rules.Generate(res.Frequents(), minConfidence, db.Len())
}
