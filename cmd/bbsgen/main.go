// Command bbsgen generates synthetic transaction databases in the paper's
// workload families and writes them as .txdb files readable by bbsmine.
//
// Quest (Agrawal–Srikant) workloads, the paper's default:
//
//	bbsgen -out data.txdb -d 10000 -t 10 -i 10 -n 10000
//
// The dynamic web-log workload of Section 4.8 (one file per day):
//
//	bbsgen -workload weblog -out web -days 5
//
// which writes web.base.txdb and web.day1.txdb .. web.day5.txdb.
package main

import (
	"flag"
	"fmt"
	"os"

	"bbsmine/internal/quest"
	"bbsmine/internal/txdb"
	"bbsmine/internal/weblog"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbsgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbsgen", flag.ContinueOnError)
	var (
		workload = fs.String("workload", "quest", "workload family: quest or weblog")
		out      = fs.String("out", "data.txdb", "output path (weblog: prefix)")
		format   = fs.String("format", "txdb", "output format: txdb (binary) or basket (text, one transaction per line)")
		seed     = fs.Int64("seed", 1, "generator seed")

		d = fs.Int("d", 10000, "quest: number of transactions")
		t = fs.Int("t", 10, "quest: average transaction size")
		i = fs.Int("i", 10, "quest: average maximal potentially-large itemset size")
		n = fs.Int("n", 10000, "quest: number of distinct items")
		l = fs.Int("l", 2000, "quest: number of potentially-large itemsets")

		files = fs.Int("files", 5000, "weblog: number of files on the server")
		base  = fs.Int("base", 40000, "weblog: transactions in the base database D0")
		inc   = fs.Int("inc", 5000, "weblog: transactions per daily increment")
		days  = fs.Int("days", 5, "weblog: number of daily increments")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *format != "txdb" && *format != "basket" {
		return fmt.Errorf("unknown format %q (want txdb or basket)", *format)
	}
	writeStore := func(path string, txs []txdb.Transaction) (int, error) {
		if *format == "basket" {
			f, err := os.Create(path)
			if err != nil {
				return 0, err
			}
			defer f.Close()
			store, err := txdb.NewMemStoreFrom(nil, txs)
			if err != nil {
				return 0, err
			}
			if err := txdb.WriteBasket(f, store); err != nil {
				return 0, err
			}
			return len(txs), f.Sync()
		}
		store, err := txdb.WriteAll(path, nil, txs)
		if err != nil {
			return 0, err
		}
		defer store.Close()
		return store.Len(), store.Sync()
	}

	switch *workload {
	case "quest":
		cfg := quest.DefaultConfig()
		cfg.D, cfg.T, cfg.I, cfg.N, cfg.L, cfg.Seed = *d, *t, *i, *n, *l, *seed
		g, err := quest.NewGenerator(cfg)
		if err != nil {
			return err
		}
		count, err := writeStore(*out, g.Generate())
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %s, %d transactions, %d items\n", *out, cfg.Name(), count, cfg.N)
		return nil

	case "weblog":
		cfg := weblog.DefaultConfig()
		cfg.Files, cfg.BaseTransactions, cfg.IncrementTransactions, cfg.Days, cfg.Seed =
			*files, *base, *inc, *days, *seed
		w, err := weblog.Generate(cfg)
		if err != nil {
			return err
		}
		ext := ".txdb"
		if *format == "basket" {
			ext = ".basket"
		}
		write := func(path string, txs []txdb.Transaction) error {
			count, err := writeStore(path, txs)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s: %d transactions\n", path, count)
			return nil
		}
		if err := write(*out+".base"+ext, w.Base); err != nil {
			return err
		}
		for di, txs := range w.Increments {
			if err := write(fmt.Sprintf("%s.day%d%s", *out, di+1, ext), txs); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown workload %q (want quest or weblog)", *workload)
}
