package main

import (
	"os"
	"path/filepath"
	"testing"

	"bbsmine/internal/txdb"
)

func TestRunQuest(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.txdb")
	err := run([]string{"-out", out, "-d", "200", "-t", "6", "-i", "3", "-n", "100", "-l", "20"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := txdb.OpenFileStore(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != 200 {
		t.Errorf("generated %d transactions, want 200", store.Len())
	}
	seen := 0
	store.Scan(func(_ int, tx txdb.Transaction) bool {
		if err := tx.Validate(); err != nil {
			t.Fatalf("invalid transaction: %v", err)
		}
		seen++
		return true
	})
	if seen != 200 {
		t.Errorf("scanned %d", seen)
	}
}

func TestRunWeblog(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "web")
	err := run([]string{"-workload", "weblog", "-out", prefix,
		"-files", "50", "-base", "100", "-inc", "20", "-days", "3"})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".base.txdb", ".day1.txdb", ".day2.txdb", ".day3.txdb"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("missing %s: %v", suffix, err)
		}
	}
	base, err := txdb.OpenFileStore(prefix+".base.txdb", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if base.Len() != 100 {
		t.Errorf("base has %d transactions, want 100", base.Len())
	}
}

func TestRunQuestBasketFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.basket")
	err := run([]string{"-out", out, "-format", "basket",
		"-d", "50", "-t", "5", "-i", "3", "-n", "40", "-l", "10"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	txs, err := txdb.ReadBasket(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 50 {
		t.Errorf("basket file has %d transactions, want 50", len(txs))
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run([]string{"-workload", "nonsense"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-d", "not-a-number"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-out", filepath.Join(t.TempDir(), "x.txdb"), "-t", "0"}); err == nil {
		t.Error("invalid quest config accepted")
	}
}
