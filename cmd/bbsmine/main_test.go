package main

import (
	"os"
	"path/filepath"
	"testing"

	"bbsmine/internal/txdb"
)

func osWrite(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// writeDataset produces a small .txdb file for import tests.
func writeDataset(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txdb")
	txs := []txdb.Transaction{
		txdb.NewTransaction(1, []int32{1, 2, 3}),
		txdb.NewTransaction(2, []int32{1, 2}),
		txdb.NewTransaction(3, []int32{1, 2, 4}),
		txdb.NewTransaction(4, []int32{2, 3}),
		txdb.NewTransaction(5, []int32{1, 2}),
	}
	s, err := txdb.WriteAll(path, nil, txs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	return path
}

func TestImportAndMine(t *testing.T) {
	data := writeDataset(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := run([]string{"-db", dir, "-import", data, "-m", "64", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	// Mining against the persisted database must work in a fresh process
	// invocation (fresh run call).
	if err := run([]string{"-db", dir, "-m", "64", "-k", "2", "-minsup", "0.5", "-scheme", "DFP"}); err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"SFS", "sfp", "DFS"} {
		if err := run([]string{"-db", dir, "-m", "64", "-k", "2", "-minsup", "0.5", "-scheme", scheme}); err != nil {
			t.Fatalf("scheme %s: %v", scheme, err)
		}
	}
}

func TestCountQuery(t *testing.T) {
	data := writeDataset(t)
	dir := filepath.Join(t.TempDir(), "db")
	if err := run([]string{"-db", dir, "-import", data, "-m", "64", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-db", dir, "-m", "64", "-k", "2", "-count", "1,2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-db", dir, "-m", "64", "-k", "2", "-count", "1,2", "-where-tid-mod", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-db", dir, "-m", "64", "-k", "2", "-count", "1,junk"}); err == nil {
		t.Error("malformed itemset accepted")
	}
}

func TestImportBasket(t *testing.T) {
	basket := filepath.Join(t.TempDir(), "data.basket")
	if err := osWrite(basket, "1 2 3\n1 2\n2 3\n"); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := run([]string{"-db", dir, "-import-basket", basket, "-m", "64", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-db", dir, "-m", "64", "-k", "2", "-count", "1,2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-db", dir, "-import-basket", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing basket file accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -db accepted")
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := run([]string{"-db", dir, "-minsup", "0.5", "-scheme", "BOGUS"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run([]string{"-db", dir, "-import", filepath.Join(t.TempDir(), "missing.txdb")}); err == nil {
		t.Error("missing import file accepted")
	}
}

func TestParseItems(t *testing.T) {
	items, err := parseItems(" 3, 17 ,29")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || items[0] != 3 || items[1] != 17 || items[2] != 29 {
		t.Errorf("parseItems = %v", items)
	}
	if _, err := parseItems(""); err == nil {
		t.Error("empty itemset accepted")
	}
}
