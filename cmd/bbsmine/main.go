// Command bbsmine builds a BBS index over a transaction database and mines
// frequent patterns with any of the paper's four schemes, or answers ad-hoc
// count queries.
//
// Mine a .txdb file produced by bbsgen (the index persists next to it):
//
//	bbsmine -db dataset/ -import data.txdb
//	bbsmine -db dataset/ -minsup 0.003 -scheme DFP
//
// Ad-hoc queries (Section 4.9):
//
//	bbsmine -db dataset/ -count 3,17,29
//	bbsmine -db dataset/ -count 3,17 -where-tid-mod 7
//
// -shards N opens (or migrates to) an N-way sharded database: counts fan
// out per shard, mining binds to a merged view, and every answer is
// identical to an unsharded database over the same data.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"bbsmine"
	"bbsmine/internal/txdb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbsmine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbsmine", flag.ContinueOnError)
	var (
		dir          = fs.String("db", "", "database directory (required)")
		importPath   = fs.String("import", "", "append all transactions from this .txdb file, then save the index")
		importBasket = fs.String("import-basket", "", "append transactions from a basket-format text file (one transaction per line, space-separated items)")
		m            = fs.Int("m", 1600, "signature bits")
		k            = fs.Int("k", 4, "hash functions per item")
		shards       = fs.Int("shards", 0, "shard the database N ways (0 = whatever the directory already is; migrates a flat directory in place)")
		compress     = fs.Bool("compress", false, "adaptive per-slice compression (dense/sparse/RLE); mining results are byte-identical, the index just gets smaller")

		memBudget = fs.Int64("mem-budget", 0, "tier the index to this byte budget: hot slices stay pinned, the rest fault from per-shard cold files through a shared buffer pool (0 = fully resident)")

		minsup  = fs.Float64("minsup", 0, "mine with this minimum support fraction (e.g. 0.003)")
		scheme  = fs.String("scheme", "DFP", "mining scheme: SFS, SFP, DFS or DFP")
		maxLen  = fs.Int("maxlen", 0, "maximum pattern length (0 = unbounded)")
		memory  = fs.Int64("memory", 0, "memory budget in bytes (0 = unconstrained)")
		workers = fs.Int("workers", 0, "mining worker pool size (0 = one per CPU, 1 = sequential)")
		top     = fs.Int("top", 20, "print at most this many patterns (0 = all)")

		count    = fs.String("count", "", "comma-separated itemset to count instead of mining")
		whereMod = fs.Int64("where-tid-mod", 0, "restrict -count to TIDs divisible by this value")

		httpAddr    = fs.String("http", "", "serve /metrics (Prometheus text), /debug/vars and /debug/pprof on this address during the run (e.g. :6060)")
		tracePath   = fs.String("trace", "", "write sampled JSON-lines trace events of the mining run to this file")
		traceSample = fs.Int("trace-sample", 64, "with -trace, keep every Nth event (1 = keep all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-db is required")
	}

	db, err := bbsmine.Open(*dir, bbsmine.Options{M: *m, K: *k, Shards: *shards, Compress: *compress})
	if err != nil {
		return err
	}
	defer db.Close()

	// Telemetry is opt-in: either exposition flag creates the registry; with
	// both unset observer stays nil and mining runs the zero-cost path.
	var observer *bbsmine.Observer
	if *httpAddr != "" || *tracePath != "" {
		observer = bbsmine.NewObserver()
		db.BindStats(observer)
		if *tracePath != "" {
			tf, err := os.Create(*tracePath)
			if err != nil {
				return fmt.Errorf("creating -trace output: %w", err)
			}
			defer tf.Close()
			observer.SetTracer(bbsmine.NewTracer(tf, *traceSample))
		}
		if *httpAddr != "" {
			observer.Publish("bbsmine")
			ln, err := net.Listen("tcp", *httpAddr)
			if err != nil {
				return fmt.Errorf("-http listen: %w", err)
			}
			defer ln.Close()
			fmt.Fprintf(os.Stderr, "serving /metrics and /debug/pprof/ on http://%s\n", ln.Addr())
			go func() {
				srv := &http.Server{Handler: bbsmine.MetricsMux()}
				if serveErr := srv.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && !errors.Is(serveErr, net.ErrClosed) {
					fmt.Fprintln(os.Stderr, "bbsmine: -http:", serveErr)
				}
			}()
		}
	}

	if *importPath != "" {
		src, err := txdb.OpenFileStore(*importPath, nil)
		if err != nil {
			return err
		}
		defer src.Close()
		n := 0
		err = src.Scan(func(_ int, tx txdb.Transaction) bool {
			if appendErr := db.Append(tx.TID, tx.Items); appendErr != nil {
				err = appendErr
				return false
			}
			n++
			return true
		})
		if err != nil {
			return err
		}
		if err := db.Save(); err != nil {
			return err
		}
		fmt.Printf("imported %d transactions (database now %d, index %d KiB)\n",
			n, db.Len(), db.IndexBytes()>>10)
	}

	if *importBasket != "" {
		f, err := os.Open(*importBasket)
		if err != nil {
			return err
		}
		txs, err := txdb.ReadBasket(f)
		f.Close()
		if err != nil {
			return err
		}
		base := int64(db.Len())
		for _, tx := range txs {
			if err := db.Append(base+tx.TID, tx.Items); err != nil {
				return err
			}
		}
		if err := db.Save(); err != nil {
			return err
		}
		fmt.Printf("imported %d basket transactions (database now %d, index %d KiB)\n",
			len(txs), db.Len(), db.IndexBytes()>>10)
	}

	if *memBudget > 0 {
		// Tier after any imports so the split covers the final index. The
		// hot tier is obs-driven when telemetry is on (the observer's
		// per-slice touch tallies rank the slices); otherwise the smallest
		// slices stay hot.
		var touches []uint64
		if observer != nil {
			touches = observer.SliceTouches()
		}
		if err := db.Tier(*memBudget, "", touches); err != nil {
			return err
		}
		if observer != nil {
			db.BindPager(observer)
		}
		ts := db.TierStats()
		fmt.Fprintf(os.Stderr, "tiered: budget %d KiB, %d slices hot (%d KiB reserved), %d cold (%d KiB on disk)\n",
			*memBudget>>10, ts.SlicesHot, ts.ReservedBytes>>10, ts.SlicesCold, ts.ColdBytes>>10)
	}

	if *count != "" {
		items, err := parseItems(*count)
		if err != nil {
			return err
		}
		var est, exact int
		if *whereMod > 0 {
			mod := *whereMod
			est, exact, err = db.CountWhere(items, func(tid int64) bool { return tid%mod == 0 })
		} else {
			est, exact, err = db.Count(items)
		}
		if err != nil {
			return err
		}
		fmt.Printf("itemset %v: estimate %d, exact %d (of %d transactions)\n", items, est, exact, db.Len())
		return nil
	}

	if *minsup > 0 {
		sch, err := parseScheme(*scheme)
		if err != nil {
			return err
		}
		db.ResetStats()
		res, err := db.Mine(bbsmine.MineOptions{
			MinSupportFrac: *minsup,
			Scheme:         sch,
			MaxLen:         *maxLen,
			MemoryBudget:   *memory,
			Workers:        *workers,
			Observe:        observer,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s over %d transactions at τ=%.3g%%: %d patterns, %d candidates, %d false drops (FDR %.3f), %d certified without refinement\n",
			sch, db.Len(), *minsup*100, len(res.Patterns), res.Candidates, res.FalseDrops, res.FalseDropRatio(), res.Certain)
		fmt.Printf("stats: %s\n", db.Stats())
		if db.Tiered() {
			ts := db.TierStats()
			fmt.Printf("pager: resident=%d KiB reserved=%d KiB faults=%d hits=%d evictions=%d hit_ratio=%.3f\n",
				ts.ResidentBytes>>10, ts.ReservedBytes>>10, ts.Faults, ts.Hits, ts.Evictions, ts.HitRatio)
		}
		if observer != nil {
			om := observer.Metrics()
			fmt.Printf("funnel: certified_actual=%d certified_est=%d uncertain=%d nonfrequent=%d probed=%d\n",
				om.Funnel.CertifiedActual, om.Funnel.CertifiedEst, om.Funnel.Uncertain, om.Funnel.NonFrequent, om.Funnel.ProbedPatterns)
			fmt.Printf("kernel: evals=%d early_exits=%d words_sparse=%d words_dense=%d poscache_hits=%d misses=%d\n",
				om.Kernel.Evals, om.Kernel.EarlyExits, om.Kernel.WordsSparse, om.Kernel.WordsDense, om.Kernel.PosCacheHits, om.Kernel.PosCacheMisses)
			if om.Trace != nil {
				fmt.Printf("trace: %d events seen, %d written to %s\n", om.Trace.Seen, om.Trace.Kept, *tracePath)
			}
		}
		limit := *top
		if limit == 0 || limit > len(res.Patterns) {
			limit = len(res.Patterns)
		}
		for _, p := range res.Patterns[:limit] {
			exactness := "exact"
			if !p.Exact {
				exactness = "estimate"
			}
			fmt.Printf("  %v support=%d (%s)\n", p.Items, p.Support, exactness)
		}
		if limit < len(res.Patterns) {
			fmt.Printf("  ... %d more\n", len(res.Patterns)-limit)
		}
	}
	return nil
}

func parseItems(s string) ([]int32, error) {
	parts := strings.Split(s, ",")
	items := make([]int32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad item %q: %w", p, err)
		}
		items = append(items, int32(v))
	}
	return items, nil
}

func parseScheme(s string) (bbsmine.Scheme, error) {
	switch strings.ToUpper(s) {
	case "SFS":
		return bbsmine.SFS, nil
	case "SFP":
		return bbsmine.SFP, nil
	case "DFS":
		return bbsmine.DFS, nil
	case "DFP":
		return bbsmine.DFP, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want SFS, SFP, DFS or DFP)", s)
}
