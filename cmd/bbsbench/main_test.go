package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunSingleFigureTinyScale(t *testing.T) {
	// -tau keeps the scaled-down threshold non-degenerate (at τ=0.3% of
	// 200 transactions the absolute threshold would floor at 1 and every
	// occurring itemset would be "frequent").
	if err := run([]string{"-fig", "6", "-scale", "0.02", "-tau", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-fig", "13", "-scale", "0.02", "-tau", "0.05", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOutdir(t *testing.T) {
	dir := t.TempDir() + "/csv"
	if err := run([]string{"-fig", "13", "-scale", "0.02", "-tau", "0.05", "-outdir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig13.csv")
	if err != nil {
		t.Fatalf("fig13.csv not written: %v", err)
	}
	if !strings.Contains(string(data), "query,DFP,APS,FPS") {
		t.Errorf("CSV header missing: %s", data)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-fig", "abc"}); err == nil {
		t.Error("non-numeric figure accepted")
	}
}
