// Command bbsbench regenerates the paper's evaluation figures (Section 4).
//
// Each figure is a table of response times (or false-drop ratios) whose
// rows/series match what the paper plots. Run everything at full paper
// scale:
//
//	bbsbench -fig all
//
// or a single figure, scaled down for a quick look:
//
//	bbsbench -fig 6 -scale 0.1
//
// Output is aligned text by default; -csv switches to CSV for plotting.
//
// -json <path> skips the figures and instead times the four BBS schemes
// once, writing one JSON record per scheme (wall time plus the hot-path work
// counters) — the machine-readable output CI tracks across commits.
// -cpuprofile / -memprofile wrap whichever mode runs with runtime/pprof.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"

	"bbsmine/internal/exp"
	"bbsmine/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbsbench", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", `figure to regenerate: 5..13, 14 (workers sweep, not in the paper) or "all"`)
		scale   = fs.Float64("scale", 1.0, "scale factor on transaction counts (use <1 for quick runs)")
		repeat  = fs.Int("repeat", 1, "timing repetitions per point (best is reported)")
		seed    = fs.Int64("seed", 1, "dataset seed")
		tau     = fs.Float64("tau", 0, "override the minimum-support fraction (default: the paper's 0.003; raise it for scaled-down runs)")
		workers = fs.Int("workers", 1, "mining worker pool size for figures 5..13 (default 1 keeps paper timings single-threaded; figure 14 sweeps its own)")
		shards  = fs.Int("shards", 1, "with -json, shard the index N ways and mine the merged view (the answer and funnel are identical; the layout under measurement changes)")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outdir  = fs.String("outdir", "", "also write each table as <outdir>/<id>.csv for plotting")
		jsonOut = fs.String("json", "", "skip the figures; time the four BBS schemes and write JSON records to this path")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this path")
		memProf = fs.String("memprofile", "", "write a heap profile taken after the run to this path")

		httpAddr    = fs.String("http", "", "serve /metrics (Prometheus text), /debug/vars and /debug/pprof on this address while the benchmark runs")
		checkFunnel = fs.Bool("check-funnel", false, "with -json, fail if a dual-filter scheme reports more false drops than SFS (Corollary 1)")

		compress      = fs.Bool("compress", false, "with -json, store the index under adaptive per-slice compression (answers are byte-identical; records gain the resident footprint)")
		checkCompress = fs.Bool("check-compress", false, "with -json -compress, also run the dense legs and fail unless every counter matches and the compression floor holds")
		minRatio      = fs.Float64("min-compress-ratio", 2.0, "with -check-compress, minimum logical/resident byte ratio each compressed record must reach")

		memBudget   = fs.Int64("mem-budget", 0, "with -json, tier the index to this byte budget before the timed run (a profiling pass ranks the hot tier; answers are byte-identical; records gain the buffer-pool gauges)")
		checkTiered = fs.Bool("check-tiered", false, "with -json -mem-budget, also run the resident legs and fail unless every counter matches and the pool actually faulted and evicted")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("-http listen: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "serving /metrics and /debug/pprof/ on http://%s\n", ln.Addr())
		go func() {
			srv := &http.Server{Handler: obs.NewServeMux()}
			if serveErr := srv.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && !errors.Is(serveErr, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "bbsbench: -http:", serveErr)
			}
		}()
	}

	p := exp.Defaults(*scale)
	p.Seed = *seed
	p.Repeat = *repeat
	p.Workers = *workers
	if *shards > 0 {
		p.Shards = *shards
	}
	if *tau > 0 {
		p.TauFrac = *tau
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbsbench: creating -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows what is live
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bbsbench: writing -memprofile:", err)
			}
		}()
	}

	if *jsonOut != "" {
		p.Compress = *compress
		if *memBudget > 0 {
			p.MemBudget = *memBudget
			dir, err := os.MkdirTemp("", "bbsbench-tier-")
			if err != nil {
				return fmt.Errorf("creating -mem-budget scratch dir: %w", err)
			}
			defer os.RemoveAll(dir)
			p.TierDir = dir
		}
		return runJSON(p, *jsonOut, *checkFunnel, *checkCompress, *minRatio, *checkTiered)
	}

	var figures []int
	if *fig == "all" {
		for f := range exp.Figures {
			figures = append(figures, f)
		}
		sort.Ints(figures)
	} else {
		f, err := strconv.Atoi(*fig)
		if err != nil || exp.Figures[f] == nil {
			return fmt.Errorf("unknown figure %q (want 5..14 or all)", *fig)
		}
		figures = []int{f}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return fmt.Errorf("creating -outdir: %w", err)
		}
	}

	fmt.Printf("# bbsbench: scale=%.2f repeat=%d seed=%d — paper defaults T%d.I%d.D%d, V=%d, m=%d, τ=%.2f%%\n\n",
		*scale, *repeat, *seed, p.T, p.I, p.ScaledD(), p.V, p.M, p.TauFrac*100)

	for _, f := range figures {
		start := time.Now()
		tables, err := exp.Figures[f](p)
		if err != nil {
			return fmt.Errorf("figure %d: %w", f, err)
		}
		for i := range tables {
			t := &tables[i]
			if *csv {
				if err := t.RenderCSV(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			} else if err := t.Render(os.Stdout); err != nil {
				return err
			}
			if *outdir != "" {
				if err := writeCSVFile(*outdir, t); err != nil {
					return err
				}
			}
		}
		fmt.Printf("(figure %d regenerated in %v)\n\n", f, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runJSON times the four BBS schemes and writes the records to path. With
// checkFunnel set, the run fails when the records violate the paper's
// Corollary 1 false-drop ordering. With checkCompress set (requires
// p.Compress), the dense legs run too: every compressed record must match
// its dense twin counter for counter — the kernels-never-change-an-answer
// guarantee — and reach minRatio bytes saved; both sets are written, the
// compressed records carrying compress=true. checkTiered (requires
// p.MemBudget) does the same for tiering: resident twins run too, every
// counter must match — tiering moves bytes, never bits — and the pool must
// show faults, hits and evictions; both sets are written, the tiered
// records carrying tiered=true plus the pool gauges, so the wall-clock
// delta of running under the budget is readable from one file.
func runJSON(p exp.Params, path string, checkFunnel, checkCompress bool, minRatio float64, checkTiered bool) error {
	records, err := exp.BenchJSON(p)
	if err != nil {
		return err
	}
	if checkCompress {
		if !p.Compress {
			return fmt.Errorf("-check-compress needs -compress")
		}
		dp := p
		dp.Compress = false
		dense, err := exp.BenchJSON(dp)
		if err != nil {
			return err
		}
		if err := exp.CheckCompression(dense, records, minRatio); err != nil {
			return err
		}
		fmt.Printf("compression check passed: counters identical to dense, ratio ≥ %.1fx\n", minRatio)
		records = append(dense, records...)
	}
	if checkTiered {
		if p.MemBudget <= 0 {
			return fmt.Errorf("-check-tiered needs -mem-budget")
		}
		rp := p
		rp.MemBudget, rp.TierDir = 0, ""
		resident, err := exp.BenchJSON(rp)
		if err != nil {
			return err
		}
		if err := exp.CheckTiered(resident, records, true); err != nil {
			return err
		}
		fmt.Printf("tiered check passed: answers and counters identical to resident under a %d KiB budget, pool faulted and evicted\n", p.MemBudget>>10)
		residentWall := make(map[string]int64, len(resident))
		for _, r := range resident {
			residentWall[r.Scheme] = r.WallNs
		}
		for _, r := range records {
			if base := residentWall[r.Scheme]; base > 0 {
				fmt.Printf("%-4s tiered wall %+.1f%% vs resident (resident %d KiB of %d KiB budget, faults=%d evictions=%d)\n",
					r.Scheme, 100*(float64(r.WallNs)-float64(base))/float64(base),
					r.PagerResidentBytes>>10, r.MemBudget>>10, r.PagerFaults, r.PagerEvictions)
			}
		}
		records = append(resident, records...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating -json output: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, r := range records {
		suffix := ""
		if r.Compress {
			suffix = fmt.Sprintf(" compressed=%.1fx", r.CompressionRatio)
		}
		if r.Tiered {
			suffix += fmt.Sprintf(" tiered hot/cold=%d/%d hit_ratio=%.3f", r.SlicesHot, r.SlicesCold, r.PagerHitRatio)
		}
		fmt.Printf("%-4s wall=%-12v count_calls=%-7d slice_ands=%-8d probes=%-7d patterns=%-5d candidates=%-5d false_drops=%d%s\n",
			r.Scheme, time.Duration(r.WallNs).Round(time.Microsecond), r.CountCalls, r.SliceAnds, r.Probes, r.Patterns, r.Candidates, r.FalseDrops, suffix)
	}
	fmt.Printf("(wrote %s)\n", path)
	if checkFunnel {
		if err := exp.CheckFunnel(records); err != nil {
			return err
		}
		fmt.Println("funnel check passed: dual-filter false drops ≤ SFS false drops")
	}
	return nil
}

// writeCSVFile saves one table as <dir>/<id>.csv.
func writeCSVFile(dir string, t *exp.Table) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.RenderCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
