// Command bbsd serves a BBS index over HTTP: a long-lived daemon with
// snapshot-isolated mining queries, batched writes and an epoch-keyed
// query cache.
//
// Start it on a database directory (created if missing; the index and the
// transaction log persist there):
//
//	bbsd -db dataset/ -addr 127.0.0.1:8344
//
// -shards N serves the database as N horizontal shards, each with its own
// index, data file and commit loop; writes to different shards commit
// concurrently and queries mine a merged view whose answers are identical
// to an unsharded server. Opening a flat directory with -shards N migrates
// it in place; once sharded, the directory remembers its count.
//
// Endpoints:
//
//	POST /mine   {"scheme":"DFP","minsup":0.003}            → frequent patterns
//	POST /txns   {"insert":[[3,17,29]],"delete":[12]}        → batched writes
//	GET  /stats                                              → snapshot summary
//	GET  /metrics, /debug/vars, /debug/pprof/*               → observability
//
// SIGINT/SIGTERM drain gracefully: the listener stops, in-flight requests
// finish, queued writes commit, the data file syncs and the index saves.
//
// Every request is traceable: bbsd accepts (or mints) an X-Request-ID,
// echoes it, and reports the request's stage decomposition in a
// Server-Timing header. -reqlog FILE writes one JSON line per request
// (id, class, verdict, epoch vector, per-stage ns); -trace FILE writes
// sampled trace events — the mining kinds plus request, apply and commit —
// sharing the request ID, so one slow request reconstructs end to end
// across the shards. Per-class and per-stage latency histograms with
// p50/p95/p99/p99.9 appear on /metrics, and /stats reports cache hit
// ratio, single-flight joins, admission rejections and queue depth.
//
// -bench skips serving: it seeds the paper's default dataset into a
// scratch directory, measures cold-versus-cached /mine latency over real
// HTTP and appends the records to -bench-out. With -shards N it also
// measures the sharded server: /txns write throughput into N commit loops
// plus cold and cached /mine latency over the merged view.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"bbsmine/internal/exp"
	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/serve"
	"bbsmine/internal/serve/client"
	"bbsmine/internal/shard"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

const dataFile = "transactions.txdb"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbsd", flag.ContinueOnError)
	var (
		dir    = fs.String("db", "", "database directory (required unless -bench; created if missing)")
		m      = fs.Int("m", 1600, "signature bits for a new index")
		k      = fs.Int("k", 4, "hash functions per item for a new index")
		shards = fs.Int("shards", 0, "shard the database N ways (0 = whatever the directory already is; migrates a flat directory in place)")
		addr   = fs.String("addr", "127.0.0.1:8344", "listen address")

		compress = fs.Bool("compress", false, "adaptive per-slice compression (dense/sparse/RLE); answers are byte-identical, the index just gets smaller")

		workers     = fs.Int("workers", 0, "default mining worker pool per query (0 = one per CPU)")
		cacheN      = fs.Int("cache", 128, "query cache capacity in results")
		maxInflight = fs.Int("max-inflight", 2, "concurrent cold mines")
		maxQueue    = fs.Int("max-queue", 8, "cold mines allowed to queue before rejection")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-mine deadline (0 = unbounded)")
		pageCache   = fs.Int64("page-cache", 64<<20, "data-file page cache bound in bytes (superseded by -mem-budget)")
		memBudget   = fs.Int64("mem-budget", 0, "tier the served index to this byte budget: hot slices stay pinned, cold slices fault from per-shard cold files, and slice frames plus data-file pages share one pool (0 = fully resident)")

		reqlogPath = fs.String("reqlog", "", "write one JSON line per served request (id, class, verdict, stage timings) to this file")
		tracePath  = fs.String("trace", "", "write sampled trace events (mining + request/apply/commit) to this file")
		traceEvery = fs.Int("trace-every", 1, "keep every N-th trace event")

		bench       = fs.Bool("bench", false, "run the server benchmark instead of serving")
		benchOut    = fs.String("bench-out", "BENCH_results.json", "append server bench records to this file")
		benchScale  = fs.Float64("bench-scale", 1.0, "scale factor on the bench dataset size")
		benchCached = fs.Int("bench-cached", 20, "cached-query repetitions in -bench")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *bench {
		return runBench(*benchOut, *benchScale, *benchCached, *workers, *shards, *compress)
	}
	if *dir == "" {
		return fmt.Errorf("-db is required")
	}

	// The request log and trace sinks outlive the engine: their files are
	// opened (and deferred closed) before openEngine so the engine's own
	// deferred cleanup — which still writes final commit events during the
	// drain — runs first.
	opts := serve.Options{
		Workers:        *workers,
		CacheEntries:   *cacheN,
		MaxInFlight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *timeout,
		PageCacheLimit: *pageCache,
		MemBudget:      *memBudget,
		ColdDir:        *dir, // cold files are derived data; they live beside the index
	}
	if *reqlogPath != "" {
		f, err := os.Create(*reqlogPath)
		if err != nil {
			return fmt.Errorf("opening request log: %w", err)
		}
		defer f.Close()
		opts.RequestLog = obs.NewRequestLog(f)
	}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("opening trace file: %w", err)
		}
		defer f.Close()
		traceFile = f
	}

	engine, reg, cleanup, err := openEngine(*dir, *m, *k, *shards, *compress, opts)
	if err != nil {
		return err
	}
	defer cleanup()
	if traceFile != nil {
		reg.SetTracer(obs.NewTracer(traceFile, *traceEvery))
	}
	reg.Publish("bbsd")

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: engine.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if serveErr := srv.Serve(ln); serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			errCh <- serveErr
			return
		}
		errCh <- nil
	}()
	info := engine.Stats()
	fmt.Fprintf(os.Stderr, "bbsd: serving %d transactions in %d shard(s) on http://%s\n", info.Transactions, info.Shards, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful drain: stop the listener, let in-flight requests finish,
		// then flush the engine (queued writes commit, file syncs, index
		// saves).
		fmt.Fprintln(os.Stderr, "bbsd: draining")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "bbsd: shutdown:", err)
		}
		if err := engine.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "bbsd: stopped")
		return nil
	case err := <-errCh:
		closeErr := engine.Close()
		if err != nil {
			return err
		}
		return closeErr
	}
}

// openEngine opens (or creates) the database directory through the shard
// layer — the same layout and recovery path the bbsmine library uses,
// including the flat-to-sharded migration when -shards asks for one — and
// wires a serving engine over its parts: each shard's index, data file and
// an in-memory append log loaded from it. The returned cleanup closes what
// engine.Close does not own (the data files).
func openEngine(dir string, m, k, shards int, compress bool, opts serve.Options) (*serve.Engine, *obs.Registry, func(), error) {
	stats := &iostat.Stats{}
	sdb, err := shard.Open(dir, m, k, shards, stats)
	if err != nil {
		return nil, nil, nil, err
	}
	if compress {
		// Re-encode whatever the directory held before serving starts; the
		// commit loops then append under the chosen encodings (with the
		// hysteresis promotion as shards densify).
		sdb.SetCompression(true)
	}
	fail := func(err error) (*serve.Engine, *obs.Registry, func(), error) {
		_ = sdb.Close()
		return nil, nil, nil, err
	}
	parts := make([]serve.ShardOptions, sdb.Shards())
	for s := range parts {
		file := sdb.File(s)
		log, err := txdb.LoadAppendLog(file, stats)
		if err != nil {
			return fail(fmt.Errorf("loading shard %d's log: %w", s, err))
		}
		parts[s] = serve.ShardOptions{
			Index:     sdb.Index().Part(s),
			Log:       log,
			File:      file,
			IndexPath: sdb.IndexPath(s),
		}
	}
	reg := obs.New()
	opts.Shards = parts
	opts.Observe = reg
	engine, err := serve.New(opts)
	if err != nil {
		return fail(err)
	}
	cleanup := func() {
		if err := sdb.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "bbsd: closing data files:", err)
		}
	}
	return engine, reg, cleanup, nil
}

// serverBenchRecord is one server-side measurement appended to the bench
// JSON next to the per-scheme records; the scheme name is namespaced so
// the funnel checks ignore it.
type serverBenchRecord struct {
	Scheme    string  `json:"scheme"`
	Tau       int     `json:"tau"`
	WallNs    int64   `json:"wall_ns"`
	P50Ns     int64   `json:"p50_ns,omitempty"`
	P99Ns     int64   `json:"p99_ns,omitempty"`
	Patterns  int     `json:"patterns"`
	Epoch     uint64  `json:"epoch"`
	Shards    int     `json:"shards,omitempty"`
	Ops       int     `json:"ops,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	Speedup   float64 `json:"-"` // emitted by MarshalJSON only when meaningful
}

// MarshalJSON keeps Speedup out of the cold record (it is meaningful only
// on the cached one).
func (r serverBenchRecord) MarshalJSON() ([]byte, error) {
	type plain serverBenchRecord
	if r.Speedup == 0 {
		return json.Marshal(struct {
			plain
			Speedup *float64 `json:"speedup,omitempty"`
		}{plain: plain(r)})
	}
	return json.Marshal(struct {
		plain
		Speedup float64 `json:"speedup"`
	}{plain: plain(r), Speedup: r.Speedup})
}

// mineLatencies runs one cold /mine and cachedReps cached hits, returning
// the cold response plus the cold and cached-percentile latencies.
func mineLatencies(ctx context.Context, c *client.Client, req serve.QueryRequest, cachedReps int) (cold *serve.QueryResponse, coldNs, p50, p99 int64, err error) {
	start := time.Now()
	cold, err = c.Mine(ctx, req)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("cold mine: %w", err)
	}
	coldNs = time.Since(start).Nanoseconds()
	if cold.Cached {
		return nil, 0, 0, 0, fmt.Errorf("first bench query was served from cache")
	}
	lat := make([]int64, 0, cachedReps)
	for i := 0; i < cachedReps; i++ {
		s := time.Now()
		hit, err := c.Mine(ctx, req)
		if err != nil {
			return nil, 0, 0, 0, fmt.Errorf("cached mine %d: %w", i, err)
		}
		if !hit.Cached {
			return nil, 0, 0, 0, fmt.Errorf("cached mine %d missed the cache", i)
		}
		lat = append(lat, time.Since(s).Nanoseconds())
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return cold, coldNs, lat[len(lat)/2], lat[(len(lat)*99)/100], nil
}

// runBench seeds the paper's default dataset into a scratch database,
// serves it on a loopback port and measures one cold /mine followed by
// repeated cached hits, all over real HTTP. With shards > 1 it then raises
// a sharded server, measures /txns write throughput into the N commit
// loops, re-measures /mine over the merged view and checks the sharded
// answer byte-identical to the unsharded one.
func runBench(out string, scale float64, cachedReps, workers, shards int, compress bool) error {
	p := exp.Defaults(scale)
	txs, err := p.Dataset()
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "bbsd-bench-")
	if err != nil {
		return fmt.Errorf("creating scratch dir: %w", err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	stats := &iostat.Stats{}
	file, err := txdb.WriteAll(filepath.Join(dir, dataFile), stats, txs)
	if err != nil {
		return err
	}
	index := sigfile.New(sighash.NewMD5(p.M, p.K), stats)
	for _, tx := range txs {
		index.Insert(tx.Items)
	}
	if compress {
		index.SetCompression(true)
	}
	log, err := txdb.LoadAppendLog(file, stats)
	if err != nil {
		_ = file.Close()
		return err
	}
	reg := obs.New()
	engine, err := serve.New(serve.Options{
		Index:   index,
		Log:     log,
		File:    file,
		Workers: workers,
		Observe: reg,
	})
	if err != nil {
		_ = file.Close()
		return err
	}
	defer func() { _ = file.Close() }()
	defer func() { _ = engine.Close() }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("bench listen: %w", err)
	}
	srv := &http.Server{Handler: engine.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()
	req := serve.QueryRequest{Scheme: "DFP", MinSupportFrac: p.TauFrac}

	cold, coldNs, p50, p99, err := mineLatencies(ctx, c, req, cachedReps)
	if err != nil {
		return err
	}
	coldPatterns, err := cold.DecodePatterns()
	if err != nil {
		return fmt.Errorf("cold mine: %w", err)
	}

	records := []serverBenchRecord{
		{Scheme: "DFP-server-cold", Tau: cold.Tau, WallNs: coldNs, Patterns: len(coldPatterns), Epoch: cold.Epoch},
		{Scheme: "DFP-server-cached", Tau: cold.Tau, WallNs: p50, P50Ns: p50, P99Ns: p99,
			Patterns: len(coldPatterns), Epoch: cold.Epoch, Speedup: float64(coldNs) / float64(p50)},
	}
	fmt.Printf("bbsd bench: D=%d τ=%d patterns=%d cold=%.2fms cached p50=%.3fms p99=%.3fms speedup=%.0fx\n",
		len(txs), cold.Tau, len(coldPatterns),
		float64(coldNs)/1e6, float64(p50)/1e6, float64(p99)/1e6, float64(coldNs)/float64(p50))
	if coldNs < 10*p50 {
		fmt.Fprintf(os.Stderr, "bbsd: warning: cached speedup %.1fx is below the 10x target\n", float64(coldNs)/float64(p50))
	}

	if shards > 1 {
		srecs, err := benchSharded(ctx, p, txs, workers, shards, cachedReps, compress, cold.Patterns)
		if err != nil {
			return err
		}
		records = append(records, srecs...)
	}
	return appendBenchRecords(out, records)
}

// benchSharded raises an N-shard server on a scratch directory, streams the
// dataset in over /txns (the write-throughput measurement: every batch fans
// out across the N commit loops), then measures cold and cached /mine over
// the merged view. The sharded cold answer must be byte-identical to the
// unsharded server's (want) — the scatter-gather determinism guarantee,
// checked over real HTTP.
func benchSharded(ctx context.Context, p exp.Params, txs []txdb.Transaction, workers, shards, cachedReps int, compress bool, want json.RawMessage) ([]serverBenchRecord, error) {
	dir, err := os.MkdirTemp("", "bbsd-bench-shard-")
	if err != nil {
		return nil, fmt.Errorf("creating sharded scratch dir: %w", err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	engine, _, cleanup, err := openEngine(dir, p.M, p.K, shards, compress, serve.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	defer func() { _ = engine.Close() }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sharded bench listen: %w", err)
	}
	srv := &http.Server{Handler: engine.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	c := client.New("http://" + ln.Addr().String())
	const batch = 256
	var lastEpoch uint64
	start := time.Now()
	for i := 0; i < len(txs); i += batch {
		end := i + batch
		if end > len(txs) {
			end = len(txs)
		}
		req := serve.TxnsRequest{Insert: make([][]int32, 0, end-i)}
		for _, tx := range txs[i:end] {
			req.Insert = append(req.Insert, tx.Items)
		}
		res, err := c.Txns(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("sharded insert batch at %d: %w", i, err)
		}
		lastEpoch = res.Epoch
	}
	insertNs := time.Since(start).Nanoseconds()

	cold, coldNs, p50, p99, err := mineLatencies(ctx, c, serve.QueryRequest{Scheme: "DFP", MinSupportFrac: p.TauFrac}, cachedReps)
	if err != nil {
		return nil, fmt.Errorf("sharded: %w", err)
	}
	if !bytes.Equal(cold.Patterns, want) {
		return nil, fmt.Errorf("sharded answer differs from the unsharded one (%d vs %d pattern bytes)", len(cold.Patterns), len(want))
	}
	coldPatterns, err := cold.DecodePatterns()
	if err != nil {
		return nil, fmt.Errorf("sharded cold mine: %w", err)
	}

	opsPerSec := float64(len(txs)) / (float64(insertNs) / 1e9)
	fmt.Printf("bbsd bench sharded(%d): insert=%d txns in %.2fms (%.0f ops/s) cold=%.2fms cached p50=%.3fms p99=%.3fms (answers byte-identical)\n",
		shards, len(txs), float64(insertNs)/1e6, opsPerSec,
		float64(coldNs)/1e6, float64(p50)/1e6, float64(p99)/1e6)
	return []serverBenchRecord{
		{Scheme: "DFP-server-sharded-insert", WallNs: insertNs, Epoch: lastEpoch, Shards: shards,
			Ops: len(txs), OpsPerSec: opsPerSec},
		{Scheme: "DFP-server-sharded-cold", Tau: cold.Tau, WallNs: coldNs, Patterns: len(coldPatterns),
			Epoch: cold.Epoch, Shards: shards},
		{Scheme: "DFP-server-sharded-cached", Tau: cold.Tau, WallNs: p50, P50Ns: p50, P99Ns: p99,
			Patterns: len(coldPatterns), Epoch: cold.Epoch, Shards: shards, Speedup: float64(coldNs) / float64(p50)},
	}, nil
}

// appendBenchRecords merges the server records into the existing bench
// JSON (an array of per-scheme records), replacing earlier server records
// with the same scheme name so reruns do not accumulate.
func appendBenchRecords(path string, records []serverBenchRecord) error {
	var existing []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("reading %s: %w", path, err)
	}

	replaced := make(map[string]bool, len(records))
	for _, r := range records {
		replaced[r.Scheme] = true
	}
	merged := make([]json.RawMessage, 0, len(existing)+len(records))
	for _, raw := range existing {
		var probe struct {
			Scheme string `json:"scheme"`
		}
		if err := json.Unmarshal(raw, &probe); err == nil && replaced[probe.Scheme] {
			continue
		}
		merged = append(merged, raw)
	}
	for _, r := range records {
		raw, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("encoding bench record: %w", err)
		}
		merged = append(merged, raw)
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
