package main

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"bbsmine/internal/exp"
	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/serve"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
	"bbsmine/internal/weblog"
)

func TestBuildPlanDeterministic(t *testing.T) {
	a, err := buildPlan(42, 100, 2*time.Second, 0.2)
	if err != nil {
		t.Fatalf("buildPlan: %v", err)
	}
	b, err := buildPlan(42, 100, 2*time.Second, 0.2)
	if err != nil {
		t.Fatalf("buildPlan: %v", err)
	}
	if len(a) != 200 {
		t.Fatalf("plan length = %d, want 200", len(a))
	}
	reads, writes := 0, 0
	for i := range a {
		if a[i].class != b[i].class || a[i].path != b[i].path || !bytes.Equal(a[i].body, b[i].body) {
			t.Fatalf("plans diverge at %d with the same seed", i)
		}
		if a[i].class == obs.ClassWrite {
			writes++
		} else {
			reads++
		}
	}
	if writes == 0 || reads == 0 {
		t.Fatalf("degenerate mix: %d reads, %d writes", reads, writes)
	}

	c, err := buildPlan(43, 100, 2*time.Second, 0.2)
	if err != nil {
		t.Fatalf("buildPlan: %v", err)
	}
	same := 0
	for i := range a {
		if a[i].class == c[i].class && bytes.Equal(a[i].body, c[i].body) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestServerTimingAgrees(t *testing.T) {
	for _, tc := range []struct {
		header   string
		clientNs int64
		want     bool
	}{
		{"mine;dur=1.000, total;dur=1.500", 2_000_000, true},
		{"mine;dur=1.000, total;dur=1.500", 1_000_000, false}, // server total > client
		{"mine;dur=2.000, total;dur=1.500", 3_000_000, false}, // stage sum > total
		{"garbage", 1_000_000, false},
		{"total;dur=0.5", 1_000_000, true},
	} {
		if got := serverTimingAgrees(tc.header, tc.clientNs); got != tc.want {
			t.Errorf("serverTimingAgrees(%q, %d) = %v, want %v", tc.header, tc.clientNs, got, tc.want)
		}
	}
}

// TestFireAgainstLiveEngine is the harness's end-to-end loop in miniature: a
// real serving engine behind httptest, a deterministic mixed plan fired
// open-loop, and the resulting records must show per-class quantiles, no
// errors, and Server-Timing agreement on every sampled response.
func TestFireAgainstLiveEngine(t *testing.T) {
	stats := &iostat.Stats{}
	idx := sigfile.New(sighash.NewFNV(128, 3), stats)
	log := txdb.NewAppendLog(stats)
	// Short sessions over many files keep co-occurrence — and so the
	// frequent-pattern count — small: the test measures the harness, not
	// the miner, and must stay fast even at the plan's τ = 2% floor.
	w, err := weblog.Generate(weblog.Config{
		Files: 60, HotFraction: 0.2, ChurnFraction: 0.1, SessionSize: 3,
		HotBias: 0.6, BaseTransactions: 500, IncrementTransactions: 10, Days: 1, Seed: 9,
	})
	if err != nil {
		t.Fatalf("weblog: %v", err)
	}
	for _, tx := range w.Base {
		if err := log.Append(tx); err != nil {
			t.Fatalf("seeding: %v", err)
		}
		idx.Insert(tx.Items)
	}
	// Generous admission limits: the test asserts a zero error budget, so
	// the ~15 distinct cold queries must be allowed to queue rather than be
	// shed while the cache warms on a loaded test machine.
	e, err := serve.New(serve.Options{Index: idx, Log: log, Observe: obs.New(),
		MaxInFlight: 8, MaxQueue: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()
	defer e.Close()

	plan, err := buildPlan(7, 80, 1*time.Second, 0.25)
	if err != nil {
		t.Fatalf("buildPlan: %v", err)
	}
	res := fire(ts.URL, plan, 200, 60*time.Second, 64) // fire fast: the schedule, not the wall, bounds the test
	records := buildRecords("smoke", 200, 1*time.Second, 7, res)
	if len(records) != 2 {
		t.Fatalf("got %d records, want read+write", len(records))
	}
	for _, r := range records {
		if r.Sent == 0 || r.OK == 0 {
			t.Errorf("%s: sent=%d ok=%d", r.Class, r.Sent, r.OK)
		}
		if r.Errors > 0 || r.Deadline > 0 {
			t.Errorf("%s: errors=%d deadlines=%d against a healthy engine", r.Class, r.Errors, r.Deadline)
		}
		if r.P99Ns <= 0 || r.P50Ns > r.P99Ns {
			t.Errorf("%s: quantiles p50=%d p99=%d", r.Class, r.P50Ns, r.P99Ns)
		}
		if r.Class == "read" && r.TimingSampled == 0 {
			t.Error("read class sampled no Server-Timing headers")
		}
		if r.TimingAgreed != r.TimingSampled {
			t.Errorf("%s: server timing disagreed on %d of %d responses",
				r.Class, r.TimingSampled-r.TimingAgreed, r.TimingSampled)
		}
	}
	if err := checkGates(records, 30*time.Second, 30*time.Second, 0.5); err != nil {
		t.Errorf("gates failed on a healthy run: %v", err)
	}

	// The merged record file round-trips through the compare gate.
	out := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := exp.MergeLoadRecords(out, records); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := runCompare(out, out, 0.2, 0); err != nil {
		t.Errorf("self-compare failed: %v", err)
	}
}
