// Command bbsload is an open-loop load generator for bbsd. It fires a mixed
// workload — zipfian-skewed mining queries over (scheme, τ, constraint)
// combos and weblog-style append batches — at a fixed target rate with a
// per-request deadline, and measures every latency from the request's
// intended send time, never its actual one, so a stalled server inflates
// the quantiles instead of silently thinning the sample (the coordinated
// omission trap). At the end it prints a human-readable SLO report, gates
// on the thresholds it was given, and can merge per-class quantile records
// into BENCH_results.json for CI regression comparison.
//
// The whole request plan is generated up front from -seed, so two runs with
// the same flags fire byte-identical request sequences; only the measured
// latencies differ.
//
// Usage:
//
//	bbsload -addr http://127.0.0.1:8080 -rps 50 -duration 10s -seed 1
//	bbsload -compare -max-regress 0.20 baseline.json fresh.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bbsmine/internal/exp"
	"bbsmine/internal/obs"
	"bbsmine/internal/serve"
	"bbsmine/internal/weblog"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbsload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bbsload", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8080", "bbsd base URL")
		rps       = fs.Float64("rps", 50, "target request rate, requests/second")
		duration  = fs.Duration("duration", 10*time.Second, "run length")
		writeFrac = fs.Float64("write-frac", 0.1, "fraction of requests that are writes")
		seed      = fs.Int64("seed", 1, "request-plan seed; same seed, same request sequence")
		deadline  = fs.Duration("deadline", 2*time.Second, "per-request deadline")
		workload  = fs.String("workload", "mixed", "workload label recorded with the results")
		maxOut    = fs.Int("max-outstanding", 64, "outstanding-request cap; intended sends beyond it are counted as shed")
		out       = fs.String("out", "", "merge per-class load records into this BENCH_results.json")
		report    = fs.String("report", "", "also write the SLO report to this file")

		sloReadP99  = fs.Duration("slo-read-p99", 0, "fail if read p99 exceeds this (0 = no gate)")
		sloWriteP99 = fs.Duration("slo-write-p99", 0, "fail if write p99 exceeds this (0 = no gate)")
		maxErrRate  = fs.Float64("max-error-rate", 1, "fail if a class's error rate (errors+deadlines+shed over intended) exceeds this")

		compare    = fs.Bool("compare", false, "compare mode: bbsload -compare baseline.json fresh.json")
		maxRegress = fs.Float64("max-regress", 0.20, "compare: allowed fractional p99 regression")
		floor      = fs.Duration("floor", 25*time.Millisecond, "compare: ignore p99 regressions smaller than this")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("compare mode wants exactly two files: bbsload -compare baseline.json fresh.json")
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *maxRegress, floor.Nanoseconds())
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *rps <= 0 || *duration <= 0 {
		return fmt.Errorf("need -rps > 0 and -duration > 0")
	}
	if *writeFrac < 0 || *writeFrac > 1 {
		return fmt.Errorf("-write-frac %v outside [0,1]", *writeFrac)
	}

	plan, err := buildPlan(*seed, *rps, *duration, *writeFrac)
	if err != nil {
		return err
	}
	res := fire(*addr, plan, *rps, *deadline, *maxOut)

	rep := renderReport(*addr, *workload, *rps, *duration, *seed, res)
	fmt.Print(rep)
	if *report != "" {
		if err := os.WriteFile(*report, []byte(rep), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
	}
	records := buildRecords(*workload, *rps, *duration, *seed, res)
	if *out != "" {
		if err := exp.MergeLoadRecords(*out, records); err != nil {
			return err
		}
		fmt.Printf("merged %d load records into %s\n", len(records), *out)
	}
	return checkGates(records, *sloReadP99, *sloWriteP99, *maxErrRate)
}

// request is one planned send: its class, pre-encoded body and endpoint.
type request struct {
	class obs.RequestClass
	path  string
	body  []byte
}

// buildPlan pre-generates the whole request sequence from the seed: class
// choices, zipfian query picks and weblog write batches. Nothing random
// happens after this returns.
func buildPlan(seed int64, rps float64, duration time.Duration, writeFrac float64) ([]request, error) {
	total := int(rps * duration.Seconds())
	if total < 1 {
		total = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// The read side: a small universe of query shapes, zipf-skewed so a few
	// are hot (cache hits, single-flight joins) and the tail stays cold
	// (admission-controlled mines). Constraint queries ride on the
	// single-filter schemes only, matching the server's validation.
	type combo struct {
		scheme     string
		tauFrac    float64
		constraint int32 // <0: none
	}
	var combos []combo
	for _, scheme := range []string{"DFP", "SFP", "DFS", "SFS"} {
		for _, tf := range []float64{0.10, 0.05, 0.02} {
			combos = append(combos, combo{scheme, tf, -1})
		}
	}
	combos = append(combos,
		combo{"SFP", 0.05, 3}, combo{"SFS", 0.05, 7}, combo{"SFP", 0.02, 11})
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(combos)-1))
	readBodies := make([][]byte, len(combos))
	for i, c := range combos {
		q := serve.QueryRequest{Scheme: c.scheme, MinSupportFrac: c.tauFrac}
		if c.constraint >= 0 {
			item := c.constraint
			q.ConstraintItem = &item
		}
		body, err := json.Marshal(q)
		if err != nil {
			return nil, fmt.Errorf("encoding query plan: %w", err)
		}
		readBodies[i] = body
	}

	// The write side: weblog-style daily increments, chopped into small
	// append batches the way a tailing ingester would deliver them.
	cfg := weblog.DefaultConfig()
	cfg.Seed = seed
	cfg.BaseTransactions = 64
	cfg.IncrementTransactions = 256
	cfg.Days = 4
	w, err := weblog.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("generating write traffic: %w", err)
	}
	var writePool [][]int32
	for _, inc := range w.Increments {
		for _, tx := range inc {
			writePool = append(writePool, tx.Items)
		}
	}
	nextWrite := 0
	takeBatch := func(n int) [][]int32 {
		batch := make([][]int32, 0, n)
		for len(batch) < n {
			batch = append(batch, writePool[nextWrite%len(writePool)])
			nextWrite++
		}
		return batch
	}

	plan := make([]request, total)
	for i := range plan {
		if rng.Float64() < writeFrac {
			body, err := json.Marshal(serve.TxnsRequest{Insert: takeBatch(4 + rng.Intn(12))})
			if err != nil {
				return nil, fmt.Errorf("encoding write plan: %w", err)
			}
			plan[i] = request{class: obs.ClassWrite, path: "/txns", body: body}
		} else {
			plan[i] = request{class: obs.ClassRead, path: "/mine", body: readBodies[zipf.Uint64()]}
		}
	}
	return plan, nil
}

// classResult accumulates one class's outcomes under concurrent completion.
type classResult struct {
	intended atomic.Int64
	sent     atomic.Int64
	ok       atomic.Int64
	errors   atomic.Int64
	deadline atomic.Int64
	shed     atomic.Int64

	timingSampled atomic.Int64
	timingAgreed  atomic.Int64

	lat obs.LatencyHist
}

type runResult struct {
	classes [2]classResult // indexed by obs.RequestClass
	elapsed time.Duration
}

// fire runs the plan open-loop: request i is due at start + i/rps, fired on
// schedule regardless of how many predecessors are still in flight (up to
// the shed cap), and measured from that intended instant.
func fire(addr string, plan []request, rps float64, deadline time.Duration, maxOut int) *runResult {
	res := &runResult{}
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxOut * 2,
		MaxIdleConnsPerHost: maxOut * 2,
	}}
	var outstanding atomic.Int64
	var wg sync.WaitGroup
	interval := float64(time.Second) / rps
	start := time.Now()
	for i := range plan {
		p := plan[i]
		cr := &res.classes[p.class]
		cr.intended.Add(1)
		intended := start.Add(time.Duration(float64(i) * interval))
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		if outstanding.Load() >= int64(maxOut) {
			cr.shed.Add(1)
			continue
		}
		outstanding.Add(1)
		wg.Add(1)
		go func(i int, p request, intended time.Time) {
			defer wg.Done()
			defer outstanding.Add(-1)
			reqID := fmt.Sprintf("load-%d", i)
			outcome, timing := send(httpc, addr+p.path, p.body, reqID, deadline)
			lat := time.Since(intended).Nanoseconds()
			cr := &res.classes[p.class]
			cr.sent.Add(1)
			cr.lat.Observe(lat)
			switch outcome {
			case outcomeOK:
				cr.ok.Add(1)
				if timing != "" {
					cr.timingSampled.Add(1)
					if serverTimingAgrees(timing, lat) {
						cr.timingAgreed.Add(1)
					}
				}
			case outcomeDeadline:
				cr.deadline.Add(1)
			default:
				cr.errors.Add(1)
			}
		}(i, p, intended)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeError
	outcomeDeadline
)

// send posts one request with its ID and deadline and classifies the result.
// The Server-Timing header of an OK response comes back for cross-checking.
func send(httpc *http.Client, url string, body []byte, reqID string, deadline time.Duration) (outcome, string) {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return outcomeError, ""
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := httpc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return outcomeDeadline, ""
		}
		return outcomeError, ""
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		if ctx.Err() != nil {
			return outcomeDeadline, ""
		}
		return outcomeError, ""
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusGatewayTimeout {
			return outcomeDeadline, ""
		}
		return outcomeError, ""
	}
	return outcomeOK, resp.Header.Get("Server-Timing")
}

// serverTimingAgrees checks the server's decomposition against the client's
// own measurement: every stage duration and the server total must be ≤ the
// client latency (the client clock includes the network, so server time can
// only be smaller).
func serverTimingAgrees(header string, clientNs int64) bool {
	clientMs := float64(clientNs) / 1e6
	var stageSum, total float64
	for _, part := range strings.Split(header, ",") {
		name, attr, ok := strings.Cut(strings.TrimSpace(part), ";")
		if !ok || !strings.HasPrefix(attr, "dur=") {
			return false
		}
		d, err := strconv.ParseFloat(strings.TrimPrefix(attr, "dur="), 64)
		if err != nil {
			return false
		}
		if name == "total" {
			total = d
		} else {
			stageSum += d
		}
	}
	// Allow a hair of float slack; the invariant is ≤, not ≈.
	const slack = 1.001
	return stageSum <= total*slack && total <= clientMs*slack
}

func classNames() [2]string { return [2]string{obs.ClassRead.String(), obs.ClassWrite.String()} }

func renderReport(addr, workload string, rps float64, duration time.Duration, seed int64, res *runResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bbsload: workload=%s target=%.0frps duration=%s seed=%d addr=%s (open-loop, latency from intended send)\n",
		workload, rps, duration, seed, addr)
	names := classNames()
	for c, name := range names {
		cr := &res.classes[c]
		intended := cr.intended.Load()
		if intended == 0 {
			continue
		}
		m := cr.lat.Metrics()
		achieved := float64(cr.ok.Load()) / res.elapsed.Seconds()
		fmt.Fprintf(&b, "  %-5s intended=%d sent=%d ok=%d err=%d deadline=%d shed=%d achieved=%.1frps\n",
			name, intended, cr.sent.Load(), cr.ok.Load(), cr.errors.Load(), cr.deadline.Load(), cr.shed.Load(), achieved)
		fmt.Fprintf(&b, "        p50=%.3fms p95=%.3fms p99=%.3fms p99.9=%.3fms max=%.3fms\n",
			float64(m.P50)/1e6, float64(m.P95)/1e6, float64(m.P99)/1e6, float64(m.P999)/1e6, float64(m.Max)/1e6)
		if s := cr.timingSampled.Load(); s > 0 {
			fmt.Fprintf(&b, "        server-timing: %d/%d sampled responses agreed (stage sum ≤ server total ≤ client latency)\n",
				cr.timingAgreed.Load(), s)
		}
	}
	return b.String()
}

func buildRecords(workload string, rps float64, duration time.Duration, seed int64, res *runResult) []exp.LoadRecord {
	var out []exp.LoadRecord
	names := classNames()
	for c, name := range names {
		cr := &res.classes[c]
		intended := cr.intended.Load()
		if intended == 0 {
			continue
		}
		m := cr.lat.Metrics()
		failed := cr.errors.Load() + cr.deadline.Load() + cr.shed.Load()
		out = append(out, exp.LoadRecord{
			Scheme:        fmt.Sprintf("load-%s-%s", workload, name),
			Workload:      workload,
			Class:         name,
			TargetRPS:     rps,
			AchievedRPS:   float64(cr.ok.Load()) / res.elapsed.Seconds(),
			DurationNs:    duration.Nanoseconds(),
			Seed:          seed,
			Sent:          cr.sent.Load(),
			OK:            cr.ok.Load(),
			Errors:        cr.errors.Load(),
			Deadline:      cr.deadline.Load(),
			Shed:          cr.shed.Load(),
			P50Ns:         m.P50,
			P95Ns:         m.P95,
			P99Ns:         m.P99,
			P999Ns:        m.P999,
			MaxNs:         m.Max,
			ErrorRate:     float64(failed) / float64(intended),
			TimingSampled: cr.timingSampled.Load(),
			TimingAgreed:  cr.timingAgreed.Load(),
		})
	}
	return out
}

// checkGates applies the SLO thresholds to the run's records; any
// violation fails the process, which is what CI keys on.
func checkGates(records []exp.LoadRecord, readP99, writeP99 time.Duration, maxErrRate float64) error {
	var violations []string
	for _, r := range records {
		var gate time.Duration
		switch r.Class {
		case "read":
			gate = readP99
		case "write":
			gate = writeP99
		}
		if gate > 0 && r.P99Ns > gate.Nanoseconds() {
			violations = append(violations, fmt.Sprintf("%s p99 %.3fms > SLO %s", r.Class, float64(r.P99Ns)/1e6, gate))
		}
		if r.ErrorRate > maxErrRate {
			violations = append(violations, fmt.Sprintf("%s error rate %.2f%% > %.2f%%", r.Class, r.ErrorRate*100, maxErrRate*100))
		}
		if r.TimingSampled > 0 && r.TimingAgreed < r.TimingSampled {
			violations = append(violations, fmt.Sprintf("%s server-timing disagreed on %d of %d responses",
				r.Class, r.TimingSampled-r.TimingAgreed, r.TimingSampled))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("SLO violated: %s", strings.Join(violations, "; "))
	}
	fmt.Println("SLO: all gates passed")
	return nil
}

func runCompare(basePath, freshPath string, maxRegress float64, floorNs int64) error {
	baseline, err := exp.ReadLoadRecords(basePath)
	if err != nil {
		return err
	}
	fresh, err := exp.ReadLoadRecords(freshPath)
	if err != nil {
		return err
	}
	if err := exp.CompareLoad(baseline, fresh, maxRegress, floorNs); err != nil {
		return err
	}
	fmt.Printf("compare: %d fresh load records within %.0f%% of %s\n", len(fresh), maxRegress*100, basePath)
	return nil
}
