package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src/"

// runLint invokes the driver exactly as main does and returns its exit
// code and streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes pins the driver contract: 0 clean, 1 findings, 2 usage or
// load errors.
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{fixtures + "pooledvec/good/internal/core"}, 0},
		{"clean subtree", []string{fixtures + "errwrap/good/..."}, 0},
		{"findings", []string{fixtures + "pooledvec/bad/internal/core"}, 1},
		{"findings in subtree", []string{fixtures + "determinism/bad/..."}, 1},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"missing directory", []string{fixtures + "no/such/dir"}, 2},
		{"unknown analyzer", []string{"-analyzers", "nope", fixtures + "pooledvec/good/..."}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, stderr := runLint(t, tt.args...)
			if code != tt.want {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tt.want, stderr)
			}
		})
	}
}

// TestFindingOutput checks the canonical rendering and the findings count
// on stderr.
func TestFindingOutput(t *testing.T) {
	code, stdout, stderr := runLint(t, fixtures+"pooledvec/bad/internal/core")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "alloc.go:9: ") || !strings.Contains(stdout, "[pooledvec]") {
		t.Errorf("stdout %q lacks file:line: message [analyzer]", stdout)
	}
	if !strings.Contains(stderr, "3 finding(s)") {
		t.Errorf("stderr %q lacks findings count", stderr)
	}
}

// TestSuppressions: a well-formed //lint:ignore (and file-ignore) silences
// the finding; a reasonless one does not and is itself reported.
func TestSuppressions(t *testing.T) {
	if code, stdout, _ := runLint(t, fixtures+"suppress/..."); code != 0 {
		t.Errorf("suppressed fixtures: exit %d, stdout %s", code, stdout)
	}
	code, stdout, _ := runLint(t, fixtures+"malformed/...")
	if code != 1 {
		t.Fatalf("malformed fixture: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "malformed suppression") || !strings.Contains(stdout, "[pooledvec]") {
		t.Errorf("malformed fixture output %q: want both the directive report and the unsuppressed finding", stdout)
	}
}

// TestDeterminismAllowlist: the same wall-clock call that is a finding in
// internal/core is silent in the allowlisted internal/exp.
func TestDeterminismAllowlist(t *testing.T) {
	if code, _, _ := runLint(t, "-analyzers", "determinism", fixtures+"determinism/allow/..."); code != 0 {
		t.Errorf("allowlisted exp package flagged, want clean")
	}
	if code, _, _ := runLint(t, "-analyzers", "determinism", fixtures+"determinism/bad/..."); code != 1 {
		t.Errorf("core fixture not flagged, want findings")
	}
}

// TestAnalyzerSubset: -analyzers restricts the run.
func TestAnalyzerSubset(t *testing.T) {
	// The determinism fixture violates nothing pooledvec checks.
	if code, stdout, _ := runLint(t, "-analyzers", "pooledvec", fixtures+"determinism/bad/..."); code != 0 {
		t.Errorf("pooledvec over determinism fixture: exit %d, stdout %s", code, stdout)
	}
}

// TestList prints every analyzer with its doc line.
func TestList(t *testing.T) {
	_, stdout, _ := runLint(t, "-list")
	for _, name := range []string{
		"atomicfield", "pooledvec", "lockdiscipline", "determinism", "errwrap",
		"obsdiscipline", "snapshotsafety", "ctxflow", "goroutinelife", "hotpathalloc",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output lacks %s", name)
		}
	}
}

// TestRepoClean is the gate `make lint` relies on: the repository at HEAD
// carries no unsuppressed findings.
func TestRepoClean(t *testing.T) {
	code, stdout, stderr := runLint(t, "../../...")
	if code != 0 {
		t.Errorf("bbslint over the repo: exit %d\n%s%s", code, stdout, stderr)
	}
}

// TestJSONOutput: -json replaces the text rendering with a machine-parsed
// array whose entries carry analyzer, module-relative file, and position.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", "-cache", "off", fixtures+"pooledvec/bad/internal/core")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(findings) != 3 || findings[0].Analyzer != "pooledvec" || findings[0].Line != 9 {
		t.Fatalf("decoded findings = %+v, want three pooledvec, first at line 9", findings)
	}
	if !strings.HasPrefix(findings[0].File, "internal/lint/testdata/") {
		t.Errorf("file %q is not module-relative", findings[0].File)
	}

	// A clean package emits the empty array, not empty output.
	_, stdout, _ = runLint(t, "-json", "-cache", "off", fixtures+"pooledvec/good/internal/core")
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// TestSARIFOutput: -sarif - writes a SARIF 2.1.0 log with one rule per
// analyzer and one result per finding.
func TestSARIFOutput(t *testing.T) {
	code, stdout, _ := runLint(t, "-sarif", "-", "-cache", "off", fixtures+"pooledvec/bad/internal/core")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("stdout is not SARIF JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "bbslint" {
		t.Fatalf("SARIF header wrong: %+v", log)
	}
	if len(log.Runs[0].Results) != 3 {
		t.Errorf("SARIF results = %+v, want three pooledvec results", log.Runs[0].Results)
	}
	for _, r := range log.Runs[0].Results {
		if r.RuleID != "pooledvec" {
			t.Errorf("SARIF result rule = %q, want pooledvec", r.RuleID)
		}
	}
}

// TestParallelByteIdentical is the smoke-test CI runs: the same package
// set at -parallel 1 and -parallel 4 emits byte-identical JSON.
func TestParallelByteIdentical(t *testing.T) {
	_, seq, _ := runLint(t, "-json", "-cache", "off", "-parallel", "1", fixtures+"snapshotsafety/...")
	_, par, _ := runLint(t, "-json", "-cache", "off", "-parallel", "4", fixtures+"snapshotsafety/...")
	if seq != par {
		t.Errorf("-parallel 1 and -parallel 4 output differ:\n--- 1 ---\n%s\n--- 4 ---\n%s", seq, par)
	}
	if strings.TrimSpace(seq) == "[]" {
		t.Error("snapshotsafety fixtures produced no findings; the comparison is vacuous")
	}
}

// TestSuppressionCounts: -suppressions tallies directives per analyzer
// without running any analysis.
func TestSuppressionCounts(t *testing.T) {
	code, stdout, stderr := runLint(t, "-suppressions", fixtures+"suppress/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "total") {
		t.Errorf("-suppressions output %q lacks the total row", stdout)
	}
	if !strings.Contains(stdout, "determinism") && !strings.Contains(stdout, "pooledvec") {
		t.Errorf("-suppressions output %q names no suppressed analyzer", stdout)
	}
}

// TestCacheWarm: with -cache pointed at a scratch directory, the second
// run type-checks nothing, and says so under -v.
func TestCacheWarm(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	target := fixtures + "determinism/bad/internal/core"
	code, _, _ := runLint(t, "-v", "-cache", cacheDir, target)
	if code != 1 {
		t.Fatalf("cold run exit = %d, want 1", code)
	}
	code, stdout, stderr := runLint(t, "-v", "-cache", cacheDir, target)
	if code != 1 {
		t.Fatalf("warm run exit = %d, want 1 (findings must survive the cache)", code)
	}
	if !strings.Contains(stderr, "(0 type-checked)") {
		t.Errorf("warm -v stats %q: want 0 packages type-checked", stderr)
	}
	if !strings.Contains(stdout, "[determinism]") {
		t.Errorf("warm findings %q lost the determinism diagnostics", stdout)
	}
}
