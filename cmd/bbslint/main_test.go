package main

import (
	"bytes"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src/"

// runLint invokes the driver exactly as main does and returns its exit
// code and streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes pins the driver contract: 0 clean, 1 findings, 2 usage or
// load errors.
func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{fixtures + "pooledvec/good/internal/core"}, 0},
		{"clean subtree", []string{fixtures + "errwrap/good/..."}, 0},
		{"findings", []string{fixtures + "pooledvec/bad/internal/core"}, 1},
		{"findings in subtree", []string{fixtures + "determinism/bad/..."}, 1},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"missing directory", []string{fixtures + "no/such/dir"}, 2},
		{"unknown analyzer", []string{"-analyzers", "nope", fixtures + "pooledvec/good/..."}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, stderr := runLint(t, tt.args...)
			if code != tt.want {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tt.want, stderr)
			}
		})
	}
}

// TestFindingOutput checks the canonical rendering and the findings count
// on stderr.
func TestFindingOutput(t *testing.T) {
	code, stdout, stderr := runLint(t, fixtures+"pooledvec/bad/internal/core")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "alloc.go:9: ") || !strings.Contains(stdout, "[pooledvec]") {
		t.Errorf("stdout %q lacks file:line: message [analyzer]", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr %q lacks findings count", stderr)
	}
}

// TestSuppressions: a well-formed //lint:ignore (and file-ignore) silences
// the finding; a reasonless one does not and is itself reported.
func TestSuppressions(t *testing.T) {
	if code, stdout, _ := runLint(t, fixtures+"suppress/..."); code != 0 {
		t.Errorf("suppressed fixtures: exit %d, stdout %s", code, stdout)
	}
	code, stdout, _ := runLint(t, fixtures+"malformed/...")
	if code != 1 {
		t.Fatalf("malformed fixture: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "malformed suppression") || !strings.Contains(stdout, "[pooledvec]") {
		t.Errorf("malformed fixture output %q: want both the directive report and the unsuppressed finding", stdout)
	}
}

// TestDeterminismAllowlist: the same wall-clock call that is a finding in
// internal/core is silent in the allowlisted internal/exp.
func TestDeterminismAllowlist(t *testing.T) {
	if code, _, _ := runLint(t, "-analyzers", "determinism", fixtures+"determinism/allow/..."); code != 0 {
		t.Errorf("allowlisted exp package flagged, want clean")
	}
	if code, _, _ := runLint(t, "-analyzers", "determinism", fixtures+"determinism/bad/..."); code != 1 {
		t.Errorf("core fixture not flagged, want findings")
	}
}

// TestAnalyzerSubset: -analyzers restricts the run.
func TestAnalyzerSubset(t *testing.T) {
	// The determinism fixture violates nothing pooledvec checks.
	if code, stdout, _ := runLint(t, "-analyzers", "pooledvec", fixtures+"determinism/bad/..."); code != 0 {
		t.Errorf("pooledvec over determinism fixture: exit %d, stdout %s", code, stdout)
	}
}

// TestList prints every analyzer with its doc line.
func TestList(t *testing.T) {
	_, stdout, _ := runLint(t, "-list")
	for _, name := range []string{"atomicfield", "pooledvec", "lockdiscipline", "determinism", "errwrap"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output lacks %s", name)
		}
	}
}

// TestRepoClean is the gate `make lint` relies on: the repository at HEAD
// carries no unsuppressed findings.
func TestRepoClean(t *testing.T) {
	code, stdout, stderr := runLint(t, "../../...")
	if code != 0 {
		t.Errorf("bbslint over the repo: exit %d\n%s%s", code, stdout, stderr)
	}
}
