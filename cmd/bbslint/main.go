// Command bbslint runs the project's static-analysis suite (internal/lint)
// over the module: five analyzers that enforce the concurrency and
// determinism invariants of the parallel mining engine. It is built on the
// standard library alone — no go/packages, no external deps — so the module
// stays dependency-free.
//
// Usage:
//
//	bbslint [flags] [patterns]
//
// Patterns are package directories, optionally ending in /... for a whole
// subtree; the default is ./... (the module of the current directory).
//
// Exit codes: 0 — no findings; 1 — findings reported; 2 — usage or load
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bbsmine/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes.
const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbslint [flags] [patterns]\n")
		fs.PrintDefaults()
	}
	var (
		listFlag  = fs.Bool("list", false, "list the analyzers and exit")
		testsFlag = fs.Bool("tests", false, "also analyze in-package _test.go files")
		enable    = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	analyzers := lint.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *enable != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*enable, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "bbslint: unknown analyzer %q\n", name)
				return exitUsage
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "bbslint: %v\n", err)
		return exitUsage
	}
	loader.IncludeTests = *testsFlag

	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "bbslint: %v\n", err)
		return exitUsage
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "bbslint: no packages match %v\n", patterns)
		return exitUsage
	}

	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintf(stderr, "bbslint: %v\n", err)
			return exitUsage
		}
		pkgs = append(pkgs, pkg)
	}

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bbslint: %d finding(s)\n", len(findings))
		return exitFindings
	}
	return exitClean
}
