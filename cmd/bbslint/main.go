// Command bbslint runs the project's static-analysis suite (internal/lint)
// over the module: ten analyzers that enforce the concurrency, determinism
// and snapshot-immutability invariants of the mining engine and its
// serving layer. It is built on the standard library alone — no
// go/packages, no external deps — so the module stays dependency-free.
//
// Usage:
//
//	bbslint [flags] [patterns]
//
// Patterns are package directories, optionally ending in /... for a whole
// subtree; the default is ./... (the module of the current directory).
//
// The driver analyzes packages in parallel (-parallel) and caches
// per-package facts and findings on disk keyed by content hash (-cache),
// so warm runs skip type-checking packages whose transitive sources are
// unchanged. Output is deterministic at any parallelism: -json emitted at
// -parallel 1 and -parallel 4 is byte-identical, and CI asserts exactly
// that.
//
// Exit codes: 0 — no findings; 1 — findings reported; 2 — usage or load
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bbsmine/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes.
const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbslint [flags] [patterns]\n")
		fs.PrintDefaults()
	}
	var (
		listFlag     = fs.Bool("list", false, "list the analyzers and exit")
		testsFlag    = fs.Bool("tests", false, "also analyze in-package _test.go files")
		enable       = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		parallelFlag = fs.Int("parallel", 0, "worker count for package analysis (0 = GOMAXPROCS)")
		jsonFlag     = fs.Bool("json", false, "emit findings as JSON on stdout instead of text")
		sarifFlag    = fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file (- for stdout)")
		cacheFlag    = fs.String("cache", "", "fact/finding cache directory (default: user cache dir; 'off' disables)")
		supprFlag    = fs.Bool("suppressions", false, "print per-analyzer suppression directive counts and exit")
		verboseFlag  = fs.Bool("v", false, "print driver statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	analyzers := lint.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *enable != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*enable, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "bbslint: unknown analyzer %q\n", name)
				return exitUsage
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "bbslint: %v\n", err)
		return exitUsage
	}
	loader.IncludeTests = *testsFlag

	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "bbslint: %v\n", err)
		return exitUsage
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "bbslint: no packages match %v\n", patterns)
		return exitUsage
	}

	if *supprFlag {
		counts, err := lint.DirectiveCounts(loader, paths)
		if err != nil {
			fmt.Fprintf(stderr, "bbslint: %v\n", err)
			return exitUsage
		}
		names := make([]string, 0, len(counts))
		total := 0
		for name, n := range counts {
			names = append(names, name)
			total += n
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stdout, "%-16s %d\n", name, counts[name])
		}
		fmt.Fprintf(stdout, "%-16s %d\n", "total", total)
		return exitClean
	}

	driver := &lint.Driver{
		Loader:    loader,
		Analyzers: analyzers,
		Parallel:  *parallelFlag,
		CacheDir:  cacheDir(*cacheFlag),
	}
	findings, err := driver.RunPaths(paths)
	if err != nil {
		fmt.Fprintf(stderr, "bbslint: %v\n", err)
		return exitUsage
	}
	if *verboseFlag {
		s := driver.Stats
		fmt.Fprintf(stderr, "bbslint: %d packages (%d type-checked), facts %d computed/%d cached, findings %d computed/%d cached\n",
			s.Packages, s.Loaded, s.FactsComputed, s.FactsCached, s.FindingsComputed, s.FindingsCached)
	}

	if *sarifFlag != "" {
		w := stdout
		var f *os.File
		if *sarifFlag != "-" {
			f, err = os.Create(*sarifFlag)
			if err != nil {
				fmt.Fprintf(stderr, "bbslint: %v\n", err)
				return exitUsage
			}
			w = f
		}
		err = lint.EmitSARIF(w, findings, analyzers, loader.ModuleRoot)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "bbslint: %v\n", err)
			return exitUsage
		}
	}

	if *jsonFlag {
		if err := lint.EmitJSON(stdout, findings, loader.ModuleRoot); err != nil {
			fmt.Fprintf(stderr, "bbslint: %v\n", err)
			return exitUsage
		}
	} else if *sarifFlag != "-" {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bbslint: %d finding(s)\n", len(findings))
		return exitFindings
	}
	return exitClean
}

// cacheDir resolves the -cache flag: "off" disables the cache, empty picks
// a per-user default, anything else is used as given. Cache failures only
// cost speed, so an unresolvable default silently disables caching.
func cacheDir(flagValue string) string {
	switch flagValue {
	case "off":
		return ""
	case "":
		base, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		return filepath.Join(base, "bbslint")
	default:
		return flagValue
	}
}
