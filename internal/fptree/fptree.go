// Package fptree implements the FP-tree and the FP-growth mining algorithm
// of Han, Pei & Yin (SIGMOD 2000), the paper's FPS baseline.
//
// Construction takes two database scans: one to count items, one to insert
// each transaction's frequent items in descending frequency order into a
// prefix tree with a header table of node links. FP-growth then mines the
// complete set of frequent patterns by building conditional pattern bases
// and conditional FP-trees recursively, with the standard single-path
// shortcut.
//
// The structure is static: it must be rebuilt whenever the database changes
// (the property the paper's dynamic-database experiment exploits), and its
// size depends on the data. When a memory budget is set and the tree
// exceeds it, the database is rescanned proportionally to model the
// partitioned construction a small-memory system would need — "when the
// FP-tree does not fit into the memory, the database will have to be
// scanned multiple times".
package fptree

import (
	"fmt"
	"sort"

	"bbsmine/internal/mining"
	"bbsmine/internal/txdb"
)

// Config controls one mining run.
type Config struct {
	// MinSupport is the absolute support threshold τ.
	MinSupport int
	// MemoryBudget caps the resident tree size in bytes; 0 = unlimited.
	MemoryBudget int64
}

// node is one FP-tree node.
type node struct {
	item     txdb.Item
	count    int
	parent   *node
	children map[txdb.Item]*node
	next     *node // link to the next node carrying the same item
}

// nodeBytes approximates the resident size of one FP-tree node (struct,
// map header, links).
const nodeBytes = 96

// Tree is an FP-tree with its header table.
type Tree struct {
	root    *node
	headers []header // descending frequency order
	index   map[txdb.Item]int
	nodes   int
}

type header struct {
	item  txdb.Item
	count int
	head  *node
}

// Build constructs an FP-tree over the store with the given support
// threshold, performing the canonical two scans.
func Build(store txdb.Store, minSupport int) (*Tree, error) {
	if minSupport <= 0 {
		return nil, fmt.Errorf("fptree: MinSupport must be positive, got %d", minSupport)
	}
	counts := map[txdb.Item]int{}
	if err := store.Scan(func(_ int, tx txdb.Transaction) bool {
		for _, it := range tx.Items {
			counts[it]++
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("fptree: counting scan: %w", err)
	}

	t := newTreeFromCounts(counts, minSupport)
	buf := make([]txdb.Item, 0, 32)
	if err := store.Scan(func(_ int, tx txdb.Transaction) bool {
		buf = t.projectAndOrder(tx.Items, buf[:0])
		t.insert(buf, 1)
		return true
	}); err != nil {
		return nil, fmt.Errorf("fptree: insertion scan: %w", err)
	}
	return t, nil
}

// newTreeFromCounts prepares an empty tree whose header table holds the
// frequent items in descending count order (ties broken by item id).
func newTreeFromCounts(counts map[txdb.Item]int, minSupport int) *Tree {
	t := &Tree{
		root:  &node{children: map[txdb.Item]*node{}},
		index: map[txdb.Item]int{},
	}
	//lint:ignore determinism headers get a total order (count desc, item asc) in the sort below
	for it, c := range counts {
		if c >= minSupport {
			t.headers = append(t.headers, header{item: it, count: c})
		}
	}
	sort.Slice(t.headers, func(i, j int) bool {
		if t.headers[i].count != t.headers[j].count {
			return t.headers[i].count > t.headers[j].count
		}
		return t.headers[i].item < t.headers[j].item
	})
	for i, h := range t.headers {
		t.index[h.item] = i
	}
	return t
}

// projectAndOrder keeps only the frequent items of a transaction and orders
// them by the tree's header ranking, reusing dst.
func (t *Tree) projectAndOrder(items []txdb.Item, dst []txdb.Item) []txdb.Item {
	for _, it := range items {
		if _, ok := t.index[it]; ok {
			dst = append(dst, it)
		}
	}
	sort.Slice(dst, func(i, j int) bool { return t.index[dst[i]] < t.index[dst[j]] })
	return dst
}

// insert adds one ordered item path with the given count.
func (t *Tree) insert(items []txdb.Item, count int) {
	n := t.root
	for _, it := range items {
		child, ok := n.children[it]
		if !ok {
			child = &node{item: it, parent: n, children: map[txdb.Item]*node{}}
			t.nodes++
			hi := t.index[it]
			child.next = t.headers[hi].head
			t.headers[hi].head = child
			n.children[it] = child
		}
		child.count += count
		n = child
	}
}

// Nodes returns the number of nodes in the tree (root excluded).
func (t *Tree) Nodes() int { return t.nodes }

// SizeBytes returns the approximate resident size of the tree.
func (t *Tree) SizeBytes() int64 { return int64(t.nodes) * nodeBytes }

// singlePath returns the path items (top-down) and their counts if the tree
// consists of a single path, or nil otherwise.
func (t *Tree) singlePath() ([]txdb.Item, []int) {
	var items []txdb.Item
	var counts []int
	n := t.root
	for {
		if len(n.children) == 0 {
			return items, counts
		}
		if len(n.children) > 1 {
			return nil, nil
		}
		//lint:ignore determinism the guards above ensure exactly one child; a 1-element range has one order
		for _, child := range n.children {
			n = child
		}
		items = append(items, n.item)
		counts = append(counts, n.count)
	}
}

// Mine runs FP-growth over the store: build the tree, then grow patterns.
// When cfg.MemoryBudget is positive and the tree exceeds it, the database
// is rescanned ceil(size/budget)-1 extra times to model partitioned
// construction before mining proceeds.
func Mine(store txdb.Store, cfg Config) ([]mining.Frequent, error) {
	t, err := Build(store, cfg.MinSupport)
	if err != nil {
		return nil, err
	}
	if cfg.MemoryBudget > 0 && t.SizeBytes() > cfg.MemoryBudget {
		extra := int((t.SizeBytes() - 1) / cfg.MemoryBudget) // ceil - 1
		for i := 0; i < extra; i++ {
			if err := store.Scan(func(int, txdb.Transaction) bool { return true }); err != nil {
				return nil, fmt.Errorf("fptree: partition scan: %w", err)
			}
		}
	}
	var out []mining.Frequent
	t.growth(nil, cfg.MinSupport, &out)
	mining.Sort(out)
	return out, nil
}

// growth is the FP-growth recursion: emit every pattern extending suffix.
func (t *Tree) growth(suffix []txdb.Item, minSupport int, out *[]mining.Frequent) {
	// Single-path shortcut, guarded so the 2^n combination expansion never
	// explodes; longer paths fall through to the general recursion, which
	// handles them correctly (just less directly).
	if items, counts := t.singlePath(); items != nil && len(items) <= 24 {
		emitSinglePathCombos(items, counts, suffix, out)
		return
	}
	// Process header entries bottom-up (least frequent first).
	for hi := len(t.headers) - 1; hi >= 0; hi-- {
		h := t.headers[hi]
		pattern := append(append([]txdb.Item(nil), suffix...), h.item)
		*out = append(*out, mining.Frequent{Items: sortedCopy(pattern), Support: h.count})

		// Conditional pattern base: prefix paths of every node of h.item.
		condCounts := map[txdb.Item]int{}
		for n := h.head; n != nil; n = n.next {
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				condCounts[p.item] += n.count
			}
		}
		cond := newTreeFromCounts(condCounts, minSupport)
		if len(cond.headers) == 0 {
			continue
		}
		path := make([]txdb.Item, 0, 16)
		for n := h.head; n != nil; n = n.next {
			path = path[:0]
			for p := n.parent; p != nil && p.parent != nil; p = p.parent {
				if _, ok := cond.index[p.item]; ok {
					path = append(path, p.item)
				}
			}
			if len(path) == 0 {
				continue
			}
			// path is bottom-up; reverse into header order (conditional
			// counts order is a refinement of the original order along any
			// prefix path, but re-sorting keeps it correct in general).
			sort.Slice(path, func(i, j int) bool { return cond.index[path[i]] < cond.index[path[j]] })
			cond.insert(path, n.count)
		}
		cond.growth(pattern, minSupport, out)
	}
}

// emitSinglePathCombos generates every combination of the single path's
// items joined with the suffix; the support of a combination is the count
// of its deepest item (counts are non-increasing along the path).
func emitSinglePathCombos(items []txdb.Item, counts []int, suffix []txdb.Item, out *[]mining.Frequent) {
	n := len(items)
	for mask := 1; mask < 1<<n; mask++ {
		combo := append([]txdb.Item(nil), suffix...)
		support := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				combo = append(combo, items[b])
				support = counts[b] // deepest selected item
			}
		}
		*out = append(*out, mining.Frequent{Items: sortedCopy(combo), Support: support})
	}
}

func sortedCopy(items []txdb.Item) []txdb.Item {
	out := append([]txdb.Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
