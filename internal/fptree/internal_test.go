package fptree

import (
	"reflect"
	"testing"

	"bbsmine/internal/txdb"
)

func TestNewTreeFromCountsHeaderOrder(t *testing.T) {
	counts := map[txdb.Item]int{1: 5, 2: 9, 3: 9, 4: 2, 5: 1}
	tr := newTreeFromCounts(counts, 2)
	// Frequent: 1,2,3,4. Descending count, ties by item: 2,3,1,4.
	want := []txdb.Item{2, 3, 1, 4}
	var got []txdb.Item
	for _, h := range tr.headers {
		got = append(got, h.item)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("header order = %v, want %v", got, want)
	}
	if _, ok := tr.index[5]; ok {
		t.Error("infrequent item 5 present in index")
	}
}

func TestProjectAndOrder(t *testing.T) {
	counts := map[txdb.Item]int{10: 9, 20: 5, 30: 3}
	tr := newTreeFromCounts(counts, 3)
	got := tr.projectAndOrder([]txdb.Item{5, 30, 10, 40, 20}, nil)
	want := []txdb.Item{10, 20, 30} // frequency order, infrequent dropped
	if !reflect.DeepEqual(got, want) {
		t.Errorf("projectAndOrder = %v, want %v", got, want)
	}
	// Buffer reuse must not leak previous contents.
	got = tr.projectAndOrder([]txdb.Item{20}, got[:0])
	if !reflect.DeepEqual(got, []txdb.Item{20}) {
		t.Errorf("reused buffer = %v", got)
	}
}

func TestInsertSharesPrefixes(t *testing.T) {
	counts := map[txdb.Item]int{1: 10, 2: 8, 3: 6}
	tr := newTreeFromCounts(counts, 2)
	tr.insert([]txdb.Item{1, 2, 3}, 1)
	tr.insert([]txdb.Item{1, 2}, 1)
	tr.insert([]txdb.Item{1, 3}, 1)
	// Nodes: 1, 1-2, 1-2-3, 1-3 → 4 nodes.
	if tr.Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4", tr.Nodes())
	}
	items, counts2 := tr.singlePath()
	if items != nil || counts2 != nil {
		t.Error("branching tree reported as single path")
	}
}

func TestNodeLinksCoverAllOccurrences(t *testing.T) {
	counts := map[txdb.Item]int{1: 10, 2: 8, 3: 6}
	tr := newTreeFromCounts(counts, 2)
	tr.insert([]txdb.Item{1, 2, 3}, 2)
	tr.insert([]txdb.Item{2, 3}, 1)
	tr.insert([]txdb.Item{1, 3}, 4)
	// Walk item 3's node links; total count must equal 2+1+4.
	hi := tr.index[3]
	total := 0
	for n := tr.headers[hi].head; n != nil; n = n.next {
		total += n.count
	}
	if total != 7 {
		t.Errorf("node-link total for item 3 = %d, want 7", total)
	}
}

func TestEmitSinglePathCombos(t *testing.T) {
	var out []miningFrequent
	emitSinglePathCombos(
		[]txdb.Item{5, 7}, []int{4, 2},
		[]txdb.Item{9},
		&out,
	)
	if len(out) != 3 {
		t.Fatalf("emitted %d combos, want 3", len(out))
	}
	supports := map[string]int{}
	for _, f := range out {
		supports[keyOf(f.Items)] = f.Support
	}
	// {5,9} keeps count of 5 (4); {7,9} and {5,7,9} bottom out at 7 (2).
	if supports[keyOf([]txdb.Item{5, 9})] != 4 {
		t.Errorf("{5,9} support = %d, want 4", supports[keyOf([]txdb.Item{5, 9})])
	}
	if supports[keyOf([]txdb.Item{7, 9})] != 2 {
		t.Errorf("{7,9} support = %d, want 2", supports[keyOf([]txdb.Item{7, 9})])
	}
	if supports[keyOf([]txdb.Item{5, 7, 9})] != 2 {
		t.Errorf("{5,7,9} support = %d, want 2", supports[keyOf([]txdb.Item{5, 7, 9})])
	}
}
