package fptree

import (
	"math/rand"
	"testing"

	"bbsmine/internal/apriori"
	"bbsmine/internal/iostat"
	"bbsmine/internal/mining"
	"bbsmine/internal/quest"
	"bbsmine/internal/txdb"
)

// hanPeiYinExample is the worked example from the FP-growth paper.
func hanPeiYinExample() []txdb.Transaction {
	return []txdb.Transaction{
		txdb.NewTransaction(100, []int32{1, 2, 5}),
		txdb.NewTransaction(200, []int32{2, 4}),
		txdb.NewTransaction(300, []int32{2, 3}),
		txdb.NewTransaction(400, []int32{1, 2, 4}),
		txdb.NewTransaction(500, []int32{1, 3}),
		txdb.NewTransaction(600, []int32{2, 3}),
		txdb.NewTransaction(700, []int32{1, 3}),
		txdb.NewTransaction(800, []int32{1, 2, 3, 5}),
		txdb.NewTransaction(900, []int32{1, 2, 3}),
	}
}

func TestMineHanPeiYinExample(t *testing.T) {
	store, err := txdb.NewMemStoreFrom(nil, hanPeiYinExample())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(store, Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := mining.BruteForce(hanPeiYinExample(), 2)
	if diffs := mining.Diff("fpgrowth", got, "bruteforce", want); len(diffs) > 0 {
		t.Errorf("mismatch:\n%v", diffs)
	}
	m := mining.ToMap(got)
	// Known answers from the FP-growth paper's example.
	if m[mining.Key([]txdb.Item{1, 2, 5})] != 2 {
		t.Errorf("{1,2,5} support = %d, want 2", m[mining.Key([]txdb.Item{1, 2, 5})])
	}
	if m[mining.Key([]txdb.Item{2})] != 7 {
		t.Errorf("{2} support = %d, want 7", m[mining.Key([]txdb.Item{2})])
	}
}

func TestBuildTwoScans(t *testing.T) {
	var stats iostat.Stats
	store, err := txdb.NewMemStoreFrom(&stats, hanPeiYinExample())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(store, 2); err != nil {
		t.Fatal(err)
	}
	if got := stats.DBScans(); got != 2 {
		t.Errorf("Build used %d scans, want exactly 2", got)
	}
}

func TestBuildRejectsBadSupport(t *testing.T) {
	store := txdb.NewMemStore(nil)
	if _, err := Build(store, 0); err == nil {
		t.Error("MinSupport 0 accepted")
	}
}

func TestTreeCompression(t *testing.T) {
	// Identical transactions must share a single path.
	txs := make([]txdb.Transaction, 50)
	for i := range txs {
		txs[i] = txdb.NewTransaction(int64(i), []int32{1, 2, 3})
	}
	store, _ := txdb.NewMemStoreFrom(nil, txs)
	tree, err := Build(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 3 {
		t.Errorf("tree has %d nodes, want 3 (one shared path)", tree.Nodes())
	}
	items, counts := tree.singlePath()
	if len(items) != 3 {
		t.Fatalf("singlePath items = %v", items)
	}
	for _, c := range counts {
		if c != 50 {
			t.Errorf("path count = %d, want 50", c)
		}
	}
}

func TestSinglePathCombos(t *testing.T) {
	txs := make([]txdb.Transaction, 10)
	for i := range txs {
		txs[i] = txdb.NewTransaction(int64(i), []int32{7, 8, 9})
	}
	store, _ := txdb.NewMemStoreFrom(nil, txs)
	got, err := Mine(store, Config{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 { // 2^3 - 1 combinations
		t.Errorf("mined %d patterns, want 7: %v", len(got), got)
	}
	for _, f := range got {
		if f.Support != 10 {
			t.Errorf("pattern %v support %d, want 10", f.Items, f.Support)
		}
	}
}

func TestMineMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		txs := make([]txdb.Transaction, 80)
		for i := range txs {
			n := 1 + rng.Intn(8)
			items := make([]int32, n)
			for j := range items {
				items[j] = int32(rng.Intn(15))
			}
			txs[i] = txdb.NewTransaction(int64(i), items)
		}
		store, _ := txdb.NewMemStoreFrom(nil, txs)
		minSup := 2 + rng.Intn(8)
		got, err := Mine(store, Config{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := mining.BruteForce(txs, minSup)
		if diffs := mining.Diff("fpgrowth", got, "bruteforce", want); len(diffs) > 0 {
			t.Fatalf("trial %d (minSup %d):\n%v", trial, minSup, diffs)
		}
	}
}

func TestMineMatchesAprioriOnQuest(t *testing.T) {
	cfg := quest.DefaultConfig()
	cfg.D = 1500
	cfg.N = 400
	g, err := quest.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := txdb.NewMemStore(nil)
	if err := g.GenerateInto(store); err != nil {
		t.Fatal(err)
	}
	minSup := mining.MinSupportCount(0.01, store.Len())
	fp, err := Mine(store, Config{MinSupport: minSup})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := apriori.Mine(store, apriori.Config{MinSupport: minSup})
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) == 0 {
		t.Fatal("degenerate workload")
	}
	if diffs := mining.Diff("fpgrowth", fp, "apriori", ap); len(diffs) > 0 {
		t.Errorf("baselines disagree:\n%v", diffs)
	}
}

func TestMemoryBudgetForcesExtraScans(t *testing.T) {
	cfg := quest.DefaultConfig()
	cfg.D = 500
	cfg.N = 200
	g, err := quest.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txs := g.Generate()

	var statsBig iostat.Stats
	storeBig, _ := txdb.NewMemStoreFrom(&statsBig, txs)
	big, err := Mine(storeBig, Config{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}

	var statsSmall iostat.Stats
	storeSmall, _ := txdb.NewMemStoreFrom(&statsSmall, txs)
	small, err := Mine(storeSmall, Config{MinSupport: 5, MemoryBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}

	if diffs := mining.Diff("big", big, "small", small); len(diffs) > 0 {
		t.Errorf("budget changed results:\n%v", diffs)
	}
	if statsSmall.DBScans() <= statsBig.DBScans() {
		t.Errorf("budgeted: %d scans, unlimited: %d; want more under pressure",
			statsSmall.DBScans(), statsBig.DBScans())
	}
}

func TestEmptyDatabase(t *testing.T) {
	store := txdb.NewMemStore(nil)
	got, err := Mine(store, Config{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("mined %d patterns from empty DB", len(got))
	}
}

func TestSizeBytesGrowsWithNodes(t *testing.T) {
	txs := []txdb.Transaction{
		txdb.NewTransaction(1, []int32{1, 2}),
		txdb.NewTransaction(2, []int32{3, 4}),
		txdb.NewTransaction(3, []int32{5, 6}),
		txdb.NewTransaction(4, []int32{1, 2}),
		txdb.NewTransaction(5, []int32{3, 4}),
		txdb.NewTransaction(6, []int32{5, 6}),
	}
	store, _ := txdb.NewMemStoreFrom(nil, txs)
	tree, err := Build(store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 6 {
		t.Errorf("Nodes = %d, want 6", tree.Nodes())
	}
	if tree.SizeBytes() != int64(6*nodeBytes) {
		t.Errorf("SizeBytes = %d", tree.SizeBytes())
	}
}

func BenchmarkMineQuestSmall(b *testing.B) {
	cfg := quest.DefaultConfig()
	cfg.D = 2000
	cfg.N = 1000
	g, err := quest.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	store := txdb.NewMemStore(nil)
	if err := g.GenerateInto(store); err != nil {
		b.Fatal(err)
	}
	minSup := mining.MinSupportCount(0.005, store.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(store, Config{MinSupport: minSup}); err != nil {
			b.Fatal(err)
		}
	}
}
