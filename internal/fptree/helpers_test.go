package fptree

import (
	"bbsmine/internal/mining"
	"bbsmine/internal/txdb"
)

// Aliases so internal_test.go reads without stutter.

type miningFrequent = mining.Frequent

func keyOf(items []txdb.Item) string { return mining.Key(items) }
