// Package weblog generates the paper's dynamic-database workload
// (Section 4.8): transactions of file accesses against a web server with a
// rotating hot set.
//
// The paper simplifies the log of [10] as follows: there are F files on the
// server; each day, 10% of the previous day's "hot" files turn cold and are
// replaced. A day's transactions draw most of their accesses from the hot
// set (a user session touches correlated popular pages) plus a tail of cold
// files. The workload is delivered as a base database D0 and daily
// increments D1..Dn, which is exactly the shape the dynamic-database
// experiment (Figure 12) needs: the BBS-based miner appends the increment,
// while FP-tree rebuilds and Apriori rescans everything.
package weblog

import (
	"fmt"
	"math/rand"

	"bbsmine/internal/txdb"
)

// Config parameterizes the workload.
type Config struct {
	// Files is the number of distinct files on the server (items).
	Files int
	// HotFraction is the share of files that are hot on a given day.
	HotFraction float64
	// ChurnFraction is the share of the hot set replaced each day (10% in
	// the paper).
	ChurnFraction float64
	// SessionSize is the average number of files in one transaction.
	SessionSize int
	// HotBias is the probability that an access goes to the hot set.
	HotBias float64
	// BaseTransactions is the size of the initial database D0.
	BaseTransactions int
	// IncrementTransactions is the size of each daily increment Di.
	IncrementTransactions int
	// Days is the number of increments to generate.
	Days int
	// Seed drives the deterministic RNG.
	Seed int64
}

// DefaultConfig scales the paper's workload (5000 files, ~6.55M accesses)
// down by a documented factor of 100 so the experiment runs in seconds
// while keeping the same proportions between D0 and the increments.
func DefaultConfig() Config {
	return Config{
		Files:                 5000,
		HotFraction:           0.1,
		ChurnFraction:         0.1,
		SessionSize:           8,
		HotBias:               0.8,
		BaseTransactions:      40000,
		IncrementTransactions: 5000,
		Days:                  5,
		Seed:                  1,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Files <= 0:
		return fmt.Errorf("weblog: Files must be positive, got %d", c.Files)
	case c.HotFraction <= 0 || c.HotFraction > 1:
		return fmt.Errorf("weblog: HotFraction %f outside (0,1]", c.HotFraction)
	case c.ChurnFraction < 0 || c.ChurnFraction > 1:
		return fmt.Errorf("weblog: ChurnFraction %f outside [0,1]", c.ChurnFraction)
	case c.SessionSize <= 0:
		return fmt.Errorf("weblog: SessionSize must be positive, got %d", c.SessionSize)
	case c.HotBias < 0 || c.HotBias > 1:
		return fmt.Errorf("weblog: HotBias %f outside [0,1]", c.HotBias)
	case c.BaseTransactions < 0 || c.IncrementTransactions < 0 || c.Days < 0:
		return fmt.Errorf("weblog: negative sizes")
	}
	return nil
}

// Workload is the generated dynamic database: the base plus daily increments.
type Workload struct {
	Base       []txdb.Transaction
	Increments [][]txdb.Transaction
}

// TotalTransactions returns |D0| + sum |Di|.
func (w *Workload) TotalTransactions() int {
	n := len(w.Base)
	for _, inc := range w.Increments {
		n += len(inc)
	}
	return n
}

// Generate builds the workload deterministically from the config.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hotCount := int(float64(cfg.Files) * cfg.HotFraction)
	if hotCount < 1 {
		hotCount = 1
	}

	// Initial hot set: a random permutation prefix.
	perm := rng.Perm(cfg.Files)
	hot := make([]txdb.Item, hotCount)
	cold := make([]txdb.Item, 0, cfg.Files-hotCount)
	for i, f := range perm {
		if i < hotCount {
			hot[i] = txdb.Item(f)
		} else {
			cold = append(cold, txdb.Item(f))
		}
	}

	var tid int64 = 1
	day := func(n int) []txdb.Transaction {
		out := make([]txdb.Transaction, n)
		for i := range out {
			size := 1 + rng.Intn(2*cfg.SessionSize-1) // mean ~ SessionSize
			items := make([]txdb.Item, 0, size)
			for len(items) < size {
				if rng.Float64() < cfg.HotBias {
					items = append(items, hot[zipfIndex(rng, len(hot))])
				} else {
					items = append(items, cold[rng.Intn(len(cold))])
				}
			}
			out[i] = txdb.NewTransaction(tid, items)
			tid++
		}
		return out
	}

	churn := func() {
		n := int(float64(len(hot)) * cfg.ChurnFraction)
		for i := 0; i < n; i++ {
			hi := rng.Intn(len(hot))
			ci := rng.Intn(len(cold))
			hot[hi], cold[ci] = cold[ci], hot[hi]
		}
	}

	w := &Workload{Base: day(cfg.BaseTransactions)}
	for d := 0; d < cfg.Days; d++ {
		churn()
		w.Increments = append(w.Increments, day(cfg.IncrementTransactions))
	}
	return w, nil
}

// zipfIndex picks an index in [0,n) with a Zipf-like skew so that a few hot
// files dominate, as web access logs do.
func zipfIndex(rng *rand.Rand, n int) int {
	// Inverse-CDF of a 1/(i+1) distribution, cheap and allocation-free.
	u := rng.Float64()
	idx := int(float64(n) * u * u) // quadratic skew toward 0
	if idx >= n {
		idx = n - 1
	}
	return idx
}
