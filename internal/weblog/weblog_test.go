package weblog

import (
	"reflect"
	"testing"

	"bbsmine/internal/txdb"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.BaseTransactions = 500
	c.IncrementTransactions = 100
	c.Days = 3
	c.Files = 200
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Files = 0 },
		func(c *Config) { c.HotFraction = 0 },
		func(c *Config) { c.HotFraction = 1.5 },
		func(c *Config) { c.ChurnFraction = -0.1 },
		func(c *Config) { c.SessionSize = 0 },
		func(c *Config) { c.HotBias = 2 },
		func(c *Config) { c.Days = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Base) != cfg.BaseTransactions {
		t.Errorf("base = %d, want %d", len(w.Base), cfg.BaseTransactions)
	}
	if len(w.Increments) != cfg.Days {
		t.Fatalf("increments = %d, want %d", len(w.Increments), cfg.Days)
	}
	for d, inc := range w.Increments {
		if len(inc) != cfg.IncrementTransactions {
			t.Errorf("day %d: %d transactions, want %d", d, len(inc), cfg.IncrementTransactions)
		}
	}
	if got := w.TotalTransactions(); got != cfg.BaseTransactions+cfg.Days*cfg.IncrementTransactions {
		t.Errorf("TotalTransactions = %d", got)
	}
}

func TestTransactionsValid(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	check := func(txs []txdb.Transaction) {
		for _, tx := range txs {
			if err := tx.Validate(); err != nil {
				t.Fatalf("invalid transaction: %v", err)
			}
			if len(tx.Items) == 0 {
				t.Fatal("empty transaction")
			}
			for _, it := range tx.Items {
				if int(it) >= 200 {
					t.Fatalf("item %d outside alphabet", it)
				}
			}
		}
	}
	check(w.Base)
	for _, inc := range w.Increments {
		check(inc)
	}
}

func TestTIDsGloballyIncreasing(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	walk := func(txs []txdb.Transaction) {
		for _, tx := range txs {
			if tx.TID <= prev {
				t.Fatalf("TID %d not increasing (prev %d)", tx.TID, prev)
			}
			prev = tx.TID
		}
	}
	walk(w.Base)
	for _, inc := range w.Increments {
		walk(inc)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different workloads")
	}
	cfg := smallConfig()
	cfg.Seed = 99
	c, _ := Generate(cfg)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestHotSetSkew(t *testing.T) {
	// Accesses must concentrate: the top decile of files should receive the
	// majority of accesses given HotBias=0.8.
	cfg := smallConfig()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freq := map[txdb.Item]int{}
	total := 0
	for _, tx := range w.Base {
		for _, it := range tx.Items {
			freq[it]++
			total++
		}
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	// Selection-sort the top 10% counts.
	top := cfg.Files / 10
	sum := 0
	for i := 0; i < top && i < len(counts); i++ {
		maxJ := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[maxJ] {
				maxJ = j
			}
		}
		counts[i], counts[maxJ] = counts[maxJ], counts[i]
		sum += counts[i]
	}
	if float64(sum)/float64(total) < 0.5 {
		t.Errorf("top decile receives %.0f%% of accesses, want majority", 100*float64(sum)/float64(total))
	}
}

func TestHotSetRotates(t *testing.T) {
	// The hottest items of day 0 and the last day must differ somewhat:
	// churn is 10%/day over several days.
	cfg := smallConfig()
	cfg.Days = 8
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	topSet := func(txs []txdb.Transaction) map[txdb.Item]bool {
		freq := map[txdb.Item]int{}
		for _, tx := range txs {
			for _, it := range tx.Items {
				freq[it]++
			}
		}
		out := map[txdb.Item]bool{}
		for n := 0; n < 10; n++ {
			best, bestC := txdb.Item(-1), -1
			for it, c := range freq {
				if c > bestC && !out[it] {
					best, bestC = it, c
				}
			}
			if best >= 0 {
				out[best] = true
			}
		}
		return out
	}
	first := topSet(w.Increments[0])
	last := topSet(w.Increments[len(w.Increments)-1])
	same := 0
	for it := range first {
		if last[it] {
			same++
		}
	}
	if same == len(first) {
		t.Error("hot set did not rotate at all over 8 days of 10% churn")
	}
}
