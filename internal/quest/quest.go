// Package quest implements the IBM Quest synthetic transaction generator of
// Agrawal & Srikant ("Fast Algorithms for Mining Association Rules", VLDB
// 1994), which the paper uses for all of its synthetic datasets ("The
// synthetic data sets which we used for our experiments were generated using
// the procedure described in [1]").
//
// Dataset names follow the paper's convention: T10.I10.D10K with V = 10K
// means average transaction size 10, average maximal potentially-frequent
// itemset size 10, 10,000 transactions, 10,000 distinct items.
//
// The generator is deterministic for a given Config.Seed, so every
// experiment in this repository is reproducible bit for bit.
package quest

import (
	"fmt"
	"math"
	"math/rand"

	"bbsmine/internal/txdb"
)

// Config holds the Quest parameters. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// D is the number of transactions to generate (|D|).
	D int
	// T is the average transaction size (Poisson mean).
	T int
	// I is the average size of the maximal potentially large itemsets.
	I int
	// N is the number of distinct items (the paper's V).
	N int
	// L is the number of maximal potentially large itemsets.
	L int
	// CorrelationLevel controls how much consecutive potentially large
	// itemsets overlap (exponential mean of the shared fraction).
	CorrelationLevel float64
	// CorruptionMean and CorruptionDev parameterize the per-itemset
	// corruption level (normal distribution, clamped to [0,1]).
	CorruptionMean float64
	CorruptionDev  float64
	// Seed makes generation deterministic.
	Seed int64
	// FirstTID numbers transactions starting at this TID.
	FirstTID int64
}

// DefaultConfig is the paper's default workload: T10.I10.D10K with 10K
// items (Section 4).
//
// L (the number of maximal potentially large itemsets) is not reported in
// the paper. Agrawal–Srikant's default was 2000 with N=1000 items; with
// this paper's N=10000, L=2000 concentrates co-occurrence so heavily that
// τ=0.3% yields >300K frequent patterns — a population whose integrated
// probing alone would have taken the paper's hardware hours, contradicting
// its reported response times. L=3000 yields a few thousand patterns with
// maximal length ≈ 12, consistent with the paper's figures, and is the
// default here (see DESIGN.md's substitution table).
func DefaultConfig() Config {
	return Config{
		D:                10000,
		T:                10,
		I:                10,
		N:                10000,
		L:                3000,
		CorrelationLevel: 0.5,
		CorruptionMean:   0.5,
		CorruptionDev:    0.1,
		Seed:             1,
		FirstTID:         1,
	}
}

// Name renders the paper's dataset naming convention, e.g. "T10.I10.D10K".
func (c Config) Name() string {
	return fmt.Sprintf("T%d.I%d.D%s", c.T, c.I, compact(c.D))
}

func compact(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Validate checks the parameters for consistency.
func (c Config) Validate() error {
	switch {
	case c.D < 0:
		return fmt.Errorf("quest: negative D %d", c.D)
	case c.T <= 0:
		return fmt.Errorf("quest: T must be positive, got %d", c.T)
	case c.I <= 0:
		return fmt.Errorf("quest: I must be positive, got %d", c.I)
	case c.N <= 0:
		return fmt.Errorf("quest: N must be positive, got %d", c.N)
	case c.L <= 0:
		return fmt.Errorf("quest: L must be positive, got %d", c.L)
	case c.CorruptionMean < 0 || c.CorruptionMean > 1:
		return fmt.Errorf("quest: corruption mean %f outside [0,1]", c.CorruptionMean)
	}
	return nil
}

// Generator produces transactions from a fixed table of potentially large
// itemsets, following the Quest recipe:
//
//  1. Build L potentially large itemsets. Sizes are Poisson(I) (minimum 1).
//     A fraction of each itemset's items (exponentially distributed with
//     mean CorrelationLevel) is drawn from the previous itemset; the rest
//     are drawn uniformly from the alphabet.
//  2. Each itemset receives an exponentially distributed weight
//     (normalized to 1) and a corruption level ~ N(mean, dev) in [0,1].
//  3. Each transaction has Poisson(T) items (minimum 1) and is filled by
//     repeatedly picking weighted itemsets, corrupting them (items are
//     dropped while a uniform draw stays below the corruption level), and
//     inserting the survivors. An itemset that does not fit is kept in half
//     the cases and deferred to the next transaction otherwise.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	itemsets [][]txdb.Item
	cum      []float64 // cumulative weights for roulette selection
	corrupt  []float64
	pending  []txdb.Item // itemset deferred to the next transaction
	nextTID  int64
}

// NewGenerator builds a generator (including its itemset table) for cfg.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nextTID: cfg.FirstTID,
	}
	g.buildItemsetTable()
	return g, nil
}

func (g *Generator) buildItemsetTable() {
	cfg := g.cfg
	g.itemsets = make([][]txdb.Item, cfg.L)
	weights := make([]float64, cfg.L)
	g.corrupt = make([]float64, cfg.L)

	var prev []txdb.Item
	for i := 0; i < cfg.L; i++ {
		size := g.poisson(float64(cfg.I))
		if size < 1 {
			size = 1
		}
		set := make(map[txdb.Item]struct{}, size)
		// Correlated fraction from the previous itemset.
		if len(prev) > 0 {
			frac := g.rng.ExpFloat64() * cfg.CorrelationLevel
			if frac > 1 {
				frac = 1
			}
			take := int(frac * float64(size))
			for j := 0; j < take && j < len(prev); j++ {
				set[prev[g.rng.Intn(len(prev))]] = struct{}{}
			}
		}
		for len(set) < size {
			set[txdb.Item(g.rng.Intn(cfg.N))] = struct{}{}
		}
		items := make([]txdb.Item, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		sortItems(items)
		g.itemsets[i] = items
		prev = items

		weights[i] = g.rng.ExpFloat64()
		c := g.cfg.CorruptionMean + g.cfg.CorruptionDev*g.rng.NormFloat64()
		if c < 0 {
			c = 0
		}
		if c > 1 {
			c = 1
		}
		g.corrupt[i] = c
	}

	total := 0.0
	for _, w := range weights {
		total += w
	}
	g.cum = make([]float64, cfg.L)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		g.cum[i] = acc
	}
	g.cum[cfg.L-1] = 1.0 // guard against rounding
}

// pickItemset selects an itemset index by roulette-wheel over the weights.
func (g *Generator) pickItemset() int {
	u := g.rng.Float64()
	// Binary search the cumulative weights.
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// corruptItemset returns a corrupted copy of itemset i: items are removed
// one at a time while a uniform draw stays below the corruption level.
func (g *Generator) corruptItemset(i int) []txdb.Item {
	src := g.itemsets[i]
	out := make([]txdb.Item, len(src))
	copy(out, src)
	c := g.corrupt[i]
	for len(out) > 0 && g.rng.Float64() < c {
		j := g.rng.Intn(len(out))
		out[j] = out[len(out)-1]
		out = out[:len(out)-1]
	}
	return out
}

// Next generates the next transaction.
func (g *Generator) Next() txdb.Transaction {
	size := g.poisson(float64(g.cfg.T))
	if size < 1 {
		size = 1
	}
	set := make(map[txdb.Item]struct{}, size)

	add := func(items []txdb.Item) {
		for _, it := range items {
			set[it] = struct{}{}
		}
	}
	if g.pending != nil {
		add(g.pending)
		g.pending = nil
	}
	for len(set) < size {
		picked := g.corruptItemset(g.pickItemset())
		if len(picked) == 0 {
			continue
		}
		if len(set)+len(picked) > size && len(set) > 0 {
			// Does not fit: keep anyway in half the cases, defer otherwise.
			if g.rng.Intn(2) == 0 {
				add(picked)
			} else {
				g.pending = picked
			}
			break
		}
		add(picked)
	}

	items := make([]txdb.Item, 0, len(set))
	for it := range set {
		items = append(items, it)
	}
	tid := g.nextTID
	g.nextTID++
	return txdb.NewTransaction(tid, items)
}

// Generate produces cfg.D transactions.
func (g *Generator) Generate() []txdb.Transaction {
	out := make([]txdb.Transaction, g.cfg.D)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// GenerateInto appends cfg.D transactions to the store and inserts each into
// every provided index-insert callback (used to build DB and BBS in one
// pass).
func (g *Generator) GenerateInto(store txdb.Store, insert ...func(items []txdb.Item)) error {
	for i := 0; i < g.cfg.D; i++ {
		tx := g.Next()
		if err := store.Append(tx); err != nil {
			return fmt.Errorf("quest: appending transaction %d: %w", i, err)
		}
		for _, fn := range insert {
			fn(tx.Items)
		}
	}
	return nil
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's product method, adequate for the means used here (<= ~50).
func (g *Generator) poisson(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func sortItems(items []txdb.Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j] < items[j-1]; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
