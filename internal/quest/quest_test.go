package quest

import (
	"math"
	"reflect"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/txdb"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.D != 10000 || c.T != 10 || c.I != 10 || c.N != 10000 {
		t.Errorf("default config %+v does not match the paper's T10.I10.D10K/V=10K", c)
	}
	if got := c.Name(); got != "T10.I10.D10K" {
		t.Errorf("Name = %q, want T10.I10.D10K", got)
	}
}

func TestNameFormats(t *testing.T) {
	c := DefaultConfig()
	c.D = 1500
	if got := c.Name(); got != "T10.I10.D1500" {
		t.Errorf("Name = %q", got)
	}
	c.D = 2000000
	if got := c.Name(); got != "T10.I10.D2M" {
		t.Errorf("Name = %q", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.D = -1 },
		func(c *Config) { c.T = 0 },
		func(c *Config) { c.I = 0 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.L = 0 },
		func(c *Config) { c.CorruptionMean = 1.5 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Errorf("Validate rejected the default config: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.D = 200
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.Generate(), g2.Generate()
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different data")
	}
	cfg.Seed = 2
	g3, _ := NewGenerator(cfg)
	if reflect.DeepEqual(a, g3.Generate()) {
		t.Error("different seeds produced identical data")
	}
}

func TestTransactionInvariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.D = 1000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txs := g.Generate()
	if len(txs) != 1000 {
		t.Fatalf("generated %d transactions", len(txs))
	}
	var prevTID int64
	for i, tx := range txs {
		if err := tx.Validate(); err != nil {
			t.Fatalf("transaction %d invalid: %v", i, err)
		}
		if len(tx.Items) == 0 {
			t.Fatalf("transaction %d is empty", i)
		}
		if i > 0 && tx.TID <= prevTID {
			t.Fatalf("TIDs not increasing at %d", i)
		}
		prevTID = tx.TID
		for _, it := range tx.Items {
			if int(it) >= cfg.N {
				t.Fatalf("item %d out of alphabet (N=%d)", it, cfg.N)
			}
		}
	}
}

func TestAverageTransactionSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.D = 5000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tx := range g.Generate() {
		total += len(tx.Items)
	}
	avg := float64(total) / 5000
	// Corruption and the fit rule push the realized mean around the nominal
	// T; accept a generous band.
	if math.Abs(avg-float64(cfg.T)) > 4 {
		t.Errorf("average transaction size %.2f too far from T=%d", avg, cfg.T)
	}
}

func TestSkewedItemPopularity(t *testing.T) {
	// Quest data must be skewed: the most popular items appear far more
	// often than the median, otherwise no itemset is ever frequent at the
	// paper's thresholds.
	cfg := DefaultConfig()
	cfg.D = 3000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	freq := map[txdb.Item]int{}
	for _, tx := range g.Generate() {
		for _, it := range tx.Items {
			freq[it]++
		}
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	// minSupport 0.3% of 3000 = 9 occurrences; the hottest item should be
	// well above that or the workload would mine nothing.
	if max < 20 {
		t.Errorf("hottest item occurs %d times; data not skewed enough", max)
	}
}

func TestFrequentPatternsExist(t *testing.T) {
	// At the paper's default threshold (0.3%) the dataset must contain
	// frequent 2-itemsets, otherwise the figures are degenerate.
	cfg := DefaultConfig()
	cfg.D = 2000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txs := g.Generate()
	tau := 6 // 0.3% of 2000
	single := map[txdb.Item]int{}
	for _, tx := range txs {
		for _, it := range tx.Items {
			single[it]++
		}
	}
	var frequent []txdb.Item
	for it, c := range single {
		if c >= tau {
			frequent = append(frequent, it)
		}
	}
	if len(frequent) < 10 {
		t.Fatalf("only %d frequent 1-itemsets at tau=%d", len(frequent), tau)
	}
	pairs := 0
	for i := 0; i < len(frequent) && pairs == 0; i++ {
		for j := i + 1; j < len(frequent); j++ {
			count := 0
			set := []txdb.Item{frequent[i], frequent[j]}
			if set[0] > set[1] {
				set[0], set[1] = set[1], set[0]
			}
			for _, tx := range txs {
				if tx.Contains(set) {
					count++
				}
			}
			if count >= tau {
				pairs++
				break
			}
		}
	}
	if pairs == 0 {
		t.Error("no frequent 2-itemset found; generator lacks co-occurrence structure")
	}
}

func TestGenerateInto(t *testing.T) {
	cfg := DefaultConfig()
	cfg.D = 100
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stats iostat.Stats
	store := txdb.NewMemStore(&stats)
	inserted := 0
	if err := g.GenerateInto(store, func(items []txdb.Item) { inserted++ }); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 100 || inserted != 100 {
		t.Errorf("store.Len=%d inserted=%d, want 100/100", store.Len(), inserted)
	}
}

func TestPoissonMean(t *testing.T) {
	cfg := DefaultConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.poisson(10)
	}
	mean := float64(sum) / n
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("Poisson(10) sample mean = %.3f", mean)
	}
}

func TestPendingItemsetCarriesOver(t *testing.T) {
	// With tiny transactions and large itemsets the "does not fit" path
	// must trigger and defer itemsets without losing generator progress.
	cfg := DefaultConfig()
	cfg.D = 500
	cfg.T = 2
	cfg.I = 8
	cfg.N = 100
	cfg.L = 20
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txs := g.Generate()
	if len(txs) != 500 {
		t.Fatalf("generated %d", len(txs))
	}
	for _, tx := range txs {
		if len(tx.Items) == 0 {
			t.Fatal("empty transaction generated")
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.D = 1
	g, err := NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
