package sighash

import (
	"testing"
	"testing/quick"
)

func TestFNVBasics(t *testing.T) {
	h := NewFNV(1600, 4)
	if h.M() != 1600 || h.K() != 4 {
		t.Errorf("M=%d K=%d", h.M(), h.K())
	}
	for item := int32(0); item < 200; item++ {
		p := h.Positions(item)
		if len(p) != 4 {
			t.Fatalf("item %d: %d positions", item, len(p))
		}
		for _, pos := range p {
			if pos < 0 || pos >= 1600 {
				t.Fatalf("item %d: position %d out of range", item, pos)
			}
		}
		// Deterministic (cache hit path equals cold path).
		q := h.Positions(item)
		for i := range p {
			if p[i] != q[i] {
				t.Fatalf("item %d not deterministic", item)
			}
		}
	}
}

func TestFNVPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ m, k int }{{0, 4}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFNV(%d,%d) did not panic", tc.m, tc.k)
				}
			}()
			NewFNV(tc.m, tc.k)
		}()
	}
}

func TestFNVSpreadsItems(t *testing.T) {
	// The first positions of distinct items must not collapse onto a few
	// values: over 1000 items and 1600 slots expect wide coverage.
	h := NewFNV(1600, 4)
	distinct := map[int]bool{}
	for item := int32(0); item < 1000; item++ {
		distinct[h.Positions(item)[0]] = true
	}
	if len(distinct) < 400 {
		t.Errorf("only %d distinct first positions over 1000 items", len(distinct))
	}
}

func TestQuickFNVInRange(t *testing.T) {
	h := NewFNV(777, 5)
	f := func(item int32) bool {
		for _, p := range h.Positions(item) {
			if p < 0 || p >= 777 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFNVConcurrent(t *testing.T) {
	h := NewFNV(512, 4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for item := int32(0); item < 300; item++ {
				h.Positions(item)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func BenchmarkFNVPositionsCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := FNV{m: 1600, k: 4, cache: map[int32][]int{}}
		h.Positions(int32(i))
	}
}
