package sighash

import (
	"crypto/md5"
	"encoding/binary"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
)

func TestMD5Deterministic(t *testing.T) {
	h := NewMD5(1600, 4)
	for item := int32(0); item < 100; item++ {
		a := h.Positions(item)
		b := h.Positions(item)
		if len(a) != 4 {
			t.Fatalf("item %d: %d positions, want 4", item, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("item %d: positions not deterministic", item)
			}
		}
	}
}

func TestMD5Range(t *testing.T) {
	for _, m := range []int{8, 400, 1600, 6400} {
		h := NewMD5(m, 4)
		for item := int32(0); item < 500; item++ {
			for _, p := range h.Positions(item) {
				if p < 0 || p >= m {
					t.Fatalf("m=%d item=%d: position %d out of range", m, item, p)
				}
			}
		}
	}
}

func TestMD5MatchesSpec(t *testing.T) {
	// The first four positions must come from the four disjoint 32-bit
	// groups of MD5(decimal name), reduced mod m.
	m := 1600
	h := NewMD5(m, 4)
	for _, item := range []int32{0, 7, 12345, 99999} {
		sum := md5.Sum([]byte(strconv.FormatInt(int64(item), 10)))
		want := make([]int, 4)
		for g := 0; g < 4; g++ {
			want[g] = int(binary.BigEndian.Uint32(sum[g*4:g*4+4]) % uint32(m))
		}
		got := h.Positions(item)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("item %d group %d: got %d, want %d", item, i, got[i], want[i])
			}
		}
	}
}

func TestMD5MoreThanFourHashes(t *testing.T) {
	// k > 4 pulls extra groups from MD5(name+name): verify the fifth value.
	m := 1600
	h := NewMD5(m, 6)
	item := int32(42)
	got := h.Positions(item)
	if len(got) != 6 {
		t.Fatalf("got %d positions, want 6", len(got))
	}
	sum2 := md5.Sum([]byte("4242"))
	want5 := int(binary.BigEndian.Uint32(sum2[0:4]) % uint32(m))
	want6 := int(binary.BigEndian.Uint32(sum2[4:8]) % uint32(m))
	if got[4] != want5 || got[5] != want6 {
		t.Fatalf("positions 5,6 = %d,%d; want %d,%d", got[4], got[5], want5, want6)
	}
}

func TestMD5CacheConcurrent(t *testing.T) {
	h := NewMD5(1600, 4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for item := int32(0); item < 200; item++ {
				h.Positions(item)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	// Spot-check correctness after the race.
	sum := md5.Sum([]byte("5"))
	want := int(binary.BigEndian.Uint32(sum[0:4]) % 1600)
	if h.Positions(5)[0] != want {
		t.Fatal("cache corrupted by concurrent access")
	}
}

func TestNewMD5Panics(t *testing.T) {
	for _, tc := range []struct{ m, k int }{{0, 4}, {-1, 4}, {8, 0}, {8, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMD5(%d,%d) did not panic", tc.m, tc.k)
				}
			}()
			NewMD5(tc.m, tc.k)
		}()
	}
}

func TestModMatchesRunningExample(t *testing.T) {
	// Paper Example 1: h(x) = x mod 8.
	h := NewMod(8)
	cases := map[int32]int{0: 0, 1: 1, 7: 7, 8: 0, 14: 6, 15: 7}
	for item, want := range cases {
		got := h.Positions(item)
		if len(got) != 1 || got[0] != want {
			t.Errorf("Mod(8).Positions(%d) = %v, want [%d]", item, got, want)
		}
	}
	if h.M() != 8 || h.K() != 1 {
		t.Errorf("M=%d K=%d", h.M(), h.K())
	}
}

func TestModNegativeItem(t *testing.T) {
	h := NewMod(8)
	if p := h.Positions(-3)[0]; p < 0 || p >= 8 {
		t.Errorf("negative item mapped out of range: %d", p)
	}
}

func TestSignatureBitsRunningExample(t *testing.T) {
	// Transaction 100 of Table 1: items {0..5, 14, 15} → vector 11111111.
	h := NewMod(8)
	bits := SignatureBits(h, []int32{0, 1, 2, 3, 4, 5, 14, 15})
	if len(bits) != 8 {
		t.Fatalf("SignatureBits = %v, want all 8 positions", bits)
	}
	// Transaction 300: items {1, 5, 14, 15} → positions {1, 5, 6, 7}.
	bits = SignatureBits(h, []int32{1, 5, 14, 15})
	want := []int{1, 5, 6, 7}
	if len(bits) != len(want) {
		t.Fatalf("SignatureBits = %v, want %v", bits, want)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("SignatureBits = %v, want %v", bits, want)
		}
	}
}

func TestSignatureBitsDedupAndSorted(t *testing.T) {
	h := NewMod(4) // heavy collisions
	bits := SignatureBits(h, []int32{0, 4, 8, 1, 5, 3})
	if !sort.IntsAreSorted(bits) {
		t.Errorf("positions not sorted: %v", bits)
	}
	seen := map[int]bool{}
	for _, p := range bits {
		if seen[p] {
			t.Errorf("duplicate position %d in %v", p, bits)
		}
		seen[p] = true
	}
}

func TestSignatureBitsEmpty(t *testing.T) {
	h := NewMD5(100, 4)
	if got := SignatureBits(h, nil); len(got) != 0 {
		t.Errorf("SignatureBits(nil) = %v, want empty", got)
	}
}

// Property: the signature of a superset covers the signature of a subset
// (the monotonicity behind Lemma 3).
func TestQuickSignatureMonotone(t *testing.T) {
	h := NewMD5(512, 4)
	f := func(base []int32, extra []int32) bool {
		sub := SignatureBits(h, base)
		super := SignatureBits(h, append(append([]int32{}, base...), extra...))
		set := make(map[int]bool, len(super))
		for _, p := range super {
			set[p] = true
		}
		for _, p := range sub {
			if !set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: positions are always within [0, m).
func TestQuickPositionsInRange(t *testing.T) {
	h := NewMD5(777, 5)
	f := func(item int32) bool {
		for _, p := range h.Positions(item) {
			if p < 0 || p >= 777 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMD5PositionsCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		computeMD5Positions(int32(i), 1600, 4)
	}
}

func BenchmarkMD5PositionsCached(b *testing.B) {
	h := NewMD5(1600, 4)
	for i := int32(0); i < 1000; i++ {
		h.Positions(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Positions(int32(i % 1000))
	}
}

// AppendSignatureBits must agree with SignatureBits and reuse the supplied
// buffer instead of allocating once it has grown.
func TestAppendSignatureBits(t *testing.T) {
	h := NewMD5(256, 4)
	rng := rand.New(rand.NewSource(91))
	var buf []int
	for trial := 0; trial < 200; trial++ {
		items := make([]int32, rng.Intn(12))
		for i := range items {
			items[i] = int32(rng.Intn(40)) // small alphabet forces collisions
		}
		want := SignatureBits(h, items)
		buf = AppendSignatureBits(buf[:0], h, items)
		if len(buf) != len(want) {
			t.Fatalf("items %v: got %v, want %v", items, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("items %v: got %v, want %v", items, buf, want)
			}
		}
	}

	items := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	buf = AppendSignatureBits(buf[:0], h, items)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendSignatureBits(buf[:0], h, items)
	})
	if allocs != 0 {
		t.Errorf("AppendSignatureBits allocated %.1f times per run with a warm buffer", allocs)
	}
}

// A non-empty prefix must be preserved: AppendSignatureBits only appends.
func TestAppendSignatureBitsKeepsPrefix(t *testing.T) {
	h := NewMod(8)
	buf := []int{-1, -2}
	buf = AppendSignatureBits(buf, h, []int32{1, 5, 14, 15})
	want := []int{-1, -2, 1, 5, 6, 7}
	if len(buf) != len(want) {
		t.Fatalf("got %v, want %v", buf, want)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("got %v, want %v", buf, want)
		}
	}
}
