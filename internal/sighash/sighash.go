// Package sighash implements the Bloom-filter hashing scheme that maps items
// to bit positions of a BBS signature.
//
// The paper (Section 4) derives the k hash functions from the MD5 digest of
// the item name: the 128-bit digest is split into four disjoint 32-bit
// groups, each group yielding one hash value; when more than four values are
// needed, the digest of the item name concatenated with itself supplies the
// next four, and so on. Items in the synthetic datasets are integers, so the
// "item name" is the decimal rendering of the item identifier.
//
// A pluggable Hasher interface lets tests and the quickstart example swap in
// the paper's running-example hash h(x) = x mod 8.
package sighash

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Hasher maps an item to its k bit positions within an m-bit signature.
// Implementations must be deterministic: the same item always yields the
// same positions, because BBS insertions and queries must agree.
type Hasher interface {
	// Positions returns the bit positions (each in [0, M())) that the item
	// sets in a signature. The returned slice must not be modified by the
	// caller and stays valid until the next call for the same item.
	Positions(item int32) []int
	// M is the signature length in bits.
	M() int
	// K is the number of hash functions (positions may still collide, so
	// len(Positions(x)) == K but the positions need not be distinct).
	K() int
}

// MD5 is the paper's hasher. It memoizes positions per item, since mining
// evaluates the same items millions of times; the cache is safe for
// concurrent use.
type MD5 struct {
	m, k int

	mu    sync.RWMutex
	cache map[int32][]int
}

// NewMD5 returns an MD5-based hasher for m-bit signatures with k hash
// functions per item. It panics if m <= 0 or k <= 0, which are programming
// errors rather than runtime conditions.
func NewMD5(m, k int) *MD5 {
	if m <= 0 || k <= 0 {
		panic(fmt.Sprintf("sighash: invalid parameters m=%d k=%d", m, k))
	}
	return &MD5{m: m, k: k, cache: make(map[int32][]int)}
}

// M returns the signature length in bits.
func (h *MD5) M() int { return h.m }

// K returns the number of hash functions.
func (h *MD5) K() int { return h.k }

// Positions implements Hasher.
func (h *MD5) Positions(item int32) []int {
	h.mu.RLock()
	p, ok := h.cache[item]
	h.mu.RUnlock()
	if ok {
		return p
	}
	p = computeMD5Positions(item, h.m, h.k)
	h.mu.Lock()
	h.cache[item] = p
	h.mu.Unlock()
	return p
}

// computeMD5Positions derives k positions for an item following the paper's
// recipe: successive MD5 digests of name, name+name, name+name+name, ...,
// each digest contributing four 32-bit big-endian groups.
func computeMD5Positions(item int32, m, k int) []int {
	name := strconv.FormatInt(int64(item), 10)
	positions := make([]int, 0, k)
	reps := 1
	for len(positions) < k {
		sum := md5.Sum([]byte(strings.Repeat(name, reps)))
		for g := 0; g < 4 && len(positions) < k; g++ {
			v := binary.BigEndian.Uint32(sum[g*4 : g*4+4])
			positions = append(positions, int(v%uint32(m)))
		}
		reps++
	}
	return positions
}

// FNV derives the k positions from iterated 64-bit FNV-1a hashing instead
// of MD5: cheaper per item, but with less independence between the derived
// positions. It exists for the hash-quality ablation — the paper chose MD5
// for its mixing ("the computational overhead of MD5 is negligible"), and
// comparing false-drop ratios under both justifies that choice.
type FNV struct {
	m, k int

	mu    sync.RWMutex
	cache map[int32][]int
}

// NewFNV returns an FNV-1a-based hasher for m-bit signatures with k hash
// functions per item.
func NewFNV(m, k int) *FNV {
	if m <= 0 || k <= 0 {
		panic(fmt.Sprintf("sighash: invalid parameters m=%d k=%d", m, k))
	}
	return &FNV{m: m, k: k, cache: make(map[int32][]int)}
}

// M returns the signature length in bits.
func (h *FNV) M() int { return h.m }

// K returns the number of hash functions.
func (h *FNV) K() int { return h.k }

// Positions implements Hasher.
func (h *FNV) Positions(item int32) []int {
	h.mu.RLock()
	p, ok := h.cache[item]
	h.mu.RUnlock()
	if ok {
		return p
	}
	p = make([]int, h.k)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	v := uint64(offset64)
	for i := 0; i < 4; i++ {
		v ^= uint64(byte(item >> (8 * i)))
		v *= prime64
	}
	for i := range p {
		p[i] = int(v % uint64(h.m))
		// Iterate the hash for the next position.
		v ^= uint64(i) + 0x9e3779b97f4a7c15
		v *= prime64
	}
	h.mu.Lock()
	h.cache[item] = p
	h.mu.Unlock()
	return p
}

// Mod is the single-hash-function hasher of the paper's running example
// (Example 1): h(x) = x mod m. It exists so the documentation examples and
// the Table 1/2 reproduction match the paper bit for bit.
type Mod struct {
	m int
}

// NewMod returns a Mod hasher for m-bit signatures.
func NewMod(m int) *Mod {
	if m <= 0 {
		panic(fmt.Sprintf("sighash: invalid m=%d", m))
	}
	return &Mod{m: m}
}

// M returns the signature length in bits.
func (h *Mod) M() int { return h.m }

// K returns 1: Mod uses a single hash function.
func (h *Mod) K() int { return 1 }

// Positions implements Hasher.
func (h *Mod) Positions(item int32) []int {
	p := int(item) % h.m
	if p < 0 {
		p += h.m
	}
	return []int{p}
}

// SignatureBits returns the distinct, sorted set of bit positions that an
// itemset sets in its m-bit signature: the union of every item's positions.
// This is the vector v of algorithm CountItemSet (paper Fig. 1, step 1),
// represented sparsely. Allocates; hot paths that estimate per candidate
// should reuse a scratch slice via AppendSignatureBits.
func SignatureBits(h Hasher, items []int32) []int {
	return AppendSignatureBits(nil, h, items)
}

// AppendSignatureBits appends the itemset's distinct, sorted signature
// positions to buf and returns the extended slice. Passing a reusable
// scratch as buf[:0] makes repeated estimates allocation-free after warm-up;
// no map is involved — positions are sorted in place and deduplicated.
func AppendSignatureBits(buf []int, h Hasher, items []int32) []int {
	start := len(buf)
	for _, it := range items {
		buf = append(buf, h.Positions(it)...)
	}
	out := buf[start:]
	// Insertion sort: position lists are short and nearly sorted.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	// Compact duplicates (hash collisions across and within items).
	w := 0
	for i, p := range out {
		if i == 0 || p != out[w-1] {
			out[w] = p
			w++
		}
	}
	return buf[:start+w]
}
