package sighash

import (
	"encoding/binary"
	"testing"
)

// clampParams maps arbitrary fuzz bytes onto valid hasher parameters.
func clampParams(m, k uint16) (int, int) {
	return int(m%4096) + 1, int(k%64) + 1
}

// FuzzHasherPositions checks the Hasher contract every index operation
// relies on, for every production hasher: exactly K() positions, each in
// [0, M()), and bit-identical across independent hasher instances — the
// stability property that makes a persisted BBS readable by a later
// process (the file stores no positions, only the (m, k) parameters).
func FuzzHasherPositions(f *testing.F) {
	f.Add(int32(7), uint16(80), uint16(4))
	f.Add(int32(-1), uint16(0), uint16(0))
	f.Add(int32(1<<30), uint16(8), uint16(1))
	f.Fuzz(func(t *testing.T, item int32, rawM, rawK uint16) {
		m, k := clampParams(rawM, rawK)
		hashers := []struct {
			name string
			a, b Hasher
		}{
			{"md5", NewMD5(m, k), NewMD5(m, k)},
			{"fnv", NewFNV(m, k), NewFNV(m, k)},
			{"mod", NewMod(m), NewMod(m)},
		}
		for _, h := range hashers {
			got := h.a.Positions(item)
			if len(got) != h.a.K() {
				t.Fatalf("%s: len(Positions(%d)) = %d, want K() = %d", h.name, item, len(got), h.a.K())
			}
			for _, p := range got {
				if p < 0 || p >= m {
					t.Fatalf("%s: Positions(%d) contains %d, out of [0, %d)", h.name, item, p, m)
				}
			}
			// A second, cache-cold instance must agree, and the memoized
			// second call on the same instance must too.
			fresh := h.b.Positions(item)
			cached := h.a.Positions(item)
			for i := range got {
				if got[i] != fresh[i] || got[i] != cached[i] {
					t.Fatalf("%s: Positions(%d) unstable: %v vs fresh %v / cached %v",
						h.name, item, got, fresh, cached)
				}
			}
		}
	})
}

// FuzzSignatureBits checks the sparse signature-vector construction of
// CountItemSet step 1: sorted, duplicate-free, within [0, m), and exactly
// the union of the member items' positions.
func FuzzSignatureBits(f *testing.F) {
	f.Add([]byte{0, 0, 0, 7, 255, 255, 255, 255}, uint16(80), uint16(4))
	f.Add([]byte{}, uint16(8), uint16(1))
	f.Fuzz(func(t *testing.T, raw []byte, rawM, rawK uint16) {
		m, k := clampParams(rawM, rawK)
		items := make([]int32, 0, len(raw)/4)
		for i := 0; i+4 <= len(raw) && len(items) < 64; i += 4 {
			items = append(items, int32(binary.BigEndian.Uint32(raw[i:i+4])))
		}
		h := NewMD5(m, k)
		bits := SignatureBits(h, items)
		want := map[int]bool{}
		for _, it := range items {
			for _, p := range h.Positions(it) {
				want[p] = true
			}
		}
		if len(bits) != len(want) {
			t.Fatalf("SignatureBits has %d positions, union has %d", len(bits), len(want))
		}
		for i, p := range bits {
			if p < 0 || p >= m {
				t.Fatalf("position %d out of [0, %d)", p, m)
			}
			if !want[p] {
				t.Fatalf("position %d not in the union of item positions", p)
			}
			if i > 0 && bits[i-1] >= p {
				t.Fatalf("positions not strictly ascending: %v", bits)
			}
		}
	})
}
