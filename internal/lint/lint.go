// Package lint is the project's static-analysis suite: a small analyzer
// framework plus the ten analyzers that encode the engine's concurrency
// and determinism invariants — the unwritten rules the parallel mining
// engine (internal/core), the bit-sliced index (internal/sigfile/shard)
// and the serving layer (internal/serve) rely on, and that ordinary tests
// only catch when they happen to race.
//
// The framework deliberately uses nothing outside the standard library
// (go/parser, go/types, go/importer), so go.mod stays dependency-free.
// cmd/bbslint is the command-line driver; `make lint` runs it over ./...
// See README.md in this directory for the full analyzer catalogue.
//
// Analyzer scopes (what each analyzer's Applies predicate covers):
//
//	atomicfield     internal/iostat, internal/obs
//	pooledvec       internal/core
//	lockdiscipline  every package
//	determinism     every package except internal/exp, internal/weblog,
//	                internal/quest, internal/obs, cmd, examples;
//	                cmd/bbsload opts back in under relaxed loadgen rules
//	                (no global-source draws, no rand.Seed, no time-seeded
//	                sources; clock reads and flag-seeded draws are fine)
//	errwrap         every package (discard rule scoped to internal/txdb,
//	                internal/sigfile, internal/serve, internal/shard)
//	obsdiscipline   internal/core, internal/sigfile, internal/serve,
//	                internal/shard (not internal/obs itself); cmd/bbsload
//	                for the import ban only, its clock reads are waived
//	snapshotsafety  internal/core, internal/sigfile, internal/serve,
//	                internal/shard (facts exported from every package)
//	ctxflow         internal/core, internal/serve, internal/shard
//	goroutinelife   internal/serve, internal/shard
//	hotpathalloc    every package (only //lint:hotpath functions checked)
//
// Analyzers may export per-package facts (Analyzer.Facts): serializable
// summaries — which types a package publishes as immutable snapshots,
// which methods mutate them — that analyses of dependent packages consume
// through Pass.Fact. Facts are computed for every module-local package in
// dependency order regardless of Applies, so a diagnostic in internal/serve
// can know that sigfile.BBS.Insert mutates its receiver. The Driver in
// driver.go runs packages in parallel and caches facts and findings on
// disk keyed by content hash; Run below is the small sequential entry
// point the tests use.
//
// Findings can be suppressed at the reporting site:
//
//	//lint:ignore <analyzer> <reason>       on the finding's line or the line above
//	//lint:file-ignore <analyzer> <reason>  anywhere in the file, silences the whole file
//
// The reason is mandatory: a suppression documents why the invariant holds
// anyway, and the analyzers' value is exactly that the "why" is written down.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and suppression comments.
	Name string
	// Doc is a one-line description of the rule the analyzer enforces.
	Doc string
	// Applies reports whether the analyzer checks the package with the
	// given import path. A nil Applies checks every package. Applies gates
	// diagnostics only: facts are computed for every module-local package.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// Facts, when non-nil, computes the package's exported fact. It runs
	// before any diagnostics, for every module-local package in dependency
	// order, so Run can read its imports' facts through Pass.Fact. The
	// returned value must round-trip through encoding/json.
	Facts func(*Pass) any
	// NewFact returns a zero fact value (a pointer) for decoding cached
	// facts. Required when Facts is set.
	NewFact func() any
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings *[]Finding
	facts    *FactStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Fact returns this analyzer's fact for the package with the given import
// path — the pass's own package or any module-local dependency — or nil if
// none was exported.
func (p *Pass) Fact(pkgPath string) any {
	if p.facts == nil {
		return nil
	}
	return p.facts.get(p.Analyzer.Name, pkgPath)
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the suite's canonical
// "file:line: message [analyzer]" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Message, f.Analyzer)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		PooledVec,
		LockDiscipline,
		Determinism,
		ErrWrap,
		ObsDiscipline,
		SnapshotSafety,
		CtxFlow,
		GoroutineLife,
		HotPathAlloc,
	}
}

// Run applies each analyzer to each package it covers and returns the
// surviving findings (suppressions applied), sorted by position. Malformed
// suppression directives are themselves reported, under the "bbslint" name.
//
// Facts are computed first, sequentially, for the supplied packages and
// every module-local package they (transitively) import, in dependency
// order — the loader has those dependencies cached from type-checking.
// This is the simple in-memory path; cmd/bbslint uses the parallel,
// disk-cached Driver.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	store := NewFactStore()
	computeFacts(factUniverse(pkgs), analyzers, store)

	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, analyzePackage(pkg, analyzers, store)...)
	}
	sortFindings(findings)
	return findings
}

// analyzePackage runs every applicable analyzer over one package, applies
// suppressions and returns the surviving findings, unsorted.
func analyzePackage(pkg *Package, analyzers []*Analyzer, store *FactStore) []Finding {
	dirs, findings := collectDirectives(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			findings: &findings,
			facts:    store,
		}
		before := len(findings)
		a.Run(pass)
		findings = applySuppressions(findings, before, dirs)
	}
	return findings
}

// computeFacts evaluates every fact-exporting analyzer over the packages,
// which must already be in dependency order (imports before importers).
func computeFacts(ordered []*Package, analyzers []*Analyzer, store *FactStore) {
	for _, pkg := range ordered {
		for _, a := range analyzers {
			if a.Facts == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				facts:    store,
			}
			if fact := a.Facts(pass); fact != nil {
				store.put(a.Name, pkg.Path, fact)
			}
		}
	}
}

// factUniverse returns the supplied packages plus every module-local
// package they transitively import (available from the loader cache after
// type-checking), topologically sorted so imports precede importers.
func factUniverse(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	var add func(p *Package)
	add = func(p *Package) {
		if p == nil || byPath[p.Path] != nil {
			return
		}
		byPath[p.Path] = p
		if p.loader == nil {
			return
		}
		for _, imp := range p.Types.Imports() {
			if dep := p.loader.cached(imp.Path()); dep != nil {
				add(dep)
			}
		}
	}
	for _, p := range pkgs {
		add(p)
	}

	paths := make([]string, 0, len(byPath))
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	// Depth-first over imports gives a topological order; visit roots in
	// sorted order (and imports in go/types' stable order) so the result
	// is deterministic.
	ordered := make([]*Package, 0, len(byPath))
	done := map[string]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if p == nil || done[p.Path] {
			return
		}
		done[p.Path] = true
		for _, imp := range p.Types.Imports() {
			visit(byPath[imp.Path()])
		}
		ordered = append(ordered, p)
	}
	for _, path := range paths {
		visit(byPath[path])
	}
	// Packages reachable only through the loader cache (not the roots)
	// were all added by add() through import edges of the roots, so the
	// visit above covered everything in byPath.
	return ordered
}

// sortFindings orders findings by position, then analyzer, then message —
// a total order, so concurrent runs at any parallelism render identically.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathHasSegment reports whether the slash-separated import path contains
// seg as a consecutive run of path segments. It is how analyzers scope
// themselves: the real package bbsmine/internal/core and a test fixture
// .../testdata/src/pooledvec/internal/core both contain "internal/core".
func pathHasSegment(path, seg string) bool {
	return path == seg ||
		strings.HasPrefix(path, seg+"/") ||
		strings.HasSuffix(path, "/"+seg) ||
		strings.Contains(path, "/"+seg+"/")
}

// errorType is the universe error interface, for implements-checks.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}
