// Package lint is the project's static-analysis suite: a small analyzer
// framework plus the analyzers that encode the engine's concurrency and
// determinism invariants — the unwritten rules the parallel mining engine
// (internal/core) relies on and that ordinary tests only catch when they
// happen to race.
//
// The framework deliberately uses nothing outside the standard library
// (go/parser, go/types, go/importer), so go.mod stays dependency-free.
// cmd/bbslint is the command-line driver; `make lint` runs it over ./...
//
// Findings can be suppressed at the reporting site:
//
//	//lint:ignore <analyzer> <reason>       on the finding's line or the line above
//	//lint:file-ignore <analyzer> <reason>  anywhere in the file, silences the whole file
//
// The reason is mandatory: a suppression documents why the invariant holds
// anyway, and the analyzers' value is exactly that the "why" is written down.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings and suppression comments.
	Name string
	// Doc is a one-line description of the rule the analyzer enforces.
	Doc string
	// Applies reports whether the analyzer checks the package with the
	// given import path. A nil Applies checks every package.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the suite's canonical
// "file:line: message [analyzer]" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Message, f.Analyzer)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		PooledVec,
		LockDiscipline,
		Determinism,
		ErrWrap,
		ObsDiscipline,
	}
}

// Run applies each analyzer to each package it covers and returns the
// surviving findings (suppressions applied), sorted by position. Malformed
// suppression directives are themselves reported, under the "bbslint" name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg.Fset, pkg.Files)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				findings: &findings,
			}
			before := len(findings)
			a.Run(pass)
			findings = applySuppressions(findings, before, dirs)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// pathHasSegment reports whether the slash-separated import path contains
// seg as a consecutive run of path segments. It is how analyzers scope
// themselves: the real package bbsmine/internal/core and a test fixture
// .../testdata/src/pooledvec/internal/core both contain "internal/core".
func pathHasSegment(path, seg string) bool {
	return path == seg ||
		strings.HasPrefix(path, seg+"/") ||
		strings.HasSuffix(path, "/"+seg) ||
		strings.Contains(path, "/"+seg+"/")
}

// errorType is the universe error interface, for implements-checks.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}
