package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc pins the kernel perf contract in the linter: a function
// whose doc comment carries a `//lint:hotpath` directive must not allocate
// per call. The AND kernels and evalExtension hold the measured
// CountItemSet win precisely because the steady state is zero-alloc —
// buffers come from pools or caller-owned scratch, and appends only ever
// reuse the target's own backing array. One stray make in a kernel turns a
// nanosecond loop into a garbage-collector client, and benchmarks alone
// only notice after the regression ships.
//
// Flagged inside a marked function: make, new, an append whose result
// does not feed back into its own first argument (growth into a fresh
// backing array), and function literals that capture enclosing variables
// (the closure and its captures escape together). The self-append form
//
//	buf = append(buf, x)        // and *p = append((*p)[:0], ...)
//
// is the sanctioned shape: it grows an existing caller-owned buffer.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions marked //lint:hotpath must not allocate (no make/new/append-growth/capturing closures)",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotPath(pass, fd)
		}
	}
}

// isHotPath reports whether the function's doc comment contains the
// //lint:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "lint:hotpath" {
			return true
		}
	}
	return false
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	// selfAppends collects append calls sanctioned by their assignment:
	// x = append(x, ...) in any spelling where the target renders the same
	// as the append's first argument (slicing like (*p)[:0] included).
	selfAppends := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinCall(pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			target := types.ExprString(ast.Unparen(as.Lhs[i]))
			arg := ast.Unparen(call.Args[0])
			// Unwrap a reslice of the target: append(x[:0], ...) and
			// append((*p)[:0], ...) reuse the same backing array.
			if slice, ok := arg.(*ast.SliceExpr); ok {
				arg = ast.Unparen(slice.X)
			}
			if types.ExprString(arg) == target {
				selfAppends[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(pass, n, "make"):
				pass.Reportf(n.Pos(), "make in //lint:hotpath function %s allocates per call", fd.Name.Name)
			case isBuiltinCall(pass, n, "new"):
				pass.Reportf(n.Pos(), "new in //lint:hotpath function %s allocates per call", fd.Name.Name)
			case isBuiltinCall(pass, n, "append") && !selfAppends[n]:
				pass.Reportf(n.Pos(),
					"append in //lint:hotpath function %s grows into a fresh array; use x = append(x, ...) on a caller-owned buffer",
					fd.Name.Name)
			}
		case *ast.FuncLit:
			if capturesOuter(pass, fd, n) {
				pass.Reportf(n.Pos(),
					"closure in //lint:hotpath function %s captures enclosing variables; the capture escapes to the heap",
					fd.Name.Name)
			}
			return false // don't double-report allocations inside; the capture is the finding
		}
		return true
	})
}

// isBuiltinCall reports a call to the named builtin.
func isBuiltinCall(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// capturesOuter reports whether the literal references a variable declared
// in the enclosing function but outside the literal itself.
func capturesOuter(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captures = true
			return false
		}
		return true
	})
	return captures
}
