// Package core is the obsdiscipline negative fixture: the engine handles
// durations it was handed without reading the clock or touching expvar.
package core

import "time"

// Budget carries a caller-supplied duration; time.Duration is a type, not
// a clock read.
type Budget struct {
	Limit time.Duration
}

// Within reports whether d fits the budget.
func (b Budget) Within(d time.Duration) bool { return d <= b.Limit }
