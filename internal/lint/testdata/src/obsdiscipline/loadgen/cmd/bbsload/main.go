// Package main wires exposition machinery into the load generator. The
// clock rule is waived for cmd/bbsload, but the import ban is not: the
// generator must not confuse its own overhead with the system under test.
package main

import (
	"expvar"
	"time"
)

var sent = expvar.NewInt("sent")

func pace() time.Time {
	sent.Add(1)
	return time.Now()
}
