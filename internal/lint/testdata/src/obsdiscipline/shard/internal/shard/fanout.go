// Package shard is an obsdiscipline fixture: the sharded index follows the
// engine's telemetry rules — fan-out accounting goes through the registry,
// never a direct wall-clock read.
package shard

import "time"

// FanOut times the per-shard fan-out directly instead of using obs phases.
func FanOut() time.Duration {
	start := time.Now()      // want: direct wall-clock read
	return time.Since(start) // want: direct wall-clock read
}
