// Package serve pins the sanctioned clock seam: with file-ignore
// directives for both clock analyzers, the one wall-clock read is legal.
package serve

//lint:file-ignore determinism the clock seam is the package's sanctioned wall-clock read
//lint:file-ignore obsdiscipline the clock seam is the package's sanctioned wall-clock read

import "time"

// Now is the package's one wall-clock read; everything else consumes it.
func Now() time.Time { return time.Now() }
