// Package serve is an obsdiscipline fixture: the serving layer must read
// the wall clock through its injected Clock seam, never time.Now directly.
package serve

import "time"

// Latency times a request directly instead of using the injected clock.
func Latency() time.Duration {
	start := time.Now()      // want: direct wall-clock read
	return time.Since(start) // want: direct wall-clock read
}
