// Package core is an obsdiscipline fixture: an engine package that
// publishes metrics itself and reads the wall clock directly.
package core

import (
	"expvar" // want: banned exposition import
	"time"
)

// Evals is exposition state the engine must not own.
var Evals = expvar.NewInt("evals")

// Mine times itself with time.Now instead of obs.Registry.Tick.
func Mine() time.Duration {
	start := time.Now() // want: direct wall-clock read
	Evals.Add(1)
	return time.Since(start) // want: direct wall-clock read
}
