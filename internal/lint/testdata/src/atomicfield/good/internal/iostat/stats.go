// Package iostat is the atomicfield negative fixture: every field is a
// sync/atomic type and every use goes through the atomic methods.
package iostat

import "sync/atomic"

// BatchStats mirrors the real iostat.Stats shape.
type BatchStats struct {
	pages  atomic.Int64
	probes atomic.Int64
}

// AddPage records one page read.
func (s *BatchStats) AddPage(n int64) { s.pages.Add(n) }

// Pages returns the pages read so far.
func (s *BatchStats) Pages() int64 { return s.pages.Load() }

// Reset zeroes the counters.
func (s *BatchStats) Reset() {
	s.pages.Store(0)
	s.probes.Store(0)
}
