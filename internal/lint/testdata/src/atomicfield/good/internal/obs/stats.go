// Package obs is the atomicfield negative fixture for the telemetry
// registry shapes: fixed arrays of atomics indexed before the method call,
// and a mutex field exempt from the atomic-type rule.
package obs

import (
	"sync"
	"sync/atomic"
)

// PhaseStats mirrors the real obs.PhaseStats: per-phase atomic tables plus
// a mutex (declared last so it guards nothing; it only pairs operations).
type PhaseStats struct {
	ns     [4]atomic.Int64
	calls  [4]atomic.Int64
	snapMu sync.Mutex
}

// Done records one phase interval through the indexed atomics.
func (s *PhaseStats) Done(p int, d int64) {
	s.ns[p].Add(d)
	s.calls[p].Add(1)
}

// Ns reads one phase's cumulative time.
func (s *PhaseStats) Ns(p int) int64 { return s.ns[p].Load() }

// Pair pins the mutex exemption: a mutex is its own synchronization, so
// locking it is not a direct-use violation.
func (s *PhaseStats) Pair() int64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.ns[0].Load()
}
