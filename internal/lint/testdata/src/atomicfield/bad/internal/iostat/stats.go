// Package iostat is an atomicfield fixture: a stats struct that violates
// the invariant in both ways the analyzer checks.
package iostat

import "sync/atomic"

// RunStats mixes a plain counter into an atomic stats struct.
type RunStats struct {
	pages  atomic.Int64
	probes int64 // want: non-atomic field
}

// AddPage is fine: the atomic field is used through its method.
func (s *RunStats) AddPage() { s.pages.Add(1) }

// Pages reads the atomic field directly instead of through Load.
func (s *RunStats) Pages() atomic.Int64 { return s.pages } // want: direct use

// AddProbe touches the plain field; the type finding already covers the
// declaration, and this racy increment compiles without complaint.
func (s *RunStats) AddProbe() { s.probes++ }
