// Package core is the ctxflow negative fixture: every unbounded loop
// observes cancellation through one of the sanctioned shapes — a select,
// a Context.Err check, a blocking channel receive, or a same-package
// helper that does one of those.
package core

import "context"

// SelectLoop observes ctx.Done through a select.
func SelectLoop(ctx context.Context, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-work:
			total += v
		}
	}
}

// ErrLoop polls Context.Err each iteration.
func ErrLoop(ctx context.Context, work func()) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// RecvLoop blocks on a channel receive; closing the channel unblocks it.
func RecvLoop(work chan int) int {
	total := 0
	for {
		v, ok := <-work
		if !ok {
			return total
		}
		total += v
	}
}

// HelperLoop observes cancellation through a same-package helper.
func HelperLoop(ctx context.Context, work func()) {
	for {
		if done(ctx) {
			return
		}
		work()
	}
}

// done reports whether the context is cancelled.
func done(ctx context.Context) bool {
	return ctx.Err() != nil
}
