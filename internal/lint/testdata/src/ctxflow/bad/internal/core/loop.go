// Package core is a ctxflow fixture: unbounded loops that never observe
// cancellation, directly or through a helper.
package core

// SpinForever polls without ever checking the context.
func SpinForever(work func() bool) {
	for { // want: unbounded loop with no cancellation path
		if work() {
			continue
		}
	}
}

// DrainForever loops over a poll helper that cannot observe
// cancellation either.
func DrainForever(q *queue) {
	for { // want: unbounded loop with no cancellation path
		q.pop()
	}
}

type queue struct {
	items []int
}

func (q *queue) pop() int {
	if len(q.items) == 0 {
		return 0
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}
