// Package cache is the lockdiscipline atomic fixture: sync/atomic fields
// declared below the mutex synchronize themselves and are exempt from the
// guard; plain fields below the mutex stay guarded.
package cache

import (
	"sync"
	"sync/atomic"
)

type snapshot struct {
	epoch uint64
}

type shardCache struct {
	mu       sync.Mutex
	snap     atomic.Pointer[snapshot]
	hits     atomic.Int64
	resident map[int64]struct{}
}

// Publish swaps the snapshot and bumps the counter with no lock held:
// both fields are atomic, so neither access is a finding.
func (c *shardCache) Publish(s *snapshot) {
	c.snap.Store(s)
	c.hits.Add(1)
}

// Misses still reads the guarded map without the lock.
func (c *shardCache) Misses(p int64) bool {
	_, ok := c.resident[p] // want: unlocked access to a guarded field
	return ok
}

// Evict is the locked shape.
func (c *shardCache) Evict(p int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.resident, p)
}
