// Package cache is the lockdiscipline negative fixture: every guarded
// access happens after the mutex is taken, in both lock flavors.
package cache

import "sync"

// memoCache mirrors the sighash memo caches: an RWMutex with a read path
// and a write path.
type memoCache struct {
	k int // declared before the mutex: configuration, not guarded

	mu    sync.RWMutex
	cache map[int32][]int
}

// K reads unguarded configuration; fields before the mutex are free.
func (c *memoCache) K() int { return c.k }

// Get is the read path.
func (c *memoCache) Get(item int32) ([]int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.cache[item]
	return p, ok
}

// Put is the write path.
func (c *memoCache) Put(item int32, p []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cache == nil {
		c.cache = map[int32][]int{}
	}
	c.cache[item] = p
}

// evictLocked models the pager's CLOCK helpers: the "Locked" suffix
// asserts the caller holds mu, so guarded accesses need no local lock.
func (c *memoCache) evictLocked(item int32) {
	delete(c.cache, item)
}

// Clear is a public entry point using the helper under its own lock.
func (c *memoCache) Clear(item int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictLocked(item)
}
