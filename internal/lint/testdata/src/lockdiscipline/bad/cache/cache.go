// Package cache is a lockdiscipline fixture: methods that touch guarded
// fields without taking the mutex first.
package cache

import "sync"

// pageCache mirrors the txdb page cache layout: mu guards the fields
// declared after it.
type pageCache struct {
	mu       sync.Mutex
	limit    int64
	resident map[int64]struct{}
}

// Misses reads resident without holding mu.
func (c *pageCache) Misses(p int64) bool {
	_, ok := c.resident[p] // want: unlocked access
	return ok
}

// LateLock touches limit before the Lock call.
func (c *pageCache) LateLock(n int64) {
	c.limit = n // want: access before the lock
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resident = nil
}

// SetLimit is correct and must not be flagged.
func (c *pageCache) SetLimit(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.resident = nil
}
