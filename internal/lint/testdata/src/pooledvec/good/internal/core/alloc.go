// Package core is the pooledvec negative fixture: vectors come from the
// pool and are returned to it.
package core

import "bbsmine/internal/bitvec"

// Residual computes a scratch result through the pool.
func Residual(p *bitvec.Pool) int {
	v := p.Get()
	defer p.Put(v)
	v.SetAll()
	return v.Count()
}

// MakePool constructs the pool itself; bitvec.NewPool is the sanctioned
// constructor and is not flagged.
func MakePool(n int) *bitvec.Pool { return bitvec.NewPool(n) }

// Support counts through the direct-on-compressed kernel; no decode.
func Support(s *bitvec.Slice, acc *bitvec.Vector) int {
	return s.AndCountInto(acc)
}
