// Package core is a pooledvec fixture: a hot-path helper that allocates a
// raw vector instead of drawing from the pool.
package core

import "bbsmine/internal/bitvec"

// Residual builds a residual vector the wrong way.
func Residual(n int) *bitvec.Vector {
	return bitvec.New(n) // want: raw allocation
}

// Support decompresses a slice per candidate instead of using the kernels.
func Support(s *bitvec.Slice, acc *bitvec.Vector) int {
	v := s.Materialize() // want: per-call decompression
	return acc.AndCountZX(v)
}

// Walk decodes the position list per call.
func Walk(s *bitvec.Slice) int {
	total := 0
	for _, p := range s.Positions() { // want: per-call decompression
		total += int(p)
	}
	return total
}
