// Package core is a pooledvec fixture: a hot-path helper that allocates a
// raw vector instead of drawing from the pool.
package core

import "bbsmine/internal/bitvec"

// Residual builds a residual vector the wrong way.
func Residual(n int) *bitvec.Vector {
	return bitvec.New(n) // want: raw allocation
}
