// Package core is the hotpathalloc negative fixture: the sanctioned
// self-append shapes, and an unannotated function free to allocate.
package core

// countInto reuses the caller's buffer, including the (*p)[:0] reslice
// spelling the real kernels use.
//
//lint:hotpath
func countInto(buf *[]int, rows [][]int) {
	*buf = append((*buf)[:0], 0)
	for _, r := range rows {
		*buf = append(*buf, len(r))
	}
}

// scratch carries no annotation; it may allocate freely.
func scratch(n int) []int {
	return make([]int, n)
}
