// Package core is a hotpathalloc fixture: allocations inside functions
// annotated //lint:hotpath.
package core

// sum allocates twice in the steady state.
//
//lint:hotpath
func sum(rows [][]int) []int {
	out := make([]int, 0) // want: make allocates per call
	for _, r := range rows {
		out = append(out, len(r))
	}
	box := new(int) // want: new allocates per call
	*box = len(out)
	return out
}

// gather grows into a fresh array and captures a variable.
//
//lint:hotpath
func gather(dst []int, rows []int) []int {
	extra := append(rows, 1)             // want: growth into a fresh backing array
	f := func() int { return len(rows) } // want: the capture escapes
	dst = append(dst, extra[0]+f())
	return dst
}
