// Package core is the malformed-directive fixture: a suppression with no
// reason does not suppress and is itself reported.
package core

import "bbsmine/internal/bitvec"

// Broken tries to suppress without giving a reason.
func Broken(n int) *bitvec.Vector {
	//lint:ignore pooledvec
	return bitvec.New(n) // want: still flagged
}
