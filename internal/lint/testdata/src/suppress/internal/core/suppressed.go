// Package core is the suppression fixture: each violation carries a
// //lint:ignore directive with a reason, so the file is clean.
package core

import "bbsmine/internal/bitvec"

// ColdSetup allocates outside any pool, with the reason documented.
func ColdSetup(n int) *bitvec.Vector {
	//lint:ignore pooledvec one-off setup allocation, no pool in scope
	return bitvec.New(n)
}

// SameLine suppresses on the finding's own line.
func SameLine(n int) *bitvec.Vector {
	return bitvec.New(n) //lint:ignore pooledvec cold path, reason on the same line
}
