// Package core is the file-wide suppression fixture.
//
//lint:file-ignore pooledvec fixture exercising file-wide suppression
package core

import "bbsmine/internal/bitvec"

// A and B both allocate raw vectors; the file-ignore silences both.
func A(n int) *bitvec.Vector { return bitvec.New(n) }

// B is the second violation the file-wide directive covers.
func B(n int) *bitvec.Vector { return bitvec.New(n) }
