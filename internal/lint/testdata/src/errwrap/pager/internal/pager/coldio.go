// Package pager is an errwrap scope fixture: cold files are only
// crash-safe when every write, sync, and rename outcome is acted on, so
// bare error discards on cold-file I/O are flagged here exactly as in the
// other storage packages.
package pager

import "os"

// Seal drops the payload sync and the temp-file cleanup on the floor.
func Seal(f *os.File) {
	defer f.Sync()        // want: deferred silent discard
	os.Remove("cold.tmp") // want: bare statement discard
	_ = f.Close()         // explicit discard: allowed
}
