// Package other is the errwrap scope fixture: outside internal/txdb and
// internal/sigfile a bare discard is a style choice, not an I/O bug, and
// only the %w rule applies.
package other

import "os"

// Cleanup discards an error outside the I/O-path scope: not flagged.
func Cleanup(path string) {
	os.Remove(path)
}
