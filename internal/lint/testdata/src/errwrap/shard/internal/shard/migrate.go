// Package shard is an errwrap scope fixture: the sharded layout owns the
// flat-to-sharded migration's file I/O, so bare error discards are flagged
// here exactly as in txdb and serve.
package shard

import "os"

// Migrate drops both cleanup errors on the floor.
func Migrate(f *os.File) {
	defer f.Sync()          // want: deferred silent discard
	os.Remove("stale.txdb") // want: bare statement discard
	_ = f.Close()           // explicit discard: allowed
}
