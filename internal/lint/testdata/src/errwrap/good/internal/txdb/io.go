// Package txdb is the errwrap negative fixture: %w wrapping, explicit
// discards, and handled errors.
package txdb

import (
	"fmt"
	"os"
)

// Open wraps with %w and makes the deferred close discard explicit.
func Open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	return nil
}

// Cleanup acknowledges the discard; non-error formatting verbs are free.
func Cleanup(path string) {
	_ = os.Remove(path)
	_ = fmt.Errorf("gone: %s", path)
}
