// Package txdb is an errwrap fixture: a severed error chain and silent
// discards on an I/O path.
package txdb

import (
	"fmt"
	"os"
)

// Open wraps the error with %v, severing the chain.
func Open(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %v", path, err) // want: %v on an error
	}
	defer f.Close() // want: deferred silent discard
	return nil
}

// Cleanup discards the removal error as a bare statement.
func Cleanup(path string) {
	os.Remove(path) // want: silent discard
}
