// Package serve is an errwrap scope fixture: the serving layer joined the
// no-silent-discard scope (its commit loop is the durability boundary), so
// bare discards are flagged here exactly as in txdb.
package serve

import "os"

// Shutdown drops both close errors on the floor.
func Shutdown(f *os.File) {
	defer f.Sync() // want: deferred silent discard
	f.Close()      // want: bare statement discard
}
