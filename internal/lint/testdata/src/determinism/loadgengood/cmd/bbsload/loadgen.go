// Package main follows the relaxed loadgen rules: every draw comes from an
// explicit flag-seeded source, and the wall clock paces sends — which is the
// generator's job, not a determinism leak.
package main

import (
	"math/rand"
	"time"
)

func plan(seed int64) ([]int, time.Time) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.4, 1, 63)
	out := []int{int(zipf.Uint64()), rng.Intn(100)}
	return out, time.Now()
}
