// Package exp is the determinism allowlist fixture: the experiment harness
// measures wall-clock time by design, so time.Now here must not be flagged.
package exp

import "time"

// Measure times fn; the harness's whole purpose is nondeterministic.
func Measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
