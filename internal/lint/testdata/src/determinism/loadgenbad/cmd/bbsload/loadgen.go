// Package main violates all three relaxed loadgen determinism rules: it
// reseeds the global source, draws from it, and builds a time-seeded source.
package main

import (
	"math/rand"
	"time"
)

func plan() []int {
	rand.Seed(42)
	n := 2 + rand.Intn(10)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rng.Intn(100))
	}
	return out
}
