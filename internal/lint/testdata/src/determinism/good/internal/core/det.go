// Package core is the determinism negative fixture: map contents reach the
// result only through a sorted key slice.
package core

import "sort"

// Mine folds the counts in sorted key order, so two runs agree.
func Mine(counts map[int]int) int {
	keys := make([]int, 0, len(counts))
	for k := 0; k < 1<<16; k++ { // bounded probe instead of a map range
		if _, ok := counts[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	total := 0
	for _, k := range keys {
		total += counts[k]
	}
	return total
}
