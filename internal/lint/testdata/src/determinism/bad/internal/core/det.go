// Package core is a determinism fixture: the three nondeterminism sources
// the analyzer bans from result-computing packages.
package core

import (
	"math/rand" // want: randomness import
	"time"
)

// Mine stamps its result with the wall clock and a random draw, and folds
// a map in iteration order.
func Mine(counts map[int]int) (int64, int) {
	stamp := time.Now().UnixNano() // want: wall clock
	total := rand.Intn(10)
	for _, c := range counts { // want: map iteration order
		total += c
	}
	return stamp, total
}
