// Package serve is a goroutinelife fixture: goroutines with no join
// signal and no cancellation path. The drain can neither wait for them
// nor stop them.
package serve

// LeakLiteral spawns a literal nothing can wait for.
func LeakLiteral(work func()) {
	go func() { // want: no join signal
		work()
	}()
}

// LeakNamed spawns a named method with no signal either.
func LeakNamed(s *server) {
	go s.refresh() // want: no join signal
}

type server struct {
	hits int
}

func (s *server) refresh() {
	s.hits++
}
