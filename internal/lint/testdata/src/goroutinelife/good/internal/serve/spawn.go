// Package serve is the goroutinelife negative fixture: every spawn
// either signals completion (WaitGroup.Done, a deferred close, a send)
// or observes cancellation through a select.
package serve

import (
	"context"
	"sync"
)

// WaitGroupJoin signals completion through wg.Done.
func WaitGroupJoin(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// ChannelJoin closes a done channel the drain can wait on.
func ChannelJoin(work func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// CtxSelect observes cancellation inside its loop.
func CtxSelect(ctx context.Context, work chan int, handle func(int)) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				handle(v)
			}
		}
	}()
}

// NamedJoin joins a named loop through its deferred close — the engine's
// own shardLoop shape.
func NamedJoin(s *server) chan struct{} {
	loopDone := make(chan struct{})
	go s.loop(loopDone)
	return loopDone
}

type server struct {
	hits int
}

func (s *server) loop(done chan struct{}) {
	defer close(done)
	s.hits++
}
