// Package serve is the snapshotsafety negative fixture: the sanctioned
// build-then-publish shapes. Mutation before Store, container
// construction, and pure reads must all stay clean.
package serve

import "sync/atomic"

type snapshot struct {
	epoch uint64
	rows  []int
}

type shard struct {
	snap atomic.Pointer[snapshot]
}

// BuildThenStore mutates only before publication.
func BuildThenStore(sh *shard, rows []int) {
	next := &snapshot{}
	next.rows = rows
	next.epoch = 7
	sh.snap.Store(next)
}

// CollectSnaps builds a container of published snapshots; element stores
// and appends construct the vector, they do not mutate a snapshot.
func CollectSnaps(shards []*shard) []*snapshot {
	snaps := make([]*snapshot, 0, len(shards))
	for _, sh := range shards {
		snaps = append(snaps, sh.snap.Load())
	}
	return snaps
}

// ReadPublished reads the shared view without writing through it.
func ReadPublished(sh *shard) int {
	s := sh.snap.Load()
	total := 0
	for _, r := range s.rows {
		total += r
	}
	return total
}
