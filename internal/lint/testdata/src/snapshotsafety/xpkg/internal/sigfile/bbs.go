// Package sigfile is the cross-package half of the snapshotsafety fact
// fixture: it exports a publisher whose name carries no hint (Freeze, not
// Snapshot) and a mutating method. The dependent serve fixture can only
// flag the combination through this package's exported fact.
package sigfile

type Index struct {
	keys []uint32
}

// Insert mutates the receiver.
func (ix *Index) Insert(k uint32) {
	ix.keys = append(ix.keys, k)
}

// Snapshot returns a write-once view.
func (ix *Index) Snapshot() *Index {
	out := &Index{keys: make([]uint32, len(ix.keys))}
	copy(out.keys, ix.keys)
	return out
}

// Freeze publishes through Snapshot. The exported fact records Freeze as
// a publisher, so dependents flag mutations of its result too.
func (ix *Index) Freeze() *Index {
	return ix.Snapshot()
}
