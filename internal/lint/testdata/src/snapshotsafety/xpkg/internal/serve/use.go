// Package serve consumes the sigfile fixture's exported snapshotsafety
// fact: Freeze is a publisher and Insert a mutator declared in a
// different package, so this diagnostic only exists if facts flow.
package serve

import sig "bbsmine/internal/lint/testdata/src/snapshotsafety/xpkg/internal/sigfile"

// GrowFrozen mutates a view another package published.
func GrowFrozen(master *sig.Index) {
	sn := master.Freeze()
	sn.Insert(7) // want: cross-package mutator on a cross-package publisher
}

// GrowMaster is the clean shape: snapshot, then mutate the master.
func GrowMaster(master *sig.Index) *sig.Index {
	sn := master.Freeze()
	master.Insert(7)
	return sn
}
