// Package sigfile is a snapshotsafety fixture: a mutating method invoked
// on a value returned from Snapshot, within one package.
package sigfile

type BBS struct {
	keys []uint32
}

// Insert mutates the receiver.
func (b *BBS) Insert(k uint32) {
	b.keys = append(b.keys, k)
}

// Snapshot returns a write-once view.
func (b *BBS) Snapshot() *BBS {
	out := &BBS{keys: make([]uint32, len(b.keys))}
	copy(out.keys, b.keys)
	return out
}

// InsertAfterSnapshot mutates the published view instead of the master.
func InsertAfterSnapshot(master *BBS) *BBS {
	sn := master.Snapshot()
	sn.Insert(1) // want: mutating method call on a published value
	return sn
}
