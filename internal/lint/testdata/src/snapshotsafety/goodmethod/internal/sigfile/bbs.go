// Package sigfile is the snapshotsafety method negative fixture: after
// taking a snapshot, the master keeps growing — the sanctioned shape.
package sigfile

type BBS struct {
	keys []uint32
}

// Insert mutates the receiver.
func (b *BBS) Insert(k uint32) {
	b.keys = append(b.keys, k)
}

// Snapshot returns a write-once view.
func (b *BBS) Snapshot() *BBS {
	out := &BBS{keys: make([]uint32, len(b.keys))}
	copy(out.keys, b.keys)
	return out
}

// SnapshotThenGrow snapshots, then keeps building the master. The master
// is never published; mutating it is the whole point of the design.
func SnapshotThenGrow(master *BBS) *BBS {
	sn := master.Snapshot()
	master.Insert(1)
	return sn
}
