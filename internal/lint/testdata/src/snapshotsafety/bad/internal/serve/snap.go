// Package serve is a snapshotsafety fixture: mutations of values
// published through an atomic.Pointer — after Load, after Store, and
// through a container of loaded snapshots.
package serve

import "sync/atomic"

type snapshot struct {
	epoch uint64
	rows  []int
}

type shard struct {
	snap atomic.Pointer[snapshot]
}

// MutateAfterLoad pokes a snapshot other goroutines already share.
func MutateAfterLoad(sh *shard) uint64 {
	s := sh.snap.Load()
	s.epoch++ // want: increments a published snapshot
	return s.epoch
}

// MutateAfterStore keeps writing through the pointer it just published.
func MutateAfterStore(sh *shard, rows []int) {
	next := &snapshot{rows: rows}
	sh.snap.Store(next)
	next.epoch = 1 // want: stores into a published snapshot
}

// MutateElement reaches into a container of published snapshots.
func MutateElement(shards []*shard) {
	snaps := make([]*snapshot, len(shards))
	for i, sh := range shards {
		snaps[i] = sh.snap.Load()
	}
	snaps[0].epoch = 9 // want: an element read from a holds container is published
}
