package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path within the module
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	loader *Loader // back-reference for fact-universe walks; nil in hand-built packages
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports are resolved against the module
// root by path mapping, standard-library imports through the compiler
// source importer. There is no go/packages and no external dependency —
// the price is that only the host module and the standard library are
// loadable, which is exactly the closed world this repository lives in.
//
// The package cache and the standard-library importer are mutex-guarded,
// so the Driver may type-check independent packages concurrently (it
// schedules them in dependency order, so a package's module-local imports
// are always cached before its own check begins). The recursive Load path
// remains sequential.
type Loader struct {
	ModulePath string
	ModuleRoot string
	// IncludeTests makes Load parse in-package _test.go files as well.
	// External test packages (package foo_test) are always skipped: they
	// cannot be type-checked together with the package under test.
	IncludeTests bool

	fset *token.FileSet
	std  *lockedImporter

	mu      sync.Mutex
	cache   map[string]*Package
	loading map[string]bool
}

// lockedImporter serializes the compiler source importer, which is not
// documented as safe for concurrent use. Standard-library packages load
// once and are cached inside it, so the serialization only gates first
// loads.
type lockedImporter struct {
	mu  sync.Mutex
	std types.ImporterFrom
}

func (li *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.std.ImportFrom(path, dir, mode)
}

// NewLoader locates the enclosing module of dir (walking up to the go.mod)
// and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found in or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleRoot: root,
		fset:       fset,
		std:        &lockedImporter{std: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)},
		cache:      map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Dir maps an import path of this module to its directory.
func (l *Loader) Dir(importPath string) string {
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(importPath, l.ModulePath)))
}

// local reports whether the import path belongs to this module.
func (l *Loader) local(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// cached returns the already-loaded package for the path, or nil.
func (l *Loader) cached(importPath string) *Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cache[importPath]
}

// importStd resolves a standard-library import through the serialized
// source importer.
func (l *Loader) importStd(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.std.ImportFrom(path, dir, mode)
}

// importPathOf maps an absolute directory inside the module to its import path.
func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages load
// through the loader itself, everything else through the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.local(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importStd(path, dir, mode)
}

// cacheOnlyImporter resolves module-local imports strictly from the loader
// cache. The Driver type-checks packages in dependency order, so a miss
// means its import scan and the type-checker disagree about the import
// graph — an internal error worth failing loudly on, not recursing past.
type cacheOnlyImporter struct{ l *Loader }

func (c cacheOnlyImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c cacheOnlyImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if c.l.local(path) {
		if pkg := c.l.cached(path); pkg != nil {
			return pkg.Types, nil
		}
		return nil, fmt.Errorf("lint: internal error: %s not preloaded", path)
	}
	return c.l.importStd(path, dir, mode)
}

// Load parses and type-checks the package at the given module import path,
// recursively loading module-local imports. Sequential: concurrent loading
// goes through the Driver, which schedules loadOne in dependency order.
func (l *Loader) Load(importPath string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.cache[importPath]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	if l.loading[importPath] {
		l.mu.Unlock()
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.loading, importPath)
		l.mu.Unlock()
	}()
	return l.parseAndCheck(importPath, l)
}

// loadOne type-checks one package whose module-local imports are already
// cached. It is the Driver's concurrent entry point.
func (l *Loader) loadOne(importPath string) (*Package, error) {
	if pkg := l.cached(importPath); pkg != nil {
		return pkg, nil
	}
	return l.parseAndCheck(importPath, cacheOnlyImporter{l})
}

// parseAndCheck does the real work of loading: select files, parse, run
// the type checker with the given import resolver, and cache the result.
func (l *Loader) parseAndCheck(importPath string, imp types.Importer) (*Package, error) {
	dir := l.Dir(importPath)
	names, err := l.goFileNames(dir)
	if err != nil {
		return nil, err
	}

	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		name := f.Name.Name
		if strings.HasSuffix(n, "_test.go") && strings.HasSuffix(name, "_test") {
			continue // external test package; not checkable with the package proper
		}
		if pkgName == "" {
			pkgName = name
		}
		if name != pkgName {
			// Mixed-package directory (main + library is the usual cause);
			// keep the first package's files and skip strays.
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, typeErrs[0])
	}

	pkg := &Package{
		Path:   importPath,
		Dir:    dir,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}
	l.mu.Lock()
	l.cache[importPath] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// goFileNames lists the loadable Go file names of dir in sorted order,
// applying the same filters Load and the Driver's import scan share.
func (l *Loader) goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves command-line patterns to import paths. A pattern is a
// directory, optionally suffixed "/..." to include the whole subtree;
// "./..." is the customary whole-module form. Walks skip testdata, vendor,
// hidden and underscore directories — unless the walk is rooted inside one,
// which is how the fixture packages are addressed explicitly.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		dirs := []string{abs}
		if recursive {
			dirs, err = walkDirs(abs)
			if err != nil {
				return nil, err
			}
		}
		for _, d := range dirs {
			if !hasGoFiles(d, l.IncludeTests) {
				continue
			}
			ip, err := l.importPathOf(d)
			if err != nil {
				return nil, err
			}
			if !seen[ip] {
				seen[ip] = true
				out = append(out, ip)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkDirs lists root and every analyzable subdirectory beneath it.
func walkDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root {
			n := d.Name()
			if n == "testdata" || n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
				return filepath.SkipDir
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir directly contains loadable Go files.
func hasGoFiles(dir string, includeTests bool) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		return true
	}
	return false
}
