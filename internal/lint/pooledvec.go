package lint

import (
	"go/ast"
	"go/types"
)

// PooledVec enforces the hot-path allocation rule of the parallel engine:
// inside internal/core — the filter/refine/parallel enumeration — residual
// and scratch bit vectors must come from the run's bitvec.Pool, not from
// raw bitvec.New calls. The enumeration evaluates millions of candidate
// itemsets; a stray New in a per-node or per-worker path turns the
// allocation-free slice-AND loop into a GC treadmill, and the pool is the
// mechanism that keeps vector reuse safe across workers.
//
// With adaptive slice storage the same rule covers the compressed
// encodings: the AND kernels work directly on a Slice's sparse or RLE
// payload, so core must never decompress one per candidate. The allocating
// decode methods — Materialize, Positions, Runs — are flagged alongside raw
// bitvec.New; they exist for serialization and tests, and a call in the
// enumeration means a full vector or position list materializes on every
// evaluation.
//
// Allocation sites that are genuinely cold (one-off setup with no pool in
// scope) carry a //lint:ignore pooledvec comment explaining why.
var PooledVec = &Analyzer{
	Name:    "pooledvec",
	Doc:     "internal/core takes bit vectors from bitvec.Pool and never decompresses a Slice",
	Applies: func(path string) bool { return pathHasSegment(path, "internal/core") },
	Run:     runPooledVec,
}

// sliceDecodeMethods are the (*bitvec.Slice) accessors that allocate a
// decoded form of the payload on every call.
var sliceDecodeMethods = map[string]bool{
	"Materialize": true,
	"Positions":   true,
	"Runs":        true,
}

func runPooledVec(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return true
			}
			pkg := fn.Pkg()
			if pkg == nil || !pathHasSegment(pkg.Path(), "internal/bitvec") {
				return true
			}
			switch {
			case fn.Name() == "New" && fn.Type().(*types.Signature).Recv() == nil:
				pass.Reportf(call.Pos(),
					"raw bitvec.New in the mining hot path; take the vector from the run's bitvec.Pool (vecs.Get/Put)")
			case sliceDecodeMethods[fn.Name()] && recvIsSlice(fn):
				pass.Reportf(call.Pos(),
					"Slice.%s decompresses the slice per call; the AND kernels (AndCountInto, OrInto) work on the compressed form directly", fn.Name())
			}
			return true
		})
	}
}

// recvIsSlice reports whether fn is a method on bitvec's Slice type.
func recvIsSlice(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Slice"
}

// calleeFunc resolves the function or method a call invokes, or nil for
// indirect calls and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
