package lint

import (
	"go/ast"
	"go/types"
)

// PooledVec enforces the hot-path allocation rule of the parallel engine:
// inside internal/core — the filter/refine/parallel enumeration — residual
// and scratch bit vectors must come from the run's bitvec.Pool, not from
// raw bitvec.New calls. The enumeration evaluates millions of candidate
// itemsets; a stray New in a per-node or per-worker path turns the
// allocation-free slice-AND loop into a GC treadmill, and the pool is the
// mechanism that keeps vector reuse safe across workers.
//
// Allocation sites that are genuinely cold (one-off setup with no pool in
// scope) carry a //lint:ignore pooledvec comment explaining why.
var PooledVec = &Analyzer{
	Name:    "pooledvec",
	Doc:     "internal/core takes bit vectors from bitvec.Pool, never from raw bitvec.New",
	Applies: func(path string) bool { return pathHasSegment(path, "internal/core") },
	Run:     runPooledVec,
}

func runPooledVec(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Name() != "New" {
				return true
			}
			pkg := fn.Pkg()
			if pkg == nil || !pathHasSegment(pkg.Path(), "internal/bitvec") {
				return true
			}
			pass.Reportf(call.Pos(),
				"raw bitvec.New in the mining hot path; take the vector from the run's bitvec.Pool (vecs.Get/Put)")
			return true
		})
	}
}

// calleeFunc resolves the function or method a call invokes, or nil for
// indirect calls and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
