package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// factsVersion salts every cache key. Bump it whenever an analyzer's fact
// shape or diagnostic logic changes, so stale cache entries from older
// binaries can never satisfy a newer run.
const factsVersion = "bbslint-v2"

// FactStore holds the per-(analyzer, package) facts computed or decoded
// during one run. It is safe for concurrent use: the driver computes facts
// for independent packages in parallel.
type FactStore struct {
	mu sync.RWMutex
	m  map[factKey]any
}

type factKey struct {
	analyzer string
	pkg      string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]any{}}
}

func (s *FactStore) get(analyzer, pkg string) any {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[factKey{analyzer, pkg}]
}

func (s *FactStore) put(analyzer, pkg string, fact any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[factKey{analyzer, pkg}] = fact
}

// has reports whether a fact is recorded (even a nil-valued one is not;
// analyzers that export nothing simply have no entry).
func (s *FactStore) has(analyzer, pkg string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[factKey{analyzer, pkg}]
	return ok
}

// cacheEntry is the on-disk form of one cached (package, analyzer) result:
// the exported fact (if the analyzer exports one) and, for target packages,
// the surviving findings. Facts and findings are cached under separate keys
// because a package can be a dependency in one run and a target in another.
type cacheEntry struct {
	Fact     json.RawMessage `json:"fact,omitempty"`
	Findings []Finding       `json:"findings"`
}

// factCache is a content-addressed directory of cacheEntry files. A nil
// *factCache is valid and caches nothing, which is how the driver degrades
// when the cache directory cannot be created.
type factCache struct {
	dir string
}

// newFactCache opens (creating if needed) a cache rooted at dir. An empty
// dir disables caching.
func newFactCache(dir string) *factCache {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	return &factCache{dir: dir}
}

func (c *factCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load reads the entry stored under key, reporting ok=false on any miss or
// decode failure — a corrupt entry is treated as absent and overwritten.
func (c *factCache) load(key string) (cacheEntry, bool) {
	if c == nil {
		return cacheEntry{}, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return cacheEntry{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return cacheEntry{}, false
	}
	return e, true
}

// store writes the entry under key. Cache writes are best-effort: a full
// disk degrades to a slower lint run, not a failed one.
func (c *factCache) store(key string, e cacheEntry) {
	if c == nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.path(key))
}

// hashKey derives a cache key from the analyzer, the kind of entry
// ("facts" or "findings") and the package's closure hash.
func hashKey(kind, analyzer, closureHash string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s", factsVersion, kind, analyzer, closureHash)
	return hex.EncodeToString(h.Sum(nil))[:32]
}
