package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore or //lint:file-ignore comment.
type directive struct {
	file     string // file the directive appears in
	line     int    // line the comment ends on
	analyzer string
	fileWide bool
}

// collectDirectives parses every suppression directive in the files and
// reports malformed ones (missing analyzer or reason) as findings under the
// "bbslint" name, so a typo'd suppression fails loudly instead of silently
// not suppressing.
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]directive, []Finding) {
	var dirs []directive
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text = strings.TrimSpace(text)
				fileWide := false
				var rest string
				switch {
				case strings.HasPrefix(text, "lint:file-ignore"):
					fileWide = true
					rest = strings.TrimPrefix(text, "lint:file-ignore")
				case strings.HasPrefix(text, "lint:ignore"):
					rest = strings.TrimPrefix(text, "lint:ignore")
				default:
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.End())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "bbslint",
						Pos:      fset.Position(c.Pos()),
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				dirs = append(dirs, directive{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					fileWide: fileWide,
				})
			}
		}
	}
	return dirs, bad
}

// applySuppressions drops findings[from:] that a directive covers: a
// file-ignore for the same analyzer anywhere in the file, or an ignore on
// the finding's own line or the line directly above it.
func applySuppressions(findings []Finding, from int, dirs []directive) []Finding {
	kept := findings[:from]
	for _, f := range findings[from:] {
		if !suppressed(f, dirs) {
			kept = append(kept, f)
		}
	}
	return kept
}

func suppressed(f Finding, dirs []directive) bool {
	for _, d := range dirs {
		if d.file != f.Pos.Filename || d.analyzer != f.Analyzer {
			continue
		}
		if d.fileWide || d.line == f.Pos.Line || d.line == f.Pos.Line-1 {
			return true
		}
	}
	return false
}
