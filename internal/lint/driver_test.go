package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// writeTree writes a file tree under a temp dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const tmpSigfile = `// Package sigfile is a scratch copy of the master/snapshot split.
package sigfile

type Index struct {
	keys []uint32
}

func (ix *Index) Insert(k uint32) {
	ix.keys = append(ix.keys, k)
}

func (ix *Index) Snapshot() *Index {
	out := &Index{keys: make([]uint32, len(ix.keys))}
	copy(out.keys, ix.keys)
	return out
}

func (ix *Index) Freeze() *Index {
	return ix.Snapshot()
}
`

const tmpServeClean = `// Package serve exercises the sigfile snapshot contract.
package serve

import "tmpserve/internal/sigfile"

func Grow(master *sigfile.Index) *sigfile.Index {
	sn := master.Freeze()
	master.Insert(7)
	return sn
}
`

const tmpServeMutated = `// Package serve exercises the sigfile snapshot contract.
package serve

import "tmpserve/internal/sigfile"

func Grow(master *sigfile.Index) *sigfile.Index {
	sn := master.Freeze()
	sn.Insert(7) // mutates the published view
	return sn
}
`

// driverOn builds a fresh Driver rooted at the given module dir; a fresh
// loader per run is what a new bbslint process would have.
func driverOn(t *testing.T, root, cacheDir string, parallel int) *Driver {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return &Driver{Loader: loader, Analyzers: Analyzers(), Parallel: parallel, CacheDir: cacheDir}
}

// TestDriverCacheInvalidation proves the content-hash cache end to end on
// a scratch module: a warm run type-checks nothing; editing the target
// re-analyzes it against its dependency's CACHED fact (the cross-package
// snapshotsafety diagnostic appears without re-computing the dep); and
// editing the dependency invalidates the unchanged target through the
// closure hash.
func TestDriverCacheInvalidation(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                  "module tmpserve\n\ngo 1.22\n",
		"internal/sigfile/bbs.go": tmpSigfile,
		"internal/serve/serve.go": tmpServeClean,
	})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	targets := []string{"tmpserve/internal/serve"}

	// Cold: everything computed, nothing found.
	d := driverOn(t, root, cacheDir, 2)
	findings, err := d.RunPaths(targets)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("cold run findings = %v, want none", findings)
	}
	if d.Stats.Packages != 2 || d.Stats.Loaded != 2 || d.Stats.FactsCached != 0 {
		t.Fatalf("cold stats = %+v, want 2 packages loaded, 0 cached", d.Stats)
	}

	// Warm: the cache satisfies everything; no package is type-checked.
	d = driverOn(t, root, cacheDir, 2)
	if _, err := d.RunPaths(targets); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if d.Stats.Loaded != 0 || d.Stats.FactsComputed != 0 || d.Stats.FindingsComputed != 0 {
		t.Fatalf("warm stats = %+v, want nothing recomputed", d.Stats)
	}
	if d.Stats.FactsCached == 0 || d.Stats.FindingsCached == 0 {
		t.Fatalf("warm stats = %+v, want cache hits", d.Stats)
	}

	// Edit the target: it is re-analyzed; the dependency's fact comes from
	// the cache (FactsCached) yet still powers the cross-package finding.
	if err := os.WriteFile(filepath.Join(root, "internal/serve/serve.go"), []byte(tmpServeMutated), 0o644); err != nil {
		t.Fatal(err)
	}
	d = driverOn(t, root, cacheDir, 2)
	findings, err = d.RunPaths(targets)
	if err != nil {
		t.Fatalf("edited-target run: %v", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "snapshotsafety" {
		t.Fatalf("edited-target findings = %v, want one snapshotsafety", findings)
	}
	if d.Stats.FactsComputed != 1 || d.Stats.FactsCached != 1 {
		t.Fatalf("edited-target stats = %+v, want target fact recomputed, dep fact cached", d.Stats)
	}

	// Edit the dependency: the unchanged target's closure hash moves, so
	// both are recomputed and the finding survives.
	if err := os.WriteFile(filepath.Join(root, "internal/sigfile/bbs.go"),
		[]byte(tmpSigfile+"\nfunc (ix *Index) Len() int { return len(ix.keys) }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d = driverOn(t, root, cacheDir, 2)
	findings, err = d.RunPaths(targets)
	if err != nil {
		t.Fatalf("edited-dep run: %v", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "snapshotsafety" {
		t.Fatalf("edited-dep findings = %v, want one snapshotsafety", findings)
	}
	if d.Stats.FactsComputed != 2 || d.Stats.FactsCached != 0 {
		t.Fatalf("edited-dep stats = %+v, want both facts recomputed", d.Stats)
	}
}

// TestDriverParallelByteIdentical pins the determinism contract CI relies
// on: JSON output over a findings-heavy package set is byte-identical at
// -parallel 1 and -parallel 4.
func TestDriverParallelByteIdentical(t *testing.T) {
	paths := []string{
		"bbsmine/internal/lint/testdata/src/snapshotsafety/bad/internal/serve",
		"bbsmine/internal/lint/testdata/src/snapshotsafety/xpkg/internal/serve",
		"bbsmine/internal/lint/testdata/src/ctxflow/bad/internal/core",
		"bbsmine/internal/lint/testdata/src/goroutinelife/bad/internal/serve",
		"bbsmine/internal/lint/testdata/src/hotpathalloc/bad/internal/core",
		"bbsmine/internal/lint/testdata/src/lockdiscipline/atomic/cache",
		"bbsmine/internal/lint/testdata/src/determinism/bad/internal/core",
	}
	emit := func(parallel int) []byte {
		d := driverOn(t, ".", "", parallel)
		findings, err := d.RunPaths(paths)
		if err != nil {
			t.Fatalf("RunPaths(parallel=%d): %v", parallel, err)
		}
		if len(findings) == 0 {
			t.Fatalf("RunPaths(parallel=%d) found nothing; the comparison is vacuous", parallel)
		}
		var buf bytes.Buffer
		if err := EmitJSON(&buf, findings, d.Loader.ModuleRoot); err != nil {
			t.Fatalf("EmitJSON: %v", err)
		}
		return buf.Bytes()
	}
	seq := emit(1)
	par := emit(4)
	if !bytes.Equal(seq, par) {
		t.Errorf("-parallel 1 and -parallel 4 JSON differ:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestDriverFactsCrossPackage runs the fact fixture through the driver
// (rather than the in-process Run helper) and checks the dependent-package
// diagnostic that only exported facts can produce.
func TestDriverFactsCrossPackage(t *testing.T) {
	d := driverOn(t, ".", "", 0)
	findings, err := d.RunPaths([]string{"bbsmine/internal/lint/testdata/src/snapshotsafety/xpkg/internal/serve"})
	if err != nil {
		t.Fatalf("RunPaths: %v", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "snapshotsafety" || findings[0].Pos.Line != 11 {
		t.Fatalf("findings = %v, want the line-11 cross-package snapshotsafety diagnostic", findings)
	}
}
