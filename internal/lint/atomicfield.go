package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces the iostat counter invariant: the parallel mining
// engine shares one Stats value between every worker, store, and index
// without coordination, so the struct's fields must be sync/atomic types
// and every touch must go through their Load/Store/Add/... methods. A
// plain int field — or a direct read of an atomic field — is a data race
// waiting for the next contributor.
//
// The analyzer applies to packages under internal/iostat and checks every
// struct type whose name ends in "Stats":
//
//  1. each field's type must come from sync/atomic;
//  2. each use of such a field must immediately invoke a method on it
//     (s.counter.Add(1), s.counter.Load(), ...), never pass the field
//     around, take its address, or assign over it.
var AtomicField = &Analyzer{
	Name:    "atomicfield",
	Doc:     "fields of iostat stats structs must be sync/atomic types used only through their methods",
	Applies: func(path string) bool { return pathHasSegment(path, "internal/iostat") },
	Run:     runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Pass 1: find the stats structs and their fields; report non-atomic
	// field types.
	tracked := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || !hasSuffixStats(ts.Name.Name) {
				return true
			}
			for _, field := range st.Fields.List {
				atomicTyped := isAtomicType(pass.Info.Types[field.Type].Type)
				for _, name := range field.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if atomicTyped {
						tracked[obj] = true
					} else {
						pass.Reportf(name.Pos(),
							"field %s of %s must be a sync/atomic type: the stats value is shared across mining workers without locks",
							name.Name, ts.Name.Name)
					}
				}
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 2: every selector that resolves to a tracked field must be the
	// receiver of an immediate method call.
	for _, f := range pass.Files {
		calledOn := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if method, ok := call.Fun.(*ast.SelectorExpr); ok {
				if field, ok := method.X.(*ast.SelectorExpr); ok {
					calledOn[field] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel := pass.Info.Selections[se]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			obj, ok := sel.Obj().(*types.Var)
			if !ok || !tracked[obj] || calledOn[se] {
				return true
			}
			pass.Reportf(se.Pos(),
				"field %s used directly; stats counters may only be touched through their sync/atomic methods",
				obj.Name())
			return true
		})
	}
}

// hasSuffixStats matches the naming convention for shared counter structs.
func hasSuffixStats(name string) bool {
	return strings.HasSuffix(name, "Stats")
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
