package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces the shared-counter invariant: the parallel mining
// engine shares one iostat.Stats (and, when observability is on, one
// obs.Registry) between every worker, store, and index without
// coordination, so the counter structs' fields must be sync/atomic types
// and every touch must go through their Load/Store/Add/... methods. A
// plain int field — or a direct read of an atomic field — is a data race
// waiting for the next contributor.
//
// The analyzer applies to packages under internal/iostat and internal/obs
// and checks every struct type whose name ends in "Stats":
//
//  1. each field's type must come from sync/atomic — a fixed-size array of
//     atomics ([n]atomic.Int64, the phase and histogram tables) counts, and
//     sync.Mutex/RWMutex fields are exempt (a mutex is its own
//     synchronization; iostat uses one to pair Snapshot with Reset);
//  2. each use of such a field must immediately invoke a method on it
//     (s.counter.Add(1), s.table[i].Load(), ...), never pass the field
//     around, take its address, or assign over it.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields of iostat/obs stats structs must be sync/atomic types used only through their methods",
	Applies: func(path string) bool {
		return pathHasSegment(path, "internal/iostat") || pathHasSegment(path, "internal/obs")
	},
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Pass 1: find the stats structs and their fields; report non-atomic
	// field types.
	tracked := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || !hasSuffixStats(ts.Name.Name) {
				return true
			}
			for _, field := range st.Fields.List {
				t := pass.Info.Types[field.Type].Type
				if isMutexType(t) {
					continue
				}
				atomicTyped := isAtomicType(t)
				for _, name := range field.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if atomicTyped {
						tracked[obj] = true
					} else {
						pass.Reportf(name.Pos(),
							"field %s of %s must be a sync/atomic type: the stats value is shared across mining workers without locks",
							name.Name, ts.Name.Name)
					}
				}
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 2: every selector that resolves to a tracked field must be the
	// receiver of an immediate method call, possibly through an index
	// (s.table[i].Add(1) for the array-of-atomics fields).
	for _, f := range pass.Files {
		calledOn := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := method.X
			if idx, ok := recv.(*ast.IndexExpr); ok {
				recv = idx.X
			}
			if field, ok := recv.(*ast.SelectorExpr); ok {
				calledOn[field] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel := pass.Info.Selections[se]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			obj, ok := sel.Obj().(*types.Var)
			if !ok || !tracked[obj] || calledOn[se] {
				return true
			}
			pass.Reportf(se.Pos(),
				"field %s used directly; stats counters may only be touched through their sync/atomic methods",
				obj.Name())
			return true
		})
	}
}

// hasSuffixStats matches the naming convention for shared counter structs.
func hasSuffixStats(name string) bool {
	return strings.HasSuffix(name, "Stats")
}

// isAtomicType reports whether t is a named type from sync/atomic, or a
// fixed-size array of such.
func isAtomicType(t types.Type) bool {
	if arr, ok := t.(*types.Array); ok {
		t = arr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}
