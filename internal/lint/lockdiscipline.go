package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces the mutex convention the txdb page cache (and the
// sighash memo caches) rely on: in a struct that embeds a sync.Mutex or
// sync.RWMutex field, the fields declared after the mutex are guarded by
// it, and a method that touches a guarded field must acquire the mutex
// first. The parallel refinement engine probes the page cache from many
// workers at once; a method that slips in an unlocked map access works in
// every single-threaded test and corrupts accounting the first time two
// workers fault the same page.
//
// The check is structural, not flow-sensitive: within the method body there
// must be a recv.mu.Lock() / RLock() call at a source position before the
// first guarded access. That is exactly the lock-at-the-top shape all of
// the repository's guarded methods use; anything cleverer deserves the
// reviewer attention a suppression comment forces.
//
// One convention is exempt: a method whose name ends in "Locked" asserts
// that its caller already holds the mutex. The pager's CLOCK machinery
// (evictLocked, admitLocked, removeLocked, ...) factors the sweep into
// such helpers precisely so every public entry point keeps the
// lock-at-the-top shape; checking the helpers would force either inline
// duplication or a recursive lock. The suffix is the contract — a
// "...Locked" method must only ever be called with the mutex held.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "methods touching fields declared below a sync.Mutex must lock it first",
	Run:  runLockDiscipline,
}

// guardedStruct records one mutex-carrying struct type.
type guardedStruct struct {
	mutexName string              // name of the mutex field
	guarded   map[*types.Var]bool // fields declared after the mutex
}

func runLockDiscipline(pass *Pass) {
	structs := map[*types.TypeName]*guardedStruct{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs := collectGuarded(pass, st)
			if gs == nil {
				return true
			}
			if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
				structs[tn] = gs
			}
			return true
		})
	}
	if len(structs) == 0 {
		return
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-lock contract; see the analyzer doc
			}
			recvName, gs := receiverGuard(pass, fd, structs)
			if gs == nil || recvName == nil {
				continue
			}
			checkLockedAccesses(pass, fd, recvName, gs)
		}
	}
}

// collectGuarded returns the guard layout of a struct, or nil if it has no
// sync mutex field. Fields after the first mutex field are guarded —
// except sync/atomic fields (atomic.Pointer[T], Int64, Bool, Value, ...),
// which synchronize themselves: the engine publishes snapshots through an
// atomic.Pointer that deliberately lives below a mutex guarding unrelated
// state, and demanding a lock around an already-atomic Store would invite
// exactly the double-locking the snapshot design avoids.
func collectGuarded(pass *Pass, st *ast.StructType) *guardedStruct {
	var gs *guardedStruct
	for _, field := range st.Fields.List {
		t := pass.Info.Types[field.Type].Type
		if gs == nil {
			if isSyncMutex(t) {
				name := ""
				if len(field.Names) > 0 {
					name = field.Names[0].Name
				} else if named, ok := t.(*types.Named); ok {
					name = named.Obj().Name() // embedded sync.Mutex
				}
				gs = &guardedStruct{mutexName: name, guarded: map[*types.Var]bool{}}
			}
			continue
		}
		if isAtomicType(t) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok {
				gs.guarded[v] = true
			}
		}
	}
	if gs == nil || len(gs.guarded) == 0 {
		return nil
	}
	return gs
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverGuard resolves a method's receiver variable and the guard layout
// of its type, if that type carries a mutex.
func receiverGuard(pass *Pass, fd *ast.FuncDecl, structs map[*types.TypeName]*guardedStruct) (*types.Var, *guardedStruct) {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil, nil
	}
	recvIdent := fd.Recv.List[0].Names[0]
	recvObj, ok := pass.Info.Defs[recvIdent].(*types.Var)
	if !ok {
		return nil, nil
	}
	t := recvObj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	gs := structs[named.Obj()]
	return recvObj, gs
}

// checkLockedAccesses reports guarded-field accesses on the receiver that
// no prior recv.<mu>.Lock()/RLock() call covers.
func checkLockedAccesses(pass *Pass, fd *ast.FuncDecl, recv *types.Var, gs *guardedStruct) {
	firstLock := token.Pos(-1)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (method.Sel.Name != "Lock" && method.Sel.Name != "RLock") {
			return true
		}
		var base *ast.Ident
		switch x := ast.Unparen(method.X).(type) {
		case *ast.SelectorExpr: // recv.mu.Lock()
			if x.Sel.Name != gs.mutexName {
				return true
			}
			base, ok = x.X.(*ast.Ident)
			if !ok {
				return true
			}
		case *ast.Ident: // recv.Lock() — promoted from an embedded mutex
			base = x
		default:
			return true
		}
		if pass.Info.Uses[base] != recv {
			return true
		}
		if firstLock == token.Pos(-1) || call.Pos() < firstLock {
			firstLock = call.Pos()
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel := pass.Info.Selections[se]
		if sel == nil || sel.Kind() != types.FieldVal {
			return true
		}
		obj, ok := sel.Obj().(*types.Var)
		if !ok || !gs.guarded[obj] {
			return true
		}
		base, ok := ast.Unparen(se.X).(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recv {
			return true
		}
		if firstLock == token.Pos(-1) || se.Pos() < firstLock {
			pass.Reportf(se.Pos(),
				"field %s is guarded by %s but accessed before any %s.%s.Lock() in %s",
				obj.Name(), gs.mutexName, recv.Name(), gs.mutexName, fd.Name.Name)
		}
		return true
	})
}
