package lint

import (
	"testing"
)

// BenchmarkLint measures a full driver run over the repository, the way
// `make lint` executes it: cold type-checks all 28-odd packages from
// scratch; warm serves every fact and finding from a primed content-hash
// cache and type-checks nothing. The warm number is what developers feel.
func BenchmarkLint(b *testing.B) {
	expand := func() []string {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		paths, err := loader.Expand([]string{"../../..."})
		if err != nil {
			b.Fatal(err)
		}
		return paths
	}

	run := func(b *testing.B, cacheDir string) {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		d := &Driver{Loader: loader, Analyzers: Analyzers(), CacheDir: cacheDir}
		if _, err := d.RunPaths(expand()); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, "")
		}
	})

	b.Run("warm", func(b *testing.B) {
		cacheDir := b.TempDir()
		run(b, cacheDir) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, cacheDir)
		}
	})
}
