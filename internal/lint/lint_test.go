package lint

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load("bbsmine/internal/lint/testdata/src/" + rel)
	if err != nil {
		t.Fatalf("Load(%s): %v", rel, err)
	}
	return pkg
}

// TestAnalyzersOnFixtures runs the whole suite over each fixture package
// and compares the surviving findings, as "line analyzer" pairs, against
// the fixture's expectations. Every analyzer has at least one positive and
// one negative fixture; the suppression fixtures pin the directive
// machinery; the allow fixture pins the determinism allowlist.
func TestAnalyzersOnFixtures(t *testing.T) {
	tests := []struct {
		fixture string
		want    []string
	}{
		{"atomicfield/bad/internal/iostat", []string{
			"10 atomicfield", // plain int64 field in a Stats struct
			"17 atomicfield", // atomic field read without Load
		}},
		{"atomicfield/good/internal/iostat", nil},
		{"atomicfield/good/internal/obs", nil}, // atomic arrays + mutex field are fine
		{"pooledvec/bad/internal/core", []string{
			"9 pooledvec",  // raw bitvec.New
			"14 pooledvec", // Slice.Materialize per candidate
			"21 pooledvec", // Slice.Positions per call
		}},
		{"pooledvec/good/internal/core", nil},
		{"lockdiscipline/bad/cache", []string{
			"17 lockdiscipline", // map read with no lock anywhere
			"23 lockdiscipline", // field write before the Lock call
		}},
		{"lockdiscipline/good/cache", nil},
		{"determinism/bad/internal/core", []string{
			"6 determinism",    // math/rand import
			"13 determinism",   // time.Now
			"13 obsdiscipline", // the same time.Now, through the telemetry lens
			"15 determinism",   // range over a map
		}},
		{"determinism/good/internal/core", nil},
		{"determinism/allow/internal/exp", nil}, // time.Now allowlisted in exp
		{"determinism/loadgenbad/cmd/bbsload", []string{
			"11 determinism", // rand.Seed
			"12 determinism", // rand.Intn draws from the global source
			"13 determinism", // time-seeded rand.NewSource (reported once, not per ctor)
		}},
		{"determinism/loadgengood/cmd/bbsload", nil}, // flag-seeded source + clock pacing
		{"obsdiscipline/bad/internal/core", []string{
			"6 obsdiscipline",  // expvar import
			"15 determinism",   // time.Now is also a determinism violation
			"15 obsdiscipline", // time.Now bypassing obs.Tick
			"17 determinism",
			"17 obsdiscipline", // time.Since
		}},
		{"obsdiscipline/good/internal/core", nil},
		{"errwrap/bad/internal/txdb", []string{
			"14 errwrap", // %v on an error
			"16 errwrap", // deferred silent discard
			"22 errwrap", // bare statement discard
		}},
		{"errwrap/good/internal/txdb", nil},
		{"errwrap/unscoped/other", nil}, // discard rule is scoped to txdb/sigfile/serve
		{"errwrap/serve/internal/serve", []string{
			"10 errwrap", // deferred silent discard in the serving layer
			"11 errwrap", // bare statement discard in the serving layer
		}},
		{"obsdiscipline/serve/internal/serve", []string{
			"9 determinism", // time.Now is also a determinism violation in serve
			"9 obsdiscipline",
			"10 determinism",
			"10 obsdiscipline", // time.Since bypassing the Clock seam
		}},
		{"obsdiscipline/serveclock/internal/serve", nil}, // the sanctioned clock seam
		{"obsdiscipline/loadgen/cmd/bbsload", []string{
			"7 obsdiscipline", // expvar import; the generator's time.Now reads are waived
		}},
		{"errwrap/shard/internal/shard", []string{
			"10 errwrap", // deferred silent discard in the sharded layout
			"11 errwrap", // bare statement discard in the sharded layout
		}},
		{"errwrap/pager/internal/pager", []string{
			"11 errwrap", // deferred silent discard on cold-file I/O
			"12 errwrap", // bare statement discard on cold-file I/O
		}},
		{"obsdiscipline/shard/internal/shard", []string{
			"10 determinism", // time.Now is also a determinism violation in shard
			"10 obsdiscipline",
			"11 determinism",
			"11 obsdiscipline", // time.Since bypassing the registry
		}},
		{"snapshotsafety/bad/internal/serve", []string{
			"20 snapshotsafety", // s.epoch++ after snap.Load()
			"28 snapshotsafety", // field store after snap.Store()
			"37 snapshotsafety", // element of a loaded-snapshot vector
		}},
		{"snapshotsafety/good/internal/serve", nil}, // build-then-Store, vector building, reads
		{"snapshotsafety/badmethod/internal/sigfile", []string{
			"24 snapshotsafety", // Insert on a Snapshot() result
		}},
		{"snapshotsafety/goodmethod/internal/sigfile", nil}, // mutating the master after Snapshot
		{"snapshotsafety/xpkg/internal/sigfile", nil},       // the fact-exporting package itself is clean
		{"snapshotsafety/xpkg/internal/serve", []string{
			"11 snapshotsafety", // cross-package mutator on a cross-package publisher, via facts
		}},
		{"ctxflow/bad/internal/core", []string{
			"7 ctxflow",  // bare spin loop
			"17 ctxflow", // loop over a helper that never observes ctx
		}},
		{"ctxflow/good/internal/core", nil}, // select, Err(), receive, helper
		{"goroutinelife/bad/internal/serve", []string{
			"8 goroutinelife",  // leaked function literal
			"15 goroutinelife", // leaked named method
		}},
		{"goroutinelife/good/internal/serve", nil}, // Done, close, select, named-loop join
		{"hotpathalloc/bad/internal/core", []string{
			"9 hotpathalloc",  // make
			"13 hotpathalloc", // new
			"22 hotpathalloc", // append growth into a fresh array
			"23 hotpathalloc", // capturing closure
		}},
		{"hotpathalloc/good/internal/core", nil}, // self-appends and an unannotated allocator
		{"lockdiscipline/atomic/cache", []string{
			"31 lockdiscipline", // the guarded map, unlocked; the atomic fields are exempt
		}},
		{"suppress/internal/core", nil}, // both violations suppressed with reasons
		{"suppress/fileignore/internal/core", nil},
		{"malformed/internal/core", []string{
			"9 bbslint",    // reasonless directive is itself reported
			"10 pooledvec", // and does not suppress
		}},
	}
	for _, tt := range tests {
		t.Run(tt.fixture, func(t *testing.T) {
			pkg := loadFixture(t, tt.fixture)
			var got []string
			for _, f := range Run([]*Package{pkg}, Analyzers()) {
				got = append(got, fmt.Sprintf("%d %s", f.Pos.Line, f.Analyzer))
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("findings = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestFindingString pins the canonical "file:line: message [analyzer]"
// rendering the Makefile and editors rely on.
func TestFindingString(t *testing.T) {
	pkg := loadFixture(t, "pooledvec/bad/internal/core")
	findings := Run([]*Package{pkg}, []*Analyzer{PooledVec})
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3", len(findings))
	}
	s := findings[0].String()
	if !strings.Contains(s, "alloc.go:9: ") || !strings.HasSuffix(s, "[pooledvec]") {
		t.Errorf("rendering %q, want file:line: message [analyzer]", s)
	}
}

// TestAnalyzerScopes pins each analyzer's Applies predicate against the
// real package paths it must (and must not) cover.
func TestAnalyzerScopes(t *testing.T) {
	tests := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{AtomicField, "bbsmine/internal/iostat", true},
		{AtomicField, "bbsmine/internal/obs", true},
		{AtomicField, "bbsmine/internal/core", false},
		{ObsDiscipline, "bbsmine/internal/core", true},
		{ObsDiscipline, "bbsmine/internal/sigfile", true},
		{ObsDiscipline, "bbsmine/internal/obs", false}, // obs owns the exposition machinery
		{ObsDiscipline, "bbsmine/internal/exp", false},
		{ObsDiscipline, "bbsmine/internal/serve", true},        // the serving layer uses the Clock seam
		{ObsDiscipline, "bbsmine/internal/serve/client", true}, // the client rides along
		{ObsDiscipline, "bbsmine/internal/shard", true},        // the sharded index follows the engine's rules
		{ObsDiscipline, "bbsmine/cmd/bbsload", true},           // import ban only; the clock rule is waived in Run
		{ObsDiscipline, "bbsmine/cmd/bbsbench", false},
		{Determinism, "bbsmine/internal/serve", true},
		{Determinism, "bbsmine/cmd/bbsload", true}, // opts back in: plans must replay from -seed
		{Determinism, "bbsmine/cmd/bbsd", false},
		{Determinism, "bbsmine/internal/shard", true}, // fan-out merge order must be deterministic
		{PooledVec, "bbsmine/internal/core", true},
		{PooledVec, "bbsmine/internal/bitvec", false}, // the pool itself may call New
		{Determinism, "bbsmine/internal/core", true},
		{Determinism, "bbsmine/internal/mining", true},
		{Determinism, "bbsmine/internal/lint", true}, // the linter eats its own dog food
		{Determinism, "bbsmine/internal/exp", false},
		{Determinism, "bbsmine/internal/obs", false}, // phase timers read the clock by design
		{Determinism, "bbsmine/internal/weblog", false},
		{Determinism, "bbsmine/internal/quest", false},
		{Determinism, "bbsmine/cmd/bbsbench", false},
		{Determinism, "bbsmine/examples/retail", false},
		{SnapshotSafety, "bbsmine/internal/serve", true},
		{SnapshotSafety, "bbsmine/internal/shard", true},
		{SnapshotSafety, "bbsmine/internal/sigfile", true}, // the master/snapshot split lives here
		{SnapshotSafety, "bbsmine/internal/core", true},
		{SnapshotSafety, "bbsmine/internal/pager", true}, // epoch-pinned frames back serve snapshots
		{SnapshotSafety, "bbsmine/internal/obs", false},
		{SnapshotSafety, "bbsmine/internal/bitvec", false},
		{CtxFlow, "bbsmine/internal/core", true},
		{CtxFlow, "bbsmine/internal/serve", true},
		{CtxFlow, "bbsmine/internal/shard", true},
		{CtxFlow, "bbsmine/internal/sigfile", false}, // no long-running loops take a ctx here
		{GoroutineLife, "bbsmine/internal/serve", true},
		{GoroutineLife, "bbsmine/internal/shard", true},
		{GoroutineLife, "bbsmine/internal/core", false}, // the engine spawns nothing itself
		{HotPathAlloc, "bbsmine/internal/bitvec", true}, // directive-driven: applies everywhere
		{HotPathAlloc, "bbsmine/cmd/bbsbench", true},
	}
	for _, tt := range tests {
		applies := tt.analyzer.Applies == nil || tt.analyzer.Applies(tt.path)
		if applies != tt.want {
			t.Errorf("%s.Applies(%s) = %v, want %v", tt.analyzer.Name, tt.path, applies, tt.want)
		}
	}
}

// TestPathHasSegment exercises the segment matcher's edge cases.
func TestPathHasSegment(t *testing.T) {
	tests := []struct {
		path, seg string
		want      bool
	}{
		{"bbsmine/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"internal/core/sub", "internal/core", true},
		{"a/internal/core/b", "internal/core", true},
		{"bbsmine/internal/coreutils", "internal/core", false},
		{"bbsmine/xinternal/core", "internal/core", false},
		{"bbsmine/internal/mining", "internal/core", false},
	}
	for _, tt := range tests {
		if got := pathHasSegment(tt.path, tt.seg); got != tt.want {
			t.Errorf("pathHasSegment(%q, %q) = %v, want %v", tt.path, tt.seg, got, tt.want)
		}
	}
}

// TestFormatVerbs pins the errwrap verb/argument alignment.
func TestFormatVerbs(t *testing.T) {
	tests := []struct {
		format string
		want   string
	}{
		{"plain", ""},
		{"%s: %w", "sw"},
		{"%d%%|%v", "dv"},
		{"%+v %#x %6.2f", "vxf"},
		{"%*d", "*d"},
		{"%[1]s", "s"},
	}
	for _, tt := range tests {
		got := string(formatVerbs(tt.format))
		if got != tt.want {
			t.Errorf("formatVerbs(%q) = %q, want %q", tt.format, got, tt.want)
		}
	}
}

// TestExpandSkipsTestdata makes sure a recursive pattern never descends
// into fixture trees — go build ignores testdata, and so must bbslint.
func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("Expand(./...) returned no packages")
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand(./...) descended into %s", p)
		}
	}
}

// TestLoadErrors covers the loader's failure modes.
func TestLoadErrors(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.Load("bbsmine/internal/lint/no/such/dir"); err == nil {
		t.Error("Load of a missing directory succeeded")
	}
	if _, err := loader.Expand([]string{"/no/such/dir"}); err == nil {
		t.Error("Expand of a missing directory succeeded")
	}
}
