package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
)

// Driver runs the analyzer suite over a set of target packages with
// package-level parallelism and an on-disk fact/finding cache.
//
// The run proceeds in three phases. Discovery parses import clauses only
// and builds the module-local import graph of the targets plus every
// dependency, hashing each package's file contents; a package's closure
// hash folds in its transitive dependencies' hashes, so editing any file a
// package can see invalidates its cache entries. The cache probe then
// satisfies as many (package, analyzer) fact and finding entries as it
// can without type-checking anything. Finally, the packages that still
// need work — and their dependencies, which must be type-checked so their
// importers can be — are scheduled across Parallel workers in dependency
// order: a package's task type-checks it, computes missing facts (facts
// run for every package, Applies gates diagnostics only), and, for
// targets, runs the missing analyzers with suppressions applied.
//
// Output is deterministic at any parallelism: findings are merged and
// sorted by (file, line, column, analyzer, message), a total order.
type Driver struct {
	Loader    *Loader
	Analyzers []*Analyzer
	// Parallel is the worker count; values < 1 mean GOMAXPROCS.
	Parallel int
	// CacheDir roots the fact/finding cache; empty disables caching.
	CacheDir string

	// Stats describes the last Run.
	Stats DriverStats
}

// DriverStats reports what one Driver.Run actually did, mostly so tests
// can prove the cache serves unchanged packages and re-analyzes edited
// ones.
type DriverStats struct {
	Packages         int // packages in the analysis universe (targets + deps)
	Loaded           int // packages type-checked this run
	FactsComputed    int // (package, analyzer) facts computed
	FactsCached      int // (package, analyzer) facts served from cache
	FindingsComputed int // (package, analyzer) diagnostic runs
	FindingsCached   int // (package, analyzer) diagnostic results from cache
}

// driverNode is one package in the discovery graph.
type driverNode struct {
	path    string
	imports []string // module-local imports, sorted
	hash    string   // sha256 of the package's own loadable files
	closure string   // hash folding in transitive dependency hashes
	target  bool

	needFacts    []*Analyzer // fact analyzers with no cached fact
	needFindings []*Analyzer // applicable analyzers with no cached findings
	needDirs     bool        // malformed-directive findings not cached
	load         bool        // must be type-checked this run
}

// Run expands the patterns and analyzes the matching packages, returning
// the sorted findings.
func (d *Driver) Run(patterns []string) ([]Finding, error) {
	paths, err := d.Loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	return d.RunPaths(paths)
}

// RunPaths analyzes the given import paths (all module-local).
func (d *Driver) RunPaths(targets []string) ([]Finding, error) {
	d.Stats = DriverStats{}
	nodes, order, err := d.discover(targets)
	if err != nil {
		return nil, err
	}
	d.Stats.Packages = len(order)

	cache := newFactCache(d.CacheDir)
	store := NewFactStore()
	results := map[string][]Finding{}
	d.probeCache(cache, store, nodes, order, results)
	d.markLoads(nodes, order)

	if err := d.schedule(cache, store, nodes, order, results); err != nil {
		return nil, err
	}

	var findings []Finding
	for _, path := range order {
		if nodes[path].target {
			findings = append(findings, results[path]...)
		}
	}
	sortFindings(findings)
	return findings, nil
}

// discover builds the module-local import graph reachable from the targets
// and returns it with a topological order (imports before importers).
func (d *Driver) discover(targets []string) (map[string]*driverNode, []string, error) {
	l := d.Loader
	fset := token.NewFileSet() // throwaway: discovery positions are never reported
	nodes := map[string]*driverNode{}
	queue := append([]string(nil), targets...)
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if nodes[path] != nil {
			continue
		}
		n := &driverNode{path: path}
		nodes[path] = n

		dir := l.Dir(path)
		names, err := l.goFileNames(dir)
		if err != nil {
			return nil, nil, err
		}
		h := sha256.New()
		seen := map[string]bool{}
		pkgName := ""
		for _, name := range names {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %w", err)
			}
			f, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %w", err)
			}
			// Mirror parseAndCheck's file selection exactly: the hash must
			// cover precisely the files the type-checker will see.
			fname := f.Name.Name
			if hasSuffixPair(name, fname) {
				continue // external test package
			}
			if pkgName == "" {
				pkgName = fname
			}
			if fname != pkgName {
				continue // mixed-package stray
			}
			fmt.Fprintf(h, "%s\x00%d\x00", name, len(src))
			h.Write(src)
			for _, spec := range f.Imports {
				ip, err := strconv.Unquote(spec.Path.Value)
				if err != nil || !l.local(ip) || seen[ip] {
					continue
				}
				seen[ip] = true
				n.imports = append(n.imports, ip)
			}
		}
		if pkgName == "" {
			return nil, nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		n.hash = hex.EncodeToString(h.Sum(nil))
		sort.Strings(n.imports)
		queue = append(queue, n.imports...)
	}
	for _, t := range targets {
		nodes[t].target = true
	}

	order, err := topoSort(nodes, targets)
	if err != nil {
		return nil, nil, err
	}
	for _, path := range order {
		n := nodes[path]
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", d.Loader.ModuleRoot, path, n.hash)
		for _, imp := range n.imports {
			fmt.Fprintf(h, "%s\x00%s\x00", imp, nodes[imp].closure)
		}
		n.closure = hex.EncodeToString(h.Sum(nil))
	}
	return nodes, order, nil
}

// hasSuffixPair reports an external test file: name *_test.go with a
// package clause ending in _test.
func hasSuffixPair(fileName, pkgName string) bool {
	return len(fileName) > len("_test.go") && fileName[len(fileName)-len("_test.go"):] == "_test.go" &&
		len(pkgName) > len("_test") && pkgName[len(pkgName)-len("_test"):] == "_test"
}

// topoSort orders the graph imports-first, erroring on cycles.
func topoSort(nodes map[string]*driverNode, roots []string) ([]string, error) {
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	order := make([]string, 0, len(nodes))
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = 1
		for _, imp := range nodes[path].imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	for _, path := range sorted {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// probeCache satisfies facts and findings from the disk cache where the
// closure hashes still match, decoding cached facts into the store and
// cached findings into results.
func (d *Driver) probeCache(cache *factCache, store *FactStore, nodes map[string]*driverNode, order []string, results map[string][]Finding) {
	for _, path := range order {
		n := nodes[path]
		for _, a := range d.Analyzers {
			if a.Facts == nil {
				continue
			}
			entry, ok := cache.load(hashKey("facts", a.Name, n.closure))
			if !ok {
				n.needFacts = append(n.needFacts, a)
				continue
			}
			d.Stats.FactsCached++
			if len(entry.Fact) > 0 {
				fv := a.NewFact()
				if err := json.Unmarshal(entry.Fact, fv); err == nil {
					store.put(a.Name, path, fv)
				}
			}
		}
		if !n.target {
			continue
		}
		if entry, ok := cache.load(hashKey("findings", "bbslint", n.closure)); ok {
			results[path] = append(results[path], entry.Findings...)
		} else {
			n.needDirs = true
		}
		for _, a := range d.Analyzers {
			if a.Applies != nil && !a.Applies(path) {
				continue
			}
			entry, ok := cache.load(hashKey("findings", a.Name, n.closure))
			if !ok {
				n.needFindings = append(n.needFindings, a)
				continue
			}
			d.Stats.FindingsCached++
			results[path] = append(results[path], entry.Findings...)
		}
	}
}

// markLoads flags every package that must be type-checked: those with
// uncached work, plus (transitively) their dependencies, which importers
// need loaded even when the dependencies' own results are all cached.
func (d *Driver) markLoads(nodes map[string]*driverNode, order []string) {
	var need func(path string)
	need = func(path string) {
		n := nodes[path]
		if n.load {
			return
		}
		n.load = true
		for _, imp := range n.imports {
			need(imp)
		}
	}
	for _, path := range order {
		n := nodes[path]
		if len(n.needFacts) > 0 || len(n.needFindings) > 0 || n.needDirs {
			need(path)
		}
	}
}

// schedule type-checks and analyzes every marked package across the worker
// pool, honoring import order: a package becomes ready only when all its
// marked imports completed.
func (d *Driver) schedule(cache *factCache, store *FactStore, nodes map[string]*driverNode, order []string, results map[string][]Finding) error {
	var tasks []string
	for _, path := range order {
		if nodes[path].load {
			tasks = append(tasks, path)
		}
	}
	if len(tasks) == 0 {
		return nil
	}

	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, path := range tasks {
		for _, imp := range nodes[path].imports {
			if nodes[imp].load {
				indeg[path]++
				dependents[imp] = append(dependents[imp], path)
			}
		}
	}

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		ready     []string
		remaining = len(tasks)
		firstErr  error
	)
	for _, path := range tasks {
		if indeg[path] == 0 {
			ready = append(ready, path)
		}
	}

	workers := d.Parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && remaining > 0 && firstErr == nil {
					cond.Wait()
				}
				if remaining == 0 || firstErr != nil {
					mu.Unlock()
					return
				}
				path := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				mu.Unlock()

				found, stats, err := d.analyzeNode(cache, store, nodes[path])

				mu.Lock()
				remaining--
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					results[path] = append(results[path], found...)
					d.Stats.Loaded++
					d.Stats.FactsComputed += stats.FactsComputed
					d.Stats.FindingsComputed += stats.FindingsComputed
					for _, dep := range dependents[path] {
						indeg[dep]--
						if indeg[dep] == 0 {
							ready = append(ready, dep)
						}
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// analyzeNode is one worker task: type-check the package, compute missing
// facts, and run missing diagnostics for targets.
func (d *Driver) analyzeNode(cache *factCache, store *FactStore, n *driverNode) ([]Finding, DriverStats, error) {
	var stats DriverStats
	pkg, err := d.Loader.loadOne(n.path)
	if err != nil {
		return nil, stats, err
	}

	for _, a := range n.needFacts {
		pass := &Pass{
			Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
			Pkg: pkg.Types, Info: pkg.Info, facts: store,
		}
		fact := a.Facts(pass)
		stats.FactsComputed++
		var entry cacheEntry
		if fact != nil {
			store.put(a.Name, n.path, fact)
			if data, err := json.Marshal(fact); err == nil {
				entry.Fact = data
			}
		}
		cache.store(hashKey("facts", a.Name, n.closure), entry)
	}

	var found []Finding
	if n.needDirs || len(n.needFindings) > 0 {
		dirs, bad := collectDirectives(pkg.Fset, pkg.Files)
		if n.needDirs {
			found = append(found, bad...)
			cache.store(hashKey("findings", "bbslint", n.closure), cacheEntry{Findings: bad})
		}
		for _, a := range n.needFindings {
			var fs []Finding
			pass := &Pass{
				Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
				Pkg: pkg.Types, Info: pkg.Info, findings: &fs, facts: store,
			}
			a.Run(pass)
			stats.FindingsComputed++
			fs = applySuppressions(fs, 0, dirs)
			found = append(found, fs...)
			cache.store(hashKey("findings", a.Name, n.closure), cacheEntry{Findings: fs})
		}
	}
	return found, stats, nil
}

// DirectiveCounts tallies the //lint:ignore and //lint:file-ignore
// directives per analyzer across the given packages without type-checking
// anything (parse only). Malformed directives count under "bbslint". It
// backs `bbslint -suppressions` / `make lint-fix-scope`, which keep
// suppression creep visible in review.
func DirectiveCounts(l *Loader, paths []string) (map[string]int, error) {
	counts := map[string]int{}
	fset := token.NewFileSet()
	for _, path := range paths {
		dir := l.Dir(path)
		names, err := l.goFileNames(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		dirs, bad := collectDirectives(fset, files)
		for _, d := range dirs {
			counts[d.analyzer]++
		}
		if len(bad) > 0 {
			counts["bbslint"] += len(bad)
		}
	}
	return counts, nil
}
