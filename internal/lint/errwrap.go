package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the error-handling conventions of the storage layer:
//
//  1. Everywhere: a fmt.Errorf that formats an error value must use %w, so
//     callers can errors.Is/As through the wrap. A %v silently severs the
//     chain that the txdb/sigfile load paths rely on for error reporting.
//  2. In internal/txdb and internal/sigfile — the packages that own file
//     I/O — in internal/serve, whose commit loop is the durability boundary
//     for every write, in internal/shard, which owns the sharded layout
//     and its flat-to-sharded migration, and in internal/pager, whose cold
//     files are only crash-safe if every write, sync, and rename outcome
//     is acted on, a call returning an error must not be discarded as a
//     bare statement (including defer). Assigning to _ is allowed: an
//     explicit discard is a reviewed decision, a bare one is usually an
//     accident.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf wraps errors with %w; txdb/sigfile/shard/serve/pager I/O paths never discard errors silently",
	Run:  runErrWrap,
}

// errDiscardScope names the package subtrees where silently dropping an
// error is an I/O bug rather than a style choice.
var errDiscardScope = []string{"internal/txdb", "internal/sigfile", "internal/serve", "internal/shard", "internal/pager"}

func runErrWrap(pass *Pass) {
	discardScoped := false
	for _, seg := range errDiscardScope {
		if pathHasSegment(pass.Pkg.Path(), seg) {
			discardScoped = true
			break
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.ExprStmt:
				if discardScoped {
					checkDiscard(pass, n.X, "")
				}
			case *ast.DeferStmt:
				if discardScoped {
					checkDiscard(pass, n.Call, "deferred ")
				}
			}
			return true
		})
	}
}

// checkErrorfWrap flags error-typed arguments of fmt.Errorf formatted with
// a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return // non-literal format string: nothing to align verbs against
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		argIdx := 1 + i
		if verb == 'w' || argIdx >= len(call.Args) {
			continue
		}
		t := pass.Info.Types[call.Args[argIdx]].Type
		if isErrorType(t) {
			pass.Reportf(call.Args[argIdx].Pos(),
				"error wrapped with %%%c; use %%w so the chain stays inspectable with errors.Is/As", verb)
		}
	}
}

// formatVerbs returns the verb letter for each argument-consuming verb in
// a Printf-style format string, in order. Width/precision stars consume an
// argument and are returned as '*'.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags, width, precision — '*' consumes an argument of its own.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.123456789[]", rune(c)) {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
			i++
		}
	}
	return verbs
}

// checkDiscard flags a statement-level call whose results include an error.
func checkDiscard(pass *Pass, expr ast.Expr, qualifier string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	t := pass.Info.Types[call].Type
	if t == nil {
		return
	}
	returnsError := false
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				returnsError = true
			}
		}
	default:
		returnsError = isErrorType(t)
	}
	if !returnsError {
		return
	}
	pass.Reportf(call.Pos(),
		"%scall discards its error on an I/O path; handle it or assign to _ to make the discard explicit", qualifier)
}
