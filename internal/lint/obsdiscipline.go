package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// ObsDiscipline keeps the engine's telemetry one-directional: the mining
// engine feeds internal/obs, never the exposition machinery directly. The
// packages that compute results (internal/core, internal/sigfile) must not
// import expvar, net/http/pprof, runtime/pprof or runtime/trace — exposition
// belongs to internal/obs and the cmd front-ends — and must not read the
// wall clock themselves: intervals go through Registry.Tick/PhaseDone, whose
// Tick is free on a nil registry. A direct time.Now in the engine is either
// a phase timer bypassing the registry (breaking the zero-cost-when-disabled
// rule) or timing leaking into results (breaking determinism; the
// determinism analyzer reports that angle separately).
//
// The serving layer (internal/serve) is held to the same clock rule for a
// different reason: its wall-clock reads must go through the injected
// Clock seam so tests control served timestamps. The one sanctioned read —
// SystemClock in clock.go — carries a file-ignore directive. The sharded
// index (internal/shard) sits between the engine and the serving layer and
// follows the engine's rules: its fan-out accounting goes through the
// registry, never through exposition imports or direct clock reads.
//
// The load harness (cmd/bbsload) is in scope for the import ban only: it
// measures the server from outside, so wiring expvar or pprof into the
// generator would confuse its own overhead with the system under test. Its
// wall-clock reads are its job — an open-loop generator schedules sends by
// the wall — so the clock rule is waived there.
var ObsDiscipline = &Analyzer{
	Name: "obsdiscipline",
	Doc:  "engine packages must route telemetry through internal/obs: no expvar/pprof imports, no direct wall-clock reads",
	Applies: func(path string) bool {
		return pathHasSegment(path, "internal/core") || pathHasSegment(path, "internal/sigfile") ||
			pathHasSegment(path, "internal/serve") || pathHasSegment(path, "internal/shard") ||
			pathHasSegment(path, "cmd/bbsload")
	},
	Run: runObsDiscipline,
}

// obsBannedImports are the exposition packages the engine must not touch.
var obsBannedImports = map[string]string{
	"expvar":         "publish metrics from internal/obs instead",
	"net/http/pprof": "profiling endpoints belong to the -http mux in internal/obs",
	"runtime/pprof":  "profiling is driven by the cmd front-ends",
	"runtime/trace":  "execution tracing is driven by the cmd front-ends",
}

func runObsDiscipline(pass *Pass) {
	// The load generator keeps the exposition-import ban but is free to read
	// the wall clock: open-loop pacing and client-side latency are wall-clock
	// measurements by definition.
	clockExempt := pathHasSegment(pass.Pkg.Path(), "cmd/bbsload")
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := obsBannedImports[p]; banned {
				pass.Reportf(imp.Pos(),
					"import of %s in an engine package; %s", p, why)
			}
		}
		if clockExempt {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[se.Sel].(*types.Func)
			if !ok {
				return true
			}
			if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "time" &&
				(fn.Name() == "Now" || fn.Name() == "Since") {
				pass.Reportf(se.Pos(),
					"time.%s in an engine package; route intervals through obs.Registry.Tick/PhaseDone so disabled telemetry stays free", fn.Name())
			}
			return true
		})
	}
}
