package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Determinism enforces the engine's reproducibility contract: a mining run
// with Workers: N returns a Result byte-identical to Workers: 1, and two
// runs over the same data return the same bytes, full stop. The contract
// is what makes the parallel engine testable at all (TestParallelDeterminism
// pins it), so the packages that compute results must not consult wall
// clocks, random sources, or Go's randomized map iteration order:
//
//   - time.Now (and time.Since) — results must not depend on when they ran;
//   - math/rand and math/rand/v2 — seeded or not, random draws do not
//     belong in result computation;
//   - range over a map — iteration order changes run to run; iterate a
//     sorted key slice, or suppress with a reason the order provably cannot
//     reach the output.
//
// The experiment harness (internal/exp) measures wall-clock time and the
// dataset generators (internal/weblog, internal/quest) are seeded random by
// design, so those packages are allowlisted, as are the cmd and examples
// front-ends whose timing output is presentation, not result.
//
// The load harness (cmd/bbsload) is the exception among the cmds: its plan
// must be reproducible from the -seed flag so a CI regression gate compares
// like against like. It may read the clock (pacing) and draw random numbers
// (workload mix), but every draw must come from an explicitly constructed,
// flag-seeded source — so a relaxed rule set applies there: no package-level
// math/rand draws (the global source), no rand.Seed, and no time-seeded
// sources (time.Now inside rand.New/rand.NewSource arguments).
var Determinism = &Analyzer{
	Name:    "determinism",
	Doc:     "result-computing packages must avoid time.Now, math/rand, and map iteration order",
	Applies: determinismApplies,
	Run:     runDeterminism,
}

// determinismAllowlist names the package subtrees whose nondeterminism is
// by design.
var determinismAllowlist = []string{
	"internal/exp",    // benchmark harness: wall-clock measurement is its job
	"internal/weblog", // synthetic dataset generator: seeded randomness
	"internal/quest",  // synthetic dataset generator: seeded randomness
	"internal/obs",    // telemetry: phase timers read the clock by design
	"cmd",             // CLI front-ends: timing is presentation
	"examples",        // ditto
}

func determinismApplies(path string) bool {
	// cmd/bbsload sits under the cmd allowlist but opts back in to the
	// relaxed loadgen rules: reproducible-from-flag-seed is part of its
	// contract with the CI regression gate.
	if pathHasSegment(path, "cmd/bbsload") {
		return true
	}
	for _, seg := range determinismAllowlist {
		if pathHasSegment(path, seg) {
			return false
		}
	}
	return true
}

func runDeterminism(pass *Pass) {
	if pathHasSegment(pass.Pkg.Path(), "cmd/bbsload") {
		runLoadgenDeterminism(pass)
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in a result-computing package; randomness breaks run reproducibility", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[n.Sel].(*types.Func); ok {
					if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "time" &&
						(fn.Name() == "Now" || fn.Name() == "Since") {
						pass.Reportf(n.Pos(),
							"time.%s in a result-computing package; results must not depend on when they ran", fn.Name())
					}
				}
			case *ast.RangeStmt:
				t := pass.Info.Types[n.X].Type
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"range over a map: iteration order is nondeterministic; iterate a sorted key slice, or suppress with a reason the order cannot affect results")
				}
			}
			return true
		})
	}
}

// randSourceCtors are the math/rand constructors a loadgen package may call
// at package level: they build explicit sources rather than drawing from the
// shared global one.
var randSourceCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// runLoadgenDeterminism is the relaxed rule set for cmd/bbsload. The
// generator legitimately reads the clock and draws random numbers, but the
// plan it fires must be a pure function of the -seed flag, so three things
// are still errors: drawing from the package-level global source (its state
// is shared and seedable from anywhere), calling rand.Seed at all, and
// seeding an explicit source from the clock.
func runLoadgenDeterminism(pass *Pass) {
	// rand.New(rand.NewSource(time.Now()...)) nests two sanctioned
	// constructors around one clock read; seen dedups it to one finding.
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[se.Sel].(*types.Func)
			if !ok {
				return true
			}
			pkg := fn.Pkg()
			if pkg == nil || !isRandPkg(pkg.Path()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method on an explicitly constructed source
			}
			switch {
			case fn.Name() == "Seed":
				pass.Reportf(se.Pos(),
					"rand.Seed in a load generator; construct a source with rand.NewSource(seed) from the -seed flag instead")
			case !randSourceCtors[fn.Name()]:
				pass.Reportf(se.Pos(),
					"%s.%s draws from the global source; a load plan must come from an explicit flag-seeded source", pkg.Name(), fn.Name())
			default:
				// A sanctioned constructor — but its seed must not be the
				// clock, or two runs with the same -seed diverge anyway.
				reportTimeSeededCtor(pass, f, se, seen)
			}
			return true
		})
	}
}

// reportTimeSeededCtor reports a time.Now (or time.Since) reachable inside
// the arguments of the rand constructor call whose callee selector is ctor,
// at most once per clock-read position.
func reportTimeSeededCtor(pass *Pass, f *ast.File, ctor *ast.SelectorExpr, seen map[token.Pos]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Fun != ctor {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				inner, ok := an.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[inner.Sel].(*types.Func)
				if !ok {
					return true
				}
				if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "time" &&
					(fn.Name() == "Now" || fn.Name() == "Since") && !seen[inner.Pos()] {
					seen[inner.Pos()] = true
					pass.Reportf(inner.Pos(),
						"time-seeded random source; seed from the -seed flag so runs are reproducible")
				}
				return true
			})
		}
		return false
	})
}
