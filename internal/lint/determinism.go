package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism enforces the engine's reproducibility contract: a mining run
// with Workers: N returns a Result byte-identical to Workers: 1, and two
// runs over the same data return the same bytes, full stop. The contract
// is what makes the parallel engine testable at all (TestParallelDeterminism
// pins it), so the packages that compute results must not consult wall
// clocks, random sources, or Go's randomized map iteration order:
//
//   - time.Now (and time.Since) — results must not depend on when they ran;
//   - math/rand and math/rand/v2 — seeded or not, random draws do not
//     belong in result computation;
//   - range over a map — iteration order changes run to run; iterate a
//     sorted key slice, or suppress with a reason the order provably cannot
//     reach the output.
//
// The experiment harness (internal/exp) measures wall-clock time and the
// dataset generators (internal/weblog, internal/quest) are seeded random by
// design, so those packages are allowlisted, as are the cmd and examples
// front-ends whose timing output is presentation, not result.
var Determinism = &Analyzer{
	Name:    "determinism",
	Doc:     "result-computing packages must avoid time.Now, math/rand, and map iteration order",
	Applies: determinismApplies,
	Run:     runDeterminism,
}

// determinismAllowlist names the package subtrees whose nondeterminism is
// by design.
var determinismAllowlist = []string{
	"internal/exp",    // benchmark harness: wall-clock measurement is its job
	"internal/weblog", // synthetic dataset generator: seeded randomness
	"internal/quest",  // synthetic dataset generator: seeded randomness
	"internal/obs",    // telemetry: phase timers read the clock by design
	"cmd",             // CLI front-ends: timing is presentation
	"examples",        // ditto
}

func determinismApplies(path string) bool {
	for _, seg := range determinismAllowlist {
		if pathHasSegment(path, seg) {
			return false
		}
	}
	return true
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in a result-computing package; randomness breaks run reproducibility", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[n.Sel].(*types.Func); ok {
					if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "time" &&
						(fn.Name() == "Now" || fn.Name() == "Since") {
						pass.Reportf(n.Pos(),
							"time.%s in a result-computing package; results must not depend on when they ran", fn.Name())
					}
				}
			case *ast.RangeStmt:
				t := pass.Info.Types[n.X].Type
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"range over a map: iteration order is nondeterministic; iterate a sorted key slice, or suppress with a reason the order cannot affect results")
				}
			}
			return true
		})
	}
}
