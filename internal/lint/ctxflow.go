package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow keeps the commit and mine paths cancellable: an unbounded
// `for {}` loop in internal/core, internal/serve or internal/shard must
// observe cancellation on each iteration — receive from a channel (the
// ctx.Done() pattern), run a select, or consult Context.Err() — directly
// or through a same-package helper like the miner's cancelled(). A commit
// loop that spins without a cancellation check turns graceful drain into a
// goroutine leak and a mine that ignores its deadline holds a worker slot
// forever; both failure modes only show up under production load.
//
// Bounded loops (a condition or a range clause) are exempt: the engine's
// grow/evict/batch loops terminate by construction, and flagging them
// would bury the real findings in noise.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "unbounded for-loops in core/serve/shard must observe cancellation each iteration",
	Applies: func(path string) bool {
		return pathHasSegment(path, "internal/core") ||
			pathHasSegment(path, "internal/serve") ||
			pathHasSegment(path, "internal/shard")
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	decls := packageFuncBodies(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if observesCancellation(pass, loop.Body, decls, 2) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"unbounded loop never observes cancellation; receive from ctx.Done(), select, or check Context.Err() each iteration")
			return true
		})
	}
}

// packageFuncBodies indexes the package's function declarations by their
// object, so the cancellation scan can follow same-package helper calls.
func packageFuncBodies(pass *Pass) map[*types.Func]*ast.BlockStmt {
	decls := map[*types.Func]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd.Body
			}
		}
	}
	return decls
}

// observesCancellation reports whether the block contains a channel
// receive, a select, a Context.Err() call, or (up to depth levels deep) a
// call to a same-package function that does.
func observesCancellation(pass *Pass, body ast.Node, decls map[*types.Func]*ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isContextErrCall(pass, n) {
				found = true
				return false
			}
			if depth > 0 {
				if fn := calleeFunc(pass, n); fn != nil {
					if callee, ok := decls[fn]; ok && observesCancellation(pass, callee, decls, depth-1) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isContextErrCall recognizes x.Err() where x is a context.Context.
func isContextErrCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Err" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	named := derefNamed(tv.Type)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
