package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// jsonFinding is the machine-readable rendering of one finding. Paths are
// module-root-relative with forward slashes so the output is stable across
// checkouts — CI diffs the -json output of two runs byte for byte.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// relFile renders a finding's filename relative to the module root.
func relFile(moduleRoot, name string) string {
	if rel, err := filepath.Rel(moduleRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// EmitJSON writes the findings as an indented JSON array (an empty run
// emits []). The findings must already be sorted; the emitter adds nothing
// nondeterministic, so equal finding sets render byte-identically.
func EmitJSON(w io.Writer, findings []Finding, moduleRoot string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relFile(moduleRoot, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 document model — just the subset CI code-scanning
// uploads and artifact viewers consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifToolDriver `json:"driver"`
}

type sarifToolDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}

type sarifResult struct {
	RuleID  string `json:"ruleId"`
	Level   string `json:"level"`
	Message struct {
		Text string `json:"text"`
	} `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical struct {
		Artifact struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn,omitempty"`
		} `json:"region"`
	} `json:"physicalLocation"`
}

// EmitSARIF writes the findings as a SARIF 2.1.0 log with one rule per
// analyzer (plus the "bbslint" pseudo-rule for malformed suppressions),
// suitable for CI annotation uploads.
func EmitSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, moduleRoot string) error {
	var run sarifRun
	run.Tool.Driver.Name = "bbslint"
	for _, a := range analyzers {
		r := sarifRule{ID: a.Name}
		r.Desc.Text = a.Doc
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, r)
	}
	dir := sarifRule{ID: "bbslint"}
	dir.Desc.Text = "suppression directives must name an analyzer and a reason"
	run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, dir)

	run.Results = make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		var res sarifResult
		res.RuleID = f.Analyzer
		res.Level = "error"
		res.Message.Text = f.Message
		var loc sarifLocation
		loc.Physical.Artifact.URI = relFile(moduleRoot, f.Pos.Filename)
		loc.Physical.Region.StartLine = f.Pos.Line
		loc.Physical.Region.StartColumn = f.Pos.Column
		res.Locations = append(res.Locations, loc)
		run.Results = append(run.Results, res)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
