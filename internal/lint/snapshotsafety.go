package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SnapshotSafety enforces the serving layer's core contract: a value
// published as a snapshot — stored through an atomic.Pointer, or returned
// from a Snapshot() or Merge call — is write-once. Readers on other
// goroutines hold it with no lock; one field store or mutating method call
// after publication corrupts the byte-identity every determinism test
// assumes, silently, and only under concurrency.
//
// The analysis is flow-sensitive within a function and fact-driven across
// packages. Each package exports (snapshotFact) which of its functions
// return published values and which methods of its types mutate their
// receiver; a dependent package's diagnostics consume those facts, so
// internal/serve calling sigfile's BBS.Insert on a snapshot is flagged
// without the analyzer hard-coding either package.
//
// Within a function, a variable's publication level changes over source
// positions: it becomes published when assigned from a publishing call or
// when passed to atomic.Pointer.Store, and reverts when reassigned a fresh
// value. Containers that hold published elements ("holds" level) may be
// freely appended to and indexed into, but an element read back out is
// published. Parameters and receivers are never published — masters are
// handed to their single writer by parameter, and a type's own methods
// build their result before publication.
var SnapshotSafety = &Analyzer{
	Name: "snapshotsafety",
	Doc:  "values published via atomic.Pointer.Store or Snapshot()/Merge are write-once",
	Applies: func(path string) bool {
		return pathHasSegment(path, "internal/serve") ||
			pathHasSegment(path, "internal/shard") ||
			pathHasSegment(path, "internal/sigfile") ||
			pathHasSegment(path, "internal/core") ||
			pathHasSegment(path, "internal/pager")
	},
	Run:     runSnapshotSafety,
	Facts:   snapshotFacts,
	NewFact: func() any { return new(snapshotFact) },
}

// snapshotFact is the per-package fact: which functions publish and which
// methods mutate. Keys are fully qualified ("pkg/path.Type.Method" or
// "pkg/path.Func" for publishers, "pkg/path.Type" for mutators).
type snapshotFact struct {
	// Publishers maps a function key to "published" (its result is a
	// shared snapshot) or "holds" (its result is a container of them).
	Publishers map[string]string `json:"publishers,omitempty"`
	// Mutators maps a type key to the methods that mutate their receiver,
	// directly or through same-type method calls.
	Mutators map[string][]string `json:"mutators,omitempty"`
}

// Publication levels, ordered: a bigger level is more published.
const (
	lvlNone = iota
	lvlHolds
	lvlPublished
)

func levelName(l int) string {
	if l == lvlHolds {
		return "holds"
	}
	return "published"
}

func levelOf(name string) int {
	if name == "holds" {
		return lvlHolds
	}
	return lvlPublished
}

// typeKey names a defined type across packages.
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// funcKey names a function or method across packages.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if recv := recvNamed(fn); recv != nil {
		key += recv.Obj().Name() + "."
	}
	return key + fn.Name()
}

// recvNamed returns the named type of fn's receiver, or nil for plain
// functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return derefNamed(sig.Recv().Type())
}

// derefNamed unwraps pointers down to a named type, or nil.
func derefNamed(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isAtomicPointerMethod reports a call to sync/atomic's Pointer[T].Load or
// Store through the selector.
func isAtomicPointerMethod(pass *Pass, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	named := derefNamed(tv.Type)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// snapshotFacts computes the package's publisher and mutator fact.
func snapshotFacts(pass *Pass) any {
	fact := &snapshotFact{
		Publishers: map[string]string{},
		Mutators:   mutatorMethods(pass),
	}
	// Publisher discovery is a package-level fixpoint: a function that
	// returns the result of another local publisher is itself a publisher.
	// Three rounds bound the chains this codebase (and any sane one) has.
	for round := 0; round < 3; round++ {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				st := newSnapState(pass, fact)
				st.buildEvents(fd.Body)
				lvl := lvlNone
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false // a closure's returns are not the function's
					}
					ret, ok := n.(*ast.ReturnStmt)
					if !ok {
						return true
					}
					for _, res := range ret.Results {
						if l := st.exprLevel(res, ret.End()); l > lvl {
							lvl = l
						}
					}
					return true
				})
				if lvl > lvlNone {
					fact.Publishers[funcKey(fn)] = levelName(lvl)
				}
			}
		}
	}
	if len(fact.Publishers) == 0 && len(fact.Mutators) == 0 {
		return nil
	}
	return fact
}

// mutatorMethods finds, for each type defined in the package, the methods
// that mutate their receiver: direct field/element stores, delete/clear/
// copy into receiver state, or (transitively) calls to same-type mutating
// methods on the receiver. Method calls on receiver sub-fields do not
// count — b.stats.Add() mutates the stats object, which has its own
// synchronization, not the snapshot structure itself.
func mutatorMethods(pass *Pass) map[string][]string {
	type methodInfo struct {
		fn      *types.Func
		key     string   // type key
		mutates bool     // direct mutation observed
		calls   []string // same-type methods invoked on the receiver
	}
	var methods []*methodInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := recvNamed(fn)
			if named == nil || typeKey(named) == "" {
				continue
			}
			var recv *types.Var
			if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				recv, _ = pass.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
			}
			if recv == nil {
				continue
			}
			mi := &methodInfo{fn: fn, key: typeKey(named)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if storesIntoVar(pass, lhs, recv) {
							mi.mutates = true
						}
					}
				case *ast.IncDecStmt:
					if storesIntoVar(pass, n.X, recv) {
						mi.mutates = true
					}
				case *ast.CallExpr:
					if name, arg := builtinWrite(pass, n); name != "" && arg != nil {
						if v, steps := rootVar(pass, arg); v == recv && steps >= 0 {
							mi.mutates = true
						}
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.Info.Uses[id] == recv {
							mi.calls = append(mi.calls, sel.Sel.Name)
						}
					}
				}
				return true
			})
			methods = append(methods, mi)
		}
	}

	// Transitive closure: a method calling a mutating same-type method on
	// its receiver mutates too. Bounded rounds keep this deterministic.
	for round := 0; round < 4; round++ {
		for _, mi := range methods {
			if mi.mutates {
				continue
			}
			for _, callee := range mi.calls {
				for _, other := range methods {
					if other.key == mi.key && other.fn.Name() == callee && other.mutates {
						mi.mutates = true
					}
				}
			}
		}
	}

	out := map[string][]string{}
	for _, mi := range methods {
		if mi.mutates {
			out[mi.key] = append(out[mi.key], mi.fn.Name())
		}
	}
	for _, mi := range methods {
		sort.Strings(out[mi.key])
	}
	return out
}

// storesIntoVar reports whether lhs writes through v's structure: at least
// one field selection, index or dereference between the store and the
// variable (a plain `v = x` only rebinds the local).
func storesIntoVar(pass *Pass, lhs ast.Expr, v *types.Var) bool {
	root, steps := rootVar(pass, lhs)
	return root == v && steps >= 1
}

// rootVar walks a selector/index/deref chain to its base variable,
// counting the steps taken.
func rootVar(pass *Pass, e ast.Expr) (*types.Var, int) {
	steps := 0
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel := pass.Info.Selections[x]; sel != nil && sel.Kind() != types.FieldVal {
				return nil, 0 // method value — not a storage path
			}
			e = x.X
			steps++
		case *ast.IndexExpr:
			e = x.X
			steps++
		case *ast.StarExpr:
			e = x.X
			steps++
		case *ast.Ident:
			v, _ := pass.Info.Uses[x].(*types.Var)
			if v == nil {
				v, _ = pass.Info.Defs[x].(*types.Var)
			}
			return v, steps
		default:
			return nil, 0
		}
	}
}

// builtinWrite recognizes delete/clear/copy calls, returning the builtin
// name and the written-to argument.
func builtinWrite(pass *Pass, call *ast.CallExpr) (string, ast.Expr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", nil
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return "", nil
	}
	switch id.Name {
	case "delete", "clear", "copy":
		if len(call.Args) > 0 {
			return id.Name, call.Args[0]
		}
	}
	return "", nil
}

// pubEvent is one change of a variable's publication level.
type pubEvent struct {
	pos   token.Pos
	level int
}

// snapState is the per-function flow state.
type snapState struct {
	pass   *Pass
	local  *snapshotFact // the fact under construction (facts phase) or the completed own fact
	events map[*types.Var][]pubEvent
}

func newSnapState(pass *Pass, local *snapshotFact) *snapState {
	return &snapState{pass: pass, local: local, events: map[*types.Var][]pubEvent{}}
}

// buildEvents computes the publication events of every local in the body.
// Event construction consults levels, which depend on events, so it runs a
// bounded fixpoint — three rounds cover chains like s := load(); t := s.
func (st *snapState) buildEvents(body *ast.BlockStmt) {
	for round := 0; round < 3; round++ {
		next := map[*types.Var][]pubEvent{}
		add := func(v *types.Var, pos token.Pos, level int) {
			if v != nil {
				next[v] = append(next[v], pubEvent{pos, level})
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					lvl := st.exprLevel(n.Rhs[0], n.End())
					for _, lhs := range n.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							add(identVar(st.pass, id), n.End(), lvl)
						}
					}
					return true
				}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						add(identVar(st.pass, id), n.End(), st.exprLevel(n.Rhs[i], n.End()))
						continue
					}
					// An element store of a published value promotes the
					// container to holds: after snaps[i] = sh.snap.Load(),
					// reads back out of snaps yield published values.
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if st.exprLevel(n.Rhs[i], n.End()) == lvlPublished {
							if id, ok := ast.Unparen(idx.X).(*ast.Ident); ok {
								if v := identVar(st.pass, id); st.levelAt(v, n.Pos()) == lvlNone {
									add(v, n.End(), lvlHolds)
								}
							}
						}
					}
				}
			case *ast.RangeStmt:
				lvl := st.exprLevel(n.X, n.X.End())
				if lvl == lvlNone {
					return true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					add(identVar(st.pass, id), n.X.End(), lvlPublished)
				}
				if lvl == lvlPublished {
					if id, ok := n.Key.(*ast.Ident); ok {
						add(identVar(st.pass, id), n.X.End(), lvlPublished)
					}
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || !isAtomicPointerMethod(st.pass, sel, "Store") || len(n.Args) != 1 {
					return true
				}
				arg := ast.Unparen(n.Args[0])
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					arg = ast.Unparen(u.X)
				}
				if id, ok := arg.(*ast.Ident); ok {
					add(identVar(st.pass, id), n.End(), lvlPublished)
				}
			}
			return true
		})
		st.events = next
	}
}

// identVar resolves an identifier to its variable object.
func identVar(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.Info.Uses[id].(*types.Var)
	return v
}

// levelAt returns v's publication level at position p: the level set by
// the latest event strictly before p (events are scanned, not assumed
// sorted).
func (st *snapState) levelAt(v *types.Var, p token.Pos) int {
	lvl := lvlNone
	best := token.NoPos
	for _, ev := range st.events[v] {
		if ev.pos < p && (best == token.NoPos || ev.pos >= best) {
			best = ev.pos
			lvl = ev.level
		}
	}
	return lvl
}

// exprLevel evaluates an expression's publication level at position p.
func (st *snapState) exprLevel(e ast.Expr, p token.Pos) int {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return st.levelAt(identVar(st.pass, x), p)
	case *ast.SelectorExpr:
		if sel := st.pass.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			if st.exprLevel(x.X, p) == lvlPublished {
				return lvlPublished
			}
		}
		return lvlNone
	case *ast.IndexExpr:
		if st.exprLevel(x.X, p) >= lvlHolds {
			return lvlPublished
		}
		return lvlNone
	case *ast.StarExpr:
		return st.exprLevel(x.X, p)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return st.exprLevel(x.X, p)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if st.exprLevel(elt, p) == lvlPublished {
				return lvlHolds
			}
		}
		return lvlNone
	case *ast.TypeAssertExpr:
		return st.exprLevel(x.X, p)
	case *ast.CallExpr:
		return st.callLevel(x, p)
	}
	return lvlNone
}

// callLevel evaluates the publication level of a call's result.
func (st *snapState) callLevel(call *ast.CallExpr, p token.Pos) int {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := st.pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
			// append(c, pub...) yields a holds-container; otherwise the
			// result keeps the first argument's level.
			for _, arg := range call.Args[1:] {
				if st.exprLevel(arg, p) == lvlPublished {
					return lvlHolds
				}
			}
			if len(call.Args) > 0 {
				return st.exprLevel(call.Args[0], p)
			}
			return lvlNone
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isAtomicPointerMethod(st.pass, sel, "Load") {
		return lvlPublished
	}
	fn := calleeFunc(st.pass, call)
	if fn == nil {
		return lvlNone
	}
	// The repository-wide naming contract: Snapshot() and Merge return
	// write-once views, whichever package declares them.
	if (fn.Name() == "Snapshot" || fn.Name() == "Merge") && hasResults(fn) {
		return lvlPublished
	}
	return st.publisherLevel(fn)
}

// hasResults reports whether fn returns anything.
func hasResults(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Results().Len() > 0
}

// publisherLevel looks a callee up in the publisher facts: the local
// package's in-progress fact first, then the exported fact of the callee's
// package.
func (st *snapState) publisherLevel(fn *types.Func) int {
	key := funcKey(fn)
	if key == "" {
		return lvlNone
	}
	if st.local != nil {
		if name, ok := st.local.Publishers[key]; ok {
			return levelOf(name)
		}
	}
	if fn.Pkg() != nil {
		if fact, ok := st.pass.Fact(fn.Pkg().Path()).(*snapshotFact); ok && fact != nil {
			if name, ok := fact.Publishers[key]; ok {
				return levelOf(name)
			}
		}
	}
	return lvlNone
}

// mutatorNamed reports whether method name mutates receivers of the named
// type, per the type's package fact.
func (st *snapState) mutatorNamed(named *types.Named, name string) bool {
	key := typeKey(named)
	if key == "" {
		return false
	}
	if st.local != nil {
		for _, m := range st.local.Mutators[key] {
			if m == name {
				return true
			}
		}
	}
	if pkg := named.Obj().Pkg(); pkg != nil {
		if fact, ok := st.pass.Fact(pkg.Path()).(*snapshotFact); ok && fact != nil {
			for _, m := range fact.Mutators[key] {
				if m == name {
					return true
				}
			}
		}
	}
	return false
}

// runSnapshotSafety is the diagnostics pass.
func runSnapshotSafety(pass *Pass) {
	var local *snapshotFact
	if f, ok := pass.Fact(pass.Pkg.Path()).(*snapshotFact); ok {
		local = f
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := newSnapState(pass, local)
			st.buildEvents(fd.Body)
			st.checkMutations(fd.Body)
		}
	}
}

// checkMutations reports every write through a published value.
func (st *snapState) checkMutations(body *ast.BlockStmt) {
	report := func(pos token.Pos, what string) {
		st.pass.Reportf(pos, "%s a published snapshot; published values are write-once "+
			"(mutate the master before Store/Snapshot, or work on a QueryClone)", what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if base := writeBase(lhs); base != nil && st.exprLevel(base, lhs.Pos()) == lvlPublished {
					report(lhs.Pos(), "stores into")
				}
			}
		case *ast.IncDecStmt:
			if base := writeBase(n.X); base != nil && st.exprLevel(base, n.Pos()) == lvlPublished {
				report(n.Pos(), "increments a field of")
			}
		case *ast.CallExpr:
			if name, arg := builtinWrite(st.pass, n); name != "" && arg != nil {
				if st.exprLevel(arg, n.Pos()) == lvlPublished {
					report(n.Pos(), name+" on")
				}
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := st.pass.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			named := derefNamed(selection.Recv())
			if named == nil {
				return true
			}
			if st.exprLevel(sel.X, n.Pos()) == lvlPublished && st.mutatorNamed(named, sel.Sel.Name) {
				report(n.Pos(), "calls mutating method "+named.Obj().Name()+"."+sel.Sel.Name+" on")
			}
		}
		return true
	})
}

// writeBase returns the expression whose object a store mutates: the X of
// a selector, index or deref on the left-hand side. A plain identifier
// store only rebinds a local and returns nil. Storing INTO an element of a
// holds-container is building, not mutating, so only the published level
// of the base is ever flagged by the caller.
func writeBase(lhs ast.Expr) ast.Expr {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return x.X
	case *ast.IndexExpr:
		return x.X
	case *ast.StarExpr:
		return x.X
	}
	return nil
}
