package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLife makes every goroutine the serving layer spawns provably
// drainable: the spawned function must signal completion — close a
// channel, send on one, call WaitGroup.Done — or observe cancellation
// through a select, directly or via a same-package helper. The engine's
// graceful shutdown waits for its commit loops through exactly such
// signals (shardLoop's deferred close of loopDone); a goroutine with no
// join signal and no cancellation path is a leak the drain can neither
// wait for nor stop, and it keeps mutating state while the process saves
// its index.
//
// A plain channel receive is deliberately NOT a join signal: a goroutine
// ranging over a work channel does terminate when the channel closes, but
// nothing can wait for its in-flight work to finish — precisely the bug
// this analyzer exists to catch.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "goroutines in serve/shard must be joined (close/send/Done) or ctx-cancelled",
	Applies: func(path string) bool {
		return pathHasSegment(path, "internal/serve") ||
			pathHasSegment(path, "internal/shard")
	},
	Run: runGoroutineLife,
}

func runGoroutineLife(pass *Pass) {
	decls := packageFuncBodies(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, g, decls)
			if body != nil && signalsCompletion(pass, body, decls, 2) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine has no join signal (close/send/WaitGroup.Done) and no select on cancellation; it leaks on drain")
			return true
		})
	}
}

// spawnedBody resolves the body of the function a go statement launches:
// a function literal's own body, or a same-package declaration's. Nil when
// the target is outside the package — an unprovable spawn is a finding.
func spawnedBody(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.BlockStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(pass, g.Call); fn != nil {
		return decls[fn]
	}
	return nil
}

// signalsCompletion reports whether the block closes a channel, sends on
// one, calls WaitGroup.Done, or selects — here or (up to depth levels) in
// a same-package callee.
func signalsCompletion(pass *Pass, body ast.Node, decls map[*types.Func]*ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					found = true
					return false
				}
			}
			if isWaitGroupDone(pass, n) {
				found = true
				return false
			}
			if depth > 0 {
				if fn := calleeFunc(pass, n); fn != nil {
					if callee, ok := decls[fn]; ok && signalsCompletion(pass, callee, decls, depth-1) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupDone recognizes wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	named := derefNamed(tv.Type)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
