// Package shard partitions the BBS horizontally: N self-contained shards,
// each owning its own slices, exact 1-itemset counters, per-slice popcounts,
// transaction store and epoch. Transactions are routed round-robin by global
// ordinal — position g lives in shard g mod N at local position g div N —
// so the shards stay within one row of each other and a global position maps
// to its shard with two integer ops.
//
// The support of an itemset is a sum over disjoint transaction sets, so
// every count fans out to the shards and merges by shard index — a fixed,
// deterministic order, mirroring the parallel engine's merge-by-seq
// discipline. A full mining run goes the other way: Merge block-concatenates
// the shards into one private index (a row permutation of the unsharded
// index), and every mined pattern, support, exactness flag and funnel
// counter is byte-identical to Shards:1 because all of them are functions of
// per-row predicates and their sums, never of row order.
package shard

import (
	"fmt"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
)

// Index is the sharded BBS: N per-shard sigfile indexes behind round-robin
// routing. One shard behaves exactly like a plain *sigfile.BBS (Merge
// returns the part itself), so the unsharded path is the sharded path with
// N = 1, not a separate code path.
type Index struct {
	parts []*sigfile.BBS
	obs   *obs.Registry // per-shard fan-out accounting; nil disables it
}

// NewIndex returns an empty sharded index: shards parts sharing one hasher
// and one accounting sink.
func NewIndex(h sighash.Hasher, shards int, stats *iostat.Stats) (*Index, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	parts := make([]*sigfile.BBS, shards)
	for i := range parts {
		parts[i] = sigfile.New(h, stats)
	}
	return &Index{parts: parts}, nil
}

// FromParts wraps existing per-shard indexes. The parts must satisfy the
// round-robin length invariant (each shard within one row of the next —
// part i holds ceil((n-i)/N) rows), or global positions would not route.
func FromParts(parts []*sigfile.BBS) (*Index, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no parts")
	}
	n := 0
	for _, p := range parts {
		n += p.Len()
	}
	for i, p := range parts {
		want := (n - i + len(parts) - 1) / len(parts)
		if p.Len() != want {
			return nil, fmt.Errorf("shard: part %d holds %d rows, round-robin layout over %d rows needs %d",
				i, p.Len(), n, want)
		}
	}
	return &Index{parts: parts}, nil
}

// Shards returns the shard count N.
func (x *Index) Shards() int { return len(x.parts) }

// Part returns shard s's index.
func (x *Index) Part(s int) *sigfile.BBS { return x.parts[s] }

// Len returns the total number of transactions across all shards.
func (x *Index) Len() int {
	n := 0
	for _, p := range x.parts {
		n += p.Len()
	}
	return n
}

// Live returns the total number of non-deleted transactions.
func (x *Index) Live() int {
	n := 0
	for _, p := range x.parts {
		n += p.Live()
	}
	return n
}

// Deleted returns the total number of tombstoned transactions.
func (x *Index) Deleted() int {
	n := 0
	for _, p := range x.parts {
		n += p.Deleted()
	}
	return n
}

// Route maps a global ordinal position to its (shard, local position) pair.
func (x *Index) Route(pos int) (shard, local int) {
	return pos % len(x.parts), pos / len(x.parts)
}

// Insert indexes one transaction at the next global ordinal position and
// returns that position. Routing is round-robin, which keeps the shards
// balanced and the local position equal to pos div N by induction.
func (x *Index) Insert(items []int32) int {
	pos := x.Len()
	x.parts[pos%len(x.parts)].Insert(items)
	return pos
}

// Delete tombstones the transaction at global position pos.
func (x *Index) Delete(pos int, items []int32) error {
	if pos < 0 || pos >= x.Len() {
		return fmt.Errorf("shard: position %d out of range [0,%d)", pos, x.Len())
	}
	s, local := x.Route(pos)
	if err := x.parts[s].Delete(local, items); err != nil {
		return fmt.Errorf("shard: deleting position %d (shard %d local %d): %w", pos, s, local, err)
	}
	return nil
}

// IsLive reports whether the transaction at global position pos is live.
func (x *Index) IsLive(pos int) bool {
	s, local := x.Route(pos)
	return x.parts[s].IsLive(local)
}

// SetObserver attaches (nil: detaches) a registry for per-shard fan-out
// accounting. Call between runs, not during one.
func (x *Index) SetObserver(o *obs.Registry) { x.obs = o }

// CountItemSet estimates the itemset's support by deterministic scatter-
// gather: each shard ANDs its own slices, and the per-shard estimates merge
// by shard index into one sum. The returned vectors are the per-shard
// candidate masks, in shard order — the set bits of vector s are local
// positions of shard s. By the paper's Lemma 4 applied per shard, the sum
// never undercounts the true support.
func (x *Index) CountItemSet(items []int32) (int, []*bitvec.Vector) {
	dsts := make([]*bitvec.Vector, len(x.parts))
	for i := range dsts {
		dsts[i] = bitvec.New(x.parts[i].Len())
	}
	var posBuf []int
	return x.CountIntoBuf(dsts, items, &posBuf), dsts
}

// CountIntoBuf is CountItemSet with caller-owned per-shard result vectors
// and a shared position scratch, for loops that estimate many itemsets.
// With tracing on, each shard's contribution becomes a shard-tagged
// shardcount event, so a sampled trace shows how an estimate split across
// the shards.
func (x *Index) CountIntoBuf(dsts []*bitvec.Vector, items []int32, posBuf *[]int) int {
	est := 0
	trace := x.obs.Tracing()
	for s, p := range x.parts {
		n := p.CountIntoBuf(dsts[s], items, posBuf)
		est += n
		x.obs.AddShardCount(s)
		if trace {
			x.obs.Emit(obs.Event{Kind: "shardcount", Subtree: -1, Shard: obs.ShardTag(s), Items: items, Est: n})
		}
	}
	return est
}

// SetCompression sets the adaptive storage policy on every shard and
// re-encodes each shard's slices to match (see sigfile.SetCompression).
// Per-shard, not global: each part picks encodings from its own densities.
func (x *Index) SetCompression(on bool) {
	for _, p := range x.parts {
		p.SetCompression(on)
	}
}

// Compressed reports whether the adaptive storage policy is on. The policy
// is set index-wide, so part 0 speaks for all.
func (x *Index) Compressed() bool { return x.parts[0].Compressed() }

// ResidentSliceBytes sums the shards' resident slice footprints — the bytes
// the slices actually occupy under their current encodings.
func (x *Index) ResidentSliceBytes() int64 {
	var n int64
	for _, p := range x.parts {
		n += p.ResidentSliceBytes()
	}
	return n
}

// Epochs returns the per-shard epoch vector, in shard order.
func (x *Index) Epochs() []uint64 {
	out := make([]uint64, len(x.parts))
	for i, p := range x.parts {
		out[i] = p.Epoch()
	}
	return out
}

// Merge returns one index covering every shard's rows in block order. With
// one shard it is the shard itself (zero cost, byte-for-byte the unsharded
// engine); with more it is a fresh private index the caller owns. Counts,
// estimates and mining results over the merge are byte-identical to an
// unsharded index over the same transactions — see the package comment.
func (x *Index) Merge(stats *iostat.Stats) (*sigfile.BBS, error) {
	if len(x.parts) == 1 {
		return x.parts[0], nil
	}
	merged, err := sigfile.Merge(x.parts, stats)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return merged, nil
}
