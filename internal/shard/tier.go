package shard

import (
	"fmt"
	"os"
	"path/filepath"

	"bbsmine/internal/pager"
)

// coldFile is the per-shard cold file name: each shard parks its cold
// slice payloads in its own sealed page file, beside its data and index
// files in a persistent layout or in a caller-provided scratch directory
// for in-memory databases. Cold files are derived data — rebuilt by the
// next Tier pass, never read at Open.
const coldFile = "slices.cold"

// Tier re-platforms every part's slice storage on pg (see sigfile.Tier):
// the hot budget splits evenly across the shards, and shard s's cold
// payloads land in dir/shard-.../slices.cold (dir itself when unsharded).
// The touch counts are slice-position indexed and every shard draws from
// the same hasher, so one profile drives all parts.
func (x *Index) Tier(pg *pager.Pager, dir string, hotBudget int64, touches []uint64) error {
	perShard := hotBudget / int64(len(x.parts))
	for s, p := range x.parts {
		sd := dir
		if len(x.parts) > 1 {
			sd = shardDir(dir, s)
			if err := os.MkdirAll(sd, 0o755); err != nil {
				return fmt.Errorf("shard: tiering shard %d: %w", s, err)
			}
		}
		if err := p.Tier(pg, filepath.Join(sd, coldFile), perShard, touches); err != nil {
			return fmt.Errorf("shard: tiering shard %d: %w", s, err)
		}
	}
	return nil
}

// Untier thaws every part back to fully resident storage and closes the
// per-shard cold files.
func (x *Index) Untier() error {
	var firstErr error
	for s, p := range x.parts {
		if err := p.Untier(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard: untiering shard %d: %w", s, err)
		}
	}
	return firstErr
}

// Tiered reports whether the index's storage is tiered. Tier covers every
// part, so part 0 speaks for all.
func (x *Index) Tiered() bool { return x.parts[0].Tiered() }

// TierCensus sums the per-part hot/cold slice censuses.
func (x *Index) TierCensus() (hot, cold int) {
	for _, p := range x.parts {
		h, c := p.TierCensus()
		hot += h
		cold += c
	}
	return hot, cold
}

// ColdPayloadBytes sums the shards' cold-tier payload bytes.
func (x *Index) ColdPayloadBytes() int64 {
	var n int64
	for _, p := range x.parts {
		n += p.ColdPayloadBytes()
	}
	return n
}
