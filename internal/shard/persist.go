package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"bbsmine/internal/iostat"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// On-disk layout. A single-shard database keeps the flat layout every
// earlier version wrote — transactions.txdb and index.bbs in the database
// directory, no manifest — so unsharded databases stay bit-compatible both
// ways. A sharded database adds a versioned manifest and moves each shard
// into its own subdirectory:
//
//	manifest.json                    {"version":1,"shards":N,"m":...,"k":...}
//	shard-000/transactions.txdb      shard 0's rows, local positions
//	shard-000/index.bbs              shard 0's BBS (the unchanged BBSSIG02 format)
//	shard-001/...
//
// The manifest is the commit point of the migration from the flat layout:
// it is written (temp file + rename) only after every shard's data and
// index are on disk, and the flat files are removed only after it lands, so
// a crash at any point leaves either a complete flat database or a complete
// sharded one.
const (
	manifestFile = "manifest.json"
	dataFile     = "transactions.txdb"
	indexFile    = "index.bbs"
)

// manifestVersion is the current sharded-layout version.
const manifestVersion = 1

type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	M       int `json:"m"`
	K       int `json:"k"`
}

// shardDir returns the subdirectory of shard s.
func shardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", s))
}

// readManifest loads the manifest if one exists; a nil manifest with a nil
// error means the directory uses the flat single-shard layout.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d not supported (want %d)", m.Version, manifestVersion)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("shard: manifest shard count %d < 1", m.Shards)
	}
	return &m, nil
}

// writeManifest persists the manifest atomically (temp file + rename).
func writeManifest(dir string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("shard: committing manifest: %w", err)
	}
	return nil
}

// Open opens (or creates) a database directory with the requested shard
// count. shards = 0 means "whatever the directory already is" (1 for a new
// or flat directory). Opening a flat directory with shards > 1 migrates it
// to the sharded layout; opening a sharded directory with a different
// non-zero shard count is an error (re-sharding in place is not supported —
// mine it out and re-ingest).
func Open(dir string, m, k, shards int, stats *iostat.Stats) (*DB, error) {
	if shards < 0 {
		return nil, fmt.Errorf("shard: shard count %d < 0", shards)
	}
	if stats == nil {
		stats = &iostat.Stats{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating %s: %w", dir, err)
	}
	mf, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if mf != nil {
		if shards != 0 && shards != mf.Shards {
			return nil, fmt.Errorf("shard: %s is sharded %d ways, requested %d; re-sharding in place is not supported", dir, mf.Shards, shards)
		}
		if m != mf.M || k != mf.K {
			return nil, fmt.Errorf("shard: %s was built with m=%d k=%d, requested m=%d k=%d", dir, mf.M, mf.K, m, k)
		}
		return openLayout(dir, sighash.NewMD5(m, k), mf.Shards, stats)
	}
	if shards <= 1 {
		return openLayout(dir, sighash.NewMD5(m, k), 1, stats)
	}
	// Flat (or empty) directory, sharded layout requested: migrate.
	return migrate(dir, m, k, shards, stats)
}

// openLayout opens an existing layout: the flat one for shards == 1, the
// manifest one otherwise. Missing files are created; index tails are
// re-indexed.
func openLayout(dir string, h sighash.Hasher, shards int, stats *iostat.Stats) (*DB, error) {
	db := &DB{
		stores:     make([]txdb.Store, shards),
		files:      make([]*txdb.FileStore, shards),
		indexPaths: make([]string, shards),
		dir:        dir,
		stats:      stats,
		hasher:     h,
	}
	parts := make([]*sigfile.BBS, shards)
	fail := func(err error) (*DB, error) {
		_ = db.Close()
		return nil, err
	}
	for s := 0; s < shards; s++ {
		sd := dir
		if shards > 1 {
			sd = shardDir(dir, s)
			if err := os.MkdirAll(sd, 0o755); err != nil {
				return fail(fmt.Errorf("shard: creating %s: %w", sd, err))
			}
		}
		dataPath := filepath.Join(sd, dataFile)
		var file *txdb.FileStore
		var err error
		if _, statErr := os.Stat(dataPath); statErr == nil {
			file, err = txdb.OpenFileStore(dataPath, stats)
		} else {
			file, err = txdb.CreateFileStore(dataPath, stats)
		}
		if err != nil {
			return fail(err)
		}
		db.files[s] = file
		db.stores[s] = file

		indexPath := filepath.Join(sd, indexFile)
		db.indexPaths[s] = indexPath
		var part *sigfile.BBS
		if _, statErr := os.Stat(indexPath); statErr == nil {
			part, err = sigfile.Load(indexPath, h, stats)
			if err != nil {
				return fail(err)
			}
		} else {
			part = sigfile.New(h, stats)
		}
		if part.Len() > file.Len() {
			return fail(fmt.Errorf("shard: shard %d index covers %d transactions but store has only %d; index belongs to different data", s, part.Len(), file.Len()))
		}
		parts[s] = part
	}
	idx, err := FromParts(parts)
	if err != nil {
		return fail(err)
	}
	db.idx = idx
	if err := db.reindexTail(); err != nil {
		return fail(err)
	}
	return db, nil
}

// migrate rewrites a flat single-shard directory into the sharded layout:
// rows are routed round-robin into fresh per-shard stores and indexes, the
// manifest commits the switch, and only then are the flat files removed.
func migrate(dir string, m, k, shards int, stats *iostat.Stats) (*DB, error) {
	h := sighash.NewMD5(m, k)
	var txs []txdb.Transaction
	flatData := filepath.Join(dir, dataFile)
	if _, err := os.Stat(flatData); err == nil {
		flat, err := txdb.OpenFileStore(flatData, &iostat.Stats{})
		if err != nil {
			return nil, fmt.Errorf("shard: opening flat store for migration: %w", err)
		}
		scanErr := flat.Scan(func(pos int, tx txdb.Transaction) bool {
			txs = append(txs, tx)
			return true
		})
		if closeErr := flat.Close(); scanErr == nil {
			scanErr = closeErr
		}
		if scanErr != nil {
			return nil, fmt.Errorf("shard: reading flat store for migration: %w", scanErr)
		}
		// Deletions live in the flat index's live mask; carry them over.
	}
	var deleted []int
	flatIndex := filepath.Join(dir, indexFile)
	if _, err := os.Stat(flatIndex); err == nil {
		old, err := sigfile.Load(flatIndex, h, &iostat.Stats{})
		if err != nil {
			return nil, fmt.Errorf("shard: loading flat index for migration: %w", err)
		}
		for pos := 0; pos < old.Len() && pos < len(txs); pos++ {
			if !old.IsLive(pos) {
				deleted = append(deleted, pos)
			}
		}
	}

	for s := 0; s < shards; s++ {
		if err := os.MkdirAll(shardDir(dir, s), 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating %s: %w", shardDir(dir, s), err)
		}
	}
	db := &DB{
		stores:     make([]txdb.Store, shards),
		files:      make([]*txdb.FileStore, shards),
		indexPaths: make([]string, shards),
		dir:        dir,
		stats:      stats,
		hasher:     h,
	}
	fail := func(err error) (*DB, error) {
		_ = db.Close()
		return nil, err
	}
	idx, err := NewIndex(h, shards, stats)
	if err != nil {
		return fail(err)
	}
	db.idx = idx
	for s := 0; s < shards; s++ {
		file, err := txdb.CreateFileStore(filepath.Join(shardDir(dir, s), dataFile), stats)
		if err != nil {
			return fail(err)
		}
		db.files[s] = file
		db.stores[s] = file
		db.indexPaths[s] = filepath.Join(shardDir(dir, s), indexFile)
	}
	for _, tx := range txs {
		if err := db.Append(tx); err != nil {
			return fail(fmt.Errorf("shard: migrating row: %w", err))
		}
	}
	for _, pos := range deleted {
		if err := db.Delete(pos); err != nil {
			return fail(fmt.Errorf("shard: migrating tombstone at %d: %w", pos, err))
		}
	}
	if err := db.Save(); err != nil {
		return fail(err)
	}
	if err := writeManifest(dir, manifest{Version: manifestVersion, Shards: shards, M: m, K: k}); err != nil {
		return fail(err)
	}
	// The manifest has committed the sharded layout; the flat files are now
	// dead weight. Removal failures are non-fatal — the manifest wins on the
	// next open.
	_ = os.Remove(flatData)
	_ = os.Remove(flatIndex)
	return db, nil
}
