package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bbsmine/internal/iostat"
	"bbsmine/internal/pager"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// DB couples a sharded index with per-shard transaction stores: shard s
// owns its own slice file and its own data file, so the two stay in step
// under the same routing. It also caches the merged read view a mining run
// needs, invalidating it on writes.
//
// A DB is not safe for concurrent use — it is the library-embedding
// counterpart of bbsmine.Database. The serving layer does not use DB's
// write path; it owns one commit loop per shard instead (internal/serve).
type DB struct {
	idx        *Index
	stores     []txdb.Store
	files      []*txdb.FileStore // nil entries when in-memory
	indexPaths []string          // "" when in-memory
	dir        string            // "" when in-memory
	stats      *iostat.Stats
	hasher     sighash.Hasher

	merged      *sigfile.BBS // cached merged view; nil until first use
	mergedStore txdb.Store
	dirty       bool
}

// NewMem returns a volatile sharded DB over in-memory stores.
func NewMem(h sighash.Hasher, shards int, stats *iostat.Stats) (*DB, error) {
	if stats == nil {
		stats = &iostat.Stats{}
	}
	idx, err := NewIndex(h, shards, stats)
	if err != nil {
		return nil, err
	}
	db := &DB{
		idx:        idx,
		stores:     make([]txdb.Store, shards),
		files:      make([]*txdb.FileStore, shards),
		indexPaths: make([]string, shards),
		stats:      stats,
		hasher:     h,
	}
	for s := range db.stores {
		db.stores[s] = txdb.NewMemStore(stats)
	}
	return db, nil
}

// Index returns the sharded BBS.
func (db *DB) Index() *Index { return db.idx }

// Shards returns the shard count N.
func (db *DB) Shards() int { return db.idx.Shards() }

// Store returns shard s's transaction store.
func (db *DB) Store(s int) txdb.Store { return db.stores[s] }

// File returns shard s's durable store, nil when in-memory.
func (db *DB) File(s int) *txdb.FileStore { return db.files[s] }

// IndexPath returns where shard s's index persists, "" when in-memory.
func (db *DB) IndexPath(s int) string { return db.indexPaths[s] }

// Dir returns the database directory, "" when in-memory.
func (db *DB) Dir() string { return db.dir }

// Stats returns the shared accounting sink.
func (db *DB) Stats() *iostat.Stats { return db.stats }

// Len returns the number of transaction slots, including deleted ones.
func (db *DB) Len() int { return db.idx.Len() }

// Append adds one transaction to its shard's store and index. The shard is
// the next round-robin target, so store and index stay aligned position by
// position within every shard.
func (db *DB) Append(tx txdb.Transaction) error {
	pos := db.idx.Len()
	s := pos % db.idx.Shards()
	if err := db.stores[s].Append(tx); err != nil {
		return err
	}
	db.idx.Insert(tx.Items)
	db.dirty = true
	return nil
}

// Get fetches the transaction at global position pos.
func (db *DB) Get(pos int) (txdb.Transaction, error) {
	if pos < 0 || pos >= db.idx.Len() {
		return txdb.Transaction{}, fmt.Errorf("shard: position %d out of range [0,%d)", pos, db.idx.Len())
	}
	s, local := db.idx.Route(pos)
	return db.stores[s].Get(local)
}

// Delete tombstones the transaction at global position pos.
func (db *DB) Delete(pos int) error {
	tx, err := db.Get(pos)
	if err != nil {
		return err
	}
	if err := db.idx.Delete(pos, tx.Items); err != nil {
		return err
	}
	db.dirty = true
	return nil
}

// Tier re-platforms the index's slice storage on pg (see Index.Tier). The
// per-shard cold files land in the database directory; an in-memory
// database needs scratchDir. The cached merged view is invalidated: a
// pre-tier merge holds every slice resident outside the pool's accounting,
// so keeping it would serve sharded mines from an untracked full copy of
// the index and the budget would never bite. The next mine re-merges,
// faulting cold pages through the shared pool.
func (db *DB) Tier(pg *pager.Pager, scratchDir string, hotBudget int64, touches []uint64) error {
	dir := db.dir
	if dir == "" {
		dir = scratchDir
	}
	if dir == "" {
		return fmt.Errorf("shard: tiering an in-memory database needs a scratch directory")
	}
	if err := db.idx.Tier(pg, dir, hotBudget, touches); err != nil {
		return err
	}
	db.merged = nil
	db.mergedStore = nil
	return nil
}

// Untier thaws the index back to fully resident storage. The cached merged
// view is answer-identical either way and is kept.
func (db *DB) Untier() error { return db.idx.Untier() }

// SetCompression sets the adaptive storage policy on every shard and
// re-encodes the slices to match. The cached merged view is invalidated so
// the next mining run rebuilds it under the new policy.
func (db *DB) SetCompression(on bool) {
	db.idx.SetCompression(on)
	db.merged = nil
	db.mergedStore = nil
	db.dirty = true
}

// Merged returns the read view a mining run binds to: one index and one
// store covering every shard's rows in block order. With one shard these
// are the shard's own index and store; with more, the merge is built once
// and reused until the next write invalidates it.
func (db *DB) Merged() (*sigfile.BBS, txdb.Store, error) {
	if db.merged != nil && !db.dirty {
		return db.merged, db.mergedStore, nil
	}
	idx, err := db.idx.Merge(db.stats)
	if err != nil {
		return nil, nil, err
	}
	db.merged = idx
	db.mergedStore = txdb.Concat(db.stores...)
	db.dirty = false
	return db.merged, db.mergedStore, nil
}

// Count estimates and exactly counts an itemset by per-shard fan-out: each
// shard ANDs its own slices and probes its own candidates, and the per-shard
// results merge by shard index. The answer is identical to counting over the
// merged view; the accounting reflects the N per-shard slice reads that a
// sharded deployment actually performs.
func (db *DB) Count(items []int32) (est, exact int, err error) {
	sorted := append([]int32(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bits := len(sighash.SignatureBits(db.hasher, sorted))
	for s := 0; s < db.idx.Shards(); s++ {
		db.idx.Part(s).ChargeSliceReads(bits)
	}
	est, dsts := db.idx.CountItemSet(sorted)
	if est == 0 {
		return 0, 0, nil
	}
	for s, v := range dsts {
		var getErr error
		v.ForEachSet(func(local int) bool {
			tx, err := db.stores[s].Get(local)
			db.stats.AddProbe()
			if err != nil {
				getErr = err
				return false
			}
			if tx.Contains(sorted) {
				exact++
			}
			return true
		})
		if getErr != nil {
			return 0, 0, fmt.Errorf("shard: probing shard %d: %w", s, getErr)
		}
	}
	return est, exact, nil
}

// Compact rewrites a persistent single-shard database without its deleted
// transactions and rebuilds the index over the survivors. A sharded database
// cannot be compacted in place: dropping rows renumbers the survivors, and
// per-shard renumbering breaks the round-robin routing invariant — mine it
// out and re-ingest instead.
func (db *DB) Compact() error {
	if db.dir == "" {
		return fmt.Errorf("shard: in-memory database cannot be compacted")
	}
	if db.Shards() > 1 {
		return fmt.Errorf("shard: a sharded database cannot be compacted in place (rows would renumber across shards); re-ingest into a fresh directory instead")
	}
	part := db.idx.Part(0)
	if part.Deleted() == 0 {
		return nil
	}
	dataPath := filepath.Join(db.dir, dataFile)
	tmpPath := dataPath + ".compact"
	newStore, err := txdb.CreateFileStore(tmpPath, db.stats)
	if err != nil {
		return err
	}
	newIndex := sigfile.New(db.hasher, db.stats)
	scanErr := db.stores[0].Scan(func(pos int, tx txdb.Transaction) bool {
		if !part.IsLive(pos) {
			return true
		}
		if err = newStore.Append(tx); err != nil {
			return false
		}
		newIndex.Insert(tx.Items)
		return true
	})
	if scanErr != nil {
		err = scanErr
	}
	if err == nil {
		err = newStore.Sync()
	}
	if err != nil {
		_ = newStore.Close()
		_ = os.Remove(tmpPath)
		return fmt.Errorf("shard: compacting: %w", err)
	}
	if err := db.files[0].Close(); err != nil {
		_ = newStore.Close()
		_ = os.Remove(tmpPath)
		return fmt.Errorf("shard: compacting: %w", err)
	}
	_ = newStore.Close()
	if err := os.Rename(tmpPath, dataPath); err != nil {
		return fmt.Errorf("shard: compacting: %w", err)
	}
	reopened, err := txdb.OpenFileStore(dataPath, db.stats)
	if err != nil {
		return fmt.Errorf("shard: reopening after compaction: %w", err)
	}
	db.files[0] = reopened
	db.stores[0] = reopened
	idx, err := FromParts([]*sigfile.BBS{newIndex})
	if err != nil {
		return err
	}
	db.idx = idx
	db.merged = nil
	db.mergedStore = nil
	db.dirty = true
	return db.Save()
}

// Sync flushes every durable store.
func (db *DB) Sync() error {
	for s, f := range db.files {
		if f == nil {
			continue
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("shard: syncing shard %d data: %w", s, err)
		}
	}
	return nil
}

// Save persists every shard's index (the data files are durable as soon as
// Append returns; Sync is called first so the indexes never lead the data).
func (db *DB) Save() error {
	if db.dir == "" {
		return fmt.Errorf("shard: in-memory database has nothing to save")
	}
	if err := db.Sync(); err != nil {
		return err
	}
	for s, path := range db.indexPaths {
		if err := db.idx.Part(s).Save(path); err != nil {
			return fmt.Errorf("shard: saving shard %d index: %w", s, err)
		}
	}
	return nil
}

// Close releases every durable store. In-memory databases are a no-op.
func (db *DB) Close() error {
	var firstErr error
	for _, f := range db.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// reindexTail inserts any transactions present in a shard's store but not
// yet in its index (crash recovery between data append and index save).
func (db *DB) reindexTail() error {
	for s, store := range db.stores {
		part := db.idx.Part(s)
		if part.Len() == store.Len() {
			continue
		}
		from := part.Len()
		if err := store.Scan(func(pos int, tx txdb.Transaction) bool {
			if pos >= from {
				part.Insert(tx.Items)
			}
			return true
		}); err != nil {
			return fmt.Errorf("shard: reindexing shard %d: %w", s, err)
		}
	}
	return nil
}
