package shard

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// genTxs returns n random transactions over a small alphabet, TIDs 0..n-1.
func genTxs(seed int64, n, maxLen, alphabet int) []txdb.Transaction {
	rng := rand.New(rand.NewSource(seed))
	txs := make([]txdb.Transaction, n)
	for i := range txs {
		l := 1 + rng.Intn(maxLen)
		items := make([]int32, l)
		for j := range items {
			items[j] = int32(rng.Intn(alphabet))
		}
		txs[i] = txdb.NewTransaction(int64(i), items)
	}
	return txs
}

func TestIndexValidation(t *testing.T) {
	h := sighash.NewFNV(64, 2)
	if _, err := NewIndex(h, 0, nil); err == nil {
		t.Error("NewIndex accepted zero shards")
	}
	if _, err := FromParts(nil); err == nil {
		t.Error("FromParts accepted zero parts")
	}
	// Two parts holding 2 and 0 rows violate round-robin (want 1 and 1).
	a, b := sigfile.New(h, nil), sigfile.New(h, nil)
	a.Insert([]int32{1})
	a.Insert([]int32{2})
	if _, err := FromParts([]*sigfile.BBS{a, b}); err == nil {
		t.Error("FromParts accepted a non-round-robin layout")
	}
}

// TestCountMatchesMergedView checks the fan-out count (per-shard AND + probe)
// agrees with counting over the merged block-order view.
func TestCountMatchesMergedView(t *testing.T) {
	var stats iostat.Stats
	db, err := NewMem(sighash.NewMD5(128, 3), 3, &stats)
	if err != nil {
		t.Fatal(err)
	}
	txs := genTxs(3, 60, 6, 25)
	for _, tx := range txs {
		if err := db.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(30); err != nil {
		t.Fatal(err)
	}
	idx, store, err := db.Merged()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]int32{{1}, {3, 7}, {2, 4, 9}, {11}} {
		est, exact, err := db.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		wantEst, cand := idx.CountItemSet(q)
		if est != wantEst {
			t.Fatalf("itemset %v: fan-out estimate %d, merged estimate %d", q, est, wantEst)
		}
		wantExact := 0
		var probeErr error
		cand.ForEachSet(func(pos int) bool {
			tx, err := store.Get(pos)
			if err != nil {
				probeErr = err
				return false
			}
			if tx.Contains(q) {
				wantExact++
			}
			return true
		})
		if probeErr != nil {
			t.Fatal(probeErr)
		}
		if exact != wantExact {
			t.Fatalf("itemset %v: fan-out exact %d, merged exact %d", q, exact, wantExact)
		}
	}
}

// TestOpenShardedRoundTrip persists a 3-shard database with tombstones and
// reopens it twice: once pinned to 3 shards, once with shards=0 (use whatever
// the manifest says).
func TestOpenShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const m, k, shards = 64, 2, 3
	db, err := Open(dir, m, k, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	txs := genTxs(5, 40, 5, 20)
	for _, tx := range txs {
		if err := db.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	deleted := []int{0, 13, 39}
	for _, pos := range deleted {
		if err := db.Delete(pos); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err != nil {
		t.Fatalf("manifest missing after sharded create: %v", err)
	}
	for _, req := range []int{shards, 0} {
		re, err := Open(dir, m, k, req, nil)
		if err != nil {
			t.Fatalf("reopen with shards=%d: %v", req, err)
		}
		if re.Shards() != shards {
			t.Fatalf("reopen with shards=%d: got %d shards, want %d", req, re.Shards(), shards)
		}
		if re.Len() != len(txs) || re.Index().Deleted() != len(deleted) {
			t.Fatalf("reopen: len/deleted = %d/%d, want %d/%d", re.Len(), re.Index().Deleted(), len(txs), len(deleted))
		}
		for pos, tx := range txs {
			got, err := re.Get(pos)
			if err != nil {
				t.Fatalf("Get(%d): %v", pos, err)
			}
			if got.TID != tx.TID {
				t.Fatalf("Get(%d).TID = %d, want %d", pos, got.TID, tx.TID)
			}
		}
		for _, pos := range deleted {
			if re.Index().IsLive(pos) {
				t.Fatalf("position %d live after reopen, want tombstoned", pos)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenMigratesFlatToSharded writes a flat single-shard database, reopens
// it 4-way, and checks rows and tombstones survive the migration and the flat
// files are gone once the manifest commits.
func TestOpenMigratesFlatToSharded(t *testing.T) {
	dir := t.TempDir()
	const m, k = 64, 2
	flat, err := Open(dir, m, k, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	txs := genTxs(9, 30, 5, 20)
	for _, tx := range txs {
		if err := flat.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	deleted := []int{4, 17}
	for _, pos := range deleted {
		if err := flat.Delete(pos); err != nil {
			t.Fatal(err)
		}
	}
	if err := flat.Save(); err != nil {
		t.Fatal(err)
	}
	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err == nil {
		t.Fatal("flat layout wrote a manifest")
	}

	db, err := Open(dir, m, k, 4, nil)
	if err != nil {
		t.Fatalf("migration: %v", err)
	}
	if db.Shards() != 4 || db.Len() != len(txs) || db.Index().Deleted() != len(deleted) {
		t.Fatalf("migrated db: shards/len/deleted = %d/%d/%d, want 4/%d/%d",
			db.Shards(), db.Len(), db.Index().Deleted(), len(txs), len(deleted))
	}
	for pos, tx := range txs {
		got, err := db.Get(pos)
		if err != nil {
			t.Fatalf("Get(%d): %v", pos, err)
		}
		if got.TID != tx.TID {
			t.Fatalf("Get(%d).TID = %d, want %d (global order must survive migration)", pos, got.TID, tx.TID)
		}
	}
	for _, pos := range deleted {
		if db.Index().IsLive(pos) {
			t.Fatalf("tombstone at %d lost in migration", pos)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The manifest is the commit point; the flat files must be gone.
	if _, err := os.Stat(filepath.Join(dir, dataFile)); !os.IsNotExist(err) {
		t.Fatal("flat data file survived migration")
	}
	if _, err := os.Stat(filepath.Join(dir, indexFile)); !os.IsNotExist(err) {
		t.Fatal("flat index file survived migration")
	}
	for s := 0; s < 4; s++ {
		if _, err := os.Stat(filepath.Join(shardDir(dir, s), dataFile)); err != nil {
			t.Fatalf("shard %d data missing: %v", s, err)
		}
	}
}

func TestOpenRejectsMismatches(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 64, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(txdb.NewTransaction(0, []int32{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 64, 2, 3, nil); err == nil || !strings.Contains(err.Error(), "re-sharding") {
		t.Fatalf("re-shard request accepted or wrong error: %v", err)
	}
	if _, err := Open(dir, 128, 2, 2, nil); err == nil || !strings.Contains(err.Error(), "m=") {
		t.Fatalf("m mismatch accepted or wrong error: %v", err)
	}
	if _, err := Open(dir, 64, 3, 2, nil); err == nil {
		t.Fatalf("k mismatch accepted: %v", err)
	}
	if _, err := Open(t.TempDir(), 64, 2, -1, nil); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestOpenReindexesTail simulates a crash between data append and index save:
// the reopened database must re-derive the missing index rows from the stores.
func TestOpenReindexesTail(t *testing.T) {
	dir := t.TempDir()
	const m, k, shards = 64, 2, 2
	db, err := Open(dir, m, k, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	txs := genTxs(13, 20, 4, 15)
	for _, tx := range txs[:10] {
		if err := db.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	// Tail: durable in the data files (Append writes through), never indexed.
	for _, tx := range txs[10:] {
		if err := db.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, m, k, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(txs) {
		t.Fatalf("reopened len = %d, want %d (tail not reindexed)", re.Len(), len(txs))
	}
	// The reindexed tail must count like a never-crashed database.
	fresh, err := NewMem(sighash.NewMD5(m, k), shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		if err := fresh.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range [][]int32{{1}, {2, 5}, {3, 7, 9}} {
		gotEst, gotExact, err := re.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		wantEst, wantExact, err := fresh.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotEst != wantEst || gotExact != wantExact {
			t.Fatalf("itemset %v after recovery: est/exact = %d/%d, want %d/%d", q, gotEst, gotExact, wantEst, wantExact)
		}
	}
}

func TestCompactGating(t *testing.T) {
	mem, err := NewMem(sighash.NewMD5(64, 2), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Compact(); err == nil {
		t.Error("in-memory compact accepted")
	}

	db, err := Open(t.TempDir(), 64, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Compact(); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Errorf("sharded compact accepted or wrong error: %v", err)
	}
}

// TestCompactSingleShard keeps the flat path honest: compaction drops the
// tombstoned rows and the survivors still count correctly.
func TestCompactSingleShard(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 64, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	txs := genTxs(21, 20, 4, 15)
	for _, tx := range txs {
		if err := db.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	for _, pos := range []int{1, 8, 19} {
		if err := db.Delete(pos); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 17 || db.Index().Deleted() != 0 {
		t.Fatalf("after compact: len/deleted = %d/%d, want 17/0", db.Len(), db.Index().Deleted())
	}
	for pos := 0; pos < db.Len(); pos++ {
		tx, err := db.Get(pos)
		if err != nil {
			t.Fatalf("Get(%d) after compact: %v", pos, err)
		}
		if tx.TID == 1 || tx.TID == 8 || tx.TID == 19 {
			t.Fatalf("deleted TID %d survived compaction", tx.TID)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCountFanOutTracesPerShard checks the scatter-gather count emits one
// shard-tagged shardcount event per shard with tracing on, and none with
// it off.
func TestCountFanOutTracesPerShard(t *testing.T) {
	const shards = 3
	x, err := NewIndex(sighash.NewFNV(64, 2), shards, &iostat.Stats{})
	if err != nil {
		t.Fatalf("NewIndex: %v", err)
	}
	for _, tx := range genTxs(7, 30, 5, 12) {
		x.Insert(tx.Items)
	}

	// No tracer: counting emits nothing and costs no event construction.
	reg := obs.New()
	x.SetObserver(reg)
	est, _ := x.CountItemSet([]int32{1, 2})

	var buf bytes.Buffer
	reg.SetTracer(obs.NewTracer(&buf, 1))
	est2, _ := x.CountItemSet([]int32{1, 2})
	if est2 != est {
		t.Fatalf("tracing changed the estimate: %d vs %d", est2, est)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != shards {
		t.Fatalf("traced %d events, want %d (one per shard)", len(lines), shards)
	}
	sum, seen := 0, make(map[int]bool)
	for _, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("malformed shardcount line %q: %v", line, err)
		}
		if ev.Kind != "shardcount" {
			t.Fatalf("event kind = %q, want shardcount", ev.Kind)
		}
		if ev.Shard == nil || *ev.Shard < 0 || *ev.Shard >= shards || seen[*ev.Shard] {
			t.Fatalf("bad or repeated shard tag in %q", line)
		}
		seen[*ev.Shard] = true
		sum += ev.Est
	}
	if sum != est {
		t.Errorf("per-shard estimates sum to %d, want %d", sum, est)
	}
}
