package sigfile

import (
	"math/rand"
	"reflect"
	"testing"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/sighash"
)

// bitAt reads bit i of a possibly lazily-grown vector: bits past the
// vector's current length are zero by the tail invariant.
func bitAt(v *bitvec.Vector, i int) bool { return i < v.Len() && v.Get(i) }

// genItemsets returns n random itemsets over a small alphabet.
func genItemsets(seed int64, n, maxLen, alphabet int) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]int32, n)
	for i := range sets {
		l := 1 + rng.Intn(maxLen)
		items := make([]int32, l)
		for j := range items {
			items[j] = int32(rng.Intn(alphabet))
		}
		sets[i] = items
	}
	return sets
}

// TestMergeMatchesBlockOrderInsert checks the core claim: merging N parts is
// identical — slices, counters, statistics and per-row candidates — to one
// index built by inserting every part's rows in block order.
func TestMergeMatchesBlockOrderInsert(t *testing.T) {
	h := sighash.NewFNV(128, 3)
	rows := genItemsets(7, 90, 6, 30)
	const parts = 4

	shards := make([]*BBS, parts)
	for s := range shards {
		shards[s] = New(h, nil)
	}
	for i, items := range rows {
		shards[i%parts].Insert(items)
	}
	ref := New(h, nil)
	for s := 0; s < parts; s++ {
		for i := s; i < len(rows); i += parts {
			ref.Insert(rows[i])
		}
	}

	merged, err := Merge(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != ref.Len() || merged.Live() != ref.Live() {
		t.Fatalf("merged len/live = %d/%d, want %d/%d", merged.Len(), merged.Live(), ref.Len(), ref.Live())
	}
	if !reflect.DeepEqual(merged.Items(), ref.Items()) {
		t.Fatal("merged item universe differs from block-order insert")
	}
	for _, it := range ref.Items() {
		if merged.ExactCount(it) != ref.ExactCount(it) {
			t.Fatalf("item %d: merged exact count %d, want %d", it, merged.ExactCount(it), ref.ExactCount(it))
		}
	}
	if merged.MaxTransactionItems() != ref.MaxTransactionItems() {
		t.Fatalf("merged maxTxnItems %d, want %d", merged.MaxTransactionItems(), ref.MaxTransactionItems())
	}
	for p := 0; p < merged.M(); p++ {
		if merged.SliceOnes(p) != ref.SliceOnes(p) {
			t.Fatalf("slice %d: merged ones %d, want %d", p, merged.SliceOnes(p), ref.SliceOnes(p))
		}
		// Compare bit by bit: the reference grows slices lazily, so its raw
		// word slices can be shorter than the merge's with the same bits set.
		mv, rv := merged.ResultSlice(p), ref.ResultSlice(p)
		for i := 0; i < ref.Len(); i++ {
			if bitAt(mv, i) != bitAt(rv, i) {
				t.Fatalf("slice %d row %d: merged bit %v, want %v", p, i, bitAt(mv, i), bitAt(rv, i))
			}
		}
	}
	for _, q := range genItemsets(8, 40, 3, 30) {
		em, vm := merged.CountItemSet(q)
		er, vr := ref.CountItemSet(q)
		if em != er {
			t.Fatalf("itemset %v: merged estimate %d, want %d", q, em, er)
		}
		if !reflect.DeepEqual(vm.Words(), vr.Words()) {
			t.Fatalf("itemset %v: merged candidate vector differs", q)
		}
	}
}

// TestMergeCarriesTombstones deletes rows in the parts and checks the block
// positions of the merge agree row by row.
func TestMergeCarriesTombstones(t *testing.T) {
	h := sighash.NewFNV(64, 2)
	rows := genItemsets(11, 40, 5, 20)
	const parts = 3

	shards := make([]*BBS, parts)
	for s := range shards {
		shards[s] = New(h, nil)
	}
	for i, items := range rows {
		shards[i%parts].Insert(items)
	}
	// Tombstone one row in shard 0 and two in shard 2 (local positions).
	del := map[int][]int{0: {2}, 2: {0, 5}}
	for s, ps := range del {
		for _, local := range ps {
			items := rows[local*parts+s]
			if err := shards[s].Delete(local, items); err != nil {
				t.Fatalf("shard %d delete %d: %v", s, local, err)
			}
		}
	}

	merged, err := Merge(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDeleted := 3
	if merged.Deleted() != wantDeleted || merged.Live() != len(rows)-wantDeleted {
		t.Fatalf("merged deleted/live = %d/%d, want %d/%d", merged.Deleted(), merged.Live(), wantDeleted, len(rows)-wantDeleted)
	}
	// Block position of part s local row r is offset(s) + r.
	offset := func(s int) int {
		o := 0
		for i := 0; i < s; i++ {
			o += shards[i].Len()
		}
		return o
	}
	for s := 0; s < parts; s++ {
		for local := 0; local < shards[s].Len(); local++ {
			if got, want := merged.IsLive(offset(s)+local), shards[s].IsLive(local); got != want {
				t.Fatalf("block row for shard %d local %d: live=%v, want %v", s, local, got, want)
			}
		}
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(nil, nil); err == nil {
		t.Error("merge of zero parts accepted")
	}
	a := New(sighash.NewFNV(64, 2), nil)
	b := New(sighash.NewFNV(128, 2), nil)
	if _, err := Merge([]*BBS{a, b}, nil); err == nil {
		t.Error("merge of mismatched m accepted")
	}
	c := New(sighash.NewFNV(64, 3), nil)
	if _, err := Merge([]*BBS{a, c}, nil); err == nil {
		t.Error("merge of mismatched k accepted")
	}
}
