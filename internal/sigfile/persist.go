package sigfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/iostat"
	"bbsmine/internal/sighash"
)

// On-disk layout of a persisted BBS ("the structure is persistent — there is
// no need to reconstruct the BBS upon every update"). Current format,
// BBSSIG03:
//
//	magic(8) | m uint32 | k uint32 | n uint64 | flags byte
//	| numItems uint32 | (item int32, count uint64)*    exact 1-itemset counts
//	| liveFlag byte | [deleted uint64 | ceil(n/64) uint64]   live-row mask
//	| m × slice, each: ones uint64 | enc byte | payload
//	    enc 0 (dense):  ceil(n/64) uint64 words
//	    enc 1 (sparse): count uint32 | count × uint32 ascending positions
//	    enc 2 (rle):    pairs uint32 | pairs × (start uint32, len uint32)
//
// All integers little-endian. Items are written in ascending order so the
// file is deterministic for a given index state. flags bit 0 records the
// compression policy. The per-slice ones field persists the popcount, so
// Load rebuilds the rarest-first ordering without recounting m×n bits — on
// a cold start of a large index that recount used to dominate open time.
//
// The previous format, BBSSIG02, is identical up to the flags byte and
// stores every slice as bare dense words with no ones/enc prefix; Load
// still accepts it (recounting, as it always did), so pre-compression index
// files open unchanged.

var (
	sigMagic   = [8]byte{'B', 'B', 'S', 'S', 'I', 'G', '0', '3'}
	sigMagicV2 = [8]byte{'B', 'B', 'S', 'S', 'I', 'G', '0', '2'}
)

const flagCompress = 1 << 0

// Save writes the index to path atomically (write to temp file, rename).
func (b *BBS) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sigfile: create %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := b.writeTo(w); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("sigfile: flush: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("sigfile: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("sigfile: rename: %w", err)
	}
	return nil
}

func (b *BBS) writeTo(w io.Writer) error {
	if _, err := w.Write(sigMagic[:]); err != nil {
		return fmt.Errorf("sigfile: write magic: %w", err)
	}
	hdr := make([]byte, 17)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(b.M()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(b.hasher.K()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(b.n))
	if b.compress {
		hdr[16] = flagCompress
	}
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("sigfile: write header: %w", err)
	}

	items := b.Items() // ascending, so the file layout is reproducible
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(items)))
	if _, err := w.Write(cnt[:]); err != nil {
		return fmt.Errorf("sigfile: write item count: %w", err)
	}
	pair := make([]byte, 12)
	for _, it := range items {
		binary.LittleEndian.PutUint32(pair[0:4], uint32(it))
		binary.LittleEndian.PutUint64(pair[4:12], uint64(b.itemCounts[it]))
		if _, err := w.Write(pair); err != nil {
			return fmt.Errorf("sigfile: write item entry: %w", err)
		}
	}

	wordBuf := make([]byte, 8)
	if b.live == nil {
		if _, err := w.Write([]byte{0}); err != nil {
			return fmt.Errorf("sigfile: write live flag: %w", err)
		}
	} else {
		if _, err := w.Write([]byte{1}); err != nil {
			return fmt.Errorf("sigfile: write live flag: %w", err)
		}
		binary.LittleEndian.PutUint64(wordBuf, uint64(b.deleted))
		if _, err := w.Write(wordBuf); err != nil {
			return fmt.Errorf("sigfile: write deleted count: %w", err)
		}
		for _, word := range b.live.Words() {
			binary.LittleEndian.PutUint64(wordBuf, word)
			if _, err := w.Write(wordBuf); err != nil {
				return fmt.Errorf("sigfile: write live mask: %w", err)
			}
		}
	}

	for p, s := range b.slices {
		if err := b.writeSlice(w, p, s, wordBuf); err != nil {
			return err
		}
	}
	return nil
}

// writeSlice emits one slice record: persisted popcount, encoding tag, then
// the encoding's payload. Dense slices are padded to full length — slices
// grow lazily (see Insert), so the in-memory vector may back fewer than
// ceil(n/64) words — while compressed payloads are position-based and need
// no padding.
func (b *BBS) writeSlice(w io.Writer, p int, s *bitvec.Slice, wordBuf []byte) error {
	// A tiered slice persists from its thawed form: the cold file is
	// derived data, the BBSSIG image is authoritative, so Save always
	// writes resident payloads. (Positions/Runs would thaw internally, but
	// a cold dense slice has no resident vector to alias.)
	if s.IsCold() {
		s = s.Thaw()
	}
	binary.LittleEndian.PutUint64(wordBuf, uint64(b.sliceOnes[p]))
	if _, err := w.Write(wordBuf); err != nil {
		return fmt.Errorf("sigfile: write slice %d ones: %w", p, err)
	}
	if _, err := w.Write([]byte{byte(s.Encoding())}); err != nil {
		return fmt.Errorf("sigfile: write slice %d encoding: %w", p, err)
	}
	var u32 [4]byte
	switch s.Encoding() {
	case bitvec.EncDense:
		fullWords := (b.n + 63) / 64
		ws := s.DenseVector().Words()
		for _, word := range ws {
			binary.LittleEndian.PutUint64(wordBuf, word)
			if _, err := w.Write(wordBuf); err != nil {
				return fmt.Errorf("sigfile: write slice %d: %w", p, err)
			}
		}
		var zero [8]byte
		for wi := len(ws); wi < fullWords; wi++ {
			if _, err := w.Write(zero[:]); err != nil {
				return fmt.Errorf("sigfile: write slice %d padding: %w", p, err)
			}
		}
	case bitvec.EncSparse:
		pos := s.Positions()
		binary.LittleEndian.PutUint32(u32[:], uint32(len(pos)))
		if _, err := w.Write(u32[:]); err != nil {
			return fmt.Errorf("sigfile: write slice %d position count: %w", p, err)
		}
		for _, v := range pos {
			binary.LittleEndian.PutUint32(u32[:], v)
			if _, err := w.Write(u32[:]); err != nil {
				return fmt.Errorf("sigfile: write slice %d positions: %w", p, err)
			}
		}
	default: // bitvec.EncRLE
		runs := s.Runs()
		binary.LittleEndian.PutUint32(u32[:], uint32(len(runs)/2))
		if _, err := w.Write(u32[:]); err != nil {
			return fmt.Errorf("sigfile: write slice %d run count: %w", p, err)
		}
		for _, v := range runs {
			binary.LittleEndian.PutUint32(u32[:], v)
			if _, err := w.Write(u32[:]); err != nil {
				return fmt.Errorf("sigfile: write slice %d runs: %w", p, err)
			}
		}
	}
	return nil
}

// Load reads a persisted BBS from path. The supplied hasher must match the
// parameters the file was built with (same m and k); the mapping itself is
// the caller's responsibility — a BBS file is only meaningful together with
// the hash scheme that produced it.
func Load(path string, h sighash.Hasher, stats *iostat.Stats) (*BBS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sigfile: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }() // read-only; no buffered state to lose
	b, err := decodeBBS(bufio.NewReaderSize(f, 1<<16), h, stats)
	if err != nil {
		return nil, fmt.Errorf("sigfile: load %s: %w", path, err)
	}
	return b, nil
}

// decodeBBS reads one serialized BBS from r and verifies nothing trails it.
// It is the reader-level half of Load, factored out so the fuzz target can
// drive it with arbitrary bytes; nothing it allocates is sized by header
// fields alone, so a corrupt header cannot force a giant allocation — reads
// fail at the truncation point first.
func decodeBBS(r *bufio.Reader, h sighash.Hasher, stats *iostat.Stats) (*BBS, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	v2 := magic == sigMagicV2
	if !v2 && magic != sigMagic {
		return nil, fmt.Errorf("not a BBS file")
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	m := int(binary.LittleEndian.Uint32(hdr[0:4]))
	k := int(binary.LittleEndian.Uint32(hdr[4:8]))
	n := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if m != h.M() || k != h.K() {
		return nil, fmt.Errorf("file has m=%d k=%d, hasher has m=%d k=%d", m, k, h.M(), h.K())
	}
	if n < 0 {
		return nil, fmt.Errorf("corrupt transaction count %d", n)
	}

	b := New(h, stats)
	b.n = n
	if !v2 {
		var flags [1]byte
		if _, err := io.ReadFull(r, flags[:]); err != nil {
			return nil, fmt.Errorf("read flags: %w", err)
		}
		if flags[0]&^flagCompress != 0 {
			return nil, fmt.Errorf("unknown flags %#x", flags[0])
		}
		b.compress = flags[0]&flagCompress != 0
	}

	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("read item count: %w", err)
	}
	numItems := int(binary.LittleEndian.Uint32(cnt[:]))
	pair := make([]byte, 12)
	for i := 0; i < numItems; i++ {
		if _, err := io.ReadFull(r, pair); err != nil {
			return nil, fmt.Errorf("read item entry %d: %w", i, err)
		}
		item := int32(binary.LittleEndian.Uint32(pair[0:4]))
		b.itemCounts[item] = int(binary.LittleEndian.Uint64(pair[4:12]))
	}

	words := (n + 63) / 64
	buf := make([]byte, 8)

	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return nil, fmt.Errorf("read live flag: %w", err)
	}
	switch flag[0] {
	case 0:
	case 1:
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("read deleted count: %w", err)
		}
		b.deleted = int(binary.LittleEndian.Uint64(buf))
		ws, err := readWords(r, words, buf)
		if err != nil {
			return nil, fmt.Errorf("read live mask: %w", err)
		}
		var lv bitvec.Vector
		if err := lv.SetWords(ws, n); err != nil {
			return nil, fmt.Errorf("live mask: %w", err)
		}
		b.live = &lv
	default:
		return nil, fmt.Errorf("bad live flag %d", flag[0])
	}

	for p := 0; p < m; p++ {
		if v2 {
			// Legacy layout: bare dense words, no persisted popcount.
			ws, err := readWords(r, words, buf)
			if err != nil {
				return nil, fmt.Errorf("read slice %d: %w", p, err)
			}
			var v bitvec.Vector
			if err := v.SetWords(ws, n); err != nil {
				return nil, fmt.Errorf("slice %d: %w", p, err)
			}
			s := bitvec.DenseSliceOf(&v) // recounts, as v2 always did
			b.slices[p] = s
			b.refreshDense(p)
			b.sliceOnes[p] = s.Ones()
			continue
		}
		s, ones, err := readSlice(r, n, words, buf)
		if err != nil {
			return nil, fmt.Errorf("read slice %d: %w", p, err)
		}
		b.slices[p] = s
		b.refreshDense(p)
		b.sliceOnes[p] = ones
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trailing data")
	}
	return b, nil
}

// readSlice decodes one v3 slice record. Compressed payloads are validated
// structurally (ascending positions, maximal runs, bounds) and their
// popcount is cross-checked against the persisted one; a dense payload's
// persisted popcount is trusted — skipping that recount is the point of
// persisting it, and a wrong value cannot corrupt results, only the AND
// ordering (which every result is invariant to).
func readSlice(r *bufio.Reader, n, words int, buf []byte) (*bitvec.Slice, int, error) {
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, fmt.Errorf("ones: %w", err)
	}
	ones := int(binary.LittleEndian.Uint64(buf))
	if ones < 0 || ones > n {
		return nil, 0, fmt.Errorf("corrupt popcount %d for %d rows", ones, n)
	}
	var encB [1]byte
	if _, err := io.ReadFull(r, encB[:]); err != nil {
		return nil, 0, fmt.Errorf("encoding: %w", err)
	}
	switch bitvec.Encoding(encB[0]) {
	case bitvec.EncDense:
		ws, err := readWords(r, words, buf)
		if err != nil {
			return nil, 0, err
		}
		var v bitvec.Vector
		if err := v.SetWords(ws, n); err != nil {
			return nil, 0, err
		}
		return bitvec.DenseSliceWithOnes(&v, ones), ones, nil
	case bitvec.EncSparse:
		count, err := readU32(r, buf)
		if err != nil {
			return nil, 0, fmt.Errorf("position count: %w", err)
		}
		pos, err := readU32s(r, count, buf)
		if err != nil {
			return nil, 0, fmt.Errorf("positions: %w", err)
		}
		s, err := bitvec.SliceFromPositions(pos, n)
		if err != nil {
			return nil, 0, err
		}
		if s.Ones() != ones {
			return nil, 0, fmt.Errorf("popcount %d disagrees with %d positions", ones, s.Ones())
		}
		return s, ones, nil
	case bitvec.EncRLE:
		pairs, err := readU32(r, buf)
		if err != nil {
			return nil, 0, fmt.Errorf("run count: %w", err)
		}
		if pairs > uint32(n) { // maximal runs are separated; more pairs than rows is corrupt
			return nil, 0, fmt.Errorf("corrupt run count %d for %d rows", pairs, n)
		}
		runs, err := readU32s(r, 2*pairs, buf)
		if err != nil {
			return nil, 0, fmt.Errorf("runs: %w", err)
		}
		s, err := bitvec.SliceFromRuns(runs, n)
		if err != nil {
			return nil, 0, err
		}
		if s.Ones() != ones {
			return nil, 0, fmt.Errorf("popcount %d disagrees with run total %d", ones, s.Ones())
		}
		return s, ones, nil
	default:
		return nil, 0, fmt.Errorf("unknown encoding %d", encB[0])
	}
}

// readWords reads count little-endian uint64 words. The slice grows as the
// words arrive instead of being allocated upfront, keeping memory bounded
// by the actual input length even when a corrupt header claims a huge n.
func readWords(r *bufio.Reader, count int, buf []byte) ([]uint64, error) {
	ws := make([]uint64, 0, min(count, 1<<12))
	for wi := 0; wi < count; wi++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("word %d: %w", wi, err)
		}
		ws = append(ws, binary.LittleEndian.Uint64(buf))
	}
	return ws, nil
}

func readU32(r *bufio.Reader, buf []byte) (uint32, error) {
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:4]), nil
}

// readU32s reads count little-endian uint32 values with the same
// grow-as-you-read discipline as readWords.
func readU32s(r *bufio.Reader, count uint32, buf []byte) ([]uint32, error) {
	vs := make([]uint32, 0, min(int(count), 1<<12))
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		vs = append(vs, binary.LittleEndian.Uint32(buf[:4]))
	}
	return vs, nil
}
