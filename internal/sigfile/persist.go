package sigfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/iostat"
	"bbsmine/internal/sighash"
)

// On-disk layout of a persisted BBS ("the structure is persistent — there is
// no need to reconstruct the BBS upon every update"):
//
//	magic(8) | m uint32 | k uint32 | n uint64
//	| numItems uint32 | (item int32, count uint64)*    exact 1-itemset counts
//	| liveFlag byte | [deleted uint64 | ceil(n/64) uint64]   live-row mask
//	| m × ceil(n/64) uint64                            the bit slices
//
// All integers little-endian. Items are written in ascending order so the
// file is deterministic for a given index state. The live-row section is
// present only when liveFlag is 1 (some transaction has been deleted).

var sigMagic = [8]byte{'B', 'B', 'S', 'S', 'I', 'G', '0', '2'}

// Save writes the index to path atomically (write to temp file, rename).
func (b *BBS) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sigfile: create %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := b.writeTo(w); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("sigfile: flush: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("sigfile: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("sigfile: rename: %w", err)
	}
	return nil
}

func (b *BBS) writeTo(w io.Writer) error {
	if _, err := w.Write(sigMagic[:]); err != nil {
		return fmt.Errorf("sigfile: write magic: %w", err)
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(b.M()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(b.hasher.K()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(b.n))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("sigfile: write header: %w", err)
	}

	items := b.Items() // ascending, so the file layout is reproducible
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(items)))
	if _, err := w.Write(cnt[:]); err != nil {
		return fmt.Errorf("sigfile: write item count: %w", err)
	}
	pair := make([]byte, 12)
	for _, it := range items {
		binary.LittleEndian.PutUint32(pair[0:4], uint32(it))
		binary.LittleEndian.PutUint64(pair[4:12], uint64(b.itemCounts[it]))
		if _, err := w.Write(pair); err != nil {
			return fmt.Errorf("sigfile: write item entry: %w", err)
		}
	}

	wordBuf := make([]byte, 8)
	if b.live == nil {
		if _, err := w.Write([]byte{0}); err != nil {
			return fmt.Errorf("sigfile: write live flag: %w", err)
		}
	} else {
		if _, err := w.Write([]byte{1}); err != nil {
			return fmt.Errorf("sigfile: write live flag: %w", err)
		}
		binary.LittleEndian.PutUint64(wordBuf, uint64(b.deleted))
		if _, err := w.Write(wordBuf); err != nil {
			return fmt.Errorf("sigfile: write deleted count: %w", err)
		}
		for _, word := range b.live.Words() {
			binary.LittleEndian.PutUint64(wordBuf, word)
			if _, err := w.Write(wordBuf); err != nil {
				return fmt.Errorf("sigfile: write live mask: %w", err)
			}
		}
	}

	// Slices grow lazily (see Insert), so a slice may back fewer than
	// ceil(n/64) words; the file format stores every slice at full length,
	// so the missing tail is written as explicit zero words.
	fullWords := (b.n + 63) / 64
	var zero [8]byte
	for _, s := range b.slices {
		ws := s.Words()
		for _, word := range ws {
			binary.LittleEndian.PutUint64(wordBuf, word)
			if _, err := w.Write(wordBuf); err != nil {
				return fmt.Errorf("sigfile: write slice: %w", err)
			}
		}
		for wi := len(ws); wi < fullWords; wi++ {
			if _, err := w.Write(zero[:]); err != nil {
				return fmt.Errorf("sigfile: write slice padding: %w", err)
			}
		}
	}
	return nil
}

// Load reads a persisted BBS from path. The supplied hasher must match the
// parameters the file was built with (same m and k); the mapping itself is
// the caller's responsibility — a BBS file is only meaningful together with
// the hash scheme that produced it.
func Load(path string, h sighash.Hasher, stats *iostat.Stats) (*BBS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sigfile: open %s: %w", path, err)
	}
	defer func() { _ = f.Close() }() // read-only; no buffered state to lose
	b, err := decodeBBS(bufio.NewReaderSize(f, 1<<16), h, stats)
	if err != nil {
		return nil, fmt.Errorf("sigfile: load %s: %w", path, err)
	}
	return b, nil
}

// decodeBBS reads one serialized BBS from r and verifies nothing trails it.
// It is the reader-level half of Load, factored out so the fuzz target can
// drive it with arbitrary bytes; nothing it allocates is sized by header
// fields alone, so a corrupt header cannot force a giant allocation — reads
// fail at the truncation point first.
func decodeBBS(r *bufio.Reader, h sighash.Hasher, stats *iostat.Stats) (*BBS, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	if magic != sigMagic {
		return nil, fmt.Errorf("not a BBS file")
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	m := int(binary.LittleEndian.Uint32(hdr[0:4]))
	k := int(binary.LittleEndian.Uint32(hdr[4:8]))
	n := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if m != h.M() || k != h.K() {
		return nil, fmt.Errorf("file has m=%d k=%d, hasher has m=%d k=%d", m, k, h.M(), h.K())
	}
	if n < 0 {
		return nil, fmt.Errorf("corrupt transaction count %d", n)
	}

	b := New(h, stats)
	b.n = n

	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("read item count: %w", err)
	}
	numItems := int(binary.LittleEndian.Uint32(cnt[:]))
	pair := make([]byte, 12)
	for i := 0; i < numItems; i++ {
		if _, err := io.ReadFull(r, pair); err != nil {
			return nil, fmt.Errorf("read item entry %d: %w", i, err)
		}
		item := int32(binary.LittleEndian.Uint32(pair[0:4]))
		b.itemCounts[item] = int(binary.LittleEndian.Uint64(pair[4:12]))
	}

	words := (n + 63) / 64
	buf := make([]byte, 8)

	var flag [1]byte
	if _, err := io.ReadFull(r, flag[:]); err != nil {
		return nil, fmt.Errorf("read live flag: %w", err)
	}
	switch flag[0] {
	case 0:
	case 1:
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("read deleted count: %w", err)
		}
		b.deleted = int(binary.LittleEndian.Uint64(buf))
		ws, err := readWords(r, words, buf)
		if err != nil {
			return nil, fmt.Errorf("read live mask: %w", err)
		}
		var lv bitvec.Vector
		if err := lv.SetWords(ws, n); err != nil {
			return nil, fmt.Errorf("live mask: %w", err)
		}
		b.live = &lv
	default:
		return nil, fmt.Errorf("bad live flag %d", flag[0])
	}

	for p := 0; p < m; p++ {
		ws, err := readWords(r, words, buf)
		if err != nil {
			return nil, fmt.Errorf("read slice %d: %w", p, err)
		}
		var v bitvec.Vector
		if err := v.SetWords(ws, n); err != nil {
			return nil, fmt.Errorf("slice %d: %w", p, err)
		}
		b.slices[p] = &v
		b.sliceOnes[p] = v.Count() // rebuild the rarest-first ordering counts
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trailing data")
	}
	return b, nil
}

// readWords reads count little-endian uint64 words. The slice grows as the
// words arrive instead of being allocated upfront, keeping memory bounded
// by the actual input length even when a corrupt header claims a huge n.
func readWords(r *bufio.Reader, count int, buf []byte) ([]uint64, error) {
	ws := make([]uint64, 0, min(count, 1<<12))
	for wi := 0; wi < count; wi++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("word %d: %w", wi, err)
		}
		ws = append(ws, binary.LittleEndian.Uint64(buf))
	}
	return ws, nil
}
