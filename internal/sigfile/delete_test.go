package sigfile

import (
	"math/rand"
	"path/filepath"
	"testing"

	"bbsmine/internal/sighash"
)

func TestDeleteRemovesFromEstimates(t *testing.T) {
	b, txs := runningExample(nil)
	// Delete transaction 100 (position 0), the only one containing item 0
	// together with items 3 and 4.
	if err := b.Delete(0, txs[0].Items); err != nil {
		t.Fatal(err)
	}
	if b.Live() != 4 || b.Deleted() != 1 {
		t.Errorf("Live=%d Deleted=%d", b.Live(), b.Deleted())
	}
	est, v := b.CountItemSet([]int32{0, 1})
	if est != 1 { // was 2 in Example 2; position 0 is now masked
		t.Errorf("CountItemSet({0,1}) = %d after delete, want 1", est)
	}
	if v.Get(0) {
		t.Error("deleted position still set in result vector")
	}
	if got := b.ExactCount(4); got != 0 {
		t.Errorf("ExactCount(4) = %d after deleting its only transaction", got)
	}
	if got := b.ExactCount(1); got != 4 {
		t.Errorf("ExactCount(1) = %d, want 4", got)
	}
}

func TestDeleteValidation(t *testing.T) {
	b, txs := runningExample(nil)
	if err := b.Delete(-1, nil); err == nil {
		t.Error("negative position accepted")
	}
	if err := b.Delete(5, nil); err == nil {
		t.Error("out-of-range position accepted")
	}
	if err := b.Delete(2, txs[2].Items); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(2, txs[2].Items); err == nil {
		t.Error("double delete accepted")
	}
}

func TestIsLive(t *testing.T) {
	b, txs := runningExample(nil)
	for pos := 0; pos < 5; pos++ {
		if !b.IsLive(pos) {
			t.Errorf("position %d not live before any delete", pos)
		}
	}
	if b.IsLive(-1) || b.IsLive(5) {
		t.Error("out-of-range positions report live")
	}
	b.Delete(3, txs[3].Items)
	if b.IsLive(3) {
		t.Error("deleted position reports live")
	}
	if !b.IsLive(2) {
		t.Error("neighbor of deleted position reports dead")
	}
}

func TestInsertAfterDelete(t *testing.T) {
	b, txs := runningExample(nil)
	if err := b.Delete(1, txs[1].Items); err != nil {
		t.Fatal(err)
	}
	b.Insert([]int32{1, 2})
	if b.Len() != 6 || b.Live() != 5 {
		t.Errorf("Len=%d Live=%d after insert-after-delete", b.Len(), b.Live())
	}
	if !b.IsLive(5) {
		t.Error("newly inserted position not live")
	}
	est, _ := b.CountItemSet([]int32{1, 2})
	// Live transactions containing {1,2} by actual data: 100, 400, 500,
	// new one = 4 (200 deleted). Estimate must be at least that.
	if est < 4 {
		t.Errorf("estimate %d below actual live count 4", est)
	}
}

func TestDeletePersistsAcrossSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	h := sighash.NewMD5(128, 4)
	b := New(h, nil)
	var txs [][]int32
	for i := 0; i < 200; i++ {
		tx := randomItems(rng, 8, 100)
		txs = append(txs, tx)
		b.Insert(tx)
	}
	for _, pos := range []int{0, 50, 199} {
		if err := b.Delete(pos, txs[pos]); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "index.bbs")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Deleted() != 3 || loaded.Live() != 197 {
		t.Fatalf("loaded Deleted=%d Live=%d", loaded.Deleted(), loaded.Live())
	}
	for _, pos := range []int{0, 50, 199} {
		if loaded.IsLive(pos) {
			t.Errorf("position %d live after reload", pos)
		}
	}
	if !loaded.IsLive(1) {
		t.Error("live position dead after reload")
	}
	// Estimates agree with the original post-deletion index.
	for trial := 0; trial < 30; trial++ {
		itemset := []int32{txs[10][0]}
		ea, va := b.CountItemSet(itemset)
		eb, vb := loaded.CountItemSet(itemset)
		if ea != eb || !va.Equal(vb) {
			t.Fatalf("reloaded index disagrees: %d vs %d", ea, eb)
		}
	}
}

func TestFoldPreservesDeletions(t *testing.T) {
	b, txs := runningExample(nil)
	if err := b.Delete(4, txs[4].Items); err != nil {
		t.Fatal(err)
	}
	folded, err := b.Fold(4)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Live() != 4 || folded.IsLive(4) {
		t.Errorf("fold lost deletions: Live=%d IsLive(4)=%v", folded.Live(), folded.IsLive(4))
	}
	est, v := folded.CountItemSet([]int32{1})
	if v.Get(4) {
		t.Error("deleted row set in folded result")
	}
	if est < 4 {
		t.Errorf("folded estimate %d below live actual 4", est)
	}
}
