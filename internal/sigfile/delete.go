package sigfile

import (
	"fmt"

	"bbsmine/internal/bitvec"
)

// Deletion support. The paper's BBS handles growth natively; deletions are
// this implementation's extension, built from the same primitives the paper
// uses for constraints (Section 3.4): a live-row mask AND-ed into every
// slice intersection. Bits of deleted transactions remain set in the
// slices (a Bloom bit cannot be unset — other transactions may share it),
// but the mask removes the row from every estimate, so Lemmas 1–4 continue
// to hold over the live rows. The exact 1-itemset counters are decremented
// with the deleted transaction's items, so the DualFilter's certificates
// (Lemma 5 / Corollary 1) also remain sound. Space is reclaimed by
// rebuilding (compaction), which the facade drives.

// Delete marks the transaction at ordinal position pos as deleted, given
// its items (needed to maintain the exact 1-itemset counters). Deleting a
// position twice or out of range is an error.
func (b *BBS) Delete(pos int, items []int32) error {
	if pos < 0 || pos >= b.n {
		return fmt.Errorf("sigfile: delete position %d out of range [0,%d)", pos, b.n)
	}
	if b.live == nil {
		b.live = bitvec.New(b.n)
		b.live.SetAll()
		b.cowLive = false // freshly built, shared with no snapshot
	}
	if !b.live.Get(pos) {
		return fmt.Errorf("sigfile: position %d already deleted", pos)
	}
	b.mutableLive().Clear(pos)
	b.deleted++

	counts := b.mutableItemCounts()
	seen := make(map[int32]struct{}, len(items))
	for _, it := range items {
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		if c := counts[it]; c > 1 {
			counts[it] = c - 1
		} else {
			delete(counts, it)
		}
	}
	return nil
}

// IsLive reports whether the transaction at pos has not been deleted.
// Out-of-range positions report false.
func (b *BBS) IsLive(pos int) bool {
	if pos < 0 || pos >= b.n {
		return false
	}
	return b.live == nil || b.live.Get(pos)
}

// Deleted returns the number of tombstoned transactions.
func (b *BBS) Deleted() int { return b.deleted }

// Live returns the number of live (non-deleted) transactions.
func (b *BBS) Live() int { return b.n - b.deleted }
