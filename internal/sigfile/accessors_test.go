package sigfile

import (
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/sighash"
)

func TestAccessors(t *testing.T) {
	var stats iostat.Stats
	h := sighash.NewMod(8)
	b := New(h, &stats)
	if b.Hasher() != h {
		t.Error("Hasher() does not return the construction hasher")
	}
	if b.Stats() != &stats {
		t.Error("Stats() does not return the construction sink")
	}
	if b.MaxTransactionItems() != 0 {
		t.Error("MaxTransactionItems non-zero on empty index")
	}
	b.Insert([]int32{1, 2, 3})
	b.Insert([]int32{4})
	b.Insert([]int32{5, 5, 6, 1}) // unsorted path: 3 distinct
	if got := b.MaxTransactionItems(); got != 3 {
		t.Errorf("MaxTransactionItems = %d, want 3", got)
	}
}

func TestAverageSignatureBits(t *testing.T) {
	b := New(sighash.NewMod(8), nil)
	if got := b.AverageSignatureBits(); got != 0 {
		t.Errorf("empty index average = %f", got)
	}
	b.Insert([]int32{0, 1}) // positions 0,1
	b.Insert([]int32{2})    // position 2
	// Total set bits = 3 over 2 transactions.
	if got := b.AverageSignatureBits(); got != 1.5 {
		t.Errorf("AverageSignatureBits = %f, want 1.5", got)
	}
}

func TestColdReadAndEvict(t *testing.T) {
	var stats iostat.Stats
	b := New(sighash.NewMod(8), &stats)
	for i := 0; i < 100; i++ {
		b.Insert([]int32{int32(i % 8)})
	}
	b.ChargeColdRead()
	first := stats.SlicePageReads()
	if first == 0 {
		t.Fatal("cold read charged nothing")
	}
	b.ChargeColdRead()
	if stats.SlicePageReads() != first {
		t.Error("warm read charged pages")
	}
	b.EvictCache()
	b.ChargeColdRead()
	if stats.SlicePageReads() != 2*first {
		t.Errorf("post-evict read charged %d, want %d", stats.SlicePageReads()-first, first)
	}
	// Growth charges only the delta (page-granular).
	for i := 0; i < 100000; i++ {
		b.Insert([]int32{int32(i % 8)})
	}
	b.ChargeColdRead()
	grown := stats.SlicePageReads()
	if grown <= 2*first {
		t.Error("grown index charged nothing for the tail")
	}
}

func TestResultSlice(t *testing.T) {
	var stats iostat.Stats
	b := New(sighash.NewMod(8), &stats)
	b.Insert([]int32{3})
	s := b.ResultSlice(3)
	if !s.Get(0) {
		t.Error("slice 3 bit 0 not set after inserting item 3")
	}
	if stats.SlicePageReads() == 0 {
		t.Error("ResultSlice did not charge a read")
	}
}
