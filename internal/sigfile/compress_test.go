package sigfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/sighash"
)

// sparseIndex builds an index whose slices are rare enough that the
// adaptive encoding actually engages: wide m, few hash hits per slice.
func sparseIndex(rng *rand.Rand, txns int) (*BBS, [][]int32) {
	idx := New(sighash.NewMD5(2048, 4), nil)
	txs := make([][]int32, txns)
	for i := range txs {
		txs[i] = randomItems(rng, 5, 400)
		idx.Insert(txs[i])
	}
	return idx, txs
}

// compareCounts drives CountIntoBuf over many random itemsets on both
// indexes and requires byte-identical result vectors and estimates.
func compareCounts(t *testing.T, rng *rand.Rand, a, b *BBS, trials int) {
	t.Helper()
	va, vb := bitvec.New(0), bitvec.New(0)
	var bufA, bufB []int
	for trial := 0; trial < trials; trial++ {
		items := randomItems(rng, 1+rng.Intn(4), 400)
		ea := a.CountIntoBuf(va, items, &bufA)
		eb := b.CountIntoBuf(vb, items, &bufB)
		if ea != eb {
			t.Fatalf("itemset %v: estimates %d vs %d", items, ea, eb)
		}
		if !va.Equal(vb) {
			t.Fatalf("itemset %v: result vectors differ", items)
		}
	}
}

// SetCompression must engage on a sparse index, shrink the resident bytes
// at least twofold, and change no answer — including after deletions and
// on folded replicas, and back after decompressing. The dense twin is an
// identical index built from the same seed.
func TestSetCompressionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	idx, txs := sparseIndex(rng, 1500)
	dense, _ := sparseIndex(rand.New(rand.NewSource(91)), 1500)

	idx.SetCompression(true)
	if !idx.Compressed() {
		t.Fatal("Compressed() false after SetCompression(true)")
	}
	d, s, r := idx.EncodingCounts()
	if s+r == 0 {
		t.Fatalf("no slice compressed (dense %d, sparse %d, rle %d)", d, s, r)
	}
	if got, logical := idx.ResidentSliceBytes(), idx.TotalBytes(); got*2 > logical {
		t.Fatalf("resident %d bytes, logical %d: less than 2x reduction", got, logical)
	}
	checkSliceOnes(t, idx)
	compareCounts(t, rng, idx, dense, 200)

	for i := 0; i < 300; i++ { // tombstone the same rows on both sides
		pos := rng.Intn(len(txs))
		if idx.IsLive(pos) {
			if err := idx.Delete(pos, txs[pos]); err != nil {
				t.Fatal(err)
			}
			if err := dense.Delete(pos, txs[pos]); err != nil {
				t.Fatal(err)
			}
		}
	}
	compareCounts(t, rng, idx, dense, 150)

	fc, err := idx.Fold(96)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := dense.Fold(96)
	if err != nil {
		t.Fatal(err)
	}
	if !fc.Compressed() {
		t.Error("fold of a compressed index lost the policy")
	}
	checkSliceOnes(t, fc)
	compareCounts(t, rng, fc, fd, 150)

	idx.SetCompression(false)
	if _, s, r := idx.EncodingCounts(); s+r != 0 {
		t.Fatalf("SetCompression(false) left %d sparse and %d rle slices", s, r)
	}
	compareCounts(t, rng, idx, dense, 100)
}

// Inserts after compression must keep answering identically to an
// uncompressed twin fed the same stream (the hysteresis never changes
// bits, only representations).
func TestInsertAfterCompressionParity(t *testing.T) {
	idx, _ := sparseIndex(rand.New(rand.NewSource(93)), 1000)
	idx.SetCompression(true)
	twin, _ := sparseIndex(rand.New(rand.NewSource(93)), 1000)

	rng := rand.New(rand.NewSource(92))
	for i := 0; i < 500; i++ {
		items := randomItems(rng, 5, 400)
		idx.Insert(items)
		twin.Insert(items)
	}
	checkSliceOnes(t, idx)
	compareCounts(t, rng, idx, twin, 150)
}

// A compressed index must survive a Save/Load round trip with encodings,
// popcounts, policy and answers intact.
func TestSaveLoadCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	idx, txs := sparseIndex(rng, 1200)
	for i := 0; i < 100; i++ {
		pos := rng.Intn(len(txs))
		if idx.IsLive(pos) {
			if err := idx.Delete(pos, txs[pos]); err != nil {
				t.Fatal(err)
			}
		}
	}
	idx.SetCompression(true)

	path := t.TempDir() + "/idx.bbs"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, idx.Hasher(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Compressed() {
		t.Error("compression policy lost across save/load")
	}
	for p := range idx.slices {
		if got, want := loaded.SliceEncoding(p), idx.SliceEncoding(p); got != want {
			t.Fatalf("slice %d encoding %v, want %v", p, got, want)
		}
		if got, want := loaded.sliceOnes[p], idx.sliceOnes[p]; got != want {
			t.Fatalf("slice %d ones %d, want %d", p, got, want)
		}
	}
	checkSliceOnes(t, loaded)
	// Exact resident bytes differ from the pre-save index: lazily-grown
	// dense slices are padded to full length on disk, so the loaded side
	// reports the honest full footprint. The compression must still hold.
	if got, logical := loaded.ResidentSliceBytes(), loaded.TotalBytes(); got*2 > logical {
		t.Fatalf("loaded resident %d bytes, logical %d: less than 2x reduction", got, logical)
	}
	compareCounts(t, rng, loaded, idx, 150)
}

// writeToV2 serializes an index in the legacy BBSSIG02 layout, byte for
// byte what the previous release wrote, so the compatibility path is
// tested against the real old format rather than a fixture that could
// drift.
func writeToV2(b *BBS, w *bytes.Buffer) {
	w.Write(sigMagicV2[:])
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(b.M()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(b.hasher.K()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(b.n))
	w.Write(hdr)
	items := b.Items()
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(items)))
	w.Write(cnt[:])
	pair := make([]byte, 12)
	for _, it := range items {
		binary.LittleEndian.PutUint32(pair[0:4], uint32(it))
		binary.LittleEndian.PutUint64(pair[4:12], uint64(b.itemCounts[it]))
		w.Write(pair)
	}
	wordBuf := make([]byte, 8)
	if b.live == nil {
		w.WriteByte(0)
	} else {
		w.WriteByte(1)
		binary.LittleEndian.PutUint64(wordBuf, uint64(b.deleted))
		w.Write(wordBuf)
		for _, word := range b.live.Words() {
			binary.LittleEndian.PutUint64(wordBuf, word)
			w.Write(wordBuf)
		}
	}
	fullWords := (b.n + 63) / 64
	var zero [8]byte
	for _, s := range b.slices {
		ws := s.Materialize().Words()
		for _, word := range ws {
			binary.LittleEndian.PutUint64(wordBuf, word)
			w.Write(wordBuf)
		}
		for wi := len(ws); wi < fullWords; wi++ {
			w.Write(zero[:])
		}
	}
}

// The legacy flat format must still load — recounting popcounts as it
// always did — and answer identically.
func TestLoadV2Compat(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	idx, txs := randomIndex(rng, 128, 4, 300)
	for i := 0; i < 40; i++ {
		pos := rng.Intn(len(txs))
		if idx.IsLive(pos) {
			if err := idx.Delete(pos, txs[pos]); err != nil {
				t.Fatal(err)
			}
		}
	}

	var buf bytes.Buffer
	writeToV2(idx, &buf)
	loaded, err := decodeBBS(bufio.NewReader(&buf), idx.Hasher(), nil)
	if err != nil {
		t.Fatalf("v2 load: %v", err)
	}
	if loaded.Compressed() {
		t.Error("v2 file loaded with compression policy on")
	}
	checkSliceOnes(t, loaded)
	if loaded.Deleted() != idx.Deleted() || loaded.Len() != idx.Len() {
		t.Fatalf("v2 load: %d/%d deleted, %d/%d rows", loaded.Deleted(), idx.Deleted(), loaded.Len(), idx.Len())
	}
	compareCounts(t, rng, loaded, idx, 100)
}

// Merging shards with different encodings — one compressed, one dense, one
// mixed by later inserts — must agree with merging their dense twins.
func TestMergeMixedEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	h := sighash.NewMD5(1024, 4)

	build := func(seed int64, txns int) *BBS {
		r := rand.New(rand.NewSource(seed))
		b := New(h, nil)
		for i := 0; i < txns; i++ {
			b.Insert(randomItems(r, 5, 300))
		}
		return b
	}

	partA, partB, partC := build(1, 900), build(2, 700), build(3, 800)
	twinA, twinB, twinC := build(1, 900), build(2, 700), build(3, 800)

	partA.SetCompression(true) // fully compressed shard
	partC.SetCompression(true)
	cr := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ { // appends re-mix partC's encodings
		items := randomItems(cr, 5, 300)
		partC.Insert(items)
		twinC.Insert(items)
	}

	merged, err := Merge([]*BBS{partA, partB, partC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Merge([]*BBS{twinA, twinB, twinC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Compressed() {
		t.Error("merge led by a compressed part lost the policy")
	}
	checkSliceOnes(t, merged)
	for p := 0; p < merged.M(); p++ {
		mv, rv := merged.ResultSlice(p), ref.ResultSlice(p)
		if !mv.Equal(rv) {
			t.Fatalf("slice %d differs between mixed and dense merge", p)
		}
	}
	compareCounts(t, rng, merged, ref, 150)
}

// A snapshot taken before SetCompression must keep its dense slices and
// answers while the master re-encodes under it.
func TestSnapshotSurvivesCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	idx, _ := sparseIndex(rng, 1000)
	snap := idx.Snapshot()

	before := make([]*bitvec.Vector, idx.M())
	for p := range before {
		before[p] = snap.ResultSlice(p).Clone()
	}
	idx.SetCompression(true)
	for p := range before {
		if snap.SliceEncoding(p) != bitvec.EncDense {
			t.Fatalf("snapshot slice %d re-encoded under the reader", p)
		}
		if !snap.ResultSlice(p).Equal(before[p]) {
			t.Fatalf("snapshot slice %d changed under the reader", p)
		}
	}
	compareCounts(t, rng, idx, snap, 100)

	// And the master keeps honoring copy-on-write for slices that stayed
	// shared (encoding already matched, e.g. tiny or dense-chosen ones).
	idx.Insert(randomItems(rng, 5, 400))
	if idx.Len() != snap.Len()+1 {
		t.Fatalf("master length %d, snapshot %d", idx.Len(), snap.Len())
	}
}

// Corrupt v3 slice records must be rejected, not absorbed.
func TestLoadRejectsCorruptSliceRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	idx, _ := sparseIndex(rng, 800)
	idx.SetCompression(true)

	var good bytes.Buffer
	if err := idx.writeTo(&good); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBBS(bufio.NewReader(bytes.NewReader(good.Bytes())), idx.Hasher(), nil); err != nil {
		t.Fatalf("pristine bytes rejected: %v", err)
	}

	// Find the first sparse slice record and corrupt its popcount field.
	target := -1
	for p := range idx.slices {
		if idx.SliceEncoding(p) == bitvec.EncSparse {
			target = p
			break
		}
	}
	if target < 0 {
		t.Skip("no sparse slice in the test index")
	}
	off := sliceRecordOffset(idx, target)
	bad := append([]byte(nil), good.Bytes()...)
	binary.LittleEndian.PutUint64(bad[off:off+8], uint64(idx.sliceOnes[target]+1))
	if _, err := decodeBBS(bufio.NewReader(bytes.NewReader(bad)), idx.Hasher(), nil); err == nil {
		t.Error("corrupt sparse popcount accepted")
	}
}

// sliceRecordOffset computes where slice p's record starts in the v3
// serialization of b — mirroring the writer's layout arithmetic.
func sliceRecordOffset(b *BBS, p int) int {
	off := 8 + 17 // magic + m/k/n/flags
	off += 4 + 12*len(b.Items())
	off++ // live flag
	if b.live != nil {
		off += 8 + 8*len(b.live.Words())
	}
	fullWords := (b.n + 63) / 64
	for q := 0; q < p; q++ {
		off += 8 + 1 // ones + enc
		switch b.SliceEncoding(q) {
		case bitvec.EncDense:
			off += 8 * fullWords
		case bitvec.EncSparse:
			off += 4 + 4*len(b.slices[q].Positions())
		default:
			off += 4 + 4*len(b.slices[q].Runs())
		}
	}
	return off
}
