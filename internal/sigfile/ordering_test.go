package sigfile

import (
	"math/rand"
	"testing"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/sighash"
)

// naiveCountInto is the seed's CountInto: live mask, then the itemset's
// slices in ascending position order, no popcount ordering. The rarest-first
// path must match it bit for bit.
func naiveCountInto(b *BBS, dst *bitvec.Vector, items []int32) int {
	dst.Grow(b.n)
	est := b.n
	if b.live != nil {
		dst.CopyFrom(b.live)
		est = b.Live()
	} else {
		dst.SetAll()
	}
	for _, p := range sighash.SignatureBits(b.hasher, items) {
		est = dst.AndCountZX(b.slices[p].Materialize())
		if est == 0 {
			break
		}
	}
	return est
}

// checkSliceOnes asserts the incremental per-slice popcounts against a
// recount of every slice.
func checkSliceOnes(t *testing.T, b *BBS) {
	t.Helper()
	for p, s := range b.slices {
		if got, want := b.sliceOnes[p], s.Materialize().Count(); got != want {
			t.Fatalf("sliceOnes[%d] = %d, recount says %d", p, got, want)
		}
		if got := s.Ones(); got != b.sliceOnes[p] {
			t.Fatalf("slice %d Ones() = %d, sliceOnes says %d", p, got, b.sliceOnes[p])
		}
	}
}

// randomIndex builds a BBS over random transactions and returns the
// transactions for later deletions.
func randomIndex(rng *rand.Rand, m, k, txns int) (*BBS, [][]int32) {
	idx := New(sighash.NewMD5(m, k), nil)
	txs := make([][]int32, txns)
	for i := range txs {
		txs[i] = randomItems(rng, 8, 500)
		idx.Insert(txs[i])
	}
	return idx, txs
}

// The maintained popcounts must survive inserts (including same-slice hash
// collisions), folds, and a save/load round trip.
func TestSliceOnesMaintained(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	idx, _ := randomIndex(rng, 64, 4, 300) // narrow m forces collisions
	checkSliceOnes(t, idx)

	folded, err := idx.Fold(16)
	if err != nil {
		t.Fatal(err)
	}
	checkSliceOnes(t, folded)

	path := t.TempDir() + "/idx.bbs"
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, idx.Hasher(), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkSliceOnes(t, loaded)
}

// OrderRarestFirst must sort by ascending popcount with position breaking
// ties, and must be a permutation of its input.
func TestOrderRarestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	idx, _ := randomIndex(rng, 128, 4, 200)
	for trial := 0; trial < 100; trial++ {
		pos := rng.Perm(128)[:1+rng.Intn(20)]
		before := append([]int(nil), pos...)
		idx.OrderRarestFirst(pos)
		if len(pos) != len(before) {
			t.Fatalf("length changed: %d -> %d", len(before), len(pos))
		}
		seen := map[int]bool{}
		for _, p := range before {
			seen[p] = true
		}
		for i, p := range pos {
			if !seen[p] {
				t.Fatalf("position %d not a permutation of the input", p)
			}
			if i == 0 {
				continue
			}
			a, b := pos[i-1], pos[i]
			if idx.sliceOnes[a] > idx.sliceOnes[b] ||
				(idx.sliceOnes[a] == idx.sliceOnes[b] && a > b) {
				t.Fatalf("pos[%d]=%d (ones %d) before pos[%d]=%d (ones %d)",
					i-1, a, idx.sliceOnes[a], i, b, idx.sliceOnes[b])
			}
		}
	}
}

// Rarest-first CountInto must return the same estimate and the same result
// vector as the naive ascending order, on fresh indexes, after deletions
// (live mask in play), and on folded MemBBS replicas.
func TestCountIntoRarestFirstMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	idx, txs := randomIndex(rng, 256, 4, 400)

	compare := func(t *testing.T, b *BBS) {
		t.Helper()
		got, want := bitvec.New(0), bitvec.New(0)
		var posBuf []int
		for trial := 0; trial < 200; trial++ {
			items := randomItems(rng, 5, 500)
			eg := b.CountIntoBuf(got, items, &posBuf)
			ew := naiveCountInto(b, want, items)
			if eg != ew {
				t.Fatalf("itemset %v: rarest-first est %d, naive est %d", items, eg, ew)
			}
			if !got.Equal(want) {
				t.Fatalf("itemset %v: result vectors differ", items)
			}
		}
	}

	t.Run("fresh", func(t *testing.T) { compare(t, idx) })

	for i := 0; i < 120; i++ { // tombstone ~30% of the rows
		pos := rng.Intn(len(txs))
		if idx.IsLive(pos) {
			if err := idx.Delete(pos, txs[pos]); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Run("post-delete", func(t *testing.T) { compare(t, idx) })

	folded, err := idx.Fold(48)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("folded", func(t *testing.T) { compare(t, folded) })
}

// CountInto (the allocating wrapper) must agree with CountIntoBuf.
func TestCountIntoWrapsBuf(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	idx, _ := randomIndex(rng, 128, 4, 150)
	a, b := bitvec.New(0), bitvec.New(0)
	var posBuf []int
	for trial := 0; trial < 50; trial++ {
		items := randomItems(rng, 4, 500)
		if ea, eb := idx.CountInto(a, items), idx.CountIntoBuf(b, items, &posBuf); ea != eb || !a.Equal(b) {
			t.Fatalf("itemset %v: CountInto %d vs CountIntoBuf %d", items, ea, eb)
		}
	}
}
