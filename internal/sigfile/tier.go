package sigfile

import (
	"fmt"
	"sort"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/pager"
)

// Tiered slice storage.
//
// Tier splits the index's slices into a hot tier (payload resident, its
// bytes reserved against the pager budget) and a cold tier (payload
// serialized into a sealed page file, faulted page-at-a-time through the
// shared buffer pool during AND chains). The split is driven by observed
// AND participation — the per-slice touch counts internal/obs tallies
// during a profiling run — so the slices queries actually intersect stay
// pinned while the long tail pages in on demand.
//
// Tiering moves bytes, never bits: a cold slice keeps its header
// (encoding, length, popcount) resident, so rarest-first ordering, the
// early exit, and the estimates are computed from exactly the same values
// as the resident index, and the cold AND kernels are bit-identical to
// their resident counterparts. Results are byte-for-byte unchanged.
//
// The cold file is derived data — rebuilt from the authoritative index by
// the next Tier call — so losing it costs a rebuild, never correctness.

// coldSource adapts one extent of a pager.File to bitvec.PageSource.
// Faults that fail surface by panicking with a wrapped error (the
// PageSource contract): a cold read failing mid-AND has no local recovery,
// and cold files are rebuildable, so the process-level handler is the
// right place for it.
type coldSource struct {
	f    *pager.File
	base int64 // first payload page of this slice's extent
}

func (c coldSource) Page(k int) []byte {
	pg, err := c.f.Page(c.base + int64(k))
	if err != nil {
		panic(fmt.Errorf("sigfile: fault cold slice page: %w", err))
	}
	return pg
}

func (c coldSource) Release(k int) { c.f.Release(c.base + int64(k)) }
func (c coldSource) PageSize() int { return pager.PageSize }

// Tier re-platforms the index's slice storage on pg: slices ranked hottest
// by touches (AND-participation counts, index = slice position; nil falls
// back to smallest-payload-first) stay resident until their summed payload
// reaches hotBudget, and every other slice's payload moves to a sealed
// cold file at path, replaced in the index by a cold header that faults
// pages through pg during AND chains. The hot tier's bytes are reserved
// against pg's budget, so pinned-hot slices and faulted cold pages compete
// for one allowance.
//
// Single-writer only, like every mutation. Installing cold headers
// replaces slice pointers, which is snapshot-safe (a snapshot copied the
// pointer table and keeps reading the resident slices), but the usual
// serving discipline applies: call it from the commit loop, not under
// concurrent queries on the master.
func (b *BBS) Tier(pg *pager.Pager, path string, hotBudget int64, touches []uint64) error {
	if pg == nil {
		return fmt.Errorf("sigfile: tier without a pager")
	}
	if b.tierFile != nil {
		return fmt.Errorf("sigfile: index already tiered (cold file %s)", b.tierFile.Name())
	}

	// Rank hot-first: most-touched, then smallest payload (cheapest to keep),
	// then position for determinism.
	order := make([]int, len(b.slices))
	for i := range order {
		order[i] = i
	}
	touch := func(p int) uint64 {
		if p < len(touches) {
			return touches[p]
		}
		return 0
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if ta, tc := touch(a), touch(c); ta != tc {
			return ta > tc
		}
		if ba, bc := b.slices[a].Bytes(), b.slices[c].Bytes(); ba != bc {
			return ba < bc
		}
		return a < c
	})

	var hotBytes int64
	cold := make([]bool, len(b.slices))
	ncold := 0
	for _, p := range order {
		sz := b.slices[p].Bytes()
		if sz == 0 {
			continue // empty payload: staying hot is free
		}
		if hotBytes+sz <= hotBudget {
			hotBytes += sz
			continue
		}
		cold[p] = true
		ncold++
	}
	if ncold == 0 {
		pg.Reserve(hotBytes)
		b.tierPager = pg
		b.tierReserved = hotBytes
		b.publishStorage()
		return nil
	}

	// Write cold payloads in ascending position: deterministic layout, one
	// page-aligned extent per slice.
	w, err := pager.Create(path)
	if err != nil {
		return err
	}
	bases := make([]int64, len(b.slices))
	sizes := make([]int, len(b.slices))
	for p, s := range b.slices {
		if !cold[p] {
			continue
		}
		payload := s.EncodeCold()
		base, err := w.Append(payload)
		if err != nil {
			w.Abort()
			return err
		}
		bases[p] = base
		sizes[p] = len(payload)
	}
	if err := w.Seal(); err != nil {
		return err
	}
	f, err := pg.OpenCold(path)
	if err != nil {
		return err
	}

	for p, s := range b.slices {
		if !cold[p] {
			continue
		}
		b.slices[p] = bitvec.NewColdSlice(s.Encoding(), s.Len(), s.Ones(),
			coldSource{f: f, base: bases[p]}, sizes[p])
		if b.cow != nil {
			b.cow[p] = false // fresh header, shared with no snapshot
		}
		b.denseVec[p] = nil // cold slices always take the dispatch path
	}
	pg.Reserve(hotBytes)
	b.tierPager = pg
	b.tierReserved = hotBytes
	b.tierFile = f
	b.publishStorage()
	return nil
}

// Untier thaws every cold slice back to residency, returns the hot-tier
// reservation, and closes the cold file. The inverse of Tier; the cold
// file on disk is left behind (it is derived data — delete or overwrite it
// freely).
func (b *BBS) Untier() error {
	if b.tierPager == nil {
		return nil
	}
	for p, s := range b.slices {
		if !s.IsCold() {
			continue
		}
		b.slices[p] = s.Thaw()
		if b.cow != nil {
			b.cow[p] = false
		}
		b.refreshDense(p)
	}
	b.tierPager.Reserve(-b.tierReserved)
	b.tierReserved = 0
	b.tierPager = nil
	f := b.tierFile
	b.tierFile = nil
	b.publishStorage()
	return f.Close()
}

// Tiered reports whether the index's storage is currently tiered.
func (b *BBS) Tiered() bool { return b.tierPager != nil }

// TierCensus returns how many slices are pinned hot and how many are cold.
func (b *BBS) TierCensus() (hot, cold int) {
	for _, s := range b.slices {
		if s.IsCold() {
			cold++
		} else {
			hot++
		}
	}
	return hot, cold
}

// ColdPayloadBytes returns the summed cold-tier payload size in bytes.
func (b *BBS) ColdPayloadBytes() int64 {
	var total int64
	for _, s := range b.slices {
		total += s.ColdPayloadBytes()
	}
	return total
}
