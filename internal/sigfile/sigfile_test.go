package sigfile

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/iostat"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// runningExample builds the paper's Table 1 database with h(x) = x mod 8.
func runningExample(stats *iostat.Stats) (*BBS, []txdb.Transaction) {
	txs := []txdb.Transaction{
		txdb.NewTransaction(100, []int32{0, 1, 2, 3, 4, 5, 14, 15}),
		txdb.NewTransaction(200, []int32{1, 2, 3, 5, 6, 7}),
		txdb.NewTransaction(300, []int32{1, 5, 14, 15}),
		txdb.NewTransaction(400, []int32{0, 1, 2, 7}),
		txdb.NewTransaction(500, []int32{1, 2, 5, 6, 11, 15}),
	}
	b := New(sighash.NewMod(8), stats)
	for _, tx := range txs {
		b.Insert(tx.Items)
	}
	return b, txs
}

func TestRunningExampleVectors(t *testing.T) {
	// Paper Table 1: per-transaction bit vectors.
	h := sighash.NewMod(8)
	want := map[int][]int32{
		0: {0, 1, 2, 3, 4, 5, 14, 15}, // 11111111
		1: {1, 2, 3, 5, 6, 7},         // 01110111
		2: {1, 5, 14, 15},             // 01000111
		3: {0, 1, 2, 7},               // 11100001
		4: {1, 2, 5, 6, 11, 15},       // 01110111 (see note)
	}
	// Note: the paper's Table 1 prints transaction 500 as 01101111, i.e.
	// with bit 4 set and bit 3 clear — but 11 mod 8 = 3, so the correct
	// vector under the paper's own hash is 01110111. We reproduce the
	// mathematically correct value and record the paper's typo here.
	wantStr := []string{"11111111", "01110111", "01000111", "11100001", "01110111"}
	for i, items := range want {
		v := bitvec.New(8)
		for _, p := range sighash.SignatureBits(h, items) {
			v.Set(p)
		}
		if v.String() != wantStr[i] {
			t.Errorf("tx %d vector = %s, want %s", i, v.String(), wantStr[i])
		}
	}
}

func TestRunningExampleSlices(t *testing.T) {
	// Paper Table 2: the transposed BBS. Slice j holds bit j of each vector.
	b, _ := runningExample(nil)
	// Derive expected slices from the (corrected, see TestRunningExampleVectors)
	// Table 1 vectors instead of hand-copying Table 2:
	vectors := []string{"11111111", "01110111", "01000111", "11100001", "01110111"}
	for j := 0; j < 8; j++ {
		expect := make([]byte, 5)
		for i := 0; i < 5; i++ {
			expect[i] = vectors[i][j]
		}
		// Slices grow lazily, so pad to the index length before comparing:
		// the physical tail may be missing but is logically zero.
		padded := b.slices[j].Materialize()
		padded.Grow(b.n)
		got := padded.String()
		if got != string(expect) {
			t.Errorf("slice %d = %s, want %s", j, got, string(expect))
		}
	}
}

func TestRunningExampleCounts(t *testing.T) {
	// Paper Example 2: count({0,1}) = 2 (exact), count({1,3}) = 3 vs actual 2.
	b, txs := runningExample(nil)

	est, v := b.CountItemSet([]int32{0, 1})
	if est != 2 {
		t.Errorf("CountItemSet({0,1}) = %d, want 2", est)
	}
	if v.String() != "10010" {
		t.Errorf("result vector = %s, want 10010", v.String())
	}

	est, _ = b.CountItemSet([]int32{1, 3})
	if est != 3 {
		t.Errorf("CountItemSet({1,3}) = %d, want 3", est)
	}
	actual := 0
	for _, tx := range txs {
		if tx.Contains([]int32{1, 3}) {
			actual++
		}
	}
	if actual != 2 {
		t.Fatalf("actual count of {1,3} = %d, want 2 (test fixture wrong)", actual)
	}
}

func TestEmptyItemsetCountsEverything(t *testing.T) {
	b, _ := runningExample(nil)
	est, _ := b.CountItemSet(nil)
	if est != 5 {
		t.Errorf("CountItemSet(nil) = %d, want 5 (whole database)", est)
	}
}

func TestExactCounts(t *testing.T) {
	b, txs := runningExample(nil)
	counts := map[int32]int{}
	for _, tx := range txs {
		for _, it := range tx.Items {
			counts[it]++
		}
	}
	for it, want := range counts {
		if got := b.ExactCount(it); got != want {
			t.Errorf("ExactCount(%d) = %d, want %d", it, got, want)
		}
	}
	if got := b.ExactCount(999); got != 0 {
		t.Errorf("ExactCount(unknown) = %d, want 0", got)
	}
}

func TestItems(t *testing.T) {
	b, txs := runningExample(nil)
	want := map[int32]bool{}
	for _, tx := range txs {
		for _, it := range tx.Items {
			want[it] = true
		}
	}
	got := b.Items()
	if len(got) != len(want) {
		t.Fatalf("Items returned %d items, want %d", len(got), len(want))
	}
	for _, it := range got {
		if !want[it] {
			t.Errorf("unexpected item %d", it)
		}
	}
}

func TestInsertUnsortedAndDuplicates(t *testing.T) {
	b := New(sighash.NewMod(8), nil)
	b.Insert([]int32{5, 1, 5, 3, 1})
	if got := b.ExactCount(5); got != 1 {
		t.Errorf("ExactCount(5) = %d, want 1 (duplicate must count once)", got)
	}
	if got := b.ExactCount(1); got != 1 {
		t.Errorf("ExactCount(1) = %d, want 1", got)
	}
	est, _ := b.CountItemSet([]int32{1, 3, 5})
	if est != 1 {
		t.Errorf("CountItemSet = %d, want 1", est)
	}
}

func TestDynamicInsertMatchesBatch(t *testing.T) {
	// Inserting incrementally (the dynamic-database path) must produce the
	// same index as batch construction.
	rng := rand.New(rand.NewSource(11))
	h := sighash.NewMD5(256, 4)
	a := New(h, nil)
	bIdx := New(h, nil)
	var all [][]int32
	for i := 0; i < 300; i++ {
		tx := randomItems(rng, 10, 500)
		all = append(all, tx)
		a.Insert(tx)
	}
	for _, tx := range all {
		bIdx.Insert(tx)
	}
	probe := []int32{all[0][0]}
	ea, va := a.CountItemSet(probe)
	eb, vb := bIdx.CountItemSet(probe)
	if ea != eb || !va.Equal(vb) {
		t.Errorf("incremental vs batch mismatch: %d vs %d", ea, eb)
	}
}

func TestCountConstrained(t *testing.T) {
	b, txs := runningExample(nil)
	// Constraint: only even ordinal positions (transactions 100, 300, 500).
	c := bitvec.New(5)
	c.Set(0)
	c.Set(2)
	c.Set(4)
	est, v := b.CountConstrained([]int32{1, 5}, c)
	// All five transactions contain bit pattern of {1,5}? txns with items
	// {1,5}: 100, 200, 300, 500 actually contain both; estimate may be
	// higher. Constrained to even positions: 100, 300, 500 → at least 3.
	actual := 0
	for i, tx := range txs {
		if i%2 == 0 && tx.Contains([]int32{1, 5}) {
			actual++
		}
	}
	if est < actual {
		t.Errorf("constrained estimate %d below actual %d", est, actual)
	}
	if v.Count() != est {
		t.Errorf("vector count %d != estimate %d", v.Count(), est)
	}
	// Constraint with wrong length panics.
	defer func() {
		if recover() == nil {
			t.Error("mismatched constraint length did not panic")
		}
	}()
	b.CountConstrained([]int32{1}, bitvec.New(3))
}

func TestFoldPreservesNoFalseMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := sighash.NewMD5(512, 4)
	b := New(h, nil)
	var txs [][]int32
	for i := 0; i < 400; i++ {
		tx := randomItems(rng, 8, 300)
		txs = append(txs, tx)
		b.Insert(tx)
	}
	folded, err := b.Fold(64)
	if err != nil {
		t.Fatal(err)
	}
	if folded.M() != 64 {
		t.Fatalf("folded M = %d", folded.M())
	}
	if folded.Len() != b.Len() {
		t.Fatalf("folded Len = %d, want %d", folded.Len(), b.Len())
	}
	// Every actual occurrence must still be counted (Lemma 3 survives the
	// fold), and the folded estimate dominates the original estimate.
	for trial := 0; trial < 50; trial++ {
		src := txs[rng.Intn(len(txs))]
		if len(src) < 2 {
			continue
		}
		itemset := []int32{src[0], src[len(src)/2]}
		actual := 0
		for _, tx := range txs {
			if containsAll(tx, itemset) {
				actual++
			}
		}
		orig, _ := b.CountItemSet(itemset)
		fold, _ := folded.CountItemSet(itemset)
		if fold < orig {
			t.Errorf("folded estimate %d < original %d for %v", fold, orig, itemset)
		}
		if fold < actual {
			t.Errorf("folded estimate %d < actual %d for %v", fold, actual, itemset)
		}
	}
	// Exact 1-itemset counts survive the fold.
	for it, c := range b.itemCounts {
		if folded.ExactCount(it) != c {
			t.Errorf("folded ExactCount(%d) = %d, want %d", it, folded.ExactCount(it), c)
		}
	}
}

func TestFoldBadWidth(t *testing.T) {
	b, _ := runningExample(nil)
	for _, keep := range []int{0, -1, 9, 100} {
		if _, err := b.Fold(keep); err == nil {
			t.Errorf("Fold(%d) succeeded, want error", keep)
		}
	}
	if f, err := b.Fold(8); err != nil || f.M() != 8 {
		t.Errorf("Fold(m) should be allowed: %v", err)
	}
}

func TestAccounting(t *testing.T) {
	var stats iostat.Stats
	b, _ := runningExample(&stats)
	b.CountItemSet([]int32{0, 1})
	snap := stats.Snapshot()
	if snap.CountCalls != 1 {
		t.Errorf("CountCalls = %d, want 1", snap.CountCalls)
	}
	if snap.SliceAnds != 2 { // items 0 and 1 → two slices
		t.Errorf("SliceAnds = %d, want 2", snap.SliceAnds)
	}
	// In-memory ANDs are not I/O; page reads are charged per pass.
	if snap.SlicePageReads != 0 {
		t.Errorf("SlicePageReads = %d, want 0 before any charged pass", snap.SlicePageReads)
	}
	// The whole 8×5-bit index fits one page; slices are contiguous.
	b.ChargeFullRead()
	if got := stats.SlicePageReads(); got != 1 {
		t.Errorf("SlicePageReads after full read = %d, want 1", got)
	}
	b.ChargeSliceReads(3)
	if got := stats.SlicePageReads(); got != 2 {
		t.Errorf("SlicePageReads after 3 slice reads = %d, want 2", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := sighash.NewMD5(256, 4)
	b := New(h, nil)
	var txs [][]int32
	for i := 0; i < 500; i++ {
		tx := randomItems(rng, 10, 400)
		txs = append(txs, tx)
		b.Insert(tx)
	}
	path := filepath.Join(t.TempDir(), "index.bbs")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != b.Len() || loaded.M() != b.M() {
		t.Fatalf("loaded Len=%d M=%d, want Len=%d M=%d", loaded.Len(), loaded.M(), b.Len(), b.M())
	}
	for trial := 0; trial < 30; trial++ {
		src := txs[rng.Intn(len(txs))]
		itemset := []int32{src[0]}
		if len(src) > 2 {
			itemset = append(itemset, src[2])
		}
		ea, va := b.CountItemSet(itemset)
		eb, vb := loaded.CountItemSet(itemset)
		if ea != eb || !va.Equal(vb) {
			t.Fatalf("loaded index disagrees on %v: %d vs %d", itemset, ea, eb)
		}
	}
	for it := range b.itemCounts {
		if loaded.ExactCount(it) != b.ExactCount(it) {
			t.Fatalf("item count mismatch for %d", it)
		}
	}
	// Loaded index remains dynamic.
	loaded.Insert([]int32{1, 2, 3})
	if loaded.Len() != b.Len()+1 {
		t.Error("insert after load failed")
	}
}

func TestLoadRejectsMismatchedHasher(t *testing.T) {
	b, _ := runningExample(nil)
	path := filepath.Join(t.TempDir(), "index.bbs")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, sighash.NewMod(16), nil); err == nil {
		t.Error("Load with wrong m succeeded")
	}
	if _, err := Load(path, sighash.NewMD5(8, 4), nil); err == nil {
		t.Error("Load with wrong k succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := osWriteFile(path, []byte("garbage file")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, sighash.NewMod(8), nil); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing"), sighash.NewMod(8), nil); err == nil {
		t.Error("Load accepted missing file")
	}
}

// Property (Lemma 4): the estimate never undercounts the actual support.
func TestQuickEstimateDominatesActual(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	h := sighash.NewMD5(128, 4)
	b := New(h, nil)
	var txs [][]int32
	for i := 0; i < 200; i++ {
		tx := randomItems(rng, 8, 100)
		txs = append(txs, tx)
		b.Insert(tx)
	}
	f := func(rawA, rawB uint8) bool {
		itemset := []int32{int32(rawA % 100), int32(rawB % 100)}
		if itemset[0] == itemset[1] {
			itemset = itemset[:1]
		}
		actual := 0
		for _, tx := range txs {
			if containsAll(tx, itemset) {
				actual++
			}
		}
		est, v := b.CountItemSet(itemset)
		if est < actual {
			return false
		}
		// Lemma 3: every transaction containing the itemset has its bit set.
		for pos, tx := range txs {
			if containsAll(tx, itemset) && !v.Get(pos) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: with m == number of distinct items and a perfect (injective)
// hash, CountItemSet is exact (the paper's m = |I| extreme).
func TestPerfectHashIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const alphabet = 64
	b := New(sighash.NewMod(alphabet), nil) // injective for items < 64
	var txs [][]int32
	for i := 0; i < 300; i++ {
		tx := randomItems(rng, 8, alphabet)
		txs = append(txs, tx)
		b.Insert(tx)
	}
	for trial := 0; trial < 100; trial++ {
		itemset := randomItems(rng, 3, alphabet)
		actual := 0
		for _, tx := range txs {
			if containsAll(tx, itemset) {
				actual++
			}
		}
		est, _ := b.CountItemSet(itemset)
		if est != actual {
			t.Fatalf("perfect hash not exact: itemset %v est %d actual %d", itemset, est, actual)
		}
	}
}

func containsAll(tx []int32, itemset []int32) bool {
	for _, want := range itemset {
		found := false
		for _, it := range tx {
			if it == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// randomItems returns a sorted, deduplicated random itemset.
func randomItems(rng *rand.Rand, maxLen, alphabet int) []int32 {
	n := 1 + rng.Intn(maxLen)
	seen := map[int32]bool{}
	var out []int32
	for len(out) < n {
		it := int32(rng.Intn(alphabet))
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	h := sighash.NewMD5(1600, 4)
	idx := New(h, nil)
	txs := make([][]int32, 1000)
	for i := range txs {
		txs[i] = randomItems(rng, 10, 10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Insert(txs[i%1000])
	}
}

func BenchmarkCountItemSet(b *testing.B) {
	rng := rand.New(rand.NewSource(71))
	h := sighash.NewMD5(1600, 4)
	idx := New(h, nil)
	for i := 0; i < 10000; i++ {
		idx.Insert(randomItems(rng, 10, 10000))
	}
	itemset := []int32{5, 17}
	dst := idx.NewResult()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.CountInto(dst, itemset)
	}
}
