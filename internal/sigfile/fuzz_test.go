package sigfile

import (
	"bufio"
	"bytes"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/sighash"
)

// fuzzHasher matches the (m, k) the seed corpus is encoded with; only
// inputs carrying that header get past the parameter check, which is
// exactly the population worth fuzzing — the rest of the format.
func fuzzHasher() sighash.Hasher { return sighash.NewMD5(16, 2) }

// encodeBBS serializes a BBS with the same writer Save uses.
func encodeBBS(t testing.TB, b *BBS) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := b.writeTo(w); err != nil {
		t.Fatalf("writeTo: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// seedBBS builds a small index, with one deletion so the live-mask section
// of the format is present in the corpus.
func seedBBS(t testing.TB) *BBS {
	t.Helper()
	b := New(fuzzHasher(), &iostat.Stats{})
	txs := [][]int32{{1, 2, 3}, {2, 3}, {1, 4}, {5}}
	for _, tx := range txs {
		b.Insert(tx)
	}
	if err := b.Delete(1, txs[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	return b
}

// FuzzDecodeBBS drives the persistence decoder with arbitrary bytes: it
// must never panic, and whenever it accepts an input, re-encoding the
// decoded index and decoding that again must reproduce the same bytes —
// the fixed point that pins both directions of the format.
func FuzzDecodeBBS(f *testing.F) {
	full := encodeBBS(f, seedBBS(f))
	f.Add(full)
	f.Add(full[:len(full)-3]) // truncated mid-slice
	f.Add([]byte("BBSSIG02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := decodeBBS(bufio.NewReader(bytes.NewReader(data)), fuzzHasher(), &iostat.Stats{})
		if err != nil {
			return
		}
		enc := encodeBBS(t, b)
		b2, err := decodeBBS(bufio.NewReader(bytes.NewReader(enc)), fuzzHasher(), &iostat.Stats{})
		if err != nil {
			t.Fatalf("re-decode of re-encoded index failed: %v", err)
		}
		if enc2 := encodeBBS(t, b2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not a fixed point: %d vs %d bytes", len(enc), len(enc2))
		}
	})
}

// TestDecodeBBSRoundTrip pins the exact-bytes round trip on the canonical
// seed (the fuzz target only checks it for inputs the fuzzer finds).
func TestDecodeBBSRoundTrip(t *testing.T) {
	b := seedBBS(t)
	enc := encodeBBS(t, b)
	got, err := decodeBBS(bufio.NewReader(bytes.NewReader(enc)), fuzzHasher(), &iostat.Stats{})
	if err != nil {
		t.Fatalf("decodeBBS: %v", err)
	}
	if !bytes.Equal(enc, encodeBBS(t, got)) {
		t.Fatal("decode(encode(b)) does not re-encode to the same bytes")
	}
	if got.Len() != b.Len() || got.Live() != b.Live() {
		t.Fatalf("n/live mismatch: %d/%d vs %d/%d", got.Len(), got.Live(), b.Len(), b.Live())
	}
}
