package sigfile

import (
	"math/rand"
	"testing"

	"bbsmine/internal/sighash"
)

func TestRowMajorMatchesBitSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	h := sighash.NewMD5(256, 4)
	sliced := New(h, nil)
	rows := NewRowMajor(h)
	var txs [][]int32
	for i := 0; i < 300; i++ {
		tx := randomItems(rng, 10, 200)
		txs = append(txs, tx)
		sliced.Insert(tx)
		rows.Insert(tx)
	}
	if rows.Len() != sliced.Len() {
		t.Fatalf("Len mismatch: %d vs %d", rows.Len(), sliced.Len())
	}
	for trial := 0; trial < 100; trial++ {
		src := txs[rng.Intn(len(txs))]
		itemset := []int32{src[0]}
		if len(src) > 3 {
			itemset = append(itemset, src[3])
		}
		a, _ := sliced.CountItemSet(itemset)
		b := rows.CountItemSet(itemset)
		if a != b {
			t.Fatalf("layouts disagree on %v: sliced %d, row-major %d", itemset, a, b)
		}
	}
}

func TestRowMajorRunningExample(t *testing.T) {
	h := sighash.NewMod(8)
	r := NewRowMajor(h)
	for _, items := range [][]int32{
		{0, 1, 2, 3, 4, 5, 14, 15},
		{1, 2, 3, 5, 6, 7},
		{1, 5, 14, 15},
		{0, 1, 2, 7},
		{1, 2, 5, 6, 11, 15},
	} {
		r.Insert(items)
	}
	if got := r.CountItemSet([]int32{0, 1}); got != 2 {
		t.Errorf("CountItemSet({0,1}) = %d, want 2", got)
	}
	if got := r.CountItemSet([]int32{1, 3}); got != 3 {
		t.Errorf("CountItemSet({1,3}) = %d, want 3 (overestimate, as in the paper)", got)
	}
	if got := r.CountItemSet(nil); got != 5 {
		t.Errorf("CountItemSet(nil) = %d, want 5", got)
	}
}
