package sigfile

import (
	"fmt"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/iostat"
)

// Merge builds one BBS covering the rows of every part, in block order:
// part 0's rows occupy positions [0, n0), part 1's rows [n0, n0+n1), and so
// on. Every part must have been built with the same hash scheme (same m and
// k over the same hash family), which is the caller's responsibility beyond
// the m/k equality checked here — exactly the contract Load already has.
//
// Merging is how the sharded index answers a full mining run: support
// counting is a sum over disjoint row sets (paper Corollary 1 applies
// per shard), so a block concatenation of the shards is row-permutation of
// the unsharded index, and every count, estimate and mined pattern is
// identical. The merged index shares no storage with the parts: the parts
// may be copy-on-write snapshots, and the result is a plain private index.
//
// The per-slice popcounts, exact 1-itemset counts, deleted counts and the
// max-transaction-width statistic all merge by summation (or max), so the
// merged index drives the rarest-first AND ordering and the adaptive fold
// width exactly as the unsharded index would.
func Merge(parts []*BBS, stats *iostat.Stats) (*BBS, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sigfile: merge of zero parts")
	}
	first := parts[0]
	for i, p := range parts[1:] {
		if p.M() != first.M() || p.hasher.K() != first.hasher.K() {
			return nil, fmt.Errorf("sigfile: merge part %d has m=%d k=%d, part 0 has m=%d k=%d",
				i+1, p.M(), p.hasher.K(), first.M(), first.hasher.K())
		}
	}

	total := 0
	deleted := 0
	offsets := make([]int, len(parts))
	for i, p := range parts {
		offsets[i] = total
		total += p.n
		deleted += p.deleted
	}

	b := New(first.hasher, stats)
	b.n = total
	b.deleted = deleted
	b.compress = first.compress
	for _, p := range parts {
		if p.maxTxnItems > b.maxTxnItems {
			b.maxTxnItems = p.maxTxnItems
		}
		for _, it := range p.Items() { // ascending, so the merge order is deterministic
			b.itemCounts[it] += p.itemCounts[it]
		}
	}

	words := (total + 63) / 64
	for j := 0; j < first.M(); j++ {
		dst := make([]uint64, words)
		ones := 0
		for i, p := range parts {
			// Each part blits its own encoding directly — a sparse part
			// sets its positions, an RLE part its runs, a dense part ORs
			// words — so mixed-encoding shards merge without materializing.
			// Bits past a part's logical length are zero by construction.
			p.slices[j].BlitInto(dst, offsets[i])
			ones += p.sliceOnes[j]
		}
		var v bitvec.Vector
		if err := v.SetWords(dst, total); err != nil {
			return nil, fmt.Errorf("sigfile: merge slice %d: %w", j, err)
		}
		// The parts' popcounts sum over disjoint row blocks, so the merged
		// slice wraps without a recount; the encoding is re-picked from the
		// merged contents when the policy asks for it.
		b.slices[j] = bitvec.DenseSliceWithOnes(&v, ones).Recompress(total, b.compress)
		b.refreshDense(j)
		b.sliceOnes[j] = ones
	}

	if deleted > 0 {
		live := bitvec.New(0)
		for _, p := range parts {
			if p.live == nil {
				for r := 0; r < p.n; r++ {
					live.Append(true)
				}
				continue
			}
			for r := 0; r < p.n; r++ {
				live.Append(p.live.Get(r))
			}
		}
		b.live = live
	}
	return b, nil
}
