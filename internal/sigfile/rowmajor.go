package sigfile

import (
	"bbsmine/internal/bitvec"
	"bbsmine/internal/sighash"
)

// RowMajor is the ablation counterpart of BBS: the same Bloom signatures
// stored one vector per transaction (the classic signature-file layout)
// instead of bit-sliced. Counting an itemset must test every transaction's
// signature against the query signature — O(n · |signature bits|) bit
// probes — whereas the bit-sliced layout ANDs whole 64-transaction words.
// The BenchmarkAblationLayout benchmark quantifies why the paper transposes
// the file.
type RowMajor struct {
	hasher sighash.Hasher
	rows   []*bitvec.Vector // one m-bit signature per transaction
}

// NewRowMajor returns an empty row-major signature file.
func NewRowMajor(h sighash.Hasher) *RowMajor {
	return &RowMajor{hasher: h}
}

// Len returns the number of transactions indexed.
func (r *RowMajor) Len() int { return len(r.rows) }

// Insert indexes one transaction's items.
func (r *RowMajor) Insert(items []int32) {
	v := bitvec.New(r.hasher.M())
	for _, p := range sighash.SignatureBits(r.hasher, items) {
		v.Set(p)
	}
	r.rows = append(r.rows, v)
}

// CountItemSet estimates the number of transactions containing the itemset
// by testing each row against the itemset's signature. The estimate is
// identical to the bit-sliced BBS built with the same hasher — only the
// access pattern differs.
func (r *RowMajor) CountItemSet(items []int32) int {
	bits := sighash.SignatureBits(r.hasher, items)
	count := 0
rows:
	for _, row := range r.rows {
		for _, p := range bits {
			if !row.Get(p) {
				continue rows
			}
		}
		count++
	}
	return count
}
