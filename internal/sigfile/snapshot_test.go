package sigfile

import (
	"math/rand"
	"sync"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/sighash"
)

// estimateAll returns the CountItemSet estimate and result-vector rendering
// for a fixed probe set of itemsets — a fingerprint of the index state.
func estimateAll(b *BBS, probes [][]int32) []string {
	out := make([]string, 0, 2*len(probes))
	for _, items := range probes {
		est, v := b.CountItemSet(items)
		padded := v.Clone()
		padded.Grow(b.Len())
		out = append(out, string(rune('0'+est%10)), padded.String())
	}
	return out
}

func probeSet(rng *rand.Rand, alphabet, count int) [][]int32 {
	probes := make([][]int32, count)
	for i := range probes {
		probes[i] = randomItems(rng, 4, alphabet)
	}
	return probes
}

// A snapshot must keep returning the estimates of its capture point no
// matter how the master mutates afterwards, and the master must behave
// exactly like an index that was never snapshotted.
func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const alphabet = 200
	master := New(sighash.NewMD5(128, 3), nil)
	shadow := New(sighash.NewMD5(128, 3), nil) // never snapshotted
	var txs [][]int32
	insert := func(items []int32) {
		master.Insert(items)
		shadow.Insert(items)
		txs = append(txs, items)
	}
	for i := 0; i < 150; i++ {
		insert(randomItems(rng, 8, alphabet))
	}
	probes := probeSet(rng, alphabet, 25)

	snap := master.Snapshot()
	atCapture := estimateAll(snap, probes)

	for round := 0; round < 3; round++ {
		for i := 0; i < 40; i++ {
			insert(randomItems(rng, 8, alphabet))
		}
		del := rng.Intn(len(txs))
		if master.IsLive(del) {
			if err := master.Delete(del, txs[del]); err != nil {
				t.Fatal(err)
			}
			if err := shadow.Delete(del, txs[del]); err != nil {
				t.Fatal(err)
			}
		}
		if got := estimateAll(snap, probes); !equalStrings(got, atCapture) {
			t.Fatalf("round %d: snapshot estimates drifted after master mutations", round)
		}
	}
	mGot, sGot := estimateAll(master, probes), estimateAll(shadow, probes)
	if !equalStrings(mGot, sGot) {
		t.Fatal("snapshotted master diverged from a never-snapshotted index")
	}
	for it := int32(0); it < alphabet; it++ {
		if master.ExactCount(it) != shadow.ExactCount(it) {
			t.Fatalf("item %d: exact count %d vs shadow %d", it, master.ExactCount(it), shadow.ExactCount(it))
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Writes after a snapshot must clone only what they touch: slices outside
// the inserted transaction's signature stay physically shared.
func TestSnapshotCopyOnWriteIsLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	master := New(sighash.NewMD5(256, 3), nil)
	for i := 0; i < 50; i++ {
		master.Insert(randomItems(rng, 6, 100))
	}
	snap := master.Snapshot()

	items := []int32{3, 7}
	touched := map[int]bool{}
	for _, it := range items {
		for _, p := range master.Hasher().Positions(it) {
			touched[p] = true
		}
	}
	master.Insert(items)

	shared, cloned := 0, 0
	for p := range master.slices {
		if master.slices[p] == snap.slices[p] {
			shared++
			if touched[p] {
				t.Fatalf("slice %d touched by the insert but still shared", p)
			}
		} else {
			cloned++
			if !touched[p] {
				t.Fatalf("slice %d cloned although the insert never touched it", p)
			}
		}
	}
	if cloned == 0 || shared == 0 {
		t.Fatalf("degenerate copy-on-write: %d cloned, %d shared", cloned, shared)
	}
	if cloned > len(items)*master.Hasher().K() {
		t.Fatalf("cloned %d slices, more than the %d the signature can touch", cloned, len(items)*master.Hasher().K())
	}
}

// Concurrent query clones over one snapshot, racing a mutating master, must
// be clean under -race and return identical results.
func TestQueryCloneConcurrentWithWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	master := New(sighash.NewMD5(128, 3), nil)
	for i := 0; i < 120; i++ {
		master.Insert(randomItems(rng, 8, 150))
	}
	probes := probeSet(rng, 150, 10)
	snap := master.Snapshot()
	want := estimateAll(snap.QueryClone(&iostat.Stats{}), probes)

	var wg sync.WaitGroup
	results := make([][]string, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				q := snap.QueryClone(&iostat.Stats{})
				results[g] = estimateAll(q, probes)
			}
		}(g)
	}
	// The master keeps writing while the queries run; its snapshot must not care.
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(104))
		for i := 0; i < 200; i++ {
			master.Insert(randomItems(wrng, 8, 150))
		}
	}()
	wg.Wait()
	for g, got := range results {
		if !equalStrings(got, want) {
			t.Fatalf("goroutine %d saw different snapshot results", g)
		}
	}
}

// A save/load round trip after lazy growth must reproduce the index: the
// persisted file pads short slices with the zero words they logically hold.
func TestSaveLoadAfterLazyGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	h := sighash.NewMD5(128, 3)
	master := New(h, nil)
	for i := 0; i < 60; i++ {
		master.Insert(randomItems(rng, 6, 120))
	}
	_ = master.Snapshot() // force copy-on-write mode
	// Sparse inserts leave most slices short.
	master.Insert([]int32{1})
	master.Insert([]int32{2, 3})

	path := t.TempDir() + "/lazy.bbs"
	if err := master.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	probes := probeSet(rng, 120, 20)
	if got, want := estimateAll(loaded, probes), estimateAll(master, probes); !equalStrings(got, want) {
		t.Fatal("estimates differ after save/load of a lazily-grown index")
	}
}

func TestEpochBump(t *testing.T) {
	b := New(sighash.NewMD5(64, 2), nil)
	if b.Epoch() != 0 {
		t.Fatalf("fresh index epoch = %d, want 0", b.Epoch())
	}
	if got := b.BumpEpoch(); got != 1 || b.Epoch() != 1 {
		t.Fatalf("after one bump: %d/%d, want 1/1", got, b.Epoch())
	}
	snap := b.Snapshot()
	b.BumpEpoch()
	if snap.Epoch() != 1 || b.Epoch() != 2 {
		t.Fatalf("snapshot pinned epoch %d (want 1), master %d (want 2)", snap.Epoch(), b.Epoch())
	}
}

// Deletions after a snapshot must clone the live mask, not mutate the shared one.
func TestSnapshotLiveMaskIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	master := New(sighash.NewMD5(64, 2), nil)
	var txs [][]int32
	for i := 0; i < 40; i++ {
		items := randomItems(rng, 5, 60)
		master.Insert(items)
		txs = append(txs, items)
	}
	if err := master.Delete(0, txs[0]); err != nil {
		t.Fatal(err)
	}
	snap := master.Snapshot()
	if err := master.Delete(1, txs[1]); err != nil {
		t.Fatal(err)
	}
	if !snap.IsLive(1) {
		t.Fatal("deleting on the master tombstoned the snapshot's row")
	}
	if snap.IsLive(0) {
		t.Fatal("snapshot lost the pre-snapshot deletion")
	}
	if master.IsLive(1) {
		t.Fatal("master delete did not stick")
	}
}
