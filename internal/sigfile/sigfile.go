// Package sigfile implements the paper's indexing structure: the Bit-Sliced
// Bloom-Filtered Signature File (BBS).
//
// Every transaction is mapped to an m-bit Bloom signature (k hash positions
// per item, via a sighash.Hasher). The file is stored transposed: slice j
// holds bit j of every transaction's signature, so the estimated number of
// transactions containing an itemset is obtained by AND-ing the slices
// selected by the itemset's signature and popcounting the result — algorithm
// CountItemSet (paper Fig. 1). The structure is dynamic and persistent:
// appending a transaction sets at most |items|·k bits and never rewrites
// existing data.
//
// Alongside the slices, a BBS keeps the exact support of every 1-itemset,
// the "additional information" that powers the paper's DualFilter
// (Lemma 5 / Corollary 1).
package sigfile

import (
	"fmt"
	"slices"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/pager"
	"bbsmine/internal/sighash"
)

// BBS is a bit-sliced Bloom-filtered signature file over n transactions.
type BBS struct {
	hasher sighash.Hasher
	slices []*bitvec.Slice // len == hasher.M(); each slice has up to n bits
	n      int             // transactions indexed so far

	// denseVec[p] is slice p's backing vector when (and only when) slice p
	// is dense, else nil — the AND fast path. Indexing this array costs the
	// same loads the classic all-dense layout paid, where going through the
	// Slice header would add a dependent cache line to every AND. Kept in
	// step by refreshDense at every site that installs or re-encodes a
	// slice; a stale nil is merely slow (the dispatch path is always
	// correct), a stale non-nil is a bug.
	denseVec []*bitvec.Vector

	// compress is the storage policy: when set, Fold, Merge and
	// SetCompression pick each slice's encoding (dense, sparse positions,
	// or run-length) by payload size, and the AND chain runs the
	// direct-on-compressed kernels. When clear every slice is dense — the
	// classic layout. Either way Insert appends under the current encoding
	// with hysteresis (see bitvec.Slice), so a write-heavy phase cannot
	// thrash representations.
	compress bool

	// sliceOnes[p] is the popcount of slice p, maintained incrementally by
	// Insert (and recomputed by Fold and Load). It drives the rarest-first
	// AND ordering: intersecting the sparsest slices first drags the
	// running estimate below τ in the fewest ANDs, so the early exit fires
	// sooner. Deletions do not clear slice bits, so the counts are over the
	// raw slices — exactly what ordering needs, since the live mask is
	// AND-ed before any slice.
	sliceOnes []int

	itemCounts map[int32]int // exact 1-itemset supports

	live    *bitvec.Vector // live-row mask; nil while nothing is deleted
	deleted int

	coldPages int64 // index pages already faulted into the buffer pool

	maxTxnItems int // largest distinct-item count among inserted transactions

	// Copy-on-write bookkeeping (see Snapshot). While cow[p] is set, slice p
	// is shared with at least one snapshot and must be cloned before its
	// first mutation; cowLive and cowItems guard the live mask and the exact
	// 1-itemset counters the same way. All nil/false on an index that has
	// never been snapshotted, so the non-serving paths pay nothing.
	cow      []bool
	cowLive  bool
	cowItems bool

	epoch uint64 // applied write batches; in-memory only, 0 after Load

	// Tiered storage bookkeeping (see tier.go). tierPager is non-nil while
	// Tier has split the slices into hot/cold; tierFile is the sealed cold
	// file backing the cold headers (nil when every slice fit the hot
	// budget); tierReserved is the hot-tier reservation to return at Untier.
	tierPager    *pager.Pager
	tierFile     *pager.File
	tierReserved int64

	stats *iostat.Stats
	obs   *obs.Registry // nil unless a mining run attached telemetry
}

// New returns an empty BBS using the given hasher. A nil stats disables
// accounting.
func New(h sighash.Hasher, stats *iostat.Stats) *BBS {
	if stats == nil {
		stats = &iostat.Stats{}
	}
	m := h.M()
	slices := make([]*bitvec.Slice, m)
	denseVec := make([]*bitvec.Vector, m)
	for i := range slices {
		slices[i] = bitvec.NewDenseSlice(0)
		denseVec[i] = slices[i].DenseVector()
	}
	return &BBS{
		hasher:     h,
		slices:     slices,
		denseVec:   denseVec,
		sliceOnes:  make([]int, m),
		itemCounts: make(map[int32]int),
		stats:      stats,
	}
}

// Hasher returns the hasher the index was built with.
func (b *BBS) Hasher() sighash.Hasher { return b.hasher }

// M returns the signature width in bits (the number of slices).
func (b *BBS) M() int { return len(b.slices) }

// Len returns the number of transactions indexed.
func (b *BBS) Len() int { return b.n }

// Stats returns the accounting sink.
func (b *BBS) Stats() *iostat.Stats { return b.stats }

// SetObserver attaches (nil: detaches) a telemetry registry. Attached, the
// bulk estimate path (CountIntoBuf) accounts its AND kernels and depths;
// detached, those paths run the uninstrumented loop. Call between runs, not
// during one.
func (b *BBS) SetObserver(o *obs.Registry) {
	b.obs = o
	b.publishStorage()
}

// publishStorage pushes the storage gauges — logical vs resident slice
// bytes and the per-encoding census — to the attached registry, if any.
// Called wherever the storage shape changes wholesale (attach, policy
// flips, folds); Insert's incremental growth is picked up at the next
// wholesale event, which is all a gauge needs.
func (b *BBS) publishStorage() {
	if b.obs == nil {
		return
	}
	dense, sparse, rle := b.EncodingCounts()
	b.obs.SetIndexStorage(b.TotalBytes(), b.ResidentSliceBytes(), dense, sparse, rle)
}

// Observer returns the attached telemetry registry, or nil.
func (b *BBS) Observer() *obs.Registry { return b.obs }

// Insert indexes one transaction's items at the next ordinal position.
// Position i of every slice corresponds to the i-th inserted transaction,
// which must equal its ordinal position in the backing txdb.Store.
// Items need not be sorted; duplicates contribute once to the exact
// 1-itemset counters.
//
// Slices grow lazily: only the slices this transaction's signature touches
// are lengthened, so a slice nobody has hashed to since the last Snapshot
// stays short — and stays shared with the snapshot. The missing tail is
// logically zero (no transaction set a bit there); the read paths apply it
// through the zero-extending kernels (bitvec.AndCountZX).
func (b *BBS) Insert(items []int32) {
	pos := b.n
	b.n++
	if b.live != nil {
		b.mutableLive().Append(true)
	}
	// Fast path: txdb transactions arrive strictly ascending, so every item
	// is distinct and counts can be bumped directly.
	sorted := true
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		if len(items) > b.maxTxnItems {
			b.maxTxnItems = len(items)
		}
		for _, it := range items {
			b.bumpItemCount(it)
			for _, p := range b.hasher.Positions(it) {
				b.setSliceBit(p, pos)
			}
		}
		return
	}
	seen := make(map[int32]struct{}, len(items))
	for _, it := range items {
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		b.bumpItemCount(it)
		for _, p := range b.hasher.Positions(it) {
			b.setSliceBit(p, pos)
		}
	}
	if len(seen) > b.maxTxnItems {
		b.maxTxnItems = len(seen)
	}
}

// bumpItemCount increments one exact 1-itemset counter, cloning the map
// first if a snapshot shares it.
func (b *BBS) bumpItemCount(it int32) {
	b.mutableItemCounts()[it]++
}

// setSliceBit sets bit pos of slice p, keeping the per-slice popcount in
// step. Several items of one transaction can hash to the same slice, so the
// count bumps only on a 0→1 transition. The slice is grown on demand (see
// Insert), cloned first when a snapshot shares it, and appends under its
// current encoding — a compressed slice whose payload outgrows the dense
// layout promotes itself (the hysteresis upper edge).
func (b *BBS) setSliceBit(p, pos int) {
	s := b.mutableSlice(p)
	if s.AppendSet(pos) {
		b.sliceOnes[p]++
	}
	if b.compress {
		// Lower hysteresis edge: a dense slice whose length has outgrown
		// its density demotes to a compressed form, so an index built
		// purely by appends compresses as it grows instead of waiting for
		// the next SetCompression/Fold/Load re-encode pass.
		if r := s.MaybeCompress(); r != s {
			b.slices[p] = r
			s = r
		}
	}
	// The append may have cloned (copy-on-write), promoted, or demoted
	// (hysteresis) the slice; either way the fast-path entry follows it.
	b.denseVec[p] = s.DenseVector()
}

// refreshDense re-derives the AND fast-path entry for slice p. Call after
// installing or re-encoding b.slices[p].
func (b *BBS) refreshDense(p int) {
	b.denseVec[p] = b.slices[p].DenseVector()
}

// SliceOnes returns the popcount of slice p, maintained incrementally.
func (b *BBS) SliceOnes(p int) int { return b.sliceOnes[p] }

// OrderRarestFirst reorders slice positions in place by ascending slice
// popcount, ties broken by ascending position so the order is deterministic
// for a given index state. AND-ing rarest-first maximizes the early exit:
// the sparsest slices pull the running estimate down fastest, and AND is
// commutative, so the surviving bits — and therefore every result — are
// unchanged. Insertion sort: position lists are short.
func (b *BBS) OrderRarestFirst(pos []int) {
	ones := b.sliceOnes
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0; j-- {
			a, p := pos[j], pos[j-1]
			if ones[a] > ones[p] || (ones[a] == ones[p] && a > p) {
				break
			}
			pos[j], pos[j-1] = p, a
		}
	}
}

// ExactCount returns the exact support of the 1-itemset {item}, maintained
// incrementally at insert time. This is the DualFilter's side information.
func (b *BBS) ExactCount(item int32) int { return b.itemCounts[item] }

// Items returns every item that appears in at least one indexed transaction,
// in ascending order. Allocates a fresh slice.
func (b *BBS) Items() []int32 {
	out := make([]int32, 0, len(b.itemCounts))
	//lint:ignore determinism the sort below imposes the order the map range lacks
	for it := range b.itemCounts {
		out = append(out, it)
	}
	slices.Sort(out)
	return out
}

// AverageSignatureBits returns the mean number of set bits per transaction
// signature (total set bits across all slices divided by the number of
// transactions). It characterizes the index's density, which the adaptive
// filtering uses to pick a sane fold width. Reads the maintained per-slice
// popcounts, so it costs O(m) rather than a pass over the slice words.
func (b *BBS) AverageSignatureBits() float64 {
	if b.n == 0 {
		return 0
	}
	total := 0
	for _, c := range b.sliceOnes {
		total += c
	}
	return float64(total) / float64(b.n)
}

// MaxTransactionItems returns the largest distinct-item count among the
// inserted transactions — the adaptive filtering keys its fold-width floor
// to it, because the heaviest transaction's signature saturates a
// too-narrow fold and destroys all pruning power.
func (b *BBS) MaxTransactionItems() int { return b.maxTxnItems }

// SliceBytes returns the size of one slice in bytes under the dense layout.
// Memory budgeting and I/O charging both use this logical size — a folded
// in-memory index is dense by construction, and the paper's cost model
// charges page reads over the flat file — so it is independent of the
// compression policy; ResidentSliceBytes reports the actual footprint.
func (b *BBS) SliceBytes() int64 { return int64((b.n + 7) / 8) }

// TotalBytes returns the total logical size of all slices in bytes.
func (b *BBS) TotalBytes() int64 { return b.SliceBytes() * int64(len(b.slices)) }

// ResidentSliceBytes returns the summed payload of every slice under its
// current encoding — the bytes the slices actually occupy in memory, the
// number the compression exists to shrink.
func (b *BBS) ResidentSliceBytes() int64 {
	var total int64
	for _, s := range b.slices {
		total += s.Bytes()
	}
	return total
}

// SliceEncoding reports the physical encoding of slice p.
func (b *BBS) SliceEncoding(p int) bitvec.Encoding { return b.slices[p].Encoding() }

// EncodingCounts returns how many slices are stored dense, sparse, and
// run-length encoded.
func (b *BBS) EncodingCounts() (dense, sparse, rle int) {
	for _, s := range b.slices {
		switch s.Encoding() {
		case bitvec.EncSparse:
			sparse++
		case bitvec.EncRLE:
			rle++
		default:
			dense++
		}
	}
	return dense, sparse, rle
}

// Compressed reports whether the adaptive-encoding policy is on.
func (b *BBS) Compressed() bool { return b.compress }

// SetCompression sets the storage policy and re-picks every slice's
// encoding to match: on, each slice adopts the smallest representation
// that beats the dense layout by the hysteresis margin; off, every slice
// is materialized dense. Call it after a bulk build or load — per-slice
// re-encoding is a full pass — and from the single writer only. Slices
// shared with a snapshot are never mutated: re-encoding installs a fresh
// slice, so snapshots keep reading the old one.
func (b *BBS) SetCompression(on bool) {
	b.compress = on
	for p, s := range b.slices {
		r := s.Recompress(b.n, on)
		if r != s {
			b.slices[p] = r
			if b.cow != nil {
				b.cow[p] = false // freshly built, shared with no snapshot
			}
		}
		b.refreshDense(p)
	}
	b.publishStorage()
}

// pagesForBytes converts a contiguous byte extent into whole pages, at
// least one. Slices are stored back to back, so several short slices share
// a page.
func pagesForBytes(n int64) int64 {
	p := (n + iostat.PageSize - 1) / iostat.PageSize
	if p == 0 {
		p = 1
	}
	return p
}

// AndSlice ANDs slice p into dst and returns the popcount of the result.
// dst must have length Len(). This is the primitive the miners use for
// incremental filtering: a child itemset reuses its parent's residual
// vector and only ANDs the new item's slices. It is an in-memory operation;
// reading the slices from storage is charged separately (ChargeFullRead /
// ChargeSliceReads) once per pass, matching the paper's model where the BBS
// is loaded and then operated on with bitwise instructions.
func (b *BBS) AndSlice(dst *bitvec.Vector, p int) int {
	b.stats.AddSliceAnd()
	// Slices grow lazily (see Insert), so slice p may be shorter than dst;
	// every kernel reads the missing tail as zeros. Dense slices — every
	// slice of an uncompressed index — branch straight to the classic
	// AndCountZX here, keeping the call depth of the all-dense layout;
	// compressed ones dispatch to their direct kernels. Identical bits
	// either way.
	if v := b.denseVec[p]; v != nil {
		return dst.AndCountZX(v)
	}
	return b.slices[p].AndCountInto(dst)
}

// ChargeFullRead charges one sequential pass over every slice — the cost of
// streaming through the whole index once. Slices are stored contiguously,
// so the pass costs ceil(TotalBytes / PageSize) pages. Used by the adaptive
// mode, whose passes cannot be cached by definition (memory is scarce).
func (b *BBS) ChargeFullRead() {
	b.stats.AddSlicePages(pagesForBytes(b.TotalBytes()))
}

// ChargeColdRead charges only the index pages not yet faulted into the
// buffer pool. A persistent index in a steady-state system stays resident
// (index pages go through the buffer pool, unlike sequential table scans,
// which use bypass rings), so a re-mine after an append pays only for the
// grown tail. The first call charges the whole index.
func (b *BBS) ChargeColdRead() {
	pages := pagesForBytes(b.TotalBytes())
	if pages > b.coldPages {
		b.stats.AddSlicePages(pages - b.coldPages)
		b.coldPages = pages
	}
}

// EvictCache forgets buffer-pool residency, so the next ChargeColdRead
// pays for the whole index again (used when a memory budget evicts it).
func (b *BBS) EvictCache() { b.coldPages = 0 }

// ChargeSliceReads charges n individual slice reads — the cost of an ad-hoc
// query that touches only the slices of one itemset's signature.
func (b *BBS) ChargeSliceReads(n int) {
	b.stats.AddSlicePages(pagesForBytes(int64(n) * b.SliceBytes()))
}

// NewResult returns a fresh vector of length Len() marking every live
// transaction — the identity for slice AND-ing. With no deletions this is
// all ones; after deletions it is the live-row mask, so every estimate and
// probe automatically excludes tombstoned rows.
func (b *BBS) NewResult() *bitvec.Vector {
	if b.live != nil {
		return b.live.Clone()
	}
	v := bitvec.New(b.n)
	v.SetAll()
	return v
}

// CountItemSet estimates the number of transactions containing the itemset,
// per paper Fig. 1: AND the slices selected by the itemset's signature and
// count the surviving bits. The returned vector marks the candidate
// transactions (its set bits are the ordinal positions Probe fetches); it is
// freshly allocated. By Lemma 4 the estimate never undercounts.
func (b *BBS) CountItemSet(items []int32) (int, *bitvec.Vector) {
	v := b.NewResult()
	n := b.CountInto(v, items)
	return n, v
}

// CountInto is CountItemSet with a caller-provided result vector: dst is
// overwritten with the slice intersection and the estimate is returned.
// Allocates a position scratch per call; loops that estimate many itemsets
// should hold one and use CountIntoBuf.
func (b *BBS) CountInto(dst *bitvec.Vector, items []int32) int {
	var buf []int
	return b.CountIntoBuf(dst, items, &buf)
}

// CountIntoBuf is CountInto with a caller-owned position scratch: *posBuf is
// reused (and grown through the pointer) across calls, so repeated estimates
// allocate nothing after warm-up. The slices are AND-ed rarest-first (see
// OrderRarestFirst) — a pure ordering change: when the loop runs to
// completion dst holds the full intersection regardless of order, and the
// early exit fires only at estimate 0, where dst is all-zero under any
// order. Estimates and result vectors are therefore byte-identical to the
// ascending-position order.
//
//lint:hotpath
func (b *BBS) CountIntoBuf(dst *bitvec.Vector, items []int32, posBuf *[]int) int {
	b.stats.AddCountCall()
	dst.Grow(b.n)
	est := b.n
	if b.live != nil {
		dst.CopyFrom(b.live)
		est = b.Live()
	} else {
		dst.SetAll()
	}
	*posBuf = sighash.AppendSignatureBits((*posBuf)[:0], b.hasher, items)
	b.OrderRarestFirst(*posBuf)
	if b.obs != nil {
		return b.countIntoObserved(dst, *posBuf, est)
	}
	for _, p := range *posBuf {
		est = b.AndSlice(dst, p)
		if est == 0 {
			break
		}
		// Rarest-first makes the estimate collapse after an AND or two;
		// promoting the accumulator then lets the rest of the chain walk
		// only the surviving words. A bits-identical overlay (the vector's
		// explicit-summary contract from the sparse-kernel PR holds: the
		// promotion is this caller's choice, never the kernel's).
		dst.MaybeSummarize(est)
	}
	return est
}

// countIntoObserved is CountIntoBuf's AND loop with kernel telemetry: same
// slices, same order, same early exit — plus per-AND accounting of which
// kernel ran and how many words it visited, flushed to the registry in one
// batch. Split out so the unobserved loop stays branch-free.
func (b *BBS) countIntoObserved(dst *bitvec.Vector, pos []int, est int) int {
	var s obs.KernelSample
	s.Evals = 1
	// Slice-touch tallies feed the tiering pass: every slice selected into
	// this chain counts as touched, whether or not the early exit cuts the
	// ANDs short — the selection is what the hot tier wants to predict.
	b.obs.TouchSlices(pos)
	done := 0
	for _, p := range pos {
		words, sparse := dst.WordStats()
		if sparse {
			s.AndsSparse++
			s.WordsSparse += int64(words)
		} else {
			s.AndsDense++
			s.WordsDense += int64(words)
		}
		s.CountEncoding(int(b.slices[p].Encoding()))
		est = b.AndSlice(dst, p)
		done++
		if est == 0 {
			break
		}
		dst.MaybeSummarize(est) // mirror CountIntoBuf's mid-chain promotion
	}
	if done < len(pos) {
		s.EarlyExits = 1
	}
	b.obs.AddKernel(s)
	b.obs.ObserveAndDepth(int64(done))
	return est
}

// CountConstrained is CountItemSet with an additional constraint slice (an
// n-bit vector marking the transactions satisfying an ad-hoc predicate, per
// paper Section 3.4). The constraint is AND-ed after the item slices and
// charged as one slice read.
func (b *BBS) CountConstrained(items []int32, constraint *bitvec.Vector) (int, *bitvec.Vector) {
	if constraint.Len() != b.n {
		panic(fmt.Sprintf("sigfile: constraint length %d != index length %d", constraint.Len(), b.n))
	}
	est, v := b.CountItemSet(items)
	if est > 0 {
		b.stats.AddSliceAnd()
		est = v.AndCount(constraint)
	}
	return est, v
}

// Fold builds the memory-resident MemBBS of the paper's adaptive filtering
// (Section 3.1, preprocessing phase): the first keep slices are retained and
// every slice p >= keep is "rehashed" onto slice p mod keep. The fold ORs
// slices together, which preserves the no-false-miss property (a folded
// query bit is set whenever any contributing original bit was set).
// The returned index shares no storage with the original and uses a hasher
// whose positions are reduced mod keep.
func (b *BBS) Fold(keep int) (*BBS, error) {
	if keep <= 0 || keep > len(b.slices) {
		return nil, fmt.Errorf("sigfile: fold width %d out of range (1..%d)", keep, len(b.slices))
	}
	// Reading every original slice once is the preprocessing pass; charge it.
	b.ChargeFullRead()

	fh := &foldedHasher{base: b.hasher, m: keep}
	nb := New(fh, b.stats)
	nb.obs = b.obs // the MemBBS inherits the run's telemetry
	nb.n = b.n
	nb.compress = b.compress
	for j := 0; j < keep; j++ {
		// Accumulate the fold dense — OR-ing into a compressed form would
		// re-encode per contributor — then pick the folded slice's encoding
		// once, from its final contents. The fold ORs slices together, so
		// the folded popcount cannot be derived from the originals; the
		// wrap recounts it once (the words are still cache-hot).
		acc := b.slices[j].Materialize()
		acc.Grow(b.n) // normalize lazily-grown slices; folded slices are full length
		for p := j + keep; p < len(b.slices); p += keep {
			b.slices[p].OrInto(acc)
		}
		s := bitvec.DenseSliceOf(acc).Recompress(b.n, b.compress)
		nb.slices[j] = s
		nb.refreshDense(j)
		nb.sliceOnes[j] = s.Ones()
	}
	//lint:ignore determinism map-to-map copy; insertion order cannot be observed
	for it, c := range b.itemCounts {
		nb.itemCounts[it] = c
	}
	if b.live != nil {
		nb.live = b.live.Clone()
		nb.deleted = b.deleted
	}
	nb.publishStorage()
	return nb, nil
}

// foldedHasher reduces a base hasher's positions modulo a smaller m.
type foldedHasher struct {
	base sighash.Hasher
	m    int
}

func (f *foldedHasher) M() int { return f.m }
func (f *foldedHasher) K() int { return f.base.K() }

func (f *foldedHasher) Positions(item int32) []int {
	base := f.base.Positions(item)
	out := make([]int, len(base))
	for i, p := range base {
		out[i] = p % f.m
	}
	return out
}

// ResultSlice exposes slice p read-only for verification passes; the caller
// must not modify it. A compressed slice is materialized (allocating), a
// dense one is aliased. Reading it is charged as one slice read.
func (b *BBS) ResultSlice(p int) *bitvec.Vector {
	b.ChargeSliceReads(1)
	if v := b.slices[p].DenseVector(); v != nil {
		return v
	}
	return b.slices[p].Materialize()
}
