package sigfile

import (
	"os"
	"path/filepath"
	"testing"

	"bbsmine/internal/sighash"
)

func TestSaveToUnwritablePath(t *testing.T) {
	b, _ := runningExample(nil)
	if err := b.Save(filepath.Join(t.TempDir(), "missing-dir", "index.bbs")); err == nil {
		t.Error("Save into a missing directory succeeded")
	}
}

func TestSaveLeavesNoTempFileOnError(t *testing.T) {
	b, _ := runningExample(nil)
	dir := t.TempDir()
	target := filepath.Join(dir, "no", "index.bbs")
	b.Save(target) // fails
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover file %s after failed save", e.Name())
	}
}

func TestLoadTruncatedFile(t *testing.T) {
	b, _ := runningExample(nil)
	path := filepath.Join(t.TempDir(), "index.bbs")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate at several byte offsets; Load must fail cleanly each time.
	for _, cut := range []int{4, 10, 25, len(data) - 3} {
		if cut <= 0 || cut >= len(data) {
			continue
		}
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path, sighash.NewMod(8), nil); err == nil {
			t.Errorf("Load of file truncated at %d succeeded", cut)
		}
	}
}

func TestLoadTrailingGarbage(t *testing.T) {
	b, _ := runningExample(nil)
	path := filepath.Join(t.TempDir(), "index.bbs")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("extra"))
	f.Close()
	if _, err := Load(path, sighash.NewMod(8), nil); err == nil {
		t.Error("Load with trailing garbage succeeded")
	}
}
