package sigfile

import (
	"bbsmine/internal/bitvec"
	"bbsmine/internal/iostat"
)

// Snapshot isolation for the serving layer.
//
// A served index interleaves mining queries with write batches. Rebuilding
// or deep-copying an index per batch is out of the question (m slices of n
// bits each), so BBS supports O(m) copy-on-write snapshots instead:
// Snapshot captures the slice pointer table and the value state, and marks
// everything shared on the master. The master then clones a slice, the live
// mask, or the 1-itemset counter map the first time it mutates each one
// after the snapshot — writes after a snapshot pay only for what they
// touch, which is exactly the paper's selling point for a dynamic index
// (appending sets at most |items|·k bits).
//
// The contract has three parts:
//
//   - a snapshot is immutable: never call Insert, Delete, or Save on it;
//   - the master is single-writer: Snapshot and all mutations must be
//     issued from one goroutine (the serving commit loop);
//   - concurrent readers of one snapshot each take a QueryClone, because
//     mining mutates per-run accounting fields (observer attachment,
//     cold-page residency) on the receiver.

// Epoch returns the index's write epoch: the number of applied write
// batches since the process opened it. The serving layer bumps it once per
// batch and keys its query cache on it. Epochs are in-memory only — a
// freshly loaded index starts at 0 — which is sound because the query
// cache is process-local too.
func (b *BBS) Epoch() uint64 { return b.epoch }

// BumpEpoch advances the write epoch by one and returns the new value.
// Call it from the single writer after applying a batch of mutations.
func (b *BBS) BumpEpoch() uint64 {
	b.epoch++
	return b.epoch
}

// Snapshot returns an immutable copy-on-write view of the index at the
// current epoch, in O(m) time and memory. The snapshot shares every slice,
// the live mask, and the counter map with the master until the master
// mutates them; the per-slice popcounts are small and copied eagerly.
// Only the single writer may call Snapshot.
func (b *BBS) Snapshot() *BBS {
	s := &BBS{
		hasher:      b.hasher,
		slices:      append([]*bitvec.Slice(nil), b.slices...),
		denseVec:    append([]*bitvec.Vector(nil), b.denseVec...),
		n:           b.n,
		compress:    b.compress,
		sliceOnes:   append([]int(nil), b.sliceOnes...),
		itemCounts:  b.itemCounts,
		live:        b.live,
		deleted:     b.deleted,
		coldPages:   b.coldPages,
		maxTxnItems: b.maxTxnItems,
		epoch:       b.epoch,
		stats:       b.stats,
	}
	if b.cow == nil {
		b.cow = make([]bool, len(b.slices))
	}
	for i := range b.cow {
		b.cow[i] = true
	}
	b.cowLive = b.live != nil
	b.cowItems = true
	return s
}

// QueryClone returns a shallow copy of the index for one mining run. The
// clone shares the slices, live mask, and counters (read-only on the query
// path) but owns the mutable per-run fields — the attached observer and the
// cold-page residency counter — so any number of concurrent miners can run
// against one snapshot without writing to shared memory. A non-nil stats
// redirects the clone's accounting; atomics inside iostat.Stats make a
// shared sink safe.
func (b *BBS) QueryClone(stats *iostat.Stats) *BBS {
	c := *b
	c.cow = nil
	c.cowLive = false
	c.cowItems = false
	c.obs = nil
	if stats != nil {
		c.stats = stats
	}
	return &c
}

// mutableSlice returns slice p ready for mutation, cloning it first if a
// snapshot shares it. The clone preserves the encoding, so appends to a
// compressed snapshot-shared slice stay compressed. A cold slice thaws to
// residency first — cold payloads are immutable by construction, and the
// freshly decoded slice is shared with no snapshot (snapshots hold the old
// header, which keeps faulting the unchanged cold extent).
func (b *BBS) mutableSlice(p int) *bitvec.Slice {
	s := b.slices[p]
	if s.IsCold() {
		s = s.Thaw()
		b.slices[p] = s
		if b.cow != nil {
			b.cow[p] = false
		}
		return s
	}
	if b.cow != nil && b.cow[p] {
		s = s.Clone()
		b.slices[p] = s
		b.cow[p] = false
	}
	return s
}

// mutableLive returns the live mask ready for mutation, cloning it first if
// a snapshot shares it. The caller must have established b.live != nil.
func (b *BBS) mutableLive() *bitvec.Vector {
	if b.cowLive {
		b.live = b.live.Clone()
		b.cowLive = false
	}
	return b.live
}

// mutableItemCounts returns the 1-itemset counter map ready for mutation,
// cloning it first if a snapshot shares it.
func (b *BBS) mutableItemCounts() map[int32]int {
	if b.cowItems {
		fresh := make(map[int32]int, len(b.itemCounts))
		//lint:ignore determinism map-to-map copy; insertion order cannot be observed
		for it, c := range b.itemCounts {
			fresh[it] = c
		}
		b.itemCounts = fresh
		b.cowItems = false
	}
	return b.itemCounts
}
