package mining

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bbsmine/internal/txdb"
)

func TestFrequentString(t *testing.T) {
	f := Frequent{Items: []txdb.Item{1, 2, 3}, Support: 42}
	if got := f.String(); got != "{1,2,3}:42" {
		t.Errorf("String = %q", got)
	}
	empty := Frequent{Support: 7}
	if got := empty.String(); got != "{}:7" {
		t.Errorf("empty String = %q", got)
	}
}

func TestKeyInjective(t *testing.T) {
	// Distinct itemsets must get distinct keys, including tricky cases
	// where concatenations could collide under naive encodings.
	sets := [][]txdb.Item{
		{}, {0}, {1}, {0, 0x100}, {0x100, 0}, {1, 2}, {1, 2, 3}, {258}, {1, 258},
	}
	seen := map[string][]txdb.Item{}
	for _, s := range sets {
		k := Key(s)
		if prev, ok := seen[k]; ok {
			t.Errorf("Key collision between %v and %v", prev, s)
		}
		seen[k] = s
	}
}

func TestLessAndSort(t *testing.T) {
	fs := []Frequent{
		{Items: []txdb.Item{2, 3}},
		{Items: []txdb.Item{5}},
		{Items: []txdb.Item{1, 9}},
		{Items: []txdb.Item{1}},
		{Items: []txdb.Item{1, 2, 3}},
	}
	Sort(fs)
	want := []string{"{1}:0", "{5}:0", "{1,9}:0", "{2,3}:0", "{1,2,3}:0"}
	for i, w := range want {
		if fs[i].String() != w {
			t.Fatalf("Sort[%d] = %s, want %s", i, fs[i], w)
		}
	}
}

func TestDiff(t *testing.T) {
	a := []Frequent{
		{Items: []txdb.Item{1}, Support: 5},
		{Items: []txdb.Item{2}, Support: 3},
	}
	b := []Frequent{
		{Items: []txdb.Item{1}, Support: 5},
		{Items: []txdb.Item{3}, Support: 2},
	}
	diffs := Diff("A", a, "B", b)
	if len(diffs) != 2 {
		t.Fatalf("Diff = %v, want 2 entries", diffs)
	}
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "{2}") || !strings.Contains(joined, "{3}") {
		t.Errorf("Diff missing itemsets: %v", diffs)
	}
	if got := Diff("A", a, "A2", a); len(got) != 0 {
		t.Errorf("Diff of identical sets = %v", got)
	}
	// Support mismatch.
	c := []Frequent{
		{Items: []txdb.Item{1}, Support: 6},
		{Items: []txdb.Item{2}, Support: 3},
	}
	diffs = Diff("A", a, "C", c)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "support mismatch") {
		t.Errorf("Diff = %v", diffs)
	}
}

func TestMinSupportCount(t *testing.T) {
	cases := []struct {
		frac float64
		n    int
		want int
	}{
		{0.003, 10000, 30},
		{0.003, 1000, 3},
		{0.003, 100, 1},
		{0.0001, 10, 1}, // never below 1
		{0.5, 7, 4},     // rounds up: 3.5 -> 4
		{1, 5, 5},
	}
	for _, c := range cases {
		if got := MinSupportCount(c.frac, c.n); got != c.want {
			t.Errorf("MinSupportCount(%v, %d) = %d, want %d", c.frac, c.n, got, c.want)
		}
	}
}

func TestBruteForceKnownAnswer(t *testing.T) {
	txs := []txdb.Transaction{
		txdb.NewTransaction(1, []int32{1, 3, 4}),
		txdb.NewTransaction(2, []int32{2, 3, 5}),
		txdb.NewTransaction(3, []int32{1, 2, 3, 5}),
		txdb.NewTransaction(4, []int32{2, 5}),
	}
	fs := BruteForce(txs, 2)
	m := ToMap(fs)
	want := map[string]int{
		Key([]txdb.Item{1}):       2,
		Key([]txdb.Item{2}):       3,
		Key([]txdb.Item{3}):       3,
		Key([]txdb.Item{5}):       3,
		Key([]txdb.Item{1, 3}):    2,
		Key([]txdb.Item{2, 3}):    2,
		Key([]txdb.Item{2, 5}):    3,
		Key([]txdb.Item{3, 5}):    2,
		Key([]txdb.Item{2, 3, 5}): 2,
	}
	if len(m) != len(want) {
		t.Fatalf("BruteForce found %d itemsets, want %d: %v", len(m), len(want), fs)
	}
	for k, sup := range want {
		if m[k] != sup {
			t.Errorf("support mismatch for %s: %d, want %d", decodeKey(k), m[k], sup)
		}
	}
}

func TestBruteForceDownwardClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	txs := make([]txdb.Transaction, 40)
	for i := range txs {
		items := make([]int32, 1+rng.Intn(6))
		for j := range items {
			items[j] = int32(rng.Intn(12))
		}
		txs[i] = txdb.NewTransaction(int64(i), items)
	}
	fs := BruteForce(txs, 3)
	m := ToMap(fs)
	for _, f := range fs {
		if len(f.Items) < 2 {
			continue
		}
		for drop := 0; drop < len(f.Items); drop++ {
			sub := append(append([]txdb.Item{}, f.Items[:drop]...), f.Items[drop+1:]...)
			subSup, ok := m[Key(sub)]
			if !ok {
				t.Fatalf("subset %v of %v missing", sub, f.Items)
			}
			if subSup < f.Support {
				t.Fatalf("subset %v support %d < superset %v support %d", sub, subSup, f.Items, f.Support)
			}
		}
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Add([]txdb.Item{1, 2})
	c.Add([]txdb.Item{1, 2}) // idempotent
	c.Add([]txdb.Item{1})    // prefix of another candidate
	c.Add([]txdb.Item{2, 3, 4})
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
	c.CountTransaction([]txdb.Item{1, 2, 3, 4}) // contains all three
	c.CountTransaction([]txdb.Item{1, 2})       // contains {1},{1,2}
	c.CountTransaction([]txdb.Item{2, 3, 4})    // contains {2,3,4}
	c.CountTransaction([]txdb.Item{5})          // contains none
	if got := c.Support([]txdb.Item{1, 2}); got != 2 {
		t.Errorf("Support({1,2}) = %d, want 2", got)
	}
	if got := c.Support([]txdb.Item{1}); got != 2 {
		t.Errorf("Support({1}) = %d, want 2", got)
	}
	if got := c.Support([]txdb.Item{2, 3, 4}); got != 2 {
		t.Errorf("Support({2,3,4}) = %d, want 2", got)
	}
	if got := c.Support([]txdb.Item{9}); got != 0 {
		t.Errorf("Support of unknown = %d, want 0", got)
	}
	if got := c.Support([]txdb.Item{2, 3}); got != 0 {
		t.Errorf("Support of non-terminal path = %d, want 0", got)
	}
}

func TestCounterMatchesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var cands [][]txdb.Item
	c := NewCounter()
	for i := 0; i < 50; i++ {
		tx := txdb.NewTransaction(0, randomItems(rng, 4, 15))
		cands = append(cands, tx.Items)
		c.Add(tx.Items)
	}
	txs := make([]txdb.Transaction, 200)
	for i := range txs {
		txs[i] = txdb.NewTransaction(int64(i), randomItems(rng, 8, 15))
		c.CountTransaction(txs[i].Items)
	}
	for _, cand := range cands {
		want := 0
		for _, tx := range txs {
			if tx.Contains(cand) {
				want++
			}
		}
		if got := c.Support(cand); got != want {
			t.Fatalf("Support(%v) = %d, want %d", cand, got, want)
		}
	}
}

func TestCounterCountStore(t *testing.T) {
	store := txdb.NewMemStore(nil)
	store.Append(txdb.NewTransaction(1, []int32{1, 2}))
	store.Append(txdb.NewTransaction(2, []int32{1, 2, 3}))
	c := NewCounter()
	c.Add([]txdb.Item{1, 2})
	if err := c.CountStore(store); err != nil {
		t.Fatal(err)
	}
	if got := c.Support([]txdb.Item{1, 2}); got != 2 {
		t.Errorf("Support = %d, want 2", got)
	}
}

// Property: Diff(a, b) is empty iff ToMap(a) == ToMap(b).
func TestQuickDiffConsistent(t *testing.T) {
	f := func(raw []uint8) bool {
		var fs []Frequent
		for i, r := range raw {
			fs = append(fs, Frequent{Items: []txdb.Item{txdb.Item(r)}, Support: i + 1})
		}
		// Deduplicate by item to make supports deterministic.
		m := map[string]Frequent{}
		for _, f := range fs {
			m[Key(f.Items)] = f
		}
		var dedup []Frequent
		for _, f := range m {
			dedup = append(dedup, f)
		}
		return len(Diff("x", dedup, "y", dedup)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randomItems(rng *rand.Rand, maxLen, alphabet int) []int32 {
	n := 1 + rng.Intn(maxLen)
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(rng.Intn(alphabet))
	}
	tx := txdb.NewTransaction(0, items)
	return tx.Items
}
