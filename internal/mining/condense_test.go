package mining

import (
	"math/rand"
	"testing"

	"bbsmine/internal/txdb"
)

func condenseFixture() []Frequent {
	// Database: {1,2,3} ×3, {1,2} ×1, {4} ×2.
	// Frequent at τ=2: {1}:4 {2}:4 {3}:3 {4}:2 {1,2}:4 {1,3}:3 {2,3}:3 {1,2,3}:3.
	return []Frequent{
		{Items: []txdb.Item{1}, Support: 4},
		{Items: []txdb.Item{2}, Support: 4},
		{Items: []txdb.Item{3}, Support: 3},
		{Items: []txdb.Item{4}, Support: 2},
		{Items: []txdb.Item{1, 2}, Support: 4},
		{Items: []txdb.Item{1, 3}, Support: 3},
		{Items: []txdb.Item{2, 3}, Support: 3},
		{Items: []txdb.Item{1, 2, 3}, Support: 3},
	}
}

func TestClosed(t *testing.T) {
	got := Closed(condenseFixture())
	// {1}: superset {1,2} has same support 4 → not closed.
	// {2}: same → not closed. {3}: {1,3} support 3 == 3 → not closed.
	// {4}: no superset → closed. {1,2}: supersets have support 3 < 4 → closed.
	// {1,3},{2,3}: {1,2,3} has equal support → not closed. {1,2,3}: closed.
	want := map[string]bool{
		Key([]txdb.Item{4}):       true,
		Key([]txdb.Item{1, 2}):    true,
		Key([]txdb.Item{1, 2, 3}): true,
	}
	if len(got) != len(want) {
		t.Fatalf("Closed = %v, want 3 patterns", got)
	}
	for _, f := range got {
		if !want[Key(f.Items)] {
			t.Errorf("unexpected closed pattern %v", f)
		}
	}
}

func TestMaximal(t *testing.T) {
	got := Maximal(condenseFixture())
	want := map[string]bool{
		Key([]txdb.Item{4}):       true,
		Key([]txdb.Item{1, 2, 3}): true,
	}
	if len(got) != len(want) {
		t.Fatalf("Maximal = %v, want 2 patterns", got)
	}
	for _, f := range got {
		if !want[Key(f.Items)] {
			t.Errorf("unexpected maximal pattern %v", f)
		}
	}
}

func TestCondenseEmptyAndSingleton(t *testing.T) {
	if got := Closed(nil); len(got) != 0 {
		t.Errorf("Closed(nil) = %v", got)
	}
	single := []Frequent{{Items: []txdb.Item{7}, Support: 5}}
	if got := Maximal(single); len(got) != 1 {
		t.Errorf("Maximal(singleton) = %v", got)
	}
}

// Properties on random data: maximal ⊆ closed ⊆ all; every pattern has a
// maximal superset; closed set preserves all supports via subset-maximum.
func TestCondenseProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	txs := make([]txdb.Transaction, 80)
	for i := range txs {
		items := make([]int32, 1+rng.Intn(6))
		for j := range items {
			items[j] = int32(rng.Intn(12))
		}
		txs[i] = txdb.NewTransaction(int64(i), items)
	}
	all := BruteForce(txs, 4)
	if len(all) < 10 {
		t.Fatal("fixture too sparse")
	}
	closed := Closed(all)
	maximal := Maximal(all)

	closedKeys := ToMap(closed)
	for _, f := range maximal {
		if _, ok := closedKeys[Key(f.Items)]; !ok {
			t.Errorf("maximal pattern %v not closed", f)
		}
	}
	if len(maximal) > len(closed) || len(closed) > len(all) {
		t.Errorf("sizes: all=%d closed=%d maximal=%d", len(all), len(closed), len(maximal))
	}

	// Every pattern is a subset of some maximal pattern.
	for _, f := range all {
		found := false
		for _, m := range maximal {
			if isSubset(f.Items, m.Items) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pattern %v has no maximal superset", f)
		}
	}

	// Closure property: each pattern's support equals the max support of a
	// closed superset.
	for _, f := range all {
		best := -1
		for _, c := range closed {
			if isSubset(f.Items, c.Items) && c.Support > best {
				best = c.Support
			}
		}
		if best != f.Support {
			t.Errorf("pattern %v support %d, closed-superset max %d", f.Items, f.Support, best)
		}
	}
}

func isSubset(sub, super []txdb.Item) bool {
	i := 0
	for _, x := range super {
		if i < len(sub) && sub[i] == x {
			i++
		}
	}
	return i == len(sub)
}
