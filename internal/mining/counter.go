package mining

import (
	"bbsmine/internal/txdb"
)

// Counter counts the exact supports of a batch of candidate itemsets in one
// database pass. Candidates of different lengths share a single prefix trie
// whose nodes may be terminal at any depth; because transactions keep their
// items sorted and unique, every candidate is embedded in a transaction by
// exactly one ordered subsequence, so descent counts each candidate at most
// once per transaction.
//
// This is the engine of the SequentialScan refinement (and the ground-truth
// side of the tests).
//
// A Counter is not safe for concurrent use. The parallel verification path
// shards work by giving each worker its own Counter loaded with the full
// candidate batch and a disjoint share of the transactions; per-worker
// supports are summed, which equals the single-counter total exactly.
type Counter struct {
	root *cnode
	n    int

	// Scan telemetry, plain ints (a Counter is single-goroutine by
	// contract): transactions counted and candidate hits recorded.
	tx      int64
	matched int64
}

type cnode struct {
	children map[txdb.Item]*cnode
	terminal bool
	count    int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{root: &cnode{children: map[txdb.Item]*cnode{}}}
}

// Len returns the number of candidates added.
func (c *Counter) Len() int { return c.n }

// Add registers a candidate itemset (sorted ascending). Adding the same
// itemset twice is idempotent.
func (c *Counter) Add(items []txdb.Item) {
	n := c.root
	for _, it := range items {
		child, ok := n.children[it]
		if !ok {
			child = &cnode{children: map[txdb.Item]*cnode{}}
			n.children[it] = child
		}
		n = child
	}
	if !n.terminal {
		n.terminal = true
		c.n++
	}
}

// CountTransaction bumps every candidate contained in the transaction.
// Items must be sorted strictly ascending (the txdb invariant).
func (c *Counter) CountTransaction(items []txdb.Item) {
	c.tx++
	c.descend(c.root, items)
}

func (c *Counter) descend(n *cnode, items []txdb.Item) {
	for i, it := range items {
		child, ok := n.children[it]
		if !ok {
			continue
		}
		if child.terminal {
			child.count++
			c.matched++
		}
		if len(child.children) > 0 {
			c.descend(child, items[i+1:])
		}
	}
}

// Tally returns the counter's scan telemetry: transactions counted and
// candidate hits recorded across them.
func (c *Counter) Tally() (tx, matched int64) { return c.tx, c.matched }

// Support returns the counted support of a candidate, or 0 if it was never
// added or never matched.
func (c *Counter) Support(items []txdb.Item) int {
	n := c.root
	for _, it := range items {
		n = n.children[it]
		if n == nil {
			return 0
		}
	}
	if !n.terminal {
		return 0
	}
	return n.count
}

// CountStore runs one full scan of the store, counting every candidate.
func (c *Counter) CountStore(store txdb.Store) error {
	return store.Scan(func(_ int, tx txdb.Transaction) bool {
		c.CountTransaction(tx.Items)
		return true
	})
}
