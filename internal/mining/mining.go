// Package mining defines the result types shared by every frequent-pattern
// miner in this repository (Apriori, FP-growth, and the four BBS-based
// filter-and-refine algorithms), plus helpers for comparing result sets —
// the cross-checking backbone of the test suite.
package mining

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"bbsmine/internal/txdb"
)

// Frequent is one mined pattern: an itemset (sorted ascending) and its exact
// support count.
type Frequent struct {
	Items   []txdb.Item
	Support int
}

// String renders the pattern as "{1,2,3}:42".
func (f Frequent) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, it := range f.Items {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", it)
	}
	fmt.Fprintf(&sb, "}:%d", f.Support)
	return sb.String()
}

// Key encodes the itemset as a comparable map key (supports excluded).
func Key(items []txdb.Item) string {
	buf := make([]byte, 4*len(items))
	for i, it := range items {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(it))
	}
	return string(buf)
}

// Less orders itemsets by length, then lexicographically — the canonical
// order for result sets.
func Less(a, b Frequent) bool {
	if len(a.Items) != len(b.Items) {
		return len(a.Items) < len(b.Items)
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return a.Items[i] < b.Items[i]
		}
	}
	return false
}

// Sort puts a result set into canonical order in place.
func Sort(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool { return Less(fs[i], fs[j]) })
}

// ToMap indexes a result set by itemset key → support.
func ToMap(fs []Frequent) map[string]int {
	m := make(map[string]int, len(fs))
	for _, f := range fs {
		m[Key(f.Items)] = f.Support
	}
	return m
}

// Diff compares two result sets and returns a human-readable list of
// discrepancies (missing itemsets, extra itemsets, support mismatches),
// empty when the sets agree. The names label the two sides in messages.
func Diff(nameA string, a []Frequent, nameB string, b []Frequent) []string {
	ma, mb := ToMap(a), ToMap(b)
	var out []string
	//lint:ignore determinism out is sort.Strings'd before return
	for k, sa := range ma {
		sb, ok := mb[k]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf("%s has %s (support %d), %s lacks it", nameA, decodeKey(k), sa, nameB))
		case sa != sb:
			out = append(out, fmt.Sprintf("support mismatch on %s: %s=%d %s=%d", decodeKey(k), nameA, sa, nameB, sb))
		}
	}
	//lint:ignore determinism out is sort.Strings'd before return
	for k, sb := range mb {
		if _, ok := ma[k]; !ok {
			out = append(out, fmt.Sprintf("%s has %s (support %d), %s lacks it", nameB, decodeKey(k), sb, nameA))
		}
	}
	sort.Strings(out)
	return out
}

func decodeKey(k string) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+4 <= len(k); i += 4 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", int32(binary.BigEndian.Uint32([]byte(k[i:i+4]))))
	}
	sb.WriteByte('}')
	return sb.String()
}

// MinSupportCount converts a fractional minimum support (e.g. the paper's
// 0.3%) into an absolute count over n transactions, rounding up and never
// below 1.
func MinSupportCount(fraction float64, n int) int {
	c := int(fraction*float64(n) + 0.999999)
	if c < 1 {
		c = 1
	}
	return c
}

// BruteForce mines frequent itemsets by exhaustive DFS over the exact
// transaction list. It is exponential and exists only as the ground-truth
// oracle for tests on small databases.
func BruteForce(txs []txdb.Transaction, minSupport int) []Frequent {
	counts := map[txdb.Item]int{}
	for _, tx := range txs {
		for _, it := range tx.Items {
			counts[it]++
		}
	}
	var items []txdb.Item
	//lint:ignore determinism items is sorted immediately below
	for it, c := range counts {
		if c >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	var out []Frequent
	var rec func(start int, cur []txdb.Item)
	rec = func(start int, cur []txdb.Item) {
		for i := start; i < len(items); i++ {
			next := append(cur, items[i])
			sup := 0
			for _, tx := range txs {
				if tx.Contains(next) {
					sup++
				}
			}
			if sup >= minSupport {
				out = append(out, Frequent{Items: append([]txdb.Item(nil), next...), Support: sup})
				rec(i+1, next)
			}
		}
	}
	rec(0, nil)
	Sort(out)
	return out
}
