package mining

import "bbsmine/internal/txdb"

// Condensed representations. Frequent-pattern sets are heavily redundant
// (every subset of a frequent itemset is frequent); closed and maximal
// subsets are the standard lossless/lossy condensations downstream
// consumers ask for.

// Closed returns the closed patterns: those with no proper superset of the
// same support. The closed set determines every pattern's support exactly.
// Input must be a complete (downward-closed) result; order is preserved.
func Closed(fs []Frequent) []Frequent {
	return filterCondensed(fs, func(sup, superSup int) bool { return superSup == sup })
}

// Maximal returns the maximal patterns: those with no frequent proper
// superset at all. The maximal set determines which itemsets are frequent
// but loses the supports of non-maximal ones.
func Maximal(fs []Frequent) []Frequent {
	return filterCondensed(fs, func(sup, superSup int) bool { return true })
}

// filterCondensed keeps patterns for which no one-item-larger frequent
// superset satisfies dominates(support, superset support). Checking only
// the +1 supersets suffices: closure and maximality are both determined by
// immediate supersets on a downward-closed input.
func filterCondensed(fs []Frequent, dominates func(sup, superSup int) bool) []Frequent {
	// Group supersets by length for +1 lookups.
	byKey := make(map[string]int, len(fs))
	for _, f := range fs {
		byKey[Key(f.Items)] = f.Support
	}
	// Collect the item alphabet to enumerate +1 supersets.
	alphabet := map[txdb.Item]struct{}{}
	for _, f := range fs {
		for _, it := range f.Items {
			alphabet[it] = struct{}{}
		}
	}

	var out []Frequent
	buf := make([]txdb.Item, 0, 16)
	for _, f := range fs {
		dominated := false
		//lint:ignore determinism dominated is an order-independent existence check (any dominating +1 superset)
		for it := range alphabet {
			if containsItem(f.Items, it) {
				continue
			}
			buf = insertSorted(buf[:0], f.Items, it)
			if superSup, ok := byKey[Key(buf)]; ok && dominates(f.Support, superSup) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, f)
		}
	}
	return out
}

func containsItem(items []txdb.Item, it txdb.Item) bool {
	for _, x := range items {
		if x == it {
			return true
		}
	}
	return false
}

// insertSorted writes items with it inserted in order into dst.
func insertSorted(dst, items []txdb.Item, it txdb.Item) []txdb.Item {
	placed := false
	for _, x := range items {
		if !placed && it < x {
			dst = append(dst, it)
			placed = true
		}
		dst = append(dst, x)
	}
	if !placed {
		dst = append(dst, it)
	}
	return dst
}
