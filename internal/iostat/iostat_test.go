package iostat

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAccumulate(t *testing.T) {
	var s Stats
	s.AddDBSeqPages(10)
	s.AddDBSeqPages(5)
	s.AddDBRandPages(4)
	s.AddDBScan()
	s.AddProbe()
	s.AddProbe()
	s.AddSlicePages(3)
	s.AddSliceAnd()
	s.AddCountCall()
	s.AddCandidate()
	s.AddFalseDrop()

	snap := s.Snapshot()
	if snap.DBSeqPages != 15 || snap.DBRandPages != 4 || snap.DBScans != 1 || snap.Probes != 2 ||
		snap.SlicePageReads != 3 || snap.SliceAnds != 1 || snap.CountCalls != 1 ||
		snap.Candidates != 1 || snap.FalseDrops != 1 {
		t.Errorf("unexpected snapshot: %+v", snap)
	}
}

func TestReset(t *testing.T) {
	var s Stats
	s.AddDBSeqPages(100)
	s.AddDBRandPages(3)
	s.AddProbe()
	s.Reset()
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("Reset left non-zero counters: %+v", snap)
	}
}

func TestSub(t *testing.T) {
	var s Stats
	s.AddDBSeqPages(10)
	base := s.Snapshot()
	s.AddDBSeqPages(7)
	s.AddDBRandPages(2)
	s.AddProbe()
	delta := s.Snapshot().Sub(base)
	if delta.DBSeqPages != 7 || delta.DBRandPages != 2 || delta.Probes != 1 {
		t.Errorf("Sub: %+v", delta)
	}
}

func TestConcurrentCounting(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.AddDBSeqPages(1)
				s.AddProbe()
			}
		}()
	}
	wg.Wait()
	if got := s.DBSeqPages(); got != 8000 {
		t.Errorf("DBSeqPages = %d, want 8000", got)
	}
	if got := s.Probes(); got != 8000 {
		t.Errorf("Probes = %d, want 8000", got)
	}
}

func TestCostModelCharge(t *testing.T) {
	snap := Snapshot{DBSeqPages: 10, DBRandPages: 2, SlicePageReads: 5}
	m := CostModel{SeqPageCost: time.Millisecond, RandPageCost: 10 * time.Millisecond}
	// 10 sequential DB pages + 5 slice pages at 1 ms, 2 misses at 10 ms.
	want := 15*time.Millisecond + 20*time.Millisecond
	if got := m.Charge(snap); got != want {
		t.Errorf("Charge = %v, want %v", got, want)
	}
}

func TestZeroCostModel(t *testing.T) {
	snap := Snapshot{DBSeqPages: 100, DBRandPages: 10, SlicePageReads: 50}
	if got := ZeroCostModel.Charge(snap); got != 0 {
		t.Errorf("ZeroCostModel.Charge = %v, want 0", got)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{DBSeqPages: 3, FalseDrops: 2}
	str := s.String()
	if !strings.Contains(str, "seqPages=3") || !strings.Contains(str, "falseDrops=2") {
		t.Errorf("String missing fields: %s", str)
	}
}
