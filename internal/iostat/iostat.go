// Package iostat provides cost accounting for the reproduction.
//
// The paper ran on a 167-MHz SUN Ultra 1 with 64 MB of memory, where disk
// I/O dominated the response times it reports. On 2026 hardware the paper's
// datasets are RAM-resident, so raw wall-clock alone would understate the
// I/O asymmetry that drives the paper's results (BBS slice reads are tiny
// compared with database scans). Every storage component therefore counts
// its logical page accesses here, and the benchmark harness can optionally
// convert counted pages into synthetic latency via a CostModel, making
// "response time" comparable in shape to the paper's figures.
//
// Counters use atomics so stores and miners can share one Stats value
// without coordination.
package iostat

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the logical page size used for all accounting, in bytes.
const PageSize = 4096

// Stats accumulates logical I/O and work counters for one mining run.
// The zero value is ready to use. All methods are safe for concurrent use.
type Stats struct {
	dbSeqPages     atomic.Int64 // pages read by sequential scans (ring-buffered, never cached)
	dbRandPages    atomic.Int64 // pages read by random fetches that missed the buffer cache
	dbScans        atomic.Int64 // full sequential passes over the database
	probes         atomic.Int64 // individual transactions fetched by Probe
	slicePageReads atomic.Int64 // BBS slice pages read
	sliceAnds      atomic.Int64 // bit-slice AND operations
	countCalls     atomic.Int64 // CountItemSet invocations
	candidates     atomic.Int64 // candidate itemsets produced by filtering
	falseDrops     atomic.Int64 // candidates later found infrequent

	pageCacheHits      atomic.Int64 // random accesses served from the modeled buffer pool
	pageCacheEvictions atomic.Int64 // pages evicted by the pool's LRU cap
	pageCacheResident  atomic.Int64 // gauge: pages currently resident (deltas from the stores)

	// snapMu serializes Snapshot against Reset. The Add*/getter fast paths
	// stay lock-free; without the lock a reader between Reset's stores could
	// observe a torn snapshot (some counters zeroed, others not). Declared
	// after every counter on purpose: it guards the Snapshot/Reset pairing,
	// not individual field access.
	snapMu sync.Mutex
}

// AddDBSeqPages records n database pages read sequentially.
func (s *Stats) AddDBSeqPages(n int64) { s.dbSeqPages.Add(n) }

// AddDBRandPages records n random-access page reads that missed the cache.
func (s *Stats) AddDBRandPages(n int64) { s.dbRandPages.Add(n) }

// AddDBScan records one full sequential pass over the database.
func (s *Stats) AddDBScan() { s.dbScans.Add(1) }

// AddProbe records one probed transaction.
func (s *Stats) AddProbe() { s.probes.Add(1) }

// AddSlicePages records n BBS slice pages read.
func (s *Stats) AddSlicePages(n int64) { s.slicePageReads.Add(n) }

// AddSliceAnd records one bit-slice AND.
func (s *Stats) AddSliceAnd() { s.sliceAnds.Add(1) }

// AddCountCall records one CountItemSet invocation.
func (s *Stats) AddCountCall() { s.countCalls.Add(1) }

// AddCandidate records one candidate itemset that passed filtering.
func (s *Stats) AddCandidate() { s.candidates.Add(1) }

// AddFalseDrop records one candidate that refinement found infrequent.
func (s *Stats) AddFalseDrop() { s.falseDrops.Add(1) }

// AddPageCacheHits records n random page accesses served from residency.
func (s *Stats) AddPageCacheHits(n int64) { s.pageCacheHits.Add(n) }

// AddPageCacheEvictions records n pages evicted by the LRU cap.
func (s *Stats) AddPageCacheEvictions(n int64) { s.pageCacheEvictions.Add(n) }

// AddPageCacheResident moves the resident-page gauge by delta (positive on
// fault-in, negative on eviction or reset).
func (s *Stats) AddPageCacheResident(delta int64) { s.pageCacheResident.Add(delta) }

// DBSeqPages returns the sequentially read database pages so far.
func (s *Stats) DBSeqPages() int64 { return s.dbSeqPages.Load() }

// DBRandPages returns the random-read cache misses so far.
func (s *Stats) DBRandPages() int64 { return s.dbRandPages.Load() }

// DBScans returns the number of full database passes so far.
func (s *Stats) DBScans() int64 { return s.dbScans.Load() }

// Probes returns the number of probed transactions so far.
func (s *Stats) Probes() int64 { return s.probes.Load() }

// SlicePageReads returns the BBS slice pages read so far.
func (s *Stats) SlicePageReads() int64 { return s.slicePageReads.Load() }

// SliceAnds returns the number of bit-slice ANDs so far.
func (s *Stats) SliceAnds() int64 { return s.sliceAnds.Load() }

// CountCalls returns the number of CountItemSet invocations so far.
func (s *Stats) CountCalls() int64 { return s.countCalls.Load() }

// Candidates returns the number of candidates produced by filtering.
func (s *Stats) Candidates() int64 { return s.candidates.Load() }

// FalseDrops returns the number of false drops found during refinement.
func (s *Stats) FalseDrops() int64 { return s.falseDrops.Load() }

// PageCacheHits returns the buffer-pool hits so far.
func (s *Stats) PageCacheHits() int64 { return s.pageCacheHits.Load() }

// PageCacheEvictions returns the LRU evictions so far.
func (s *Stats) PageCacheEvictions() int64 { return s.pageCacheEvictions.Load() }

// PageCacheResident returns the resident-page gauge.
func (s *Stats) PageCacheResident() int64 { return s.pageCacheResident.Load() }

// Reset zeroes every counter, atomically with respect to Snapshot: a
// concurrent Snapshot sees either the pre-Reset values or all zeros, never
// a mix.
func (s *Stats) Reset() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.dbSeqPages.Store(0)
	s.dbRandPages.Store(0)
	s.dbScans.Store(0)
	s.probes.Store(0)
	s.slicePageReads.Store(0)
	s.sliceAnds.Store(0)
	s.countCalls.Store(0)
	s.candidates.Store(0)
	s.falseDrops.Store(0)
	s.pageCacheHits.Store(0)
	s.pageCacheEvictions.Store(0)
	s.pageCacheResident.Store(0)
}

// Snapshot is an immutable copy of all counters, for reporting.
type Snapshot struct {
	DBSeqPages     int64
	DBRandPages    int64
	DBScans        int64
	Probes         int64
	SlicePageReads int64
	SliceAnds      int64
	CountCalls     int64
	Candidates     int64
	FalseDrops     int64

	PageCacheHits      int64
	PageCacheEvictions int64
	PageCacheResident  int64
}

// Snapshot returns a copy of the current counter values. It is atomic with
// respect to Reset (see Reset); concurrent Add* calls land in either the
// snapshot or the next one, as with any monotonic counter read.
func (s *Stats) Snapshot() Snapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return Snapshot{
		DBSeqPages:     s.DBSeqPages(),
		DBRandPages:    s.DBRandPages(),
		DBScans:        s.DBScans(),
		Probes:         s.Probes(),
		SlicePageReads: s.SlicePageReads(),
		SliceAnds:      s.SliceAnds(),
		CountCalls:     s.CountCalls(),
		Candidates:     s.Candidates(),
		FalseDrops:     s.FalseDrops(),

		PageCacheHits:      s.PageCacheHits(),
		PageCacheEvictions: s.PageCacheEvictions(),
		PageCacheResident:  s.PageCacheResident(),
	}
}

// Sub returns the counter deltas of s relative to base (s - base).
func (s Snapshot) Sub(base Snapshot) Snapshot {
	return Snapshot{
		DBSeqPages:     s.DBSeqPages - base.DBSeqPages,
		DBRandPages:    s.DBRandPages - base.DBRandPages,
		DBScans:        s.DBScans - base.DBScans,
		Probes:         s.Probes - base.Probes,
		SlicePageReads: s.SlicePageReads - base.SlicePageReads,
		SliceAnds:      s.SliceAnds - base.SliceAnds,
		CountCalls:     s.CountCalls - base.CountCalls,
		Candidates:     s.Candidates - base.Candidates,
		FalseDrops:     s.FalseDrops - base.FalseDrops,

		PageCacheHits:      s.PageCacheHits - base.PageCacheHits,
		PageCacheEvictions: s.PageCacheEvictions - base.PageCacheEvictions,
		PageCacheResident:  s.PageCacheResident - base.PageCacheResident,
	}
}

// String renders the snapshot in a compact single-line form.
func (s Snapshot) String() string {
	return fmt.Sprintf("seqPages=%d randPages=%d dbScans=%d probes=%d slicePages=%d sliceAnds=%d countCalls=%d cand=%d falseDrops=%d cacheHits=%d cacheEvict=%d cacheRes=%d",
		s.DBSeqPages, s.DBRandPages, s.DBScans, s.Probes, s.SlicePageReads, s.SliceAnds, s.CountCalls, s.Candidates, s.FalseDrops,
		s.PageCacheHits, s.PageCacheEvictions, s.PageCacheResident)
}

// CostModel converts counted logical I/O into synthetic time, approximating
// the paper's era where a random page read cost ~10 ms and a sequential one
// ~1 ms. Sequential scans always pay (a scan streams through a small ring
// buffer); random fetches pay only for buffer-cache misses, which the
// stores model (first touch, or every touch when memory is scarce). The
// model is deliberately simple: the figures only need the relative cost
// asymmetry, not a precise disk simulation.
type CostModel struct {
	// SeqPageCost is charged per sequentially read page (database passes
	// and BBS slice reads).
	SeqPageCost time.Duration
	// RandPageCost is charged per random-access cache miss.
	RandPageCost time.Duration
}

// DefaultCostModel mirrors a late-1990s disk at 1 ms per sequential page.
// Random (probe) misses are charged the same: the Probe refinement iterates
// the result vector in ascending position order, so its page faults arrive
// as an elevator sweep of the file, not as uniform random seeks. Workloads
// with genuinely scattered point reads can raise RandPageCost.
var DefaultCostModel = CostModel{
	SeqPageCost:  time.Millisecond,
	RandPageCost: time.Millisecond,
}

// ZeroCostModel charges nothing; wall-clock time stands alone.
var ZeroCostModel = CostModel{}

// Charge returns the synthetic I/O time for a snapshot of counters.
func (c CostModel) Charge(s Snapshot) time.Duration {
	return time.Duration(s.DBSeqPages+s.SlicePageReads)*c.SeqPageCost +
		time.Duration(s.DBRandPages)*c.RandPageCost
}
