package iostat

import (
	"sync"
	"testing"
)

// TestStatsConcurrentAdds drives every counter from many goroutines at once
// and checks the totals. Run under -race this also proves the accounting
// sink is safe to share across the parallel mining engine's workers.
func TestStatsConcurrentAdds(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
	)
	var s Stats
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.AddDBSeqPages(2)
				s.AddDBRandPages(3)
				s.AddDBScan()
				s.AddProbe()
				s.AddSlicePages(5)
				s.AddSliceAnd()
				s.AddCountCall()
				s.AddCandidate()
				s.AddFalseDrop()
			}
		}()
	}
	wg.Wait()

	n := int64(goroutines * perG)
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"DBSeqPages", s.DBSeqPages(), 2 * n},
		{"DBRandPages", s.DBRandPages(), 3 * n},
		{"DBScans", s.DBScans(), n},
		{"Probes", s.Probes(), n},
		{"SlicePageReads", s.SlicePageReads(), 5 * n},
		{"SliceAnds", s.SliceAnds(), n},
		{"CountCalls", s.CountCalls(), n},
		{"Candidates", s.Candidates(), n},
		{"FalseDrops", s.FalseDrops(), n},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	snap := s.Snapshot()
	if snap.Probes != n {
		t.Errorf("Snapshot().Probes = %d, want %d", snap.Probes, n)
	}
}

// TestStatsSnapshotNotTorn pins Snapshot's atomicity with respect to Reset.
// The writer repeats Reset-then-increment with the rand counter always
// bumped before the seq counter; Snapshot reads seq before rand, and both
// reads happen under the same lock that Reset takes, so counters can only
// grow (never reset) between the two reads and every snapshot must satisfy
// DBSeqPages <= DBRandPages. Without the snapMu pairing, a Reset landing
// between the two reads yields a torn snapshot (stale seq, zeroed rand)
// that inverts the inequality.
func TestStatsSnapshotNotTorn(t *testing.T) {
	var s Stats
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			s.Reset()
			s.AddDBRandPages(1)
			s.AddDBSeqPages(1)
		}
		close(done)
	}()
	for torn := false; !torn; {
		snap := s.Snapshot()
		if snap.DBSeqPages > snap.DBRandPages {
			t.Errorf("torn snapshot: DBSeqPages=%d > DBRandPages=%d", snap.DBSeqPages, snap.DBRandPages)
			torn = true
		}
		select {
		case <-done:
			wg.Wait()
			return
		default:
		}
	}
	wg.Wait()
}

// TestStatsConcurrentSnapshot reads snapshots while writers are running —
// nothing to assert beyond "no race, no panic", which -race enforces.
func TestStatsConcurrentSnapshot(t *testing.T) {
	var s Stats
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.AddProbe()
			s.AddSlicePages(1)
		}
		close(done)
	}()
	for {
		_ = s.Snapshot()
		select {
		case <-done:
			wg.Wait()
			if s.Probes() != 500 {
				t.Errorf("Probes = %d, want 500", s.Probes())
			}
			return
		default:
		}
	}
}
