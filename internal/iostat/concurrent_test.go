package iostat

import (
	"sync"
	"testing"
)

// TestStatsConcurrentAdds drives every counter from many goroutines at once
// and checks the totals. Run under -race this also proves the accounting
// sink is safe to share across the parallel mining engine's workers.
func TestStatsConcurrentAdds(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
	)
	var s Stats
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.AddDBSeqPages(2)
				s.AddDBRandPages(3)
				s.AddDBScan()
				s.AddProbe()
				s.AddSlicePages(5)
				s.AddSliceAnd()
				s.AddCountCall()
				s.AddCandidate()
				s.AddFalseDrop()
			}
		}()
	}
	wg.Wait()

	n := int64(goroutines * perG)
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"DBSeqPages", s.DBSeqPages(), 2 * n},
		{"DBRandPages", s.DBRandPages(), 3 * n},
		{"DBScans", s.DBScans(), n},
		{"Probes", s.Probes(), n},
		{"SlicePageReads", s.SlicePageReads(), 5 * n},
		{"SliceAnds", s.SliceAnds(), n},
		{"CountCalls", s.CountCalls(), n},
		{"Candidates", s.Candidates(), n},
		{"FalseDrops", s.FalseDrops(), n},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	snap := s.Snapshot()
	if snap.Probes != n {
		t.Errorf("Snapshot().Probes = %d, want %d", snap.Probes, n)
	}
}

// TestStatsConcurrentSnapshot reads snapshots while writers are running —
// nothing to assert beyond "no race, no panic", which -race enforces.
func TestStatsConcurrentSnapshot(t *testing.T) {
	var s Stats
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.AddProbe()
			s.AddSlicePages(1)
		}
		close(done)
	}()
	for {
		_ = s.Snapshot()
		select {
		case <-done:
			wg.Wait()
			if s.Probes() != 500 {
				t.Errorf("Probes = %d, want 500", s.Probes())
			}
			return
		default:
		}
	}
}
