package bitvec

import (
	"math/rand"
	"testing"
)

// padTo returns a copy of v zero-extended to n bits — the reference
// semantics the ZX kernels must reproduce without materializing padding.
func padTo(v *Vector, n int) *Vector {
	c := v.Clone()
	c.Grow(n)
	return c
}

func TestAndCountZXMatchesPaddedAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(700)
		short := rng.Intn(n + 1)
		dst := randomVector(rng, n, 0.4)
		op := randomVector(rng, short, 0.4)

		want := dst.Clone()
		wantCount := want.AndCount(padTo(op, n))

		got := dst.Clone()
		if rng.Intn(2) == 0 {
			got.Summarize()
		}
		gotCount := got.AndCountZX(op)

		if gotCount != wantCount {
			t.Fatalf("trial %d (n=%d short=%d): count %d, want %d", trial, n, short, gotCount, wantCount)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d (n=%d short=%d): bits differ", trial, n, short)
		}
		if got.Summarized() {
			nz, _ := got.WordStats()
			rebuilt := got.Clone()
			rebuilt.Summarize()
			rnz, _ := rebuilt.WordStats()
			if nz != rnz {
				t.Fatalf("trial %d: summary nz=%d after ZX, want %d", trial, nz, rnz)
			}
		}
	}
}

func TestAndCountZXEqualLengthIsAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomVector(rng, 300, 0.4)
	b := randomVector(rng, 300, 0.4)
	want := a.Clone()
	wc := want.AndCount(b)
	got := a.Clone()
	if gc := got.AndCountZX(b); gc != wc || !got.Equal(want) {
		t.Fatalf("equal-length ZX diverged from AndCount: %d vs %d", gc, wc)
	}
}

func TestAndCountZXLongerOperandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AndCountZX with a longer operand did not panic")
		}
	}()
	New(64).AndCountZX(New(128))
}

func TestOrZXMatchesPaddedOr(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(700)
		short := rng.Intn(n + 1)
		dst := randomVector(rng, n, 0.4)
		op := randomVector(rng, short, 0.4)

		want := dst.Clone()
		want.Or(padTo(op, n))

		got := dst.Clone()
		got.OrZX(op)
		if !got.Equal(want) {
			t.Fatalf("trial %d (n=%d short=%d): bits differ", trial, n, short)
		}
	}
}

func TestOrZXLongerOperandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OrZX with a longer operand did not panic")
		}
	}()
	New(64).OrZX(New(128))
}
