package bitvec

import (
	"fmt"
	"math/bits"
)

// Zero-extending variants of the AND/OR kernels.
//
// A snapshotted BBS index grows its slices lazily: inserting a transaction
// only lengthens the slices whose bits the transaction actually sets, so a
// slice untouched since the last snapshot can be shorter than the index.
// The missing tail is all zeros by construction (no transaction set a bit
// there), which makes the shorter operand logically equal to itself padded
// with zeros. These kernels implement exactly that reading without
// materializing the padding: the caller keeps the full-length destination,
// the operand may be short.
//
// Both kernels rely on the trimTail invariant — bits beyond a vector's
// logical length are zero in its last backing word — so whole-word
// operations against the short operand's final word are already exact.

// AndCountZX is AndCount with a zero-extended operand: other may be shorter
// than v, in which case v's bits at or beyond other.Len() are cleared. With
// equal lengths it is exactly AndCount; an operand longer than v is a
// contract violation and panics like the fixed-length kernels do.
func (v *Vector) AndCountZX(other *Vector) int {
	if other.n >= v.n {
		return v.AndCount(other) // sameLen panics on other.n > v.n
	}
	if v.summary != nil {
		return v.andCountSparseZX(other)
	}
	return v.andCountDenseZX(other)
}

// andCountDenseZX sweeps the overlap like andCountDense and zeroes the tail.
func (v *Vector) andCountDenseZX(other *Vector) int {
	vw, ow := v.words, other.words
	if len(ow) > len(vw) { // impossible: other.n < v.n; keeps BCE honest
		return 0
	}
	c0, c1, c2, c3 := 0, 0, 0, 0
	i := 0
	for ; i+4 <= len(ow); i += 4 {
		w0 := vw[i] & ow[i]
		w1 := vw[i+1] & ow[i+1]
		w2 := vw[i+2] & ow[i+2]
		w3 := vw[i+3] & ow[i+3]
		vw[i], vw[i+1], vw[i+2], vw[i+3] = w0, w1, w2, w3
		c0 += bits.OnesCount64(w0)
		c1 += bits.OnesCount64(w1)
		c2 += bits.OnesCount64(w2)
		c3 += bits.OnesCount64(w3)
	}
	for ; i < len(ow); i++ {
		vw[i] &= ow[i]
		c0 += bits.OnesCount64(vw[i])
	}
	for ; i < len(vw); i++ {
		vw[i] = 0
	}
	return c0 + c1 + c2 + c3
}

// andCountSparseZX walks v's nonzero words; words past the operand's end
// are ANDs against the zero padding, so they die and leave the summary.
func (v *Vector) andCountSparseZX(other *Vector) int {
	ow := other.words
	c := 0
	for si, sw := range v.summary {
		if sw == 0 {
			continue
		}
		base := si << wordShift
		for sw != 0 {
			t := bits.TrailingZeros64(sw)
			sw &= sw - 1
			wi := base + t
			var w uint64
			if wi < len(ow) {
				w = v.words[wi] & ow[wi]
			}
			v.words[wi] = w
			if w == 0 {
				v.summary[si] &^= 1 << uint(t)
				v.nz--
			} else {
				c += bits.OnesCount64(w)
			}
		}
	}
	return c
}

// OrZX replaces v with v OR other where other may be shorter than v: the
// operand is read as zero-padded, so v's bits beyond other.Len() are kept
// as they are. An operand longer than v panics.
func (v *Vector) OrZX(other *Vector) {
	if other.n > v.n {
		panic(fmt.Sprintf("bitvec: zero-extended operand longer than destination: %d vs %d", other.n, v.n))
	}
	v.dropSummary()
	for i, w := range other.words {
		v.words[i] |= w
	}
}
