package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLenAndZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, v.Len())
		}
		if v.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, v.Count())
		}
		if !v.IsZero() {
			t.Errorf("New(%d) not zero", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := v.Count(); got != len(idx) {
		t.Errorf("Count = %d, want %d", got, len(idx))
	}
	for _, i := range idx {
		v.Clear(i)
		if v.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
	if !v.IsZero() {
		t.Error("vector not zero after clearing all set bits")
	}
}

func TestBoundsPanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestSetAllRespectsLength(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100} {
		v := New(n)
		v.SetAll()
		if got := v.Count(); got != n {
			t.Errorf("SetAll on len %d: Count = %d", n, got)
		}
	}
}

func TestReset(t *testing.T) {
	v := New(100)
	v.SetAll()
	v.Reset()
	if !v.IsZero() || v.Len() != 100 {
		t.Errorf("Reset: IsZero=%v Len=%d", v.IsZero(), v.Len())
	}
}

func TestGrowPreservesBits(t *testing.T) {
	v := New(10)
	v.Set(3)
	v.Set(9)
	v.Grow(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d after Grow(200)", v.Len())
	}
	if !v.Get(3) || !v.Get(9) {
		t.Error("Grow lost bits")
	}
	if v.Count() != 2 {
		t.Errorf("Count = %d after Grow, want 2", v.Count())
	}
	// Growing to a smaller size is a no-op.
	v.Grow(5)
	if v.Len() != 200 {
		t.Errorf("Grow shrunk the vector to %d", v.Len())
	}
}

func TestGrowTailIsZero(t *testing.T) {
	// SetAll then Grow: the new region must be zero even though the old
	// last word was saturated up to the logical length.
	v := New(70)
	v.SetAll()
	v.Grow(140)
	if got := v.Count(); got != 70 {
		t.Errorf("Count = %d after SetAll(70)+Grow(140), want 70", got)
	}
	for i := 70; i < 140; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d unexpectedly set in grown region", i)
		}
	}
}

func TestAppend(t *testing.T) {
	var v Vector
	pattern := []bool{true, false, true, true, false}
	for i := 0; i < 30; i++ {
		for _, b := range pattern {
			v.Append(b)
		}
	}
	if v.Len() != 150 {
		t.Fatalf("Len = %d, want 150", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) != pattern[i%len(pattern)] {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), pattern[i%len(pattern)])
		}
	}
}

func TestAndOrXorAndNot(t *testing.T) {
	a := FromBits([]bool{true, true, false, false, true})
	b := FromBits([]bool{true, false, true, false, true})

	and := a.Clone()
	and.And(b)
	if got := and.String(); got != "10001" {
		t.Errorf("And = %s, want 10001", got)
	}
	or := a.Clone()
	or.Or(b)
	if got := or.String(); got != "11101" {
		t.Errorf("Or = %s, want 11101", got)
	}
	xor := a.Clone()
	xor.Xor(b)
	if got := xor.String(); got != "01100" {
		t.Errorf("Xor = %s, want 01100", got)
	}
	andnot := a.Clone()
	andnot.AndNot(b)
	if got := andnot.String(); got != "01000" {
		t.Errorf("AndNot = %s, want 01000", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestAndCountMatchesAndPlusCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := randomVec(rng, n), randomVec(rng, n)
		ref := a.Clone()
		ref.And(b)
		got := a.AndCount(b)
		if got != ref.Count() {
			t.Fatalf("AndCount = %d, want %d", got, ref.Count())
		}
		if !a.Equal(ref) {
			t.Fatalf("AndCount result vector differs from And")
		}
	}
}

func TestCountUpTo(t *testing.T) {
	v := New(300)
	for i := 0; i < 300; i += 3 {
		v.Set(i)
	}
	total := v.Count()
	if got := v.CountUpTo(total + 10); got != total {
		t.Errorf("CountUpTo(total+10) = %d, want %d", got, total)
	}
	if got := v.CountUpTo(5); got != 5 {
		t.Errorf("CountUpTo(5) = %d, want 5", got)
	}
	if got := v.CountUpTo(0); got != 0 {
		t.Errorf("CountUpTo(0) = %d, want 0", got)
	}
}

func TestCopyFromAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randomVec(rng, 200)
	var dst Vector
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom: not equal")
	}
	// Mutating the copy must not affect the source.
	dst.Set(0)
	dst.Clear(1)
	c := src.Clone()
	if !c.Equal(src) {
		t.Fatal("Clone: not equal")
	}
}

func TestEqual(t *testing.T) {
	a := FromBits([]bool{true, false, true})
	b := FromBits([]bool{true, false, true})
	c := FromBits([]bool{true, true, true})
	d := New(4)
	if !a.Equal(b) {
		t.Error("identical vectors not Equal")
	}
	if a.Equal(c) {
		t.Error("different contents reported Equal")
	}
	if a.Equal(d) {
		t.Error("different lengths reported Equal")
	}
}

func TestNextSet(t *testing.T) {
	v := New(200)
	want := []int{0, 5, 63, 64, 130, 199}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	for i, ok := v.NextSet(0); ok; i, ok = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet iteration found %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet iteration found %v, want %v", got, want)
		}
	}
	if _, ok := v.NextSet(200); ok {
		t.Error("NextSet past end returned ok")
	}
	if i, ok := v.NextSet(-5); !ok || i != 0 {
		t.Error("NextSet with negative start should clamp to 0")
	}
}

func TestForEachSetEarlyStop(t *testing.T) {
	v := New(100)
	for i := 0; i < 100; i++ {
		v.Set(i)
	}
	n := 0
	v.ForEachSet(func(i int) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d bits, want 7", n)
	}
}

func TestOnesMatchesForEachSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randomVec(rng, 500)
	ones := v.Ones()
	j := 0
	v.ForEachSet(func(i int) bool {
		if ones[j] != i {
			t.Fatalf("Ones[%d] = %d, ForEachSet yields %d", j, ones[j], i)
		}
		j++
		return true
	})
	if j != len(ones) {
		t.Fatalf("Ones has %d entries, ForEachSet yielded %d", len(ones), j)
	}
}

func TestString(t *testing.T) {
	v := FromBits([]bool{true, true, false, true})
	if got := v.String(); got != "1101" {
		t.Errorf("String = %q, want 1101", got)
	}
	if got := New(0).String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
}

func TestSetWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 64, 65, 200} {
		v := randomVec(rng, n)
		var u Vector
		if err := u.SetWords(v.Words(), v.Len()); err != nil {
			t.Fatalf("SetWords(len=%d): %v", n, err)
		}
		if !u.Equal(v) {
			t.Fatalf("round trip failed for len %d", n)
		}
	}
	var u Vector
	if err := u.SetWords([]uint64{1, 2}, 64); err == nil {
		t.Error("SetWords with mismatched word count should error")
	}
	if err := u.SetWords(nil, -1); err == nil {
		t.Error("SetWords with negative length should error")
	}
}

func TestSetWordsClearsTail(t *testing.T) {
	var u Vector
	// 70 bits need 2 words; poison bits beyond 70.
	if err := u.SetWords([]uint64{^uint64(0), ^uint64(0)}, 70); err != nil {
		t.Fatal(err)
	}
	if got := u.Count(); got != 70 {
		t.Errorf("Count = %d, want 70 (tail not trimmed)", got)
	}
}

// Property: for random vectors, And never increases popcount and the result
// is a subset of both operands (the Lemma 1/2 pruning property BBS relies on).
func TestQuickAndIsIntersection(t *testing.T) {
	f := func(aw, bw []uint64) bool {
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		nbits := n * 64
		a, b := New(nbits), New(nbits)
		for i := 0; i < n; i++ {
			a.words[i] = aw[i]
			b.words[i] = bw[i]
		}
		r := a.Clone()
		r.And(b)
		if r.Count() > a.Count() || r.Count() > b.Count() {
			return false
		}
		ok := true
		r.ForEachSet(func(i int) bool {
			if !a.Get(i) || !b.Get(i) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Count equals the number of indices visited by ForEachSet.
func TestQuickCountMatchesIteration(t *testing.T) {
	f := func(words []uint64) bool {
		v := New(len(words) * 64)
		copy(v.words, words)
		n := 0
		v.ForEachSet(func(int) bool { n++; return true })
		return n == v.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Xor twice restores the original (involution).
func TestQuickXorInvolution(t *testing.T) {
	f := func(aw, bw []uint64) bool {
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		a, b := New(n*64), New(n*64)
		for i := 0; i < n; i++ {
			a.words[i] = aw[i]
			b.words[i] = bw[i]
		}
		orig := a.Clone()
		a.Xor(b)
		a.Xor(b)
		return a.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomVec(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func BenchmarkAndCount(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randomVec(rng, 100000)
	y := randomVec(rng, 100000)
	tmp := New(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp.CopyFrom(x)
		tmp.AndCount(y)
	}
}

func BenchmarkForEachSet(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	v := randomVec(rng, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		v.ForEachSet(func(int) bool { n++; return true })
	}
}
