package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Cold slice payloads.
//
// A tiered index keeps a slice's header — encoding, length, popcount —
// resident while parking its payload in page-granular cold storage (the
// Bloofi observation: cheap per-slice metadata stays hot so cold bytes are
// only paid for when a slice actually joins an AND chain). The cold byte
// formats mirror the resident encodings one-to-one:
//
//	EncDense  — ceil(n/64) uint64 words, little-endian
//	EncSparse — ones × uint32 set-bit positions, strictly ascending
//	EncRLE    — pairs × (start uint32, length uint32)
//
// All values are 4- or 8-byte aligned and the page size divides by 8, so
// no value ever straddles a page: the AND kernels stream the payload one
// page at a time — pin, scan, release — touching each page exactly once
// and never materializing the slice. The kernels produce bit-identical
// results to their resident counterparts; tiering moves bytes, never bits.

// PageSource serves a cold payload's pages. Page k covers payload bytes
// [k*PageSize, (k+1)*PageSize); the returned slice is read-only and valid
// until Release(k). Implementations surface I/O failure by panicking with
// a wrapped error: the cold file is derived data whose loss mid-kernel has
// no local recovery, and threading errors through the AND chain would tax
// the resident fast path (see sigfile's adapter for the policy).
type PageSource interface {
	// Page pins payload page k and returns its bytes.
	Page(k int) []byte
	// Release unpins page k.
	Release(k int)
	// PageSize returns the page granularity in bytes; it must be a
	// positive multiple of 8.
	PageSize() int
}

// coldPayload locates a slice's payload in cold storage.
type coldPayload struct {
	src   PageSource
	bytes int // payload length in bytes (before page padding)
}

// NewColdSlice builds a slice header whose payload of payloadBytes bytes
// lives behind src in the cold format for enc. The header carries the
// logical length and popcount, so ordering, budgeting, and persistence
// metadata never fault a page.
func NewColdSlice(enc Encoding, n, ones int, src PageSource, payloadBytes int) *Slice {
	return &Slice{enc: enc, n: n, ones: ones, cold: &coldPayload{src: src, bytes: payloadBytes}}
}

// IsCold reports whether the payload lives in cold storage.
func (s *Slice) IsCold() bool { return s.cold != nil }

// ColdPayloadBytes returns the cold payload length in bytes, 0 for a
// resident slice.
func (s *Slice) ColdPayloadBytes() int64 {
	if s.cold == nil {
		return 0
	}
	return int64(s.cold.bytes)
}

// EncodeCold serializes a resident slice's payload into the cold byte
// format for its encoding. The tiering pass writes this to the cold file;
// Thaw is its inverse.
func (s *Slice) EncodeCold() []byte {
	if s.cold != nil {
		panic("bitvec: EncodeCold on an already-cold slice")
	}
	switch s.enc {
	case EncDense:
		words := s.Materialize().words // normalizes a lazily-grown vector to wordsFor(n)
		out := make([]byte, 8*len(words))
		for i, w := range words {
			binary.LittleEndian.PutUint64(out[8*i:], w)
		}
		return out
	case EncSparse:
		pos := s.Positions()
		out := make([]byte, 4*len(pos))
		for i, p := range pos {
			binary.LittleEndian.PutUint32(out[4*i:], p)
		}
		return out
	default:
		out := make([]byte, 4*len(s.runs))
		for i, r := range s.runs {
			binary.LittleEndian.PutUint32(out[4*i:], r)
		}
		return out
	}
}

// readAll streams the whole cold payload into one contiguous buffer —
// the decode path for Thaw and the rare whole-slice readers (Materialize,
// Fold's OrInto, shard merges). Query kernels never call it.
func (c *coldPayload) readAll() []byte {
	out := make([]byte, 0, c.bytes)
	ps := c.src.PageSize()
	for k := 0; len(out) < c.bytes; k++ {
		pg := c.src.Page(k)
		take := c.bytes - len(out)
		if take > ps {
			take = ps
		}
		out = append(out, pg[:take]...)
		c.src.Release(k)
	}
	return out
}

// Thaw decodes a cold slice back into a fully resident one with the same
// encoding, length, and popcount; a resident receiver is returned as-is.
// The receiver is never modified (snapshots may share it) — the caller
// installs the result. Mutation paths thaw first: cold slices are
// immutable by construction.
func (s *Slice) Thaw() *Slice {
	if s.cold == nil {
		return s
	}
	raw := s.cold.readAll()
	switch s.enc {
	case EncDense:
		words := make([]uint64, len(raw)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(raw[8*i:])
		}
		var v Vector
		if err := v.SetWords(words, s.n); err != nil {
			panic(fmt.Errorf("bitvec: thaw dense cold slice: %w", err))
		}
		return DenseSliceWithOnes(&v, s.ones)
	case EncSparse:
		pos := make([]uint32, len(raw)/4)
		for i := range pos {
			pos[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		t, err := SliceFromPositions(pos, s.n)
		if err != nil {
			panic(fmt.Errorf("bitvec: thaw sparse cold slice: %w", err))
		}
		return t
	default:
		runs := make([]uint32, len(raw)/4)
		for i := range runs {
			runs[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		t, err := SliceFromRuns(runs, s.n)
		if err != nil {
			panic(fmt.Errorf("bitvec: thaw rle cold slice: %w", err))
		}
		return t
	}
}

// andCountIntoSlow is AndCountInto's non-inlined tail: cold payloads
// stream through the page-windowed kernels below; resident compressed
// payloads dispatch to the direct kernels. Split out so the resident dense
// fast path in AndCountInto stays a single predicted branch.
//
//lint:hotpath
func (s *Slice) andCountIntoSlow(dst *Vector) int {
	if s.cold == nil {
		return s.andCountIntoCompressed(dst)
	}
	if s.n > dst.n {
		panic(fmt.Sprintf("bitvec: zero-extended operand longer than destination: %d vs %d", s.n, dst.n))
	}
	// The cold kernels write dst.words directly, so the accumulator must
	// leave sparse mode first. A bits-identical change (the summary is an
	// overlay); the chain's MaybeSummarize re-promotes at the same points
	// it would on the resident path because the estimates are identical.
	dst.dropSummary()
	switch s.enc {
	case EncDense:
		return s.andCountColdDense(dst)
	case EncSparse:
		return s.andCountColdPositions(dst)
	default:
		return s.andCountColdRuns(dst)
	}
}

// andCountColdDense ANDs a cold dense payload into dst page by page: each
// page is a window of up to PageSize/8 words AND-ed and popcounted in one
// pass; dst words beyond the payload are zeroed (the ZX contract).
//
//lint:hotpath
func (s *Slice) andCountColdDense(dst *Vector) int {
	c := s.cold
	wordsPerPage := c.src.PageSize() >> 3
	nwords := c.bytes >> 3
	vw := dst.words
	cnt := 0
	wi := 0
	for k := 0; wi < nwords; k++ {
		pg := c.src.Page(k)
		top := nwords - wi
		if top > wordsPerPage {
			top = wordsPerPage
		}
		for j := 0; j < top; j++ {
			w := vw[wi] & binary.LittleEndian.Uint64(pg[8*j:])
			vw[wi] = w
			cnt += bits.OnesCount64(w)
			wi++
		}
		c.src.Release(k)
	}
	for ; wi < len(vw); wi++ {
		vw[wi] = 0
	}
	return cnt
}

// andCountColdPositions ANDs a cold sparse payload into dst by streaming
// its ascending uint32 positions: a (word, mask) cursor accumulates the
// positions of each word, flushes it with one AND+popcount, and zeroes the
// dst words the stream skips. One sequential pass over both arrays.
//
//lint:hotpath
func (s *Slice) andCountColdPositions(dst *Vector) int {
	c := s.cold
	perPage := c.src.PageSize() >> 2
	total := c.bytes >> 2
	vw := dst.words
	cnt := 0
	cur := -1
	var mask uint64
	read := 0
	for k := 0; read < total; k++ {
		pg := c.src.Page(k)
		top := total - read
		if top > perPage {
			top = perPage
		}
		for j := 0; j < top; j++ {
			p := int(binary.LittleEndian.Uint32(pg[4*j:]))
			w := p >> wordShift
			if w != cur {
				if cur >= 0 {
					nw := vw[cur] & mask
					vw[cur] = nw
					cnt += bits.OnesCount64(nw)
				}
				for i := cur + 1; i < w; i++ {
					vw[i] = 0
				}
				cur = w
				mask = 0
			}
			mask |= 1 << uint(p&wordMask)
		}
		c.src.Release(k)
		read += top
	}
	if cur >= 0 {
		nw := vw[cur] & mask
		vw[cur] = nw
		cnt += bits.OnesCount64(nw)
	}
	for i := cur + 1; i < len(vw); i++ {
		vw[i] = 0
	}
	return cnt
}

// andCountColdRuns ANDs a cold RLE payload into dst by walking its
// (start, length) pairs with the same (word, mask) cursor: border words
// get masks assembled from the runs touching them, interior words of a
// long run AND against all-ones (a popcount, no change), and words outside
// every run are zeroed.
//
//lint:hotpath
func (s *Slice) andCountColdRuns(dst *Vector) int {
	c := s.cold
	pairsPerPage := c.src.PageSize() >> 3
	totalPairs := c.bytes >> 3
	vw := dst.words
	cnt := 0
	cur := -1
	var mask uint64
	done := 0
	for k := 0; done < totalPairs; k++ {
		pg := c.src.Page(k)
		top := totalPairs - done
		if top > pairsPerPage {
			top = pairsPerPage
		}
		for j := 0; j < top; j++ {
			a := int(binary.LittleEndian.Uint32(pg[8*j:]))
			b := a + int(binary.LittleEndian.Uint32(pg[8*j+4:]))
			for w := a >> wordShift; w <= (b-1)>>wordShift; w++ {
				if w != cur {
					if cur >= 0 {
						nw := vw[cur] & mask
						vw[cur] = nw
						cnt += bits.OnesCount64(nw)
					}
					for i := cur + 1; i < w; i++ {
						vw[i] = 0
					}
					cur = w
					mask = 0
				}
				lo, hi := w<<wordShift, (w+1)<<wordShift
				if a > lo {
					lo = a
				}
				if b < hi {
					hi = b
				}
				base := w << wordShift
				mask |= onesRange(lo-base, hi-base)
			}
		}
		c.src.Release(k)
		done += top
	}
	if cur >= 0 {
		nw := vw[cur] & mask
		vw[cur] = nw
		cnt += bits.OnesCount64(nw)
	}
	for i := cur + 1; i < len(vw); i++ {
		vw[i] = 0
	}
	return cnt
}
