package bitvec

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a concurrency-safe free list of equal-length Vectors. The parallel
// mining engine hands residual and scratch vectors between workers through a
// Pool so the slice-AND hot path stays allocation-free after warm-up: a
// subtree's residual vector is taken from the pool when the subtree is
// scheduled and returned as soon as it has been mined.
//
// Vectors returned by Get have the pool's fixed length but unspecified
// contents; callers overwrite them (CopyFrom, SetAll) before use.
type Pool struct {
	n int
	p sync.Pool

	gets   atomic.Int64 // vectors handed out
	misses atomic.Int64 // gets that had to allocate a fresh vector
}

// NewPool returns a pool of n-bit vectors.
func NewPool(n int) *Pool {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative pool length %d", n))
	}
	pl := &Pool{n: n}
	pl.p.New = func() any {
		pl.misses.Add(1)
		return New(n)
	}
	return pl
}

// Len returns the length, in bits, of the vectors the pool hands out.
func (p *Pool) Len() int { return p.n }

// Get returns a vector of length Len() with unspecified contents.
func (p *Pool) Get() *Vector {
	p.gets.Add(1)
	return p.p.Get().(*Vector)
}

// Counters returns the pool's lifetime traffic: gets handed out, of which
// misses were fresh allocations. The difference is the reuse the pool won.
func (p *Pool) Counters() (gets, misses int64) {
	return p.gets.Load(), p.misses.Load()
}

// Put returns a vector to the pool. Vectors of the wrong length (or nil) are
// dropped rather than recycled, so callers may Put unconditionally.
func (p *Pool) Put(v *Vector) {
	if v == nil || v.Len() != p.n {
		return
	}
	p.p.Put(v)
}
