// Package bitvec provides the dense bit-vector kernel that underpins the
// Bit-Sliced Bloom-Filtered Signature File (BBS).
//
// A Vector is a fixed-capacity bitset backed by a []uint64. The package is
// written for the access patterns of BBS:
//
//   - bit-slices are AND-ed together pairwise, in place, with an early-exit
//     popcount check (CountItemSet stops as soon as the running count falls
//     below the support threshold);
//   - result vectors are iterated bit-by-set-bit to drive Probe refinement;
//   - slices grow by one bit per transaction appended to a dynamic database.
//
// All operations are word-granular. None of the methods allocate unless the
// doc comment says otherwise.
package bitvec

import (
	"fmt"
	"math/bits"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Vector is a bitset of a fixed logical length. Bits are indexed from 0.
// The zero value is an empty vector of length 0; use New or Grow to size it.
type Vector struct {
	words []uint64
	n     int // logical length in bits

	// Sparse mode (see sparse.go): summary holds one bit per backing word,
	// set iff the word is nonzero; nil means the summary is not maintained.
	// nz counts the nonzero words while the summary is live.
	summary []uint64
	nz      int
}

// New returns a zeroed vector of n bits.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{words: make([]uint64, wordsFor(n)), n: n}
}

// FromBits builds a vector from a bool slice, mostly for tests and examples.
func FromBits(bits []bool) *Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i)
		}
	}
	return v
}

func wordsFor(n int) int { return (n + wordMask) >> wordShift }

// Len returns the logical length of the vector in bits.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.bounds(i)
	wi := i >> wordShift
	if v.summary != nil && v.words[wi] == 0 {
		v.summary[wi>>wordShift] |= 1 << uint(wi&wordMask)
		v.nz++
	}
	v.words[wi] |= 1 << uint(i&wordMask)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.bounds(i)
	wi := i >> wordShift
	was := v.words[wi]
	v.words[wi] &^= 1 << uint(i&wordMask)
	if v.summary != nil && was != 0 && v.words[wi] == 0 {
		v.summary[wi>>wordShift] &^= 1 << uint(wi&wordMask)
		v.nz--
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.bounds(i)
	return v.words[i>>wordShift]&(1<<uint(i&wordMask)) != 0
}

func (v *Vector) bounds(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// SetAll sets every bit in the vector to 1.
func (v *Vector) SetAll() {
	v.dropSummary()
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trimTail()
}

// Reset sets every bit to 0 without changing the length.
func (v *Vector) Reset() {
	v.dropSummary()
	for i := range v.words {
		v.words[i] = 0
	}
}

// trimTail zeroes the bits beyond the logical length in the last word, so
// that popcounts and equality checks stay exact.
func (v *Vector) trimTail() {
	if tail := uint(v.n & wordMask); tail != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << tail) - 1
	}
}

// Grow extends the vector to n bits, preserving contents. New bits are 0.
// Shrinking is not supported; Grow with n <= Len is a no-op. Grow amortizes
// reallocation by doubling capacity, so appending one bit per transaction
// (the dynamic-database path of BBS) is O(1) amortized.
func (v *Vector) Grow(n int) {
	if n <= v.n {
		return
	}
	v.dropSummary()
	need := wordsFor(n)
	if need > cap(v.words) {
		newCap := 2 * cap(v.words)
		if newCap < need {
			newCap = need
		}
		w := make([]uint64, need, newCap)
		copy(w, v.words)
		v.words = w
	} else {
		v.words = v.words[:need]
	}
	v.n = n
}

// Append adds a single bit at the end of the vector.
func (v *Vector) Append(bit bool) {
	i := v.n
	v.Grow(i + 1)
	if bit {
		v.Set(i)
	}
}

// Count returns the number of set bits (population count).
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountUpTo returns min(Count(), limit). It scans words until the running
// count reaches limit, so callers that only need to know "at least limit
// bits are set" pay proportionally less on dense vectors.
func (v *Vector) CountUpTo(limit int) int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
		if c >= limit {
			return limit
		}
	}
	return c
}

// And replaces v with v AND other. Both vectors must have the same length.
func (v *Vector) And(other *Vector) {
	v.sameLen(other)
	v.dropSummary()
	for i, w := range other.words {
		v.words[i] &= w
	}
}

// AndCount replaces v with v AND other and returns the popcount of the
// result in the same pass. This fusion is the inner loop of CountItemSet.
//
// The kernel is chosen by v's mode (see sparse.go): a summarized vector
// visits only its nonzero words (and keeps its summary current); a dense
// one runs the unrolled full sweep. Promotion to sparse mode is the
// caller's call — MaybeSummarize — because building the summary costs a
// word sweep that only pays off when the vector is AND-ed again. The
// result bits are identical either way.
//
//lint:hotpath
func (v *Vector) AndCount(other *Vector) int {
	v.sameLen(other)
	if v.summary != nil {
		return v.andCountSparse(other)
	}
	return v.andCountDense(other)
}

// Or replaces v with v OR other. Both vectors must have the same length.
func (v *Vector) Or(other *Vector) {
	v.sameLen(other)
	v.dropSummary()
	for i, w := range other.words {
		v.words[i] |= w
	}
}

// AndNot replaces v with v AND NOT other (clears the bits set in other).
func (v *Vector) AndNot(other *Vector) {
	v.sameLen(other)
	v.dropSummary()
	for i, w := range other.words {
		v.words[i] &^= w
	}
}

// Xor replaces v with v XOR other. Both vectors must have the same length.
func (v *Vector) Xor(other *Vector) {
	v.sameLen(other)
	v.dropSummary()
	for i, w := range other.words {
		v.words[i] ^= w
	}
}

func (v *Vector) sameLen(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, other.n))
	}
}

// CopyFrom makes v an exact copy of other, reusing v's storage when it is
// large enough. After the call v.Len() == other.Len().
func (v *Vector) CopyFrom(other *Vector) {
	need := len(other.words)
	if cap(v.words) < need {
		v.words = make([]uint64, need)
	} else {
		v.words = v.words[:need]
	}
	copy(v.words, other.words)
	v.n = other.n
	v.copySummaryFrom(other)
}

// Clone returns a new vector with the same contents. Allocates.
func (v *Vector) Clone() *Vector {
	c := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(c.words, v.words)
	c.copySummaryFrom(v)
	return c
}

// Equal reports whether v and other have the same length and contents.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i, w := range v.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no bit is set.
func (v *Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, and whether
// one exists. It is the building block for iteration without allocation:
//
//	for i, ok := v.NextSet(0); ok; i, ok = v.NextSet(i + 1) { ... }
func (v *Vector) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return 0, false
	}
	wi := i >> wordShift
	w := v.words[wi] >> uint(i&wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi<<wordShift + bits.TrailingZeros64(v.words[wi]), true
		}
	}
	return 0, false
}

// ForEachSet calls fn with the index of every set bit, in increasing order.
// If fn returns false, iteration stops early.
func (v *Vector) ForEachSet(fn func(i int) bool) {
	for wi, w := range v.words {
		base := wi << wordShift
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(base + t) {
				return
			}
			w &= w - 1
		}
	}
}

// Ones returns the indices of all set bits. Allocates; prefer ForEachSet or
// NextSet in hot paths.
func (v *Vector) Ones() []int {
	out := make([]int, 0, v.Count())
	v.ForEachSet(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the vector as a bit string, bit 0 first, matching the
// paper's Table 1 presentation ("11111111" for a fully set 8-bit vector).
func (v *Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// Words exposes the backing words for serialization. The returned slice
// aliases the vector's storage; callers must not modify it.
func (v *Vector) Words() []uint64 { return v.words }

// SetWords replaces the vector's contents with the given words and logical
// length. The slice is copied. Bits beyond n in the final word are cleared.
func (v *Vector) SetWords(words []uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("bitvec: negative length %d", n)
	}
	if wordsFor(n) != len(words) {
		return fmt.Errorf("bitvec: %d words cannot hold exactly %d bits", len(words), n)
	}
	v.dropSummary()
	v.words = make([]uint64, len(words))
	copy(v.words, words)
	v.n = n
	v.trimTail()
	return nil
}
