package bitvec

import (
	"math/rand"
	"testing"
)

// clusteredVector returns an n-bit vector made of random runs, the shape
// RLE is for.
func clusteredVector(rng *rand.Rand, n int, runs, maxLen int) *Vector {
	v := New(n)
	for r := 0; r < runs; r++ {
		start := rng.Intn(n)
		length := 1 + rng.Intn(maxLen)
		for i := start; i < start+length && i < n; i++ {
			v.Set(i)
		}
	}
	return v
}

// encodeAs forces ref into the given encoding, bypassing the size rule, so
// every kernel is exercised regardless of the data's natural encoding.
func encodeAs(t testing.TB, ref *Vector, enc Encoding) *Slice {
	t.Helper()
	s := DenseSliceOf(ref.Clone())
	switch enc {
	case EncDense:
		return s
	case EncSparse:
		pos := make([]uint32, 0, s.Ones())
		ref.ForEachSet(func(i int) bool {
			pos = append(pos, uint32(i))
			return true
		})
		sp, err := SliceFromPositions(pos, ref.Len())
		if err != nil {
			t.Fatalf("SliceFromPositions: %v", err)
		}
		return sp
	default:
		var runs []uint32
		s.forEachRange(func(start, end int) {
			runs = append(runs, uint32(start), uint32(end-start))
		})
		rl, err := SliceFromRuns(runs, ref.Len())
		if err != nil {
			t.Fatalf("SliceFromRuns: %v", err)
		}
		return rl
	}
}

var allEncodings = []Encoding{EncDense, EncSparse, EncRLE}

// TestAndCountIntoMatchesDense is the core kernel-parity property: for every
// encoding, against both a dense and a summarized accumulator, with the
// slice both equal-length and shorter (zero-extended), AndCountInto must
// leave the accumulator byte-identical to AndCountZX against the
// materialized slice and return the same count.
func TestAndCountIntoMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := []func() *Vector{
		func() *Vector { return randomVector(rng, 1700, 0.005) },
		func() *Vector { return randomVector(rng, 1700, 0.05) },
		func() *Vector { return randomVector(rng, 1700, 0.6) },
		func() *Vector { return clusteredVector(rng, 1700, 6, 120) },
		func() *Vector { return New(1700) },                     // empty
		func() *Vector { v := New(1700); v.SetAll(); return v }, // full
	}
	for trial := 0; trial < 40; trial++ {
		ref := shapes[trial%len(shapes)]()
		for _, enc := range allEncodings {
			s := encodeAs(t, ref, enc)
			for _, dstLen := range []int{ref.Len(), ref.Len() + 257} {
				for _, summarized := range []bool{false, true} {
					dst := randomVector(rng, dstLen, 0.3)
					want := dst.Clone()
					if summarized {
						dst.Summarize()
						want.Summarize()
					}
					wantC := want.AndCountZX(s.Materialize())
					gotC := s.AndCountInto(dst)
					if gotC != wantC {
						t.Fatalf("trial %d enc %v dstLen %d summarized %v: count %d, want %d",
							trial, enc, dstLen, summarized, gotC, wantC)
					}
					if !dst.Equal(want) {
						t.Fatalf("trial %d enc %v dstLen %d summarized %v: result bits differ",
							trial, enc, dstLen, summarized)
					}
					if summarized {
						// The maintained summary must match a rebuild.
						nz := 0
						for _, w := range dst.words {
							if w != 0 {
								nz++
							}
						}
						if dst.nz != nz {
							t.Fatalf("trial %d enc %v: summary nz %d, want %d", trial, enc, dst.nz, nz)
						}
					}
				}
			}
		}
	}
}

// TestAndCountIntoChained ANDs several compressed slices into one
// accumulator, mimicking CountItemSet's rarest-first chain with the
// mid-chain summary promotion the miner performs.
func TestAndCountIntoChained(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 3000
	for trial := 0; trial < 20; trial++ {
		slices := []*Slice{
			encodeAs(t, randomVector(rng, n, 0.01), EncSparse),
			encodeAs(t, clusteredVector(rng, n, 4, 200), EncRLE),
			encodeAs(t, randomVector(rng, n, 0.5), EncDense),
			encodeAs(t, randomVector(rng, n, 0.02), EncSparse),
		}
		dst := New(n)
		dst.SetAll()
		want := dst.Clone()
		for i, s := range slices {
			gotC := s.AndCountInto(dst)
			wantC := want.AndCountZX(s.Materialize())
			if gotC != wantC {
				t.Fatalf("trial %d step %d: count %d, want %d", trial, i, gotC, wantC)
			}
			if i == 1 {
				dst.MaybeSummarize(gotC)
				want.MaybeSummarize(wantC)
			}
		}
		if !dst.Equal(want) {
			t.Fatalf("trial %d: chained result differs", trial)
		}
	}
}

// TestAppendSetMatchesVector drives AppendSet with the insert pattern the
// BBS produces (non-decreasing positions, duplicates within a transaction)
// and checks contents, popcount and the promotion invariant.
func TestAppendSetMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, start := range []Encoding{EncSparse, EncRLE} {
		var s *Slice
		if start == EncSparse {
			s = NewSparseSlice()
		} else {
			s = &Slice{enc: EncRLE}
		}
		ref := New(0)
		pos := 0
		for txn := 0; txn < 2000; txn++ {
			hits := 1 + rng.Intn(2)
			for h := 0; h < hits; h++ {
				if rng.Float64() < 0.4 {
					newly := s.AppendSet(pos)
					ref.Grow(pos + 1)
					wasSet := ref.Get(pos)
					if newly == wasSet {
						t.Fatalf("start %v pos %d: newly=%v with bit already %v", start, pos, newly, wasSet)
					}
					ref.Set(pos)
				}
			}
			pos++
		}
		if s.Ones() != ref.Count() {
			t.Fatalf("start %v: ones %d, want %d", start, s.Ones(), ref.Count())
		}
		got := s.Materialize()
		got.Grow(ref.Len())
		if !got.Equal(ref) {
			t.Fatalf("start %v: contents differ after appends", start)
		}
		// The hysteresis upper edge: payload never reaches the dense size.
		if s.Encoding() != EncDense && s.Bytes() >= 8*int64(wordsFor(s.Len())) {
			t.Fatalf("start %v: payload %d bytes not promoted at dense size %d",
				start, s.Bytes(), 8*wordsFor(s.Len()))
		}
	}
}

// TestAppendSetPromotes pins the promotion edge: a dense append stream on a
// sparse slice must flip it to dense, preserving contents.
func TestAppendSetPromotes(t *testing.T) {
	s := NewSparseSlice()
	for i := 0; i < 1024; i++ {
		s.AppendSet(i)
	}
	if s.Encoding() != EncDense {
		t.Fatalf("encoding %v after dense appends, want dense", s.Encoding())
	}
	if s.Ones() != 1024 || s.Len() != 1024 {
		t.Fatalf("ones %d len %d, want 1024/1024", s.Ones(), s.Len())
	}
	for i := 0; i < 1024; i++ {
		if !s.Get(i) {
			t.Fatalf("bit %d lost across promotion", i)
		}
	}
}

// TestMaybeCompressDemotes pins the lower hysteresis edge: a dense slice
// whose length outgrows its density demotes to a compressed form, and the
// 2x band keeps a demote/promote cycle from thrashing.
func TestMaybeCompressDemotes(t *testing.T) {
	s := NewDenseSlice(0)
	// 64 ones packed at the front; while the slice is short the window
	// test must keep it dense (payload comparable to the dense layout).
	for i := 0; i < 64; i++ {
		s.AppendSet(i)
		if r := s.MaybeCompress(); r != s {
			t.Fatalf("demoted at len %d, inside the band", s.Len())
		}
	}
	// One far-away bit stretches the length: 65 ones over 8192 bits is
	// deep inside the selection window, so the demote must fire.
	s.AppendSet(8191)
	r := s.MaybeCompress()
	if r == s || r.Encoding() == EncDense {
		t.Fatalf("encoding %v after length outgrew density, want compressed", r.Encoding())
	}
	if r.Ones() != 65 || r.Len() != 8192 {
		t.Fatalf("ones %d len %d across demotion, want 65/8192", r.Ones(), r.Len())
	}
	for i := 0; i < 64; i++ {
		if !r.Get(i) {
			t.Fatalf("bit %d lost across demotion", i)
		}
	}
	if !r.Get(8191) {
		t.Fatal("bit 8191 lost across demotion")
	}
	// Band check: the freshly demoted slice is nowhere near the promote
	// edge, so continued appends stick with the compressed encoding.
	r.AppendSet(8192)
	if r.Encoding() == EncDense {
		t.Fatal("demoted slice promoted straight back; hysteresis band broken")
	}
	if rr := r.MaybeCompress(); rr != r {
		t.Fatal("MaybeCompress re-encoded an already compressed slice")
	}
}

// TestOrIntoMatchesOrZX checks the Fold accumulation step per encoding.
func TestOrIntoMatchesOrZX(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		ref := clusteredVector(rng, 900, 5, 80)
		for _, enc := range allEncodings {
			s := encodeAs(t, ref, enc)
			dst := randomVector(rng, 1100, 0.2)
			want := dst.Clone()
			s.OrInto(dst)
			want.OrZX(s.Materialize())
			if !dst.Equal(want) {
				t.Fatalf("trial %d enc %v: OrInto differs from OrZX", trial, enc)
			}
		}
	}
}

// TestBlitIntoMatchesMaterialized checks the shard-merge primitive per
// encoding at aligned and unaligned offsets.
func TestBlitIntoMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, at := range []int{0, 64, 65, 1, 63, 200} {
		ref := clusteredVector(rng, 500, 4, 60)
		for _, enc := range allEncodings {
			s := encodeAs(t, ref, enc)
			total := at + ref.Len()
			got := make([]uint64, wordsFor(total))
			want := make([]uint64, wordsFor(total))
			s.BlitInto(got, at)
			blitWords(want, at, s.Materialize().Words())
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("at %d enc %v: word %d = %#x, want %#x", at, enc, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRecompressSelection pins the encoding-selection rule and the 2x
// build-time margin.
func TestRecompressSelection(t *testing.T) {
	n := 4096 // 64 words, comfortably above compressMinWords
	t.Run("rare bits pick sparse", func(t *testing.T) {
		v := New(n)
		for i := 0; i < 20; i++ {
			v.Set(i * 199)
		}
		s := DenseSliceOf(v).Recompress(n, true)
		if s.Encoding() != EncSparse {
			t.Fatalf("encoding %v, want sparse", s.Encoding())
		}
	})
	t.Run("clustered bits pick rle", func(t *testing.T) {
		v := New(n)
		for i := 1000; i < 3000; i++ {
			v.Set(i)
		}
		s := DenseSliceOf(v).Recompress(n, true)
		if s.Encoding() != EncRLE {
			t.Fatalf("encoding %v, want rle", s.Encoding())
		}
	})
	t.Run("dense bits stay dense", func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		s := DenseSliceOf(randomVector(rng, n, 0.5)).Recompress(n, true)
		if s.Encoding() != EncDense {
			t.Fatalf("encoding %v, want dense", s.Encoding())
		}
	})
	t.Run("inside the hysteresis band stays put", func(t *testing.T) {
		// One isolated bit every 20 positions: ~205 ones cost two bytes
		// each, so the sparse payload (~418 bytes) sits between dense/2
		// (256) and dense (512) — Recompress(true) keeps dense and an
		// existing sparse slice would not be rebuilt either.
		v := New(n)
		for i := 0; i < n; i += 20 {
			v.Set(i)
		}
		if s := DenseSliceOf(v).Recompress(n, true); s.Encoding() != EncDense {
			t.Fatalf("dense slice left the band: %v", s.Encoding())
		}
		pos := make([]uint32, 0, n/20)
		for i := 0; i < n; i += 20 {
			pos = append(pos, uint32(i))
		}
		sp, err := SliceFromPositions(pos, n)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Bytes() >= 8*int64(wordsFor(n)) {
			t.Skip("shape no longer inside the band; adjust the test")
		}
	})
	t.Run("tiny slices stay dense", func(t *testing.T) {
		v := New(64 * (compressMinWords - 1))
		v.Set(3)
		if s := DenseSliceOf(v).Recompress(v.Len(), true); s.Encoding() != EncDense {
			t.Fatalf("tiny slice compressed: %v", s.Encoding())
		}
	})
	t.Run("compress false always dense", func(t *testing.T) {
		s, err := SliceFromPositions([]uint32{1, 5}, n)
		if err != nil {
			t.Fatal(err)
		}
		d := s.Recompress(n, false)
		if d.Encoding() != EncDense || d.Ones() != 2 || !d.Get(1) || !d.Get(5) {
			t.Fatalf("decompress wrong: enc %v ones %d", d.Encoding(), d.Ones())
		}
	})
}

// TestRecompressRoundTrips materializes identically across every encoding
// transition.
func TestRecompressRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := clusteredVector(rng, 2000, 8, 90)
	for _, from := range allEncodings {
		s := encodeAs(t, ref, from)
		for _, compress := range []bool{true, false} {
			r := s.Recompress(s.Len(), compress)
			if r.Ones() != ref.Count() {
				t.Fatalf("from %v compress %v: ones %d, want %d", from, compress, r.Ones(), ref.Count())
			}
			if !r.Materialize().Equal(ref) {
				t.Fatalf("from %v compress %v: contents differ", from, compress)
			}
		}
	}
}

// TestSliceDecodeValidation rejects malformed persisted payloads.
func TestSliceDecodeValidation(t *testing.T) {
	if _, err := SliceFromPositions([]uint32{3, 3}, 10); err == nil {
		t.Error("duplicate positions accepted")
	}
	if _, err := SliceFromPositions([]uint32{5, 4}, 10); err == nil {
		t.Error("descending positions accepted")
	}
	if _, err := SliceFromPositions([]uint32{10}, 10); err == nil {
		t.Error("position beyond length accepted")
	}
	if _, err := SliceFromRuns([]uint32{0, 3, 1}, 100); err == nil {
		t.Error("odd rle payload accepted")
	}
	if _, err := SliceFromRuns([]uint32{4, 0}, 100); err == nil {
		t.Error("empty run accepted")
	}
	if _, err := SliceFromRuns([]uint32{0, 3, 3, 2}, 100); err == nil {
		t.Error("adjacent runs accepted (not maximal)")
	}
	if _, err := SliceFromRuns([]uint32{0, 3, 2, 2}, 100); err == nil {
		t.Error("overlapping runs accepted")
	}
	if _, err := SliceFromRuns([]uint32{90, 20}, 100); err == nil {
		t.Error("run beyond length accepted")
	}
	if _, err := SliceFromRuns([]uint32{0, 3, 10, 5}, 100); err != nil {
		t.Errorf("valid runs rejected: %v", err)
	}
}

// TestSliceGet cross-checks the per-encoding point reads, including the
// zero-extended region beyond Len.
func TestSliceGet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ref := clusteredVector(rng, 700, 5, 40)
	for _, enc := range allEncodings {
		s := encodeAs(t, ref, enc)
		for i := 0; i < ref.Len(); i++ {
			if s.Get(i) != ref.Get(i) {
				t.Fatalf("enc %v: Get(%d) = %v, want %v", enc, i, s.Get(i), ref.Get(i))
			}
		}
		if s.Get(ref.Len() + 100) {
			t.Fatalf("enc %v: bit beyond Len reads set", enc)
		}
	}
}

// TestCountRuns cross-checks the run counter across encodings.
func TestCountRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		ref := clusteredVector(rng, 1300, 6, 70)
		want := -1
		for _, enc := range allEncodings {
			got := encodeAs(t, ref, enc).countRuns()
			if want == -1 {
				want = got
			} else if got != want {
				t.Fatalf("trial %d enc %v: countRuns %d, want %d", trial, enc, got, want)
			}
		}
		// Independent reference: count 0->1 transitions bit by bit.
		runs, prev := 0, false
		for i := 0; i < ref.Len(); i++ {
			b := ref.Get(i)
			if b && !prev {
				runs++
			}
			prev = b
		}
		if runs != want {
			t.Fatalf("trial %d: countRuns %d, bitwise reference %d", trial, want, runs)
		}
	}
}

// BenchmarkAndCountIntoSparse measures the sparse-slice kernel against the
// materialize-then-AND baseline it replaces.
func BenchmarkAndCountIntoSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 16
	s := encodeAs(b, randomVector(rng, n, 0.001), EncSparse)
	dst := randomVector(rng, n, 0.3)
	scratch := dst.Clone()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scratch.CopyFrom(dst)
			s.AndCountInto(scratch)
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scratch.CopyFrom(dst)
			scratch.AndCountZX(s.Materialize())
		}
	})
}

// BenchmarkAndCountIntoRLE measures the RLE skip-AND against its
// materialized baseline.
func BenchmarkAndCountIntoRLE(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 1 << 16
	s := encodeAs(b, clusteredVector(rng, n, 8, 2000), EncRLE)
	dst := randomVector(rng, n, 0.3)
	scratch := dst.Clone()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scratch.CopyFrom(dst)
			s.AndCountInto(scratch)
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scratch.CopyFrom(dst)
			scratch.AndCountZX(s.Materialize())
		}
	})
}
