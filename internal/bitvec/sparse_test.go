package bitvec

import (
	"math/rand"
	"testing"
)

// checkSummary asserts the sparse-mode invariant: when a summary is live,
// its bits mirror exactly which backing words are nonzero, and nz counts
// them.
func checkSummary(t *testing.T, v *Vector) {
	t.Helper()
	if v.summary == nil {
		return
	}
	nz := 0
	for i, w := range v.words {
		got := v.summary[i>>wordShift]&(1<<uint(i&wordMask)) != 0
		if want := w != 0; got != want {
			t.Fatalf("summary bit %d = %v, word is %#x", i, got, w)
		}
		if w != 0 {
			nz++
		}
	}
	if v.nz != nz {
		t.Fatalf("nz = %d, want %d", v.nz, nz)
	}
}

// randomVector returns an n-bit vector with roughly density·n bits set.
func randomVector(rng *rand.Rand, n int, density float64) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

// The sparse kernel must agree with the dense kernel bit for bit and count
// for count, across densities from nearly-empty to full.
func TestAndCountSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4096)
		da := []float64{0.001, 0.01, 0.1, 0.5, 0.95}[rng.Intn(5)]
		db := []float64{0.001, 0.01, 0.1, 0.5, 0.95}[rng.Intn(5)]

		a := randomVector(rng, n, da)
		other := randomVector(rng, n, db)
		dense := a.Clone()
		sparse := a.Clone()
		sparse.Summarize()
		checkSummary(t, sparse)

		cd := dense.AndCount(other)
		cs := sparse.AndCount(other)
		if cd != cs {
			t.Fatalf("n=%d trial %d: dense count %d, sparse count %d", n, trial, cd, cs)
		}
		if !dense.Equal(sparse) {
			t.Fatalf("n=%d trial %d: dense and sparse results differ", n, trial)
		}
		checkSummary(t, sparse)
	}
}

// Chained ANDs — the mining access pattern, where the same residual is
// intersected with slice after slice — must keep the summary exact and the
// contents equal to the dense path at every step.
func TestAndCountSparseChained(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 2048
	dense := randomVector(rng, n, 0.9)
	sparse := dense.Clone()
	sparse.Summarize()
	for step := 0; step < 32; step++ {
		slice := randomVector(rng, n, 0.3)
		cd := dense.AndCount(slice)
		cs := sparse.AndCount(slice)
		if cd != cs || !dense.Equal(sparse) {
			t.Fatalf("step %d: counts %d/%d, equal=%v", step, cd, cs, dense.Equal(sparse))
		}
		checkSummary(t, sparse)
	}
	if !sparse.IsZero() && sparse.nz == 0 {
		t.Fatal("nz reached 0 with bits still set")
	}
}

// Set and Clear must maintain the summary through 0→1 and 1→0 word
// transitions, including re-setting set bits and re-clearing cleared ones.
func TestSetClearMaintainSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	v := randomVector(rng, 1024, 0.05)
	v.Summarize()
	for trial := 0; trial < 2000; trial++ {
		i := rng.Intn(1024)
		if rng.Intn(2) == 0 {
			v.Set(i)
		} else {
			v.Clear(i)
		}
		checkSummary(t, v)
	}
}

// CopyFrom and Clone must carry sparse mode with them, and copying from a
// dense vector must drop a stale summary.
func TestCopyFromPropagatesSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	sparse := randomVector(rng, 2048, 0.01)
	sparse.Summarize()

	var dst Vector
	dst.CopyFrom(sparse)
	if !dst.Summarized() {
		t.Fatal("CopyFrom from a summarized vector lost the summary")
	}
	checkSummary(t, &dst)

	c := sparse.Clone()
	if !c.Summarized() {
		t.Fatal("Clone lost the summary")
	}
	checkSummary(t, c)

	dense := randomVector(rng, 2048, 0.5)
	dst.CopyFrom(dense)
	if dst.Summarized() {
		t.Fatal("CopyFrom from a dense vector kept a stale summary")
	}
}

// The wholesale mutators must leave sparse mode rather than serve a stale
// summary.
func TestMutatorsDropSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	fresh := func() *Vector {
		v := randomVector(rng, 1024, 0.02)
		v.Summarize()
		return v
	}
	other := randomVector(rng, 1024, 0.5)
	cases := []struct {
		name string
		op   func(v *Vector)
	}{
		{"SetAll", func(v *Vector) { v.SetAll() }},
		{"Reset", func(v *Vector) { v.Reset() }},
		{"Or", func(v *Vector) { v.Or(other) }},
		{"Xor", func(v *Vector) { v.Xor(other) }},
		{"AndNot", func(v *Vector) { v.AndNot(other) }},
		{"And", func(v *Vector) { v.And(other) }},
		{"Grow", func(v *Vector) { v.Grow(2048) }},
		{"Append", func(v *Vector) { v.Append(true) }},
	}
	for _, c := range cases {
		v := fresh()
		c.op(v)
		if v.Summarized() {
			t.Errorf("%s left a stale summary", c.name)
		}
	}
}

// MaybeSummarize must respect the density threshold and the size floor.
func TestMaybeSummarize(t *testing.T) {
	sparse := New(4096)
	sparse.Set(7)
	sparse.MaybeSummarize(1)
	if !sparse.Summarized() {
		t.Error("sparse vector not promoted")
	}

	dense := New(4096)
	dense.SetAll()
	dense.MaybeSummarize(dense.Count())
	if dense.Summarized() {
		t.Error("dense vector promoted")
	}

	tiny := New(64) // 1 word, below summaryMinWords
	tiny.Set(1)
	tiny.MaybeSummarize(1)
	if tiny.Summarized() {
		t.Error("tiny vector promoted")
	}
}

// benchSparsePair builds an n-bit residual with k set bits plus a 30%-dense
// slice to AND it with — the deep-DFS shape the sparse kernel exists for.
func benchSparsePair(n, k int) (residual, slice *Vector) {
	rng := rand.New(rand.NewSource(47))
	residual = New(n)
	for i := 0; i < k; i++ {
		residual.Set(rng.Intn(n))
	}
	slice = randomVector(rng, n, 0.3)
	return residual, slice
}

// BenchmarkAndSliceSparse pins the sparse kernel against the dense sweep on
// a 64k-bit residual with 64 surviving bits (>99% zero words). The residual
// is restored via CopyFrom each iteration, as the miner does.
func BenchmarkAndSliceSparse(b *testing.B) {
	const n, k = 65536, 64
	residual, slice := benchSparsePair(n, k)

	b.Run("dense", func(b *testing.B) {
		var v Vector
		for i := 0; i < b.N; i++ {
			v.CopyFrom(residual)
			v.AndCount(slice)
		}
	})
	b.Run("summary", func(b *testing.B) {
		sr := residual.Clone()
		sr.Summarize()
		var v Vector
		for i := 0; i < b.N; i++ {
			v.CopyFrom(sr)
			v.AndCount(slice)
		}
	})
}
