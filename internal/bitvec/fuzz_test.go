package bitvec

import (
	"testing"
)

// FuzzSetWords drives deserialization with arbitrary word/length pairs.
func FuzzSetWords(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 64)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 3)
	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		words := make([]uint64, len(raw)/8)
		for i := range words {
			for b := 0; b < 8; b++ {
				words[i] |= uint64(raw[i*8+b]) << (8 * b)
			}
		}
		var v Vector
		if err := v.SetWords(words, n); err != nil {
			return
		}
		// Valid deserializations must satisfy the length/count invariants.
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if c := v.Count(); c > n {
			t.Fatalf("Count %d exceeds length %d (tail not trimmed)", c, n)
		}
		// Round trip through Words.
		var u Vector
		if err := u.SetWords(v.Words(), v.Len()); err != nil {
			t.Fatalf("round trip SetWords failed: %v", err)
		}
		if !u.Equal(&v) {
			t.Fatal("round trip not equal")
		}
	})
}

// FuzzGrowAppend interleaves growth operations from fuzzed scripts and
// checks the vector never loses or invents bits.
func FuzzGrowAppend(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0})
	f.Add([]byte{100, 2, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		var v Vector
		var ref []bool
		for _, op := range script {
			switch {
			case op < 128:
				bit := op%2 == 1
				v.Append(bit)
				ref = append(ref, bit)
			default:
				extra := int(op % 32)
				v.Grow(v.Len() + extra)
				for i := 0; i < extra; i++ {
					ref = append(ref, false)
				}
			}
		}
		if v.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", v.Len(), len(ref))
		}
		for i, want := range ref {
			if v.Get(i) != want {
				t.Fatalf("bit %d = %v, want %v", i, v.Get(i), want)
			}
		}
	})
}
