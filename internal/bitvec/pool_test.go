package bitvec

import (
	"sync"
	"testing"
)

func TestPoolGetPut(t *testing.T) {
	p := NewPool(130)
	if p.Len() != 130 {
		t.Fatalf("Len() = %d, want 130", p.Len())
	}
	v := p.Get()
	if v.Len() != 130 {
		t.Fatalf("Get().Len() = %d, want 130", v.Len())
	}
	v.SetAll()
	p.Put(v)
	// Contents of pooled vectors are unspecified; the caller must overwrite.
	w := p.Get()
	if w.Len() != 130 {
		t.Fatalf("recycled vector has length %d, want 130", w.Len())
	}
	p.Put(nil)     // dropped, no panic
	p.Put(New(64)) // wrong length: dropped
	if got := p.Get(); got.Len() != 130 {
		t.Fatalf("pool handed out wrong-length vector (%d bits)", got.Len())
	}
}

func TestPoolNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(-1) did not panic")
		}
	}()
	NewPool(-1)
}

// TestPoolConcurrent hammers Get/Put from several goroutines; -race proves
// the pool safe to share across mining workers.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool(512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := p.Get()
				v.Reset()
				v.Set((g*200 + i) % 512)
				if v.Count() != 1 {
					t.Errorf("scratch vector not private: count %d", v.Count())
					return
				}
				p.Put(v)
			}
		}(g)
	}
	wg.Wait()
}
