package bitvec

import (
	"fmt"
	"math/bits"
)

// Adaptive slice storage.
//
// A signature-file slice is a bit column over transactions, and the columns
// are wildly skewed: with k hash functions and m slices a few columns are
// hot while most hold a handful of bits — exactly the slices CountItemSet's
// rarest-first chain touches first. Storing every column as dense words
// makes index size (and the words an AND must sweep) linear in transactions
// regardless of content. A Slice therefore carries one of three physical
// encodings, chosen from its popcount:
//
//	EncDense  — []uint64 words, the classic layout; hot slices.
//	EncSparse — sorted set-bit positions as byte offsets within 256-bit
//	            chunks, behind a CSR-style chunk directory; rare slices.
//	EncRLE    — []uint32 (start, length) pairs of one-runs; clustered slices.
//
// The sparse layout serves two masters. Size: one byte per set bit (plus a
// ~3% directory) is what lets moderately rare slices — the bulk of a
// signature file under a skewed item distribution — compress three-fold or
// better. Speed: unlike a byte-packed delta stream it is randomly
// accessible, so the kernels walk the chunk directory and payload strictly
// in order — prefetch-friendly — and the summarized-accumulator kernel
// skips a chunk's payload outright when all four of its words are dead.
//
// The AND kernels operate directly on the compressed forms — a sparse slice
// ANDs into the accumulator by masking only the words its positions name, an
// RLE slice by walking its runs — so the rarest-first chain never
// decompresses a slice. The accumulator stays a dense Vector (optionally in
// summary mode, see sparse.go), and every kernel produces bit-identical
// results to materializing the slice and calling AndCountZX.
//
// Encoding selection is hysteretic so per-transaction appends cannot thrash:
// a compressed form is chosen — at build/Fold/Load time, or by an append
// entering the window via MaybeCompress — only when its payload is at most
// half the dense payload (compressWinDiv), while an appending slice is
// promoted back to dense only once its payload reaches the full dense
// size. Inside that band the current encoding sticks: a demoted slice must
// double its payload to promote and a promoted slice must double its
// length to demote, so each slice re-encodes O(log n) times over a
// database's lifetime.

// Encoding identifies the physical representation of a Slice.
type Encoding uint8

const (
	// EncDense stores the slice as dense 64-bit words.
	EncDense Encoding = iota
	// EncSparse stores sorted set-bit positions as chunked byte offsets.
	EncSparse
	// EncRLE stores maximal runs of consecutive set bits as (start, length)
	// pairs.
	EncRLE
)

func (e Encoding) String() string {
	switch e {
	case EncDense:
		return "dense"
	case EncSparse:
		return "sparse"
	case EncRLE:
		return "rle"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

const (
	// compressMinWords is the dense word count below which a slice is never
	// compressed: the encoding bookkeeping costs more than sweeping a
	// handful of words (mirrors summaryMinWords for the accumulator).
	compressMinWords = 8
	// compressWinDiv gates build-time selection: a compressed encoding is
	// chosen only when its payload is at most denseBytes/compressWinDiv.
	// Appends promote back to dense at payload >= denseBytes (1x), so the
	// band between 1/compressWinDiv and 1 is the hysteresis that keeps
	// Insert from thrashing encodings.
	compressWinDiv = 2
)

// Slice is one signature-file bit column under an adaptive encoding. The
// logical length n plays the same role as Vector.Len: bits at or beyond n
// read as zero (the zero-extension contract of the ZX kernels). Exactly one
// of dense/pos/runs is live, per enc.
type Slice struct {
	enc  Encoding
	n    int // logical length in bits
	ones int // popcount, maintained on every mutation
	// ones == 0 does not imply the backing store is empty (a dense slice
	// keeps its zero words); the converse always holds.
	dense *Vector // EncDense
	// EncSparse: pos8 holds each set position's low 8 bits, ascending
	// within its 256-bit chunk; chunkOff is the CSR directory — chunk c's
	// offsets live in pos8[chunkOff[c]:chunkOff[c+1]].
	pos8     []uint8
	chunkOff []int32
	last     int      // EncSparse: last set position, -1 while empty
	runs     []uint32 // EncRLE: (start, length) pairs, ascending, non-adjacent

	// cold, when non-nil, means the payload lives in page-granular cold
	// storage instead of the fields above (which are nil): enc names the
	// payload's format, and the AND kernels stream it page by page from
	// cold.src (see cold.go). Cold slices are immutable; mutation paths
	// Thaw first.
	cold *coldPayload
}

const (
	chunkShift = 8
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// numChunks returns how many 256-bit chunks cover an n-bit slice.
func numChunks(n int) int { return (n + chunkMask) >> chunkShift }

// appendPos appends one set position to a sparse payload. Positions must
// arrive ascending; the directory grows with zero-size chunks as needed.
func (s *Slice) appendPos(p int) {
	c := p >> chunkShift
	for len(s.chunkOff) < c+2 {
		s.chunkOff = append(s.chunkOff, int32(len(s.pos8)))
	}
	s.pos8 = append(s.pos8, uint8(p&chunkMask))
	s.chunkOff[c+1] = int32(len(s.pos8))
}

// forEachPos calls fn with every set position of a sparse payload in
// ascending order.
func (s *Slice) forEachPos(fn func(p int)) {
	for c := 0; c+1 < len(s.chunkOff); c++ {
		base := c << chunkShift
		for _, lo := range s.pos8[s.chunkOff[c]:s.chunkOff[c+1]] {
			fn(base + int(lo))
		}
	}
}

// NewDenseSlice returns a zeroed dense slice of n bits.
func NewDenseSlice(n int) *Slice {
	return &Slice{enc: EncDense, dense: New(n), n: n}
}

// NewSparseSlice returns an empty slice in sparse encoding, the natural
// starting point for a compressed index built by appends.
func NewSparseSlice() *Slice {
	return &Slice{enc: EncSparse, last: -1}
}

// DenseSliceOf wraps an existing vector as a dense slice. The vector is
// aliased, not copied; the caller hands over ownership.
func DenseSliceOf(v *Vector) *Slice {
	return &Slice{enc: EncDense, dense: v, n: v.Len(), ones: v.Count()}
}

// DenseSliceWithOnes is DenseSliceOf with a caller-supplied popcount, for
// callers that already know it — a merge summing per-part counts, a load
// reading a persisted count — so wrapping skips the recount. A wrong count
// never corrupts results (the AND chain is order-insensitive); it only
// degrades the rarest-first ordering, so trusted-but-unverified sources
// like a persisted header are acceptable.
func DenseSliceWithOnes(v *Vector, ones int) *Slice {
	return &Slice{enc: EncDense, dense: v, n: v.Len(), ones: ones}
}

// SliceFromWords builds a dense slice from serialized words (decode path).
func SliceFromWords(words []uint64, n int) (*Slice, error) {
	v := &Vector{}
	if err := v.SetWords(words, n); err != nil {
		return nil, err
	}
	return DenseSliceOf(v), nil
}

// SliceFromPositions builds a sparse slice from serialized set-bit
// positions (decode path). Positions must be strictly ascending and below n.
func SliceFromPositions(pos []uint32, n int) (*Slice, error) {
	s := &Slice{enc: EncSparse, n: n, ones: len(pos), last: -1}
	s.pos8 = make([]uint8, 0, len(pos))
	for i, p := range pos {
		if i > 0 && p <= pos[i-1] {
			return nil, fmt.Errorf("bitvec: sparse positions not strictly ascending at %d", i)
		}
		if int(p) >= n {
			return nil, fmt.Errorf("bitvec: sparse position %d beyond length %d", p, n)
		}
		s.appendPos(int(p))
		s.last = int(p)
	}
	return s, nil
}

// SliceFromRuns builds an RLE slice from serialized (start, length) pairs
// (decode path). Runs must be maximal: nonempty, ascending, separated by at
// least one zero bit, and contained in [0, n).
func SliceFromRuns(runs []uint32, n int) (*Slice, error) {
	if len(runs)%2 != 0 {
		return nil, fmt.Errorf("bitvec: odd rle payload length %d", len(runs))
	}
	ones, prevEnd := 0, -1
	for r := 0; r < len(runs); r += 2 {
		start, length := int(runs[r]), int(runs[r+1])
		if length <= 0 {
			return nil, fmt.Errorf("bitvec: empty rle run at pair %d", r/2)
		}
		if start <= prevEnd {
			return nil, fmt.Errorf("bitvec: rle runs not ascending and separated at pair %d", r/2)
		}
		end := start + length
		if end > n || end < start {
			return nil, fmt.Errorf("bitvec: rle run [%d,%d) beyond length %d", start, end, n)
		}
		ones += length
		prevEnd = end
	}
	return &Slice{enc: EncRLE, n: n, ones: ones, runs: runs}, nil
}

// Encoding reports the slice's current physical representation.
func (s *Slice) Encoding() Encoding { return s.enc }

// Len returns the logical length in bits.
func (s *Slice) Len() int { return s.n }

// Ones returns the popcount. O(1): maintained on every mutation, which is
// what lets Load skip recounting and OrderRarestFirst stay allocation-free.
func (s *Slice) Ones() int { return s.ones }

// Bytes returns the payload size of the current encoding in bytes — the
// resident footprint, as opposed to the 8*wordsFor(n) a dense layout needs.
func (s *Slice) Bytes() int64 {
	if s.cold != nil {
		return 0 // payload is paged, not resident; see ColdPayloadBytes
	}
	switch s.enc {
	case EncDense:
		return 8 * int64(len(s.dense.words))
	case EncSparse:
		return int64(len(s.pos8)) + 4*int64(len(s.chunkOff))
	default:
		return 4 * int64(len(s.runs))
	}
}

// Get reports whether bit i is set, reading bits at or beyond Len as zero
// (the zero-extension contract).
func (s *Slice) Get(i int) bool {
	if i < 0 {
		panic(fmt.Sprintf("bitvec: negative index %d", i))
	}
	if i >= s.n {
		return false
	}
	if s.cold != nil {
		// Correctness path only: O(payload). Query kernels never call Get.
		return s.Thaw().Get(i)
	}
	switch s.enc {
	case EncDense:
		return s.dense.Get(i)
	case EncSparse:
		c := i >> chunkShift
		if c+1 >= len(s.chunkOff) {
			return false
		}
		j := lowerBound8(s.pos8, int(s.chunkOff[c]), int(s.chunkOff[c+1]), uint8(i&chunkMask))
		return j < int(s.chunkOff[c+1]) && int(s.pos8[j]) == i&chunkMask
	default:
		for r := 0; r < len(s.runs); r += 2 {
			start := int(s.runs[r])
			if i < start {
				return false
			}
			if i < start+int(s.runs[r+1]) {
				return true
			}
		}
		return false
	}
}

// Clone returns a deep copy preserving the encoding. The copy-on-write
// machinery in sigfile clones a shared slice before its first mutation.
func (s *Slice) Clone() *Slice {
	if s.cold != nil {
		// The cold payload is immutable and shared; a header copy is a
		// full clone. Mutators thaw (producing private resident storage)
		// before their first write.
		c := *s
		return &c
	}
	c := &Slice{enc: s.enc, n: s.n, ones: s.ones}
	switch s.enc {
	case EncDense:
		c.dense = s.dense.Clone()
	case EncSparse:
		c.pos8 = append([]uint8(nil), s.pos8...)
		c.chunkOff = append([]int32(nil), s.chunkOff...)
		c.last = s.last
	default:
		c.runs = append([]uint32(nil), s.runs...)
	}
	return c
}

// AppendSet sets bit i and reports whether it was newly set. Appends must
// arrive in non-decreasing order of i for compressed encodings — the BBS
// insert path satisfies this by construction, as i is the transaction
// ordinal. A compressed slice whose payload reaches the dense size promotes
// itself to dense in place (the upper edge of the hysteresis band).
func (s *Slice) AppendSet(i int) bool {
	if i < 0 {
		panic(fmt.Sprintf("bitvec: negative index %d", i))
	}
	if s.cold != nil {
		panic("bitvec: append to a cold slice; Thaw it first")
	}
	switch s.enc {
	case EncDense:
		if i >= s.n {
			s.dense.Grow(i + 1)
			s.n = i + 1
		}
		if s.dense.Get(i) {
			return false
		}
		s.dense.Set(i)
		s.ones++
		return true
	case EncSparse:
		if i == s.last {
			return false
		}
		if i < s.last {
			panic(fmt.Sprintf("bitvec: out-of-order append %d after %d on sparse slice", i, s.last))
		}
		s.appendPos(i)
		s.last = i
		s.ones++
		if i >= s.n {
			s.n = i + 1
		}
		s.maybePromote()
		return true
	default: // EncRLE
		if len(s.runs) > 0 {
			start := int(s.runs[len(s.runs)-2])
			end := start + int(s.runs[len(s.runs)-1])
			if i < end {
				if i >= start {
					return false
				}
				panic(fmt.Sprintf("bitvec: out-of-order append %d before run end %d on rle slice", i, end))
			}
			if i == end {
				s.runs[len(s.runs)-1]++
				s.ones++
				if i >= s.n {
					s.n = i + 1
				}
				s.maybePromote()
				return true
			}
		}
		s.runs = append(s.runs, uint32(i), 1)
		s.ones++
		if i >= s.n {
			s.n = i + 1
		}
		s.maybePromote()
		return true
	}
}

// maybePromote flips a compressed slice to dense once its payload is no
// smaller than the dense layout — the upper edge of the hysteresis band.
// Only Recompress (directly or via MaybeCompress) moves the other way.
func (s *Slice) maybePromote() {
	if s.enc == EncDense || s.Bytes() < 8*int64(wordsFor(s.n)) {
		return
	}
	s.dense = s.Materialize()
	s.enc = EncDense
	s.pos8, s.chunkOff, s.runs = nil, nil, nil
}

// MaybeCompress re-encodes an appending dense slice downward when its
// sparse form would fit the build-time selection window — the lower edge
// of the hysteresis band whose upper edge is maybePromote. The window test
// is O(1) arithmetic on the popcount, cheap enough for the Insert path to
// run per set bit; the rebuild only fires when the window is actually
// entered, which appending ones alone can never cause (every new one grows
// the sparse payload) — only the slice's length outgrowing its density
// can. With demotion at half the dense payload and promotion at the full
// dense payload, a demoted slice must double its payload to promote back
// and a promoted slice must double its length to demote again, so appends
// cannot thrash. Returns the re-encoded slice or the receiver unchanged.
func (s *Slice) MaybeCompress() *Slice {
	if s.enc != EncDense || s.cold != nil {
		return s
	}
	words := wordsFor(s.n)
	if words < compressMinWords {
		return s
	}
	sparse := int64(s.ones) + 4*int64(numChunks(s.n)+1)
	if sparse > 8*int64(words)/compressWinDiv {
		return s
	}
	return s.Recompress(s.n, true)
}

// Materialize decodes the slice into a fresh dense Vector of length Len.
// Allocates; query paths must stay on the direct kernels instead.
func (s *Slice) Materialize() *Vector {
	if s.cold != nil {
		return s.Thaw().Materialize()
	}
	v := New(s.n)
	switch s.enc {
	case EncDense:
		copy(v.words, s.dense.words)
	case EncSparse:
		s.forEachPos(func(p int) {
			v.words[p>>wordShift] |= 1 << uint(p&wordMask)
		})
	default:
		for r := 0; r < len(s.runs); r += 2 {
			setWordRange(v.words, int(s.runs[r]), int(s.runs[r])+int(s.runs[r+1]))
		}
	}
	return v
}

// DenseVector returns the backing vector of a dense slice, aliased, or nil
// for compressed encodings. Serialization and tests use it; mutating the
// result corrupts the slice's popcount.
func (s *Slice) DenseVector() *Vector {
	if s.enc != EncDense || s.cold != nil {
		return nil // cold dense payloads have no resident vector to alias
	}
	return s.dense
}

// Positions returns the decoded set-bit positions of a sparse slice as a
// fresh ascending []uint32; nil unless EncSparse. Serialization and tests
// use it — the resident form stays the chunked u8 layout.
func (s *Slice) Positions() []uint32 {
	if s.enc != EncSparse {
		return nil
	}
	if s.cold != nil {
		return s.Thaw().Positions()
	}
	pos := make([]uint32, 0, s.ones)
	s.forEachPos(func(p int) { pos = append(pos, uint32(p)) })
	return pos
}

// Runs returns the RLE payload, aliased; nil unless EncRLE.
func (s *Slice) Runs() []uint32 {
	if s.enc != EncRLE {
		return nil
	}
	if s.cold != nil {
		return s.Thaw().Runs()
	}
	return s.runs
}

// Recompress re-picks the encoding from current contents, assuming the
// slice logically spans n bits (the index length; a lazily-grown slice may
// back fewer, but its dense cost is what a full-length layout would pay).
// With compress false the result is always dense (the classic layout).
// With compress true the smallest of the three payloads wins, but a
// compressed form is chosen only when it is at most half the dense payload
// — the lower edge of the hysteresis band — and tiny slices stay dense
// (compressMinWords). Returns s unchanged when the encoding already matches
// the choice; otherwise a newly built slice of length n, leaving s intact
// (safe against snapshots aliasing it).
func (s *Slice) Recompress(n int, compress bool) *Slice {
	if n < s.n {
		panic(fmt.Sprintf("bitvec: recompress length %d below slice length %d", n, s.n))
	}
	if s.cold != nil {
		// Re-encoding needs the payload resident; the result is resident
		// too — a policy flip un-tiers the slice until the next Tier pass.
		s = s.Thaw()
	}
	target := s.chooseEncoding(n, compress)
	if target == s.enc {
		return s
	}
	switch target {
	case EncDense:
		v := s.Materialize()
		v.Grow(n)
		return DenseSliceWithOnes(v, s.ones)
	case EncSparse:
		t := &Slice{enc: EncSparse, n: n, ones: s.ones, last: -1}
		t.pos8 = make([]uint8, 0, s.ones)
		s.forEachRange(func(start, end int) {
			for i := start; i < end; i++ {
				t.appendPos(i)
			}
			t.last = end - 1
		})
		return t
	default:
		runs := make([]uint32, 0, 2*s.countRuns())
		s.forEachRange(func(start, end int) {
			runs = append(runs, uint32(start), uint32(end-start))
		})
		return &Slice{enc: EncRLE, n: n, ones: s.ones, runs: runs}
	}
}

// chooseEncoding applies the build-time selection rule at logical length n.
func (s *Slice) chooseEncoding(n int, compress bool) Encoding {
	if !compress {
		return EncDense
	}
	words := wordsFor(n)
	if words < compressMinWords {
		return EncDense
	}
	denseBytes := 8 * int64(words)
	sparseBytes := int64(s.ones) + 4*int64(numChunks(n)+1)
	rleBytes := 8 * int64(s.countRuns())
	limit := denseBytes / compressWinDiv
	best, bestBytes := EncDense, denseBytes
	// RLE first so an equally small sparse form wins the tie below: the
	// position-list kernel is the simpler of the two.
	if rleBytes <= limit && rleBytes < bestBytes {
		best, bestBytes = EncRLE, rleBytes
	}
	if sparseBytes <= limit && sparseBytes <= bestBytes {
		best = EncSparse
	}
	return best
}

// countRuns returns the number of maximal runs of consecutive set bits.
func (s *Slice) countRuns() int {
	switch s.enc {
	case EncRLE:
		return len(s.runs) / 2
	case EncSparse:
		runs, prev := 0, -2
		s.forEachPos(func(p int) {
			if p != prev+1 {
				runs++
			}
			prev = p
		})
		return runs
	default:
		runs := 0
		prev := false
		for _, w := range s.dense.words {
			// A run starts at every 01 transition, reading the vector as a
			// bit stream; `prev` carries the last bit across word borders.
			starts := w &^ (w<<1 | boolBit(prev))
			runs += bits.OnesCount64(starts)
			prev = w>>63 != 0
		}
		return runs
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// forEachRange calls fn with every maximal run [start, end) of set bits.
func (s *Slice) forEachRange(fn func(start, end int)) {
	switch s.enc {
	case EncRLE:
		for r := 0; r < len(s.runs); r += 2 {
			fn(int(s.runs[r]), int(s.runs[r])+int(s.runs[r+1]))
		}
	case EncSparse:
		start, prev := -1, -2
		s.forEachPos(func(p int) {
			if p != prev+1 {
				if start >= 0 {
					fn(start, prev+1)
				}
				start = p
			}
			prev = p
		})
		if start >= 0 {
			fn(start, prev+1)
		}
	default:
		start := -1
		for i := 0; i < s.n; i++ {
			if s.dense.Get(i) {
				if start < 0 {
					start = i
				}
			} else if start >= 0 {
				fn(start, i)
				start = -1
			}
		}
		if start >= 0 {
			fn(start, s.n)
		}
	}
}

// AndCountInto replaces dst with dst AND s (zero-extended) and returns the
// popcount of the result, dispatching to the kernel for s's encoding and
// dst's mode. This is the compressed-slice counterpart of AndCountZX and
// the inner step of CountItemSet's rarest-first chain: the slice is never
// materialized, and a summarized accumulator keeps its summary maintained.
//
//lint:hotpath
func (s *Slice) AndCountInto(dst *Vector) int {
	// Kept to a short predicted check so it inlines into AndSlice: the
	// resident dense case — every slice of an uncompressed index — must
	// cost what the classic layout paid, one predicted branch (the cold
	// test folds into it: a resident dense slice always has cold == nil)
	// over a direct AndCountZX. Everything else — resident compressed and
	// all cold payloads — takes the out-of-line slow path.
	if s.enc == EncDense && s.cold == nil {
		return dst.AndCountZX(s.dense)
	}
	return s.andCountIntoSlow(dst)
}

// andCountIntoCompressed dispatches the compressed-encoding kernels on dst's
// mode. Split from AndCountInto to keep the dense fast path inlinable.
//
//lint:hotpath
func (s *Slice) andCountIntoCompressed(dst *Vector) int {
	switch s.enc {
	case EncSparse:
		if s.n > dst.n {
			panic(fmt.Sprintf("bitvec: zero-extended operand longer than destination: %d vs %d", s.n, dst.n))
		}
		if dst.summary != nil {
			return dst.andCountPositionsSparse(s.pos8, s.chunkOff)
		}
		return dst.andCountPositionsDense(s.pos8, s.chunkOff)
	default:
		if s.n > dst.n {
			panic(fmt.Sprintf("bitvec: zero-extended operand longer than destination: %d vs %d", s.n, dst.n))
		}
		if dst.summary != nil {
			return dst.andCountRunsSparse(s.runs)
		}
		return dst.andCountRunsDense(s.runs)
	}
}

// OrInto ORs the slice into dst (zero-extended), the Fold accumulation
// step. dst leaves sparse mode like the other wholesale mutators.
func (s *Slice) OrInto(dst *Vector) {
	if s.n > dst.n {
		panic(fmt.Sprintf("bitvec: zero-extended operand longer than destination: %d vs %d", s.n, dst.n))
	}
	if s.cold != nil {
		s.Thaw().OrInto(dst) // fold path, off the query kernels
		return
	}
	switch s.enc {
	case EncDense:
		dst.OrZX(s.dense)
	case EncSparse:
		dst.dropSummary()
		s.forEachPos(func(p int) {
			dst.words[p>>wordShift] |= 1 << uint(p&wordMask)
		})
	default:
		dst.dropSummary()
		for r := 0; r < len(s.runs); r += 2 {
			setWordRange(dst.words, int(s.runs[r]), int(s.runs[r])+int(s.runs[r+1]))
		}
	}
}

// BlitInto ORs the slice's bits into dst starting at bit offset `at` — the
// shard-merge primitive, concatenating per-shard columns into one. dst must
// have room for at+Len bits.
func (s *Slice) BlitInto(dst []uint64, at int) {
	if s.cold != nil {
		s.Thaw().BlitInto(dst, at) // merge path, off the query kernels
		return
	}
	switch s.enc {
	case EncDense:
		blitWords(dst, at, s.dense.words)
	case EncSparse:
		s.forEachPos(func(p int) {
			i := at + p
			dst[i>>wordShift] |= 1 << uint(i&wordMask)
		})
	default:
		for r := 0; r < len(s.runs); r += 2 {
			setWordRange(dst, at+int(s.runs[r]), at+int(s.runs[r])+int(s.runs[r+1]))
		}
	}
}

// blitWords ORs src into dst with a bit offset of `at`: dst[at+i] |= src[i]
// read bitwise. Offsets are word-aligned only when at%64 == 0; otherwise
// every source word straddles two destination words.
func blitWords(dst []uint64, at int, src []uint64) {
	wi, shift := at>>wordShift, uint(at&wordMask)
	if shift == 0 {
		for i, w := range src {
			dst[wi+i] |= w
		}
		return
	}
	for i, w := range src {
		dst[wi+i] |= w << shift
		if hi := w >> (wordBits - shift); hi != 0 {
			dst[wi+i+1] |= hi
		}
	}
}

// setWordRange ORs ones over the bit range [start, end) of dst.
func setWordRange(dst []uint64, start, end int) {
	if start >= end {
		return
	}
	fw, lw := start>>wordShift, (end-1)>>wordShift
	if fw == lw {
		dst[fw] |= onesRange(start&wordMask, (end-1)&wordMask+1)
		return
	}
	dst[fw] |= ^uint64(0) << uint(start&wordMask)
	for wi := fw + 1; wi < lw; wi++ {
		dst[wi] = ^uint64(0)
	}
	dst[lw] |= onesRange(0, (end-1)&wordMask+1)
}

// onesRange returns a word with bits [a, b) set, 0 <= a < b <= 64.
func onesRange(a, b int) uint64 {
	return (^uint64(0) >> uint(wordBits-(b-a))) << uint(a)
}

// andCountPositionsDense is the sparse-slice kernel against a dense
// accumulator: chunk by chunk, gather the entries into a four-word mask held
// in registers (a chunk is 256 bits), then AND it through the accumulator.
// Entry gathering is branch-free with no serial dependency, so the byte
// stream issues at full width; words past the slice's chunks are zeroed.
//
//lint:hotpath
func (v *Vector) andCountPositionsDense(pos8 []uint8, chunkOff []int32) int {
	vw := v.words
	cnt := 0
	wi := 0
	for c := 0; c+1 < len(chunkOff); c++ {
		var m [4]uint64
		for _, e := range pos8[chunkOff[c]:chunkOff[c+1]] {
			m[e>>6] |= 1 << uint(e&wordMask)
		}
		if wi+4 <= len(vw) {
			w0 := vw[wi] & m[0]
			w1 := vw[wi+1] & m[1]
			w2 := vw[wi+2] & m[2]
			w3 := vw[wi+3] & m[3]
			vw[wi], vw[wi+1], vw[wi+2], vw[wi+3] = w0, w1, w2, w3
			cnt += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
				bits.OnesCount64(w2) + bits.OnesCount64(w3)
			wi += 4
		} else {
			for k := 0; k < 4 && wi < len(vw); k, wi = k+1, wi+1 {
				w := vw[wi] & m[k]
				vw[wi] = w
				cnt += bits.OnesCount64(w)
			}
		}
	}
	for ; wi < len(vw); wi++ {
		vw[wi] = 0
	}
	return cnt
}

// andCountPositionsSparse is the sparse×sparse kernel: stream the slice's
// chunks in order, but consult the accumulator's summary first — four
// consecutive words share one summary nibble — and skip a chunk's payload
// entirely when all four are already dead. Both arrays are read strictly
// sequentially, so the walk prefetches like the dense kernel instead of
// bouncing between directory and payload, while a nearly-dead accumulator
// still skips most chunk payloads. Summary bits retire as words die.
//
//lint:hotpath
func (v *Vector) andCountPositionsSparse(pos8 []uint8, chunkOff []int32) int {
	cnt := 0
	nchunks := len(chunkOff) - 1
	if nchunks < 0 {
		nchunks = 0 // empty payload: fall through to the zero-extension tail
	}
	for c := 0; c < nchunks; c++ {
		wbase := c << (chunkShift - wordShift) // 4 words per 256-bit chunk
		// 4 divides 64, so the nibble never straddles summary words.
		sb := (v.summary[wbase>>wordShift] >> uint(wbase&wordMask)) & 0xf
		if sb == 0 {
			continue
		}
		var m [4]uint64
		for _, e := range pos8[chunkOff[c]:chunkOff[c+1]] {
			m[e>>6] |= 1 << uint(e&wordMask)
		}
		top := 4
		if rest := len(v.words) - wbase; rest < 4 {
			top = rest // last chunk of a short accumulator
		}
		for k := 0; k < top; k++ {
			if sb&(1<<uint(k)) == 0 {
				continue
			}
			wi := wbase + k
			w := v.words[wi] & m[k]
			v.words[wi] = w
			if w == 0 {
				v.summary[wi>>wordShift] &^= 1 << uint(wi&wordMask)
				v.nz--
			} else {
				cnt += bits.OnesCount64(w)
			}
		}
	}
	// Zero-extension tail: accumulator words past the slice's last chunk.
	for wi := nchunks << (chunkShift - wordShift); wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			v.words[wi] = 0
			v.summary[wi>>wordShift] &^= 1 << uint(wi&wordMask)
			v.nz--
		}
	}
	return cnt
}

// andCountRunsDense is the RLE kernel against a dense accumulator: a word
// cursor and a run cursor advance together; words fully inside a run keep
// their bits (popcount, no store), words outside every run are zeroed, and
// border words get a mask assembled from the runs touching them.
//
//lint:hotpath
func (v *Vector) andCountRunsDense(runs []uint32) int {
	vw := v.words
	c := 0
	r := 0
	for wi := 0; wi < len(vw); wi++ {
		lo := wi << wordShift
		hi := lo + wordBits
		for r < len(runs) && int(runs[r])+int(runs[r+1]) <= lo {
			r += 2
		}
		if r >= len(runs) || int(runs[r]) >= hi {
			vw[wi] = 0
			continue
		}
		if int(runs[r]) <= lo && int(runs[r])+int(runs[r+1]) >= hi {
			// Interior of a long run: mask is all ones, the word survives
			// untouched.
			c += bits.OnesCount64(vw[wi])
			continue
		}
		w := vw[wi] & runsWordMask(runs, r, lo, hi)
		vw[wi] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// andCountRunsSparse is the RLE skip-AND against a summarized accumulator:
// only the accumulator's nonzero words are visited, each masked by the runs
// covering it; the run cursor advances monotonically.
//
//lint:hotpath
func (v *Vector) andCountRunsSparse(runs []uint32) int {
	c := 0
	r := 0
	for si, sw := range v.summary {
		if sw == 0 {
			continue
		}
		base := si << wordShift
		for sw != 0 {
			t := bits.TrailingZeros64(sw)
			sw &= sw - 1
			wi := base + t
			lo := wi << wordShift
			hi := lo + wordBits
			for r < len(runs) && int(runs[r])+int(runs[r+1]) <= lo {
				r += 2
			}
			var w uint64
			if r < len(runs) && int(runs[r]) < hi {
				w = v.words[wi] & runsWordMask(runs, r, lo, hi)
			}
			v.words[wi] = w
			if w == 0 {
				v.summary[si] &^= 1 << uint(t)
				v.nz--
			} else {
				c += bits.OnesCount64(w)
			}
		}
	}
	return c
}

// runsWordMask assembles the coverage mask of word [lo, hi) from the runs
// at or after pair index r; runs[r] is the first run ending after lo.
//
//lint:hotpath
func runsWordMask(runs []uint32, r, lo, hi int) uint64 {
	var mask uint64
	for ; r < len(runs) && int(runs[r]) < hi; r += 2 {
		a, b := int(runs[r]), int(runs[r])+int(runs[r+1])
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		mask |= onesRange(a-lo, b-lo)
	}
	return mask
}

// lowerBound8 returns the first index in a[i:j] whose value is >= x
// (j when none is), the binary search both sparse kernels lean on.
//
//lint:hotpath
func lowerBound8(a []uint8, i, j int, x uint8) int {
	for i < j {
		h := int(uint(i+j) >> 1)
		if a[h] < x {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}
