package bitvec

import (
	"math/rand"
	"testing"
)

// fig6-shaped operands: n = 10000 transactions, slices with ~250 ones
// (2.5% density), accumulators either dense (~250 ones) or summarized
// residuals (~30 surviving words).
func benchSlice(b *testing.B, enc Encoding, ones int) *Slice {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	pos := make([]uint32, 0, ones)
	for _, p := range randPositions(rng, 10000, ones) {
		pos = append(pos, uint32(p))
	}
	s, err := SliceFromPositions(pos, 10000)
	if err != nil {
		b.Fatal(err)
	}
	return s.Recompress(10000, enc == EncSparse || enc == EncRLE)
}

func randPositions(rng *rand.Rand, n, ones int) []int {
	seen := make(map[int]bool, ones)
	for len(seen) < ones {
		seen[rng.Intn(n)] = true
	}
	pos := make([]int, 0, ones)
	for p := range seen {
		pos = append(pos, p)
	}
	sortInts(pos)
	return pos
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func benchAcc(summarized bool, ones int) *Vector {
	rng := rand.New(rand.NewSource(11))
	v := New(10000)
	for _, p := range randPositions(rng, 10000, ones) {
		v.Set(p)
	}
	if summarized {
		v.Summarize()
	}
	return v
}

func benchKernel(b *testing.B, s *Slice, summarized bool, accOnes int) {
	b.Helper()
	acc := benchAcc(summarized, accOnes)
	saved := acc.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AndCountInto(acc)
		acc.CopyFrom(saved)
	}
}

func BenchmarkAndDenseSliceDenseAcc(b *testing.B) {
	benchKernel(b, benchSlice(b, EncDense, 250), false, 250)
}
func BenchmarkAndDenseSliceSparseAcc(b *testing.B) {
	benchKernel(b, benchSlice(b, EncDense, 250), true, 30)
}
func BenchmarkAndSparseSliceDenseAcc(b *testing.B) {
	benchKernel(b, benchSlice(b, EncSparse, 250), false, 250)
}
func BenchmarkAndSparseSliceSparseAcc(b *testing.B) {
	benchKernel(b, benchSlice(b, EncSparse, 250), true, 30)
}
