package bitvec

import "math/bits"

// Sparsity-aware AND kernels.
//
// Deep in the mining enumeration a residual vector has est ≈ τ set bits out
// of n — the overwhelming majority of its backing words are zero, yet a
// word-granular AND sweeps all of them. A Vector therefore optionally
// carries a *summary*: one bit per backing word, set iff that word is
// nonzero. An AND against a summarized vector walks only the nonzero words
// (a zero word stays zero under AND, so skipped words need no work at all)
// and clears summary bits as words die, so the walk keeps shrinking as the
// residual sharpens toward τ.
//
// The summary degrades gracefully: dense vectors never build one. AndCount
// runs a 4-way unrolled dense loop on unsummarized vectors; a caller that
// knows a vector will be AND-ed again (the miner, before descending into a
// residual's subtree) promotes it with MaybeSummarize, which builds the
// summary only when the popcount shows at least three quarters of the words
// must be zero. From then on the summary is maintained incrementally by
// AndCount, Set, Clear, CopyFrom, and Clone, and dropped by the mutators
// that can repopulate words wholesale (SetAll, Or, Grow, SetWords, ...).
// Sparse mode never changes results — only which words are visited.

const (
	// summaryMinWords is the backing-word count below which a summary is
	// never built: the bookkeeping costs more than sweeping a handful of
	// words.
	summaryMinWords = 8
	// summaryDensityDiv promotes a vector to sparse mode when its popcount
	// is at most len(words)/summaryDensityDiv — with 64-bit words, a
	// popcount of words/4 guarantees ≥ 75% of the words are zero.
	summaryDensityDiv = 4
)

// Summarized reports whether the vector is in sparse mode (carrying a
// word-level summary).
func (v *Vector) Summarized() bool { return v.summary != nil }

// WordStats reports which kernel the next AndCount against v would run and
// how many backing words it would visit: the nonzero-word count for the
// sparse walk, or all words for the dense sweep. Telemetry only — an O(1)
// read of maintained state, never a scan.
func (v *Vector) WordStats() (words int, sparse bool) {
	if v.summary != nil {
		return v.nz, true
	}
	return len(v.words), false
}

// Summarize force-builds the word-level summary regardless of density, so
// tests and benchmarks can pin the sparse kernels directly. Production code
// wants MaybeSummarize, which applies the density threshold.
func (v *Vector) Summarize() {
	v.buildSummary()
}

// MaybeSummarize promotes the vector to sparse mode when count — its known
// popcount, which callers on the AND path already have — proves it sparse
// enough to profit (count ≤ words/4 guarantees ≥ 75% of the words are
// zero). Call it on a vector that will be AND-ed again, such as a residual
// whose subtree is about to be mined; already-summarized or small vectors
// are left as they are.
func (v *Vector) MaybeSummarize(count int) {
	if v.summary != nil || len(v.words) < summaryMinWords || count > len(v.words)/summaryDensityDiv {
		return
	}
	v.buildSummary()
}

// dropSummary leaves sparse mode; the next AndCount may rebuild it.
func (v *Vector) dropSummary() {
	v.summary = nil
	v.nz = 0
}

// buildSummary scans the backing words once and records which are nonzero.
func (v *Vector) buildSummary() {
	need := (len(v.words) + wordMask) >> wordShift
	if cap(v.summary) < need {
		v.summary = make([]uint64, need)
	} else {
		v.summary = v.summary[:need]
		for i := range v.summary {
			v.summary[i] = 0
		}
	}
	nz := 0
	for i, w := range v.words {
		if w != 0 {
			v.summary[i>>wordShift] |= 1 << uint(i&wordMask)
			nz++
		}
	}
	v.nz = nz
}

// copySummaryFrom mirrors other's sparse mode onto v.
func (v *Vector) copySummaryFrom(other *Vector) {
	if other.summary == nil {
		v.dropSummary()
		return
	}
	if cap(v.summary) < len(other.summary) {
		v.summary = make([]uint64, len(other.summary))
	}
	v.summary = v.summary[:len(other.summary)]
	copy(v.summary, other.summary)
	v.nz = other.nz
}

// andCountDense is the dense AND+popcount kernel: 4-way unrolled so the
// popcounts pipeline instead of serializing on one accumulator chain.
func (v *Vector) andCountDense(other *Vector) int {
	vw, ow := v.words, other.words
	if len(ow) < len(vw) { // impossible after sameLen; keeps BCE honest
		return 0
	}
	c0, c1, c2, c3 := 0, 0, 0, 0
	i := 0
	for ; i+4 <= len(vw); i += 4 {
		w0 := vw[i] & ow[i]
		w1 := vw[i+1] & ow[i+1]
		w2 := vw[i+2] & ow[i+2]
		w3 := vw[i+3] & ow[i+3]
		vw[i], vw[i+1], vw[i+2], vw[i+3] = w0, w1, w2, w3
		c0 += bits.OnesCount64(w0)
		c1 += bits.OnesCount64(w1)
		c2 += bits.OnesCount64(w2)
		c3 += bits.OnesCount64(w3)
	}
	for ; i < len(vw); i++ {
		vw[i] &= ow[i]
		c0 += bits.OnesCount64(vw[i])
	}
	return c0 + c1 + c2 + c3
}

// andCountSparse ANDs other into v visiting only v's nonzero words, guided
// by the summary, and retires summary bits as words reach zero.
func (v *Vector) andCountSparse(other *Vector) int {
	c := 0
	for si, sw := range v.summary {
		if sw == 0 {
			continue
		}
		base := si << wordShift
		for sw != 0 {
			t := bits.TrailingZeros64(sw)
			sw &= sw - 1
			wi := base + t
			w := v.words[wi] & other.words[wi]
			v.words[wi] = w
			if w == 0 {
				v.summary[si] &^= 1 << uint(t)
				v.nz--
			} else {
				c += bits.OnesCount64(w)
			}
		}
	}
	return c
}
