package bitvec

import (
	"math/rand"
	"testing"
)

// memPages is an in-memory PageSource over an encoded payload, with a tiny
// page size so multi-page streaming is exercised by small slices. It
// tracks pin balance so tests can assert the kernels release every page.
type memPages struct {
	data     []byte
	pageSize int
	pinned   map[int]int
}

func newMemPages(data []byte, pageSize int) *memPages {
	return &memPages{data: data, pageSize: pageSize, pinned: make(map[int]int)}
}

func (m *memPages) Page(k int) []byte {
	m.pinned[k]++
	out := make([]byte, m.pageSize)
	start := k * m.pageSize
	if start < len(m.data) {
		copy(out, m.data[start:])
	}
	return out
}

func (m *memPages) Release(k int) { m.pinned[k]-- }
func (m *memPages) PageSize() int { return m.pageSize }

func (m *memPages) balanced() bool {
	for _, v := range m.pinned {
		if v != 0 {
			return false
		}
	}
	return true
}

// freezeForTest round-trips a resident slice through the cold format.
func freezeForTest(t *testing.T, s *Slice, pageSize int) (*Slice, *memPages) {
	t.Helper()
	payload := s.EncodeCold()
	src := newMemPages(payload, pageSize)
	return NewColdSlice(s.Encoding(), s.Len(), s.Ones(), src, len(payload)), src
}

// randomSlice builds a random slice of n bits with approximate density d,
// recompressed so all three encodings appear across seeds.
func randomSlice(rng *rand.Rand, n int, d float64, compress bool) *Slice {
	v := New(n)
	if rng.Intn(3) == 0 {
		// Runs: clustered bits so RLE wins sometimes.
		for i := 0; i < n; {
			if rng.Float64() < d {
				run := 1 + rng.Intn(40)
				for j := 0; j < run && i < n; j, i = j+1, i+1 {
					v.Set(i)
				}
			} else {
				i += 1 + rng.Intn(30)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if rng.Float64() < d {
				v.Set(i)
			}
		}
	}
	return DenseSliceOf(v).Recompress(n, compress)
}

func TestColdKernelsMatchResident(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 64 + rng.Intn(4000)
		dstN := n + rng.Intn(200) // cold slice may be shorter than dst (ZX)
		s := randomSlice(rng, n, []float64{0.001, 0.02, 0.4}[trial%3], trial%2 == 0)
		cold, src := freezeForTest(t, s, 64) // 8-word pages force streaming
		if !cold.IsCold() || cold.Ones() != s.Ones() || cold.Encoding() != s.Encoding() {
			t.Fatalf("trial %d: cold header mismatch", trial)
		}

		mk := func() *Vector {
			d := New(dstN)
			for i := 0; i < dstN; i++ {
				if rng.Float64() < 0.5 {
					d.Set(i)
				}
			}
			return d
		}
		want := mk()
		got := want.Clone()
		if trial%4 == 0 {
			// Summarized accumulator: the cold path must drop and still match.
			want.MaybeSummarize(1)
			got.MaybeSummarize(1)
		}
		wantCnt := s.AndCountInto(want)
		gotCnt := cold.AndCountInto(got)
		if wantCnt != gotCnt {
			t.Fatalf("trial %d (%v): cold count %d != resident %d", trial, s.Encoding(), gotCnt, wantCnt)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d (%v): cold AND bits diverge", trial, s.Encoding())
		}
		if !src.balanced() {
			t.Fatalf("trial %d: kernel leaked page pins", trial)
		}
	}
}

func TestColdThawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 64 + rng.Intn(3000)
		s := randomSlice(rng, n, []float64{0.005, 0.1, 0.6}[trial%3], true)
		cold, _ := freezeForTest(t, s, 64)
		th := cold.Thaw()
		if th.IsCold() {
			t.Fatalf("thawed slice still cold")
		}
		if th.Encoding() != s.Encoding() || th.Len() != s.Len() || th.Ones() != s.Ones() {
			t.Fatalf("thaw header mismatch: %v/%d/%d vs %v/%d/%d",
				th.Encoding(), th.Len(), th.Ones(), s.Encoding(), s.Len(), s.Ones())
		}
		if !th.Materialize().Equal(s.Materialize()) {
			t.Fatalf("trial %d (%v): thaw bits diverge", trial, s.Encoding())
		}
		// Cold accessors route through decode and agree with the resident form.
		if !cold.Materialize().Equal(s.Materialize()) {
			t.Fatalf("cold Materialize diverges")
		}
		for i := 0; i < 20; i++ {
			p := rng.Intn(n + 10)
			if cold.Get(p) != s.Get(p) {
				t.Fatalf("cold Get(%d) diverges", p)
			}
		}
	}
}

func TestColdOrBlitAndClone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 1500
	s := randomSlice(rng, n, 0.05, true)
	cold, _ := freezeForTest(t, s, 128)

	want, got := New(n+64), New(n+64)
	s.OrInto(want)
	cold.OrInto(got)
	if !got.Equal(want) {
		t.Fatalf("cold OrInto diverges")
	}

	at := 37
	wantW := make([]uint64, (at+n+64+63)/64)
	gotW := make([]uint64, len(wantW))
	s.BlitInto(wantW, at)
	cold.BlitInto(gotW, at)
	for i := range wantW {
		if wantW[i] != gotW[i] {
			t.Fatalf("cold BlitInto diverges at word %d", i)
		}
	}

	c := cold.Clone()
	if !c.IsCold() || c.Ones() != cold.Ones() {
		t.Fatalf("cold Clone lost the cold header")
	}
	if cold.Bytes() != 0 || cold.ColdPayloadBytes() == 0 {
		t.Fatalf("cold accounting: Bytes=%d ColdPayloadBytes=%d", cold.Bytes(), cold.ColdPayloadBytes())
	}
	// Recompress on a cold slice thaws: the result must be resident.
	if r := cold.Recompress(n, false); r.IsCold() || r.Encoding() != EncDense {
		t.Fatalf("Recompress left the slice cold")
	}
}
