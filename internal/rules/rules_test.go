package rules

import (
	"math"
	"testing"

	"bbsmine/internal/apriori"
	"bbsmine/internal/mining"
	"bbsmine/internal/txdb"
)

// marketBasket is a small database with an obvious rule: bread ⇒ butter.
func marketBasket() []txdb.Transaction {
	const bread, butter, milk, beer = 1, 2, 3, 4
	return []txdb.Transaction{
		txdb.NewTransaction(1, []int32{bread, butter}),
		txdb.NewTransaction(2, []int32{bread, butter, milk}),
		txdb.NewTransaction(3, []int32{bread, butter}),
		txdb.NewTransaction(4, []int32{bread, milk}),
		txdb.NewTransaction(5, []int32{beer}),
		txdb.NewTransaction(6, []int32{beer, milk}),
	}
}

func mineAll(t *testing.T, txs []txdb.Transaction, minSup int) []mining.Frequent {
	t.Helper()
	store, err := txdb.NewMemStoreFrom(nil, txs)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := apriori.Mine(store, apriori.Config{MinSupport: minSup})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestGenerateBreadButter(t *testing.T) {
	txs := marketBasket()
	rules, err := Generate(mineAll(t, txs, 2), 0.7, len(txs))
	if err != nil {
		t.Fatal(err)
	}
	var found *Rule
	for i, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == 2 && len(r.Consequent) == 1 && r.Consequent[0] == 1 {
			found = &rules[i]
		}
	}
	if found == nil {
		t.Fatal("rule {butter} => {bread} not generated")
	}
	// butter appears 3 times, always with bread: confidence 1.0.
	if found.Confidence != 1.0 {
		t.Errorf("confidence = %f, want 1.0", found.Confidence)
	}
	if found.Support != 3 {
		t.Errorf("support = %d, want 3", found.Support)
	}
	// lift = 1.0 / (4/6) = 1.5 (bread appears in 4 of 6 transactions).
	if math.Abs(found.Lift-1.5) > 1e-9 {
		t.Errorf("lift = %f, want 1.5", found.Lift)
	}
}

func TestConfidenceThresholdFilters(t *testing.T) {
	txs := marketBasket()
	loose, err := Generate(mineAll(t, txs, 2), 0.0, len(txs))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Generate(mineAll(t, txs, 2), 0.99, len(txs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) >= len(loose) {
		t.Errorf("tight threshold kept %d rules, loose %d", len(tight), len(loose))
	}
	for _, r := range tight {
		if r.Confidence < 0.99 {
			t.Errorf("rule %v below threshold", r)
		}
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	rules, err := Generate(mineAll(t, marketBasket(), 2), 0.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Errorf("rules not sorted by confidence at %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	fs := mineAll(t, marketBasket(), 2)
	if _, err := Generate(fs, -0.1, 6); err == nil {
		t.Error("negative confidence accepted")
	}
	if _, err := Generate(fs, 1.1, 6); err == nil {
		t.Error("confidence > 1 accepted")
	}
	if _, err := Generate(fs, 0.5, 0); err == nil {
		t.Error("zero database size accepted")
	}
}

func TestGenerateRejectsIncompleteInput(t *testing.T) {
	// An itemset without its subsets cannot yield confidences.
	broken := []mining.Frequent{
		{Items: []txdb.Item{1, 2}, Support: 3},
		{Items: []txdb.Item{1}, Support: 4},
		// {2} missing
	}
	if _, err := Generate(broken, 0.1, 6); err == nil {
		t.Error("non-downward-closed input accepted")
	}
}

func TestAntecedentConsequentDisjointAndComplete(t *testing.T) {
	rules, err := Generate(mineAll(t, marketBasket(), 2), 0.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
	for _, r := range rules {
		seen := map[txdb.Item]bool{}
		for _, it := range r.Antecedent {
			seen[it] = true
		}
		for _, it := range r.Consequent {
			if seen[it] {
				t.Errorf("rule %v: item %d on both sides", r, it)
			}
		}
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Errorf("rule %v has an empty side", r)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: []txdb.Item{1, 2},
		Consequent: []txdb.Item{3},
		Support:    10,
		Confidence: 0.834,
		Lift:       1.909,
	}
	want := "{1,2} => {3} (sup=10, conf=0.83, lift=1.91)"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSingletonItemsetsYieldNoRules(t *testing.T) {
	fs := []mining.Frequent{{Items: []txdb.Item{1}, Support: 5}}
	rules, err := Generate(fs, 0.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Errorf("singletons produced %d rules", len(rules))
	}
}
