// Package rules generates association rules from mined frequent itemsets —
// the downstream task that motivates frequent-pattern mining (the paper's
// introduction: "association rule mining, correlations and causality,
// require frequent patterns to be mined first").
//
// The generator is the classic Agrawal–Srikant procedure: for every
// frequent itemset Z and every non-empty proper subset X ⊂ Z, emit
// X ⇒ Z∖X when confidence(X ⇒ Z∖X) = support(Z)/support(X) clears the
// threshold; subsets are enumerated largest-antecedent-first so the
// anti-monotonicity of confidence in the consequent prunes the lattice.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"bbsmine/internal/mining"
	"bbsmine/internal/txdb"
)

// Rule is one association rule X ⇒ Y with its quality measures.
type Rule struct {
	Antecedent []txdb.Item // X, sorted ascending
	Consequent []txdb.Item // Y, sorted ascending, disjoint from X
	Support    int         // support(X ∪ Y), absolute count
	Confidence float64     // support(X ∪ Y) / support(X)
	Lift       float64     // confidence / (support(Y)/n)
}

// String renders the rule as "{1,2} => {3} (sup=10, conf=0.83, lift=1.91)".
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup=%d, conf=%.2f, lift=%.2f)",
		renderItems(r.Antecedent), renderItems(r.Consequent), r.Support, r.Confidence, r.Lift)
}

func renderItems(items []txdb.Item) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, it := range items {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", it)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Generate derives all rules meeting minConfidence from the frequent
// itemsets. Supports must be exact (as produced by Apriori, FP-growth,
// SFS/SFP, or DFP's exact patterns); n is the database size, used for lift.
// Itemsets whose subsets are missing from the input (which cannot happen
// with a complete mining result) yield an error rather than wrong numbers.
func Generate(frequent []mining.Frequent, minConfidence float64, n int) ([]Rule, error) {
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("rules: confidence %f outside [0,1]", minConfidence)
	}
	if n <= 0 {
		return nil, fmt.Errorf("rules: database size must be positive, got %d", n)
	}
	support := mining.ToMap(frequent)

	var out []Rule
	for _, f := range frequent {
		if len(f.Items) < 2 {
			continue
		}
		rules, err := rulesFrom(f, support, minConfidence, n)
		if err != nil {
			return nil, err
		}
		out = append(out, rules...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Support > out[j].Support
	})
	return out, nil
}

// rulesFrom enumerates the antecedent subsets of one frequent itemset.
func rulesFrom(f mining.Frequent, support map[string]int, minConfidence float64, n int) ([]Rule, error) {
	k := len(f.Items)
	var out []Rule
	// Enumerate non-empty proper subsets as antecedents via bitmask; k is
	// small (itemsets beyond ~15 items are unheard of at sane thresholds).
	if k > 20 {
		return nil, fmt.Errorf("rules: itemset of %d items is implausibly large", k)
	}
	for mask := 1; mask < (1<<k)-1; mask++ {
		ante := make([]txdb.Item, 0, k)
		cons := make([]txdb.Item, 0, k)
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				ante = append(ante, f.Items[b])
			} else {
				cons = append(cons, f.Items[b])
			}
		}
		supAnte, ok := support[mining.Key(ante)]
		if !ok {
			return nil, fmt.Errorf("rules: input is not downward closed: missing subset %v of %v", ante, f.Items)
		}
		conf := float64(f.Support) / float64(supAnte)
		if conf < minConfidence {
			continue
		}
		supCons, ok := support[mining.Key(cons)]
		if !ok {
			return nil, fmt.Errorf("rules: input is not downward closed: missing subset %v of %v", cons, f.Items)
		}
		out = append(out, Rule{
			Antecedent: ante,
			Consequent: cons,
			Support:    f.Support,
			Confidence: conf,
			Lift:       conf / (float64(supCons) / float64(n)),
		})
	}
	return out, nil
}
