package obs

import (
	"sync"
	"sync/atomic"
)

// Per-shard serving counters. A sharded database routes writes to one shard
// at a time and fans every count out to all of them, so the interesting
// questions — is one shard hot? are the epochs advancing together? — need
// per-shard resolution. Only what is semantically per-shard lives here
// (epoch, committed batches, the operations they carried, fan-out count
// calls); the mining funnel and kernel counters stay global, because mining
// decisions are made over the merged view, not per shard.
//
// The shard set grows on first touch: the registry does not know N, and the
// serving layer may publish shard 3's epoch before shard 0 sees traffic.
// Growth swaps in a longer slice of pointers under a mutex; readers load
// the slice atomically, so the hot path (one Add on a fan-out count) is a
// pointer load and an atomic increment, same cost discipline as every other
// counter in this package.

// shardCounters holds one shard's counters. Heap-allocated and reached via
// pointer so growing the shard set never moves live atomics.
type shardCounters struct {
	epoch        atomic.Int64 // gauge
	writeBatches atomic.Int64
	writeOps     atomic.Int64
	countCalls   atomic.Int64
}

// shardStats is the grow-on-first-touch set of per-shard counters. parts is
// declared before the mutex deliberately: readers load it atomically without
// locking, and mu serializes growth only (the lock-discipline convention
// guards fields declared after a mutex).
type shardStats struct {
	parts atomic.Pointer[[]*shardCounters] // nil until the first shard hook fires
	mu    sync.Mutex                       // serializes growth; never needed to read
}

// at returns shard i's counters, growing the set if needed.
func (s *shardStats) at(i int) *shardCounters {
	if p := s.parts.Load(); p != nil && i < len(*p) {
		return (*p)[i]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var parts []*shardCounters
	if p := s.parts.Load(); p != nil {
		parts = *p
	}
	if i < len(parts) {
		return parts[i]
	}
	grown := make([]*shardCounters, i+1)
	copy(grown, parts)
	for j := len(parts); j <= i; j++ {
		grown[j] = &shardCounters{}
	}
	s.parts.Store(&grown)
	return grown[i]
}

// AddShardCount records one fan-out count call answered by shard s.
func (r *Registry) AddShardCount(s int) {
	if r == nil || s < 0 {
		return
	}
	r.server.active.Store(true)
	r.shards.at(s).countCalls.Add(1)
}

// SetShardEpoch publishes shard s's current epoch.
func (r *Registry) SetShardEpoch(s int, epoch uint64) {
	if r == nil || s < 0 {
		return
	}
	r.server.active.Store(true)
	r.shards.at(s).epoch.Store(int64(epoch))
}

// AddShardWriteBatch records one batch of ops operations committed by
// shard s's commit loop. The caller still calls AddWriteBatch for the
// global totals and the batch-size histogram; this is the per-shard split.
func (r *Registry) AddShardWriteBatch(s int, ops int64) {
	if r == nil || s < 0 {
		return
	}
	r.server.active.Store(true)
	r.shards.at(s).writeBatches.Add(1)
	r.shards.at(s).writeOps.Add(ops)
}

// ShardMetrics is one shard's slice of the server section, in shard order.
type ShardMetrics struct {
	Epoch        int64 `json:"epoch"`
	WriteBatches int64 `json:"write_batches"`
	WriteOps     int64 `json:"write_ops"`
	CountCalls   int64 `json:"count_calls"`
}

// shardMetrics snapshots the per-shard counters; nil when no shard hook has
// fired, so unsharded servers keep their exposition unchanged.
func (r *Registry) shardMetrics() []ShardMetrics {
	p := r.shards.parts.Load()
	if p == nil {
		return nil
	}
	out := make([]ShardMetrics, len(*p))
	for i, c := range *p {
		out[i] = ShardMetrics{
			Epoch:        c.epoch.Load(),
			WriteBatches: c.writeBatches.Load(),
			WriteOps:     c.writeOps.Load(),
			CountCalls:   c.countCalls.Load(),
		}
	}
	return out
}
