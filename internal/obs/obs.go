// Package obs is the mining telemetry layer: a race-safe registry of
// counters, histograms and phase timers, plus a sampled structured-event
// tracer (trace.go) and an expvar/Prometheus/pprof exposition surface
// (http.go).
//
// The design follows two rules the engine cannot bend:
//
//   - Zero cost when disabled. Every Registry method is safe on a nil
//     receiver and returns immediately, so an uninstrumented run pays one
//     predictable branch per hook site — no interface dispatch, no
//     allocation, no atomic traffic. The hot loops (sigfile.CountIntoBuf,
//     core.evalExtension) additionally batch their tallies in plain
//     per-goroutine integers and flush them to the registry in one atomic
//     burst per call or per subtree.
//
//   - Determinism preserved. The engine guarantees Workers:N == Workers:1
//     byte for byte; telemetry must not perturb that, and its own totals
//     must be deterministic too. Counters only ever accumulate sums over
//     the same work items regardless of scheduling (addition commutes), and
//     the funnel split is carried through the parallel engine's
//     subtreeResult merge, in enumeration (seq) order, exactly like the
//     Result counters. The TestParallelDeterminism suite runs with tracing
//     enabled to pin this.
//
// internal/core and internal/sigfile never call time.Now or expvar
// directly (the bbslint obsdiscipline analyzer enforces it): wall-clock
// intervals go through Tick/PhaseDone, whose Tick is zero — and therefore
// free — on a nil registry.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"bbsmine/internal/iostat"
)

// Phase identifies one timed stage of a mining run.
type Phase int

// The mining phases, in rough execution order. PhaseMine wraps the whole
// call; the others nest inside it (so their durations overlap PhaseMine's,
// not each other's).
const (
	PhaseMine       Phase = iota // the whole Mine call
	PhaseLevel1                  // level-1 sweep establishing the alphabet
	PhaseEnumerate               // depth-first candidate enumeration
	PhaseScanRefine              // SequentialScan verification
	PhaseFold                    // adaptive: folding the BBS into a MemBBS
	PhaseReverify                // adaptive: phase-3 re-estimation + probes
	numPhases
)

// String returns the snake_case phase name used in metric keys and traces.
func (p Phase) String() string {
	switch p {
	case PhaseMine:
		return "mine"
	case PhaseLevel1:
		return "level1"
	case PhaseEnumerate:
		return "enumerate"
	case PhaseScanRefine:
		return "scan_refine"
	case PhaseFold:
		return "fold"
	case PhaseReverify:
		return "reverify"
	default:
		return "unknown"
	}
}

// Tick marks the start of a timed interval. The zero Tick (what a nil
// registry hands out) is inert: PhaseDone ignores it, so instrumented code
// never branches on whether timing is on.
type Tick struct{ t time.Time }

// Funnel is one run's contribution to the filter-and-refine funnel, the
// paper's core accounting: candidates in at the top, certificates and false
// drops out at the bottom. Plain value struct; the engine accumulates one
// per run (merged across workers by seq) and hands it to Registry.AddFunnel
// in a single call.
type Funnel struct {
	Candidates      int64 // itemsets whose estimate reached τ
	CertifiedActual int64 // dual filter flag 1: certain, count exact
	CertifiedEst    int64 // dual filter flag 2: certain via Lemma 5 bound
	Uncertain       int64 // flag 0 (or single filter): needs refinement
	NonFrequent     int64 // dual filter flag -1: exact knowledge, pruned
	ProbedPatterns  int64 // candidates settled by probing
	FalseDrops      int64 // candidates refinement found infrequent
	Verified        int64 // patterns in the answer with exact supports
	Patterns        int64 // patterns in the final answer
}

// Add accumulates g into f.
func (f *Funnel) Add(g Funnel) {
	f.Candidates += g.Candidates
	f.CertifiedActual += g.CertifiedActual
	f.CertifiedEst += g.CertifiedEst
	f.Uncertain += g.Uncertain
	f.NonFrequent += g.NonFrequent
	f.ProbedPatterns += g.ProbedPatterns
	f.FalseDrops += g.FalseDrops
	f.Verified += g.Verified
	f.Patterns += g.Patterns
}

// KernelSample is a batch of AND-kernel tallies, accumulated in plain
// integers on the hot path and flushed to the registry in one AddKernel
// call. Evals counts itemset evaluations (one per CountItemSet-equivalent);
// the words/ANDs split tracks which kernel ran and how much of the vector
// it actually visited.
type KernelSample struct {
	Evals          int64 // itemset evaluations (AND loops started)
	EarlyExits     int64 // evaluations cut short below τ (or at zero)
	AndsSparse     int64 // slice ANDs run by the summary-guided kernel
	AndsDense      int64 // slice ANDs run by the dense unrolled kernel
	WordsSparse    int64 // backing words visited by sparse ANDs
	WordsDense     int64 // backing words visited by dense ANDs
	PosCacheHits   int64 // evaluations served from the run's position cache
	PosCacheMisses int64 // evaluations that had to consult the hasher

	// Per-encoding split of the same ANDs along the *storage* axis: which
	// representation the source slice was in (the Ands{Sparse,Dense} pair
	// above splits by the accumulator's kernel instead). On an uncompressed
	// index AndsEncDense equals AndsSparse+AndsDense and the other two are
	// zero.
	AndsEncDense  int64 // ANDs whose source slice was dense words
	AndsEncSparse int64 // ANDs over a sorted position-list slice
	AndsEncRLE    int64 // ANDs over a run-length slice
}

func (k *KernelSample) add(g KernelSample) {
	k.Evals += g.Evals
	k.EarlyExits += g.EarlyExits
	k.AndsSparse += g.AndsSparse
	k.AndsDense += g.AndsDense
	k.WordsSparse += g.WordsSparse
	k.WordsDense += g.WordsDense
	k.PosCacheHits += g.PosCacheHits
	k.PosCacheMisses += g.PosCacheMisses
	k.AndsEncDense += g.AndsEncDense
	k.AndsEncSparse += g.AndsEncSparse
	k.AndsEncRLE += g.AndsEncRLE
}

// CountEncoding tallies one AND against the source slice's encoding tag
// (bitvec.Encoding values: 0 dense, 1 sparse, 2 RLE). Taking the raw tag
// keeps obs free of a bitvec import.
func (k *KernelSample) CountEncoding(enc int) {
	switch enc {
	case 1:
		k.AndsEncSparse++
	case 2:
		k.AndsEncRLE++
	default:
		k.AndsEncDense++
	}
}

// FunnelStats holds the registry's funnel counters.
type FunnelStats struct {
	candidates      atomic.Int64
	certifiedActual atomic.Int64
	certifiedEst    atomic.Int64
	uncertain       atomic.Int64
	nonFrequent     atomic.Int64
	probedPatterns  atomic.Int64
	falseDrops      atomic.Int64
	verified        atomic.Int64
	patterns        atomic.Int64
	scanBatches     atomic.Int64
	scanTx          atomic.Int64
	scanMatches     atomic.Int64
}

// KernelStats holds the registry's AND-kernel counters.
type KernelStats struct {
	evals          atomic.Int64
	earlyExits     atomic.Int64
	andsSparse     atomic.Int64
	andsDense      atomic.Int64
	wordsSparse    atomic.Int64
	wordsDense     atomic.Int64
	posCacheHits   atomic.Int64
	posCacheMisses atomic.Int64
	andsEncDense   atomic.Int64
	andsEncSparse  atomic.Int64
	andsEncRLE     atomic.Int64
}

// IndexStats holds the index-storage gauges: the logical (all-dense) slice
// footprint, the resident footprint under the current encodings, and the
// per-encoding slice census. Gauges, not counters — each publish overwrites.
type IndexStats struct {
	sliceLogicalBytes  atomic.Int64
	sliceResidentBytes atomic.Int64
	slicesDense        atomic.Int64
	slicesSparse       atomic.Int64
	slicesRLE          atomic.Int64
}

// CacheStats holds the registry's pool/cache counters.
type CacheStats struct {
	poolGets   atomic.Int64
	poolMisses atomic.Int64
}

// sliceTouchTally tallies per-slice AND participation: counts[p] is how
// many AND chains slice p was selected into. The tiered storage ranks
// slices by these counts to pick the pinned hot tier, so the counters are
// per-registry, not global, and reset with it. One lock per evaluation —
// the same batch granularity as AddKernel — keeps the hot path off
// per-slice atomics. (Mutex-guarded rather than atomic, unlike the *Stats
// structs: the counts array reallocates as it grows.)
type sliceTouchTally struct {
	mu     sync.Mutex
	counts []uint64 // guarded by mu
}

// PhaseStats holds cumulative wall time and call counts per phase.
type PhaseStats struct {
	ns    [numPhases]atomic.Int64
	calls [numPhases]atomic.Int64
}

// Registry accumulates one or more mining runs' telemetry. The zero value
// is ready to use; a nil *Registry is the disabled state and every method
// no-ops on it. A Registry may be shared by concurrent goroutines of one
// run and — except for SetTracer/BindIO, which must happen before the run —
// by concurrent runs.
type Registry struct {
	funnel     FunnelStats
	kernel     KernelStats
	index      IndexStats
	cache      CacheStats
	phases     PhaseStats
	server     ServerStats
	shards     shardStats
	stageHists stageStats // serving SLO histograms (stage.go)

	mineLatency HistStats // whole-Mine wall time, ns
	andDepth    HistStats // slice positions AND-ed per evaluation
	batchSize   HistStats // operations per committed write batch

	io          *iostat.Stats       // optional: folded into Metrics snapshots
	tracer      *Tracer             // optional: sampled structured events
	touches     sliceTouchTally     // per-slice AND participation (tiering input)
	pagerSource func() PagerMetrics // optional: buffer-pool gauges (SetPagerSource)
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// BindIO attaches an iostat sink whose page/probe counters are folded into
// every Metrics snapshot. Call before the run; not synchronized.
func (r *Registry) BindIO(s *iostat.Stats) {
	if r == nil {
		return
	}
	r.io = s
}

// Tick starts a timed interval; free (zero) on a nil registry.
func (r *Registry) Tick() Tick {
	if r == nil {
		return Tick{}
	}
	return Tick{t: time.Now()}
}

// PhaseDone records the interval from at to now under the phase. A zero
// Tick — from a nil registry, or a registry attached mid-run — is ignored.
func (r *Registry) PhaseDone(p Phase, at Tick) {
	if r == nil || at.t.IsZero() {
		return
	}
	d := time.Since(at.t).Nanoseconds()
	r.phases.ns[p].Add(d)
	r.phases.calls[p].Add(1)
	if p == PhaseMine {
		r.mineLatency.Observe(d)
	}
	r.Emit(Event{Kind: "phase", Phase: p.String(), DurNs: d})
}

// AddFunnel folds one run's funnel accounting into the registry.
func (r *Registry) AddFunnel(f Funnel) {
	if r == nil {
		return
	}
	r.funnel.candidates.Add(f.Candidates)
	r.funnel.certifiedActual.Add(f.CertifiedActual)
	r.funnel.certifiedEst.Add(f.CertifiedEst)
	r.funnel.uncertain.Add(f.Uncertain)
	r.funnel.nonFrequent.Add(f.NonFrequent)
	r.funnel.probedPatterns.Add(f.ProbedPatterns)
	r.funnel.falseDrops.Add(f.FalseDrops)
	r.funnel.verified.Add(f.Verified)
	r.funnel.patterns.Add(f.Patterns)
}

// AddKernel flushes a batch of kernel tallies.
func (r *Registry) AddKernel(k KernelSample) {
	if r == nil {
		return
	}
	r.kernel.evals.Add(k.Evals)
	r.kernel.earlyExits.Add(k.EarlyExits)
	r.kernel.andsSparse.Add(k.AndsSparse)
	r.kernel.andsDense.Add(k.AndsDense)
	r.kernel.wordsSparse.Add(k.WordsSparse)
	r.kernel.wordsDense.Add(k.WordsDense)
	r.kernel.posCacheHits.Add(k.PosCacheHits)
	r.kernel.posCacheMisses.Add(k.PosCacheMisses)
	r.kernel.andsEncDense.Add(k.AndsEncDense)
	r.kernel.andsEncSparse.Add(k.AndsEncSparse)
	r.kernel.andsEncRLE.Add(k.AndsEncRLE)
}

// SetIndexStorage publishes the index's storage gauges: logical is the
// all-dense slice footprint in bytes, resident the bytes actually held under
// the current encodings, and dense/sparse/rle the per-encoding slice census.
// Call whenever the storage shape changes (attach, SetCompression, Fold,
// Merge); each call overwrites the previous gauge values.
func (r *Registry) SetIndexStorage(logical, resident int64, dense, sparse, rle int) {
	if r == nil {
		return
	}
	r.index.sliceLogicalBytes.Store(logical)
	r.index.sliceResidentBytes.Store(resident)
	r.index.slicesDense.Store(int64(dense))
	r.index.slicesSparse.Store(int64(sparse))
	r.index.slicesRLE.Store(int64(rle))
}

// ObserveAndDepth records how many slice positions one evaluation AND-ed
// before returning (early exit included).
func (r *Registry) ObserveAndDepth(n int64) {
	if r == nil {
		return
	}
	r.andDepth.Observe(n)
}

// AddPool records vector-pool traffic: gets handed out, of which misses
// were fresh allocations.
func (r *Registry) AddPool(gets, misses int64) {
	if r == nil {
		return
	}
	r.cache.poolGets.Add(gets)
	r.cache.poolMisses.Add(misses)
}

// AddScanBatch records one SequentialScan verification batch: tx
// transactions scanned, matches candidate hits counted.
func (r *Registry) AddScanBatch(tx, matches int64) {
	if r == nil {
		return
	}
	r.funnel.scanBatches.Add(1)
	r.funnel.scanTx.Add(tx)
	r.funnel.scanMatches.Add(matches)
}

// TouchSlices records one evaluation's AND-chain membership: each slice
// position in pos participated in one chain. One lock per evaluation (the
// AddKernel batch granularity); the counts array grows lazily to the
// highest position seen.
func (r *Registry) TouchSlices(pos []int) {
	if r == nil || len(pos) == 0 {
		return
	}
	r.touches.mu.Lock()
	for _, p := range pos {
		if p >= len(r.touches.counts) {
			grown := make([]uint64, p+1)
			copy(grown, r.touches.counts)
			r.touches.counts = grown
		}
		r.touches.counts[p]++
	}
	r.touches.mu.Unlock()
}

// SliceTouches returns a copy of the per-slice AND-participation counts
// (index = slice position). Nil when nothing was recorded. The tiering
// pass ranks slices by these to choose the pinned hot tier.
func (r *Registry) SliceTouches() []uint64 {
	if r == nil {
		return nil
	}
	r.touches.mu.Lock()
	defer r.touches.mu.Unlock()
	if len(r.touches.counts) == 0 {
		return nil
	}
	out := make([]uint64, len(r.touches.counts))
	copy(out, r.touches.counts)
	return out
}

// SetPagerSource registers a provider of buffer-pool gauges, folded into
// every Metrics snapshot once set. The provider pattern (like BindIO)
// keeps obs free of a pager import; call before the run, not synchronized.
func (r *Registry) SetPagerSource(fn func() PagerMetrics) {
	if r == nil {
		return
	}
	r.pagerSource = fn
}

// FunnelMetrics is the funnel section of a Metrics snapshot.
type FunnelMetrics struct {
	Candidates      int64 `json:"candidates"`
	CertifiedActual int64 `json:"certified_actual"`
	CertifiedEst    int64 `json:"certified_est"`
	Uncertain       int64 `json:"uncertain"`
	NonFrequent     int64 `json:"non_frequent"`
	ProbedPatterns  int64 `json:"probed_patterns"`
	FalseDrops      int64 `json:"false_drops"`
	Verified        int64 `json:"verified"`
	Patterns        int64 `json:"patterns"`
	ScanBatches     int64 `json:"scan_batches"`
	ScanTx          int64 `json:"scan_tx"`
	ScanMatches     int64 `json:"scan_matches"`
}

// KernelMetrics is the AND-kernel section of a Metrics snapshot.
type KernelMetrics struct {
	Evals          int64 `json:"evals"`
	EarlyExits     int64 `json:"early_exits"`
	AndsSparse     int64 `json:"ands_sparse"`
	AndsDense      int64 `json:"ands_dense"`
	WordsSparse    int64 `json:"words_sparse"`
	WordsDense     int64 `json:"words_dense"`
	PosCacheHits   int64 `json:"pos_cache_hits"`
	PosCacheMisses int64 `json:"pos_cache_misses"`
	AndsEncDense   int64 `json:"ands_enc_dense"`
	AndsEncSparse  int64 `json:"ands_enc_sparse"`
	AndsEncRLE     int64 `json:"ands_enc_rle"`
}

// IndexMetrics is the index-storage section of a Metrics snapshot. Present
// only once SetIndexStorage has published gauges.
type IndexMetrics struct {
	SliceLogicalBytes  int64 `json:"slice_logical_bytes"`
	SliceResidentBytes int64 `json:"slice_resident_bytes"`
	SlicesDense        int64 `json:"slices_dense"`
	SlicesSparse       int64 `json:"slices_sparse"`
	SlicesRLE          int64 `json:"slices_rle"`
}

// CacheMetrics is the pool section of a Metrics snapshot.
type CacheMetrics struct {
	PoolGets   int64 `json:"pool_gets"`
	PoolMisses int64 `json:"pool_misses"`
}

// PhaseMetrics is one phase's cumulative timing.
type PhaseMetrics struct {
	Ns    int64 `json:"ns"`
	Calls int64 `json:"calls"`
}

// IOMetrics mirrors iostat.Snapshot with metric-friendly key names.
type IOMetrics struct {
	DBSeqPages     int64 `json:"db_seq_pages"`
	DBRandPages    int64 `json:"db_rand_pages"`
	DBScans        int64 `json:"db_scans"`
	Probes         int64 `json:"probes"`
	SlicePageReads int64 `json:"slice_page_reads"`
	SliceAnds      int64 `json:"slice_ands"`
	CountCalls     int64 `json:"count_calls"`
	Candidates     int64 `json:"candidates"`
	FalseDrops     int64 `json:"false_drops"`

	PageCacheHits      int64 `json:"page_cache_hits"`
	PageCacheEvictions int64 `json:"page_cache_evictions"`
	PageCacheResident  int64 `json:"page_cache_resident"`
}

// PagerMetrics is the buffer-pool section of a Metrics snapshot — and the
// value the SetPagerSource provider returns, so the pool's gauges are
// defined once here (obs stays free of a pager import). Present only when
// a pager source is registered (tiered storage on).
type PagerMetrics struct {
	ResidentBytes int64   `json:"resident_bytes"`
	ReservedBytes int64   `json:"reserved_bytes"`
	Faults        int64   `json:"faults"`
	Hits          int64   `json:"hits"`
	Evictions     int64   `json:"evictions"`
	HitRatio      float64 `json:"hit_ratio"`
	SlicesHot     int64   `json:"slices_hot"`
	SlicesCold    int64   `json:"slices_cold"`
}

// Metrics is a point-in-time snapshot of everything the registry holds,
// shaped for JSON (and, flattened, for the Prometheus text exposition).
type Metrics struct {
	Funnel      FunnelMetrics           `json:"funnel"`
	Kernel      KernelMetrics           `json:"kernel"`
	Index       *IndexMetrics           `json:"index,omitempty"`
	Cache       CacheMetrics            `json:"cache"`
	Phases      map[string]PhaseMetrics `json:"phases,omitempty"`
	MineLatency HistMetrics             `json:"mine_latency_ns"`
	AndDepth    HistMetrics             `json:"and_depth"`
	Server      *ServerMetrics          `json:"server,omitempty"`
	IO          *IOMetrics              `json:"io,omitempty"`
	Pager       *PagerMetrics           `json:"pager,omitempty"`
	Trace       *TraceMetrics           `json:"trace,omitempty"`
}

// Metrics returns a snapshot of the registry. Safe during a run; each
// counter is read atomically (the set is not one consistent cut, which is
// fine for monitoring — read after the run for exact totals).
func (r *Registry) Metrics() Metrics {
	if r == nil {
		return Metrics{}
	}
	m := Metrics{
		Funnel: FunnelMetrics{
			Candidates:      r.funnel.candidates.Load(),
			CertifiedActual: r.funnel.certifiedActual.Load(),
			CertifiedEst:    r.funnel.certifiedEst.Load(),
			Uncertain:       r.funnel.uncertain.Load(),
			NonFrequent:     r.funnel.nonFrequent.Load(),
			ProbedPatterns:  r.funnel.probedPatterns.Load(),
			FalseDrops:      r.funnel.falseDrops.Load(),
			Verified:        r.funnel.verified.Load(),
			Patterns:        r.funnel.patterns.Load(),
			ScanBatches:     r.funnel.scanBatches.Load(),
			ScanTx:          r.funnel.scanTx.Load(),
			ScanMatches:     r.funnel.scanMatches.Load(),
		},
		Kernel: KernelMetrics{
			Evals:          r.kernel.evals.Load(),
			EarlyExits:     r.kernel.earlyExits.Load(),
			AndsSparse:     r.kernel.andsSparse.Load(),
			AndsDense:      r.kernel.andsDense.Load(),
			WordsSparse:    r.kernel.wordsSparse.Load(),
			WordsDense:     r.kernel.wordsDense.Load(),
			PosCacheHits:   r.kernel.posCacheHits.Load(),
			PosCacheMisses: r.kernel.posCacheMisses.Load(),
			AndsEncDense:   r.kernel.andsEncDense.Load(),
			AndsEncSparse:  r.kernel.andsEncSparse.Load(),
			AndsEncRLE:     r.kernel.andsEncRLE.Load(),
		},
		Cache: CacheMetrics{
			PoolGets:   r.cache.poolGets.Load(),
			PoolMisses: r.cache.poolMisses.Load(),
		},
		MineLatency: r.mineLatency.Metrics(),
		AndDepth:    r.andDepth.Metrics(),
		Server:      r.serverMetrics(),
	}
	if logical := r.index.sliceLogicalBytes.Load(); logical > 0 {
		m.Index = &IndexMetrics{
			SliceLogicalBytes:  logical,
			SliceResidentBytes: r.index.sliceResidentBytes.Load(),
			SlicesDense:        r.index.slicesDense.Load(),
			SlicesSparse:       r.index.slicesSparse.Load(),
			SlicesRLE:          r.index.slicesRLE.Load(),
		}
	}
	for p := Phase(0); p < numPhases; p++ {
		calls := r.phases.calls[p].Load()
		if calls == 0 {
			continue
		}
		if m.Phases == nil {
			m.Phases = make(map[string]PhaseMetrics, int(numPhases))
		}
		m.Phases[p.String()] = PhaseMetrics{Ns: r.phases.ns[p].Load(), Calls: calls}
	}
	if r.io != nil {
		s := r.io.Snapshot()
		m.IO = &IOMetrics{
			DBSeqPages:     s.DBSeqPages,
			DBRandPages:    s.DBRandPages,
			DBScans:        s.DBScans,
			Probes:         s.Probes,
			SlicePageReads: s.SlicePageReads,
			SliceAnds:      s.SliceAnds,
			CountCalls:     s.CountCalls,
			Candidates:     s.Candidates,
			FalseDrops:     s.FalseDrops,

			PageCacheHits:      s.PageCacheHits,
			PageCacheEvictions: s.PageCacheEvictions,
			PageCacheResident:  s.PageCacheResident,
		}
	}
	if src := r.pagerSource; src != nil {
		pm := src()
		m.Pager = &pm
	}
	if t := r.tracer; t != nil {
		tm := t.metrics()
		m.Trace = &tm
	}
	return m
}
