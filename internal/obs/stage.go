package obs

// Per-request stage decomposition for the serving layer. A tail-latency
// regression that is only visible as "p99 got worse" is not actionable; the
// serving engine therefore times every request's path through five stages
// and feeds one LatencyHist per stage, so /metrics can answer *which* stage
// moved — admission queueing (overload), cache lookup (lock contention),
// merged-view bind (epoch churn invalidating the merge cache), mine time
// (the query itself), or render time (answer size).

// Stage identifies one timed stage of a served request. Stages are
// sequential and disjoint, so their sum is a lower bound on the request's
// total latency (the remainder is HTTP parsing, scheduling and response
// writing).
type Stage int

const (
	// StageQueue is admission-control queue wait: from asking for a mine
	// slot to holding one. Zero for cache hits and single-flight joins.
	StageQueue Stage = iota
	// StageCache is the query-cache lookup (and, for followers, the wait on
	// the leader's flight).
	StageCache
	// StageBind is building the private mining view: snapshot clone on one
	// shard, block-concat merge plus clone on many.
	StageBind
	// StageMine is the mining run itself.
	StageMine
	// StageRender is encoding the pattern set into its wire form.
	StageRender
	numStages
)

// String returns the snake_case stage name used in metric keys, trace
// events, request-log records and the Server-Timing header.
func (s Stage) String() string {
	switch s {
	case StageQueue:
		return "queue"
	case StageCache:
		return "cache"
	case StageBind:
		return "bind"
	case StageMine:
		return "mine"
	case StageRender:
		return "render"
	default:
		return "unknown"
	}
}

// RequestClass splits the serving SLO histograms by traffic class.
type RequestClass int

const (
	// ClassRead is a /mine query.
	ClassRead RequestClass = iota
	// ClassWrite is a /txns batch.
	ClassWrite
	numClasses
)

// String returns the class name used in metric keys and request-log
// records.
func (c RequestClass) String() string {
	if c == ClassWrite {
		return "write"
	}
	return "read"
}

// stageStats holds the serving layer's SLO histograms: one latency
// histogram per request class and one per stage. Lives in ServerStats'
// shadow (same activation flag) but in its own struct so the hot counters
// above it keep their cache locality.
type stageStats struct {
	//lint:ignore atomicfield LatencyHist is composed entirely of sync/atomic fields; Observe and Metrics are race-safe by construction
	requests [numClasses]LatencyHist
	//lint:ignore atomicfield LatencyHist is composed entirely of sync/atomic fields; Observe and Metrics are race-safe by construction
	stages [numStages]LatencyHist
}

// ObserveRequestLatency records one served request's total latency under
// its class.
func (r *Registry) ObserveRequestLatency(c RequestClass, ns int64) {
	if r == nil || c < 0 || c >= numClasses {
		return
	}
	r.server.active.Store(true)
	r.stageHists.requests[c].Observe(ns)
}

// ObserveStage records one request's time spent in one stage. Stages a
// request skipped (a cache hit never queues, binds, mines or renders) are
// simply not observed, so each stage histogram reflects only requests that
// actually entered the stage.
func (r *Registry) ObserveStage(s Stage, ns int64) {
	if r == nil || s < 0 || s >= numStages {
		return
	}
	r.server.active.Store(true)
	r.stageHists.stages[s].Observe(ns)
}

// stageMetrics snapshots the per-class and per-stage histograms, keyed by
// name; empty histograms are omitted so an idle server's exposition stays
// small.
func (r *Registry) stageMetrics() (requests, stages map[string]LatencyMetrics) {
	for c := RequestClass(0); c < numClasses; c++ {
		h := &r.stageHists.requests[c]
		if h.Count() == 0 {
			continue
		}
		if requests == nil {
			requests = make(map[string]LatencyMetrics, int(numClasses))
		}
		requests[c.String()] = h.Metrics()
	}
	for s := Stage(0); s < numStages; s++ {
		h := &r.stageHists.stages[s]
		if h.Count() == 0 {
			continue
		}
		if stages == nil {
			stages = make(map[string]LatencyMetrics, int(numStages))
		}
		stages[s.String()] = h.Metrics()
	}
	return requests, stages
}
