package obs

import (
	"math/bits"
	"sync/atomic"
)

// LatencyHist is a lock-free latency histogram with log2 major buckets and
// 2^latSubBits sub-buckets per major bucket (HDR-histogram style): every
// nonnegative int64 sample lands in a bucket whose width is at most
// 1/2^latSubBits of its value, so an extracted quantile overstates the true
// one by under ~6.3%. That is "exact enough" for SLO accounting — the
// power-of-two HistStats, whose buckets are a full octave wide, is not: a
// p99 answer of "somewhere between 8ms and 16ms" cannot gate a 10ms SLO.
//
// Observe is constant-time (two atomic adds, one CAS loop for the max) and
// race-safe, so the serving layer can call it on every request. The zero
// value is ready to use.
type LatencyHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [latBuckets]atomic.Int64
}

const (
	// latSubBits is the log2 of the sub-bucket count per octave; 4 gives 16
	// sub-buckets and a worst-case relative bucket width of 6.25%.
	latSubBits  = 4
	latSubCount = 1 << latSubBits
	// latBuckets covers the whole nonnegative int64 range: values below
	// latSubCount index exactly, every octave above contributes latSubCount
	// sub-buckets.
	latBuckets = latSubCount + (63-latSubBits)*latSubCount
)

// latBucketIndex maps a nonnegative sample to its bucket.
func latBucketIndex(v int64) int {
	if v < latSubCount {
		return int(v)
	}
	major := bits.Len64(uint64(v)) // >= latSubBits+1
	shift := uint(major - 1 - latSubBits)
	sub := int(uint64(v)>>shift) & (latSubCount - 1)
	return (major-latSubBits)*latSubCount + sub
}

// latBucketBound returns the bucket's inclusive upper bound — what a
// quantile extraction reports for ranks landing in it.
func latBucketBound(idx int) int64 {
	if idx < latSubCount {
		return int64(idx)
	}
	major := idx/latSubCount + latSubBits
	sub := idx % latSubCount
	shift := uint(major - 1 - latSubBits)
	return int64((uint64(latSubCount+sub+1) << shift) - 1)
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *LatencyHist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[latBucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples observed so far.
func (h *LatencyHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the inclusive upper bound of the bucket holding the
// q-quantile sample (q in [0,1]); 0 when the histogram is empty. The answer
// never understates the true quantile by more than one bucket width
// (~6.3%), and never overstates the observed max.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Metrics().quantile(q)
}

// LatencyMetrics is a histogram snapshot with the SLO quantiles
// pre-extracted; the raw buckets stay internal (960 series per histogram
// would swamp the exposition).
type LatencyMetrics struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`

	counts []int64 // bucket snapshot backing quantile()
}

// Metrics snapshots the histogram and extracts p50/p95/p99/p99.9. Safe
// during concurrent Observe; the cut is per-counter, not global, which is
// fine for monitoring.
func (h *LatencyHist) Metrics() LatencyMetrics {
	if h == nil {
		return LatencyMetrics{}
	}
	m := LatencyMetrics{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
		counts: make([]int64, latBuckets),
	}
	for i := range h.buckets {
		m.counts[i] = h.buckets[i].Load()
	}
	m.P50 = m.quantile(0.50)
	m.P95 = m.quantile(0.95)
	m.P99 = m.quantile(0.99)
	m.P999 = m.quantile(0.999)
	return m
}

// quantile walks the snapshot's cumulative counts to the q-quantile rank.
// The reported bound is clamped to the observed max so a sparse top bucket
// cannot overstate the tail.
func (m LatencyMetrics) quantile(q float64) int64 {
	// Total from the snapshot itself: under concurrent Observe the count
	// field may run ahead of the bucket copies, and the rank must be
	// consistent with what the walk can actually find.
	var total int64
	for _, c := range m.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i, c := range m.counts {
		seen += c
		if seen >= rank {
			bound := latBucketBound(i)
			if m.Max > 0 && bound > m.Max {
				return m.Max
			}
			return bound
		}
	}
	return m.Max
}
