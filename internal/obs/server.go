package obs

import "sync/atomic"

// ServerStats holds the serving layer's counters and gauges: the query
// funnel (requests in, cache hits / single-flight joins / admission
// rejections out), the write path (batches committed and the operations
// they carried), and the gauges a dashboard watches (in-flight mines,
// admission queue depth, current epoch, query-cache residency). Same
// discipline as the mining sections: atomics only, nil-registry methods
// no-op, and none of it ever feeds back into a mining result.
type ServerStats struct {
	active atomic.Bool // any server traffic at all; gates the Metrics section

	queries        atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	sharedFlights  atomic.Int64
	rejected       atomic.Int64
	inflight       atomic.Int64 // gauge
	queued         atomic.Int64 // gauge
	writeBatches   atomic.Int64
	writeOps       atomic.Int64
	epoch          atomic.Int64 // gauge
	cacheEntries   atomic.Int64 // gauge
	cacheEvictions atomic.Int64
}

// AddServerQuery records one /mine request accepted for processing.
func (r *Registry) AddServerQuery() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.queries.Add(1)
}

// AddCacheHit records one query answered from the epoch-keyed result cache.
func (r *Registry) AddCacheHit() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.cacheHits.Add(1)
}

// AddCacheMiss records one query that had to run a mine.
func (r *Registry) AddCacheMiss() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.cacheMisses.Add(1)
}

// AddSharedFlight records one query that joined an identical in-flight mine
// instead of starting its own.
func (r *Registry) AddSharedFlight() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.sharedFlights.Add(1)
}

// AddRejected records one query refused by admission control.
func (r *Registry) AddRejected() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.rejected.Add(1)
}

// IncInflight / DecInflight move the in-flight-mines gauge.
func (r *Registry) IncInflight() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.inflight.Add(1)
}

// DecInflight is IncInflight's paired decrement.
func (r *Registry) DecInflight() {
	if r == nil {
		return
	}
	r.server.inflight.Add(-1)
}

// IncQueued / DecQueued move the admission-queue-depth gauge.
func (r *Registry) IncQueued() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.queued.Add(1)
}

// DecQueued is IncQueued's paired decrement.
func (r *Registry) DecQueued() {
	if r == nil {
		return
	}
	r.server.queued.Add(-1)
}

// AddWriteBatch records one committed write batch of ops operations,
// feeding the batch-size histogram. A sharded server commits per shard, so
// a request touching three shards records three batches here (one per
// commit loop) alongside the per-shard split in AddShardWriteBatch.
func (r *Registry) AddWriteBatch(ops int64) {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.writeBatches.Add(1)
	r.server.writeOps.Add(ops)
	r.batchSize.Observe(ops)
}

// SetEpoch publishes the server's current epoch: the one index epoch on an
// unsharded server, the sum of the per-shard epochs on a sharded one (the
// vector itself goes through SetShardEpoch).
func (r *Registry) SetEpoch(epoch uint64) {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.epoch.Store(int64(epoch))
}

// SetQueryCacheEntries publishes the query cache's residency gauge.
func (r *Registry) SetQueryCacheEntries(n int64) {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.cacheEntries.Store(n)
}

// AddQueryCacheEviction records one entry evicted from the query cache.
func (r *Registry) AddQueryCacheEviction() {
	if r == nil {
		return
	}
	r.server.active.Store(true)
	r.server.cacheEvictions.Add(1)
}

// ServerMetrics is the serving section of a Metrics snapshot, present only
// once any server hook has fired.
type ServerMetrics struct {
	Queries        int64       `json:"queries"`
	CacheHits      int64       `json:"cache_hits"`
	CacheMisses    int64       `json:"cache_misses"`
	SharedFlights  int64       `json:"shared_flights"`
	Rejected       int64       `json:"rejected"`
	Inflight       int64       `json:"inflight"`
	Queued         int64       `json:"queued"`
	WriteBatches   int64       `json:"write_batches"`
	WriteOps       int64       `json:"write_ops"`
	Epoch          int64       `json:"epoch"`
	CacheEntries   int64       `json:"query_cache_entries"`
	CacheEvictions int64       `json:"query_cache_evictions"`
	BatchSize      HistMetrics `json:"write_batch_size"`

	// RequestNs holds the per-class (read/write) request latency
	// histograms and StageNs the per-stage decomposition (stage.go), both
	// with p50/p95/p99/p99.9 pre-extracted. Flattened to the exposition as
	// server_request_ns_<class>_<q> and server_stage_ns_<stage>_<q> lines.
	RequestNs map[string]LatencyMetrics `json:"request_ns,omitempty"`
	StageNs   map[string]LatencyMetrics `json:"stage_ns,omitempty"`

	// Shards carries the per-shard counter split, in shard order; absent
	// for unsharded servers. Flattened to the exposition as
	// server_shards_<i>_<field> lines.
	Shards []ShardMetrics `json:"shards,omitempty"`
}

// serverMetrics snapshots the server section; nil when no server traffic
// has been recorded, so CLI runs keep their exposition unchanged.
func (r *Registry) serverMetrics() *ServerMetrics {
	if !r.server.active.Load() {
		return nil
	}
	requests, stages := r.stageMetrics()
	return &ServerMetrics{
		RequestNs:      requests,
		StageNs:        stages,
		Queries:        r.server.queries.Load(),
		CacheHits:      r.server.cacheHits.Load(),
		CacheMisses:    r.server.cacheMisses.Load(),
		SharedFlights:  r.server.sharedFlights.Load(),
		Rejected:       r.server.rejected.Load(),
		Inflight:       r.server.inflight.Load(),
		Queued:         r.server.queued.Load(),
		WriteBatches:   r.server.writeBatches.Load(),
		WriteOps:       r.server.writeOps.Load(),
		Epoch:          r.server.epoch.Load(),
		CacheEntries:   r.server.cacheEntries.Load(),
		CacheEvictions: r.server.cacheEvictions.Load(),
		BatchSize:      r.batchSize.Metrics(),
		Shards:         r.shardMetrics(),
	}
}
