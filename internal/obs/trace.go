package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one structured trace record, written as a single JSON line.
// Kind is always set; the remaining fields are populated per kind:
//
//	descend    — items, est, depth, subtree: the enumeration entered a node
//	verdict    — items, est, verdict (accepted | uncertain | false_drop |
//	             below_tau), plus exact when a probe settled it
//	checkcount — items, est, count, flag (nonfrequent | uncertain | actual |
//	             est_bound): the dual filter's certificate for a candidate
//	probe      — items, fetched, exact: one Probe refinement
//	reverify   — items, est, verdict (pruned | survivor | accepted |
//	             false_drop): adaptive phase-3 outcome
//	phase      — phase, dur_ns: a timed stage completed
//
// Subtree is the enumeration seq of the level-1 subtree the event belongs
// to (-1 for root-level and non-enumeration events), which is how a merged
// multi-worker trace is re-ordered into the sequential enumeration order.
//
// The serving layer adds three kinds, all carrying the request ID in Req so
// one slow request reconstructs end to end across the trace:
//
//	request — Req, Verdict (hit | miss | shared | applied | ...), DurNs:
//	          one served request completed
//	apply   — Req, Shard, Count: one request's sub-batch applied by one
//	          shard's commit loop
//	commit  — Shard, Count, DurNs: one per-shard commit batch (possibly
//	          covering several requests' sub-batches)
//
// The sharded index adds one more, from the count fan-out:
//
//	shardcount — Shard, Items, Est: one shard's contribution to a
//	             scatter-gather support estimate
//
// Shard tags the event's shard via pointer so shard 0 survives omitempty;
// mining events leave it nil.
type Event struct {
	Seq     int64   `json:"seq"`
	Kind    string  `json:"kind"`
	Subtree int     `json:"subtree"`
	Depth   int     `json:"depth,omitempty"`
	Items   []int32 `json:"items,omitempty"`
	Est     int     `json:"est,omitempty"`
	Count   int     `json:"count,omitempty"`
	Exact   int     `json:"exact,omitempty"`
	Fetched int     `json:"fetched,omitempty"`
	Flag    string  `json:"flag,omitempty"`
	Verdict string  `json:"verdict,omitempty"`
	Phase   string  `json:"phase,omitempty"`
	DurNs   int64   `json:"dur_ns,omitempty"`
	Req     string  `json:"req,omitempty"`
	Shard   *int    `json:"shard,omitempty"`
}

// ShardTag boxes a shard index for Event.Shard.
func ShardTag(s int) *int { return &s }

// FlagName converts a dual-filter CheckCount flag (-1/0/1/2) to its trace
// name.
func FlagName(flag int) string {
	switch flag {
	case -1:
		return "nonfrequent"
	case 0:
		return "uncertain"
	case 1:
		return "actual"
	case 2:
		return "est_bound"
	default:
		return "unknown"
	}
}

// Tracer writes sampled events as JSON lines. Emit is safe for concurrent
// use: sampling is an atomic counter and the encoder is mutex-guarded.
// Tracing perturbs only wall-clock time, never results — events are
// observations of work the engine does identically with tracing off.
type Tracer struct {
	every int64        // keep every N-th event; 1 keeps all
	seen  atomic.Int64 // events offered
	kept  atomic.Int64 // events written

	mu  sync.Mutex
	enc *json.Encoder
	err error // first write error; tracing goes quiet after it
}

// NewTracer returns a tracer writing to w, keeping every every-th event
// (values < 1 mean keep all). The caller owns w and closes it after the
// run; Tracer never does.
func NewTracer(w io.Writer, every int) *Tracer {
	if every < 1 {
		every = 1
	}
	return &Tracer{every: int64(every), enc: json.NewEncoder(w)}
}

// SetTracer attaches a tracer to the registry. Call before the run; not
// synchronized with concurrent Emit.
func (r *Registry) SetTracer(t *Tracer) {
	if r == nil {
		return
	}
	r.tracer = t
}

// Tracing reports whether events would be recorded. Hook sites use it to
// skip building an Event at all when tracing is off.
func (r *Registry) Tracing() bool { return r != nil && r.tracer != nil }

// Emit offers an event to the tracer; a nil registry or absent tracer
// drops it for free. The event's Seq is stamped with its global offer
// order, so a sampled trace still shows how far apart kept events were.
func (r *Registry) Emit(e Event) {
	if r == nil || r.tracer == nil {
		return
	}
	r.tracer.emit(e)
}

func (t *Tracer) emit(e Event) {
	n := t.seen.Add(1)
	if n%t.every != 0 {
		return
	}
	e.Seq = n
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(e); err != nil {
		t.err = err
		return
	}
	t.kept.Add(1)
}

// TraceMetrics summarizes tracer activity inside a Metrics snapshot.
type TraceMetrics struct {
	Seen int64 `json:"seen"`
	Kept int64 `json:"kept"`
}

func (t *Tracer) metrics() TraceMetrics {
	return TraceMetrics{Seen: t.seen.Load(), Kept: t.kept.Load()}
}
