package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistry drives every method through a nil receiver: the disabled
// state must be completely inert, and Metrics on it must be the zero value.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.BindIO(nil)
	r.SetTracer(nil)
	if r.Tracing() {
		t.Error("nil registry reports Tracing() = true")
	}
	tick := r.Tick()
	if !tick.t.IsZero() {
		t.Error("nil registry handed out a live tick")
	}
	r.PhaseDone(PhaseMine, tick)
	r.AddFunnel(Funnel{Candidates: 1})
	r.AddKernel(KernelSample{Evals: 1})
	r.ObserveAndDepth(3)
	r.AddPool(1, 1)
	r.AddScanBatch(10, 2)
	r.Emit(Event{Kind: "descend"})
	r.Publish("nil-registry")
	m := r.Metrics()
	if m.Funnel != (FunnelMetrics{}) || m.Kernel != (KernelMetrics{}) ||
		m.Phases != nil || m.IO != nil || m.Trace != nil {
		t.Errorf("nil registry Metrics() = %+v, want zero", m)
	}
}

// TestRegistryCounters checks that each Add method lands in the matching
// snapshot section.
func TestRegistryCounters(t *testing.T) {
	r := New()
	r.AddFunnel(Funnel{Candidates: 5, CertifiedActual: 2, CertifiedEst: 1, Uncertain: 2, NonFrequent: 3,
		ProbedPatterns: 1, FalseDrops: 1, Verified: 4, Patterns: 4})
	r.AddFunnel(Funnel{Candidates: 1})
	r.AddKernel(KernelSample{Evals: 7, EarlyExits: 3, AndsSparse: 4, AndsDense: 6,
		WordsSparse: 40, WordsDense: 600, PosCacheHits: 5, PosCacheMisses: 2})
	r.AddPool(10, 4)
	r.AddScanBatch(100, 9)
	r.AddScanBatch(50, 1)

	m := r.Metrics()
	if m.Funnel.Candidates != 6 || m.Funnel.CertifiedActual != 2 || m.Funnel.NonFrequent != 3 {
		t.Errorf("funnel = %+v", m.Funnel)
	}
	if m.Kernel.Evals != 7 || m.Kernel.WordsDense != 600 || m.Kernel.PosCacheMisses != 2 {
		t.Errorf("kernel = %+v", m.Kernel)
	}
	if m.Cache.PoolGets != 10 || m.Cache.PoolMisses != 4 {
		t.Errorf("cache = %+v", m.Cache)
	}
	if m.Funnel.ScanBatches != 2 || m.Funnel.ScanTx != 150 || m.Funnel.ScanMatches != 10 {
		t.Errorf("scan tallies = %+v", m.Funnel)
	}
}

// TestPhaseTimers checks that PhaseDone accumulates time and call counts
// under the right snake_case keys and ignores zero ticks.
func TestPhaseTimers(t *testing.T) {
	r := New()
	tick := r.Tick()
	time.Sleep(time.Millisecond)
	r.PhaseDone(PhaseLevel1, tick)
	r.PhaseDone(PhaseLevel1, r.Tick())
	r.PhaseDone(PhaseScanRefine, Tick{}) // zero tick: ignored

	m := r.Metrics()
	ph, ok := m.Phases["level1"]
	if !ok || ph.Calls != 2 || ph.Ns <= 0 {
		t.Errorf(`Phases["level1"] = %+v, ok=%v; want 2 calls, positive ns`, ph, ok)
	}
	if _, ok := m.Phases["scan_refine"]; ok {
		t.Error("zero tick recorded a scan_refine phase")
	}
}

// TestHistogram pins the power-of-two bucketing: bucket keys are the
// inclusive upper bounds 2^i - 1 and negatives clamp to the zero bucket.
func TestHistogram(t *testing.T) {
	var h HistStats
	h.Observe(0)
	h.Observe(-5) // clamps to 0
	h.Observe(1)
	h.Observe(7)
	h.Observe(8)

	m := h.Metrics()
	if m.Count != 5 || m.Sum != 16 {
		t.Errorf("count=%d sum=%d, want 5/16", m.Count, m.Sum)
	}
	want := map[string]int64{"0": 2, "1": 1, "7": 1, "15": 1}
	for k, n := range want {
		if m.Buckets[k] != n {
			t.Errorf("bucket %q = %d, want %d", k, m.Buckets[k], n)
		}
	}
	if len(m.Buckets) != len(want) {
		t.Errorf("buckets = %v, want exactly %v", m.Buckets, want)
	}
}

// TestTracerSampling checks the keep-every-Nth contract and the Seq
// stamping of kept events.
func TestTracerSampling(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTracer(NewTracer(&buf, 3))
	if !r.Tracing() {
		t.Fatal("Tracing() = false with a tracer attached")
	}
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: "descend", Subtree: -1})
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // events 3, 6, 9
		t.Fatalf("kept %d events, want 3:\n%s", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not an Event: %v", err)
	}
	if e.Seq != 3 || e.Kind != "descend" {
		t.Errorf("first kept event = %+v, want seq 3 kind descend", e)
	}
	m := r.Metrics()
	if m.Trace == nil || m.Trace.Seen != 10 || m.Trace.Kept != 3 {
		t.Errorf("trace metrics = %+v, want seen 10 kept 3", m.Trace)
	}
}

// TestTracerConcurrent hammers Emit from several goroutines; -race plus the
// seen/kept accounting pin the mutex/atomic split.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTracer(NewTracer(&buf, 2))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				r.Emit(Event{Kind: "descend"})
			}
		}()
	}
	wg.Wait()
	m := r.Metrics()
	if m.Trace.Seen != 1000 || m.Trace.Kept != 500 {
		t.Errorf("seen=%d kept=%d, want 1000/500", m.Trace.Seen, m.Trace.Kept)
	}
	if n := strings.Count(buf.String(), "\n"); int64(n) != m.Trace.Kept {
		t.Errorf("wrote %d lines, kept says %d", n, m.Trace.Kept)
	}
}

// TestFlagName covers the CheckCount flag naming.
func TestFlagName(t *testing.T) {
	names := map[int]string{-1: "nonfrequent", 0: "uncertain", 1: "actual", 2: "est_bound", 9: "unknown"}
	for flag, want := range names {
		if got := FlagName(flag); got != want {
			t.Errorf("FlagName(%d) = %q, want %q", flag, got, want)
		}
	}
}

// TestPhaseString covers the phase names used as metric keys.
func TestPhaseString(t *testing.T) {
	want := []string{"mine", "level1", "enumerate", "scan_refine", "fold", "reverify"}
	for p, name := range want {
		if got := Phase(p).String(); got != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, name)
		}
	}
	if got := Phase(99).String(); got != "unknown" {
		t.Errorf("out-of-range phase = %q, want unknown", got)
	}
}
