package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
)

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// holds values whose upper bound is 2^i - 1 (bucket 0 holds only zero);
// 63 buckets cover the whole nonnegative int64 range.
const histBuckets = 63

// HistStats is a lock-free histogram over nonnegative int64 samples with
// power-of-two bucket bounds — coarse, but constant-time and race-safe,
// which is what a hot path can afford. The zero value is ready to use. For
// latency SLOs, where an octave-wide bucket is too coarse to gate on, use
// LatencyHist instead.
type HistStats struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample. Negative samples are clamped to zero; a nil
// receiver no-ops, same as every other sink in this package.
func (h *HistStats) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistMetrics is a histogram snapshot: Buckets maps the bucket's inclusive
// upper bound (as a decimal string, so it survives JSON) to its sample
// count. Empty buckets are omitted. P50/P95/P99 are the upper bounds of the
// buckets holding those ranks — coarse (each bucket spans an octave), but
// enough to spot an order-of-magnitude move on a dashboard; they flatten to
// `..._p50` lines on /metrics alongside the buckets.
type HistMetrics struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	P50     int64            `json:"p50"`
	P95     int64            `json:"p95"`
	P99     int64            `json:"p99"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Metrics snapshots the histogram; nil-receiver-safe.
func (h *HistStats) Metrics() HistMetrics {
	if h == nil {
		return HistMetrics{}
	}
	m := HistMetrics{Count: h.count.Load(), Sum: h.sum.Load()}
	counts := make([]int64, histBuckets)
	var total int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		counts[i] = n
		total += n
		if n == 0 {
			continue
		}
		if m.Buckets == nil {
			m.Buckets = make(map[string]int64)
		}
		bound := int64(1)<<uint(i) - 1
		m.Buckets[strconv.FormatInt(bound, 10)] = n
	}
	m.P50 = histQuantile(counts, total, 0.50)
	m.P95 = histQuantile(counts, total, 0.95)
	m.P99 = histQuantile(counts, total, 0.99)
	return m
}

// histQuantile returns the inclusive upper bound of the power-of-two bucket
// holding the q-quantile rank of the snapshot; 0 when empty.
func histQuantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return int64(1)<<uint(i) - 1
		}
	}
	return int64(1)<<uint(len(counts)-1) - 1
}
