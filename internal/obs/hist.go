package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
)

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// holds values whose upper bound is 2^i - 1 (bucket 0 holds only zero);
// 63 buckets cover the whole nonnegative int64 range.
const histBuckets = 63

// HistStats is a lock-free histogram over nonnegative int64 samples with
// power-of-two bucket bounds — coarse, but constant-time and race-safe,
// which is what a hot path can afford. The zero value is ready to use.
type HistStats struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *HistStats) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistMetrics is a histogram snapshot: Buckets maps the bucket's inclusive
// upper bound (as a decimal string, so it survives JSON) to its sample
// count. Empty buckets are omitted.
type HistMetrics struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Metrics snapshots the histogram.
func (h *HistStats) Metrics() HistMetrics {
	m := HistMetrics{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if m.Buckets == nil {
			m.Buckets = make(map[string]int64)
		}
		bound := int64(1)<<uint(i) - 1
		m.Buckets[strconv.FormatInt(bound, 10)] = n
	}
	return m
}
