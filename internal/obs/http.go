package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// Live exposition: the registry publishes itself as an expvar (so
// /debug/vars works unchanged), and MetricsHandler renders every published
// expvar — the registry included — as Prometheus text format by flattening
// its JSON to numeric leaves. NewServeMux bundles /metrics, /debug/vars and
// net/http/pprof, which is what bbsmine/bbsbench serve under -http.

// Publish registers the registry under name in the process-wide expvar
// namespace. expvar panics on duplicate names, so publish each name once
// per process; Publish guards only against the common case of re-publishing
// the same name.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() any { return r.Metrics() }))
	}
}

// MetricsHandler serves every published expvar in Prometheus text format:
// each numeric leaf of each var's JSON value becomes one
// `name_path_to_leaf value` line, names sanitized to [a-zA-Z0-9_:] and
// sorted. Non-numeric leaves and oversized arrays (memstats.PauseNs and
// friends) are skipped.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var lines []string
		expvar.Do(func(kv expvar.KeyValue) {
			var v any
			if err := json.Unmarshal([]byte(kv.Value.String()), &v); err != nil {
				return // non-JSON var (shouldn't happen); skip it
			}
			flattenMetric(sanitizeMetricName(kv.Key), v, &lines)
		})
		sort.Strings(lines)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	})
}

// flattenArrayMax bounds how many elements of a JSON array are flattened;
// beyond it the array is dropped (runtime memstats carry 256-entry tables
// nobody wants as 256 series).
const flattenArrayMax = 16

func flattenMetric(name string, v any, lines *[]string) {
	switch x := v.(type) {
	case float64:
		*lines = append(*lines, fmt.Sprintf("%s %v", name, x))
	case bool:
		n := 0
		if x {
			n = 1
		}
		*lines = append(*lines, fmt.Sprintf("%s %d", name, n))
	case map[string]any:
		for k, e := range x {
			flattenMetric(name+"_"+sanitizeMetricName(k), e, lines)
		}
	case []any:
		if len(x) > flattenArrayMax {
			return
		}
		for i, e := range x {
			flattenMetric(fmt.Sprintf("%s_%d", name, i), e, lines)
		}
	}
}

// sanitizeMetricName maps a JSON key to a Prometheus-safe metric name
// fragment.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// NewServeMux returns the -http mux: /metrics (Prometheus text),
// /debug/vars (expvar JSON) and /debug/pprof/* (net/http/pprof).
func NewServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
