package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestLatBucketBoundsCoverValues(t *testing.T) {
	// Every sample must land in a bucket whose bound is >= the sample and
	// within the promised relative error.
	values := []int64{0, 1, 5, 15, 16, 17, 100, 1023, 1024, 4096, 123456789, 1 << 40, 1<<62 + 12345}
	for _, v := range values {
		idx := latBucketIndex(v)
		bound := latBucketBound(idx)
		if bound < v {
			t.Errorf("value %d: bucket %d bound %d understates it", v, idx, bound)
		}
		if v >= latSubCount {
			// Relative width <= 2^-latSubBits: bound-v < v/latSubCount + 1.
			if float64(bound-v) > float64(v)/latSubCount+1 {
				t.Errorf("value %d: bound %d overstates by %d (> %.0f)", v, bound, bound-v, float64(v)/latSubCount+1)
			}
		} else if bound != v {
			t.Errorf("small value %d: want exact bucket, got bound %d", v, bound)
		}
		if idx > 0 && latBucketBound(idx-1) >= v {
			t.Errorf("value %d: previous bucket %d bound %d should be < value", v, idx-1, latBucketBound(idx-1))
		}
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	// Against an exact sorted-sample quantile, the histogram answer must be
	// >= the true value and within ~6.3% + one.
	rng := rand.New(rand.NewSource(42))
	var h LatencyHist
	samples := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 2e6) // latency-shaped: long tail around 2ms
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	m := h.Metrics()
	if m.Count != 10000 {
		t.Fatalf("count = %d, want 10000", m.Count)
	}
	for _, tc := range []struct {
		q    float64
		got  int64
		name string
	}{
		{0.50, m.P50, "p50"}, {0.95, m.P95, "p95"}, {0.99, m.P99, "p99"}, {0.999, m.P999, "p999"},
	} {
		rank := int(tc.q*float64(len(samples)) + 0.5)
		if rank >= len(samples) {
			rank = len(samples) - 1
		}
		exact := samples[rank]
		if tc.got < exact {
			t.Errorf("%s = %d understates exact %d", tc.name, tc.got, exact)
		}
		if float64(tc.got) > float64(exact)*(1+1.0/latSubCount)+1 {
			t.Errorf("%s = %d overstates exact %d beyond one bucket width", tc.name, tc.got, exact)
		}
	}
	if m.Max != samples[len(samples)-1] {
		t.Errorf("max = %d, want %d", m.Max, samples[len(samples)-1])
	}
	if m.P999 > m.Max {
		t.Errorf("p999 %d exceeds max %d", m.P999, m.Max)
	}
}

func TestLatencyHistEdgeCases(t *testing.T) {
	var nilHist *LatencyHist
	nilHist.Observe(5) // must not panic
	if got := nilHist.Quantile(0.5); got != 0 {
		t.Errorf("nil hist quantile = %d, want 0", got)
	}
	if got := nilHist.Metrics(); got.Count != 0 {
		t.Errorf("nil hist metrics count = %d", got.Count)
	}

	var h LatencyHist
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty hist p99 = %d, want 0", got)
	}
	h.Observe(-7) // clamps to zero
	h.Observe(0)
	if got := h.Quantile(1.0); got != 0 {
		t.Errorf("all-zero hist p100 = %d, want 0", got)
	}
	var one LatencyHist
	one.Observe(12345)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := one.Quantile(q); got != 12345 {
			t.Errorf("single-sample q%.3f = %d, want 12345 (max clamp)", q, got)
		}
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	m := h.Metrics()
	if m.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", m.Count, goroutines*per)
	}
	var total int64
	for _, c := range m.counts {
		total += c
	}
	if total != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", total, goroutines*per)
	}
}

func TestHistStatsQuantiles(t *testing.T) {
	var h HistStats
	for i := 0; i < 98; i++ {
		h.Observe(10) // bucket bound 15
	}
	h.Observe(1000) // bucket bound 1023
	h.Observe(1000)
	m := h.Metrics()
	if m.P50 != 15 {
		t.Errorf("p50 = %d, want 15", m.P50)
	}
	if m.P99 != 1023 {
		t.Errorf("p99 = %d, want 1023", m.P99)
	}
	var nilHist *HistStats
	nilHist.Observe(3) // nil-receiver no-op
	if got := nilHist.Metrics(); got.Count != 0 || got.P50 != 0 {
		t.Errorf("nil HistStats metrics = %+v", got)
	}
}

func TestRequestLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewRequestLog(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				l.Log(RequestRecord{ID: "r", Class: "read", Verdict: "miss", TotalNs: int64(i*25 + j)})
			}
		}(i)
	}
	wg.Wait()
	if l.Lines() != 100 {
		t.Fatalf("lines = %d, want 100", l.Lines())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 100 {
		t.Fatalf("wrote %d lines, want 100", len(lines))
	}
	for _, line := range lines {
		var rec RequestRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable request-log line %q: %v", line, err)
		}
		if rec.ID != "r" || rec.Class != "read" {
			t.Fatalf("mangled record: %+v", rec)
		}
	}

	var nilLog *RequestLog
	nilLog.Log(RequestRecord{ID: "x"}) // must not panic
	if nilLog.Lines() != 0 {
		t.Fatal("nil log reported lines")
	}
}

func TestStageMetricsExposition(t *testing.T) {
	r := New()
	var nilReg *Registry
	nilReg.ObserveStage(StageMine, 5)             // nil-safe
	nilReg.ObserveRequestLatency(ClassRead, 5)    // nil-safe
	r.ObserveStage(Stage(-1), 5)                  // out of range: dropped
	r.ObserveRequestLatency(RequestClass(99), 5)  // out of range: dropped
	r.ObserveStage(StageMine, 1_000_000)          // 1ms
	r.ObserveStage(StageQueue, 5_000)             // 5us
	r.ObserveRequestLatency(ClassRead, 1_200_000) // 1.2ms

	m := r.Metrics()
	if m.Server == nil {
		t.Fatal("server section absent after stage observations")
	}
	mine, ok := m.Server.StageNs["mine"]
	if !ok || mine.Count != 1 {
		t.Fatalf("stage mine = %+v", m.Server.StageNs)
	}
	if mine.P99 < 1_000_000 || float64(mine.P99) > 1_000_000*1.07 {
		t.Errorf("stage mine p99 = %d, want ~1ms", mine.P99)
	}
	if _, ok := m.Server.StageNs["render"]; ok {
		t.Error("unobserved stage render should be omitted")
	}
	read, ok := m.Server.RequestNs["read"]
	if !ok || read.Count != 1 {
		t.Fatalf("request class read = %+v", m.Server.RequestNs)
	}
	if _, ok := m.Server.RequestNs["write"]; ok {
		t.Error("unobserved class write should be omitted")
	}
	// The stage names used on the wire are pinned: the Server-Timing
	// header, /metrics lines and request-log fields all derive from them.
	wantNames := []string{"queue", "cache", "bind", "mine", "render"}
	for i, s := range []Stage{StageQueue, StageCache, StageBind, StageMine, StageRender} {
		if s.String() != wantNames[i] {
			t.Errorf("stage %d name = %q, want %q", i, s.String(), wantNames[i])
		}
	}
}
