package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// RequestRecord is one served request, written to the request log as a
// single JSON line at completion. It is the end-to-end reconstruction
// record: the request ID ties it to the tracer's per-shard events and the
// client's own measurement, the stage timings decompose its latency, and
// the epoch vector pins exactly which data it saw.
type RequestRecord struct {
	// ID is the request ID: the client's X-Request-ID if it sent one,
	// otherwise minted at the HTTP layer.
	ID string `json:"id"`
	// Class is "read" (/mine) or "write" (/txns).
	Class string `json:"class"`
	// Verdict is how the request was answered: reads report hit | miss |
	// shared | rejected | invalid | error, writes report applied |
	// rejected | invalid | error.
	Verdict string `json:"verdict"`
	// Scheme and Tau identify a read's query (absent on writes).
	Scheme string `json:"scheme,omitempty"`
	Tau    int    `json:"tau,omitempty"`
	// Epoch is the epoch sum the request saw (reads) or produced (writes);
	// Epochs carries the per-shard vector on sharded engines.
	Epoch  uint64   `json:"epoch"`
	Epochs []uint64 `json:"epochs,omitempty"`
	// Patterns is a read's answer size.
	Patterns int `json:"patterns,omitempty"`
	// Inserted/Deleted are a write's operation counts, and Shards the
	// shards its sub-batches landed on, in shard order.
	Inserted int   `json:"inserted,omitempty"`
	Deleted  int   `json:"deleted,omitempty"`
	Shards   []int `json:"shards,omitempty"`
	// The stage decomposition, ns (stage.go); stages the request skipped
	// are zero and omitted. CommitNs is the write-path analogue: time from
	// enqueue to the last involved shard's commit.
	QueueNs  int64 `json:"queue_ns,omitempty"`
	CacheNs  int64 `json:"cache_ns,omitempty"`
	BindNs   int64 `json:"bind_ns,omitempty"`
	MineNs   int64 `json:"mine_ns,omitempty"`
	RenderNs int64 `json:"render_ns,omitempty"`
	CommitNs int64 `json:"commit_ns,omitempty"`
	// TotalNs is the whole engine-side request latency, which bounds the
	// stage sum from above.
	TotalNs int64 `json:"total_ns"`
	// Err is the error text of a failed request.
	Err string `json:"err,omitempty"`
}

// RequestLog writes one RequestRecord per line as JSON. Log is safe for
// concurrent use (mutex-guarded encoder, same discipline as Tracer) and a
// nil *RequestLog drops records for free, so the engine logs
// unconditionally. The caller owns w and closes it after the server stops.
type RequestLog struct {
	lines atomic.Int64

	mu  sync.Mutex
	enc *json.Encoder
	err error // first write error; logging goes quiet after it
}

// NewRequestLog returns a request log writing to w.
func NewRequestLog(w io.Writer) *RequestLog {
	return &RequestLog{enc: json.NewEncoder(w)}
}

// Log writes one record; nil-receiver-safe.
func (l *RequestLog) Log(rec RequestRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(rec); err != nil {
		l.err = err
		return
	}
	l.lines.Add(1)
}

// Lines returns the number of records written so far.
func (l *RequestLog) Lines() int64 {
	if l == nil {
		return 0
	}
	return l.lines.Load()
}
