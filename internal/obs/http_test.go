package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsHandler publishes a registry and checks the Prometheus text
// rendering: flattened snake_case names, numeric leaves only, sorted output,
// and the standard content type.
func TestMetricsHandler(t *testing.T) {
	r := New()
	r.AddFunnel(Funnel{Candidates: 42, FalseDrops: 3})
	r.AddKernel(KernelSample{Evals: 7})
	r.ObserveAndDepth(5)
	r.Publish("testreg")
	r.Publish("testreg") // second publish must not panic

	mux := NewServeMux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	out := string(body)
	for _, want := range []string{
		"testreg_funnel_candidates 42",
		"testreg_funnel_false_drops 3",
		"testreg_kernel_evals 7",
		"testreg_and_depth_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("output not sorted: %q before %q", lines[i-1], lines[i])
			break
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("GET /debug/pprof/ = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Errorf("GET /debug/vars = %d", rec.Code)
	}
}

// TestFlattenMetric covers the leaf cases directly: bools, nested maps,
// small arrays, and the big-array cutoff.
func TestFlattenMetric(t *testing.T) {
	var lines []string
	flattenMetric("m", map[string]any{
		"n":    float64(3),
		"ok":   true,
		"sub":  map[string]any{"x": float64(1)},
		"arr":  []any{float64(7), float64(8)},
		"big":  make([]any, flattenArrayMax+1),
		"text": "skipped",
	}, &lines)
	got := strings.Join(lines, "\n")
	for _, want := range []string{"m_n 3", "m_ok 1", "m_sub_x 1", "m_arr_0 7", "m_arr_1 8"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
	if strings.Contains(got, "m_big") || strings.Contains(got, "m_text") {
		t.Errorf("big array or string leaked into %q", got)
	}
}

// TestSanitizeMetricName pins the character mapping.
func TestSanitizeMetricName(t *testing.T) {
	if got := sanitizeMetricName("a-b.c/d:e_f9"); got != "a_b_c_d:e_f9" {
		t.Errorf("sanitizeMetricName = %q", got)
	}
}
