package txdb

import (
	"fmt"
	"sort"
)

// concatStore presents per-shard stores as one logical Store in block
// order: part 0's rows at positions [0, n0), part 1's at [n0, n0+n1), and
// so on — the same row order sigfile.Merge gives the merged index, so
// position i of the concatenated store is bit i of every merged slice.
type concatStore struct {
	parts   []Store
	offsets []int // offsets[i] is the first global position of part i
	n       int
}

// Concat builds a read-only Store over the parts in block order. Part
// lengths are captured at construction: the concatenation is meant for a
// snapshot's lifetime, not for stores that keep growing underneath it.
// A single part is returned as-is.
func Concat(parts ...Store) Store {
	if len(parts) == 1 {
		return parts[0]
	}
	c := &concatStore{parts: parts, offsets: make([]int, len(parts))}
	for i, p := range parts {
		c.offsets[i] = c.n
		c.n += p.Len()
	}
	return c
}

// Len implements Store.
func (c *concatStore) Len() int { return c.n }

// Scan implements Store: one sequential pass per part, in part order, with
// global positions. Each part charges its own sequential pass, so the
// accounting reflects the N per-shard scans that actually happen.
func (c *concatStore) Scan(fn func(pos int, tx Transaction) bool) error {
	stop := false
	for i, p := range c.parts {
		if stop {
			break
		}
		off := c.offsets[i]
		captured := c.n - off
		if i+1 < len(c.offsets) {
			captured = c.offsets[i+1] - off
		}
		if err := p.Scan(func(pos int, tx Transaction) bool {
			if pos >= captured { // ignore rows appended after construction
				return false
			}
			if !fn(off+pos, tx) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return fmt.Errorf("txdb: concat scan part %d: %w", i, err)
		}
	}
	return nil
}

// Get implements Store, routing the global position to its part.
func (c *concatStore) Get(pos int) (Transaction, error) {
	if pos < 0 || pos >= c.n {
		return Transaction{}, fmt.Errorf("txdb: position %d out of range [0,%d)", pos, c.n)
	}
	i := sort.Search(len(c.offsets), func(j int) bool { return c.offsets[j] > pos }) - 1
	return c.parts[i].Get(pos - c.offsets[i])
}

// Append implements Store; a concatenation is read-only — writes go to the
// owning shard.
func (c *concatStore) Append(Transaction) error {
	return fmt.Errorf("txdb: append to a read-only concatenated store")
}

// SetCacheLimit implements CacheLimiter by splitting the budget evenly
// across the parts that accept one.
func (c *concatStore) SetCacheLimit(bytes int64) {
	per := bytes / int64(len(c.parts))
	for _, p := range c.parts {
		if l, ok := p.(interface{ SetCacheLimit(int64) }); ok {
			l.SetCacheLimit(per)
		}
	}
}
