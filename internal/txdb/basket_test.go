package txdb

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadBasket(t *testing.T) {
	in := strings.Join([]string{
		"1 2 3",
		"",
		"# a comment",
		"5\t7  5", // tabs, double spaces, duplicate item
		"  9 ",
	}, "\n")
	txs, err := ReadBasket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 3 {
		t.Fatalf("parsed %d transactions, want 3", len(txs))
	}
	if !reflect.DeepEqual(txs[0].Items, []Item{1, 2, 3}) || txs[0].TID != 1 {
		t.Errorf("tx0 = %+v", txs[0])
	}
	if !reflect.DeepEqual(txs[1].Items, []Item{5, 7}) || txs[1].TID != 2 {
		t.Errorf("tx1 = %+v", txs[1])
	}
	if !reflect.DeepEqual(txs[2].Items, []Item{9}) || txs[2].TID != 3 {
		t.Errorf("tx2 = %+v", txs[2])
	}
}

func TestReadBasketErrors(t *testing.T) {
	for _, bad := range []string{"1 x 3", "-5", "99999999999999999999"} {
		if _, err := ReadBasket(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadBasket(%q) succeeded", bad)
		}
	}
}

func TestReadBasketEmpty(t *testing.T) {
	txs, err := ReadBasket(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 0 {
		t.Errorf("parsed %d transactions from empty input", len(txs))
	}
}

func TestBasketRoundTrip(t *testing.T) {
	txs := makeTxs(100)
	store, err := NewMemStoreFrom(nil, txs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBasket(&buf, store); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBasket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(txs) {
		t.Fatalf("round trip: %d transactions, want %d", len(back), len(txs))
	}
	for i := range txs {
		// TIDs are re-assigned; items must survive exactly.
		if !reflect.DeepEqual(back[i].Items, txs[i].Items) {
			t.Fatalf("transaction %d items: %v, want %v", i, back[i].Items, txs[i].Items)
		}
	}
}

func FuzzParseBasketLine(f *testing.F) {
	f.Add([]byte("1 2 3"))
	f.Add([]byte("# comment"))
	f.Add([]byte("  7\t8 "))
	f.Add([]byte("nonsense"))
	f.Fuzz(func(t *testing.T, line []byte) {
		items, err := parseBasketLine(line) // must never panic
		if err != nil {
			return
		}
		for _, it := range items {
			if it < 0 {
				t.Fatalf("negative item %d accepted", it)
			}
		}
	})
}
