package txdb

import "os"

// Small indirections so the main test file reads cleanly.

func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func readFileBytes(path string) ([]byte, error) {
	return os.ReadFile(path)
}
