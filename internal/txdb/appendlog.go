package txdb

import (
	"fmt"

	"bbsmine/internal/iostat"
	"bbsmine/internal/pager"
)

// AppendLog is the serving layer's transaction store: an append-only
// in-memory log supporting O(1) immutable snapshots. The serving commit
// loop is its single writer; every mining query runs against a View taken
// at the query's epoch, so readers never observe a half-applied batch.
//
// The safety argument is structural. Append only ever grows the backing
// slices; a View captures their headers (pointer, length) at snapshot time
// and never reads past its captured length. A later Append either writes
// into spare capacity beyond every captured length or reallocates, leaving
// old arrays untouched — so views need no locks at all. Records are never
// mutated after Append (the Store contract), making element reads safe too.
//
// Deletions do not remove records: the BBS index tombstones positions in
// its live mask, and the log keeps the record so positional indexes stay
// stable — the same model the file store uses.
type AppendLog struct {
	txs     []Transaction
	offsets []int64 // virtual byte offset of each record
	size    int64   // total virtual bytes
	stats   *iostat.Stats
}

// NewAppendLog returns an empty log charging I/O to stats. A nil stats
// disables accounting.
func NewAppendLog(stats *iostat.Stats) *AppendLog {
	if stats == nil {
		stats = &iostat.Stats{}
	}
	return &AppendLog{stats: stats}
}

// LoadAppendLog builds a log from an existing store with one sequential
// pass (not charged: loading is part of opening, not of any mining run).
func LoadAppendLog(src Store, stats *iostat.Stats) (*AppendLog, error) {
	l := NewAppendLog(stats)
	switch s := src.(type) {
	case *MemStore:
		// Offsets are already computed; reuse the records directly.
		for _, tx := range s.txs {
			if err := l.Append(tx); err != nil {
				return nil, fmt.Errorf("txdb: loading log: %w", err)
			}
		}
		return l, nil
	default:
		base := src
		if fs, ok := src.(*FileStore); ok {
			base = &uncharged{fs}
		}
		if err := base.Scan(func(pos int, tx Transaction) bool {
			l.txs = append(l.txs, tx)
			l.offsets = append(l.offsets, l.size)
			l.size += int64(tx.EncodedSize())
			return true
		}); err != nil {
			return nil, fmt.Errorf("txdb: loading log: %w", err)
		}
		return l, nil
	}
}

// uncharged wraps a FileStore so the loading scan does not bill a mining
// pass to the shared stats sink.
type uncharged struct{ fs *FileStore }

func (u *uncharged) Len() int { return u.fs.Len() }
func (u *uncharged) Scan(fn func(pos int, tx Transaction) bool) error {
	silent := &iostat.Stats{}
	saved := u.fs.stats
	u.fs.stats = silent
	defer func() { u.fs.stats = saved }()
	return u.fs.Scan(fn)
}
func (u *uncharged) Get(pos int) (Transaction, error) { return u.fs.Get(pos) }
func (u *uncharged) Append(tx Transaction) error      { return u.fs.Append(tx) }

// Len returns the number of appended transactions.
func (l *AppendLog) Len() int { return len(l.txs) }

// Size returns the virtual encoded size of the log in bytes.
func (l *AppendLog) Size() int64 { return l.size }

// Append adds one transaction. Single writer only.
func (l *AppendLog) Append(tx Transaction) error {
	if err := tx.Validate(); err != nil {
		return fmt.Errorf("txdb: log append: %w", err)
	}
	l.offsets = append(l.offsets, l.size)
	l.size += int64(tx.EncodedSize())
	l.txs = append(l.txs, tx)
	return nil
}

// Get fetches the record at pos without page accounting (writer-side use:
// resolving the items of a record about to be deleted).
func (l *AppendLog) Get(pos int) (Transaction, error) {
	if pos < 0 || pos >= len(l.txs) {
		return Transaction{}, fmt.Errorf("txdb: position %d out of range [0,%d)", pos, len(l.txs))
	}
	return l.txs[pos], nil
}

// View captures an immutable snapshot of the log. The view is a Store with
// its own page-cache model (so concurrent queries budget independently) and
// is safe for the concurrent Get traffic of a parallel mining run.
func (l *AppendLog) View() *LogView {
	return &LogView{
		txs:     l.txs,
		offsets: l.offsets,
		size:    l.size,
		stats:   l.stats,
	}
}

// LogView is an immutable snapshot of an AppendLog, implementing Store for
// one or more mining runs at a fixed epoch. Append is rejected: writes go
// through the owning log's single writer.
type LogView struct {
	txs     []Transaction
	offsets []int64
	size    int64
	stats   *iostat.Stats
	cache   pageCache
}

// Len implements Store.
func (v *LogView) Len() int { return len(v.txs) }

// Scan implements Store.
func (v *LogView) Scan(fn func(pos int, tx Transaction) bool) error {
	v.stats.AddDBScan()
	v.stats.AddDBSeqPages(pagesFor(v.size))
	for i, tx := range v.txs {
		if !fn(i, tx) {
			break
		}
	}
	return nil
}

// Get implements Store.
func (v *LogView) Get(pos int) (Transaction, error) {
	if pos < 0 || pos >= len(v.txs) {
		return Transaction{}, fmt.Errorf("txdb: position %d out of range [0,%d)", pos, len(v.txs))
	}
	start := v.offsets[pos]
	end := v.size
	if pos+1 < len(v.offsets) {
		end = v.offsets[pos+1]
	}
	v.stats.AddDBRandPages(v.cache.misses(start, end, v.stats))
	return v.txs[pos], nil
}

// Append implements Store; a view is read-only.
func (v *LogView) Append(Transaction) error {
	return fmt.Errorf("txdb: append to a read-only log view")
}

// Clone returns a view over the same records with a fresh private page
// cache, so concurrent queries sharing one snapshot budget their cache
// limits independently instead of racing on SetCacheLimit. An attached
// pager carries over: under tiered storage residency is pooled by design,
// and the shared frame table (not a private LRU) is what keeps each page
// charged once across concurrent queries.
func (v *LogView) Clone() *LogView {
	nv := &LogView{
		txs:     v.txs,
		offsets: v.offsets,
		size:    v.size,
		stats:   v.stats,
	}
	nv.cache.virt = v.cache.pagerFile()
	return nv
}

// SetCacheLimit implements CacheLimiter for the view's private pool model.
func (v *LogView) SetCacheLimit(bytes int64) { v.cache.setLimit(bytes, v.stats) }

// AttachPager implements PagerBacked: page residency moves to the shared
// pager pool and the view stops charging its private page-cache tallies.
func (v *LogView) AttachPager(f *pager.File) { v.cache.attachPager(f, v.stats) }
