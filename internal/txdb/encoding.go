package txdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// On-disk record format, chosen for compactness and append-only growth:
//
//	record := uvarint(TID) uvarint(len(items)) uvarint(items[0]) uvarint(items[i]-items[i-1])...
//
// Items are stored delta-encoded, which is valid because transactions keep
// their items sorted strictly ascending. The file as a whole is:
//
//	file := magic(8 bytes) record*
//
// There is no embedded index: the positional index the Probe refinement
// needs is rebuilt by one sequential scan at open time and maintained in
// memory on append, exactly as cheap for the paper's workloads.

// fileMagic identifies a transaction database file (8 bytes).
var fileMagic = [8]byte{'B', 'B', 'S', 'T', 'X', 'D', 'B', '1'}

// uvarintLen returns the encoded length of v in bytes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendRecord appends the encoded record for tx to buf and returns it.
func appendRecord(buf []byte, tx Transaction) []byte {
	buf = binary.AppendUvarint(buf, uint64(tx.TID))
	buf = binary.AppendUvarint(buf, uint64(len(tx.Items)))
	prev := Item(0)
	for i, it := range tx.Items {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(it))
		} else {
			buf = binary.AppendUvarint(buf, uint64(it-prev))
		}
		prev = it
	}
	return buf
}

// readRecord decodes one record from r. It returns io.EOF (untouched) when
// the reader is exhausted exactly at a record boundary, and wraps any other
// failure, including a truncated record, in a descriptive error.
func readRecord(r *bufio.Reader) (Transaction, error) {
	tid, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return Transaction{}, io.EOF
		}
		return Transaction{}, fmt.Errorf("txdb: reading TID: %w", err)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Transaction{}, fmt.Errorf("txdb: reading item count for TID %d: %w", tid, err)
	}
	const maxItems = 1 << 24 // sanity bound against corrupt files
	if n > maxItems {
		return Transaction{}, fmt.Errorf("txdb: implausible item count %d for TID %d", n, tid)
	}
	items := make([]Item, n)
	var prev uint64
	for i := range items {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return Transaction{}, fmt.Errorf("txdb: reading item %d of TID %d: %w", i, tid, err)
		}
		if i == 0 {
			prev = d
		} else {
			if d == 0 {
				return Transaction{}, fmt.Errorf("txdb: zero delta (duplicate item) in TID %d", tid)
			}
			prev += d
		}
		if prev > 1<<31-1 {
			return Transaction{}, fmt.Errorf("txdb: item overflow in TID %d", tid)
		}
		items[i] = Item(prev)
	}
	return Transaction{TID: int64(tid), Items: items}, nil
}
