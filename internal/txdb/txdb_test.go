package txdb

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"bbsmine/internal/iostat"
)

func TestNewTransactionNormalizes(t *testing.T) {
	tx := NewTransaction(7, []Item{5, 3, 5, 1, 3})
	want := []Item{1, 3, 5}
	if !reflect.DeepEqual(tx.Items, want) {
		t.Errorf("Items = %v, want %v", tx.Items, want)
	}
	if tx.TID != 7 {
		t.Errorf("TID = %d", tx.TID)
	}
	if err := tx.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewTransactionDoesNotMutateInput(t *testing.T) {
	in := []Item{9, 2, 9}
	NewTransaction(1, in)
	if !reflect.DeepEqual(in, []Item{9, 2, 9}) {
		t.Errorf("input mutated: %v", in)
	}
}

func TestContains(t *testing.T) {
	tx := NewTransaction(1, []Item{1, 3, 5, 7, 11})
	cases := []struct {
		set  []Item
		want bool
	}{
		{nil, true},
		{[]Item{1}, true},
		{[]Item{11}, true},
		{[]Item{3, 7}, true},
		{[]Item{1, 3, 5, 7, 11}, true},
		{[]Item{2}, false},
		{[]Item{1, 2}, false},
		{[]Item{11, 12}, false},
		{[]Item{0}, false},
	}
	for _, c := range cases {
		if got := tx.Contains(c.set); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestValidateRejectsBadData(t *testing.T) {
	bad := []Transaction{
		{TID: -1, Items: []Item{1}},
		{TID: 1, Items: []Item{-2}},
		{TID: 1, Items: []Item{3, 3}},
		{TID: 1, Items: []Item{5, 2}},
	}
	for _, tx := range bad {
		if err := tx.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tx)
		}
	}
}

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		tx := randomTx(rng, int64(trial), 20, 100000)
		enc := appendRecord(nil, tx)
		if got := tx.EncodedSize(); got != len(enc) {
			t.Fatalf("EncodedSize = %d, encoded length = %d (tx %+v)", got, len(enc), tx)
		}
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	var stats iostat.Stats
	s := NewMemStore(&stats)
	txs := makeTxs(50)
	for _, tx := range txs {
		if err := s.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	checkStoreContents(t, s, txs)
}

func TestMemStoreRejectsInvalid(t *testing.T) {
	s := NewMemStore(nil)
	if err := s.Append(Transaction{TID: -1}); err == nil {
		t.Error("Append of invalid transaction succeeded")
	}
}

func TestMemStoreAccounting(t *testing.T) {
	var stats iostat.Stats
	s := NewMemStore(&stats)
	for _, tx := range makeTxs(100) {
		if err := s.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	s.Scan(func(int, Transaction) bool { return true })
	if stats.DBScans() != 1 {
		t.Errorf("DBScans = %d, want 1", stats.DBScans())
	}
	if stats.DBSeqPages() < 1 {
		t.Errorf("DBSeqPages = %d, want >= 1", stats.DBSeqPages())
	}
	// First random fetch misses the cache; repeating it hits.
	before := stats.DBRandPages()
	if _, err := s.Get(10); err != nil {
		t.Fatal(err)
	}
	if stats.DBRandPages() <= before {
		t.Error("first Get did not charge any cache misses")
	}
	after := stats.DBRandPages()
	if _, err := s.Get(10); err != nil {
		t.Fatal(err)
	}
	if stats.DBRandPages() != after {
		t.Error("second Get of the same record charged misses despite unlimited cache")
	}
}

func TestCacheLimitForcesMisses(t *testing.T) {
	var stats iostat.Stats
	s := NewMemStore(&stats)
	for _, tx := range makeTxs(200) {
		if err := s.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	s.SetCacheLimit(1) // far smaller than the data: every access thrashes
	s.Get(5)
	first := stats.DBRandPages()
	if first == 0 {
		t.Fatal("no misses under a tiny cache")
	}
	s.Get(5)
	if stats.DBRandPages() != 2*first {
		t.Errorf("repeated Get under thrashing cache: %d misses, want %d", stats.DBRandPages(), 2*first)
	}
	// Removing the limit restores first-touch-only charging.
	s.SetCacheLimit(0)
	s.Get(5)
	base := stats.DBRandPages()
	s.Get(5)
	if stats.DBRandPages() != base {
		t.Error("unlimited cache still charging repeated access")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.bbs")
	var stats iostat.Stats
	s, err := CreateFileStore(path, &stats)
	if err != nil {
		t.Fatal(err)
	}
	txs := makeTxs(200)
	for _, tx := range txs {
		if err := s.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	checkStoreContents(t, s, txs)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: index must be rebuilt and contents identical.
	s2, err := OpenFileStore(path, &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkStoreContents(t, s2, txs)

	// Dynamic append after reopen.
	extra := NewTransaction(9999, []Item{2, 4, 6})
	if err := s2.Append(extra); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(len(txs))
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != 9999 || !reflect.DeepEqual(got.Items, extra.Items) {
		t.Errorf("appended tx mismatch: %+v", got)
	}
}

func TestFileStoreReopenAfterAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.bbs")
	s, err := CreateFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	txs := makeTxs(10)
	for _, tx := range txs {
		if err := s.Append(tx); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := OpenFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	extra := NewTransaction(777, []Item{1})
	if err := s2.Append(extra); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 11 {
		t.Fatalf("Len = %d after reopen, want 11", s3.Len())
	}
	got, err := s3.Get(10)
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != 777 {
		t.Errorf("TID = %d, want 777", got.TID)
	}
}

func TestOpenFileStoreRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeFile(path, []byte("this is not a txdb file at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, nil); err == nil {
		t.Error("OpenFileStore accepted a garbage file")
	}
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Error("OpenFileStore accepted a missing file")
	}
}

func TestOpenFileStoreRejectsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.bbs")
	s, err := CreateFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range makeTxs(5) {
		s.Append(tx)
	}
	s.Close()
	// Truncate mid-record.
	data, err := readFileBytes(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, data[:len(data)-2]); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, nil); err == nil {
		t.Error("OpenFileStore accepted a truncated file")
	}
}

func TestFileStoreGetOutOfRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.bbs")
	s, err := CreateFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Append(NewTransaction(1, []Item{1}))
	for _, pos := range []int{-1, 1, 100} {
		if _, err := s.Get(pos); err == nil {
			t.Errorf("Get(%d) succeeded, want error", pos)
		}
	}
}

func TestFileStoreScanEarlyStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.bbs")
	s, err := CreateFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, tx := range makeTxs(20) {
		s.Append(tx)
	}
	n := 0
	s.Scan(func(pos int, tx Transaction) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d records, want 5", n)
	}
}

func TestEmptyTransactionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.bbs")
	s, err := CreateFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Transaction{TID: 5}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != 5 || len(got.Items) != 0 {
		t.Errorf("round trip of empty transaction: %+v", got)
	}
	s.Close()
	s2, err := OpenFileStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Errorf("Len = %d", s2.Len())
	}
}

// Property: encode/decode round-trips arbitrary normalized transactions.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(tid uint32, raw []int32) bool {
		items := make([]Item, 0, len(raw))
		for _, r := range raw {
			if r < 0 {
				r = -r
			}
			items = append(items, r)
		}
		tx := NewTransaction(int64(tid), items)
		enc := appendRecord(nil, tx)
		dec, err := decodeRecord(enc)
		if err != nil {
			return false
		}
		return dec.TID == tx.TID && reflect.DeepEqual(dec.Items, tx.Items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MemStore and FileStore agree on contents and Contains results.
func TestQuickStoresAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	txs := make([]Transaction, 100)
	for i := range txs {
		txs[i] = randomTx(rng, int64(i), 15, 1000)
	}
	mem, err := NewMemStoreFrom(nil, txs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.bbs")
	file, err := WriteAll(path, nil, txs)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	for pos := 0; pos < len(txs); pos++ {
		a, _ := mem.Get(pos)
		b, _ := file.Get(pos)
		if a.TID != b.TID || !reflect.DeepEqual(a.Items, b.Items) {
			t.Fatalf("stores disagree at %d: %+v vs %+v", pos, a, b)
		}
	}
}

func checkStoreContents(t *testing.T, s Store, want []Transaction) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	seen := 0
	err := s.Scan(func(pos int, tx Transaction) bool {
		if tx.TID != want[pos].TID || !reflect.DeepEqual(tx.Items, want[pos].Items) {
			t.Fatalf("Scan at %d: %+v, want %+v", pos, tx, want[pos])
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(want) {
		t.Fatalf("Scan visited %d, want %d", seen, len(want))
	}
	for _, pos := range []int{0, len(want) / 2, len(want) - 1} {
		tx, err := s.Get(pos)
		if err != nil {
			t.Fatal(err)
		}
		if tx.TID != want[pos].TID || !reflect.DeepEqual(tx.Items, want[pos].Items) {
			t.Fatalf("Get(%d): %+v, want %+v", pos, tx, want[pos])
		}
	}
}

func makeTxs(n int) []Transaction {
	rng := rand.New(rand.NewSource(7))
	txs := make([]Transaction, n)
	for i := range txs {
		txs[i] = randomTx(rng, int64(100+i), 12, 500)
	}
	return txs
}

func randomTx(rng *rand.Rand, tid int64, maxItems, alphabet int) Transaction {
	n := 1 + rng.Intn(maxItems)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item(rng.Intn(alphabet))
	}
	return NewTransaction(tid, items)
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}

func BenchmarkFileStoreScan(b *testing.B) {
	path := filepath.Join(b.TempDir(), "db.bbs")
	s, err := WriteAll(path, nil, makeTxs(5000))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(func(int, Transaction) bool { return true })
	}
}

func BenchmarkFileStoreGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "db.bbs")
	s, err := WriteAll(path, nil, makeTxs(5000))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(i % 5000); err != nil {
			b.Fatal(err)
		}
	}
}
