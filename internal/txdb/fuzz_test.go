package txdb

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeRecord checks that arbitrary bytes never panic the decoder and
// that every record the encoder produces round-trips.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x01})
	f.Add(appendRecord(nil, NewTransaction(42, []Item{1, 5, 9})))
	f.Add(appendRecord(nil, Transaction{TID: 0}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are fine.
		tx, err := decodeRecord(data)
		if err != nil {
			return
		}
		// A successfully decoded record with valid invariants must
		// re-encode to a prefix-compatible record.
		if tx.Validate() != nil {
			return
		}
		enc := appendRecord(nil, tx)
		dec, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if dec.TID != tx.TID || !reflect.DeepEqual(dec.Items, tx.Items) {
			t.Fatalf("round trip mismatch: %+v vs %+v", tx, dec)
		}
	})
}

// FuzzReadRecord drives the streaming reader with arbitrary bytes.
func FuzzReadRecord(f *testing.F) {
	f.Add(appendRecord(nil, NewTransaction(7, []Item{2, 3})))
	f.Add([]byte{0x80})
	f.Add([]byte{0x05, 0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			if _, err := readRecord(r); err != nil {
				return
			}
		}
	})
}
