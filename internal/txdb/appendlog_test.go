package txdb

import (
	"math/rand"
	"sync"
	"testing"

	"bbsmine/internal/iostat"
)

// A view captured before later appends must keep its length and contents.
func TestLogViewIsImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewAppendLog(nil)
	for i := 0; i < 100; i++ {
		if err := l.Append(randomTx(rng, int64(i), 8, 500)); err != nil {
			t.Fatal(err)
		}
	}
	v := l.View()
	wantLen, wantSize := v.Len(), v.size
	first, err := v.Get(0)
	if err != nil {
		t.Fatal(err)
	}

	for i := 100; i < 1000; i++ {
		if err := l.Append(randomTx(rng, int64(i), 8, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Len() != wantLen || v.size != wantSize {
		t.Fatalf("view grew: len %d size %d, want %d %d", v.Len(), v.size, wantLen, wantSize)
	}
	if _, err := v.Get(wantLen); err == nil {
		t.Fatal("view handed out a record appended after its capture")
	}
	again, err := v.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if again.TID != first.TID || len(again.Items) != len(first.Items) {
		t.Fatal("record changed under the view")
	}
	if l.Len() != 1000 {
		t.Fatalf("log len = %d, want 1000", l.Len())
	}
}

// Concurrent view readers racing the single writer must be race-clean; run
// under -race. Each reader sweeps its own view with Get and Scan while the
// writer keeps appending.
func TestLogViewConcurrentWithWriter(t *testing.T) {
	l := NewAppendLog(nil)
	wrng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if err := l.Append(randomTx(wrng, int64(i), 8, 500)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := l.View()
				n := v.Len()
				for pos := 0; pos < n; pos += 7 {
					if _, err := v.Get(pos); err != nil {
						t.Errorf("Get(%d) on a %d-long view: %v", pos, n, err)
						return
					}
				}
				seen := 0
				if err := v.Scan(func(pos int, tx Transaction) bool {
					seen++
					return true
				}); err != nil {
					t.Errorf("Scan: %v", err)
					return
				}
				if seen != n {
					t.Errorf("Scan visited %d of %d records", seen, n)
					return
				}
			}
		}()
	}
	for i := 50; i < 2000; i++ {
		if err := l.Append(randomTx(wrng, int64(i), 8, 500)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// A view is read-only; its cache is private per view.
func TestLogViewRejectsAppend(t *testing.T) {
	l := NewAppendLog(nil)
	v := l.View()
	if err := v.Append(Transaction{}); err == nil {
		t.Fatal("Append on a view succeeded")
	}
}

// LoadAppendLog must reproduce the source store without charging a mining
// scan to the shared stats.
func TestLoadAppendLogFromFileStore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stats := &iostat.Stats{}
	var txs []Transaction
	for i := 0; i < 200; i++ {
		txs = append(txs, randomTx(rng, int64(i), 8, 500))
	}
	fs, err := WriteAll(t.TempDir()+"/log.txdb", stats, txs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := fs.Close(); cerr != nil {
			t.Errorf("close: %v", cerr)
		}
	}()

	before := stats.Snapshot()
	l, err := LoadAppendLog(fs, stats)
	if err != nil {
		t.Fatal(err)
	}
	if delta := stats.Snapshot().Sub(before); delta.DBScans != 0 || delta.DBSeqPages != 0 {
		t.Fatalf("loading charged a mining scan: %v", delta)
	}
	if l.Len() != len(txs) {
		t.Fatalf("loaded %d records, want %d", l.Len(), len(txs))
	}
	for pos, want := range txs {
		got, err := l.Get(pos)
		if err != nil {
			t.Fatal(err)
		}
		if got.TID != want.TID || !got.Contains(want.Items) || !want.Contains(got.Items) {
			t.Fatalf("record %d differs after load", pos)
		}
	}
}

// The LRU cap bounds residency and counts evictions — the regression test
// for the formerly unbounded resident map.
func TestPageCacheLRUBoundsResidency(t *testing.T) {
	stats := &iostat.Stats{}
	var c pageCache
	const capBytes = 8 * iostat.PageSize
	c.setLimit(capBytes, stats)

	// Touch 64 distinct pages: residency must never exceed 8.
	for p := int64(0); p < 64; p++ {
		if miss := c.misses(p*iostat.PageSize, (p+1)*iostat.PageSize, stats); miss != 1 {
			t.Fatalf("page %d: %d misses, want 1", p, miss)
		}
		if r := c.residentPages(); r > 8 {
			t.Fatalf("after page %d: %d resident pages, cap is 8", p, r)
		}
	}
	if ev := stats.PageCacheEvictions(); ev != 64-8 {
		t.Fatalf("evictions = %d, want %d", ev, 64-8)
	}
	if r := stats.PageCacheResident(); r != 8 {
		t.Fatalf("resident gauge = %d, want 8", r)
	}

	// The hottest page stays resident: repeated access is a hit, not a miss.
	hot := int64(63)
	for i := 0; i < 10; i++ {
		if miss := c.misses(hot*iostat.PageSize, (hot+1)*iostat.PageSize, stats); miss != 0 {
			t.Fatalf("hot page missed on re-access (iteration %d)", i)
		}
	}
	if h := stats.PageCacheHits(); h != 10 {
		t.Fatalf("hits = %d, want 10", h)
	}

	// LRU, not FIFO: the re-touched page survives a round of fresh pages.
	for p := int64(100); p < 107; p++ {
		c.misses(p*iostat.PageSize, (p+1)*iostat.PageSize, stats)
	}
	if miss := c.misses(hot*iostat.PageSize, (hot+1)*iostat.PageSize, stats); miss != 0 {
		t.Fatal("most-recently-used page was evicted before older ones")
	}

	// Dropping the limit resets the gauge.
	c.setLimit(0, stats)
	if r := stats.PageCacheResident(); r != 0 {
		t.Fatalf("resident gauge after reset = %d, want 0", r)
	}
}

// A zero-page cap (limit smaller than one page) keeps the old thrash
// semantics: nothing stays resident, every access faults.
func TestPageCacheZeroCapThrashes(t *testing.T) {
	stats := &iostat.Stats{}
	var c pageCache
	c.setLimit(1, stats)
	for i := 0; i < 3; i++ {
		if miss := c.misses(0, iostat.PageSize, stats); miss != 1 {
			t.Fatalf("iteration %d: %d misses, want 1", i, miss)
		}
	}
	if r := stats.PageCacheResident(); r != 0 {
		t.Fatalf("resident gauge = %d, want 0", r)
	}
}
