package txdb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Basket format: the de-facto interchange format of the frequent-itemset
// mining community (the FIMI repository's retail.dat, kosarak.dat, etc.) —
// one transaction per line, items as whitespace-separated non-negative
// integers. TIDs are not part of the format; ReadBasket assigns 1-based
// line numbers.

// ReadBasket parses basket-format transactions from r. Blank lines and
// lines starting with '#' are skipped. Items within a line are normalized
// (sorted, deduplicated).
func ReadBasket(r io.Reader) ([]Transaction, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Transaction
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		items, err := parseBasketLine(line)
		if err != nil {
			return nil, fmt.Errorf("txdb: basket line %d: %w", lineNo, err)
		}
		if items == nil {
			continue // blank or comment
		}
		out = append(out, NewTransaction(int64(len(out)+1), items))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("txdb: reading basket input: %w", err)
	}
	return out, nil
}

// parseBasketLine returns the items on one line, nil for blank/comment
// lines, or an error for malformed input.
func parseBasketLine(line []byte) ([]Item, error) {
	var items []Item
	i := 0
	for i < len(line) {
		// Skip whitespace.
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '#' && items == nil {
			return nil, nil // comment line
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			i++
		}
		tok := string(line[start:i])
		v, err := strconv.ParseInt(tok, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad item %q", tok)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative item %d", v)
		}
		items = append(items, Item(v))
	}
	return items, nil
}

// WriteBasket writes the store's transactions in basket format.
func WriteBasket(w io.Writer, store Store) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var scanErr error
	err := store.Scan(func(_ int, tx Transaction) bool {
		for i, it := range tx.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					scanErr = err
					return false
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(int64(it), 10)); err != nil {
				scanErr = err
				return false
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("txdb: scanning for basket export: %w", err)
	}
	if scanErr != nil {
		return fmt.Errorf("txdb: writing basket output: %w", scanErr)
	}
	return bw.Flush()
}
