package txdb

import (
	"testing"
)

// memWith builds a MemStore holding one transaction per TID, items = {TID}.
func memWith(t *testing.T, tids ...int64) *MemStore {
	t.Helper()
	s := NewMemStore(nil)
	for _, tid := range tids {
		if err := s.Append(NewTransaction(tid, []int32{int32(tid)})); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestConcatSinglePartIsIdentity(t *testing.T) {
	s := memWith(t, 1, 2)
	if got := Concat(s); got != Store(s) {
		t.Fatal("single-part concat did not return the part itself")
	}
}

func TestConcatBlockOrder(t *testing.T) {
	// Round-robin split of TIDs 0..6 across 3 parts; the concatenation must
	// read back in block order (all of part 0, then part 1, then part 2).
	parts := []Store{memWith(t, 0, 3, 6), memWith(t, 1, 4), memWith(t, 2, 5)}
	c := Concat(parts...)
	if c.Len() != 7 {
		t.Fatalf("Len = %d, want 7", c.Len())
	}
	want := []int64{0, 3, 6, 1, 4, 2, 5}
	for pos, tid := range want {
		tx, err := c.Get(pos)
		if err != nil {
			t.Fatalf("Get(%d): %v", pos, err)
		}
		if tx.TID != tid {
			t.Fatalf("Get(%d).TID = %d, want %d", pos, tx.TID, tid)
		}
	}
	var seen []int64
	lastPos := -1
	if err := c.Scan(func(pos int, tx Transaction) bool {
		if pos != lastPos+1 {
			t.Fatalf("scan position %d after %d", pos, lastPos)
		}
		lastPos = pos
		seen = append(seen, tx.TID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("scan visited %d rows, want %d", len(seen), len(want))
	}
	for i, tid := range want {
		if seen[i] != tid {
			t.Fatalf("scan row %d TID = %d, want %d", i, seen[i], tid)
		}
	}
}

func TestConcatScanEarlyStop(t *testing.T) {
	c := Concat(memWith(t, 0, 2), memWith(t, 1, 3))
	visited := 0
	if err := c.Scan(func(pos int, tx Transaction) bool {
		visited++
		return pos < 2 // stop inside part 1
	}); err != nil {
		t.Fatal(err)
	}
	if visited != 3 {
		t.Fatalf("scan visited %d rows after early stop, want 3", visited)
	}
}

func TestConcatPinsLengthsAtConstruction(t *testing.T) {
	a, b := memWith(t, 0, 2), memWith(t, 1)
	c := Concat(a, b)
	if err := a.Append(NewTransaction(4, []int32{4})); err != nil {
		t.Fatal(err)
	}
	// The appended row is invisible: lengths were captured at Concat time.
	if c.Len() != 3 {
		t.Fatalf("Len = %d after append to part, want 3", c.Len())
	}
	var tids []int64
	if err := c.Scan(func(pos int, tx Transaction) bool {
		tids = append(tids, tx.TID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(tids) != 3 || tids[0] != 0 || tids[1] != 2 || tids[2] != 1 {
		t.Fatalf("scan after append saw %v, want [0 2 1]", tids)
	}
}

func TestConcatIsReadOnly(t *testing.T) {
	c := Concat(memWith(t, 0), memWith(t, 1))
	if err := c.Append(NewTransaction(9, []int32{9})); err == nil {
		t.Fatal("append to a concatenated store accepted")
	}
	if _, err := c.Get(-1); err == nil {
		t.Fatal("Get(-1) accepted")
	}
	if _, err := c.Get(2); err == nil {
		t.Fatal("Get past the end accepted")
	}
}
