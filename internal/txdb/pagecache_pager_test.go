package txdb

import (
	"sync"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/pager"
)

// With a pager attached, residency is modeled by the shared pool and the
// store's own page-cache tallies must stay silent — the pager's gauges are
// the single source of truth, and charging both would double-report the
// same resident bytes. Fault counts still flow to the caller for the
// rand-page accounting.
func TestPageCachePagerDelegation(t *testing.T) {
	stats := &iostat.Stats{}
	pg := pager.New(4 * pager.PageSize)
	var c pageCache
	c.setLimit(64*iostat.PageSize, stats)
	c.attachPager(pg.Virtual("txdb-test"), stats)

	// First touches fault; re-touches hit — all in the pager.
	for p := int64(0); p < 3; p++ {
		if miss := c.misses(p*iostat.PageSize, (p+1)*iostat.PageSize, stats); miss != 1 {
			t.Fatalf("page %d: %d misses, want 1", p, miss)
		}
	}
	if miss := c.misses(0, iostat.PageSize, stats); miss != 0 {
		t.Fatalf("re-touch missed, want hit")
	}
	ps := pg.Stats()
	if ps.Faults != 3 || ps.Hits != 1 {
		t.Fatalf("pager faults=%d hits=%d, want 3/1", ps.Faults, ps.Hits)
	}
	if ps.ResidentBytes != 3*pager.PageSize {
		t.Fatalf("pager resident = %d bytes, want %d", ps.ResidentBytes, 3*pager.PageSize)
	}

	// No double-reporting: the store-side tallies never moved.
	if h, e, r := stats.PageCacheHits(), stats.PageCacheEvictions(), stats.PageCacheResident(); h != 0 || e != 0 || r != 0 {
		t.Fatalf("store page-cache tallies charged while pager attached: hits=%d evictions=%d resident=%d", h, e, r)
	}
	if c.residentPages() != 0 {
		t.Fatalf("private LRU populated while pager attached")
	}

	// Blowing past the budget evicts in the shared pool.
	for p := int64(10); p < 20; p++ {
		c.misses(p*iostat.PageSize, (p+1)*iostat.PageSize, stats)
	}
	ps = pg.Stats()
	if ps.Evictions == 0 {
		t.Fatalf("no pager evictions after exceeding the budget")
	}
	if ps.ResidentBytes > pg.Budget() {
		t.Fatalf("pager resident %d exceeds budget %d with nothing pinned", ps.ResidentBytes, pg.Budget())
	}

	// Detaching restores the private model.
	c.attachPager(nil, stats)
	if miss := c.misses(0, iostat.PageSize, stats); miss != 1 {
		t.Fatalf("post-detach touch: %d misses, want 1 (fresh private LRU)", miss)
	}
	if r := stats.PageCacheResident(); r != 1 {
		t.Fatalf("post-detach resident gauge = %d, want 1", r)
	}
}

// Attaching mid-flight un-charges whatever the private LRU had resident, so
// the iostat gauge drops to zero instead of freezing at its last value —
// the re-pointing half of the no-double-reporting contract.
func TestPageCacheAttachUnchargesResident(t *testing.T) {
	stats := &iostat.Stats{}
	var c pageCache
	c.setLimit(64*iostat.PageSize, stats)
	for p := int64(0); p < 5; p++ {
		c.misses(p*iostat.PageSize, (p+1)*iostat.PageSize, stats)
	}
	if r := stats.PageCacheResident(); r != 5 {
		t.Fatalf("resident gauge = %d, want 5", r)
	}
	pg := pager.New(0)
	c.attachPager(pg.Virtual("txdb-test"), stats)
	if r := stats.PageCacheResident(); r != 0 {
		t.Fatalf("resident gauge after attach = %d, want 0", r)
	}
}

// Concurrent Get traffic through an attached pager must stay race-free and
// count every first touch exactly once — the same exactly-once contract the
// private LRU had, now enforced by the pager's frame table. Pager stats are
// all-atomic (no Reset), so unlike iostat snapshots there is no torn-read
// pairing to defend; this pins the counters' consistency under load.
func TestPageCachePagerConcurrent(t *testing.T) {
	stats := &iostat.Stats{}
	pg := pager.New(0) // unbounded: every page faults exactly once
	var c pageCache
	c.attachPager(pg.Virtual("txdb-test"), stats)

	const (
		goroutines = 8
		pages      = 256
	)
	var wg sync.WaitGroup
	faults := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for p := int64(0); p < pages; p++ {
				faults[g] += c.misses(p*iostat.PageSize, (p+1)*iostat.PageSize, stats)
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for _, f := range faults {
		total += f
	}
	if total != pages {
		t.Fatalf("%d faults across workers, want %d (each page charged once)", total, pages)
	}
	ps := pg.Stats()
	if ps.Faults != pages {
		t.Fatalf("pager faults = %d, want %d", ps.Faults, pages)
	}
	if ps.Hits != int64(goroutines*pages-pages) {
		t.Fatalf("pager hits = %d, want %d", ps.Hits, goroutines*pages-pages)
	}
	if h, e, r := stats.PageCacheHits(), stats.PageCacheEvictions(), stats.PageCacheResident(); h != 0 || e != 0 || r != 0 {
		t.Fatalf("store tallies charged under delegation: hits=%d evictions=%d resident=%d", h, e, r)
	}
}
