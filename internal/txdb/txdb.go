// Package txdb implements the transaction database substrate of the
// reproduction: the data model (transactions over an item alphabet), an
// in-memory store, and a persistent file-backed store with the positional
// index that the paper's Probe refinement requires ("the key of the index is
// the relative position of the transaction from the beginning of the file").
//
// Both stores charge their logical page accesses to an iostat.Stats, so the
// mining algorithms see the same cost accounting whether the data lives in
// RAM or on disk.
package txdb

import (
	"fmt"
	"sort"

	"bbsmine/internal/iostat"
	"bbsmine/internal/pager"
)

// Item identifies a single item (literal) of the alphabet I = {i1..iN}.
type Item = int32

// Transaction is one database row: a unique identifier and a set of items.
// Items are kept sorted ascending and duplicate-free; NewTransaction
// normalizes arbitrary input into that form.
type Transaction struct {
	TID   int64
	Items []Item
}

// NewTransaction builds a normalized transaction: items are sorted and
// deduplicated. The input slice is not modified.
func NewTransaction(tid int64, items []Item) Transaction {
	out := make([]Item, len(items))
	copy(out, items)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Compact duplicates in place.
	w := 0
	for r := 0; r < len(out); r++ {
		if r == 0 || out[r] != out[r-1] {
			out[w] = out[r]
			w++
		}
	}
	return Transaction{TID: tid, Items: out[:w]}
}

// Contains reports whether the transaction contains every item of the given
// sorted itemset. Both sides must be sorted ascending (NewTransaction and the
// miners maintain this invariant), so the test is a linear merge.
func (t Transaction) Contains(itemset []Item) bool {
	i, j := 0, 0
	for i < len(itemset) {
		for j < len(t.Items) && t.Items[j] < itemset[i] {
			j++
		}
		if j >= len(t.Items) || t.Items[j] != itemset[i] {
			return false
		}
		i++
		j++
	}
	return true
}

// EncodedSize returns the number of bytes the transaction occupies in the
// on-disk record format (see encoding.go). The in-memory store uses it to
// charge page I/O identically to the file store.
func (t Transaction) EncodedSize() int {
	n := uvarintLen(uint64(t.TID)) + uvarintLen(uint64(len(t.Items)))
	prev := Item(0)
	for i, it := range t.Items {
		if i == 0 {
			n += uvarintLen(uint64(it))
		} else {
			n += uvarintLen(uint64(it - prev))
		}
		prev = it
	}
	return n
}

// Validate checks the transaction invariants: non-negative TID, items sorted
// strictly ascending, and no negative items.
func (t Transaction) Validate() error {
	if t.TID < 0 {
		return fmt.Errorf("txdb: negative TID %d", t.TID)
	}
	for i, it := range t.Items {
		if it < 0 {
			return fmt.Errorf("txdb: negative item %d in TID %d", it, t.TID)
		}
		if i > 0 && t.Items[i-1] >= it {
			return fmt.Errorf("txdb: items not strictly ascending at index %d in TID %d", i, t.TID)
		}
	}
	return nil
}

// Store is the access interface the mining algorithms use. Ordinal positions
// (0-based, insertion order) are stable: position i in the store corresponds
// to bit i of every BBS slice.
type Store interface {
	// Len returns the number of transactions.
	Len() int
	// Scan calls fn for every transaction in ordinal order and charges one
	// sequential pass to the stats. Iteration stops early if fn returns
	// false; the full pass is still charged, matching a disk scan that
	// cannot be abandoned page-precisely. The Transaction passed to fn may
	// be retained by the callback: both stores hand out records whose item
	// slices are never mutated afterwards.
	Scan(fn func(pos int, tx Transaction) bool) error
	// Get fetches the transaction at ordinal position pos, charging the
	// page(s) the record spans. Get is safe for concurrent use (the
	// parallel Probe refinement fetches from several goroutines at once),
	// as long as no Append or Scan runs concurrently.
	Get(pos int) (Transaction, error)
	// Append adds a transaction at the next ordinal position. Append is not
	// safe for concurrent use with any other method.
	Append(tx Transaction) error
}

// MemStore is a RAM-resident Store. It mirrors the file store's page
// accounting by tracking each record's virtual byte offset.
type MemStore struct {
	txs     []Transaction
	offsets []int64 // virtual byte offset of each record
	size    int64   // total virtual bytes
	stats   *iostat.Stats
	cache   pageCache
}

// NewMemStore returns an empty in-memory store charging I/O to stats.
// A nil stats disables accounting.
func NewMemStore(stats *iostat.Stats) *MemStore {
	if stats == nil {
		stats = &iostat.Stats{}
	}
	return &MemStore{stats: stats}
}

// NewMemStoreFrom builds a MemStore pre-loaded with the given transactions.
func NewMemStoreFrom(stats *iostat.Stats, txs []Transaction) (*MemStore, error) {
	s := NewMemStore(stats)
	for _, tx := range txs {
		if err := s.Append(tx); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.txs) }

// Scan implements Store.
func (s *MemStore) Scan(fn func(pos int, tx Transaction) bool) error {
	s.stats.AddDBScan()
	s.stats.AddDBSeqPages(pagesFor(s.size))
	for i, tx := range s.txs {
		if !fn(i, tx) {
			break
		}
	}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(pos int) (Transaction, error) {
	if pos < 0 || pos >= len(s.txs) {
		return Transaction{}, fmt.Errorf("txdb: position %d out of range [0,%d)", pos, len(s.txs))
	}
	start := s.offsets[pos]
	end := s.size
	if pos+1 < len(s.offsets) {
		end = s.offsets[pos+1]
	}
	s.stats.AddDBRandPages(s.cache.misses(start, end, s.stats))
	return s.txs[pos], nil
}

// SetCacheLimit implements CacheLimiter.
func (s *MemStore) SetCacheLimit(bytes int64) { s.cache.setLimit(bytes, s.stats) }

// AttachPager implements PagerBacked: page residency moves to the shared
// pager pool and the store stops charging its private page-cache tallies.
func (s *MemStore) AttachPager(f *pager.File) { s.cache.attachPager(f, s.stats) }

// Append implements Store.
func (s *MemStore) Append(tx Transaction) error {
	if err := tx.Validate(); err != nil {
		return err
	}
	s.offsets = append(s.offsets, s.size)
	s.size += int64(tx.EncodedSize())
	s.txs = append(s.txs, tx)
	return nil
}

// Stats returns the stats sink the store charges to.
func (s *MemStore) Stats() *iostat.Stats { return s.stats }

// pagesFor returns the number of whole pages covering n bytes.
func pagesFor(n int64) int64 {
	return (n + iostat.PageSize - 1) / iostat.PageSize
}
