package txdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"bbsmine/internal/iostat"
	"bbsmine/internal/pager"
)

// FileStore is the persistent Store: an append-only record file plus the
// in-memory positional index used by the Probe refinement. It supports the
// paper's dynamic-database workload — new transactions are appended without
// rewriting anything.
type FileStore struct {
	f       *os.File
	path    string
	offsets []int64 // byte offset of each record
	size    int64   // total file size in bytes
	stats   *iostat.Stats
	cache   pageCache
	wbuf    []byte // reusable append buffer
}

// CreateFileStore creates (or truncates) a transaction database file.
func CreateFileStore(path string, stats *iostat.Stats) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txdb: create %s: %w", path, err)
	}
	if _, err := f.Write(fileMagic[:]); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("txdb: write magic: %w", err)
	}
	if stats == nil {
		stats = &iostat.Stats{}
	}
	return &FileStore{f: f, path: path, size: int64(len(fileMagic)), stats: stats}, nil
}

// OpenFileStore opens an existing database file and rebuilds the positional
// index with one sequential pass (not charged to stats: index construction
// is part of opening the store, not of any mining run).
func OpenFileStore(path string, stats *iostat.Stats) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txdb: open %s: %w", path, err)
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("txdb: read magic of %s: %w", path, err)
	}
	if magic != fileMagic {
		_ = f.Close()
		return nil, fmt.Errorf("txdb: %s is not a transaction database file", path)
	}
	if stats == nil {
		stats = &iostat.Stats{}
	}
	s := &FileStore{f: f, path: path, size: int64(len(fileMagic)), stats: stats}
	// Rebuild the offset index.
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 1<<16)
	off := int64(len(fileMagic))
	for {
		if _, err := readRecord(br); err != nil {
			if err == io.EOF {
				break
			}
			_ = f.Close()
			return nil, fmt.Errorf("txdb: indexing %s: %w", path, err)
		}
		s.offsets = append(s.offsets, off)
		off = s.size + cr.n - int64(br.Buffered())
	}
	s.size = int64(len(fileMagic)) + cr.n - int64(br.Buffered())
	return s, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Close closes the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// Path returns the file path backing the store.
func (s *FileStore) Path() string { return s.path }

// Stats returns the stats sink the store charges to.
func (s *FileStore) Stats() *iostat.Stats { return s.stats }

// Len implements Store.
func (s *FileStore) Len() int { return len(s.offsets) }

// Scan implements Store.
func (s *FileStore) Scan(fn func(pos int, tx Transaction) bool) error {
	s.stats.AddDBScan()
	s.stats.AddDBSeqPages(pagesFor(s.size))
	if _, err := s.f.Seek(int64(len(fileMagic)), io.SeekStart); err != nil {
		return fmt.Errorf("txdb: seek: %w", err)
	}
	br := bufio.NewReaderSize(s.f, 1<<16)
	for pos := 0; pos < len(s.offsets); pos++ {
		tx, err := readRecord(br)
		if err != nil {
			return fmt.Errorf("txdb: scan at position %d: %w", pos, err)
		}
		if !fn(pos, tx) {
			break
		}
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(pos int) (Transaction, error) {
	if pos < 0 || pos >= len(s.offsets) {
		return Transaction{}, fmt.Errorf("txdb: position %d out of range [0,%d)", pos, len(s.offsets))
	}
	start := s.offsets[pos]
	end := s.size
	if pos+1 < len(s.offsets) {
		end = s.offsets[pos+1]
	}
	s.stats.AddDBRandPages(s.cache.misses(start, end, s.stats))
	buf := make([]byte, end-start)
	if _, err := s.f.ReadAt(buf, start); err != nil {
		return Transaction{}, fmt.Errorf("txdb: read record %d: %w", pos, err)
	}
	tx, err := decodeRecord(buf)
	if err != nil {
		return Transaction{}, fmt.Errorf("txdb: record %d: %w", pos, err)
	}
	return tx, nil
}

// decodeRecord parses exactly one record from buf.
func decodeRecord(buf []byte) (Transaction, error) {
	tid, n := binary.Uvarint(buf)
	if n <= 0 {
		return Transaction{}, fmt.Errorf("bad TID varint")
	}
	buf = buf[n:]
	cnt, n := binary.Uvarint(buf)
	if n <= 0 {
		return Transaction{}, fmt.Errorf("bad count varint")
	}
	buf = buf[n:]
	items := make([]Item, cnt)
	var prev uint64
	for i := range items {
		d, n := binary.Uvarint(buf)
		if n <= 0 {
			return Transaction{}, fmt.Errorf("bad item varint at %d", i)
		}
		buf = buf[n:]
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		items[i] = Item(prev)
	}
	return Transaction{TID: int64(tid), Items: items}, nil
}

// Append implements Store. The record is written immediately; durability to
// the level of fsync is the caller's choice via Sync.
func (s *FileStore) Append(tx Transaction) error {
	if err := tx.Validate(); err != nil {
		return err
	}
	s.wbuf = appendRecord(s.wbuf[:0], tx)
	if _, err := s.f.WriteAt(s.wbuf, s.size); err != nil {
		return fmt.Errorf("txdb: append: %w", err)
	}
	s.offsets = append(s.offsets, s.size)
	s.size += int64(len(s.wbuf))
	return nil
}

// SetCacheLimit implements CacheLimiter.
func (s *FileStore) SetCacheLimit(bytes int64) { s.cache.setLimit(bytes, s.stats) }

// AttachPager implements PagerBacked: page residency moves to the shared
// pager pool and the store stops charging its private page-cache tallies.
func (s *FileStore) AttachPager(f *pager.File) { s.cache.attachPager(f, s.stats) }

// Sync flushes the file to stable storage.
func (s *FileStore) Sync() error { return s.f.Sync() }

// WriteAll is a convenience that creates a file store at path and appends
// every transaction, returning the open store.
func WriteAll(path string, stats *iostat.Stats, txs []Transaction) (*FileStore, error) {
	s, err := CreateFileStore(path, stats)
	if err != nil {
		return nil, err
	}
	for _, tx := range txs {
		if err := s.Append(tx); err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}
