package txdb

import (
	"container/list"
	"sync"

	"bbsmine/internal/iostat"
	"bbsmine/internal/pager"
)

// pageCache models the buffer pool for random (probe) accesses, per the
// cost model in iostat: sequential scans stream through a ring buffer and
// never populate the cache, while point fetches stay resident after their
// first touch. A configured limit bounds residency with LRU eviction, so a
// long-running process (the serving daemon) holds at most limit/PageSize
// pages of bookkeeping no matter how large the file grows; with limit 0 the
// pool is unbounded — the steady-state model the benchmark figures assume,
// acceptable only for one-shot runs.
//
// The cache is safe for concurrent use: the parallel refinement engine
// issues Probe fetches from several workers at once, and each page must
// still be charged exactly once on first touch regardless of which worker
// faults it in. Hit, eviction, and residency tallies go to the store's
// iostat.Stats, which internal/obs folds into /metrics.
//
// Under tiered storage the private LRU is subsumed by the shared pager:
// attachPager installs a virtual pager.File and misses() delegates page
// residency to it, so transaction pages and cold slice pages compete for
// the one -mem-budget pool. While attached, the per-store page-cache
// tallies (hits/evictions/resident) are NOT charged — the pager's own
// gauges are the single source of truth and double-reporting the same
// residency in two places would overstate memory by up to 2x. Fault
// counts still flow back to the caller so rand-page accounting is
// unchanged.
type pageCache struct {
	mu       sync.Mutex
	limit    int64                  // bytes; 0 = unbounded
	lru      list.List              // front = most recently touched; values are int64 page numbers
	resident map[int64]*list.Element
	virt     *pager.File // non-nil: residency delegated to the shared pager
}

// misses returns the number of page faults for a random access to the byte
// range [start, end) of the file, updating residency LRU-wise and charging
// hit/eviction/residency tallies to stats (which may be nil).
func (c *pageCache) misses(start, end int64, stats *iostat.Stats) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if end <= start {
		end = start + 1 // a record read always touches its header page
	}
	first := start / iostat.PageSize
	last := (end - 1) / iostat.PageSize
	if c.virt != nil {
		// Residency lives in the shared pager (iostat.PageSize ==
		// pager.PageSize, so page numbering is identical). Touch admits
		// misses against the shared budget; its CLOCK sweep replaces the
		// private LRU, and the pager's gauges replace the stats charges.
		var faults int64
		for p := first; p <= last; p++ {
			if !c.virt.Touch(p) {
				faults++
			}
		}
		return faults
	}
	if c.resident == nil {
		c.resident = make(map[int64]*list.Element)
	}
	capPages := int64(-1) // unbounded
	if c.limit > 0 {
		capPages = c.limit / iostat.PageSize
	}
	var faults, hits, evicted int64
	for p := first; p <= last; p++ {
		if el, ok := c.resident[p]; ok {
			c.lru.MoveToFront(el)
			hits++
			continue
		}
		faults++
		c.resident[p] = c.lru.PushFront(p)
		for capPages >= 0 && int64(len(c.resident)) > capPages {
			back := c.lru.Back()
			c.lru.Remove(back)
			delete(c.resident, back.Value.(int64))
			evicted++
		}
	}
	if stats != nil {
		stats.AddPageCacheHits(hits)
		stats.AddPageCacheEvictions(evicted)
		stats.AddPageCacheResident(faults - evicted)
	}
	return faults
}

// setLimit reconfigures the cache size and drops residency. It does not
// detach an attached pager: the virtual file keeps precedence, and the
// limit only takes effect again if the pager is detached.
func (c *pageCache) setLimit(bytes int64, stats *iostat.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stats != nil && len(c.resident) > 0 {
		stats.AddPageCacheResident(-int64(len(c.resident)))
	}
	c.limit = bytes
	c.lru.Init()
	c.resident = nil
}

// attachPager hands residency modeling to a virtual file on the shared
// pager, dropping (and un-charging) the private LRU. A nil f detaches,
// restoring the private limit/LRU model. The *pager.File frames survive in
// the pool — Touch hits keep their history — and the caller owns closing f.
func (c *pageCache) attachPager(f *pager.File, stats *iostat.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stats != nil && len(c.resident) > 0 {
		stats.AddPageCacheResident(-int64(len(c.resident)))
	}
	c.lru.Init()
	c.resident = nil
	c.virt = f
}

// pagerFile returns the attached virtual file, nil when detached.
func (c *pageCache) pagerFile() *pager.File {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.virt
}

// residentPages returns the current residency, for tests.
func (c *pageCache) residentPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.resident)
}

// CacheLimiter is implemented by stores whose buffer-cache model can be
// bounded; mining runs propagate their memory budget through it.
type CacheLimiter interface {
	// SetCacheLimit bounds the modeled buffer pool to the given bytes (LRU
	// eviction beyond it) and resets residency. Zero removes the bound.
	SetCacheLimit(bytes int64)
}

// PagerBacked is implemented by stores that can rehost their page-residency
// model on the shared pager, so transaction pages and cold slice pages
// draw from one -mem-budget pool instead of split private limits.
type PagerBacked interface {
	// AttachPager delegates residency to a virtual pager file (nil
	// detaches and restores the private LRU model). While attached the
	// store stops charging its own page-cache tallies; the pager's gauges
	// are authoritative.
	AttachPager(f *pager.File)
}

// The delegation above reuses txdb's page numbering verbatim, which is only
// sound while both layers agree on the page size.
var _ [pager.PageSize - iostat.PageSize]struct{}
var _ [iostat.PageSize - pager.PageSize]struct{}
