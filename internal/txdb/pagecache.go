package txdb

import (
	"sync"

	"bbsmine/internal/iostat"
)

// pageCache models the buffer pool for random (probe) accesses, per the
// cost model in iostat: sequential scans stream through a ring buffer and
// never populate the cache, while point fetches stay resident after their
// first touch — as long as the whole file fits the configured limit. When
// the data outgrows the limit, the model degrades to "every random access
// misses", the pessimistic but simple end state of a thrashing pool.
//
// The cache is safe for concurrent use: the parallel refinement engine
// issues Probe fetches from several workers at once, and each page must
// still be charged exactly once on first touch regardless of which worker
// faults it in.
type pageCache struct {
	mu       sync.Mutex
	limit    int64 // bytes; 0 = unlimited
	resident map[int64]struct{}
}

// misses returns the number of page faults for a random access to the byte
// range [start, end) of a file currently size bytes long, updating
// residency.
func (c *pageCache) misses(start, end, size int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if end <= start {
		end = start + 1 // a record read always touches its header page
	}
	first := start / iostat.PageSize
	last := (end - 1) / iostat.PageSize
	if c.limit > 0 && size > c.limit {
		return last - first + 1 // thrashing: nothing stays resident
	}
	if c.resident == nil {
		c.resident = make(map[int64]struct{})
	}
	var n int64
	for p := first; p <= last; p++ {
		if _, ok := c.resident[p]; !ok {
			c.resident[p] = struct{}{}
			n++
		}
	}
	return n
}

// setLimit reconfigures the cache size and drops residency.
func (c *pageCache) setLimit(bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = bytes
	c.resident = nil
}

// CacheLimiter is implemented by stores whose buffer-cache model can be
// bounded; mining runs propagate their memory budget through it.
type CacheLimiter interface {
	// SetCacheLimit bounds the modeled buffer pool to the given bytes and
	// resets residency. Zero removes the bound.
	SetCacheLimit(bytes int64)
}
