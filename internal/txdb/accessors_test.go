package txdb

import (
	"path/filepath"
	"testing"

	"bbsmine/internal/iostat"
)

func TestFileStoreAccessors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.txdb")
	var stats iostat.Stats
	s, err := CreateFileStore(path, &stats)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Path() != path {
		t.Errorf("Path = %q, want %q", s.Path(), path)
	}
	if s.Stats() != &stats {
		t.Error("Stats() does not return the construction sink")
	}
	if err := s.Append(NewTransaction(1, []Item{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
}

func TestFileStoreCacheLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.txdb")
	var stats iostat.Stats
	s, err := WriteAll(path, &stats, makeTxs(300))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetCacheLimit(1) // thrash: every Get misses
	s.Get(7)
	first := stats.DBRandPages()
	if first == 0 {
		t.Fatal("no misses under tiny cache")
	}
	s.Get(7)
	if stats.DBRandPages() != 2*first {
		t.Errorf("second Get: %d misses total, want %d", stats.DBRandPages(), 2*first)
	}
}

func TestMemStoreStatsAccessor(t *testing.T) {
	var stats iostat.Stats
	s := NewMemStore(&stats)
	if s.Stats() != &stats {
		t.Error("Stats() does not return the construction sink")
	}
	// Nil stats gets a private sink, never nil.
	if NewMemStore(nil).Stats() == nil {
		t.Error("nil-stats store has nil sink")
	}
}

func TestCreateFileStoreBadPath(t *testing.T) {
	if _, err := CreateFileStore(filepath.Join(t.TempDir(), "missing-dir", "x"), nil); err == nil {
		t.Error("create under a missing directory succeeded")
	}
}
