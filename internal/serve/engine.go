// Package serve implements bbsd's concurrent mining engine: a single BBS
// index behind an HTTP front-end, with snapshot-isolated queries, batched
// writes and an epoch-keyed query cache.
//
// The concurrency model has one writer and many readers. All writes funnel
// through a commit loop that drains whatever requests have queued, applies
// them to the master index and log, bumps the epoch once per batch, and
// publishes a fresh immutable snapshot (a copy-on-write sigfile.Snapshot
// plus a txdb.LogView taken at the same commit point). Queries never touch
// the master: each one loads the current snapshot pointer and mines a
// private QueryClone, so a query admitted at epoch e sees exactly the data
// of epoch e no matter how many batches commit while it runs.
//
// Identical queries are answered once: results are cached per (epoch,
// scheme, τ, maxlen, budget, constraint), and concurrent identical misses
// collapse into a single mine via single-flight. Admission control bounds
// the number of concurrent cold mines and the queue behind them; everything
// past that is rejected immediately rather than piling up.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/core"
	"bbsmine/internal/iostat"
	"bbsmine/internal/mining"
	"bbsmine/internal/obs"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/txdb"
)

// Sentinel errors, exposed so the HTTP layer (and tests) can map them to
// status codes with errors.Is.
var (
	// ErrInvalid marks a request the engine refused to run (bad scheme,
	// threshold, constraint or write payload).
	ErrInvalid = errors.New("serve: invalid request")
	// ErrOverloaded marks a query rejected by admission control.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrClosed marks a write that arrived after Close began.
	ErrClosed = errors.New("serve: engine closed")
)

// Defaults for the zero values of Options.
const (
	defaultMaxInFlight  = 2
	defaultMaxQueue     = 8
	defaultCacheEntries = 128
	defaultPageCache    = 64 << 20
	writeQueueDepth     = 128
)

// Options configures an Engine. Index and Log are required and must cover
// the same transactions; everything else has a serviceable zero value.
type Options struct {
	// Index is the master BBS index the engine owns from now on: nothing
	// else may mutate it while the engine is open.
	Index *sigfile.BBS
	// Log is the in-memory transaction log backing the index, same
	// ownership rule.
	Log *txdb.AppendLog
	// File, when non-nil, is the durable store: the commit loop appends
	// every insert to it before the in-memory apply, and Close syncs it.
	File *txdb.FileStore
	// IndexPath, when non-empty, is where Close saves the index.
	IndexPath string
	// Workers is the default mining pool size per query (0 = one per CPU);
	// a request may override it, which never changes the answer.
	Workers int
	// MaxInFlight bounds concurrent cold mines (default 2).
	MaxInFlight int
	// MaxQueue bounds cold mines waiting behind the in-flight ones
	// (default 8); beyond it queries fail fast with ErrOverloaded.
	MaxQueue int
	// CacheEntries bounds the query cache (default 128 results).
	CacheEntries int
	// RequestTimeout bounds each mine's run time (0 = unbounded).
	RequestTimeout time.Duration
	// PageCacheLimit bounds the durable store's page cache in bytes
	// (default 64 MiB); ignored when File is nil.
	PageCacheLimit int64
	// Observe receives the server and mining telemetry; nil disables it.
	Observe *obs.Registry
	// Clock supplies the wall clock (default SystemClock); tests inject a
	// fake so served timestamps stay deterministic.
	Clock Clock
}

// snapshot is one immutable (index, log) pair published at a commit point.
// Queries clone from it; the commit loop replaces it wholesale.
type snapshot struct {
	epoch uint64
	idx   *sigfile.BBS
	log   *txdb.LogView
}

// Engine is the serving core: one writer (the commit loop), any number of
// snapshot-isolated readers.
type Engine struct {
	obs       *obs.Registry
	stats     *iostat.Stats
	clock     Clock
	start     time.Time
	idx       *sigfile.BBS // master; commit loop only after New returns
	log       *txdb.AppendLog
	file      *txdb.FileStore
	indexPath string
	workers   int
	maxQueue  int
	timeout   time.Duration
	cache     *queryCache
	admitCh   chan struct{} // in-flight mine slots
	queueLen  atomic.Int64
	snap      atomic.Pointer[snapshot]
	writeCh   chan *writeReq
	loopDone  chan struct{}

	wmu    sync.Mutex // orders writeCh sends against close(writeCh)
	closed bool
}

// New validates the components, publishes the initial snapshot and starts
// the commit loop. The engine owns Index and Log from here on.
func New(opts Options) (*Engine, error) {
	if opts.Index == nil || opts.Log == nil {
		return nil, fmt.Errorf("serve: Options.Index and Options.Log are required")
	}
	if opts.Index.Len() != opts.Log.Len() {
		return nil, fmt.Errorf("serve: index covers %d transactions but the log has %d", opts.Index.Len(), opts.Log.Len())
	}
	if opts.File != nil && opts.File.Len() != opts.Log.Len() {
		return nil, fmt.Errorf("serve: data file has %d transactions but the log has %d", opts.File.Len(), opts.Log.Len())
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = defaultMaxInFlight
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = defaultMaxQueue
	}
	cacheEntries := opts.CacheEntries
	if cacheEntries <= 0 {
		cacheEntries = defaultCacheEntries
	}
	clock := opts.Clock
	if clock == nil {
		clock = SystemClock()
	}
	if opts.File != nil {
		limit := opts.PageCacheLimit
		if limit <= 0 {
			limit = defaultPageCache
		}
		opts.File.SetCacheLimit(limit)
	}
	e := &Engine{
		obs:       opts.Observe,
		stats:     opts.Index.Stats(),
		clock:     clock,
		start:     clock.Now(),
		idx:       opts.Index,
		log:       opts.Log,
		file:      opts.File,
		indexPath: opts.IndexPath,
		workers:   opts.Workers,
		maxQueue:  maxQueue,
		timeout:   opts.RequestTimeout,
		cache:     newQueryCache(cacheEntries, opts.Observe),
		admitCh:   make(chan struct{}, maxInFlight),
		writeCh:   make(chan *writeReq, writeQueueDepth),
		loopDone:  make(chan struct{}),
	}
	e.publish()
	e.obs.SetEpoch(e.idx.Epoch())
	go e.commitLoop()
	return e, nil
}

// publish snapshots the master state. Called from New and the commit loop
// only — the single-writer rule is what makes Snapshot/View safe here.
func (e *Engine) publish() {
	e.snap.Store(&snapshot{
		epoch: e.idx.Epoch(),
		idx:   e.idx.Snapshot(),
		log:   e.log.View(),
	})
}

// Epoch returns the epoch of the currently published snapshot.
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// Close stops accepting writes, drains and commits what is already queued,
// syncs the data file and saves the index if IndexPath is set. In-flight
// queries finish against their snapshots. Safe to call more than once.
func (e *Engine) Close() error {
	e.wmu.Lock()
	if e.closed {
		e.wmu.Unlock()
		<-e.loopDone
		return nil
	}
	e.closed = true
	close(e.writeCh)
	e.wmu.Unlock()
	<-e.loopDone
	var firstErr error
	if e.file != nil {
		if err := e.file.Sync(); err != nil {
			firstErr = fmt.Errorf("serve: syncing the data file: %w", err)
		}
	}
	if e.indexPath != "" {
		if err := e.idx.Save(e.indexPath); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: saving the index: %w", err)
		}
	}
	return firstErr
}

// ---- write path ----

// TxnsRequest is one /txns payload: transactions to insert (items per
// transaction; TIDs are assigned positionally) and positions to tombstone.
// Inserts apply before deletes, so a request may delete a position it just
// inserted.
type TxnsRequest struct {
	Insert [][]int32 `json:"insert,omitempty"`
	Delete []int     `json:"delete,omitempty"`
}

// TxnsResponse reports the outcome: every operation of the request is
// visible to queries at or after Epoch.
type TxnsResponse struct {
	Epoch    uint64 `json:"epoch"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
}

type writeReq struct {
	req  TxnsRequest
	resp chan writeResult
}

type writeResult struct {
	res TxnsResponse
	err error
}

// Apply submits a write and waits for its batch to commit. Requests are
// validated whole before anything applies, so the common failure modes
// (bad items, bad positions) are atomic; a mid-request data-file I/O error
// is not, and the response counts report how far the apply got. A done ctx
// stops the wait, not the commit.
func (e *Engine) Apply(ctx context.Context, req TxnsRequest) (TxnsResponse, error) {
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		return TxnsResponse{Epoch: e.Epoch()}, nil
	}
	wr := &writeReq{req: req, resp: make(chan writeResult, 1)}
	e.wmu.Lock()
	if e.closed {
		e.wmu.Unlock()
		return TxnsResponse{}, ErrClosed
	}
	e.writeCh <- wr // under wmu: blocking here backpressures writers and Close alike
	e.wmu.Unlock()
	if ctx == nil {
		r := <-wr.resp
		return r.res, r.err
	}
	select {
	case r := <-wr.resp:
		return r.res, r.err
	case <-ctx.Done():
		return TxnsResponse{}, fmt.Errorf("serve: write abandoned (the batch still commits): %w", ctx.Err())
	}
}

// commitLoop is the single writer: it blocks for one request, greedily
// drains whatever else has queued, and commits them as one batch with one
// epoch bump.
func (e *Engine) commitLoop() {
	defer close(e.loopDone)
	for wr := range e.writeCh {
		batch := []*writeReq{wr}
	drain:
		for {
			select {
			case more, ok := <-e.writeCh:
				if !ok {
					e.commit(batch)
					return
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		e.commit(batch)
	}
}

// commit applies a batch to the master state, bumps the epoch once if
// anything changed, publishes the new snapshot and answers every request
// with the commit's epoch.
func (e *Engine) commit(batch []*writeReq) {
	results := make([]writeResult, len(batch))
	var ops int64
	for i, wr := range batch {
		res, err := e.applyOne(wr.req)
		results[i] = writeResult{res: res, err: err}
		ops += int64(res.Inserted + res.Deleted)
	}
	epoch := e.idx.Epoch()
	if ops > 0 {
		epoch = e.idx.BumpEpoch()
		e.publish()
		e.obs.SetEpoch(epoch)
		e.obs.AddWriteBatch(ops)
	}
	for i, wr := range batch {
		results[i].res.Epoch = epoch
		wr.resp <- results[i]
	}
}

// applyOne validates one request in full, then applies inserts (data file,
// then log, then index — the recovery-friendly order bbsmine.Open already
// understands) and deletes.
func (e *Engine) applyOne(req TxnsRequest) (TxnsResponse, error) {
	base := e.log.Len()
	txs := make([]txdb.Transaction, len(req.Insert))
	for i, items := range req.Insert {
		tx := txdb.NewTransaction(int64(base+i), items)
		if err := tx.Validate(); err != nil {
			return TxnsResponse{}, fmt.Errorf("%w: insert %d: %w", ErrInvalid, i, err)
		}
		txs[i] = tx
	}
	n := base + len(txs)
	seen := make(map[int]bool, len(req.Delete))
	for _, pos := range req.Delete {
		if pos < 0 || pos >= n {
			return TxnsResponse{}, fmt.Errorf("%w: delete position %d out of range [0,%d)", ErrInvalid, pos, n)
		}
		if seen[pos] {
			return TxnsResponse{}, fmt.Errorf("%w: duplicate delete of position %d", ErrInvalid, pos)
		}
		if pos < base && !e.idx.IsLive(pos) {
			return TxnsResponse{}, fmt.Errorf("%w: position %d is already deleted", ErrInvalid, pos)
		}
		seen[pos] = true
	}
	var resp TxnsResponse
	for _, tx := range txs {
		if e.file != nil {
			if err := e.file.Append(tx); err != nil {
				return resp, fmt.Errorf("serve: appending to the data file: %w", err)
			}
		}
		if err := e.log.Append(tx); err != nil {
			return resp, fmt.Errorf("serve: appending to the log: %w", err)
		}
		e.idx.Insert(tx.Items)
		resp.Inserted++
	}
	for _, pos := range req.Delete {
		tx, err := e.log.Get(pos)
		if err != nil {
			return resp, fmt.Errorf("serve: resolving delete of position %d: %w", pos, err)
		}
		if err := e.idx.Delete(pos, tx.Items); err != nil {
			return resp, fmt.Errorf("serve: deleting position %d: %w", pos, err)
		}
		resp.Deleted++
	}
	return resp, nil
}

// ---- query path ----

// QueryRequest is one /mine payload.
type QueryRequest struct {
	// Scheme is SFS, SFP, DFS or DFP (default DFP).
	Scheme string `json:"scheme,omitempty"`
	// MinSupportFrac is τ as a fraction of the database size; ignored when
	// MinSupportCount is set. One of the two is required.
	MinSupportFrac float64 `json:"minsup,omitempty"`
	// MinSupportCount is the absolute threshold.
	MinSupportCount int `json:"minsup_count,omitempty"`
	// MaxLen bounds pattern length (0 = unbounded).
	MaxLen int `json:"maxlen,omitempty"`
	// MemoryBudget in bytes triggers adaptive three-phase filtering.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// ConstraintItem, when set, mines only transactions containing the
	// item (single-filter schemes only).
	ConstraintItem *int32 `json:"constraint_item,omitempty"`
	// Workers overrides the engine's default pool size for this query;
	// the answer is identical for every value.
	Workers int `json:"workers,omitempty"`
}

// PatternJSON is one mined itemset on the wire.
type PatternJSON struct {
	Items   []int32 `json:"items"`
	Support int     `json:"support"`
	Exact   bool    `json:"exact"`
}

// QueryResponse is one /mine answer. Patterns is canonical-order and
// depends only on (epoch, scheme, τ, maxlen, budget, constraint) — never
// on Workers, the cache, or concurrent writes. It is kept in encoded form:
// the pattern set can run to hundreds of thousands of itemsets, and the
// cache serves the same bytes to every hit rather than re-encoding them
// per request. Call DecodePatterns for the typed view.
type QueryResponse struct {
	Epoch          uint64          `json:"epoch"`
	Scheme         string          `json:"scheme"`
	Tau            int             `json:"tau"`
	Cached         bool            `json:"cached"`
	Shared         bool            `json:"shared"`
	Patterns       json.RawMessage `json:"patterns"`
	Candidates     int             `json:"candidates"`
	FalseDrops     int             `json:"false_drops"`
	Certain        int             `json:"certain"`
	ProbedPatterns int             `json:"probed_patterns"`
}

// DecodePatterns unmarshals the pattern array.
func (r *QueryResponse) DecodePatterns() ([]PatternJSON, error) {
	var ps []PatternJSON
	if err := json.Unmarshal(r.Patterns, &ps); err != nil {
		return nil, fmt.Errorf("serve: decoding patterns: %w", err)
	}
	return ps, nil
}

// answer is one mined result rendered for the wire exactly once, at mine
// time. The query cache and single-flight waiters hand out the same
// pre-encoded patterns, which keeps a cache hit free of the dominant cost
// of a large answer (reflection-encoding the pattern array).
type answer struct {
	patterns       json.RawMessage
	candidates     int
	falseDrops     int
	certain        int
	probedPatterns int
}

// renderAnswer encodes a mining result's patterns into their wire form.
func renderAnswer(res *core.Result) (*answer, error) {
	ps := make([]PatternJSON, len(res.Patterns))
	for i, p := range res.Patterns {
		ps[i] = PatternJSON{Items: p.Items, Support: p.Support, Exact: p.Exact}
	}
	raw, err := json.Marshal(ps)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding patterns: %w", err)
	}
	return &answer{
		patterns:       raw,
		candidates:     res.Candidates,
		falseDrops:     res.FalseDrops,
		certain:        res.Certain,
		probedPatterns: res.ProbedPatterns,
	}, nil
}

func parseScheme(s string) (core.Scheme, error) {
	switch strings.ToUpper(s) {
	case "", "DFP":
		return core.DFP, nil
	case "DFS":
		return core.DFS, nil
	case "SFP":
		return core.SFP, nil
	case "SFS":
		return core.SFS, nil
	}
	return 0, fmt.Errorf("%w: unknown scheme %q (want SFS, SFP, DFS or DFP)", ErrInvalid, s)
}

// Query answers one mining request against the current snapshot: cache
// hit, single-flight join, or a fresh mine under admission control.
func (e *Engine) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	constraint := int32(-1)
	if req.ConstraintItem != nil {
		if *req.ConstraintItem < 0 {
			return nil, fmt.Errorf("%w: negative constraint item %d", ErrInvalid, *req.ConstraintItem)
		}
		if scheme == core.DFS || scheme == core.DFP {
			return nil, fmt.Errorf("%w: constrained mining needs a single-filter scheme (SFS or SFP), got %s", ErrInvalid, scheme)
		}
		constraint = *req.ConstraintItem
	}
	if req.MinSupportCount <= 0 && (req.MinSupportFrac <= 0 || req.MinSupportFrac > 1) {
		return nil, fmt.Errorf("%w: need minsup_count > 0 or minsup in (0,1], got %d / %v",
			ErrInvalid, req.MinSupportCount, req.MinSupportFrac)
	}
	e.obs.AddServerQuery()
	for {
		snap := e.snap.Load()
		tau := req.MinSupportCount
		if tau <= 0 {
			tau = mining.MinSupportCount(req.MinSupportFrac, snap.idx.Len())
		}
		key := queryKey{
			epoch:      snap.epoch,
			scheme:     scheme,
			tau:        tau,
			maxLen:     req.MaxLen,
			memBudget:  req.MemoryBudget,
			constraint: constraint,
		}
		cached, f, leader := e.cache.join(key)
		if cached != nil {
			e.obs.AddCacheHit()
			return buildResponse(snap.epoch, scheme, tau, cached, true, false), nil
		}
		if !leader {
			e.obs.AddSharedFlight()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("serve: query abandoned: %w", ctx.Err())
			}
			if f.err == nil {
				return buildResponse(snap.epoch, scheme, tau, f.res, false, true), nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				// The leader died of its own deadline, not of the query.
				// This waiter is still live (checked above), so go around
				// and become — or queue behind — a fresh leader.
				if ctx.Err() != nil {
					return nil, fmt.Errorf("serve: query abandoned: %w", ctx.Err())
				}
				continue
			}
			return nil, f.err
		}
		e.obs.AddCacheMiss()
		res, mineErr := e.mine(ctx, snap, req, scheme, tau)
		var ans *answer
		if mineErr == nil {
			ans, mineErr = renderAnswer(res)
		}
		e.cache.finish(key, ans, mineErr)
		if mineErr != nil {
			return nil, mineErr
		}
		return buildResponse(snap.epoch, scheme, tau, ans, false, false), nil
	}
}

// mine runs one cold query against a snapshot: admission slot, per-request
// deadline, private index clone and log view, then core.Mine.
func (e *Engine) mine(ctx context.Context, snap *snapshot, req QueryRequest, scheme core.Scheme, tau int) (*core.Result, error) {
	release, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	mineCtx := ctx
	if e.timeout > 0 {
		var cancel context.CancelFunc
		mineCtx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	idx := snap.idx.QueryClone(e.stats)
	store := snap.log.Clone()
	var constraint *bitvec.Vector
	if req.ConstraintItem != nil {
		want := []txdb.Item{*req.ConstraintItem}
		constraint, err = core.BuildConstraint(store, func(_ int, tx txdb.Transaction) bool {
			return tx.Contains(want)
		})
		if err != nil {
			return nil, err
		}
	}
	miner, err := core.NewMiner(idx, store, e.stats)
	if err != nil {
		return nil, fmt.Errorf("serve: binding the snapshot: %w", err)
	}
	workers := req.Workers
	if workers == 0 {
		workers = e.workers
	}
	return miner.Mine(core.Config{
		Ctx:          mineCtx,
		MinSupport:   tau,
		Scheme:       scheme,
		MemoryBudget: req.MemoryBudget,
		MaxLen:       req.MaxLen,
		Workers:      workers,
		Constraint:   constraint,
		Observe:      e.obs,
	})
}

// admit reserves a mining slot, queueing up to maxQueue waiters behind the
// in-flight mines; anything beyond fails fast with ErrOverloaded.
func (e *Engine) admit(ctx context.Context) (func(), error) {
	select {
	case e.admitCh <- struct{}{}:
	default:
		if e.queueLen.Add(1) > int64(e.maxQueue) {
			e.queueLen.Add(-1)
			e.obs.AddRejected()
			return nil, fmt.Errorf("%w: %d mines in flight and %d queued", ErrOverloaded, cap(e.admitCh), e.maxQueue)
		}
		e.obs.IncQueued()
		err := func() error {
			defer e.queueLen.Add(-1)
			defer e.obs.DecQueued()
			select {
			case e.admitCh <- struct{}{}:
				return nil
			case <-ctx.Done():
				return fmt.Errorf("serve: queued query abandoned: %w", ctx.Err())
			}
		}()
		if err != nil {
			return nil, err
		}
	}
	e.obs.IncInflight()
	return func() {
		e.obs.DecInflight()
		<-e.admitCh
	}, nil
}

func buildResponse(epoch uint64, scheme core.Scheme, tau int, ans *answer, cached, shared bool) *QueryResponse {
	return &QueryResponse{
		Epoch:          epoch,
		Scheme:         scheme.String(),
		Tau:            tau,
		Cached:         cached,
		Shared:         shared,
		Patterns:       ans.patterns,
		Candidates:     ans.candidates,
		FalseDrops:     ans.falseDrops,
		Certain:        ans.certain,
		ProbedPatterns: ans.probedPatterns,
	}
}

// ---- stats ----

// StatsInfo is the /stats answer: a consistent view of one snapshot.
type StatsInfo struct {
	Epoch         uint64  `json:"epoch"`
	Transactions  int     `json:"transactions"`
	Live          int     `json:"live"`
	Deleted       int     `json:"deleted"`
	Items         int     `json:"items"`
	SliceCount    int     `json:"m"`
	IndexBytes    int64   `json:"index_bytes"`
	CachedQueries int     `json:"cached_queries"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats reports the published snapshot's shape plus cache residency.
func (e *Engine) Stats() StatsInfo {
	snap := e.snap.Load()
	return StatsInfo{
		Epoch:         snap.epoch,
		Transactions:  snap.idx.Len(),
		Live:          snap.idx.Live(),
		Deleted:       snap.idx.Deleted(),
		Items:         len(snap.idx.Items()),
		SliceCount:    snap.idx.M(),
		IndexBytes:    snap.idx.TotalBytes(),
		CachedQueries: e.cache.len(),
		UptimeSeconds: e.clock.Now().Sub(e.start).Seconds(),
	}
}
