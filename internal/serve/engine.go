// Package serve implements bbsd's concurrent mining engine: one or more
// BBS shards behind an HTTP front-end, with snapshot-isolated queries,
// batched per-shard writes and an epoch-keyed query cache.
//
// The concurrency model is scatter-gather over N shards (N = 1 is the
// unsharded special case, not a separate code path). A small router assigns
// every inserted transaction a global ordinal and routes it round-robin —
// ordinal g lives in shard g mod N — then hands each shard its slice of the
// request. Each shard owns a commit loop: the loop drains whatever
// sub-requests have queued, applies them to that shard's index and log,
// bumps that shard's epoch once per batch, and publishes a fresh immutable
// per-shard snapshot (a copy-on-write sigfile.Snapshot plus a txdb.LogView
// taken at the same commit point). Shards never wait for each other, which
// is the point: with N shards there are N independent writers instead of
// one.
//
// Queries never touch the masters: each one loads the N snapshot pointers —
// an epoch vector (e_0, ..., e_{N-1}) — and mines a private view of it.
// The isolation guarantee is per shard: a query sees shard s exactly at
// epoch e_s, never a half-applied batch, but the vector is not a global
// cut — a multi-shard write becomes visible shard by shard, and a query
// may observe one shard's half of it before another's. Requests validate
// atomically in the router (a rejected request changes nothing anywhere);
// what relaxes under sharding is only cross-shard apply atomicity. For
// mining, the per-shard snapshots are block-concatenated into one merged
// index (a row permutation of the unsharded index, so every answer is
// byte-identical to an unsharded engine holding the same data at the same
// epochs); the merge is built once per epoch vector and cached.
//
// Identical queries are answered once: results are cached per (epoch
// vector, scheme, τ, maxlen, budget, constraint), and concurrent identical
// misses collapse into a single mine via single-flight. Admission control
// bounds the number of concurrent cold mines and the queue behind them;
// everything past that is rejected immediately rather than piling up.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bbsmine/internal/bitvec"
	"bbsmine/internal/core"
	"bbsmine/internal/iostat"
	"bbsmine/internal/mining"
	"bbsmine/internal/obs"
	"bbsmine/internal/pager"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/txdb"
)

// Sentinel errors, exposed so the HTTP layer (and tests) can map them to
// status codes with errors.Is.
var (
	// ErrInvalid marks a request the engine refused to run (bad scheme,
	// threshold, constraint or write payload).
	ErrInvalid = errors.New("serve: invalid request")
	// ErrOverloaded marks a query rejected by admission control.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrClosed marks a write that arrived after Close began.
	ErrClosed = errors.New("serve: engine closed")
)

// Defaults for the zero values of Options.
const (
	defaultMaxInFlight  = 2
	defaultMaxQueue     = 8
	defaultCacheEntries = 128
	defaultPageCache    = 64 << 20
	writeQueueDepth     = 128
)

// ShardOptions is one shard's state: its index, its in-memory log, and
// optionally its durable store and index path. Index and Log are required
// and must cover the same transactions.
type ShardOptions struct {
	// Index is the shard's master BBS index, owned by the engine from now
	// on: nothing else may mutate it while the engine is open.
	Index *sigfile.BBS
	// Log is the in-memory transaction log backing the index, same
	// ownership rule.
	Log *txdb.AppendLog
	// File, when non-nil, is the shard's durable store: the shard's commit
	// loop appends every insert to it before the in-memory apply, and Close
	// syncs it.
	File *txdb.FileStore
	// IndexPath, when non-empty, is where Close saves the shard's index.
	IndexPath string
}

// Options configures an Engine. Provide either the single-shard sugar
// fields (Index, Log, File, IndexPath — exactly one shard) or Shards, not
// both; everything else has a serviceable zero value.
type Options struct {
	// Index, Log, File and IndexPath configure a one-shard engine; they are
	// shorthand for Shards with a single entry.
	Index     *sigfile.BBS
	Log       *txdb.AppendLog
	File      *txdb.FileStore
	IndexPath string
	// Shards configures one entry per shard. The shards' lengths must
	// satisfy the round-robin layout (shard i holds ceil((n-i)/N) of the n
	// transactions), which is what shard.Open produces.
	Shards []ShardOptions
	// Workers is the default mining pool size per query (0 = one per CPU);
	// a request may override it, which never changes the answer.
	Workers int
	// MaxInFlight bounds concurrent cold mines (default 2).
	MaxInFlight int
	// MaxQueue bounds cold mines waiting behind the in-flight ones
	// (default 8); beyond it queries fail fast with ErrOverloaded.
	MaxQueue int
	// CacheEntries bounds the query cache (default 128 results).
	CacheEntries int
	// RequestTimeout bounds each mine's run time (0 = unbounded).
	RequestTimeout time.Duration
	// PageCacheLimit bounds the durable stores' page caches in bytes
	// (default 64 MiB), split evenly across the shards that have files.
	// Ignored when MemBudget is set: tiered mode pools all residency.
	PageCacheLimit int64
	// MemBudget, when > 0, enables tiered slice storage: each shard's
	// index is split into an obs-driven hot tier and an on-disk cold tier
	// (cold files under ColdDir), and slice frames plus transaction-store
	// page residency share one pager pool of this many bytes.
	MemBudget int64
	// ColdDir is where tiered mode writes the per-shard cold files.
	// Required when MemBudget > 0.
	ColdDir string
	// Observe receives the server and mining telemetry; nil disables it.
	Observe *obs.Registry
	// RequestLog, when non-nil, receives one structured JSON line per
	// served request (id, class, verdict, epoch vector, stage timings,
	// outcome).
	RequestLog *obs.RequestLog
	// Clock supplies the wall clock (default SystemClock); tests inject a
	// fake so served timestamps stay deterministic.
	Clock Clock
}

// snapshot is one shard's immutable (index, log) pair published at a commit
// point. Queries clone from it; the shard's commit loop replaces it
// wholesale.
//
// Under tiered storage a snapshot also owns a pager epoch tag: frames a
// query faults while the snapshot is current inherit the tag and stay
// evict-exempt until the snapshot is superseded AND its last query drains
// (refs: one publisher ref dropped at replacement, one per in-flight
// mine). A query can race the drain — load the pointer after the tag was
// already released — which is benign by design: pager pinning is advisory,
// so an unprotected snapshot re-faults pages instead of misreading them,
// and the released CAS keeps the tag from being freed twice.
type snapshot struct {
	epoch    uint64
	idx      *sigfile.BBS
	log      *txdb.LogView
	pg       *pager.Pager // nil when tiering is off
	pagerTag uint64
	refs     atomic.Int64
	released atomic.Bool
}

func (sn *snapshot) retain() { sn.refs.Add(1) }

func (sn *snapshot) release() {
	if sn.refs.Add(-1) == 0 && sn.released.CompareAndSwap(false, true) {
		sn.pg.ReleaseEpoch(sn.pagerTag)
	}
}

// engineShard is one shard's serving state: the master index and log its
// commit loop owns, the published snapshot readers load, and the channel
// the router feeds.
type engineShard struct {
	id        int
	idx       *sigfile.BBS // master; this shard's commit loop only after New returns
	log       *txdb.AppendLog
	file      *txdb.FileStore
	indexPath string
	pg        *pager.Pager // nil when tiering is off
	logVirt   *pager.File  // virtual residency file attached to published log views
	snap      atomic.Pointer[snapshot]
	writeCh   chan *shardWrite
	loopDone  chan struct{}
}

// Engine is the serving core: N per-shard writers (the commit loops) behind
// a thin router, and any number of snapshot-isolated readers.
type Engine struct {
	obs      *obs.Registry
	reqlog   *obs.RequestLog
	stats    *iostat.Stats
	clock    Clock
	start    time.Time
	idPrefix string        // request-ID prefix, derived from the start timestamp
	reqSeq   atomic.Uint64 // request-ID sequence
	shards   []*engineShard
	workers  int
	maxQueue int
	timeout  time.Duration
	cache    *queryCache
	pager    *pager.Pager  // shared frame pool; nil when tiering is off
	admitCh  chan struct{} // in-flight mine slots
	queueLen atomic.Int64
	wedged   atomic.Pointer[wedgeState] // set on an apply I/O error; fails all later writes

	// merged is the one-entry cache of the block-concatenated mining view,
	// keyed by epoch vector; unused (and never built) with one shard.
	merged struct {
		mu  sync.Mutex
		key string
		idx *sigfile.BBS
	}

	// The router: assigns global ordinals, validates requests whole,
	// splits them across the shards and tracks tombstones. rmu also orders
	// writeCh sends against close(writeCh).
	rmu     sync.Mutex
	closed  bool
	nextPos int          // next global ordinal to assign
	dead    map[int]bool // every tombstoned global position, seeded at New
}

// wedgeState records the first apply-path I/O error. Inserts are assigned
// global ordinals before they reach a shard, so an insert that fails to
// apply would leave a hole in the round-robin layout; rather than serve a
// corrupted layout, the engine stops accepting writes and reports the
// error. Queries keep working against the published snapshots.
type wedgeState struct{ err error }

// New validates the components, publishes the initial snapshots and starts
// one commit loop per shard. The engine owns the indexes and logs from here
// on.
func New(opts Options) (*Engine, error) {
	parts := opts.Shards
	if len(parts) == 0 {
		if opts.Index == nil || opts.Log == nil {
			return nil, fmt.Errorf("serve: Options.Index and Options.Log are required")
		}
		parts = []ShardOptions{{Index: opts.Index, Log: opts.Log, File: opts.File, IndexPath: opts.IndexPath}}
	} else if opts.Index != nil || opts.Log != nil || opts.File != nil || opts.IndexPath != "" {
		return nil, fmt.Errorf("serve: set Options.Shards or the single-shard fields, not both")
	}
	n := len(parts)
	total := 0
	for s, p := range parts {
		if p.Index == nil || p.Log == nil {
			return nil, fmt.Errorf("serve: shard %d needs Index and Log", s)
		}
		if p.Index.Len() != p.Log.Len() {
			return nil, fmt.Errorf("serve: shard %d index covers %d transactions but the log has %d", s, p.Index.Len(), p.Log.Len())
		}
		if p.File != nil && p.File.Len() != p.Log.Len() {
			return nil, fmt.Errorf("serve: shard %d data file has %d transactions but the log has %d", s, p.File.Len(), p.Log.Len())
		}
		total += p.Index.Len()
	}
	for s, p := range parts {
		want := (total - s + n - 1) / n
		if p.Index.Len() != want {
			return nil, fmt.Errorf("serve: shard %d holds %d rows, round-robin layout over %d rows needs %d", s, p.Index.Len(), total, want)
		}
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = defaultMaxInFlight
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = defaultMaxQueue
	}
	cacheEntries := opts.CacheEntries
	if cacheEntries <= 0 {
		cacheEntries = defaultCacheEntries
	}
	clock := opts.Clock
	if clock == nil {
		clock = SystemClock()
	}
	var pg *pager.Pager
	if opts.MemBudget > 0 {
		if opts.ColdDir == "" {
			return nil, fmt.Errorf("serve: MemBudget needs ColdDir for the cold files")
		}
		pg = pager.New(opts.MemBudget)
		// Mirror bbsmine.Database.Tier: half the budget pins hot slices,
		// the rest is the frame pool cold pages and transaction pages share.
		perShard := opts.MemBudget / 2 / int64(n)
		var touches []uint64
		if opts.Observe != nil {
			touches = opts.Observe.SliceTouches()
		}
		for s, p := range parts {
			cold := filepath.Join(opts.ColdDir, fmt.Sprintf("shard-%03d.cold", s))
			if err := p.Index.Tier(pg, cold, perShard, touches); err != nil {
				return nil, fmt.Errorf("serve: tiering shard %d: %w", s, err)
			}
			if p.File != nil {
				p.File.AttachPager(pg.Virtual(fmt.Sprintf("txdb/shard-%d", s)))
			}
		}
	} else {
		files := 0
		for _, p := range parts {
			if p.File != nil {
				files++
			}
		}
		if files > 0 {
			limit := opts.PageCacheLimit
			if limit <= 0 {
				limit = defaultPageCache
			}
			per := limit / int64(files)
			for _, p := range parts {
				if p.File != nil {
					p.File.SetCacheLimit(per)
				}
			}
		}
	}
	e := &Engine{
		obs:      opts.Observe,
		reqlog:   opts.RequestLog,
		stats:    parts[0].Index.Stats(),
		clock:    clock,
		start:    clock.Now(),
		idPrefix: fmt.Sprintf("r%x", uint64(clock.Now().UnixNano())),
		workers:  opts.Workers,
		maxQueue: maxQueue,
		timeout:  opts.RequestTimeout,
		cache:    newQueryCache(cacheEntries, opts.Observe),
		pager:    pg,
		admitCh:  make(chan struct{}, maxInFlight),
		nextPos:  total,
		dead:     make(map[int]bool),
	}
	e.shards = make([]*engineShard, n)
	for s, p := range parts {
		sh := &engineShard{
			id:        s,
			idx:       p.Index,
			log:       p.Log,
			file:      p.File,
			indexPath: p.IndexPath,
			pg:        pg,
			logVirt:   pg.Virtual(fmt.Sprintf("log/shard-%d", s)),
			writeCh:   make(chan *shardWrite, writeQueueDepth),
			loopDone:  make(chan struct{}),
		}
		for local := 0; local < p.Index.Len(); local++ {
			if !p.Index.IsLive(local) {
				e.dead[local*n+s] = true
			}
		}
		sh.publish()
		e.obs.SetShardEpoch(s, sh.idx.Epoch())
		e.shards[s] = sh
	}
	e.obs.SetEpoch(e.Epoch())
	if pg != nil && opts.Observe != nil {
		opts.Observe.SetPagerSource(func() obs.PagerMetrics {
			ps := pg.Stats()
			var hot, cold int
			for _, sh := range e.shards {
				// Census the published snapshot, not the master: the
				// commit loop mutates the master's slice table.
				h, c := sh.snap.Load().idx.TierCensus()
				hot += h
				cold += c
			}
			return obs.PagerMetrics{
				ResidentBytes: ps.ResidentBytes,
				ReservedBytes: ps.ReservedBytes,
				Faults:        ps.Faults,
				Hits:          ps.Hits,
				Evictions:     ps.Evictions,
				HitRatio:      ps.HitRatio(),
				SlicesHot:     int64(hot),
				SlicesCold:    int64(cold),
			}
		})
	}
	for _, sh := range e.shards {
		go e.shardLoop(sh)
	}
	return e, nil
}

// publish snapshots the shard's master state. Called from New and the
// shard's own commit loop only — the per-shard single-writer rule is what
// makes Snapshot/View safe here. Each published snapshot carries a fresh
// pager epoch tag and the publisher's ref; the replaced snapshot loses
// that ref, so its tag drains once its last in-flight query finishes.
func (sh *engineShard) publish() {
	next := &snapshot{
		epoch:    sh.idx.Epoch(),
		idx:      sh.idx.Snapshot(),
		log:      sh.log.View(),
		pg:       sh.pg,
		pagerTag: sh.pg.AcquireEpoch(),
	}
	if sh.logVirt != nil {
		next.log.AttachPager(sh.logVirt)
	}
	next.refs.Store(1)
	if old := sh.snap.Swap(next); old != nil {
		old.release()
	}
}

// Shards returns the engine's shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// loadSnaps loads every shard's current snapshot pointer. The result is an
// epoch vector, not a global cut: each shard is internally consistent at
// its own epoch.
func (e *Engine) loadSnaps() []*snapshot {
	snaps := make([]*snapshot, len(e.shards))
	for i, sh := range e.shards {
		snaps[i] = sh.snap.Load()
	}
	return snaps
}

// epochKey encodes an epoch vector as the cache-key string "e0.e1...".
func epochKey(snaps []*snapshot) string {
	if len(snaps) == 1 {
		return strconv.FormatUint(snaps[0].epoch, 10)
	}
	buf := make([]byte, 0, 4*len(snaps))
	for i, sn := range snaps {
		if i > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendUint(buf, sn.epoch, 10)
	}
	return string(buf)
}

// epochSum collapses an epoch vector into the scalar the wire format
// reports: each term only grows, so the sum is monotone and an unsharded
// engine's sum is its one epoch, unchanged.
func epochSum(snaps []*snapshot) uint64 {
	var sum uint64
	for _, sn := range snaps {
		sum += sn.epoch
	}
	return sum
}

// epochVector returns the per-shard epochs of a snapshot vector.
func epochVector(snaps []*snapshot) []uint64 {
	out := make([]uint64, len(snaps))
	for i, sn := range snaps {
		out[i] = sn.epoch
	}
	return out
}

// Epoch returns the sum of the currently published per-shard epochs (the
// shard epoch itself when unsharded).
func (e *Engine) Epoch() uint64 { return epochSum(e.loadSnaps()) }

// EpochVector returns the currently published per-shard epochs, in shard
// order.
func (e *Engine) EpochVector() []uint64 { return epochVector(e.loadSnaps()) }

// Close stops accepting writes, drains and commits what is already queued
// in every shard, syncs the data files and saves the indexes where an
// IndexPath is set. In-flight queries finish against their snapshots. Safe
// to call more than once.
func (e *Engine) Close() error {
	e.rmu.Lock()
	if e.closed {
		e.rmu.Unlock()
		for _, sh := range e.shards {
			<-sh.loopDone
		}
		return nil
	}
	e.closed = true
	for _, sh := range e.shards {
		close(sh.writeCh)
	}
	e.rmu.Unlock()
	for _, sh := range e.shards {
		<-sh.loopDone
	}
	var firstErr error
	for _, sh := range e.shards {
		if sh.file != nil {
			if err := sh.file.Sync(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("serve: syncing shard %d's data file: %w", sh.id, err)
			}
		}
		if sh.indexPath != "" {
			if err := sh.idx.Save(sh.indexPath); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("serve: saving shard %d's index: %w", sh.id, err)
			}
		}
	}
	return firstErr
}

// ---- write path ----

// TxnsRequest is one /txns payload: transactions to insert (items per
// transaction; TIDs are assigned positionally) and positions to tombstone.
// Inserts apply before deletes, so a request may delete a position it just
// inserted.
type TxnsRequest struct {
	Insert [][]int32 `json:"insert,omitempty"`
	Delete []int     `json:"delete,omitempty"`
}

// TxnsResponse reports the outcome: every operation of the request is
// visible to queries at or after Epoch. On a sharded engine Epoch is the
// sum of the per-shard epochs and Epochs carries the vector itself; the
// request's operations become visible shard by shard as each commit loop
// publishes, and the response is sent only after the last one has.
type TxnsResponse struct {
	Epoch    uint64   `json:"epoch"`
	Epochs   []uint64 `json:"epochs,omitempty"`
	Inserted int      `json:"inserted"`
	Deleted  int      `json:"deleted"`
}

// localDel is one routed delete: the shard-local position plus the global
// one for error messages.
type localDel struct {
	local  int
	global int
}

// shardWrite is one shard's slice of a validated request. reqID carries the
// originating request's ID into the shard's commit loop so per-shard apply
// trace events stay attributable end to end.
type shardWrite struct {
	job   *applyJob
	reqID string
	txs   []txdb.Transaction // inserts in ordinal order, TIDs pre-assigned
	dels  []localDel
}

// applyJob gathers the per-shard outcomes of one request. The last shard
// to finish closes done; epochs holds each participating shard's commit
// epoch.
type applyJob struct {
	mu       sync.Mutex
	inserted int
	deleted  int
	err      error // first per-shard apply error
	epochs   map[int]uint64
	pending  int
	done     chan struct{}
}

// Apply submits a write and waits for every involved shard to commit its
// slice of it. The request is validated whole in the router before anything
// is enqueued, so every validation failure is atomic — nothing applied
// anywhere. A mid-apply data-file I/O error is not atomic: the response
// counts report how far the apply got, and the engine stops accepting
// writes (the error would otherwise leave a hole in the round-robin
// layout). A done ctx stops the wait, not the commits.
//
// When the context carries a span (WithSpan), Apply fills it; otherwise it
// mints one internally, so the write-latency histogram and request log see
// every write regardless of entry point.
func (e *Engine) Apply(ctx context.Context, req TxnsRequest) (TxnsResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := SpanFrom(ctx)
	if sp == nil {
		ctx, sp = e.StartSpan(ctx, "", obs.ClassWrite)
	}
	sp.Class = obs.ClassWrite
	start := e.clock.Now()
	res, err := e.applyInner(ctx, req, sp)
	e.finishSpan(sp, start, err)
	return res, err
}

func (e *Engine) applyInner(ctx context.Context, req TxnsRequest, sp *Span) (TxnsResponse, error) {
	if len(req.Insert) == 0 && len(req.Delete) == 0 {
		snaps := e.loadSnaps()
		res := TxnsResponse{Epoch: epochSum(snaps)}
		if len(e.shards) > 1 {
			res.Epochs = epochVector(snaps)
		}
		sp.verdict = "applied"
		sp.epoch = res.Epoch
		sp.epochs = res.Epochs
		return res, nil
	}
	if w := e.wedged.Load(); w != nil {
		return TxnsResponse{}, fmt.Errorf("serve: write path disabled by an earlier apply error: %w", w.err)
	}
	n := len(e.shards)
	job := &applyJob{epochs: make(map[int]uint64), done: make(chan struct{})}

	e.rmu.Lock()
	if e.closed {
		e.rmu.Unlock()
		return TxnsResponse{}, ErrClosed
	}
	base := e.nextPos
	end := base + len(req.Insert)
	writes := make([]*shardWrite, n)
	sub := func(s int) *shardWrite {
		if writes[s] == nil {
			writes[s] = &shardWrite{job: job, reqID: sp.ID}
		}
		return writes[s]
	}
	for i, items := range req.Insert {
		tx := txdb.NewTransaction(int64(base+i), items)
		if err := tx.Validate(); err != nil {
			e.rmu.Unlock()
			return TxnsResponse{}, fmt.Errorf("%w: insert %d: %w", ErrInvalid, i, err)
		}
		s := (base + i) % n
		sub(s).txs = append(sub(s).txs, tx)
	}
	seen := make(map[int]bool, len(req.Delete))
	for _, pos := range req.Delete {
		if pos < 0 || pos >= end {
			e.rmu.Unlock()
			return TxnsResponse{}, fmt.Errorf("%w: delete position %d out of range [0,%d)", ErrInvalid, pos, end)
		}
		if seen[pos] {
			e.rmu.Unlock()
			return TxnsResponse{}, fmt.Errorf("%w: duplicate delete of position %d", ErrInvalid, pos)
		}
		if pos < base && e.dead[pos] {
			e.rmu.Unlock()
			return TxnsResponse{}, fmt.Errorf("%w: position %d is already deleted", ErrInvalid, pos)
		}
		seen[pos] = true
		sub(pos % n).dels = append(sub(pos%n).dels, localDel{local: pos / n, global: pos})
	}
	// The request is valid as a whole: commit the routing decisions and
	// fan the slices out. Holding rmu through the sends keeps shard
	// channel order equal to ordinal order, so a delete of a just-inserted
	// position always lands behind its insert.
	e.nextPos = end
	for _, pos := range req.Delete {
		e.dead[pos] = true
	}
	for s, w := range writes {
		if w != nil {
			job.pending++
			sp.shards = append(sp.shards, s)
		}
	}
	enqueued := e.clock.Now()
	for s, w := range writes {
		if w != nil {
			e.shards[s].writeCh <- w
		}
	}
	e.rmu.Unlock()

	select {
	case <-job.done:
		sp.commitNs = e.clock.Now().Sub(enqueued).Nanoseconds()
	case <-ctx.Done():
		if ctx.Err() != nil {
			return TxnsResponse{}, fmt.Errorf("serve: write abandoned (the batches still commit): %w", ctx.Err())
		}
	}
	res := TxnsResponse{Inserted: job.inserted, Deleted: job.deleted}
	epochs := make([]uint64, n)
	for s := range e.shards {
		if ep, ok := job.epochs[s]; ok {
			epochs[s] = ep
		} else {
			epochs[s] = e.shards[s].snap.Load().epoch
		}
	}
	for _, ep := range epochs {
		res.Epoch += ep
	}
	if n > 1 {
		res.Epochs = epochs
	}
	sp.inserted, sp.deleted = res.Inserted, res.Deleted
	sp.epoch = res.Epoch
	sp.epochs = res.Epochs
	if job.err == nil {
		sp.verdict = "applied"
	}
	return res, job.err
}

// finishSpan completes a request span: it stamps the total latency, derives
// the verdict from the error when the happy path didn't set one, feeds the
// SLO histograms, emits the tracer's request event and writes the request
// log line. Shared by the read and write paths.
func (e *Engine) finishSpan(sp *Span, start time.Time, err error) {
	sp.totalNs = e.clock.Now().Sub(start).Nanoseconds()
	if sp.verdict == "" {
		switch {
		case err == nil:
			sp.verdict = "ok"
		case errors.Is(err, ErrOverloaded):
			sp.verdict = "rejected"
		case errors.Is(err, ErrInvalid):
			sp.verdict = "invalid"
		default:
			sp.verdict = "error"
		}
	}
	e.obs.ObserveRequestLatency(sp.Class, sp.totalNs)
	for st := obs.Stage(0); int(st) < len(sp.stageNs); st++ {
		if ns := sp.stageNs[st]; ns > 0 {
			e.obs.ObserveStage(st, ns)
		}
	}
	if e.obs.Tracing() {
		e.obs.Emit(obs.Event{Kind: "request", Subtree: -1, Req: sp.ID, Verdict: sp.verdict, DurNs: sp.totalNs})
	}
	if e.reqlog == nil {
		return
	}
	rec := obs.RequestRecord{
		ID:       sp.ID,
		Class:    sp.Class.String(),
		Verdict:  sp.verdict,
		Scheme:   sp.scheme,
		Tau:      sp.tau,
		Epoch:    sp.epoch,
		Epochs:   sp.epochs,
		Patterns: sp.patterns,
		Inserted: sp.inserted,
		Deleted:  sp.deleted,
		Shards:   sp.shards,
		QueueNs:  sp.StageNs(obs.StageQueue),
		CacheNs:  sp.StageNs(obs.StageCache),
		BindNs:   sp.StageNs(obs.StageBind),
		MineNs:   sp.StageNs(obs.StageMine),
		RenderNs: sp.StageNs(obs.StageRender),
		CommitNs: sp.commitNs,
		TotalNs:  sp.totalNs,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	e.reqlog.Log(rec)
}

// shardLoop is shard sh's single writer: it blocks for one sub-request,
// greedily drains whatever else has queued for this shard, and commits them
// as one batch with one epoch bump.
func (e *Engine) shardLoop(sh *engineShard) {
	defer close(sh.loopDone)
	for w := range sh.writeCh {
		batch := []*shardWrite{w}
	drain:
		for {
			select {
			case more, ok := <-sh.writeCh:
				if !ok {
					e.shardCommit(sh, batch)
					return
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		e.shardCommit(sh, batch)
	}
}

// shardCommit applies a batch to the shard's master state, bumps the
// shard's epoch once if anything changed, publishes the new snapshot and
// reports each sub-request's outcome to its job. With tracing on it emits
// one apply event per sub-request (tagged with the originating request ID)
// and one commit event per batch, both carrying this shard's index.
func (e *Engine) shardCommit(sh *engineShard, batch []*shardWrite) {
	type outcome struct {
		inserted, deleted int
		err               error
	}
	started := e.clock.Now()
	outs := make([]outcome, len(batch))
	var ops int64
	for i, w := range batch {
		ins, del, err := e.applySub(sh, w)
		outs[i] = outcome{inserted: ins, deleted: del, err: err}
		ops += int64(ins + del)
		if e.obs.Tracing() {
			e.obs.Emit(obs.Event{
				Kind:    "apply",
				Subtree: -1,
				Req:     w.reqID,
				Shard:   obs.ShardTag(sh.id),
				Count:   ins + del,
			})
		}
	}
	epoch := sh.idx.Epoch()
	if ops > 0 {
		epoch = sh.idx.BumpEpoch()
		sh.publish()
		e.obs.SetShardEpoch(sh.id, epoch)
		e.obs.AddShardWriteBatch(sh.id, ops)
		e.obs.SetEpoch(e.Epoch())
		e.obs.AddWriteBatch(ops)
	}
	if e.obs.Tracing() {
		e.obs.Emit(obs.Event{
			Kind:    "commit",
			Subtree: -1,
			Shard:   obs.ShardTag(sh.id),
			Count:   int(ops),
			DurNs:   e.clock.Now().Sub(started).Nanoseconds(),
		})
	}
	for i, w := range batch {
		j := w.job
		j.mu.Lock()
		j.inserted += outs[i].inserted
		j.deleted += outs[i].deleted
		j.epochs[sh.id] = epoch
		if outs[i].err != nil && j.err == nil {
			j.err = outs[i].err
		}
		j.pending--
		if j.pending == 0 {
			close(j.done)
		}
		j.mu.Unlock()
	}
}

// applySub applies one routed sub-request to the shard: inserts (data
// file, then log, then index — the recovery-friendly order shard.Open
// understands) and then deletes. The router already validated the request,
// so the only failures left are I/O; one wedges the engine's write path.
func (e *Engine) applySub(sh *engineShard, w *shardWrite) (inserted, deleted int, err error) {
	if s := e.wedged.Load(); s != nil {
		return 0, 0, fmt.Errorf("serve: write path disabled by an earlier apply error: %w", s.err)
	}
	wedge := func(err error) error {
		e.wedged.CompareAndSwap(nil, &wedgeState{err: err})
		return err
	}
	for _, tx := range w.txs {
		if sh.file != nil {
			if err := sh.file.Append(tx); err != nil {
				return inserted, deleted, wedge(fmt.Errorf("serve: appending to shard %d's data file: %w", sh.id, err))
			}
		}
		if err := sh.log.Append(tx); err != nil {
			return inserted, deleted, wedge(fmt.Errorf("serve: appending to shard %d's log: %w", sh.id, err))
		}
		sh.idx.Insert(tx.Items)
		inserted++
	}
	for _, d := range w.dels {
		tx, err := sh.log.Get(d.local)
		if err != nil {
			return inserted, deleted, wedge(fmt.Errorf("serve: resolving delete of position %d: %w", d.global, err))
		}
		if err := sh.idx.Delete(d.local, tx.Items); err != nil {
			return inserted, deleted, wedge(fmt.Errorf("serve: deleting position %d: %w", d.global, err))
		}
		deleted++
	}
	return inserted, deleted, nil
}

// ---- query path ----

// QueryRequest is one /mine payload.
type QueryRequest struct {
	// Scheme is SFS, SFP, DFS or DFP (default DFP).
	Scheme string `json:"scheme,omitempty"`
	// MinSupportFrac is τ as a fraction of the database size; ignored when
	// MinSupportCount is set. One of the two is required.
	MinSupportFrac float64 `json:"minsup,omitempty"`
	// MinSupportCount is the absolute threshold.
	MinSupportCount int `json:"minsup_count,omitempty"`
	// MaxLen bounds pattern length (0 = unbounded).
	MaxLen int `json:"maxlen,omitempty"`
	// MemoryBudget in bytes triggers adaptive three-phase filtering.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// ConstraintItem, when set, mines only transactions containing the
	// item (single-filter schemes only).
	ConstraintItem *int32 `json:"constraint_item,omitempty"`
	// Workers overrides the engine's default pool size for this query;
	// the answer is identical for every value.
	Workers int `json:"workers,omitempty"`
}

// PatternJSON is one mined itemset on the wire.
type PatternJSON struct {
	Items   []int32 `json:"items"`
	Support int     `json:"support"`
	Exact   bool    `json:"exact"`
}

// QueryResponse is one /mine answer. Patterns is canonical-order and
// depends only on (epoch vector, scheme, τ, maxlen, budget, constraint) —
// never on Workers, the cache, the shard count, or concurrent writes. It is
// kept in encoded form: the pattern set can run to hundreds of thousands of
// itemsets, and the cache serves the same bytes to every hit rather than
// re-encoding them per request. Call DecodePatterns for the typed view.
type QueryResponse struct {
	Epoch          uint64          `json:"epoch"`
	Epochs         []uint64        `json:"epochs,omitempty"`
	Scheme         string          `json:"scheme"`
	Tau            int             `json:"tau"`
	Cached         bool            `json:"cached"`
	Shared         bool            `json:"shared"`
	Patterns       json.RawMessage `json:"patterns"`
	Candidates     int             `json:"candidates"`
	FalseDrops     int             `json:"false_drops"`
	Certain        int             `json:"certain"`
	ProbedPatterns int             `json:"probed_patterns"`
}

// DecodePatterns unmarshals the pattern array.
func (r *QueryResponse) DecodePatterns() ([]PatternJSON, error) {
	var ps []PatternJSON
	if err := json.Unmarshal(r.Patterns, &ps); err != nil {
		return nil, fmt.Errorf("serve: decoding patterns: %w", err)
	}
	return ps, nil
}

// answer is one mined result rendered for the wire exactly once, at mine
// time. The query cache and single-flight waiters hand out the same
// pre-encoded patterns, which keeps a cache hit free of the dominant cost
// of a large answer (reflection-encoding the pattern array).
type answer struct {
	patterns       json.RawMessage
	patternCount   int
	candidates     int
	falseDrops     int
	certain        int
	probedPatterns int
}

// renderAnswer encodes a mining result's patterns into their wire form.
func renderAnswer(res *core.Result) (*answer, error) {
	ps := make([]PatternJSON, len(res.Patterns))
	for i, p := range res.Patterns {
		ps[i] = PatternJSON{Items: p.Items, Support: p.Support, Exact: p.Exact}
	}
	raw, err := json.Marshal(ps)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding patterns: %w", err)
	}
	return &answer{
		patterns:       raw,
		patternCount:   len(ps),
		candidates:     res.Candidates,
		falseDrops:     res.FalseDrops,
		certain:        res.Certain,
		probedPatterns: res.ProbedPatterns,
	}, nil
}

func parseScheme(s string) (core.Scheme, error) {
	switch strings.ToUpper(s) {
	case "", "DFP":
		return core.DFP, nil
	case "DFS":
		return core.DFS, nil
	case "SFP":
		return core.SFP, nil
	case "SFS":
		return core.SFS, nil
	}
	return 0, fmt.Errorf("%w: unknown scheme %q (want SFS, SFP, DFS or DFP)", ErrInvalid, s)
}

// Query answers one mining request against the current snapshot vector:
// cache hit, single-flight join, or a fresh mine under admission control.
//
// When the context carries a span (WithSpan), Query fills it with the
// request's stage decomposition; otherwise it mints one internally, so the
// SLO histograms and request log see every query regardless of entry point.
func (e *Engine) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := SpanFrom(ctx)
	if sp == nil {
		ctx, sp = e.StartSpan(ctx, "", obs.ClassRead)
	}
	sp.Class = obs.ClassRead
	start := e.clock.Now()
	res, err := e.queryInner(ctx, req, sp)
	e.finishSpan(sp, start, err)
	return res, err
}

func (e *Engine) queryInner(ctx context.Context, req QueryRequest, sp *Span) (*QueryResponse, error) {
	scheme, err := parseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	constraint := int32(-1)
	if req.ConstraintItem != nil {
		if *req.ConstraintItem < 0 {
			return nil, fmt.Errorf("%w: negative constraint item %d", ErrInvalid, *req.ConstraintItem)
		}
		if scheme == core.DFS || scheme == core.DFP {
			return nil, fmt.Errorf("%w: constrained mining needs a single-filter scheme (SFS or SFP), got %s", ErrInvalid, scheme)
		}
		constraint = *req.ConstraintItem
	}
	if req.MinSupportCount <= 0 && (req.MinSupportFrac <= 0 || req.MinSupportFrac > 1) {
		return nil, fmt.Errorf("%w: need minsup_count > 0 or minsup in (0,1], got %d / %v",
			ErrInvalid, req.MinSupportCount, req.MinSupportFrac)
	}
	e.obs.AddServerQuery()
	for {
		snaps := e.loadSnaps()
		total := 0
		for _, sn := range snaps {
			total += sn.idx.Len()
		}
		tau := req.MinSupportCount
		if tau <= 0 {
			tau = mining.MinSupportCount(req.MinSupportFrac, total)
		}
		key := queryKey{
			epochs:     epochKey(snaps),
			scheme:     scheme,
			tau:        tau,
			maxLen:     req.MaxLen,
			memBudget:  req.MemoryBudget,
			constraint: constraint,
		}
		sp.scheme, sp.tau = scheme.String(), tau
		sp.epoch = epochSum(snaps)
		if len(snaps) > 1 {
			sp.epochs = epochVector(snaps)
		} else {
			sp.epochs = nil
		}
		lookup := e.clock.Now()
		cached, f, leader := e.cache.join(key)
		sp.addStage(obs.StageCache, e.clock.Now().Sub(lookup).Nanoseconds())
		if cached != nil {
			e.obs.AddCacheHit()
			sp.verdict = "hit"
			sp.patterns = cached.patternCount
			return e.buildResponse(snaps, scheme, tau, cached, true, false), nil
		}
		if !leader {
			e.obs.AddSharedFlight()
			wait := e.clock.Now()
			select {
			case <-f.done:
			case <-ctx.Done():
				sp.addStage(obs.StageCache, e.clock.Now().Sub(wait).Nanoseconds())
				return nil, fmt.Errorf("serve: query abandoned: %w", ctx.Err())
			}
			sp.addStage(obs.StageCache, e.clock.Now().Sub(wait).Nanoseconds())
			if f.err == nil {
				sp.verdict = "shared"
				sp.patterns = f.res.patternCount
				return e.buildResponse(snaps, scheme, tau, f.res, false, true), nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				// The leader died of its own deadline, not of the query.
				// This waiter is still live (checked above), so go around
				// and become — or queue behind — a fresh leader.
				if ctx.Err() != nil {
					return nil, fmt.Errorf("serve: query abandoned: %w", ctx.Err())
				}
				continue
			}
			return nil, f.err
		}
		e.obs.AddCacheMiss()
		res, mineErr := e.mine(ctx, snaps, key.epochs, req, scheme, tau, sp)
		var ans *answer
		if mineErr == nil {
			render := e.clock.Now()
			ans, mineErr = renderAnswer(res)
			sp.addStage(obs.StageRender, e.clock.Now().Sub(render).Nanoseconds())
		}
		e.cache.finish(key, ans, mineErr)
		if mineErr != nil {
			return nil, mineErr
		}
		sp.verdict = "miss"
		sp.patterns = ans.patternCount
		return e.buildResponse(snaps, scheme, tau, ans, false, false), nil
	}
}

// mineView binds a snapshot vector to the (index, store) pair one mine
// runs over. One shard: a private copy-on-write clone of the shard's
// snapshot, exactly the unsharded engine. More: the block-concatenated
// merged index (built once per epoch vector, cached, then cloned per query
// so concurrent mines don't share mutable position caches) over the
// concatenation of the per-shard log views.
func (e *Engine) mineView(snaps []*snapshot, key string) (*sigfile.BBS, txdb.Store, error) {
	if len(snaps) == 1 {
		return snaps[0].idx.QueryClone(e.stats), snaps[0].log.Clone(), nil
	}
	e.merged.mu.Lock()
	base := e.merged.idx
	if base == nil || e.merged.key != key {
		parts := make([]*sigfile.BBS, len(snaps))
		for i, sn := range snaps {
			parts[i] = sn.idx
		}
		m, err := sigfile.Merge(parts, e.stats)
		if err != nil {
			e.merged.mu.Unlock()
			return nil, nil, fmt.Errorf("serve: merging the snapshot vector: %w", err)
		}
		e.merged.key, e.merged.idx = key, m
		base = m
	}
	e.merged.mu.Unlock()
	stores := make([]txdb.Store, len(snaps))
	for i, sn := range snaps {
		stores[i] = sn.log.Clone()
	}
	return base.QueryClone(e.stats), txdb.Concat(stores...), nil
}

// mine runs one cold query against a snapshot vector: admission slot
// (queue stage), per-request deadline, private mining view (bind stage),
// then core.Mine (mine stage).
func (e *Engine) mine(ctx context.Context, snaps []*snapshot, key string, req QueryRequest, scheme core.Scheme, tau int, sp *Span) (*core.Result, error) {
	// Hold each snapshot's pager epoch for the duration of the mine, so
	// cold pages this query faults stay evict-exempt until it finishes.
	for _, sn := range snaps {
		sn.retain()
	}
	defer func() {
		for _, sn := range snaps {
			sn.release()
		}
	}()
	queued := e.clock.Now()
	release, err := e.admit(ctx)
	sp.addStage(obs.StageQueue, e.clock.Now().Sub(queued).Nanoseconds())
	if err != nil {
		return nil, err
	}
	defer release()
	mineCtx := ctx
	if e.timeout > 0 {
		var cancel context.CancelFunc
		mineCtx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	bind := e.clock.Now()
	idx, store, err := e.mineView(snaps, key)
	if err != nil {
		return nil, err
	}
	var constraint *bitvec.Vector
	if req.ConstraintItem != nil {
		want := []txdb.Item{*req.ConstraintItem}
		constraint, err = core.BuildConstraint(store, func(_ int, tx txdb.Transaction) bool {
			return tx.Contains(want)
		})
		if err != nil {
			return nil, err
		}
	}
	miner, err := core.NewMiner(idx, store, e.stats)
	if err != nil {
		return nil, fmt.Errorf("serve: binding the snapshot: %w", err)
	}
	sp.addStage(obs.StageBind, e.clock.Now().Sub(bind).Nanoseconds())
	workers := req.Workers
	if workers == 0 {
		workers = e.workers
	}
	mined := e.clock.Now()
	res, err := miner.Mine(core.Config{
		Ctx:          mineCtx,
		MinSupport:   tau,
		Scheme:       scheme,
		MemoryBudget: req.MemoryBudget,
		MaxLen:       req.MaxLen,
		Workers:      workers,
		Constraint:   constraint,
		Observe:      e.obs,
	})
	sp.addStage(obs.StageMine, e.clock.Now().Sub(mined).Nanoseconds())
	return res, err
}

// admit reserves a mining slot, queueing up to maxQueue waiters behind the
// in-flight mines; anything beyond fails fast with ErrOverloaded.
func (e *Engine) admit(ctx context.Context) (func(), error) {
	select {
	case e.admitCh <- struct{}{}:
	default:
		if e.queueLen.Add(1) > int64(e.maxQueue) {
			e.queueLen.Add(-1)
			e.obs.AddRejected()
			return nil, fmt.Errorf("%w: %d mines in flight and %d queued", ErrOverloaded, cap(e.admitCh), e.maxQueue)
		}
		e.obs.IncQueued()
		err := func() error {
			defer e.queueLen.Add(-1)
			defer e.obs.DecQueued()
			select {
			case e.admitCh <- struct{}{}:
				return nil
			case <-ctx.Done():
				return fmt.Errorf("serve: queued query abandoned: %w", ctx.Err())
			}
		}()
		if err != nil {
			return nil, err
		}
	}
	e.obs.IncInflight()
	return func() {
		e.obs.DecInflight()
		<-e.admitCh
	}, nil
}

func (e *Engine) buildResponse(snaps []*snapshot, scheme core.Scheme, tau int, ans *answer, cached, shared bool) *QueryResponse {
	r := &QueryResponse{
		Epoch:          epochSum(snaps),
		Scheme:         scheme.String(),
		Tau:            tau,
		Cached:         cached,
		Shared:         shared,
		Patterns:       ans.patterns,
		Candidates:     ans.candidates,
		FalseDrops:     ans.falseDrops,
		Certain:        ans.certain,
		ProbedPatterns: ans.probedPatterns,
	}
	if len(snaps) > 1 {
		r.Epochs = epochVector(snaps)
	}
	return r
}

// ---- stats ----

// StatsInfo is the /stats answer: a consistent view of one snapshot vector
// plus the serving health at a glance — cache effectiveness, single-flight
// dedup, admission pressure and current queue depth.
type StatsInfo struct {
	Epoch         uint64   `json:"epoch"`
	Epochs        []uint64 `json:"epochs,omitempty"`
	Shards        int      `json:"shards"`
	Transactions  int      `json:"transactions"`
	Live          int      `json:"live"`
	Deleted       int      `json:"deleted"`
	Items         int      `json:"items"`
	SliceCount    int      `json:"m"`
	IndexBytes    int64    `json:"index_bytes"`
	CachedQueries int      `json:"cached_queries"`
	UptimeSeconds float64  `json:"uptime_seconds"`

	// Serving health, derived from the observability registry (zero when
	// the engine runs without one, except QueueDepth which the engine tracks
	// itself). CacheHitRatio is hits/(hits+misses), 0 before any cold query.
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	CacheHitRatio     float64 `json:"cache_hit_ratio"`
	SharedFlights     int64   `json:"shared_flights"`
	AdmissionRejected int64   `json:"admission_rejected"`
	QueueDepth        int64   `json:"queue_depth"`
	InFlight          int64   `json:"inflight"`

	// Tiered storage (absent when the engine runs without -mem-budget):
	// the shared pool's budget and frame+reservation residency, its fault
	// hit ratio, and the hot/cold slice census over the published
	// snapshots.
	MemBudget     int64   `json:"mem_budget,omitempty"`
	ResidentBytes int64   `json:"resident_bytes,omitempty"`
	PagerHitRatio float64 `json:"pager_hit_ratio,omitempty"`
	SlicesHot     int     `json:"slices_hot,omitempty"`
	SlicesCold    int     `json:"slices_cold,omitempty"`
}

// Stats reports the published snapshot vector's shape plus cache residency
// and serving-health counters.
func (e *Engine) Stats() StatsInfo {
	snaps := e.loadSnaps()
	info := StatsInfo{
		Epoch:         epochSum(snaps),
		Shards:        len(snaps),
		SliceCount:    snaps[0].idx.M(),
		CachedQueries: e.cache.len(),
		UptimeSeconds: e.clock.Now().Sub(e.start).Seconds(),
		QueueDepth:    e.queueLen.Load(),
	}
	if sm := e.obs.Metrics().Server; sm != nil {
		info.CacheHits = sm.CacheHits
		info.CacheMisses = sm.CacheMisses
		info.SharedFlights = sm.SharedFlights
		info.AdmissionRejected = sm.Rejected
		info.InFlight = sm.Inflight
		if cold := sm.CacheHits + sm.CacheMisses; cold > 0 {
			info.CacheHitRatio = float64(sm.CacheHits) / float64(cold)
		}
	}
	if len(snaps) > 1 {
		info.Epochs = epochVector(snaps)
	}
	items := make(map[int32]struct{})
	for _, sn := range snaps {
		info.Transactions += sn.idx.Len()
		info.Live += sn.idx.Live()
		info.Deleted += sn.idx.Deleted()
		info.IndexBytes += sn.idx.TotalBytes()
		for _, it := range sn.idx.Items() {
			items[it] = struct{}{}
		}
	}
	info.Items = len(items)
	if e.pager != nil {
		ps := e.pager.Stats()
		info.MemBudget = e.pager.Budget()
		info.ResidentBytes = ps.ResidentBytes + ps.ReservedBytes
		info.PagerHitRatio = ps.HitRatio()
		for _, sn := range snaps {
			h, c := sn.idx.TierCensus()
			info.SlicesHot += h
			info.SlicesCold += c
		}
	}
	return info
}
