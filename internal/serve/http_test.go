package serve_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/serve"
	"bbsmine/internal/serve/client"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// startServer runs an engine behind httptest and returns a client for it.
func startServer(t *testing.T, txs [][]int32, reg *obs.Registry) *client.Client {
	t.Helper()
	stats := &iostat.Stats{}
	idx := sigfile.New(sighash.NewFNV(256, 3), stats)
	log := txdb.NewAppendLog(stats)
	for i, items := range txs {
		tx := txdb.NewTransaction(int64(i), items)
		if err := log.Append(tx); err != nil {
			t.Fatalf("seeding log: %v", err)
		}
		idx.Insert(tx.Items)
	}
	e, err := serve.New(serve.Options{Index: idx, Log: log, Observe: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := e.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return client.New(ts.URL)
}

// fixedTxns is a dataset with a planted frequent pair so assertions can be
// exact.
func fixedTxns() [][]int32 {
	txs := make([][]int32, 0, 60)
	for i := 0; i < 60; i++ {
		tx := []int32{int32(i % 7), int32(10 + i%5)}
		if i%2 == 0 {
			tx = append(tx, 20, 21) // the planted pair, support 30
		}
		txs = append(txs, tx)
	}
	return txs
}

func TestHTTPRoundTrip(t *testing.T) {
	reg := obs.New()
	reg.Publish("bbsd_test")
	c := startServer(t, fixedTxns(), reg)
	ctx := context.Background()

	// Cold mine, then a cache hit.
	cold, err := c.Mine(ctx, serve.QueryRequest{Scheme: "DFP", MinSupportCount: 25})
	if err != nil {
		t.Fatalf("cold mine: %v", err)
	}
	if cold.Cached {
		t.Fatal("first query claimed to be cached")
	}
	coldPatterns, err := cold.DecodePatterns()
	if err != nil {
		t.Fatalf("decode cold patterns: %v", err)
	}
	foundPair := false
	for _, p := range coldPatterns {
		if len(p.Items) == 2 && p.Items[0] == 20 && p.Items[1] == 21 {
			foundPair = true
			if p.Support != 30 {
				t.Fatalf("planted pair support = %d, want 30", p.Support)
			}
		}
	}
	if !foundPair {
		t.Fatal("planted pair {20,21} not mined")
	}
	warm, err := c.Mine(ctx, serve.QueryRequest{Scheme: "DFP", MinSupportCount: 25})
	if err != nil {
		t.Fatalf("warm mine: %v", err)
	}
	if !warm.Cached {
		t.Fatal("identical second query was not cached")
	}

	// A write bumps the epoch and the next mine sees it.
	wr, err := c.Txns(ctx, serve.TxnsRequest{Insert: [][]int32{{20, 21, 22}}})
	if err != nil {
		t.Fatalf("txns: %v", err)
	}
	if wr.Epoch != cold.Epoch+1 || wr.Inserted != 1 {
		t.Fatalf("write result %+v, want 1 insert at epoch %d", wr, cold.Epoch+1)
	}
	after, err := c.Mine(ctx, serve.QueryRequest{Scheme: "DFP", MinSupportCount: 25})
	if err != nil {
		t.Fatalf("mine after write: %v", err)
	}
	if after.Cached || after.Epoch != wr.Epoch {
		t.Fatalf("mine after write: cached=%v epoch=%d, want fresh at %d", after.Cached, after.Epoch, wr.Epoch)
	}
	afterPatterns, err := after.DecodePatterns()
	if err != nil {
		t.Fatalf("decode patterns after write: %v", err)
	}
	pairSupport := 0
	for _, p := range afterPatterns {
		if len(p.Items) == 2 && p.Items[0] == 20 && p.Items[1] == 21 {
			pairSupport = p.Support
		}
	}
	if pairSupport != 31 {
		t.Fatalf("planted pair support after insert = %d, want 31", pairSupport)
	}

	// Stats reflect the same snapshot.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Epoch != wr.Epoch || st.Transactions != 61 || st.Live != 61 {
		t.Fatalf("stats %+v, want 61 live transactions at epoch %d", st, wr.Epoch)
	}

	// The Prometheus exposition carries the server funnel.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"bbsd_test_server_queries",
		"bbsd_test_server_cache_hits",
		"bbsd_test_server_epoch",
		"bbsd_test_server_write_batches",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition lacks %s", want)
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	c := startServer(t, fixedTxns(), nil)
	ctx := context.Background()

	// Bad scheme → 400.
	_, err := c.Mine(ctx, serve.QueryRequest{Scheme: "NOPE", MinSupportCount: 2})
	assertStatus(t, err, 400)

	// Missing threshold → 400.
	_, err = c.Mine(ctx, serve.QueryRequest{Scheme: "DFP"})
	assertStatus(t, err, 400)

	// Constrained dual filter → 400.
	item := int32(20)
	_, err = c.Mine(ctx, serve.QueryRequest{Scheme: "DFP", MinSupportCount: 2, ConstraintItem: &item})
	assertStatus(t, err, 400)

	// Bad write → 400.
	_, err = c.Txns(ctx, serve.TxnsRequest{Delete: []int{12345}})
	assertStatus(t, err, 400)

	// Constrained single filter works and every pattern contains the item.
	res, err := c.Mine(ctx, serve.QueryRequest{Scheme: "SFP", MinSupportCount: 10, ConstraintItem: &item})
	if err != nil {
		t.Fatalf("constrained mine: %v", err)
	}
	ps, err := res.DecodePatterns()
	if err != nil {
		t.Fatalf("decode constrained patterns: %v", err)
	}
	if len(ps) == 0 {
		t.Fatal("constrained mine found nothing")
	}
}

func assertStatus(t *testing.T, err error, code int) {
	t.Helper()
	var se *client.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a StatusError", err)
	}
	if se.Code != code {
		t.Fatalf("status %d, want %d (%s)", se.Code, code, se.Message)
	}
}
