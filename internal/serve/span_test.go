package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

func TestSanitizeRequestID(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain-id-42", "plain-id-42"},
		{"  spaced  ", "spaced"},
		{"evil\nnew\rline\x00id", "evilnewlineid"},
		{"", ""},
		{"\x01\x02", ""},
		{strings.Repeat("x", 500), strings.Repeat("x", maxRequestIDLen)},
	} {
		if got := sanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	e := newTestEngine(t, genTxns(7, 40, 20, 4), 128, 3, Options{})
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := e.NewRequestID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate request ID %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 800 {
		t.Fatalf("minted %d unique IDs, want 800", len(seen))
	}
}

// TestSpanStageDecomposition pins the engine-side span contract: a cold
// query decomposes into stages whose sum never exceeds the total, verdicts
// track the cache, and the request log records one parseable line per
// request with matching IDs.
func TestSpanStageDecomposition(t *testing.T) {
	reg := obs.New()
	var logBuf bytes.Buffer
	rl := obs.NewRequestLog(&logBuf)
	e := newTestEngine(t, genTxns(3, 300, 50, 6), 256, 3, Options{Observe: reg, RequestLog: rl})

	ctx, sp := e.StartSpan(context.Background(), "trace-me-1", obs.ClassRead)
	if _, err := e.Query(ctx, QueryRequest{Scheme: "DFP", MinSupportCount: 5}); err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if sp.Verdict() != "miss" {
		t.Errorf("cold verdict = %q, want miss", sp.Verdict())
	}
	if sp.TotalNs() <= 0 {
		t.Errorf("total = %d, want > 0", sp.TotalNs())
	}
	var stageSum int64
	for st := obs.Stage(0); st < obs.Stage(5); st++ {
		stageSum += sp.StageNs(st)
	}
	if stageSum > sp.TotalNs() {
		t.Errorf("stage sum %d exceeds total %d", stageSum, sp.TotalNs())
	}
	if sp.StageNs(obs.StageMine) <= 0 {
		t.Errorf("cold query recorded no mine time: %+v", sp.stageNs)
	}

	ctx2, sp2 := e.StartSpan(context.Background(), "trace-me-2", obs.ClassRead)
	if _, err := e.Query(ctx2, QueryRequest{Scheme: "DFP", MinSupportCount: 5}); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if sp2.Verdict() != "hit" {
		t.Errorf("warm verdict = %q, want hit", sp2.Verdict())
	}
	if sp2.StageNs(obs.StageMine) != 0 {
		t.Errorf("cache hit recorded mine time %d", sp2.StageNs(obs.StageMine))
	}

	// An invalid query must still produce a span verdict and a log line.
	_, sp3 := e.StartSpan(context.Background(), "", obs.ClassRead)
	if sp3.ID == "" {
		t.Fatal("StartSpan minted no ID")
	}
	if _, err := e.Query(WithSpan(context.Background(), sp3), QueryRequest{Scheme: "BOGUS", MinSupportCount: 5}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if sp3.Verdict() != "invalid" {
		t.Errorf("bogus verdict = %q, want invalid", sp3.Verdict())
	}

	// Spanless direct calls still land in histograms and the log.
	if _, err := e.Apply(context.Background(), TxnsRequest{Insert: [][]int32{{1, 2, 3}}}); err != nil {
		t.Fatalf("apply: %v", err)
	}

	if rl.Lines() != 4 {
		t.Fatalf("request log lines = %d, want 4", rl.Lines())
	}
	ids := make(map[string]obs.RequestRecord)
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec obs.RequestRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable request-log line %q: %v", line, err)
		}
		ids[rec.ID] = rec
	}
	cold, ok := ids["trace-me-1"]
	if !ok {
		t.Fatalf("cold query missing from request log: %v", ids)
	}
	if cold.Verdict != "miss" || cold.Class != "read" || cold.MineNs <= 0 || cold.Patterns == 0 {
		t.Errorf("cold record = %+v", cold)
	}
	if cold.QueueNs+cold.CacheNs+cold.BindNs+cold.MineNs+cold.RenderNs > cold.TotalNs {
		t.Errorf("cold record stage sum exceeds total: %+v", cold)
	}
	if warm := ids["trace-me-2"]; warm.Verdict != "hit" {
		t.Errorf("warm record = %+v", warm)
	}

	m := reg.Metrics()
	if m.Server == nil {
		t.Fatal("no server metrics")
	}
	if got := m.Server.RequestNs["read"].Count; got != 3 {
		t.Errorf("read latency count = %d, want 3", got)
	}
	if got := m.Server.RequestNs["write"].Count; got != 1 {
		t.Errorf("write latency count = %d, want 1", got)
	}
	if got := m.Server.StageNs["mine"].Count; got != 1 {
		t.Errorf("mine stage count = %d, want 1", got)
	}
}

// TestHTTPRequestIDAndServerTiming drives the HTTP face: X-Request-ID is
// echoed (or minted), Server-Timing carries the stage decomposition, and
// the total it reports never exceeds what the stage sum plus slack allows.
func TestHTTPRequestIDAndServerTiming(t *testing.T) {
	reg := obs.New()
	var logBuf bytes.Buffer
	e := newTestEngine(t, genTxns(5, 200, 40, 5), 256, 3,
		Options{Observe: reg, RequestLog: obs.NewRequestLog(&logBuf)})
	ts := httptest.NewServer(e.Handler())
	defer ts.Close()

	post := func(path, body, reqID string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatalf("building request: %v", err)
		}
		if reqID != "" {
			req.Header.Set("X-Request-ID", reqID)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		t.Cleanup(func() { res.Body.Close() })
		return res
	}

	res := post("/mine", `{"scheme":"DFP","minsup_count":5}`, "client-id-7")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/mine status = %d", res.StatusCode)
	}
	if got := res.Header.Get("X-Request-ID"); got != "client-id-7" {
		t.Errorf("X-Request-ID echo = %q, want client-id-7", got)
	}
	timing := res.Header.Get("Server-Timing")
	if timing == "" {
		t.Fatal("no Server-Timing header on /mine")
	}
	durs := parseServerTiming(t, timing)
	total, ok := durs["total"]
	if !ok {
		t.Fatalf("Server-Timing %q has no total", timing)
	}
	var sum float64
	for name, d := range durs {
		if name != "total" {
			sum += d
		}
	}
	if sum > total*1.0001 {
		t.Errorf("Server-Timing stages sum %.3fms exceed total %.3fms (%q)", sum, total, timing)
	}
	if _, ok := durs["mine"]; !ok {
		t.Errorf("cold /mine Server-Timing %q has no mine stage", timing)
	}
	io.Copy(io.Discard, res.Body)

	// No client ID: the server mints one.
	res2 := post("/mine", `{"scheme":"DFP","minsup_count":5}`, "")
	if got := res2.Header.Get("X-Request-ID"); got == "" {
		t.Error("server minted no X-Request-ID")
	}
	io.Copy(io.Discard, res2.Body)

	// Writes get commit timing.
	res3 := post("/txns", `{"insert":[[1,2,3],[2,3,4]]}`, "write-id-1")
	if res3.StatusCode != http.StatusOK {
		t.Fatalf("/txns status = %d", res3.StatusCode)
	}
	wt := parseServerTiming(t, res3.Header.Get("Server-Timing"))
	if _, ok := wt["commit"]; !ok {
		t.Errorf("/txns Server-Timing %v has no commit metric", wt)
	}
	io.Copy(io.Discard, res3.Body)

	// Errors are traceable too: the ID is set even on a 400.
	res4 := post("/mine", `{"scheme":"NOPE","minsup_count":5}`, "bad-req-1")
	if res4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scheme status = %d", res4.StatusCode)
	}
	if got := res4.Header.Get("X-Request-ID"); got != "bad-req-1" {
		t.Errorf("error response X-Request-ID = %q", got)
	}
	io.Copy(io.Discard, res4.Body)

	// /stats surfaces the derived serving-health fields.
	sres, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer sres.Body.Close()
	var stats StatsInfo
	if err := json.NewDecoder(sres.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Errorf("stats cache hits/misses = %d/%d, want 1/1", stats.CacheHits, stats.CacheMisses)
	}
	if stats.CacheHitRatio != 0.5 {
		t.Errorf("stats cache hit ratio = %v, want 0.5", stats.CacheHitRatio)
	}
}

// parseServerTiming decodes "name;dur=1.234, name2;dur=5" into a map of
// milliseconds.
func parseServerTiming(t *testing.T, header string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	if header == "" {
		return out
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		name, attr, ok := strings.Cut(part, ";")
		if !ok || !strings.HasPrefix(attr, "dur=") {
			t.Fatalf("malformed Server-Timing metric %q in %q", part, header)
		}
		d, err := strconv.ParseFloat(strings.TrimPrefix(attr, "dur="), 64)
		if err != nil {
			t.Fatalf("malformed Server-Timing duration %q: %v", part, err)
		}
		out[name] = d
	}
	return out
}

// TestTracerShardedCompressedFullRate is the concurrency crucible for the
// serving trace path: a 4-shard engine over compressed indexes, a
// full-rate tracer, and concurrent writers + readers. Every emitted line
// must be well-formed JSON, apply/commit events must carry shard tags in
// range, and apply events must be attributable to the requests that caused
// them. Run under -race this also proves Emit's synchronization.
func TestTracerShardedCompressedFullRate(t *testing.T) {
	const shards = 4
	stats := &iostat.Stats{}
	parts := make([]ShardOptions, shards)
	for s := range parts {
		parts[s] = ShardOptions{
			Index: sigfile.New(sighash.NewFNV(128, 3), stats),
			Log:   txdb.NewAppendLog(stats),
		}
	}
	for g, items := range genTxns(11, 120, 30, 5) {
		s := g % shards
		tx := txdb.NewTransaction(int64(g), items)
		if err := parts[s].Log.Append(tx); err != nil {
			t.Fatalf("seeding shard %d: %v", s, err)
		}
		parts[s].Index.Insert(tx.Items)
		parts[s].Index.SetCompression(true)
	}

	reg := obs.New()
	var traceBuf bytes.Buffer
	reg.SetTracer(obs.NewTracer(&traceBuf, 1)) // full rate
	var logBuf bytes.Buffer
	e, err := New(Options{Shards: parts, Observe: reg, RequestLog: obs.NewRequestLog(&logBuf)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const writers, writesPer = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				ctx, _ := e.StartSpan(context.Background(), fmt.Sprintf("w%d-%d", w, i), obs.ClassWrite)
				if _, err := e.Apply(ctx, TxnsRequest{Insert: [][]int32{
					{int32(w), int32(i), 3}, {int32(w), int32(i), 4}, {int32(w), int32(i), 5},
				}}); err != nil {
					t.Errorf("writer %d apply %d: %v", w, i, err)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				ctx, _ := e.StartSpan(context.Background(), fmt.Sprintf("r%d-%d", r, i), obs.ClassRead)
				if _, err := e.Query(ctx, QueryRequest{Scheme: "DFP", MinSupportCount: 8}); err != nil {
					t.Errorf("reader %d query %d: %v", r, i, err)
				}
			}
		}(r)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	wantWriteIDs := make(map[string]bool)
	for w := 0; w < writers; w++ {
		for i := 0; i < writesPer; i++ {
			wantWriteIDs[fmt.Sprintf("w%d-%d", w, i)] = true
		}
	}
	var applies, commits, requests int
	applyOps := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(traceBuf.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("malformed trace line %q: %v", line, err)
		}
		switch ev.Kind {
		case "apply":
			applies++
			if ev.Shard == nil || *ev.Shard < 0 || *ev.Shard >= shards {
				t.Fatalf("apply event shard tag out of range: %q", line)
			}
			if !wantWriteIDs[ev.Req] {
				t.Fatalf("apply event carries unknown request ID: %q", line)
			}
			applyOps[ev.Req] += ev.Count
		case "commit":
			commits++
			if ev.Shard == nil || *ev.Shard < 0 || *ev.Shard >= shards {
				t.Fatalf("commit event shard tag out of range: %q", line)
			}
		case "request":
			requests++
			if ev.Req == "" || ev.Verdict == "" {
				t.Fatalf("request event missing id or verdict: %q", line)
			}
			if ev.Shard != nil {
				t.Fatalf("request event carries a shard tag: %q", line)
			}
		}
	}
	// Every write inserted 3 transactions; its apply events across shards
	// must account for exactly 3 operations.
	for id := range wantWriteIDs {
		if applyOps[id] != 3 {
			t.Errorf("request %s: apply events cover %d ops, want 3", id, applyOps[id])
		}
	}
	if commits == 0 {
		t.Error("no commit events traced")
	}
	if want := writers*writesPer + 3*5; requests != want {
		t.Errorf("request events = %d, want %d", requests, want)
	}
	// Mining events from the concurrent queries interleave with the serving
	// events on the same tracer; the parse loop above already proved the
	// stream stayed line-atomic under contention.
	if e.Stats().Shards != shards {
		t.Fatalf("stats shards = %d", e.Stats().Shards)
	}
}
