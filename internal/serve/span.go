package serve

import (
	"context"
	"fmt"
	"strings"

	"bbsmine/internal/obs"
)

// Span is one request's trace state: its ID, class, verdict, and the
// per-stage wall-time decomposition. The HTTP layer mints a span per
// request (accepting the client's X-Request-ID when it sent one) and hands
// it down through the context; the engine fills it in as the request moves
// through the stages, and at completion the span is what feeds the SLO
// histograms, the tracer's request event, the structured request log and
// the Server-Timing response header.
//
// A span belongs to one request's goroutine — nothing about it is
// synchronized. Direct Engine.Query/Apply callers (tests, bench mode) may
// omit it; the engine then mints one internally so the histograms and logs
// see every request regardless of entry point.
type Span struct {
	// ID is the request ID: the client's X-Request-ID, or minted.
	ID string
	// Class is the traffic class (read for /mine, write for /txns).
	Class obs.RequestClass

	// stageNs accumulates wall time per stage; a stage the request never
	// entered stays zero. Write requests use commitNs instead of the read
	// stages.
	stageNs  [5]int64
	commitNs int64

	// verdict is how the request resolved: reads hit | miss | shared |
	// rejected | invalid | error, writes applied | rejected | invalid |
	// error.
	verdict string

	// totalNs is the whole engine-side latency, set once at completion.
	totalNs int64

	// Read result shape for the request log.
	scheme   string
	tau      int
	patterns int
	epoch    uint64
	epochs   []uint64

	// Write result shape for the request log.
	inserted, deleted int
	shards            []int // shards the write's sub-batches landed on
}

// addStage accumulates ns under a read stage.
func (s *Span) addStage(st obs.Stage, ns int64) {
	if s == nil || st < 0 || int(st) >= len(s.stageNs) || ns <= 0 {
		return
	}
	s.stageNs[st] += ns
}

// StageNs returns the accumulated wall time of one stage.
func (s *Span) StageNs(st obs.Stage) int64 {
	if s == nil || st < 0 || int(st) >= len(s.stageNs) {
		return 0
	}
	return s.stageNs[st]
}

// CommitNs returns a write's enqueue-to-last-commit wall time.
func (s *Span) CommitNs() int64 {
	if s == nil {
		return 0
	}
	return s.commitNs
}

// TotalNs returns the engine-side request latency; 0 until completion.
func (s *Span) TotalNs() int64 {
	if s == nil {
		return 0
	}
	return s.totalNs
}

// Verdict returns how the request resolved; "" until completion.
func (s *Span) Verdict() string {
	if s == nil {
		return ""
	}
	return s.verdict
}

// ServerTiming renders the span as a Server-Timing header value: one
// metric per stage the request entered (dur in milliseconds, fractional)
// plus the engine-side total. The stage sum is ≤ total ≤ the client's own
// measurement, which is what lets a load generator cross-check server
// decomposition against observed latency.
func (s *Span) ServerTiming() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	add := func(name string, ns int64) {
		if ns <= 0 {
			return
		}
		if b.Len() > 0 {
			_, _ = b.WriteString(", ") // strings.Builder never errors
		}
		_, _ = fmt.Fprintf(&b, "%s;dur=%.3f", name, float64(ns)/1e6)
	}
	for st := obs.Stage(0); int(st) < len(s.stageNs); st++ {
		add(st.String(), s.stageNs[st])
	}
	add("commit", s.commitNs)
	add("total", s.totalNs)
	return b.String()
}

// spanKey is the context key WithSpan stores under.
type spanKey struct{}

// WithSpan attaches a request span to the context. The engine fills the
// span during Query/Apply; the caller reads it back afterwards.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the context's span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// maxRequestIDLen bounds accepted client request IDs; longer ones are
// truncated so a hostile header cannot bloat every log line it touches.
const maxRequestIDLen = 128

// sanitizeRequestID strips control characters from a client-supplied
// X-Request-ID and truncates it; returns "" when nothing printable is
// left.
func sanitizeRequestID(id string) string {
	id = strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return -1
		}
		return r
	}, id)
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	return strings.TrimSpace(id)
}

// NewRequestID mints a process-unique request ID: a per-engine prefix
// derived from the start timestamp plus a sequence number. Used by the
// HTTP layer when the client sent no X-Request-ID, and by the engine
// itself for spanless direct calls.
func (e *Engine) NewRequestID() string {
	return fmt.Sprintf("%s-%d", e.idPrefix, e.reqSeq.Add(1))
}

// StartSpan returns a context carrying a fresh span for one request. The
// id may come from the client (already sanitized) or be empty, in which
// case one is minted.
func (e *Engine) StartSpan(ctx context.Context, id string, class obs.RequestClass) (context.Context, *Span) {
	if id == "" {
		id = e.NewRequestID()
	}
	sp := &Span{ID: id, Class: class}
	return WithSpan(ctx, sp), sp
}
