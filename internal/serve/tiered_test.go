package serve

import (
	"context"
	"testing"

	"bbsmine/internal/obs"
)

// A tiny budget so a few-hundred-transaction test index must spill slices
// cold and evict frames — the tiered machinery is fully exercised, not
// idle.
const testMemBudget = 4 << 10

// TestTieredAnswersMatchResident pins the serving-layer face of the tiered
// invariant: an engine with -mem-budget (cold slices, shared frame pool,
// epoch-pinned snapshots) answers every query byte-identically to a
// resident engine over the same transactions — sharded and not — and its
// /stats report the pool.
func TestTieredAnswersMatchResident(t *testing.T) {
	txs := genTxns(33, 240, 40, 6)
	resident := newTestEngine(t, txs, 256, 3, Options{})
	tiered := newTestEngine(t, txs, 256, 3, Options{
		MemBudget: testMemBudget,
		ColdDir:   t.TempDir(),
		Observe:   obs.New(),
	})
	tieredShd := newShardedTestEngine(t, txs, 256, 3, 4, Options{
		MemBudget: testMemBudget,
		ColdDir:   t.TempDir(),
	})
	ctx := context.Background()

	item := int32(5)
	for name, req := range map[string]QueryRequest{
		"DFP":         {Scheme: "DFP", MinSupportCount: 5},
		"SFS":         {Scheme: "SFS", MinSupportCount: 4},
		"SFP frac":    {Scheme: "SFP", MinSupportFrac: 0.02},
		"constrained": {Scheme: "SFP", MinSupportCount: 3, ConstraintItem: &item},
	} {
		want, err := resident.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s resident: %v", name, err)
		}
		got, err := tiered.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s tiered: %v", name, err)
		}
		if string(got.Patterns) != string(want.Patterns) {
			t.Errorf("%s: tiered answer differs from resident (%d vs %d patterns)",
				name, len(decodePatterns(t, got)), len(decodePatterns(t, want)))
		}
		gotShd, err := tieredShd.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s tiered sharded: %v", name, err)
		}
		if string(gotShd.Patterns) != string(want.Patterns) {
			t.Errorf("%s: tiered sharded answer differs from resident", name)
		}
	}

	st := tiered.Stats()
	if st.MemBudget != testMemBudget {
		t.Fatalf("stats mem_budget = %d, want %d", st.MemBudget, testMemBudget)
	}
	if st.SlicesCold == 0 {
		t.Fatalf("no cold slices under a %d-byte budget; the tiered path was never exercised", testMemBudget)
	}
	if st.ResidentBytes <= 0 {
		t.Fatalf("resident_bytes = %d after queries, want > 0", st.ResidentBytes)
	}
	if st.PagerHitRatio <= 0 {
		t.Fatalf("pager_hit_ratio = %v after repeated AND chains, want > 0", st.PagerHitRatio)
	}

	// The resident engine reports none of it.
	rst := resident.Stats()
	if rst.MemBudget != 0 || rst.SlicesCold != 0 || rst.ResidentBytes != 0 {
		t.Fatalf("resident engine leaked tier stats: %+v", rst)
	}
}

// TestTieredWritesAndEpochDrain drives writes through a tiered engine —
// inserts thaw mutated cold slices on the master while published snapshots
// keep serving the cold headers — and checks that superseded snapshots
// release their pager epochs (the frame pool can evict again) and that
// post-write answers still match a resident engine seeing the same final
// state.
func TestTieredWritesAndEpochDrain(t *testing.T) {
	txs := genTxns(34, 160, 32, 5)
	reg := obs.New()
	tiered := newTestEngine(t, txs, 192, 3, Options{
		MemBudget: 2 << 10,
		ColdDir:   t.TempDir(),
		Observe:   reg,
	})
	resident := newTestEngine(t, txs, 192, 3, Options{})
	ctx := context.Background()

	warm := QueryRequest{Scheme: "DFP", MinSupportCount: 4}
	if _, err := tiered.Query(ctx, warm); err != nil {
		t.Fatalf("warm query: %v", err)
	}

	extra := genTxns(35, 24, 32, 5)
	if _, err := tiered.Apply(ctx, TxnsRequest{Insert: extra, Delete: []int{3, 17}}); err != nil {
		t.Fatalf("tiered apply: %v", err)
	}
	if _, err := resident.Apply(ctx, TxnsRequest{Insert: extra, Delete: []int{3, 17}}); err != nil {
		t.Fatalf("resident apply: %v", err)
	}

	for _, req := range []QueryRequest{
		{Scheme: "DFP", MinSupportCount: 4},
		{Scheme: "SFS", MinSupportCount: 3},
	} {
		want, err := resident.Query(ctx, req)
		if err != nil {
			t.Fatalf("resident post-write: %v", err)
		}
		got, err := tiered.Query(ctx, req)
		if err != nil {
			t.Fatalf("tiered post-write: %v", err)
		}
		if string(got.Patterns) != string(want.Patterns) {
			t.Errorf("%s: tiered post-write answer differs from resident", req.Scheme)
		}
	}

	// The superseded snapshot's epoch must have drained: no query holds it
	// and publish dropped the publisher ref, so pressure can evict. Pager
	// metrics flow through the obs registry the engine was given.
	m := reg.Metrics()
	if m.Pager == nil {
		t.Fatalf("obs registry has no pager section")
	}
	if m.Pager.HitRatio <= 0 {
		t.Fatalf("pager hit_ratio = %v, want > 0", m.Pager.HitRatio)
	}
	// The write burst thaws the cold slices it touches (mutation happens
	// resident), so no cold-census assertion here — what must hold is that
	// the cold path actually ran before the thaw.
	if m.Pager.Faults == 0 {
		t.Fatalf("pager metrics report no faults; the cold path never ran")
	}
}
