package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bbsmine/internal/core"
	"bbsmine/internal/iostat"
	"bbsmine/internal/obs"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// lcg is a tiny deterministic generator so the tests never touch math/rand.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l >> 17)
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// genTxns builds count transactions over a universe of v items, sizes
// between 4 and 4+spread.
func genTxns(seed uint64, count, v, spread int) [][]int32 {
	l := lcg(seed)
	out := make([][]int32, count)
	for i := range out {
		n := 4 + l.intn(spread)
		items := make([]int32, n)
		for j := range items {
			items[j] = int32(l.intn(v))
		}
		out[i] = items
	}
	return out
}

// fakeClock is a settable Clock.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time { return f.now }

// newTestEngine builds an in-memory engine over txs.
func newTestEngine(t *testing.T, txs [][]int32, m, k int, opts Options) *Engine {
	t.Helper()
	stats := &iostat.Stats{}
	idx := sigfile.New(sighash.NewFNV(m, k), stats)
	log := txdb.NewAppendLog(stats)
	for i, items := range txs {
		tx := txdb.NewTransaction(int64(i), items)
		if err := log.Append(tx); err != nil {
			t.Fatalf("seeding log: %v", err)
		}
		idx.Insert(tx.Items)
	}
	opts.Index = idx
	opts.Log = log
	e, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return e
}

func decodePatterns(t *testing.T, r *QueryResponse) []PatternJSON {
	t.Helper()
	ps, err := r.DecodePatterns()
	if err != nil {
		t.Fatalf("decode patterns: %v", err)
	}
	return ps
}

// renderFresh renders a direct core mine the way the engine would, so
// tests can compare server answers byte-for-byte.
func renderFresh(t *testing.T, res *core.Result) *answer {
	t.Helper()
	ans, err := renderAnswer(res)
	if err != nil {
		t.Fatalf("renderAnswer: %v", err)
	}
	return ans
}

func TestQueryCacheHitAndWorkerIndependence(t *testing.T) {
	reg := obs.New()
	e := newTestEngine(t, genTxns(1, 300, 50, 6), 256, 3, Options{Observe: reg})
	ctx := context.Background()

	cold, err := e.Query(ctx, QueryRequest{Scheme: "DFP", MinSupportCount: 5})
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if cold.Cached || cold.Shared {
		t.Fatalf("cold query reported cached=%v shared=%v", cold.Cached, cold.Shared)
	}
	if len(decodePatterns(t, cold)) == 0 {
		t.Fatal("cold query mined nothing; the dataset is too sparse for the test to mean anything")
	}

	hit, err := e.Query(ctx, QueryRequest{Scheme: "DFP", MinSupportCount: 5})
	if err != nil {
		t.Fatalf("cached query: %v", err)
	}
	if !hit.Cached {
		t.Fatal("identical query at the same epoch was not served from cache")
	}

	// A different Workers value must hit the same entry and return the
	// identical answer — Workers is not part of the cache key.
	other, err := e.Query(ctx, QueryRequest{Scheme: "DFP", MinSupportCount: 5, Workers: 4})
	if err != nil {
		t.Fatalf("workers=4 query: %v", err)
	}
	if !other.Cached {
		t.Fatal("query differing only in Workers missed the cache")
	}
	if string(other.Patterns) != string(cold.Patterns) {
		t.Fatal("workers=4 answer differs from workers=default answer")
	}

	m := reg.Metrics()
	if m.Server == nil {
		t.Fatal("no server metrics section after queries")
	}
	if m.Server.CacheHits < 2 || m.Server.CacheMisses < 1 {
		t.Fatalf("funnel off: hits=%d misses=%d", m.Server.CacheHits, m.Server.CacheMisses)
	}
}

func TestApplyBumpsEpochAndInvalidatesCache(t *testing.T) {
	e := newTestEngine(t, genTxns(2, 200, 40, 5), 256, 3, Options{})
	ctx := context.Background()
	req := QueryRequest{Scheme: "SFP", MinSupportCount: 4}

	before, err := e.Query(ctx, req)
	if err != nil {
		t.Fatalf("query before write: %v", err)
	}

	res, err := e.Apply(ctx, TxnsRequest{Insert: [][]int32{{1, 2, 3}, {1, 2, 3, 7}}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if res.Epoch != before.Epoch+1 {
		t.Fatalf("epoch after one batch = %d, want %d", res.Epoch, before.Epoch+1)
	}
	if res.Inserted != 2 {
		t.Fatalf("inserted = %d, want 2", res.Inserted)
	}

	after, err := e.Query(ctx, req)
	if err != nil {
		t.Fatalf("query after write: %v", err)
	}
	if after.Cached {
		t.Fatal("query after an epoch bump was served from the stale cache entry")
	}
	if after.Epoch != res.Epoch {
		t.Fatalf("query ran at epoch %d, want %d", after.Epoch, res.Epoch)
	}

	// Deleting the two rows restores the original answer set at a new
	// epoch: position indexes are stable, the last two rows are ours.
	n := e.Stats().Transactions
	del, err := e.Apply(ctx, TxnsRequest{Delete: []int{n - 2, n - 1}})
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if del.Deleted != 2 || del.Epoch != res.Epoch+1 {
		t.Fatalf("delete result %+v, want 2 deletions at epoch %d", del, res.Epoch+1)
	}
	restored, err := e.Query(ctx, req)
	if err != nil {
		t.Fatalf("query after delete: %v", err)
	}
	if string(restored.Patterns) != string(before.Patterns) {
		t.Fatal("answer after insert+delete differs from the original answer")
	}
}

func TestApplyValidationIsAtomic(t *testing.T) {
	e := newTestEngine(t, genTxns(3, 50, 30, 4), 128, 3, Options{})
	ctx := context.Background()
	epoch := e.Epoch()

	// Bad delete position: nothing applies, the epoch stays put.
	_, err := e.Apply(ctx, TxnsRequest{Insert: [][]int32{{1, 2}}, Delete: []int{9999}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("out-of-range delete returned %v, want ErrInvalid", err)
	}
	if e.Epoch() != epoch {
		t.Fatal("failed request bumped the epoch")
	}
	if got := e.Stats().Transactions; got != 50 {
		t.Fatalf("failed request inserted rows: %d transactions, want 50", got)
	}

	// Negative item: same story.
	_, err = e.Apply(ctx, TxnsRequest{Insert: [][]int32{{-1, 2}}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("negative item returned %v, want ErrInvalid", err)
	}

	// Double delete of the same position, and deleting a dead row.
	if _, err := e.Apply(ctx, TxnsRequest{Delete: []int{0}}); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	_, err = e.Apply(ctx, TxnsRequest{Delete: []int{0}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("re-delete returned %v, want ErrInvalid", err)
	}
	_, err = e.Apply(ctx, TxnsRequest{Delete: []int{1, 1}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("duplicate delete returned %v, want ErrInvalid", err)
	}
}

func TestQueryValidation(t *testing.T) {
	e := newTestEngine(t, genTxns(4, 40, 20, 4), 128, 3, Options{})
	ctx := context.Background()
	item := int32(3)
	for name, req := range map[string]QueryRequest{
		"no threshold":       {Scheme: "DFP"},
		"bad scheme":         {Scheme: "XXX", MinSupportCount: 2},
		"constrained dual":   {Scheme: "DFP", MinSupportCount: 2, ConstraintItem: &item},
		"bad fraction":       {Scheme: "SFS", MinSupportFrac: 1.5},
		"negative constraint": {Scheme: "SFS", MinSupportCount: 2, ConstraintItem: func() *int32 { v := int32(-2); return &v }()},
	} {
		if _, err := e.Query(ctx, req); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: got %v, want ErrInvalid", name, err)
		}
	}
}

func TestConstrainedQueryMatchesDirectMine(t *testing.T) {
	txs := genTxns(5, 250, 30, 6)
	e := newTestEngine(t, txs, 256, 3, Options{})
	ctx := context.Background()
	item := int32(7)

	got, err := e.Query(ctx, QueryRequest{Scheme: "SFP", MinSupportCount: 3, ConstraintItem: &item})
	if err != nil {
		t.Fatalf("constrained query: %v", err)
	}

	// Re-mine directly against a private snapshot clone.
	snap := e.shards[0].snap.Load()
	stats := &iostat.Stats{}
	store := snap.log.Clone()
	constraint, err := core.BuildConstraint(store, func(_ int, tx txdb.Transaction) bool {
		return tx.Contains([]txdb.Item{item})
	})
	if err != nil {
		t.Fatalf("building constraint: %v", err)
	}
	miner, err := core.NewMiner(snap.idx.QueryClone(stats), store, stats)
	if err != nil {
		t.Fatalf("NewMiner: %v", err)
	}
	want, err := miner.Mine(core.Config{MinSupport: 3, Scheme: core.SFP, Constraint: constraint})
	if err != nil {
		t.Fatalf("direct mine: %v", err)
	}
	wantAns := renderFresh(t, want)
	if string(got.Patterns) != string(wantAns.patterns) {
		t.Fatalf("constrained server answer differs from direct constrained mine (%d vs %d patterns)",
			len(decodePatterns(t, got)), len(want.Patterns))
	}
	if len(decodePatterns(t, got)) == 0 {
		t.Fatal("constrained mine found nothing; weaken the test dataset")
	}
}

func TestAdmissionQueueAndRejection(t *testing.T) {
	reg := obs.New()
	e := newTestEngine(t, genTxns(6, 60, 25, 4), 128, 3, Options{
		MaxInFlight: 1,
		MaxQueue:    1,
		Observe:     reg,
	})

	// Occupy the only in-flight slot directly.
	e.admitCh <- struct{}{}

	// First query queues; give it a context we control.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	queued := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx1, QueryRequest{Scheme: "SFS", MinSupportCount: 2})
		queued <- err
	}()
	waitFor(t, func() bool { return e.queueLen.Load() == 1 })

	// Second query finds the slot busy and the queue full: rejected now.
	_, err := e.Query(context.Background(), QueryRequest{Scheme: "SFS", MinSupportCount: 3})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue query returned %v, want ErrOverloaded", err)
	}

	// Abandon the queued query; it must come back with its context error.
	cancel1()
	select {
	case qerr := <-queued:
		if !errors.Is(qerr, context.Canceled) {
			t.Fatalf("queued query returned %v, want context.Canceled", qerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query did not return after cancellation")
	}

	// Release the slot; a fresh query must now run normally.
	<-e.admitCh
	if _, err := e.Query(context.Background(), QueryRequest{Scheme: "SFS", MinSupportCount: 2}); err != nil {
		t.Fatalf("query after release: %v", err)
	}
	if reg.Metrics().Server.Rejected < 1 {
		t.Fatal("rejection not counted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseRejectsWritesAndIsIdempotent(t *testing.T) {
	stats := &iostat.Stats{}
	idx := sigfile.New(sighash.NewFNV(128, 3), stats)
	log := txdb.NewAppendLog(stats)
	e, err := New(Options{Index: idx, Log: log})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Apply(context.Background(), TxnsRequest{Insert: [][]int32{{1, 2}}}); err != nil {
		t.Fatalf("apply before close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := e.Apply(context.Background(), TxnsRequest{Insert: [][]int32{{3}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close returned %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Queries still work against the last snapshot.
	if _, err := e.Query(context.Background(), QueryRequest{Scheme: "SFS", MinSupportCount: 1}); err != nil {
		t.Fatalf("query after close: %v", err)
	}
}

func TestStatsUsesInjectedClock(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	e := newTestEngine(t, genTxns(7, 20, 10, 3), 128, 3, Options{Clock: clock})
	clock.now = clock.now.Add(90 * time.Second)
	s := e.Stats()
	if s.UptimeSeconds != 90 {
		t.Fatalf("uptime = %v, want 90", s.UptimeSeconds)
	}
	if s.Transactions != 20 || s.Live != 20 {
		t.Fatalf("stats shape off: %+v", s)
	}
}

func TestQueryCacheLRUEviction(t *testing.T) {
	c := newQueryCache(2, nil)
	res := &answer{patterns: json.RawMessage("[]")}
	k := func(tau int) queryKey { return queryKey{tau: tau, constraint: -1} }

	for tau := 1; tau <= 3; tau++ {
		if _, _, leader := c.join(k(tau)); !leader {
			t.Fatalf("tau=%d: expected leadership on first join", tau)
		}
		c.finish(k(tau), res, nil)
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	if got, _, _ := c.join(k(1)); got != nil {
		t.Fatal("oldest entry survived eviction")
	}
	c.finish(k(1), res, nil) // resolve the leadership the probe created
	if got, _, _ := c.join(k(3)); got == nil {
		t.Fatal("newest entry was evicted")
	}

	// A failed leader caches nothing and hands leadership to the next join.
	if _, _, leader := c.join(k(9)); !leader {
		t.Fatal("expected leadership for a fresh key")
	}
	c.finish(k(9), nil, fmt.Errorf("boom"))
	if got, _, leader := c.join(k(9)); got != nil || !leader {
		t.Fatalf("after failed leader: cached=%v leader=%v, want nil/true", got, leader)
	}
	c.finish(k(9), res, nil)
}

// TestEpochConsistencyUnderConcurrentWrites is the serving layer's
// determinism invariant: while a writer commits batches, every /mine
// answer must be internally consistent with a single epoch — byte-
// identical to a fresh mine over that epoch's snapshot, regardless of
// worker count, cache state or single-flight sharing. Run with -race.
func TestEpochConsistencyUnderConcurrentWrites(t *testing.T) {
	e := newTestEngine(t, genTxns(8, 300, 40, 6), 256, 3, Options{
		MaxInFlight: 4,
		MaxQueue:    64,
	})

	const (
		batches = 20
		readers = 4
		queries = 25
	)

	// The writer records every snapshot it publishes; it is the only
	// writer, so the captured sequence covers every epoch.
	snapshots := map[uint64]*snapshot{e.Epoch(): e.shards[0].snap.Load()}
	var smu sync.Mutex
	writerErr := make(chan error, 1)
	go func() {
		l := lcg(99)
		live := 300
		for i := 0; i < batches; i++ {
			req := TxnsRequest{Insert: genTxns(uint64(1000+i), 6, 40, 6)}
			if i%3 == 2 {
				req.Delete = []int{l.intn(live)} // may be dead already; retried below
			}
			res, err := e.Apply(context.Background(), req)
			if err != nil && errors.Is(err, ErrInvalid) {
				// Tombstoned twice by luck of the draw: drop the delete.
				res, err = e.Apply(context.Background(), TxnsRequest{Insert: req.Insert})
			}
			if err != nil {
				writerErr <- fmt.Errorf("batch %d: %w", i, err)
				return
			}
			live += res.Inserted
			smu.Lock()
			snapshots[res.Epoch] = e.shards[0].snap.Load()
			smu.Unlock()
		}
		writerErr <- nil
	}()

	type observed struct {
		epoch  uint64
		scheme core.Scheme
		tau    int
		body   string
	}
	answers := make([][]observed, readers)
	var wg sync.WaitGroup
	readerErrs := make([]error, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			l := lcg(uint64(7 + rd))
			for q := 0; q < queries; q++ {
				scheme := core.DFP
				name := "DFP"
				if l.intn(2) == 0 {
					scheme, name = core.SFS, "SFS"
				}
				tau := 4 + l.intn(3)
				resp, err := e.Query(context.Background(), QueryRequest{
					Scheme:          name,
					MinSupportCount: tau,
					Workers:         1 + l.intn(4),
				})
				if err != nil {
					readerErrs[rd] = fmt.Errorf("query %d: %w", q, err)
					return
				}
				answers[rd] = append(answers[rd], observed{
					epoch: resp.Epoch, scheme: scheme, tau: tau,
					body: string(resp.Patterns),
				})
			}
		}(rd)
	}
	wg.Wait()
	if err := <-writerErr; err != nil {
		t.Fatalf("writer: %v", err)
	}
	for rd, err := range readerErrs {
		if err != nil {
			t.Fatalf("reader %d: %v", rd, err)
		}
	}

	// Verify every answer against a fresh sequential mine at its epoch.
	type vkey struct {
		epoch  uint64
		scheme core.Scheme
		tau    int
	}
	verified := map[vkey]string{}
	total := 0
	for rd := range answers {
		for _, a := range answers[rd] {
			total++
			k := vkey{a.epoch, a.scheme, a.tau}
			want, ok := verified[k]
			if !ok {
				smu.Lock()
				snap := snapshots[a.epoch]
				smu.Unlock()
				if snap == nil {
					t.Fatalf("answer at epoch %d has no recorded snapshot", a.epoch)
				}
				stats := &iostat.Stats{}
				miner, err := core.NewMiner(snap.idx.QueryClone(stats), snap.log.Clone(), stats)
				if err != nil {
					t.Fatalf("NewMiner at epoch %d: %v", a.epoch, err)
				}
				res, err := miner.Mine(core.Config{MinSupport: a.tau, Scheme: a.scheme, Workers: 1})
				if err != nil {
					t.Fatalf("fresh mine at epoch %d: %v", a.epoch, err)
				}
				want = string(renderFresh(t, res).patterns)
				verified[k] = want
			}
			if a.body != want {
				t.Fatalf("answer at epoch %d (%s τ=%d) diverges from a fresh mine over that epoch's snapshot",
					a.epoch, a.scheme, a.tau)
			}
		}
	}
	if total != readers*queries {
		t.Fatalf("verified %d answers, want %d", total, readers*queries)
	}
}
