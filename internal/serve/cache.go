package serve

import (
	"container/list"
	"sync"

	"bbsmine/internal/core"
	"bbsmine/internal/obs"
)

// queryKey identifies a mining result completely: the epoch vector pins the
// data (encoded "e0.e1..." in shard order — every shard's epoch only grows,
// so a vector never repeats with different contents), the rest pins the
// question. Workers is deliberately absent — the engine's determinism
// guarantee makes the result identical for every pool size, so queries
// differing only in Workers share one cache entry.
type queryKey struct {
	epochs     string
	scheme     core.Scheme
	tau        int // resolved absolute threshold, never the input fraction
	maxLen     int
	memBudget  int64
	constraint int32 // constraining item, or -1 for unconstrained
}

// flight is one in-progress mine that identical queries wait on instead of
// mining again. done is closed once res/err are set.
type flight struct {
	done chan struct{}
	res  *answer
	err  error
}

// cacheEntry is one LRU node: the key is repeated so eviction can delete
// the map entry from the list element alone.
type cacheEntry struct {
	key queryKey
	res *answer
}

// queryCache is the epoch-keyed result cache with single-flight admission:
// join either returns a cached result, attaches the caller to an in-flight
// identical mine, or makes it the leader. Entries from superseded epochs
// age out of the LRU naturally — they stop being requested, so they stop
// being refreshed, and new-epoch traffic evicts them.
type queryCache struct {
	obs *obs.Registry
	max int

	mu      sync.Mutex
	lru     list.List // of cacheEntry; front is most recent
	entries map[queryKey]*list.Element
	flights map[queryKey]*flight
}

func newQueryCache(max int, o *obs.Registry) *queryCache {
	c := &queryCache{
		obs:     o,
		max:     max,
		entries: make(map[queryKey]*list.Element),
		flights: make(map[queryKey]*flight),
	}
	c.lru.Init()
	return c
}

// join resolves a query against the cache in one lock acquisition. Exactly
// one of the returns is meaningful: a non-nil result (cache hit), a flight
// with leader=false (wait on it), or a flight with leader=true (the caller
// must mine and then call finish with the same key).
func (c *queryCache) join(key queryKey) (*answer, *flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(cacheEntry).res, nil, false
	}
	if f, ok := c.flights[key]; ok {
		return nil, f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	return nil, f, true
}

// finish resolves the leader's flight, waking every waiter, and caches the
// result on success. A failed mine caches nothing: the next identical query
// elects a fresh leader.
func (c *queryCache) finish(key queryKey, res *answer, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		f.res, f.err = res, err
		close(f.done)
		delete(c.flights, key)
	}
	if err != nil || res == nil {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value = cacheEntry{key: key, res: res}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(cacheEntry{key: key, res: res})
	for len(c.entries) > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(cacheEntry).key)
		c.obs.AddQueryCacheEviction()
	}
	c.obs.SetQueryCacheEntries(int64(len(c.entries)))
}

// len returns the number of cached results.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
