// Package client is a minimal bbsd HTTP client, shared by the server
// tests, the CI smoke check and bbsd's bench mode.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"bbsmine/internal/serve"
)

// Client talks to one bbsd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// New returns a client for the server at base.
func New(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Mine runs one query.
func (c *Client) Mine(ctx context.Context, req serve.QueryRequest) (*serve.QueryResponse, error) {
	var res serve.QueryResponse
	if err := c.post(ctx, "/mine", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Txns applies one write batch.
func (c *Client) Txns(ctx context.Context, req serve.TxnsRequest) (*serve.TxnsResponse, error) {
	var res serve.TxnsResponse
	if err := c.post(ctx, "/txns", req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Stats fetches the server's snapshot summary.
func (c *Client) Stats(ctx context.Context) (*serve.StatsInfo, error) {
	var res serve.StatsInfo
	if err := c.get(ctx, "/stats", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Metrics fetches the raw Prometheus exposition, for scrape-and-grep
// checks.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: building /metrics request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("client: GET /metrics: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: reading /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: GET /metrics: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, path, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("client: building %s request: %w", path, err)
	}
	return c.do(req, path, out)
}

func (c *Client) do(req *http.Request, path string, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", req.Method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// StatusError is a non-200 server answer, preserving the code so callers
// can distinguish rejection (503) from bad input (400).
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}
