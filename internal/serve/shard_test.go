package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/sigfile"
	"bbsmine/internal/sighash"
	"bbsmine/internal/txdb"
)

// newShardedTestEngine builds an in-memory N-shard engine over txs, routed
// round-robin by global ordinal exactly as the engine's own writes are.
func newShardedTestEngine(t *testing.T, txs [][]int32, m, k, shards int, opts Options) *Engine {
	t.Helper()
	stats := &iostat.Stats{}
	parts := make([]ShardOptions, shards)
	for s := range parts {
		parts[s] = ShardOptions{
			Index: sigfile.New(sighash.NewFNV(m, k), stats),
			Log:   txdb.NewAppendLog(stats),
		}
	}
	for g, items := range txs {
		s := g % shards
		tx := txdb.NewTransaction(int64(g), items)
		if err := parts[s].Log.Append(tx); err != nil {
			t.Fatalf("seeding shard %d: %v", s, err)
		}
		parts[s].Index.Insert(tx.Items)
	}
	opts.Shards = parts
	e, err := New(opts)
	if err != nil {
		t.Fatalf("New (sharded): %v", err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return e
}

// TestShardedAnswersMatchUnsharded pins the serving-layer face of the
// sharding invariant: a 4-shard engine answers every query byte-identically
// to a 1-shard engine over the same transactions, and its responses carry
// the per-shard epoch vector.
func TestShardedAnswersMatchUnsharded(t *testing.T) {
	txs := genTxns(20, 240, 40, 6)
	flat := newTestEngine(t, txs, 256, 3, Options{})
	shd := newShardedTestEngine(t, txs, 256, 3, 4, Options{})
	ctx := context.Background()

	item := int32(5)
	for name, req := range map[string]QueryRequest{
		"DFP":         {Scheme: "DFP", MinSupportCount: 5},
		"SFS":         {Scheme: "SFS", MinSupportCount: 4},
		"SFP frac":    {Scheme: "SFP", MinSupportFrac: 0.02},
		"constrained": {Scheme: "SFP", MinSupportCount: 3, ConstraintItem: &item},
	} {
		want, err := flat.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s unsharded: %v", name, err)
		}
		got, err := shd.Query(ctx, req)
		if err != nil {
			t.Fatalf("%s sharded: %v", name, err)
		}
		if string(got.Patterns) != string(want.Patterns) {
			t.Errorf("%s: sharded answer differs from unsharded (%d vs %d patterns)",
				name, len(decodePatterns(t, got)), len(decodePatterns(t, want)))
		}
		if len(got.Epochs) != 4 {
			t.Errorf("%s: sharded response epochs = %v, want a 4-vector", name, got.Epochs)
		}
		if len(want.Epochs) != 0 {
			t.Errorf("%s: unsharded response leaked an epoch vector: %v", name, want.Epochs)
		}
	}

	fs, ss := flat.Stats(), shd.Stats()
	if fs.Shards != 1 || ss.Shards != 4 {
		t.Fatalf("stats shards = %d/%d, want 1/4", fs.Shards, ss.Shards)
	}
	if ss.Transactions != fs.Transactions || ss.Live != fs.Live || ss.Items != fs.Items {
		t.Fatalf("sharded stats diverge: %+v vs %+v", ss, fs)
	}
	if len(ss.Epochs) != 4 {
		t.Fatalf("sharded stats epochs = %v, want a 4-vector", ss.Epochs)
	}
}

// TestShardedWritesCommitIndependently checks the per-shard commit loops:
// a write touching one shard bumps only that shard's epoch, the response
// epoch is the vector sum, and validation failures leave every shard's
// epoch untouched.
func TestShardedWritesCommitIndependently(t *testing.T) {
	const shards = 3
	e := newShardedTestEngine(t, genTxns(21, 30, 25, 4), 128, 3, shards, Options{})
	ctx := context.Background()

	before := e.EpochVector()

	// Position 4 routes to shard 4 mod 3 = 1: only its epoch may move.
	res, err := e.Apply(ctx, TxnsRequest{Delete: []int{4}})
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if len(res.Epochs) != shards {
		t.Fatalf("epochs = %v, want a %d-vector", res.Epochs, shards)
	}
	for s, got := range res.Epochs {
		want := before[s]
		if s == 1 {
			want++
		}
		if got != want {
			t.Fatalf("shard %d epoch after single-shard delete = %d, want %d (vector %v)", s, got, want, res.Epochs)
		}
	}
	if sum := res.Epochs[0] + res.Epochs[1] + res.Epochs[2]; res.Epoch != sum {
		t.Fatalf("response epoch %d != vector sum %d", res.Epoch, sum)
	}

	// Two inserts land at global positions 30 and 31 — shards 0 and 1.
	after := e.EpochVector()
	res, err = e.Apply(ctx, TxnsRequest{Insert: [][]int32{{1, 2, 3}, {4, 5, 6}}})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	for s, got := range res.Epochs {
		want := after[s]
		if s == 0 || s == 1 {
			want++
		}
		if got != want {
			t.Fatalf("shard %d epoch after two inserts = %d, want %d", s, got, want)
		}
	}

	// A request that fails validation — insert plus an out-of-range delete —
	// must not advance any shard's epoch or insert any row.
	vec := e.EpochVector()
	n := e.Stats().Transactions
	_, err = e.Apply(ctx, TxnsRequest{Insert: [][]int32{{7, 8}}, Delete: []int{9999}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid cross-shard request returned %v, want ErrInvalid", err)
	}
	got := e.EpochVector()
	for s := range vec {
		if got[s] != vec[s] {
			t.Fatalf("failed request moved shard %d epoch %d -> %d", s, vec[s], got[s])
		}
	}
	if e.Stats().Transactions != n {
		t.Fatal("failed request inserted rows")
	}
}

// TestShardedConcurrentWritersConverge drives concurrent single-row writers
// (whose rows scatter across the shards and commit through independent
// loops) alongside readers, then checks the final answer is byte-identical
// to an unsharded engine holding the same rows. Run with -race.
func TestShardedConcurrentWritersConverge(t *testing.T) {
	const (
		shards  = 4
		writers = 4
		rows    = 15
	)
	seedTxs := genTxns(22, 100, 30, 5)
	e := newShardedTestEngine(t, seedTxs, 128, 3, shards, Options{MaxInFlight: 4, MaxQueue: 64})
	ctx := context.Background()

	extra := make([][][]int32, writers)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		extra[w] = genTxns(uint64(2000+w), rows, 30, 5)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, items := range extra[w] {
				if _, err := e.Apply(ctx, TxnsRequest{Insert: [][]int32{items}}); err != nil {
					errs[w] = fmt.Errorf("row %d: %w", i, err)
					return
				}
				if i%5 == 0 {
					if _, err := e.Query(ctx, QueryRequest{Scheme: "DFP", MinSupportCount: 5}); err != nil {
						errs[w] = fmt.Errorf("interleaved query: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	if got, want := e.Stats().Transactions, len(seedTxs)+writers*rows; got != want {
		t.Fatalf("transactions = %d, want %d", got, want)
	}

	// Mining is invariant under row order, so any interleaving must yield
	// the same patterns as an unsharded engine over the same row multiset.
	all := append(append([][]int32{}, seedTxs...), extra[0]...)
	for w := 1; w < writers; w++ {
		all = append(all, extra[w]...)
	}
	flat := newTestEngine(t, all, 128, 3, Options{})
	for _, tau := range []int{4, 6} {
		req := QueryRequest{Scheme: "DFP", MinSupportCount: tau}
		want, err := flat.Query(ctx, req)
		if err != nil {
			t.Fatalf("flat query: %v", err)
		}
		got, err := e.Query(ctx, req)
		if err != nil {
			t.Fatalf("sharded query: %v", err)
		}
		if string(got.Patterns) != string(want.Patterns) {
			t.Fatalf("τ=%d: answer after concurrent sharded writes differs from unsharded reference", tau)
		}
	}
}

// TestShardedOptionsValidation: the single-shard sugar fields and the Shards
// list are mutually exclusive, and the parts must satisfy the round-robin
// layout.
func TestShardedOptionsValidation(t *testing.T) {
	stats := &iostat.Stats{}
	part := func(rows int) ShardOptions {
		p := ShardOptions{Index: sigfile.New(sighash.NewFNV(64, 2), stats), Log: txdb.NewAppendLog(stats)}
		for i := 0; i < rows; i++ {
			tx := txdb.NewTransaction(int64(i), []int32{int32(i)})
			if err := p.Log.Append(tx); err != nil {
				t.Fatal(err)
			}
			p.Index.Insert(tx.Items)
		}
		return p
	}

	both := Options{Index: sigfile.New(sighash.NewFNV(64, 2), stats), Shards: []ShardOptions{part(0)}}
	if _, err := New(both); err == nil {
		t.Error("Options with both single-shard fields and Shards accepted")
	}

	// Two rows in part 1, zero in part 0: round-robin needs 1 and 1.
	if _, err := New(Options{Shards: []ShardOptions{part(0), part(2)}}); err == nil {
		t.Error("non-round-robin shard layout accepted")
	}

	ok, err := New(Options{Shards: []ShardOptions{part(2), part(1)}})
	if err != nil {
		t.Fatalf("valid 2-shard layout rejected: %v", err)
	}
	if ok.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", ok.Shards())
	}
	if err := ok.Close(); err != nil {
		t.Fatal(err)
	}
}
