package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"bbsmine/internal/obs"
)

// Handler returns bbsd's full mux: the three serving endpoints plus the
// observability surface (/metrics, /debug/vars, /debug/pprof/*) from
// internal/obs.
func (e *Engine) Handler() http.Handler {
	mux := obs.NewServeMux()
	mux.HandleFunc("/mine", e.handleMine)
	mux.HandleFunc("/txns", e.handleTxns)
	mux.HandleFunc("/stats", e.handleStats)
	return mux
}

// startRequest mints the request's span: the client's X-Request-ID when it
// sent one (sanitized), a fresh ID otherwise. The ID is echoed back
// immediately so even an error response is traceable.
func (e *Engine) startRequest(w http.ResponseWriter, r *http.Request, class obs.RequestClass) (context.Context, *Span) {
	ctx, sp := e.StartSpan(r.Context(), sanitizeRequestID(r.Header.Get("X-Request-ID")), class)
	w.Header().Set("X-Request-ID", sp.ID)
	return ctx, sp
}

// setServerTiming attaches the span's stage decomposition as a
// Server-Timing header. Must run before the status/body are written.
func setServerTiming(w http.ResponseWriter, sp *Span) {
	if st := sp.ServerTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
}

func (e *Engine) handleMine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "serve: decoding /mine body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx, sp := e.startRequest(w, r, obs.ClassRead)
	res, err := e.Query(ctx, req)
	setServerTiming(w, sp)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, res)
}

func (e *Engine) handleTxns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req TxnsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "serve: decoding /txns body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx, sp := e.startRequest(w, r, obs.ClassWrite)
	res, err := e.Apply(ctx, req)
	setServerTiming(w, sp)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, res)
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, e.Stats())
}

// writeError maps the engine's error classes onto status codes.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalid):
		code = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the code is moot but pick one anyway.
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// A failed encode means the client hung up mid-response; there is no
	// one left to tell.
	_ = json.NewEncoder(w).Encode(v)
}
