package serve

//lint:file-ignore determinism the wall clock lives behind the Clock seam; mining results never read it
//lint:file-ignore obsdiscipline SystemClock is the package's one sanctioned wall-clock read; engine code consumes the interface

import "time"

// Clock abstracts the wall clock so the engine itself never calls time.Now:
// tests inject a fake, and the lint analyzers keep stray wall-clock reads
// out of every other file in the package.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// SystemClock returns the real wall clock.
func SystemClock() Clock { return wallClock{} }
