package pager

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// writeColdFile builds a sealed cold file of the given extents and returns
// the per-extent base pages.
func writeColdFile(t *testing.T, path string, extents ...[]byte) []int64 {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	bases := make([]int64, len(extents))
	for i, e := range extents {
		bases[i], err = w.Append(e)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return bases
}

func TestColdFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cold")
	big := make([]byte, PageSize+123)
	for i := range big {
		big[i] = byte(i * 7)
	}
	bases := writeColdFile(t, path, []byte("hello"), big)
	if bases[0] != 0 || bases[1] != 1 {
		t.Fatalf("bases = %v, want [0 1]", bases)
	}

	p := New(0)
	f, err := p.OpenCold(path)
	if err != nil {
		t.Fatalf("OpenCold: %v", err)
	}
	defer func() { _ = f.Close() }()
	if f.Pages() != 3 {
		t.Fatalf("Pages = %d, want 3", f.Pages())
	}
	pg, err := f.Page(0)
	if err != nil {
		t.Fatalf("Page(0): %v", err)
	}
	if !bytes.Equal(pg[:5], []byte("hello")) {
		t.Fatalf("page 0 = %q", pg[:5])
	}
	if pg[5] != 0 {
		t.Fatalf("extent tail not zero-padded")
	}
	f.Release(0)
	got := make([]byte, 0, len(big))
	for k := int64(1); k <= 2; k++ {
		pg, err := f.Page(k)
		if err != nil {
			t.Fatalf("Page(%d): %v", k, err)
		}
		got = append(got, pg...)
		f.Release(k)
	}
	if !bytes.Equal(got[:len(big)], big) {
		t.Fatalf("big extent did not round-trip")
	}
	if _, err := f.Page(3); err == nil {
		t.Fatalf("Page(3) past the end should fail")
	}
	st := p.Stats()
	if st.Faults != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 3 faults 0 hits", st)
	}
	if _, err := f.Page(0); err != nil {
		t.Fatalf("re-Page(0): %v", err)
	}
	f.Release(0)
	if st := p.Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestOpenRejectsUnsealedAndForeign(t *testing.T) {
	dir := t.TempDir()
	p := New(0)

	// Unsealed: a writer that appended but never sealed leaves only a .tmp,
	// which Open never sees; simulate a torn seal by clearing the flag.
	path := filepath.Join(dir, "torn")
	writeColdFile(t, path, []byte("payload"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[32:36], 0)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenCold(path); err == nil {
		t.Fatalf("OpenCold accepted an unsealed file")
	}

	foreign := filepath.Join(dir, "foreign")
	if err := os.WriteFile(foreign, make([]byte, 2*PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenCold(foreign); err == nil {
		t.Fatalf("OpenCold accepted a foreign file")
	}
}

func TestEvictionRespectsBudgetPinsAndEpochs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cold")
	extents := make([][]byte, 8)
	for i := range extents {
		extents[i] = bytes.Repeat([]byte{byte(i + 1)}, PageSize)
	}
	writeColdFile(t, path, extents...)

	p := New(2 * PageSize)
	f, err := p.OpenCold(path)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 8; k++ {
		if _, err := f.Page(k); err != nil {
			t.Fatal(err)
		}
		f.Release(k)
	}
	st := p.Stats()
	if st.ResidentBytes > 2*PageSize {
		t.Fatalf("resident %d exceeds budget", st.ResidentBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 2-page budget")
	}

	// A pinned page survives any amount of pressure.
	if _, err := f.Page(0); err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k < 8; k++ {
		if _, err := f.Page(k); err != nil {
			t.Fatal(err)
		}
		f.Release(k)
	}
	if _, hit, _ := p.page(f, 0, false); !hit {
		t.Fatalf("pinned page 0 was evicted")
	}
	f.Release(0)

	// Epoch-tagged frames are protected until the tag drains.
	tag := p.AcquireEpoch()
	if _, err := f.Page(3); err != nil {
		t.Fatal(err)
	}
	f.Release(3)
	for k := int64(4); k < 8; k++ {
		if _, err := f.Page(k); err != nil {
			t.Fatal(err)
		}
		f.Release(k)
	}
	// Pages faulted under the live tag are all protected, so the pool may
	// run soft-over-budget; page 3 must still be resident.
	if _, hit, _ := p.page(f, 3, false); !hit {
		t.Fatalf("epoch-tagged page 3 was evicted while its tag was live")
	}
	f.Release(3)
	p.ReleaseEpoch(tag)
	evBefore := p.Stats().Evictions
	p.Reserve(PageSize) // pressure: budget now 1 page of frames
	if p.Stats().Evictions == evBefore {
		t.Fatalf("releasing the epoch plus pressure should evict")
	}
	p.Reserve(-PageSize)
	_ = f.Close()
	if st := p.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("Close left %d resident bytes", st.ResidentBytes)
	}
}

func TestVirtualFilesModelResidency(t *testing.T) {
	p := New(3 * PageSize)
	f := p.Virtual("txdb")
	if f.Touch(0) {
		t.Fatalf("first touch reported a hit")
	}
	if !f.Touch(0) {
		t.Fatalf("second touch reported a miss")
	}
	for k := int64(1); k < 6; k++ {
		f.Touch(k)
	}
	st := p.Stats()
	if st.ResidentBytes > 3*PageSize {
		t.Fatalf("resident %d exceeds budget", st.ResidentBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("virtual pages were never evicted")
	}
	if st.HitRatio() <= 0 {
		t.Fatalf("hit ratio = %v, want > 0", st.HitRatio())
	}

	// Nil handles (tiering off) are inert and always hit.
	var nilFile *File
	if !nilFile.Touch(7) {
		t.Fatalf("nil file should report hits")
	}
	var nilPager *Pager
	if nilPager.AcquireEpoch() != 0 {
		t.Fatalf("nil pager should mint tag 0")
	}
	nilPager.ReleaseEpoch(0)
	nilPager.Reserve(10)
	if st := nilPager.Stats(); st != (Stats{}) {
		t.Fatalf("nil pager stats = %+v", st)
	}
}

// TestPagerStatsNotTorn is the pager-side sibling of iostat's
// TestStatsSnapshotNotTorn: Stats() reads independent atomics against live
// traffic, and the one cross-counter invariant it promises — Evictions <=
// Faults, every eviction paid for by a prior admission — must hold for
// every interleaving (Stats reads evictions before faults to make it so).
func TestPagerStatsNotTorn(t *testing.T) {
	p := New(2 * PageSize) // tight budget: constant fault/evict churn
	f := p.Virtual("churn")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			f.Touch(int64(i % 16))
		}
		close(done)
	}()
	for {
		st := p.Stats()
		if st.Evictions > st.Faults {
			t.Errorf("torn snapshot: Evictions=%d > Faults=%d", st.Evictions, st.Faults)
			break
		}
		select {
		case <-done:
			wg.Wait()
			st := p.Stats()
			if st.Evictions == 0 {
				t.Fatalf("churn produced no evictions; the invariant was never exercised")
			}
			return
		default:
		}
	}
	wg.Wait()
}

func TestConcurrentFaulting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cold")
	extents := make([][]byte, 16)
	for i := range extents {
		extents[i] = bytes.Repeat([]byte{byte(i)}, PageSize)
	}
	writeColdFile(t, path, extents...)
	p := New(4 * PageSize)
	f, err := p.OpenCold(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := int64((g + i) % 16)
				pg, err := f.Page(k)
				if err != nil {
					t.Errorf("Page(%d): %v", k, err)
					return
				}
				if pg[0] != byte(k) {
					t.Errorf("page %d holds %d", k, pg[0])
					return
				}
				f.Release(k)
			}
		}(g)
	}
	wg.Wait()
}
