// Package pager is the page-granular buffer manager behind tiered slice
// storage: a bounded frame pool shared by every cold consumer in the
// process, so compressed slice payloads and the transaction store pay for
// memory out of one budget (-mem-budget).
//
// The pool is a frame table plus a CLOCK ring. A Page call pins a frame
// (faulting it from the cold file read-through if absent), the caller
// streams the bytes, and Release unpins it. Eviction is second-chance
// CLOCK: a sweep clears reference bits and reclaims the first frame that
// is unpinned, unreferenced, and not tagged by a live epoch. Pinning is
// strictly a performance lever — every page can always be re-faulted from
// its sealed cold file — so over- or under-retention can never change a
// result, only move I/O.
//
// Epoch tags integrate the pool with serve's snapshot lifecycle: the
// publisher acquires a tag per published snapshot, frames touched while a
// tag is live inherit the newest live tag, and ReleaseEpoch (when the last
// query over that snapshot drains) makes those frames evictable again.
//
// Cold files are derived data, rebuilt from the authoritative index at
// tiering time, and are written with a crash-safe ordering: payload pages
// are flushed and fsynced before the sealed header is written and fsynced,
// and the whole file lands under a temp name renamed into place. Open
// refuses an unsealed file, so a torn write can never serve bytes.
package pager

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the frame granularity in bytes. It divides by 8, so the cold
// payload formats (uint64 words, uint32 positions and runs) never straddle
// a page boundary.
const PageSize = 4096

// Stats is a point-in-time snapshot of the pool's counters, readable
// without the pool lock.
type Stats struct {
	ResidentBytes int64 // bytes currently held by frames
	ReservedBytes int64 // hot-tier bytes charged against the budget via Reserve
	Faults        int64 // pages read through from cold files (or first virtual touches)
	Hits          int64 // page requests served from a resident frame
	Evictions     int64 // frames reclaimed by the CLOCK sweep
}

// HitRatio returns hits / (hits + faults), or 0 before any traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Faults
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frameKey struct {
	file *File
	page int64
}

// frame is one resident page. pins, ref, epoch and slot are all guarded by
// the owning Pager's mu; data is written once at fault time and read-only
// afterwards, so pinned readers may use it outside the lock.
type frame struct {
	file  *File
	page  int64
	data  []byte // nil for virtual frames (residency model only)
	size  int64
	pins  int    // guarded by Pager.mu
	ref   bool   // CLOCK second-chance bit; guarded by Pager.mu
	epoch uint64 // newest live epoch tag seen at pin time; guarded by Pager.mu
	slot  int    // index in Pager.ring; guarded by Pager.mu
}

// Pager is the shared buffer pool. All methods are safe for concurrent use
// and safe on a nil receiver (no-ops / zero values), which lets call sites
// stay unconditional when tiering is off.
type Pager struct {
	budget int64 // bytes; <= 0 means unbounded; immutable after New

	mu       sync.Mutex
	reserved int64 // hot-tier reservation, counted against budget; guarded by mu
	frames   map[frameKey]*frame
	ring     []*frame // CLOCK ring; guarded by mu
	hand     int      // CLOCK hand; guarded by mu
	resident int64    // sum of frame sizes; guarded by mu

	epochs   map[uint64]struct{} // live epoch tags; guarded by mu
	epochSeq uint64              // guarded by mu
	newest   uint64              // newest live tag, 0 while none; guarded by mu

	// Counters are atomics so Stats and /metrics read them without the
	// pool lock; residentGauge mirrors resident for the same reason.
	faults        atomic.Int64
	hits          atomic.Int64
	evictions     atomic.Int64
	residentGauge atomic.Int64
	reservedGauge atomic.Int64
}

// New returns a pool bounded to budget bytes (frames plus hot-tier
// reservations). budget <= 0 means unbounded: everything faulted stays
// resident.
func New(budget int64) *Pager {
	return &Pager{
		budget: budget,
		frames: make(map[frameKey]*frame),
		epochs: make(map[uint64]struct{}),
	}
}

// Budget returns the byte budget the pool was built with (0 if unbounded
// or the receiver is nil).
func (p *Pager) Budget() int64 {
	if p == nil {
		return 0
	}
	return p.budget
}

// Reserve charges n bytes of hot-tier (permanently resident) storage
// against the budget, shrinking what the frame pool may hold. Negative n
// returns a reservation. Tiering uses it so pinned-hot slices and faulted
// cold pages compete for one budget.
func (p *Pager) Reserve(n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reserved += n
	p.reservedGauge.Store(p.reserved)
	p.evictLocked()
	p.mu.Unlock()
}

// Stats returns the pool's counters. Safe on nil (zero Stats).
//
// The counters are independent atomics, so a snapshot taken against
// concurrent traffic is not a single instant. One cross-counter invariant
// is still guaranteed: Evictions <= Faults. Every eviction is preceded by
// an admission (a fault) under the same lock, and evictions is read first
// here, so new faults can only land on the large side of the inequality.
func (p *Pager) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	ev := p.evictions.Load() // before faults; see the invariant above
	return Stats{
		ResidentBytes: p.residentGauge.Load(),
		ReservedBytes: p.reservedGauge.Load(),
		Faults:        p.faults.Load(),
		Hits:          p.hits.Load(),
		Evictions:     ev,
	}
}

// AcquireEpoch mints a fresh live epoch tag. Frames pinned or touched
// while any tag is live inherit the newest live tag and are exempt from
// eviction until that tag is released. Returns 0 on a nil receiver, which
// ReleaseEpoch treats as "no tag".
func (p *Pager) AcquireEpoch() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	p.epochSeq++
	tag := p.epochSeq
	p.epochs[tag] = struct{}{}
	p.newest = tag
	p.mu.Unlock()
	return tag
}

// ReleaseEpoch retires a tag minted by AcquireEpoch: frames carrying it
// become evictable again (unless re-tagged by a newer live snapshot in
// the meantime). Safe to call with 0 or on nil.
func (p *Pager) ReleaseEpoch(tag uint64) {
	if p == nil || tag == 0 {
		return
	}
	p.mu.Lock()
	delete(p.epochs, tag)
	if p.newest == tag {
		p.newest = 0
		//lint:ignore determinism max over the live set; order cannot change the maximum
		for t := range p.epochs {
			if t > p.newest {
				p.newest = t
			}
		}
	}
	p.evictLocked()
	p.mu.Unlock()
}

// epochLiveLocked reports whether tag still protects a frame. Caller holds mu.
func (p *Pager) epochLiveLocked(tag uint64) bool {
	if tag == 0 {
		return false
	}
	_, ok := p.epochs[tag]
	return ok
}

// pinLocked records a hit on an existing frame. Caller holds mu.
func (p *Pager) pinLocked(fr *frame, pin bool) {
	if pin {
		fr.pins++
	}
	fr.ref = true
	if p.newest != 0 {
		fr.epoch = p.newest
	}
}

// admitLocked installs a freshly faulted frame and runs eviction to pay
// for it. Caller holds mu.
func (p *Pager) admitLocked(key frameKey, fr *frame) {
	fr.slot = len(p.ring)
	p.ring = append(p.ring, fr)
	p.frames[key] = fr
	p.resident += fr.size
	if p.newest != 0 {
		fr.epoch = p.newest
	}
	p.faults.Add(1)
	p.evictLocked()
}

// evictLocked reclaims frames until resident+reserved fits the budget or a
// bounded CLOCK sweep finds nothing evictable (every frame pinned or
// epoch-protected) — then the pool runs soft-over-budget rather than
// block, since pinning is advisory and correctness never depends on the
// bound. Caller holds mu.
func (p *Pager) evictLocked() {
	defer func() { p.residentGauge.Store(p.resident) }()
	if p.budget <= 0 {
		return
	}
	// Two full revolutions: one to clear reference bits, one to reclaim.
	scansLeft := 2 * len(p.ring)
	for p.resident+p.reserved > p.budget && len(p.ring) > 0 && scansLeft >= 0 {
		scansLeft--
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		fr := p.ring[p.hand]
		if fr.pins > 0 || p.epochLiveLocked(fr.epoch) {
			p.hand++
			continue
		}
		if fr.ref {
			fr.ref = false
			p.hand++
			continue
		}
		p.removeLocked(fr)
		p.evictions.Add(1)
	}
}

// removeLocked drops a frame from the table and the ring (swap-remove; the
// hand stays put so the frame moved into the hole is considered next).
// Caller holds mu.
func (p *Pager) removeLocked(fr *frame) {
	delete(p.frames, frameKey{fr.file, fr.page})
	last := len(p.ring) - 1
	p.ring[fr.slot] = p.ring[last]
	p.ring[fr.slot].slot = fr.slot
	p.ring[last] = nil
	p.ring = p.ring[:last]
	p.resident -= fr.size
}

// page is the shared fault path: return the frame for (f, k), faulting it
// in if absent. pin=true leaves it pinned for the caller to Release.
func (p *Pager) page(f *File, k int64, pin bool) ([]byte, bool, error) {
	key := frameKey{f, k}
	p.mu.Lock()
	if fr, ok := p.frames[key]; ok {
		p.pinLocked(fr, pin)
		p.hits.Add(1)
		p.mu.Unlock()
		return fr.data, true, nil
	}
	var data []byte
	if f.f != nil {
		if k < 0 || k >= f.pages {
			p.mu.Unlock()
			return nil, false, fmt.Errorf("pager: page %d out of range [0,%d) in %s", k, f.pages, f.name)
		}
		data = make([]byte, PageSize)
		if _, err := f.f.ReadAt(data, (k+1)*PageSize); err != nil {
			p.mu.Unlock()
			return nil, false, fmt.Errorf("pager: read %s page %d: %w", f.name, k, err)
		}
	}
	fr := &frame{file: f, page: k, data: data, size: PageSize, ref: true}
	if pin {
		fr.pins = 1
	}
	p.admitLocked(key, fr)
	p.mu.Unlock()
	return data, false, nil
}

// release unpins one pin on (f, k). Releasing an already-evicted or
// never-pinned page is a no-op — the pin is a hint, not a handle.
func (p *Pager) release(f *File, k int64) {
	p.mu.Lock()
	if fr, ok := p.frames[frameKey{f, k}]; ok && fr.pins > 0 {
		fr.pins--
	}
	p.mu.Unlock()
}

// dropFile removes every frame belonging to f, pinned or not — Close has
// invalidated the backing bytes, so keeping them would serve stale data.
func (p *Pager) dropFile(f *File) {
	p.mu.Lock()
	for i := 0; i < len(p.ring); {
		if p.ring[i].file == f {
			p.removeLocked(p.ring[i])
			continue // swap-remove moved a new frame into slot i
		}
		i++
	}
	p.residentGauge.Store(p.resident)
	p.mu.Unlock()
}
