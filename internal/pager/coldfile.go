package pager

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Cold-file format, BBSCOLD1. Page 0 is the header:
//
//	magic(8) | version uint32 | pageSize uint32 | payloadPages uint64
//	| payloadBytes uint64 | sealed uint32
//
// followed by payloadPages pages of back-to-back payload extents, each
// extent starting on a page boundary. The header's sealed flag is written
// only after every payload page is durable (Seal: flush, fsync, then
// header, then fsync again — the crash-safety ordering), and the whole
// file is built under a temp name renamed into place, so Open can trust
// any file it accepts. An unsealed or torn file fails Open and the caller
// rebuilds it from the authoritative index — cold files are derived data.

var coldMagic = [8]byte{'B', 'B', 'S', 'C', 'O', 'L', 'D', '1'}

const coldVersion = 1

// File is a handle to cold pages, either backed by a sealed cold file
// (Page/Release fault real bytes) or virtual (Touch models residency for a
// store that keeps its own bytes, like txdb). A nil *File is inert.
type File struct {
	p     *Pager
	f     *os.File // nil for virtual files
	pages int64    // payload page count; 0 and unused for virtual files
	name  string
}

// OpenCold opens a sealed cold file for read-through faulting. It refuses
// unsealed, truncated, or foreign files.
func (p *Pager) OpenCold(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pager: open cold file: %w", err)
	}
	hdr := make([]byte, PageSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("pager: read cold header %s: %w", path, err)
	}
	if [8]byte(hdr[0:8]) != coldMagic {
		_ = f.Close()
		return nil, fmt.Errorf("pager: %s is not a cold file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != coldVersion {
		_ = f.Close()
		return nil, fmt.Errorf("pager: cold file %s has version %d, want %d", path, v, coldVersion)
	}
	if ps := binary.LittleEndian.Uint32(hdr[12:16]); ps != PageSize {
		_ = f.Close()
		return nil, fmt.Errorf("pager: cold file %s has page size %d, want %d", path, ps, PageSize)
	}
	pages := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	if sealed := binary.LittleEndian.Uint32(hdr[32:36]); sealed != 1 {
		_ = f.Close()
		return nil, fmt.Errorf("pager: cold file %s is unsealed (torn write)", path)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("pager: stat cold file %s: %w", path, err)
	}
	if st.Size() < (pages+1)*PageSize {
		_ = f.Close()
		return nil, fmt.Errorf("pager: cold file %s truncated: %d bytes for %d payload pages", path, st.Size(), pages)
	}
	return &File{p: p, f: f, pages: pages, name: path}, nil
}

// Virtual returns a data-less file whose pages exist only as residency
// accounting — the txdb page-cache model rehosted on the shared pool.
// Returns nil on a nil pager; a nil *File's Touch always reports a hit.
func (p *Pager) Virtual(name string) *File {
	if p == nil {
		return nil
	}
	return &File{p: p, name: name}
}

// Page pins payload page k and returns its bytes (always PageSize long;
// the tail of the last extent is zero-padded). The caller must Release(k)
// when done streaming and must not retain or modify the slice afterwards.
func (f *File) Page(k int64) ([]byte, error) {
	data, _, err := f.p.page(f, k, true)
	return data, err
}

// Release unpins one Page(k) pin.
func (f *File) Release(k int64) { f.p.release(f, k) }

// Touch records an access to virtual page k and reports whether it was
// already resident. Misses admit the page (charging PageSize against the
// shared budget); there are no pins — virtual pages carry no bytes to
// protect. Safe on a nil receiver (always a hit, so disabled tiering
// charges nothing).
func (f *File) Touch(k int64) bool {
	if f == nil {
		return true
	}
	_, hit, _ := f.p.page(f, k, false) // virtual pages cannot fail: no I/O
	return hit
}

// Pages returns the payload page count of a cold file (0 for virtual).
func (f *File) Pages() int64 { return f.pages }

// Name returns the path (cold) or label (virtual) the file was opened with.
func (f *File) Name() string { return f.name }

// Close drops every frame of this file from the pool and closes the
// backing descriptor. Cold consumers must not fault through the handle
// afterwards.
func (f *File) Close() error {
	if f == nil {
		return nil
	}
	f.p.dropFile(f)
	if f.f == nil {
		return nil
	}
	if err := f.f.Close(); err != nil {
		return fmt.Errorf("pager: close cold file %s: %w", f.name, err)
	}
	return nil
}

// Writer builds a cold file. Extents appended through it start on page
// boundaries; Seal makes the payload durable before stamping the header
// and renaming the temp file into place.
type Writer struct {
	f     *os.File
	path  string // final path; the descriptor writes path+".tmp"
	pages int64  // payload pages written so far
	bytes int64  // payload bytes written so far (before padding)
}

// Create starts a cold file at path, building under path+".tmp" until
// Seal renames it into place. An existing file at path stays valid (and
// open handles stay on the old inode) until the rename.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path+".tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create cold file: %w", err)
	}
	// Reserve the header page; it is rewritten, sealed, at Seal time.
	if _, err := f.Write(make([]byte, PageSize)); err != nil {
		_ = f.Close()
		_ = os.Remove(path + ".tmp")
		return nil, fmt.Errorf("pager: write cold header %s: %w", path, err)
	}
	return &Writer{f: f, path: path}, nil
}

// Append writes one payload extent, zero-padded to a page boundary, and
// returns the page index its first byte landed on.
func (w *Writer) Append(payload []byte) (basePage int64, err error) {
	basePage = w.pages
	if _, err := w.f.Write(payload); err != nil {
		return 0, fmt.Errorf("pager: append cold extent: %w", err)
	}
	if pad := (PageSize - len(payload)%PageSize) % PageSize; pad > 0 {
		if _, err := w.f.Write(make([]byte, pad)); err != nil {
			return 0, fmt.Errorf("pager: pad cold extent: %w", err)
		}
	}
	w.pages += int64((len(payload) + PageSize - 1) / PageSize)
	w.bytes += int64(len(payload))
	return basePage, nil
}

// Seal makes the file durable and visible: fsync the payload, write the
// sealed header, fsync again, close, and rename over the final path — in
// that order, so a crash at any point leaves either the old file or no
// file, never a half-written one that Open would accept.
func (w *Writer) Seal() error {
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("pager: sync cold payload %s: %w", w.path, err)
	}
	hdr := make([]byte, PageSize)
	copy(hdr, coldMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], coldVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], PageSize)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(w.pages))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(w.bytes))
	binary.LittleEndian.PutUint32(hdr[32:36], 1) // sealed
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		w.abort()
		return fmt.Errorf("pager: seal cold header %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("pager: sync cold header %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		_ = os.Remove(w.path + ".tmp")
		return fmt.Errorf("pager: close cold file %s: %w", w.path, err)
	}
	if err := os.Rename(w.path+".tmp", w.path); err != nil {
		_ = os.Remove(w.path + ".tmp")
		return fmt.Errorf("pager: install cold file %s: %w", w.path, err)
	}
	return nil
}

// Abort discards a partially written cold file.
func (w *Writer) Abort() { w.abort() }

func (w *Writer) abort() {
	_ = w.f.Close()
	_ = os.Remove(w.path + ".tmp")
}
