// Package apriori implements the classic Apriori frequent-pattern miner of
// Agrawal & Srikant, the paper's APS baseline.
//
// The implementation is the standard level-wise search: L1 from one database
// scan, then repeatedly candidate generation (join + prune over L(k-1)) and
// one counting scan per level, with candidates held in a prefix trie so each
// transaction is counted by trie descent rather than by enumerating all of
// its k-subsets.
//
// A memory budget (paper Figure 11) constrains how many candidates may be
// resident at once: when a level's candidate set exceeds the budget it is
// counted in chunks, each chunk costing one additional scan — "smaller
// memory means fewer data can be reused in memory, and so the database has
// to be scanned multiple times".
package apriori

import (
	"encoding/binary"
	"fmt"
	"sort"

	"bbsmine/internal/mining"
	"bbsmine/internal/txdb"
)

// Config controls one mining run.
type Config struct {
	// MinSupport is the absolute support threshold τ (count, not fraction).
	MinSupport int
	// MemoryBudget caps the bytes available for resident candidates;
	// 0 means unlimited. Exceeding it splits a level into chunks, each
	// requiring its own database scan.
	MemoryBudget int64
	// MaxLen bounds the length of mined itemsets; 0 means unbounded.
	MaxLen int
}

// candidateBytes approximates the resident size of one candidate itemset of
// length k: items plus trie node overhead.
func candidateBytes(k int) int64 { return int64(4*k + 48) }

// Mine runs Apriori over the store and returns all frequent itemsets with
// their exact supports, sorted in mining.Order.
func Mine(store txdb.Store, cfg Config) ([]mining.Frequent, error) {
	if cfg.MinSupport <= 0 {
		return nil, fmt.Errorf("apriori: MinSupport must be positive, got %d", cfg.MinSupport)
	}

	// Pass 1: exact 1-itemset counts.
	counts := make(map[txdb.Item]int)
	if err := store.Scan(func(_ int, tx txdb.Transaction) bool {
		for _, it := range tx.Items {
			counts[it]++
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("apriori: L1 scan: %w", err)
	}

	var result []mining.Frequent
	var level [][]txdb.Item // L(k-1), lexicographically sorted
	//lint:ignore determinism level is sortItemsets'd below and result is mining.Sort'd before return
	for it, c := range counts {
		if c >= cfg.MinSupport {
			level = append(level, []txdb.Item{it})
			result = append(result, mining.Frequent{Items: []txdb.Item{it}, Support: c})
		}
	}
	sortItemsets(level)

	// Level 2 is counted directly: materializing the |L1|² join candidates
	// in a trie is the textbook algorithm but pathological in memory, so —
	// like every production Apriori — pairs are counted in a hash map over
	// co-occurring pairs only. The memory budget still forces multiple
	// scans by partitioning the pair space on the first item.
	if len(level) >= 2 && (cfg.MaxLen == 0 || cfg.MaxLen >= 2) {
		l2, err := countPairs(store, level, cfg)
		if err != nil {
			return nil, err
		}
		result = append(result, l2...)
		level = level[:0]
		for _, f := range l2 {
			level = append(level, f.Items)
		}
		sortItemsets(level)
	} else {
		level = nil
	}

	for k := 3; len(level) >= 2; k++ {
		if cfg.MaxLen > 0 && k > cfg.MaxLen {
			break
		}
		candidates := generate(level, k)
		if len(candidates) == 0 {
			break
		}

		chunks := chunkCandidates(candidates, k, cfg.MemoryBudget)
		var next [][]txdb.Item
		for _, chunk := range chunks {
			tr := buildTrie(chunk)
			if err := store.Scan(func(_ int, tx txdb.Transaction) bool {
				tr.countTransaction(tx.Items)
				return true
			}); err != nil {
				return nil, fmt.Errorf("apriori: level %d scan: %w", k, err)
			}
			for _, c := range chunk {
				if sup := tr.support(c); sup >= cfg.MinSupport {
					next = append(next, c)
					result = append(result, mining.Frequent{Items: c, Support: sup})
				}
			}
		}
		sortItemsets(next)
		level = next
	}

	mining.Sort(result)
	return result, nil
}

// countPairs computes L2 by hashing co-occurring frequent pairs. The
// theoretical candidate set is the full join of L1 with itself; the memory
// budget therefore partitions the frequent items into groups, each group
// counted with its own scan — the multiplicity of scans is what the paper's
// memory experiment measures.
func countPairs(store txdb.Store, l1 [][]txdb.Item, cfg Config) ([]mining.Frequent, error) {
	frequent := make(map[txdb.Item]bool, len(l1))
	for _, s := range l1 {
		frequent[s[0]] = true
	}

	groups := 1
	if cfg.MemoryBudget > 0 {
		theoretical := int64(len(l1)) * int64(len(l1)-1) / 2 * candidateBytes(2)
		groups = int((theoretical + cfg.MemoryBudget - 1) / cfg.MemoryBudget)
		if groups < 1 {
			groups = 1
		}
		if groups > len(l1) {
			groups = len(l1)
		}
	}

	// Assign each frequent item a group by its rank in sorted order.
	group := make(map[txdb.Item]int, len(l1))
	for rank, s := range l1 {
		group[s[0]] = rank * groups / len(l1)
	}

	var out []mining.Frequent
	for g := 0; g < groups; g++ {
		pairCounts := make(map[uint64]int)
		err := store.Scan(func(_ int, tx txdb.Transaction) bool {
			for i, a := range tx.Items {
				ga, ok := group[a]
				if !ok || ga != g {
					continue
				}
				for _, b := range tx.Items[i+1:] {
					if frequent[b] {
						pairCounts[pairKey(a, b)]++
					}
				}
			}
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("apriori: L2 scan (group %d): %w", g, err)
		}
		//lint:ignore determinism out feeds result (mining.Sort'd) and level (sortItemsets'd); order cannot leak
		for pk, c := range pairCounts {
			if c >= cfg.MinSupport {
				a, b := unpairKey(pk)
				out = append(out, mining.Frequent{Items: []txdb.Item{a, b}, Support: c})
			}
		}
	}
	return out, nil
}

func pairKey(a, b txdb.Item) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpairKey(k uint64) (txdb.Item, txdb.Item) {
	return txdb.Item(k >> 32), txdb.Item(uint32(k))
}

// CountOccurrences returns the exact support of one itemset by scanning the
// database — the only way the Apriori baseline can answer the paper's
// ad-hoc queries (Figure 13).
func CountOccurrences(store txdb.Store, itemset []txdb.Item, constraint func(pos int, tx txdb.Transaction) bool) (int, error) {
	sorted := append([]txdb.Item(nil), itemset...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := 0
	err := store.Scan(func(pos int, tx txdb.Transaction) bool {
		if tx.Contains(sorted) && (constraint == nil || constraint(pos, tx)) {
			n++
		}
		return true
	})
	if err != nil {
		return 0, fmt.Errorf("apriori: counting scan: %w", err)
	}
	return n, nil
}

// generate implements the Apriori-gen join + prune: candidates of length k
// from the sorted list of frequent (k-1)-itemsets.
func generate(level [][]txdb.Item, k int) [][]txdb.Item {
	known := make(map[string]struct{}, len(level))
	for _, s := range level {
		known[key(s)] = struct{}{}
	}

	var out [][]txdb.Item
	// Join: pairs sharing the first k-2 items.
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b, k-2) {
				break // sorted order: once prefixes diverge, no later j matches
			}
			cand := make([]txdb.Item, k)
			copy(cand, a)
			cand[k-1] = b[k-2]
			if prune(cand, known) {
				out = append(out, cand)
			}
		}
	}
	return out
}

// prune checks the Apriori property: every (k-1)-subset of cand must be
// frequent. The two subsets formed by dropping the last two positions are
// the join parents and already known, so only the remaining k-2 need tests.
func prune(cand []txdb.Item, known map[string]struct{}) bool {
	k := len(cand)
	sub := make([]txdb.Item, k-1)
	for drop := 0; drop < k-2; drop++ {
		copy(sub, cand[:drop])
		copy(sub[drop:], cand[drop+1:])
		if _, ok := known[key(sub)]; !ok {
			return false
		}
	}
	return true
}

func samePrefix(a, b []txdb.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chunkCandidates splits a level's candidates so each chunk fits the memory
// budget. With no budget, everything is one chunk.
func chunkCandidates(cands [][]txdb.Item, k int, budget int64) [][][]txdb.Item {
	if budget <= 0 {
		return [][][]txdb.Item{cands}
	}
	perChunk := int(budget / candidateBytes(k))
	if perChunk < 1 {
		perChunk = 1
	}
	var chunks [][][]txdb.Item
	for start := 0; start < len(cands); start += perChunk {
		end := start + perChunk
		if end > len(cands) {
			end = len(cands)
		}
		chunks = append(chunks, cands[start:end])
	}
	return chunks
}

// key encodes an itemset as a map key.
func key(items []txdb.Item) string {
	buf := make([]byte, 4*len(items))
	for i, it := range items {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(it))
	}
	return string(buf)
}

func sortItemsets(sets [][]txdb.Item) {
	sort.Slice(sets, func(i, j int) bool { return lessItems(sets[i], sets[j]) })
}

func lessItems(a, b []txdb.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// trie is the candidate prefix tree used for support counting.
type trie struct {
	root *trieNode
	k    int
}

type trieNode struct {
	children map[txdb.Item]*trieNode
	count    int // valid on depth-k nodes only
}

func buildTrie(cands [][]txdb.Item) *trie {
	t := &trie{root: &trieNode{children: map[txdb.Item]*trieNode{}}}
	for _, c := range cands {
		t.k = len(c)
		n := t.root
		for _, it := range c {
			child, ok := n.children[it]
			if !ok {
				child = &trieNode{children: map[txdb.Item]*trieNode{}}
				n.children[it] = child
			}
			n = child
		}
	}
	return t
}

// countTransaction bumps the count of every candidate contained in the
// (sorted) transaction by descending the trie along the transaction's items.
func (t *trie) countTransaction(items []txdb.Item) {
	t.descend(t.root, items, 1)
}

func (t *trie) descend(n *trieNode, items []txdb.Item, depth int) {
	for i, it := range items {
		child, ok := n.children[it]
		if !ok {
			continue
		}
		if depth == t.k {
			child.count++
		} else {
			t.descend(child, items[i+1:], depth+1)
		}
	}
}

// support returns the counted support of a candidate.
func (t *trie) support(cand []txdb.Item) int {
	n := t.root
	for _, it := range cand {
		n = n.children[it]
		if n == nil {
			return 0
		}
	}
	return n.count
}
