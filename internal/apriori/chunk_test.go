package apriori

import (
	"math/rand"
	"testing"

	"bbsmine/internal/mining"
	"bbsmine/internal/txdb"
)

// Property: any memory budget yields exactly the unbudgeted result.
func TestChunkingEquivalenceRandomBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	txs := make([]txdb.Transaction, 300)
	for i := range txs {
		items := make([]int32, 2+rng.Intn(8))
		for j := range items {
			items[j] = int32(rng.Intn(40))
		}
		txs[i] = txdb.NewTransaction(int64(i), items)
	}
	store, err := txdb.NewMemStoreFrom(nil, txs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(store, Config{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 20 {
		t.Fatalf("workload too sparse: %d patterns", len(want))
	}
	for _, budget := range []int64{64, 512, 4 << 10, 1 << 20} {
		got, err := Mine(store, Config{MinSupport: 5, MemoryBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		if diffs := mining.Diff("unbudgeted", want, "budgeted", got); len(diffs) > 0 {
			t.Errorf("budget %d changed results:\n%v", budget, diffs)
		}
	}
}

func TestChunkCandidates(t *testing.T) {
	cands := make([][]txdb.Item, 10)
	for i := range cands {
		cands[i] = []txdb.Item{txdb.Item(i), txdb.Item(i + 100), txdb.Item(i + 200)}
	}
	// Unlimited: one chunk.
	chunks := chunkCandidates(cands, 3, 0)
	if len(chunks) != 1 || len(chunks[0]) != 10 {
		t.Errorf("unlimited budget: %d chunks", len(chunks))
	}
	// Budget for ~3 candidates per chunk.
	per := candidateBytes(3)
	chunks = chunkCandidates(cands, 3, 3*per)
	if len(chunks) != 4 {
		t.Errorf("3-candidate budget: %d chunks, want 4", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 10 {
		t.Errorf("chunks cover %d candidates, want 10", total)
	}
	// Budget below one candidate still makes progress.
	chunks = chunkCandidates(cands, 3, 1)
	if len(chunks) != 10 {
		t.Errorf("tiny budget: %d chunks, want 10", len(chunks))
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	pairs := [][2]txdb.Item{{0, 0}, {1, 2}, {65535, 70000}, {2147483647, 3}}
	for _, p := range pairs {
		a, b := unpairKey(pairKey(p[0], p[1]))
		if a != p[0] || b != p[1] {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", p[0], p[1], a, b)
		}
	}
}

func TestSamePrefix(t *testing.T) {
	a := []txdb.Item{1, 2, 3}
	b := []txdb.Item{1, 2, 4}
	if !samePrefix(a, b, 2) {
		t.Error("samePrefix(.., 2) = false")
	}
	if samePrefix(a, b, 3) {
		t.Error("samePrefix(.., 3) = true")
	}
	if !samePrefix(a, b, 0) {
		t.Error("samePrefix(.., 0) = false")
	}
}
