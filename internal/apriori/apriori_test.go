package apriori

import (
	"math/rand"
	"testing"

	"bbsmine/internal/iostat"
	"bbsmine/internal/mining"
	"bbsmine/internal/quest"
	"bbsmine/internal/txdb"
)

func classicExample() []txdb.Transaction {
	// The canonical Agrawal–Srikant example database.
	return []txdb.Transaction{
		txdb.NewTransaction(1, []int32{1, 3, 4}),
		txdb.NewTransaction(2, []int32{2, 3, 5}),
		txdb.NewTransaction(3, []int32{1, 2, 3, 5}),
		txdb.NewTransaction(4, []int32{2, 5}),
	}
}

func TestMineClassicExample(t *testing.T) {
	store, err := txdb.NewMemStoreFrom(nil, classicExample())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(store, Config{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := mining.BruteForce(classicExample(), 2)
	if diffs := mining.Diff("apriori", got, "bruteforce", want); len(diffs) > 0 {
		t.Errorf("result mismatch:\n%v", diffs)
	}
	// Spot-check the well-known answer: {2,3,5} is frequent with support 2.
	m := mining.ToMap(got)
	if m[mining.Key([]txdb.Item{2, 3, 5})] != 2 {
		t.Errorf("{2,3,5} support = %d, want 2", m[mining.Key([]txdb.Item{2, 3, 5})])
	}
}

func TestMineMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		txs := make([]txdb.Transaction, 60)
		for i := range txs {
			n := 1 + rng.Intn(8)
			items := make([]int32, n)
			for j := range items {
				items[j] = int32(rng.Intn(20))
			}
			txs[i] = txdb.NewTransaction(int64(i), items)
		}
		store, err := txdb.NewMemStoreFrom(nil, txs)
		if err != nil {
			t.Fatal(err)
		}
		minSup := 2 + rng.Intn(6)
		got, err := Mine(store, Config{MinSupport: minSup})
		if err != nil {
			t.Fatal(err)
		}
		want := mining.BruteForce(txs, minSup)
		if diffs := mining.Diff("apriori", got, "bruteforce", want); len(diffs) > 0 {
			t.Fatalf("trial %d (minSup %d): %v", trial, minSup, diffs)
		}
	}
}

func TestMineRejectsBadSupport(t *testing.T) {
	store := txdb.NewMemStore(nil)
	for _, sup := range []int{0, -5} {
		if _, err := Mine(store, Config{MinSupport: sup}); err == nil {
			t.Errorf("MinSupport %d accepted", sup)
		}
	}
}

func TestMineEmptyDatabase(t *testing.T) {
	store := txdb.NewMemStore(nil)
	got, err := Mine(store, Config{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("mined %d itemsets from empty database", len(got))
	}
}

func TestMaxLen(t *testing.T) {
	store, err := txdb.NewMemStoreFrom(nil, classicExample())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(store, Config{MinSupport: 2, MaxLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got {
		if len(f.Items) > 1 {
			t.Errorf("MaxLen=1 produced %v", f)
		}
	}
	got2, err := Mine(store, Config{MinSupport: 2, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got2 {
		if len(f.Items) > 2 {
			t.Errorf("MaxLen=2 produced %v", f)
		}
	}
	if len(got2) <= len(got) {
		t.Error("MaxLen=2 should produce more itemsets than MaxLen=1")
	}
}

func TestMemoryBudgetSameResultsMoreScans(t *testing.T) {
	cfg := quest.DefaultConfig()
	cfg.D = 800
	cfg.N = 200
	cfg.T = 8
	cfg.I = 4
	cfg.L = 50
	g, err := quest.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txs := g.Generate()

	var statsBig iostat.Stats
	storeBig, _ := txdb.NewMemStoreFrom(&statsBig, txs)
	unlimited, err := Mine(storeBig, Config{MinSupport: 8})
	if err != nil {
		t.Fatal(err)
	}

	var statsSmall iostat.Stats
	storeSmall, _ := txdb.NewMemStoreFrom(&statsSmall, txs)
	constrained, err := Mine(storeSmall, Config{MinSupport: 8, MemoryBudget: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}

	if diffs := mining.Diff("unlimited", unlimited, "budgeted", constrained); len(diffs) > 0 {
		t.Errorf("budget changed results:\n%v", diffs)
	}
	if statsSmall.DBScans() <= statsBig.DBScans() {
		t.Errorf("budgeted run used %d scans, unlimited used %d; want strictly more",
			statsSmall.DBScans(), statsBig.DBScans())
	}
	if len(unlimited) == 0 {
		t.Fatal("degenerate workload: nothing mined")
	}
}

func TestCountOccurrences(t *testing.T) {
	store, err := txdb.NewMemStoreFrom(nil, classicExample())
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountOccurrences(store, []txdb.Item{5, 2}, nil) // unsorted input allowed
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("count({2,5}) = %d, want 3", n)
	}
	// With a constraint on even positions.
	n, err = CountOccurrences(store, []txdb.Item{2, 5}, func(pos int, _ txdb.Transaction) bool {
		return pos%2 == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // positions 1,2,3 contain {2,5}; even ones: position 2 only
		t.Errorf("constrained count = %d, want 1", n)
	}
}

func TestGenerateJoinPrune(t *testing.T) {
	level := [][]txdb.Item{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}}
	got := generate(level, 3)
	// Join gives {1,2,3},{1,2,4},{1,3,4},{2,3,4}; prune removes {1,3,4}
	// (subset {3,4} not frequent) and {2,3,4} (same reason).
	want := map[string]bool{
		mining.Key([]txdb.Item{1, 2, 3}): true,
		mining.Key([]txdb.Item{1, 2, 4}): true,
	}
	if len(got) != len(want) {
		t.Fatalf("generated %d candidates %v, want %d", len(got), got, len(want))
	}
	for _, c := range got {
		if !want[mining.Key(c)] {
			t.Errorf("unexpected candidate %v", c)
		}
	}
}

func TestTrieCounting(t *testing.T) {
	cands := [][]txdb.Item{{1, 2, 3}, {1, 2, 4}, {2, 3, 4}}
	tr := buildTrie(cands)
	tr.countTransaction([]txdb.Item{1, 2, 3, 4}) // contains all three
	tr.countTransaction([]txdb.Item{1, 2, 3})    // contains {1,2,3}
	tr.countTransaction([]txdb.Item{2, 3, 4})    // contains {2,3,4}
	tr.countTransaction([]txdb.Item{5, 6})       // contains none
	if got := tr.support([]txdb.Item{1, 2, 3}); got != 2 {
		t.Errorf("support({1,2,3}) = %d, want 2", got)
	}
	if got := tr.support([]txdb.Item{1, 2, 4}); got != 1 {
		t.Errorf("support({1,2,4}) = %d, want 1", got)
	}
	if got := tr.support([]txdb.Item{2, 3, 4}); got != 2 {
		t.Errorf("support({2,3,4}) = %d, want 2", got)
	}
	if got := tr.support([]txdb.Item{9, 9, 9}); got != 0 {
		t.Errorf("support of unknown candidate = %d, want 0", got)
	}
}

func TestQuestWorkloadMined(t *testing.T) {
	cfg := quest.DefaultConfig()
	cfg.D = 1000
	cfg.N = 500
	g, err := quest.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := txdb.NewMemStore(nil)
	if err := g.GenerateInto(store); err != nil {
		t.Fatal(err)
	}
	res, err := Mine(store, Config{MinSupport: mining.MinSupportCount(0.01, store.Len())})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("quest workload mined nothing at 1% support")
	}
	// Supports must all meet the threshold and itemsets be sorted.
	for _, f := range res {
		if f.Support < 10 {
			t.Errorf("itemset %v below threshold", f)
		}
		for i := 1; i < len(f.Items); i++ {
			if f.Items[i-1] >= f.Items[i] {
				t.Errorf("itemset %v not sorted", f)
			}
		}
	}
}

func BenchmarkMineQuestSmall(b *testing.B) {
	cfg := quest.DefaultConfig()
	cfg.D = 2000
	cfg.N = 1000
	g, err := quest.NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	store := txdb.NewMemStore(nil)
	if err := g.GenerateInto(store); err != nil {
		b.Fatal(err)
	}
	minSup := mining.MinSupportCount(0.005, store.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(store, Config{MinSupport: minSup}); err != nil {
			b.Fatal(err)
		}
	}
}
